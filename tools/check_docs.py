#!/usr/bin/env python3
"""Documentation lint, run by the CI docs job.

Checks, over README.md / ROADMAP.md / CHANGES.md / PAPER.md and every
markdown file under docs/:

1. every relative markdown link [text](path) resolves to a file or
   directory in the repo (http(s)/mailto links and pure #anchors are
   skipped; #fragments on relative links are stripped before checking);
2. every LMMIR_* environment variable a doc mentions actually appears
   somewhere in the source tree (src/, tests/, bench/, examples/, plus
   the top-level CMakeLists.txt for build-time LMMIR_* options), so docs
   cannot advertise knobs the code no longer reads.

Exits non-zero with one line per violation.
"""
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOC_FILES = ["README.md", "ROADMAP.md", "CHANGES.md", "PAPER.md"]
DOC_DIRS = ["docs"]
SOURCE_DIRS = ["src", "tests", "bench", "examples"]
SOURCE_EXTS = {".cpp", ".hpp", ".h", ".cc"}
# Build-time LMMIR_* knobs (e.g. SIMD toggles) live in CMake, not C++.
SOURCE_FILES = ["CMakeLists.txt"]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
ENV_RE = re.compile(r"\bLMMIR_[A-Z][A-Z0-9_]*\b")


def doc_paths():
    for name in DOC_FILES:
        path = os.path.join(REPO, name)
        if os.path.isfile(path):
            yield path
    for d in DOC_DIRS:
        root = os.path.join(REPO, d)
        if not os.path.isdir(root):
            continue
        for dirpath, _, files in os.walk(root):
            for f in sorted(files):
                if f.endswith(".md"):
                    yield os.path.join(dirpath, f)


def source_env_vars():
    found = set()
    for d in SOURCE_DIRS:
        for dirpath, _, files in os.walk(os.path.join(REPO, d)):
            for f in files:
                if os.path.splitext(f)[1] not in SOURCE_EXTS:
                    continue
                with open(os.path.join(dirpath, f), encoding="utf-8",
                          errors="replace") as fh:
                    found.update(ENV_RE.findall(fh.read()))
    for name in SOURCE_FILES:
        path = os.path.join(REPO, name)
        if os.path.isfile(path):
            with open(path, encoding="utf-8", errors="replace") as fh:
                found.update(ENV_RE.findall(fh.read()))
    return found


def main():
    errors = []
    known_vars = source_env_vars()

    for path in doc_paths():
        rel = os.path.relpath(path, REPO)
        with open(path, encoding="utf-8") as fh:
            text = fh.read()

        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target))
            if not os.path.exists(resolved):
                errors.append(f"{rel}: broken relative link '{match.group(1)}'")

        for var in sorted(set(ENV_RE.findall(text))):
            if var not in known_vars:
                errors.append(
                    f"{rel}: references {var}, which appears nowhere in "
                    f"{'/'.join(SOURCE_DIRS)}")

    if errors:
        print(f"check_docs: {len(errors)} problem(s)")
        for e in errors:
            print(f"  {e}")
        return 1
    print("check_docs: all relative links resolve and every documented "
          "LMMIR_* variable exists in the source tree")
    return 0


if __name__ == "__main__":
    sys.exit(main())
