#!/usr/bin/env python3
"""Summarize a Chrome/Perfetto trace written via LMMIR_TRACE_FILE.

Prints the top-N slowest individual spans and a per-name aggregate table
(count / total / mean / max), so a trace can be triaged without loading
it into the Perfetto UI.

Usage:
    tools/trace_summary.py trace.json [-n 10]
"""
import argparse
import json
import sys


def load_events(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents", doc if isinstance(doc, list) else [])
    # Complete ("X") events carry ts + dur in microseconds; metadata ("M")
    # and other phases are not spans.
    return [e for e in events if e.get("ph") == "X" and "dur" in e]


def fmt_us(us):
    if us >= 1e6:
        return f"{us / 1e6:.3f} s"
    if us >= 1e3:
        return f"{us / 1e3:.3f} ms"
    return f"{us:.1f} us"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="Chrome trace JSON (LMMIR_TRACE_FILE output)")
    ap.add_argument("-n", "--top", type=int, default=10,
                    help="number of slowest spans to list (default 10)")
    args = ap.parse_args()

    try:
        spans = load_events(args.trace)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {args.trace}: {e}", file=sys.stderr)
        return 1
    if not spans:
        print("no complete spans in trace")
        return 0

    print(f"{len(spans)} spans\n")
    print(f"top {min(args.top, len(spans))} slowest spans:")
    print(f"  {'dur':>12}  {'tid':>6}  name")
    for e in sorted(spans, key=lambda e: e["dur"], reverse=True)[:args.top]:
        print(f"  {fmt_us(e['dur']):>12}  {e.get('tid', '?'):>6}  {e['name']}")

    agg = {}
    for e in spans:
        a = agg.setdefault(e["name"], [0, 0.0, 0.0])  # count, total, max
        a[0] += 1
        a[1] += e["dur"]
        a[2] = max(a[2], e["dur"])
    print("\nper-name aggregates (by total time):")
    print(f"  {'count':>7}  {'total':>12}  {'mean':>12}  {'max':>12}  name")
    for name, (count, total, mx) in sorted(agg.items(),
                                           key=lambda kv: kv[1][1],
                                           reverse=True):
        print(f"  {count:>7}  {fmt_us(total):>12}  {fmt_us(total / count):>12}"
              f"  {fmt_us(mx):>12}  {name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
