// Online serving demo: put a model behind the dynamic-batching
// InferenceServer and stream the Table-II style cases through it from
// concurrent clients — the deployment shape that replaces a golden solver
// in a PDN-optimization inner loop.
//
//   1. build a small pipeline and its hidden test cases;
//   2. train LMM-IR briefly (optional, LMMIR_SERVE_TRAIN=0 skips);
//   3. serve: concurrent clients submit every case, futures collect
//      per-request latency; print the batching / latency report.
//
// Observability flags (see docs/OBSERVABILITY.md):
//   --metrics-dump        force metrics on; print the Prometheus-style
//                         text exposition after the run
//   --metrics-json        same, as one JSON line (machine scraping)
//   --stats-period-ms N   emit a periodic structured server-stats log
//                         line every N ms while serving
// LMMIR_METRICS=1 / LMMIR_TRACE_FILE=path work as everywhere else.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "gen/began.hpp"
#include "models/registry.hpp"
#include "obs/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "spice/netlist.hpp"
#include "spice/writer.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lmmir;

  bool metrics_dump = false;
  bool metrics_json = false;
  long stats_period_ms = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-dump") == 0) {
      metrics_dump = true;
    } else if (std::strcmp(argv[i], "--metrics-json") == 0) {
      metrics_json = true;
    } else if (std::strcmp(argv[i], "--stats-period-ms") == 0 &&
               i + 1 < argc) {
      stats_period_ms = std::strtol(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--metrics-dump] [--metrics-json] "
                   "[--stats-period-ms N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (metrics_dump || metrics_json) obs::set_metrics_enabled(true);
  // The periodic stat line logs at Info; the default threshold is Warn.
  if (stats_period_ms > 0 && !util::log_enabled(util::LogLevel::Info))
    util::set_log_level(util::LogLevel::Info);

  core::PipelineOptions opts;
  opts.sample.input_side = 32;
  opts.sample.pc_grid = 4;
  opts.suite_scale = 0.05;
  opts.fake_cases = 4;
  opts.real_cases = 2;
  opts.train.pretrain_epochs = 1;
  opts.train.finetune_epochs = 3;
  core::Pipeline pipe(opts);

  auto model = std::shared_ptr<models::IrModel>(models::make_model("LMM-IR"));

  bool train = true;
  if (const char* v = std::getenv("LMMIR_SERVE_TRAIN")) train = *v != '0';
  if (train) {
    std::printf("training %s on the small regime...\n",
                model->name().c_str());
    const auto dataset = pipe.build_training_dataset();
    train::fit(*model, dataset, pipe.train_config());
  }

  std::printf("building the hidden test cases...\n");
  const auto tests = pipe.build_hidden_testset();

  std::printf("serving with %zu runtime threads\n",
              runtime::global_threads());
  serve::ServeOptions sopts;
  sopts.max_batch = 4;
  sopts.max_wait_us = 2000;
  auto server = pipe.make_server(model, sopts);

  // Optional periodic stats emitter: one structured log line per period
  // while the serve section runs (stopped before the report prints).
  std::mutex period_mu;
  std::condition_variable period_cv;
  bool period_stop = false;
  std::thread period_thread;
  if (stats_period_ms > 0) {
    period_thread = std::thread([&] {
      std::unique_lock<std::mutex> lock(period_mu);
      for (;;) {
        if (period_cv.wait_for(lock,
                               std::chrono::milliseconds(stats_period_ms),
                               [&] { return period_stop; }))
          return;
        const serve::ServerStats st = server->stats();
        util::log_stats(
            "serve_progress",
            {{"completed", std::to_string(st.completed)},
             {"batches", std::to_string(st.batches)},
             {"rejected_queue_full", std::to_string(st.rejected_queue_full)},
             {"failed", std::to_string(st.failed)}});
      }
    });
  }

  // Two client threads submit all cases; futures keep request order.
  std::vector<std::future<serve::PredictResult>> futs(tests.size());
  std::thread even([&] {
    for (std::size_t i = 0; i < tests.size(); i += 2)
      futs[i] = server->submit(serve::request_from_sample(tests[i]));
  });
  std::thread odd([&] {
    for (std::size_t i = 1; i < tests.size(); i += 2)
      futs[i] = server->submit(serve::request_from_sample(tests[i]));
  });
  even.join();
  odd.join();

  util::TextTable table;
  table.set_header({"case", "queue_ms", "compute_ms", "total_ms", "batch"});
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const serve::PredictResult r = futs[i].get();
    // restore_percent_map(r, tests[i]) would hand back the full-resolution
    // percent-of-vdd map for downstream optimization.
    char q[32], c[32], t[32];
    std::snprintf(q, sizeof q, "%.2f", r.queue_us / 1e3);
    std::snprintf(c, sizeof c, "%.2f", r.compute_us / 1e3);
    std::snprintf(t, sizeof t, "%.2f", r.total_us / 1e3);
    table.add_row({r.id, q, c, t, std::to_string(r.batch_size)});
  }

  if (period_thread.joinable()) {
    {
      std::lock_guard<std::mutex> lock(period_mu);
      period_stop = true;
    }
    period_cv.notify_all();
    period_thread.join();
  }

  std::printf("%s", table.render().c_str());

  const serve::ServerStats st = server->stats();
  std::printf("\n%zu requests in %zu batches | mean batch %.2f | "
              "p50 %.1f ms  p95 %.1f ms  p99 %.1f ms | %.1f req/s\n",
              st.completed, st.batches, st.mean_batch, st.p50_us / 1e3,
              st.p95_us / 1e3, st.p99_us / 1e3, st.throughput_rps);
  const tensor::ArenaStats arena = server->arena_stats();
  if (arena.node_allocs + arena.node_reuses > 0)
    std::printf("tensor arena: %zu allocation(s) saved, %zu heap "
                "allocation(s) (warm-up), %.1f MiB reserved\n",
                arena.allocations_saved(), arena.heap_allocations(),
                static_cast<double>(arena.bytes_reserved) / (1024.0 * 1024.0));

  // Shut the server down before scraping so the dispatcher arenas have
  // hit their final reset() (arena gauges are pushed from there).
  server->shutdown();

  // ---- Raw-netlist session serving: what a real client sends is SPICE
  // text (or a value-edit delta), not tensors.  Two tenants each open a
  // session with a full netlist, then stream an ECO-style load sweep as
  // deltas; the per-session FeatureContext reuses the topology-invariant
  // channels on every warm revision.  See docs/SERVING.md.
  std::printf("\nraw-netlist session serving (2 tenants x 4 revisions):\n");
  auto session_server = pipe.make_session_server(model);
  util::TextTable sess_table;
  sess_table.set_header({"request", "hit", "reused", "extract_ms", "total_ms"});
  for (int tenant = 0; tenant < 2; ++tenant) {
    gen::GeneratorConfig cfg;
    cfg.name = "tenant" + std::to_string(tenant);
    cfg.width_um = cfg.height_um = 40.0;
    cfg.seed = 900 + static_cast<std::uint64_t>(tenant);
    cfg.use_default_stack();
    const spice::Netlist nl = gen::generate_pdn(cfg);

    serve::SessionRequest open;
    open.session_id = cfg.name;
    open.id = cfg.name + "/rev0";
    open.netlist_text = spice::write_netlist_string(nl);  // the wire format
    std::uint64_t revision = 0;
    auto row = [&](const serve::SessionResult& r) {
      char e[32], t[32];
      std::snprintf(e, sizeof e, "%.2f", r.extract_us / 1e3);
      std::snprintf(t, sizeof t, "%.2f", r.total_us / 1e3);
      sess_table.add_row({r.id, r.session_hit ? "yes" : "no",
                          std::to_string(r.channels_reused) + "/" +
                              std::to_string(feat::kChannelCount),
                          e, t});
      revision = r.revision;
    };
    row(session_server->predict(std::move(open)));

    for (int rev = 1; rev <= 3; ++rev) {
      serve::SessionRequest delta;  // ECO edit: rescale the current loads
      delta.session_id = cfg.name;
      delta.id = cfg.name + "/rev" + std::to_string(rev);
      delta.base_revision = revision;  // optimistic concurrency token
      const auto& els = nl.elements();
      for (std::size_t i = 0; i < els.size(); ++i)
        if (els[i].type == spice::ElementType::CurrentSource)
          delta.edits.push_back({i, els[i].value * (1.0 + 0.1 * rev)});
      row(session_server->predict(std::move(delta)));
    }
  }
  std::printf("%s", sess_table.render().c_str());
  const serve::SessionCacheStats sc = session_server->cache_stats();
  std::printf("session cache: %zu requests | %zu hits | %zu sessions | "
              "channels reused/computed %zu/%zu | %.1f KiB resident\n",
              sc.requests, sc.hits, sc.sessions, sc.channels_reused,
              sc.channels_computed,
              static_cast<double>(sc.resident_bytes) / 1024.0);
  session_server->shutdown();
  if (metrics_dump)
    std::printf("\n%s", obs::MetricsRegistry::instance().render_text().c_str());
  if (metrics_json)
    std::printf("%s\n", obs::MetricsRegistry::instance().render_json().c_str());
  return 0;
}
