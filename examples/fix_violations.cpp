// fix_violations: the iterative IR-drop ECO loop from the paper's
// introduction — analyze, find violating hotspots, upsize the PDN straps
// around them, re-analyze — driven by the golden solver.  This is the
// expensive loop that fast ML prediction (LMM-IR) is meant to shortcut:
// the printed solve times are exactly the cost a predictor amortizes.
//
// The loop runs twice, cold (every round re-assembles and re-solves from
// scratch) and warm (a shared pdn::SolverContext refreshes the cached
// system in place and warm-starts PCG from the previous round's iterate),
// so the context's saving is visible directly.
//
// Usage: fix_violations [netlist.sp] [target_drop_fraction]
// LMMIR_PRECOND selects the golden-solver preconditioner
// (none|jacobi|ssor|ic0; default jacobi).
#include <cstdio>
#include <cstdlib>

#include "gen/began.hpp"
#include "pdn/circuit.hpp"
#include "pdn/optimize.hpp"
#include "pdn/solver.hpp"
#include "sparse/preconditioner.hpp"
#include "spice/parser.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace lmmir;

  spice::Netlist netlist;
  if (argc > 1) {
    netlist = spice::parse_netlist_file(argv[1]);
  } else {
    gen::GeneratorConfig cfg;
    cfg.name = "eco_demo";
    cfg.width_um = 56;
    cfg.height_um = 56;
    cfg.seed = 4242;
    cfg.use_default_stack();
    cfg.total_current *= 2.0;  // deliberately stressed PDN
    netlist = gen::generate_pdn(cfg);
    std::printf("no input given; generated a stressed demo PDN\n");
  }

  pdn::StrengthenOptions opts;
  if (argc > 2) opts.target_fraction = std::atof(argv[2]);
  opts.solve.cg.preconditioner = sparse::preconditioner_kind_from_env(
      opts.solve.cg.preconditioner);

  const auto before = pdn::solve_ir_drop(pdn::Circuit(netlist));
  std::printf("before: worst drop %.4f V (%.2f%% of VDD %.2f V)\n",
              before.worst_drop, 100.0 * before.worst_drop / before.vdd,
              before.vdd);
  std::printf("target: %.2f%% of VDD, preconditioner %s\n\n",
              100.0 * opts.target_fraction,
              sparse::to_string(opts.solve.cg.preconditioner));

  opts.use_solver_context = false;
  util::Stopwatch cold_watch;
  const auto cold = pdn::strengthen_pdn(netlist, opts);
  const double cold_s = cold_watch.seconds();

  opts.use_solver_context = true;
  util::Stopwatch warm_watch;
  const auto result = pdn::strengthen_pdn(netlist, opts);
  const double warm_s = warm_watch.seconds();

  std::printf("after %d ECO round(s): worst drop %.4f V (%.2f%%), "
              "%zu segment(s) upsized, target %s\n",
              result.iterations, result.final_worst_drop,
              100.0 * result.final_worst_drop / before.vdd,
              result.resistors_upsized,
              result.met_target ? "MET" : "NOT met");
  std::printf("cold loop: %d golden solve(s), %zu PCG iteration(s), "
              "%zu preconditioner build(s), %.3f s\n",
              cold.golden_solves, cold.total_cg_iterations,
              cold.precond_builds, cold_s);
  std::printf("warm loop: %d golden solve(s), %zu PCG iteration(s) "
              "(%zu warm-started), %.3f s via SolverContext\n",
              result.golden_solves, result.total_cg_iterations,
              result.warm_starts, warm_s);
  std::printf("this analysis loop is the cost a fast ML predictor "
              "(LMM-IR) amortizes.\n");
  return 0;
}
