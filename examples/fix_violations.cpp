// fix_violations: the iterative IR-drop ECO loop from the paper's
// introduction — analyze, find violating hotspots, upsize the PDN straps
// around them, re-analyze — driven by the golden solver.  This is the
// expensive loop that fast ML prediction (LMM-IR) is meant to shortcut:
// the printed per-iteration solve times are exactly the cost a predictor
// amortizes.
//
// Usage: fix_violations [netlist.sp] [target_drop_fraction]
#include <cstdio>
#include <cstdlib>

#include "gen/began.hpp"
#include "pdn/circuit.hpp"
#include "pdn/optimize.hpp"
#include "pdn/solver.hpp"
#include "spice/parser.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace lmmir;

  spice::Netlist netlist;
  if (argc > 1) {
    netlist = spice::parse_netlist_file(argv[1]);
  } else {
    gen::GeneratorConfig cfg;
    cfg.name = "eco_demo";
    cfg.width_um = 56;
    cfg.height_um = 56;
    cfg.seed = 4242;
    cfg.use_default_stack();
    cfg.total_current *= 2.0;  // deliberately stressed PDN
    netlist = gen::generate_pdn(cfg);
    std::printf("no input given; generated a stressed demo PDN\n");
  }

  pdn::StrengthenOptions opts;
  if (argc > 2) opts.target_fraction = std::atof(argv[2]);

  util::Stopwatch total;
  const auto before = pdn::solve_ir_drop(pdn::Circuit(netlist));
  std::printf("before: worst drop %.4f V (%.2f%% of VDD %.2f V)\n",
              before.worst_drop, 100.0 * before.worst_drop / before.vdd,
              before.vdd);
  std::printf("target: %.2f%% of VDD\n\n", 100.0 * opts.target_fraction);

  const auto result = pdn::strengthen_pdn(netlist, opts);
  std::printf("after %d ECO iteration(s): worst drop %.4f V (%.2f%%), "
              "%zu segment(s) upsized, target %s\n",
              result.iterations, result.final_worst_drop,
              100.0 * result.final_worst_drop / before.vdd,
              result.resistors_upsized,
              result.met_target ? "MET" : "NOT met");
  std::printf("total analysis time %.3f s across %d golden solves — the "
              "cost a fast ML predictor (LMM-IR) amortizes.\n",
              total.seconds(), result.iterations + 1);
  return 0;
}
