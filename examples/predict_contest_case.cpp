// predict_contest_case: deployment-style inference — load a trained
// LMM-IR checkpoint and a contest-format case directory, predict the
// IR-drop map, score it against the provided ground truth (when present)
// and write prediction artifacts (CSV + heat map).
//
// Usage: predict_contest_case <case_dir> [checkpoint.bin]
// With no arguments it trains a small model first (so the example is
// runnable standalone), exports a generated case, then predicts it.
#include <cstdio>
#include <string>

#include "core/pipeline.hpp"
#include "features/contest_io.hpp"
#include "features/feature_context.hpp"
#include "models/lmmir_model.hpp"
#include "nn/serialize.hpp"
#include "pdn/circuit.hpp"
#include "pdn/raster.hpp"
#include "pdn/solver.hpp"
#include "util/csv.hpp"
#include "util/image_io.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace lmmir;

  core::PipelineOptions opts;
  opts.sample.input_side = 32;
  opts.sample.pc_grid = 4;
  opts.suite_scale = 0.06;
  opts.fake_cases = 6;
  opts.real_cases = 2;
  opts.train.pretrain_epochs = 1;
  opts.train.finetune_epochs = 25;
  core::Pipeline pipe(opts);

  models::LmmirConfig mc;
  mc.base_channels = 8;  // deployment demo: small and fast
  models::LMMIR model(mc);

  std::string case_dir;
  if (argc > 1) {
    case_dir = argv[1];
  } else {
    // Standalone mode: fabricate a case directory to predict.
    gen::GeneratorConfig cfg;
    cfg.name = "predict_demo";
    cfg.width_um = 40;
    cfg.height_um = 40;
    cfg.seed = 777;
    cfg.use_default_stack();
    const auto nl = gen::generate_pdn(cfg);
    const auto sol = pdn::solve_ir_drop(pdn::Circuit(nl));
    const auto ir = pdn::rasterize_ir_drop(nl, sol);
    feat::FeatureContext feature_context;
    feat::write_contest_case("predict_demo_case", nl,
                             feature_context.extract(nl), ir);
    case_dir = "predict_demo_case";
    std::printf("no case dir given; generated %s/\n", case_dir.c_str());
  }

  if (argc > 2) {
    nn::load_checkpoint(model, argv[2]);
    std::printf("loaded checkpoint %s\n", argv[2]);
  } else {
    std::printf("no checkpoint given; training a small model first...\n");
    const auto dataset = pipe.build_training_dataset();
    train::fit(model, dataset, pipe.train_config());
    nn::save_checkpoint(model, "predict_demo_checkpoint.bin");
    std::printf("saved predict_demo_checkpoint.bin for reuse\n");
  }

  const data::Sample sample =
      data::make_sample_from_contest_dir(case_dir, opts.sample);
  util::Stopwatch tat;
  const grid::Grid2D pred = train::predict_map(model, sample);
  std::printf("predicted %zux%zu map in %.3f s (%zu-node netlist)\n",
              pred.rows(), pred.cols(), tat.seconds(), sample.node_count);

  util::write_csv_file(case_dir + "/predicted_ir_drop.csv", pred.to_csv());
  const auto img = util::colorize(pred.data(), pred.cols(), pred.rows(),
                                  0.0f, std::max(1e-6f, pred.max()));
  util::write_ppm(case_dir + "/predicted_ir_drop.ppm", img);
  std::printf("wrote %s/predicted_ir_drop.{csv,ppm}\n", case_dir.c_str());

  const auto m = eval::compute_metrics(pred, sample.truth_full);
  std::printf("vs ground truth: F1 %.3f  CC %.3f  MAE %.2f (1e-4 V)\n", m.f1,
              m.cc, data::percent_mae_to_1e4_volts(m.mae, sample.vdd));
  return 0;
}
