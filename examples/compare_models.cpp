// compare_models: train every registered predictor (contest winners,
// IREDGe, IRPnet, LMM-IR) on the same data and print a Table-III-style
// comparison on one held-out case — a fast preview of bench_table3_sota.
#include <cstdio>

#include "core/pipeline.hpp"
#include "gen/suite.hpp"
#include "models/registry.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

int main() {
  using namespace lmmir;

  core::PipelineOptions opts;
  opts.sample.input_side = 32;
  opts.sample.pc_grid = 4;
  opts.suite_scale = 0.06;
  opts.fake_cases = 6;
  opts.real_cases = 2;
  opts.train.pretrain_epochs = 1;
  opts.train.finetune_epochs = 3;
  core::Pipeline pipe(opts);

  const data::Dataset dataset = pipe.build_training_dataset();
  gen::SuiteOptions suite;
  suite.scale = opts.suite_scale;
  const auto test_cfgs = gen::table2_suite(suite);
  const data::Sample held_out =
      data::make_sample(test_cfgs.front(), opts.sample);

  util::TextTable table;
  table.set_header({"model", "params", "F1", "MAE(1e-4V)", "TAT(s)"});
  for (const auto& spec : models::model_registry()) {
    auto model = spec.make(0);
    const auto rows = pipe.train_and_evaluate(*model, dataset, {held_out},
                                              spec.augmentation_factor);
    const auto& r = rows.front();  // single case; rows.back() is Avg
    table.add_row({spec.name, std::to_string(model->parameter_count()),
                   util::format_fixed(r.f1, 3),
                   util::format_fixed(r.mae_1e4_volts, 2),
                   util::format_fixed(r.tat_seconds, 3)});
    std::printf("trained %s\n", spec.name.c_str());
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
