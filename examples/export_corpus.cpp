// export_corpus: generate the training corpus out-of-core.
//
// Builds the paper's training regime (fake + real-like cases with
// over-sampling) exactly like train_lmmir, but spills every sample to
// versioned binary shards (docs/DATA.md) instead of keeping the dataset
// resident — peak memory is one sample, independent of corpus size.
// The exported directory feeds data::StreamingLoader / train::fit for
// out-of-core training, and `LMMIR_CORPUS_DIR=<dir> ./train_lmmir`-style
// flows via core::Pipeline::make_streaming_loader.
//
// Usage: export_corpus [out_dir]
// With no argument the directory comes from LMMIR_CORPUS_DIR, falling
// back to "corpus_out".  Scale knobs come from the environment
// (LMMIR_INPUT_SIDE, LMMIR_FAKE_CASES, ...; see core/pipeline.hpp).
#include <cstdio>
#include <cstdlib>

#include "core/pipeline.hpp"
#include "data/shard.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace lmmir;
  core::Pipeline pipe;  // LMMIR_* env overrides picked up here
  const auto& o = pipe.options();

  std::string out_dir = argc > 1 ? argv[1] : o.corpus_dir;
  if (out_dir.empty()) out_dir = "corpus_out";
  std::printf("config: side=%zu pc_grid=%d scale=%.3f cases=%d+%d -> %s\n",
              o.sample.input_side, o.sample.pc_grid, o.suite_scale,
              o.fake_cases, o.real_cases, out_dir.c_str());

  util::Stopwatch watch;
  const data::CorpusManifest manifest = pipe.export_training_corpus(out_dir);
  std::printf("exported %zu samples (%zu per epoch) into %zu shards, "
              "%.2f MiB, %.1f s\n",
              manifest.samples, manifest.epoch_samples,
              manifest.shard_files.size(),
              static_cast<double>(manifest.bytes) / (1024.0 * 1024.0),
              watch.seconds());
  for (const auto& file : manifest.shard_files)
    std::printf("  %s\n", file.c_str());

  // Re-open and verify every per-sample checksum before declaring success.
  data::ShardCorpus corpus(out_dir);
  std::string error;
  if (!corpus.verify(&error)) {
    std::fprintf(stderr, "verification FAILED: %s\n", error.c_str());
    return 1;
  }
  std::printf("verified: %zu samples, epoch order of %zu, %zu bytes mapped\n",
              corpus.sample_count(), corpus.epoch_size(),
              corpus.mapped_bytes());
  return 0;
}
