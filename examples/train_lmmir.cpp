// train_lmmir: the full training pipeline with checkpointing.
//
//   - builds the paper's training regime (fake + real-like cases,
//     over-sampling, Gaussian-noise augmentation);
//   - two-stage training (reconstruction pre-train, IR fine-tune);
//   - evaluates on the 10 hidden Table-II cases;
//   - saves/loads a binary checkpoint and verifies the round trip.
//
// Scale knobs come from the environment (LMMIR_INPUT_SIDE, LMMIR_EPOCHS,
// LMMIR_FAKE_CASES, ...; see core/pipeline.hpp).
#include <cstdio>

#include "core/pipeline.hpp"
#include "models/lmmir_model.hpp"
#include "nn/serialize.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

int main() {
  using namespace lmmir;
  core::Pipeline pipe;  // LMMIR_* env overrides picked up here
  const auto& o = pipe.options();
  std::printf("config: side=%zu pc_grid=%d scale=%.3f cases=%d+%d epochs=%d+%d\n",
              o.sample.input_side, o.sample.pc_grid, o.suite_scale,
              o.fake_cases, o.real_cases, o.train.pretrain_epochs,
              o.train.finetune_epochs);

  models::LmmirConfig mc;
  models::LMMIR model(mc);
  std::printf("LMM-IR: %zu parameters\n", model.parameter_count());

  const data::Dataset dataset = pipe.build_training_dataset();
  const train::TrainHistory hist = train::fit(model, dataset, o.train);
  std::printf("training done in %.1f s\n", hist.seconds);
  for (std::size_t e = 0; e < hist.pretrain_loss.size(); ++e)
    std::printf("  pretrain[%zu] loss %.5f\n", e,
                static_cast<double>(hist.pretrain_loss[e]));
  for (std::size_t e = 0; e < hist.finetune_loss.size(); ++e)
    std::printf("  finetune[%zu] loss %.5f\n", e,
                static_cast<double>(hist.finetune_loss[e]));

  // Checkpoint round trip.
  nn::save_checkpoint(model, "lmmir_checkpoint.bin");
  models::LMMIR reloaded(mc);
  nn::load_checkpoint(reloaded, "lmmir_checkpoint.bin");
  std::printf("checkpoint saved + reloaded: lmmir_checkpoint.bin\n");

  // Hidden-case evaluation with the reloaded model.
  const auto tests = pipe.build_hidden_testset();
  const auto rows = train::evaluate_testset(reloaded, tests);
  util::TextTable table;
  table.set_header({"circuit", "F1", "MAE(1e-4V)", "TAT(s)", "golden(s)"});
  for (const auto& r : rows)
    table.add_row({r.name, util::format_fixed(r.f1, 3),
                   util::format_fixed(r.mae_1e4_volts, 2),
                   util::format_fixed(r.tat_seconds, 3),
                   util::format_fixed(r.golden_seconds, 3)});
  std::printf("%s", table.render().c_str());
  return 0;
}
