// generate_benchmarks: BeGAN-style suite generation.  Writes N synthetic
// PDN benchmark directories (SPICE netlist + contest-format CSV features +
// golden IR-drop ground truth), ready to train on or to feed back through
// analyze_netlist / the data pipeline.
//
// The golden solves fan out over the runtime thread pool, one
// pdn::SolverContext per worker stripe (pdn::solve_ir_drop_batch), so a
// multi-core host solves the corpus in parallel while repeated topologies
// inside a stripe still hit the refresh + warm-start fast path.  Feature
// extraction is striped the same way (feat::compute_feature_maps_batch,
// one feat::FeatureContext per stripe), so same-topology neighbors reuse
// their topology-invariant channels too.  Both stripe partitions are
// thread-count independent, so the written golden maps and feature CSVs
// are bitwise identical for any LMMIR_THREADS.
//
// Usage: generate_benchmarks [count] [out_dir] [seed]
// LMMIR_PRECOND selects the golden-solver preconditioner
// (none|jacobi|ssor|ic0; default jacobi).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "features/contest_io.hpp"
#include "features/feature_context.hpp"
#include "features/maps.hpp"
#include "gen/suite.hpp"
#include "pdn/circuit.hpp"
#include "pdn/raster.hpp"
#include "pdn/solver.hpp"
#include "pdn/solver_context.hpp"
#include "pdn/stats.hpp"
#include "runtime/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace lmmir;
  const int count = argc > 1 ? std::atoi(argv[1]) : 5;
  const std::string out_dir = argc > 2 ? argv[2] : "benchmarks";
  const std::uint64_t seed = argc > 3
      ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 2024;

  gen::SuiteOptions suite;  // default 1/8 contest scale
  const auto configs = gen::fake_training_suite(count, seed, suite);

  pdn::SolveOptions solve_opts;
  solve_opts.cg.preconditioner =
      sparse::preconditioner_kind_from_env(solve_opts.cg.preconditioner);
  pdn::SolverContextStats context_stats;
  feat::FeatureContextStats feature_stats;

  // Work in groups of kGroup cases: generate the group's netlists
  // (deterministic per-config RNG, so grouping changes nothing), solve
  // them across the pool with one SolverContext per stripe, then
  // featurize + write before the next group — peak memory is one
  // group's netlists/circuits/solutions, not the whole corpus.  The
  // group/stripe partition depends only on the case count, so the
  // written golden maps are bitwise identical for any thread count.
  constexpr std::size_t kGroup = 64;
  constexpr std::size_t kStripes = 8;
  std::size_t contexts_used = 0;
  for (std::size_t begin = 0; begin < configs.size(); begin += kGroup) {
    const std::size_t end = std::min(configs.size(), begin + kGroup);
    contexts_used += std::min(kStripes, end - begin);

    std::vector<spice::Netlist> netlists;
    std::vector<std::unique_ptr<pdn::Circuit>> circuits;
    std::vector<const pdn::Circuit*> circuit_ptrs;
    netlists.reserve(end - begin);
    circuits.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      netlists.push_back(gen::generate_pdn(configs[i]));
      circuits.push_back(std::make_unique<pdn::Circuit>(netlists.back()));
      circuit_ptrs.push_back(circuits.back().get());
    }
    const std::vector<pdn::Solution> solutions = pdn::solve_ir_drop_batch(
        circuit_ptrs, solve_opts, kStripes, &context_stats);

    // Featurize over the pool with the matching stripe partition (one
    // FeatureContext per stripe, paired with the per-stripe
    // SolverContexts above), then write serially (disk-bound; keeps the
    // printed order).
    std::vector<const spice::Netlist*> netlist_ptrs;
    netlist_ptrs.reserve(end - begin);
    for (const auto& nl : netlists) netlist_ptrs.push_back(&nl);
    const std::vector<feat::FeatureMaps> all_maps =
        feat::compute_feature_maps_batch(netlist_ptrs, kStripes,
                                         &feature_stats);
    for (std::size_t i = begin; i < end; ++i) {
      const auto& cfg = configs[i];
      const spice::Netlist& nl = netlists[i - begin];
      const pdn::Solution& sol = solutions[i - begin];
      grid::Grid2D ir = pdn::rasterize_ir_drop(nl, sol);
      const std::string dir = out_dir + "/" + cfg.name;
      feat::write_contest_case(dir, nl, all_maps[i - begin], ir);

      const pdn::TestcaseStats st = pdn::compute_stats(nl, cfg.name);
      std::printf("%-10s %6zu nodes  %-9s  worst drop %.2f%%  -> %s\n",
                  st.name.c_str(), st.nodes, st.shape_string().c_str(),
                  100.0 * sol.worst_drop / sol.vdd, dir.c_str());
    }
  }
  std::printf("wrote %d benchmark case(s) under %s/\n", count,
              out_dir.c_str());
  std::printf("solver contexts (%zu striped context(s) over %zu thread(s)): "
              "%zu solve(s) = %zu rebuild(s) + %zu refresh(es), %zu "
              "preconditioner build(s), %zu warm start(s)\n",
              contexts_used,
              runtime::global_threads(), context_stats.solves,
              context_stats.rebuilds, context_stats.refreshes,
              context_stats.precond_builds, context_stats.warm_starts);
  std::printf("feature contexts: %zu extraction(s) = %zu channel(s) computed "
              "+ %zu reused (%zu revision hit(s))\n",
              feature_stats.extractions, feature_stats.channels_computed,
              feature_stats.channels_reused, feature_stats.revision_hits);
  return 0;
}
