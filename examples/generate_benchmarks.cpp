// generate_benchmarks: BeGAN-style suite generation.  Writes N synthetic
// PDN benchmark directories (SPICE netlist + contest-format CSV features +
// golden IR-drop ground truth), ready to train on or to feed back through
// analyze_netlist / the data pipeline.
//
// Usage: generate_benchmarks [count] [out_dir] [seed]
// LMMIR_PRECOND selects the golden-solver preconditioner
// (none|jacobi|ssor|ic0; default jacobi).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "features/contest_io.hpp"
#include "features/maps.hpp"
#include "gen/suite.hpp"
#include "pdn/circuit.hpp"
#include "pdn/raster.hpp"
#include "pdn/solver.hpp"
#include "pdn/solver_context.hpp"
#include "pdn/stats.hpp"

int main(int argc, char** argv) {
  using namespace lmmir;
  const int count = argc > 1 ? std::atoi(argv[1]) : 5;
  const std::string out_dir = argc > 2 ? argv[2] : "benchmarks";
  const std::uint64_t seed = argc > 3
      ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 2024;

  gen::SuiteOptions suite;  // default 1/8 contest scale
  const auto configs = gen::fake_training_suite(count, seed, suite);

  // One solver context for the whole run: suite cases with a repeated
  // topology hit the refresh + warm-start fast path; the rest rebuild
  // automatically (same cost as a cold solve).
  pdn::SolverContext solver_context;
  pdn::SolveOptions solve_opts;
  solve_opts.cg.preconditioner =
      sparse::preconditioner_kind_from_env(solve_opts.cg.preconditioner);
  solve_opts.context = &solver_context;
  for (const auto& cfg : configs) {
    const spice::Netlist nl = gen::generate_pdn(cfg);
    const pdn::Circuit circuit(nl);
    const pdn::Solution sol = pdn::solve_ir_drop(circuit, solve_opts);
    grid::Grid2D ir = pdn::rasterize_ir_drop(nl, sol);
    const feat::FeatureMaps maps = feat::compute_feature_maps(nl);
    const std::string dir = out_dir + "/" + cfg.name;
    feat::write_contest_case(dir, nl, maps, ir);

    const pdn::TestcaseStats st = pdn::compute_stats(nl, cfg.name);
    std::printf("%-10s %6zu nodes  %-9s  worst drop %.2f%%  -> %s\n",
                st.name.c_str(), st.nodes, st.shape_string().c_str(),
                100.0 * sol.worst_drop / sol.vdd, dir.c_str());
  }
  const auto& st = solver_context.stats();
  std::printf("wrote %d benchmark case(s) under %s/\n", count,
              out_dir.c_str());
  std::printf("solver context: %zu solve(s) = %zu rebuild(s) + %zu "
              "refresh(es), %zu preconditioner build(s), %zu warm start(s)\n",
              st.solves, st.rebuilds, st.refreshes, st.precond_builds,
              st.warm_starts);
  return 0;
}
