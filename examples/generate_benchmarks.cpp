// generate_benchmarks: BeGAN-style suite generation.  Writes N synthetic
// PDN benchmark directories (SPICE netlist + contest-format CSV features +
// golden IR-drop ground truth), ready to train on or to feed back through
// analyze_netlist / the data pipeline.
//
// The golden solves fan out over the runtime thread pool, one
// pdn::SolverContext per worker stripe (pdn::solve_ir_drop_batch), so a
// multi-core host solves the corpus in parallel while repeated topologies
// inside a stripe still hit the refresh + warm-start fast path.  Feature
// extraction is striped the same way (feat::compute_feature_maps_batch,
// one feat::FeatureContext per stripe), so same-topology neighbors reuse
// their topology-invariant channels too.  Both stripe partitions are
// thread-count independent, so the written golden maps and feature CSVs
// are bitwise identical for any LMMIR_THREADS.
//
// Usage: generate_benchmarks [count] [out_dir] [seed] [--grid-scale[=N]]
//
// --grid-scale replaces the BeGAN-style random corpus with a ladder of N
// (default 3) multi-layer large-grid cases whose die side doubles per
// step — unknown counts roughly quadruple, the regime the AMG / domain-
// decomposition preconditioners target.  `count` is ignored in this mode;
// `seed` still perturbs the current maps.
//
// LMMIR_PRECOND selects the golden-solver preconditioner
// (none|jacobi|ssor|ic0|amg|dd; default jacobi) and
// LMMIR_SOLVER_PRECISION the PCG arithmetic (double|mixed); see
// docs/SOLVER.md.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "features/contest_io.hpp"
#include "features/feature_context.hpp"
#include "features/maps.hpp"
#include "gen/suite.hpp"
#include "pdn/circuit.hpp"
#include "pdn/raster.hpp"
#include "pdn/solver.hpp"
#include "pdn/solver_context.hpp"
#include "pdn/stats.hpp"
#include "runtime/thread_pool.hpp"
#include "sparse/precision.hpp"

namespace {

/// Ladder of multi-layer large-grid cases: side doubles per step, so the
/// reduced-MNA unknown count roughly quadruples — the million-node solver
/// regime scaled down to whatever `steps` the host can afford.
std::vector<lmmir::gen::GeneratorConfig> grid_scale_suite(int steps,
                                                          std::uint64_t seed) {
  using namespace lmmir;
  std::vector<gen::GeneratorConfig> configs;
  for (int i = 0; i < steps; ++i) {
    const double side = 48.0 * static_cast<double>(1 << i);
    gen::GeneratorConfig cfg;
    cfg.name = "grid" + std::to_string(i);
    cfg.width_um = cfg.height_um = side;
    cfg.seed = seed + static_cast<std::uint64_t>(i);
    cfg.use_default_stack();
    cfg.bump_pitch_um = std::max(12.0, side / 4.0);
    cfg.n_hotspots = 3 + i;
    cfg.total_current = 0.08 * (side * side) / (64.0 * 64.0);
    configs.push_back(cfg);
  }
  return configs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lmmir;
  int grid_scale_steps = 0;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--grid-scale", 12) == 0) {
      grid_scale_steps = argv[i][12] == '='
          ? std::max(1, std::atoi(argv[i] + 13)) : 3;
    } else {
      positional.push_back(argv[i]);
    }
  }
  const int count = positional.size() > 0 ? std::atoi(positional[0]) : 5;
  const std::string out_dir =
      positional.size() > 1 ? positional[1] : "benchmarks";
  const std::uint64_t seed = positional.size() > 2
      ? static_cast<std::uint64_t>(std::atoll(positional[2])) : 2024;

  gen::SuiteOptions suite;  // default 1/8 contest scale
  const auto configs = grid_scale_steps > 0
      ? grid_scale_suite(grid_scale_steps, seed)
      : gen::fake_training_suite(count, seed, suite);

  pdn::SolveOptions solve_opts;
  solve_opts.cg.preconditioner =
      sparse::preconditioner_kind_from_env(solve_opts.cg.preconditioner);
  solve_opts.cg.precision =
      sparse::solver_precision_from_env(solve_opts.cg.precision);
  pdn::SolverContextStats context_stats;
  feat::FeatureContextStats feature_stats;

  // Work in groups of kGroup cases: generate the group's netlists
  // (deterministic per-config RNG, so grouping changes nothing), solve
  // them across the pool with one SolverContext per stripe, then
  // featurize + write before the next group — peak memory is one
  // group's netlists/circuits/solutions, not the whole corpus.  The
  // group/stripe partition depends only on the case count, so the
  // written golden maps are bitwise identical for any thread count.
  constexpr std::size_t kGroup = 64;
  constexpr std::size_t kStripes = 8;
  std::size_t contexts_used = 0;
  for (std::size_t begin = 0; begin < configs.size(); begin += kGroup) {
    const std::size_t end = std::min(configs.size(), begin + kGroup);
    contexts_used += std::min(kStripes, end - begin);

    std::vector<spice::Netlist> netlists;
    std::vector<std::unique_ptr<pdn::Circuit>> circuits;
    std::vector<const pdn::Circuit*> circuit_ptrs;
    netlists.reserve(end - begin);
    circuits.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      netlists.push_back(gen::generate_pdn(configs[i]));
      circuits.push_back(std::make_unique<pdn::Circuit>(netlists.back()));
      circuit_ptrs.push_back(circuits.back().get());
    }
    const std::vector<pdn::Solution> solutions = pdn::solve_ir_drop_batch(
        circuit_ptrs, solve_opts, kStripes, &context_stats);

    // Featurize over the pool with the matching stripe partition (one
    // FeatureContext per stripe, paired with the per-stripe
    // SolverContexts above), then write serially (disk-bound; keeps the
    // printed order).
    std::vector<const spice::Netlist*> netlist_ptrs;
    netlist_ptrs.reserve(end - begin);
    for (const auto& nl : netlists) netlist_ptrs.push_back(&nl);
    const std::vector<feat::FeatureMaps> all_maps =
        feat::compute_feature_maps_batch(netlist_ptrs, kStripes,
                                         &feature_stats);
    for (std::size_t i = begin; i < end; ++i) {
      const auto& cfg = configs[i];
      const spice::Netlist& nl = netlists[i - begin];
      const pdn::Solution& sol = solutions[i - begin];
      grid::Grid2D ir = pdn::rasterize_ir_drop(nl, sol);
      const std::string dir = out_dir + "/" + cfg.name;
      feat::write_contest_case(dir, nl, all_maps[i - begin], ir);

      const pdn::TestcaseStats st = pdn::compute_stats(nl, cfg.name);
      std::printf("%-10s %6zu nodes  %-9s  worst drop %.2f%%  -> %s\n",
                  st.name.c_str(), st.nodes, st.shape_string().c_str(),
                  100.0 * sol.worst_drop / sol.vdd, dir.c_str());
    }
  }
  std::printf("wrote %zu benchmark case(s) under %s/\n", configs.size(),
              out_dir.c_str());
  std::printf("solver contexts (%zu striped context(s) over %zu thread(s)): "
              "%zu solve(s) = %zu rebuild(s) + %zu refresh(es), %zu "
              "preconditioner build(s), %zu warm start(s)\n",
              contexts_used,
              runtime::global_threads(), context_stats.solves,
              context_stats.rebuilds, context_stats.refreshes,
              context_stats.precond_builds, context_stats.warm_starts);
  std::printf("feature contexts: %zu extraction(s) = %zu channel(s) computed "
              "+ %zu reused (%zu revision hit(s))\n",
              feature_stats.extractions, feature_stats.channels_computed,
              feature_stats.channels_reused, feature_stats.revision_hits);
  return 0;
}
