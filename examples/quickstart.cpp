// Quickstart: the whole LMM-IR flow in ~60 lines.
//
//   1. synthesize a small PDN benchmark (SPICE netlist);
//   2. golden-solve it for the ground-truth static IR drop;
//   3. train LMM-IR (two-stage) on a handful of generated cases;
//   4. predict the held-out case and report F1 / MAE / TAT.
//
// Runs in about a minute on one CPU core.
#include <cstdio>

#include "core/pipeline.hpp"
#include "models/lmmir_model.hpp"
#include "pdn/stats.hpp"
#include "spice/writer.hpp"

int main() {
  using namespace lmmir;

  // Small-scale pipeline (32 px maps, a few training cases).
  core::PipelineOptions opts;
  opts.sample.input_side = 32;
  opts.sample.pc_grid = 4;
  opts.suite_scale = 0.06;
  opts.fake_cases = 6;
  opts.real_cases = 2;
  opts.train.pretrain_epochs = 1;
  opts.train.finetune_epochs = 4;
  core::Pipeline pipe(opts);

  // 1-2. A held-out benchmark: generate, inspect, golden-solve.
  gen::GeneratorConfig cfg;
  cfg.name = "quickstart_case";
  cfg.width_um = 40;
  cfg.height_um = 40;
  cfg.seed = 1234;
  cfg.use_default_stack();
  const spice::Netlist netlist = gen::generate_pdn(cfg);
  const pdn::TestcaseStats stats = pdn::compute_stats(netlist, cfg.name);
  std::printf("generated %s: %zu nodes, %zu R, %zu I, %zu V, shape %s\n",
              stats.name.c_str(), stats.nodes, stats.resistors,
              stats.current_sources, stats.voltage_sources,
              stats.shape_string().c_str());

  const data::Sample held_out = data::make_sample(netlist, cfg.name, opts.sample);
  std::printf("golden solve: %.3f s, worst drop %.2f%% of VDD\n",
              held_out.golden_solve_seconds,
              static_cast<double>(held_out.truth_full.max()));

  // 3. Train LMM-IR on generated data.
  models::LmmirConfig mc;
  models::LMMIR model(mc);
  std::printf("LMM-IR parameters: %zu\n", model.parameter_count());
  const data::Dataset dataset = pipe.build_training_dataset();
  const train::TrainHistory hist = train::fit(model, dataset, opts.train);
  std::printf("trained in %.1f s (final fine-tune loss %.4f)\n", hist.seconds,
              static_cast<double>(hist.finetune_loss.back()));

  // 4. Predict the held-out case.
  const train::EvalCase ec = train::evaluate_case(model, held_out);
  std::printf("held-out case %s: F1 %.3f  MAE %.2f (1e-4 V)  TAT %.3f s "
              "(golden %.3f s)\n",
              ec.name.c_str(), ec.f1, ec.mae_1e4_volts, ec.tat_seconds,
              ec.golden_seconds);
  return 0;
}
