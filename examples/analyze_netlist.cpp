// analyze_netlist: the "commercial tool" flow of Fig. 1 — parse a SPICE
// PDN netlist, run the golden static IR-drop analysis, and export the
// feature maps, the IR-drop map (CSV + heat-map image) and a violation
// report.
//
// Usage: analyze_netlist [netlist.sp] [out_dir]
// With no arguments a demonstration netlist is generated first.
// LMMIR_PRECOND selects the golden-solver preconditioner
// (none|jacobi|ssor|ic0; default jacobi).
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "features/contest_io.hpp"
#include "features/feature_context.hpp"
#include "features/maps.hpp"
#include "gen/began.hpp"
#include "pdn/circuit.hpp"
#include "pdn/raster.hpp"
#include "pdn/solver.hpp"
#include "pdn/stats.hpp"
#include "spice/parser.hpp"
#include "spice/writer.hpp"
#include "util/image_io.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace lmmir;
  const std::string out_dir = argc > 2 ? argv[2] : "analyze_out";
  std::filesystem::create_directories(out_dir);

  spice::Netlist netlist;
  if (argc > 1) {
    spice::ParseStats pstats;
    netlist = spice::parse_netlist_file(argv[1], &pstats);
    std::printf("parsed %s: %zu lines, %zu elements\n", argv[1], pstats.lines,
                pstats.elements);
  } else {
    gen::GeneratorConfig cfg;
    cfg.name = "demo";
    cfg.width_um = 64;
    cfg.height_um = 64;
    cfg.seed = 99;
    cfg.use_default_stack();
    netlist = gen::generate_pdn(cfg);
    spice::write_netlist_file(out_dir + "/netlist.sp", netlist, "demo PDN");
    std::printf("no input given; generated demo netlist -> %s/netlist.sp\n",
                out_dir.c_str());
  }

  const pdn::TestcaseStats stats = pdn::compute_stats(netlist, "input");
  std::printf("nodes %zu | R %zu | I %zu | V %zu | layers %d | shape %s\n",
              stats.nodes, stats.resistors, stats.current_sources,
              stats.voltage_sources, stats.layers,
              stats.shape_string().c_str());

  util::Stopwatch watch;
  const pdn::Circuit circuit(netlist);
  pdn::SolveOptions solve_opts;
  solve_opts.cg.preconditioner =
      sparse::preconditioner_kind_from_env(solve_opts.cg.preconditioner);
  const pdn::Solution sol = pdn::solve_ir_drop(circuit, solve_opts);
  std::printf("solve: %zu unknowns, %zu PCG iterations (%s), residual %.2e, "
              "%.3f s (precond setup %.3f s, apply %.3f s)\n",
              sol.unknowns, sol.cg_iterations,
              sparse::to_string(sol.preconditioner), sol.cg_residual,
              watch.seconds(), sol.precond_setup_seconds,
              sol.precond_apply_seconds);
  std::printf("VDD %.3f V | worst IR drop %.4f V (%.2f%%)\n", sol.vdd,
              sol.worst_drop, 100.0 * sol.worst_drop / sol.vdd);

  // Violation report: nodes above 90% of the worst drop (hotspots).
  const double thresh = 0.9 * sol.worst_drop;
  std::size_t violations = 0;
  for (double d : sol.ir_drop)
    if (d > thresh) ++violations;
  std::printf("hotspot nodes (>90%% of worst drop): %zu\n", violations);

  // Export feature maps + IR map in the contest layout, plus a PPM image.
  // The FeatureContext runs the single-pass extraction (and would reuse
  // topology-invariant channels were this loop re-run on a load sweep).
  const grid::Grid2D ir = pdn::rasterize_ir_drop(netlist, sol);
  util::Stopwatch feat_watch;
  feat::FeatureContext feature_context;
  const feat::FeatureMaps& maps = feature_context.extract(netlist);
  std::printf("features: %d channel(s) in %.3f s (single classify pass)\n",
              feat::kChannelCount, feat_watch.seconds());
  feat::write_contest_case(out_dir, netlist, maps, ir);
  const util::RgbImage img =
      util::colorize(ir.data(), ir.cols(), ir.rows(), ir.min(), ir.max());
  util::write_ppm(out_dir + "/ir_drop.ppm", img);
  std::printf("wrote contest-format case + heat map to %s/\n", out_dir.c_str());
  return 0;
}
