#pragma once
// Deterministic random number generation.  Every stochastic component in the
// library takes an explicit Rng (or seed) so experiments are reproducible.
//
// Thread ownership: an Rng instance is NOT thread-safe and must be owned by
// exactly one thread for its lifetime.  Never share an instance across
// runtime::ThreadPool workers or serving threads — draws would race on the
// engine state and destroy reproducibility.  Code that needs randomness on
// multiple threads derives one independent stream per thread up front via
// fork() (or per-chunk seeds) on the owning thread, then hands each child to
// a single worker.  The parallelized kernels (tensor / sparse / feature
// rasterization) draw no random numbers, so they stay deterministic for any
// thread count.
#include <cstdint>
#include <random>
#include <vector>

namespace lmmir::util {

/// Thin wrapper over std::mt19937_64 with the distributions the library
/// uses.  Single-thread ownership; see the header comment.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed1234abcdefULL) : engine_(seed) {}

  /// Uniform float in [lo, hi).
  float uniform(float lo = 0.0f, float hi = 1.0f) {
    return std::uniform_real_distribution<float>(lo, hi)(engine_);
  }
  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  /// Normal with the given mean / standard deviation.
  float normal(float mean = 0.0f, float stddev = 1.0f) {
    return std::normal_distribution<float>(mean, stddev)(engine_);
  }
  /// Uniform integer in [lo, hi] (inclusive).
  int randint(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }
  /// Bernoulli trial.
  bool chance(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// n normal samples.
  std::vector<float> normal_vec(std::size_t n, float mean = 0.0f,
                                float stddev = 1.0f) {
    std::vector<float> v(n);
    for (auto& x : v) x = normal(mean, stddev);
    return v;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(randint(0, static_cast<int>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child stream (for per-case generators).
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace lmmir::util
