#include "util/image_io.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace lmmir::util {

void heat_color(float t, std::uint8_t& r, std::uint8_t& g, std::uint8_t& b) {
  t = std::clamp(t, 0.0f, 1.0f);
  // Piecewise-linear blue → cyan → green → yellow → red ramp.
  struct Stop { float t; float r, g, b; };
  static constexpr Stop stops[] = {
      {0.00f, 0.05f, 0.05f, 0.45f}, {0.25f, 0.00f, 0.70f, 0.90f},
      {0.50f, 0.10f, 0.80f, 0.25f}, {0.75f, 0.95f, 0.90f, 0.10f},
      {1.00f, 0.90f, 0.10f, 0.05f}};
  const Stop* lo = &stops[0];
  const Stop* hi = &stops[4];
  for (int i = 0; i < 4; ++i) {
    if (t >= stops[i].t && t <= stops[i + 1].t) {
      lo = &stops[i];
      hi = &stops[i + 1];
      break;
    }
  }
  const float span = hi->t - lo->t;
  const float u = span > 0 ? (t - lo->t) / span : 0.0f;
  r = static_cast<std::uint8_t>(255.0f * (lo->r + u * (hi->r - lo->r)));
  g = static_cast<std::uint8_t>(255.0f * (lo->g + u * (hi->g - lo->g)));
  b = static_cast<std::uint8_t>(255.0f * (lo->b + u * (hi->b - lo->b)));
}

RgbImage colorize(const std::vector<float>& field, std::size_t width,
                  std::size_t height, float lo, float hi) {
  if (field.size() != width * height)
    throw std::invalid_argument("colorize: field size mismatch");
  RgbImage img;
  img.width = width;
  img.height = height;
  img.pixels.resize(width * height * 3);
  const float span = hi - lo;
  for (std::size_t i = 0; i < field.size(); ++i) {
    const float t = span > 0 ? (field[i] - lo) / span : 0.0f;
    heat_color(t, img.pixels[3 * i], img.pixels[3 * i + 1],
               img.pixels[3 * i + 2]);
  }
  return img;
}

void write_pgm(const std::string& path, const GrayImage& img) {
  if (img.pixels.size() != img.width * img.height)
    throw std::invalid_argument("write_pgm: size mismatch");
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("write_pgm: cannot open " + path);
  f << "P5\n" << img.width << ' ' << img.height << "\n255\n";
  f.write(reinterpret_cast<const char*>(img.pixels.data()),
          static_cast<std::streamsize>(img.pixels.size()));
  if (!f) throw std::runtime_error("write_pgm: write failed for " + path);
}

void write_ppm(const std::string& path, const RgbImage& img) {
  if (img.pixels.size() != img.width * img.height * 3)
    throw std::invalid_argument("write_ppm: size mismatch");
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("write_ppm: cannot open " + path);
  f << "P6\n" << img.width << ' ' << img.height << "\n255\n";
  f.write(reinterpret_cast<const char*>(img.pixels.data()),
          static_cast<std::streamsize>(img.pixels.size()));
  if (!f) throw std::runtime_error("write_ppm: write failed for " + path);
}

}  // namespace lmmir::util
