#pragma once
// Minimal leveled logger.  Free functions write to stderr; the level is a
// process-wide setting so libraries can log without threading a logger
// object through every API.
//
// Hot-path discipline: every log_* template checks log_enabled() — one
// relaxed atomic load — BEFORE building the message, so a filtered call
// costs no string construction, no ostringstream, and no sink lock.
#include <initializer_list>
#include <sstream>
#include <string>
#include <utility>

namespace lmmir::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Set the global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// True when a message at `level` would be emitted (check before paying
/// for formatting).
bool log_enabled(LogLevel level);

/// Emit one log line (a newline is appended).
void log_message(LogLevel level, const std::string& msg);

/// One structured stat line: "event key=value key2=value2 ..." — the
/// single helper every subsystem's stat reporting routes through, so stat
/// lines stay grep-able and machine-parseable.  Values are emitted
/// verbatim (callers stringify).  Formats nothing when filtered.
using LogKv = std::pair<const char*, std::string>;
void log_stats(const std::string& event, std::initializer_list<LogKv> kvs,
               LogLevel level = LogLevel::Info);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_enabled(LogLevel::Debug))
    log_message(LogLevel::Debug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_enabled(LogLevel::Info))
    log_message(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_enabled(LogLevel::Warn))
    log_message(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_enabled(LogLevel::Error))
    log_message(LogLevel::Error, detail::concat(std::forward<Args>(args)...));
}

}  // namespace lmmir::util
