#pragma once
// Minimal leveled logger.  Free functions write to stderr; the level is a
// process-wide setting so libraries can log without threading a logger
// object through every API.
#include <sstream>
#include <string>

namespace lmmir::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Set the global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line (a newline is appended).
void log_message(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::Debug)
    log_message(LogLevel::Debug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::Info)
    log_message(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::Warn)
    log_message(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::Error)
    log_message(LogLevel::Error, detail::concat(std::forward<Args>(args)...));
}

}  // namespace lmmir::util
