#pragma once
// Small string helpers shared by the SPICE parser and CSV reader.
#include <string>
#include <string_view>
#include <vector>

namespace lmmir::util {

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view s);

/// Split on any run of whitespace; empty tokens are dropped.
std::vector<std::string> split_ws(std::string_view s);

/// Split on a single-character delimiter; empty tokens are kept.
std::vector<std::string> split(std::string_view s, char delim);

/// ASCII lower-case copy.
std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);

/// Parse a double; returns false on malformed input instead of throwing.
bool parse_double(std::string_view s, double& out);

/// Parse a long; returns false on malformed input.
bool parse_long(std::string_view s, long& out);

/// printf-style float formatting ("%.*f") returning std::string.
std::string format_fixed(double v, int decimals);

}  // namespace lmmir::util
