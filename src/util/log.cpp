#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace lmmir::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

// Serializes sink writes so lines from pool workers / serving threads never
// interleave (stdio locks per call, but ordering across the formatted write
// is only guaranteed under this mutex).
std::mutex g_sink_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

bool log_enabled(LogLevel level) {
  // Relaxed: the threshold is advisory; a racing set_log_level may let one
  // in-flight line through, which is fine for a log filter.
  return level >= g_level.load(std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& msg) {
  if (!log_enabled(level)) return;
  std::lock_guard<std::mutex> lock(g_sink_mu);
  std::fprintf(stderr, "[lmmir %-5s] %s\n", level_name(level), msg.c_str());
}

void log_stats(const std::string& event, std::initializer_list<LogKv> kvs,
               LogLevel level) {
  if (!log_enabled(level)) return;  // no formatting when filtered
  std::string line = event;
  for (const auto& [key, value] : kvs) {
    line += ' ';
    line += key;
    line += '=';
    line += value;
  }
  log_message(level, line);
}

}  // namespace lmmir::util
