#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace lmmir::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

// Serializes sink writes so lines from pool workers / serving threads never
// interleave (stdio locks per call, but ordering across the formatted write
// is only guaranteed under this mutex).
std::mutex g_sink_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_sink_mu);
  std::fprintf(stderr, "[lmmir %-5s] %s\n", level_name(level), msg.c_str());
}

}  // namespace lmmir::util
