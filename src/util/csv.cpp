#include "util/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/string_utils.hpp"

namespace lmmir::util {

CsvMatrix read_csv_string(const std::string& text) {
  CsvMatrix m;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto trimmed = trim(line);
    if (trimmed.empty()) continue;
    auto cells = split(trimmed, ',');
    if (m.cols == 0) {
      m.cols = cells.size();
    } else if (cells.size() != m.cols) {
      throw std::runtime_error("csv: ragged row at line " +
                               std::to_string(lineno));
    }
    for (const auto& cell : cells) {
      double v = 0.0;
      if (!parse_double(cell, v))
        throw std::runtime_error("csv: bad cell '" + cell + "' at line " +
                                 std::to_string(lineno));
      m.values.push_back(static_cast<float>(v));
    }
    ++m.rows;
  }
  return m;
}

CsvMatrix read_csv_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("csv: cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return read_csv_string(ss.str());
}

std::string write_csv_string(const CsvMatrix& m, int decimals) {
  std::ostringstream out;
  for (std::size_t r = 0; r < m.rows; ++r) {
    for (std::size_t c = 0; c < m.cols; ++c) {
      if (c) out << ',';
      out << format_fixed(m.at(r, c), decimals);
    }
    out << '\n';
  }
  return out.str();
}

void write_csv_file(const std::string& path, const CsvMatrix& m, int decimals) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("csv: cannot open for write " + path);
  f << write_csv_string(m, decimals);
  if (!f) throw std::runtime_error("csv: write failed for " + path);
}

}  // namespace lmmir::util
