#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/string_utils.hpp"

namespace lmmir::util {

namespace {
bool looks_numeric(const std::string& s) {
  double d;
  return parse_double(s, d);
}
}  // namespace

void TextTable::set_header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), false});
}

void TextTable::add_separator() { rows_.push_back(Row{{}, true}); }

std::string TextTable::render() const {
  // Column widths over header + all rows.
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.cells.size());
  std::vector<std::size_t> width(ncols, 0);
  auto measure = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  measure(header_);
  for (const auto& r : rows_)
    if (!r.separator) measure(r.cells);

  std::size_t total = 0;
  for (auto w : width) total += w + 3;

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string cell = i < cells.size() ? cells[i] : "";
      const bool right = looks_numeric(cell);
      out << ' ';
      if (right)
        out << std::string(width[i] - cell.size(), ' ') << cell;
      else
        out << cell << std::string(width[i] - cell.size(), ' ');
      out << " |";
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) {
    if (r.separator)
      out << std::string(total, '-') << '\n';
    else
      emit(r.cells);
  }
  return out.str();
}

}  // namespace lmmir::util
