#include "util/string_utils.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace lmmir::util {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool parse_double(std::string_view s, double& out) {
  s = trim(s);
  if (s.empty()) return false;
  // std::from_chars for double is available in libstdc++ 11+.
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

bool parse_long(std::string_view s, long& out) {
  s = trim(s);
  if (s.empty()) return false;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

std::string format_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace lmmir::util
