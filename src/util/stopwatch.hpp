#pragma once
// Wall-clock stopwatch used for the paper's TAT (turn-around time) metric.
#include <chrono>

namespace lmmir::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lmmir::util
