#pragma once
// Monotonic stopwatch used for the paper's TAT (turn-around time) metric
// and all bench timing.  Built on obs::now_ns() — the process's single
// steady-clock source — so stopwatch readings, span timestamps, and bench
// records all live on one time scale (never the wall clock, which jumps
// under NTP adjustment).
#include <cstdint>

#include "obs/clock.hpp"

namespace lmmir::util {

class Stopwatch {
 public:
  Stopwatch() : start_ns_(obs::now_ns()) {}

  void reset() { start_ns_ = obs::now_ns(); }

  /// Elapsed nanoseconds since construction or the last reset().
  std::uint64_t nanoseconds() const { return obs::now_ns() - start_ns_; }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return static_cast<double>(nanoseconds()) * 1e-9;
  }
  double milliseconds() const {
    return static_cast<double>(nanoseconds()) * 1e-6;
  }

  /// Start stamp on the obs::now_ns() scale (span-comparable).
  std::uint64_t start_ns() const { return start_ns_; }

 private:
  std::uint64_t start_ns_;
};

}  // namespace lmmir::util
