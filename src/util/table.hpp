#pragma once
// Plain-text table formatter used by the benchmark binaries to print
// paper-style tables (Table I / II / III) with aligned columns.
#include <string>
#include <vector>

namespace lmmir::util {

class TextTable {
 public:
  /// Set (or replace) the header row.
  void set_header(std::vector<std::string> cells);

  /// Append one data row; rows may have differing cell counts.
  void add_row(std::vector<std::string> cells);

  /// Append a horizontal separator at the current position.
  void add_separator();

  /// Render with column alignment. Numeric-looking cells are right-aligned.
  std::string render() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace lmmir::util
