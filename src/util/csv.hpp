#pragma once
// CSV matrix I/O in the ICCAD-2023 contest convention: one float per cell,
// comma separated, one matrix row per line, no header.
#include <string>
#include <vector>

namespace lmmir::util {

/// Row-major matrix of floats as read from / written to CSV.
struct CsvMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<float> values;  // rows * cols, row-major

  float at(std::size_t r, std::size_t c) const { return values[r * cols + c]; }
  float& at(std::size_t r, std::size_t c) { return values[r * cols + c]; }
};

/// Parse CSV text into a matrix. Throws std::runtime_error on ragged rows
/// or unparsable cells.
CsvMatrix read_csv_string(const std::string& text);

/// Read a CSV file. Throws std::runtime_error if the file cannot be opened.
CsvMatrix read_csv_file(const std::string& path);

/// Serialize with the given precision (default 6 significant decimals).
std::string write_csv_string(const CsvMatrix& m, int decimals = 6);

/// Write a CSV file. Throws std::runtime_error on I/O failure.
void write_csv_file(const std::string& path, const CsvMatrix& m,
                    int decimals = 6);

}  // namespace lmmir::util
