#pragma once
// PGM / PPM writers used to emit IR-drop heat maps (Fig. 5 reproduction).
// Binary formats (P5 / P6) keep files small and viewable everywhere.
#include <cstdint>
#include <string>
#include <vector>

namespace lmmir::util {

/// 8-bit grayscale image, row-major.
struct GrayImage {
  std::size_t width = 0;
  std::size_t height = 0;
  std::vector<std::uint8_t> pixels;  // height * width
};

/// 8-bit RGB image, row-major, 3 bytes per pixel.
struct RgbImage {
  std::size_t width = 0;
  std::size_t height = 0;
  std::vector<std::uint8_t> pixels;  // height * width * 3
};

/// Map [0,1] to a blue→cyan→yellow→red heat palette (values are clamped).
void heat_color(float t, std::uint8_t& r, std::uint8_t& g, std::uint8_t& b);

/// Normalize a float field to [0,1] by (v - lo) / (hi - lo) and colorize.
/// If hi <= lo the output is all-blue (degenerate field).
RgbImage colorize(const std::vector<float>& field, std::size_t width,
                  std::size_t height, float lo, float hi);

void write_pgm(const std::string& path, const GrayImage& img);
void write_ppm(const std::string& path, const RgbImage& img);

}  // namespace lmmir::util
