#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <stdexcept>

#include "tensor/arena.hpp"
#include "util/log.hpp"

namespace lmmir::runtime {

namespace {
thread_local const ThreadPool* tl_worker_of = nullptr;
}

void Latch::count_down(std::ptrdiff_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  count_ -= n;
  if (count_ <= 0) cv_.notify_all();
}

void Latch::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return count_ <= 0; });
}

bool Latch::try_wait() {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ <= 0;
}

ThreadPool::ThreadPool(std::size_t threads)
    : ThreadPool(threads, tensor::arena_enabled_from_env()) {}

ThreadPool::ThreadPool(std::size_t threads, bool worker_arenas) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  if (worker_arenas) {
    worker_arenas_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
      worker_arenas_.push_back(std::make_unique<tensor::TensorArena>());
  }
  try {
    for (std::size_t i = 0; i < threads; ++i)
      workers_.emplace_back([this, i] { worker_loop(i); });
  } catch (...) {
    // Thread creation failed mid-spawn (resource exhaustion).  Join the
    // workers that did start before rethrowing — destroying a joinable
    // std::thread would terminate the process.
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

tensor::TensorArena* ThreadPool::worker_arena(std::size_t i) const {
  return i < worker_arenas_.size() ? worker_arenas_[i].get() : nullptr;
}

void ThreadPool::worker_loop(std::size_t index) {
  tl_worker_of = this;
  // Install this worker's arena for the thread's whole lifetime: any
  // kernel chunk running here draws pooled scratch from it.
  tensor::ArenaScope scope(worker_arena(index));
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stop_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
  tl_worker_of = nullptr;
}

std::future<void> ThreadPool::submit(std::function<void()> job) {
  auto task = std::make_shared<std::packaged_task<void()>>(std::move(job));
  std::future<void> fut = task->get_future();
  post([task] { (*task)(); });
  return fut;
}

void ThreadPool::post(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_)
      throw std::runtime_error("ThreadPool::post: pool is shutting down");
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

bool ThreadPool::in_worker() const { return tl_worker_of == this; }

namespace {

// Upper bound on pool concurrency: far above any real machine this code
// targets, low enough that a typo'd LMMIR_THREADS can't exhaust thread
// resources.
constexpr std::size_t kMaxThreads = 256;

std::size_t default_threads() {
  if (const char* v = std::getenv("LMMIR_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(v, &end, 10);
    if (end != v && *end == '\0' && parsed > 0)
      return std::min<std::size_t>(static_cast<std::size_t>(parsed),
                                   kMaxThreads);
    util::log_warn("ignoring malformed LMMIR_THREADS='", v, "'");
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc ? hc : 1;
}

std::mutex g_mu;
std::size_t g_threads = 0;  // 0 = not yet initialized
std::unique_ptr<ThreadPool> g_pool;

void configure_locked(std::size_t threads, bool worker_arenas) {
  threads = std::clamp<std::size_t>(threads, 1, kMaxThreads);
  g_pool.reset();  // join old workers before replacing
  if (threads > 1)
    g_pool = std::make_unique<ThreadPool>(threads - 1, worker_arenas);
  g_threads = threads;
}

void configure_locked(std::size_t threads) {
  configure_locked(threads, tensor::arena_enabled_from_env());
}

}  // namespace

std::size_t global_threads() {
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_threads == 0) configure_locked(default_threads());
  return g_threads;
}

void set_global_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lock(g_mu);
  configure_locked(threads);
}

void set_global_threads(std::size_t threads, bool worker_arenas) {
  std::lock_guard<std::mutex> lock(g_mu);
  configure_locked(threads, worker_arenas);
}

ThreadPool* global_pool() {
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_threads == 0) configure_locked(default_threads());
  return g_pool.get();
}

}  // namespace lmmir::runtime
