#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <utility>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace lmmir::runtime {

namespace {
thread_local const ThreadPool* tl_worker_of = nullptr;

// Meyers singletons: the default hook is registered from other
// translation units' static initializers (tensor/arena.cpp), so its
// storage must be initialization-order safe.
std::mutex& default_init_mu() {
  static std::mutex mu;
  return mu;
}

WorkerInit& default_init_storage() {
  static WorkerInit init;
  return init;
}
}  // namespace

void set_default_worker_init(WorkerInit init) {
  std::lock_guard<std::mutex> lock(default_init_mu());
  default_init_storage() = std::move(init);
}

WorkerInit default_worker_init() {
  std::lock_guard<std::mutex> lock(default_init_mu());
  return default_init_storage();
}

void Latch::count_down(std::ptrdiff_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  count_ -= n;
  if (count_ <= 0) cv_.notify_all();
}

void Latch::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return count_ <= 0; });
}

bool Latch::try_wait() {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ <= 0;
}

ThreadPool::ThreadPool(std::size_t threads)
    : ThreadPool(threads, default_worker_init()) {}

ThreadPool::ThreadPool(std::size_t threads, WorkerInit init)
    : init_(std::move(init)) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  // Shared (not a ctor local): workers touch the latch after the ctor
  // may already have unwound on the mid-spawn failure path below.
  auto started = std::make_shared<Latch>(static_cast<std::ptrdiff_t>(threads));
  try {
    for (std::size_t i = 0; i < threads; ++i)
      workers_.emplace_back([this, i, started] { worker_loop(i, started); });
  } catch (...) {
    // Thread creation failed mid-spawn (resource exhaustion).  Join the
    // workers that did start before rethrowing — destroying a joinable
    // std::thread would terminate the process.
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
    throw;
  }
  // Every worker has run its init hook once this returns (see header).
  started->wait();
  workers_gauged_ = obs::metrics_enabled();
  if (workers_gauged_)
    obs::gauge("lmmir_pool_workers").add(static_cast<double>(threads));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  if (workers_gauged_)
    // The ctor counted these workers in, so they count out even if
    // metrics were toggled off in between.
    obs::gauge("lmmir_pool_workers")
        .add_unchecked(-static_cast<double>(workers_.size()));
}

void ThreadPool::worker_loop(std::size_t index,
                             std::shared_ptr<Latch> started) {
  tl_worker_of = this;
  // Per-worker state (e.g. a tensor scratch arena) installs here, on the
  // worker's own thread, and lives until the worker exits.
  WorkerCleanup cleanup;
  if (init_) {
    try {
      cleanup = init_(index);
    } catch (const std::exception& e) {
      util::log_warn("ThreadPool worker ", index, ": init hook failed (",
                     e.what(), "); continuing without per-worker state");
    } catch (...) {
      util::log_warn("ThreadPool worker ", index,
                     ": init hook failed; continuing without per-worker state");
    }
  }
  started->count_down();
  started.reset();
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stop_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    {
      obs::Span task_span("pool.task");
      const bool record = obs::metrics_enabled();
      const std::uint64_t t0 = record ? obs::now_ns() : 0;
      job();
      if (record) {
        // Utilization numerator: lmmir_pool_busy_ns_total against
        // wall-clock * lmmir_pool_workers gives pool occupancy.
        static obs::Counter& tasks = obs::counter("lmmir_pool_tasks_total");
        static obs::Counter& busy = obs::counter("lmmir_pool_busy_ns_total");
        tasks.add();
        busy.add(obs::now_ns() - t0);
      }
    }
  }
  if (cleanup) {
    try {
      cleanup();
    } catch (...) {
      util::log_warn("ThreadPool worker ", index, ": cleanup hook threw");
    }
  }
  tl_worker_of = nullptr;
}

std::future<void> ThreadPool::submit(std::function<void()> job) {
  auto task = std::make_shared<std::packaged_task<void()>>(std::move(job));
  std::future<void> fut = task->get_future();
  post([task] { (*task)(); });
  return fut;
}

void ThreadPool::post(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_)
      throw std::runtime_error("ThreadPool::post: pool is shutting down");
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

bool ThreadPool::in_worker() const { return tl_worker_of == this; }

namespace {

// Upper bound on pool concurrency: far above any real machine this code
// targets, low enough that a typo'd LMMIR_THREADS can't exhaust thread
// resources.
constexpr std::size_t kMaxThreads = 256;

std::size_t default_threads() {
  if (const char* v = std::getenv("LMMIR_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(v, &end, 10);
    if (end != v && *end == '\0' && parsed > 0)
      return std::min<std::size_t>(static_cast<std::size_t>(parsed),
                                   kMaxThreads);
    util::log_warn("ignoring malformed LMMIR_THREADS='", v, "'");
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc ? hc : 1;
}

std::mutex g_mu;
std::size_t g_threads = 0;  // 0 = not yet initialized
std::unique_ptr<ThreadPool> g_pool;

void configure_locked(std::size_t threads, WorkerInit init) {
  threads = std::clamp<std::size_t>(threads, 1, kMaxThreads);
  g_pool.reset();  // join old workers before replacing
  if (threads > 1)
    g_pool = std::make_unique<ThreadPool>(threads - 1, std::move(init));
  g_threads = threads;
}

void configure_locked(std::size_t threads) {
  configure_locked(threads, default_worker_init());
}

}  // namespace

std::size_t global_threads() {
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_threads == 0) configure_locked(default_threads());
  return g_threads;
}

void set_global_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lock(g_mu);
  configure_locked(threads);
}

void set_global_threads(std::size_t threads, WorkerInit init) {
  std::lock_guard<std::mutex> lock(g_mu);
  configure_locked(threads, std::move(init));
}

ThreadPool* global_pool() {
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_threads == 0) configure_locked(default_threads());
  return g_pool.get();
}

}  // namespace lmmir::runtime
