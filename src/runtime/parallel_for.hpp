#pragma once
// Range fan-out over the runtime thread pool.
//
//   runtime::parallel_for(0, rows, grain, [&](std::size_t lo, std::size_t hi) {
//     for (std::size_t r = lo; r < hi; ++r) ...   // disjoint output rows
//   });
//
// The body receives contiguous half-open chunks that exactly cover
// [begin, end); each index is visited exactly once.  The calling thread
// participates, chunks are joined with a Latch, and the first exception a
// chunk throws is rethrown on the caller after all chunks finish.  Runs
// inline (serial) when the range is below the grain, the global pool is
// configured to one thread, or the caller is itself a pool worker (no
// nested parallelism).  The serial path invokes the callable directly —
// type erasure (and its possible allocation) happens only when work is
// actually fanned out, so tiny kernels pay nothing.
#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>

#include "runtime/thread_pool.hpp"

namespace lmmir::runtime {

using RangeBody = std::function<void(std::size_t begin, std::size_t end)>;

namespace detail {
/// Fan [begin, end) out over `pool` in `ntasks` even chunks (the caller
/// runs chunk 0).  Only called once parallel_for decided to go parallel.
void parallel_run(ThreadPool* pool, std::size_t begin, std::size_t end,
                  std::size_t ntasks, const RangeBody& body);
}  // namespace detail

/// Fan the range out over `pool` (caller participates). grain = minimum
/// chunk length; 0 picks n / (4 * workers).
template <typename Body>
void parallel_for(ThreadPool* pool, std::size_t begin, std::size_t end,
                  std::size_t grain, Body&& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t workers = pool ? pool->size() : 0;
  if (grain == 0) grain = std::max<std::size_t>(1, n / (4 * (workers + 1)));
  const std::size_t ntasks =
      std::min<std::size_t>(workers + 1, (n + grain - 1) / grain);
  if (ntasks <= 1 || workers == 0 || pool->in_worker()) {
    body(begin, end);
    return;
  }
  detail::parallel_run(pool, begin, end, ntasks,
                       RangeBody(std::forward<Body>(body)));
}

/// Same, over the process-wide pool.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  Body&& body) {
  parallel_for(global_pool(), begin, end, grain, std::forward<Body>(body));
}

/// Grain (in items) so one chunk carries at least `min_chunk_cost` scalar
/// operations when each item costs `per_item_cost`; keeps tiny kernels
/// serial and amortizes enqueue overhead on large ones.
inline std::size_t grain_for_cost(std::size_t per_item_cost,
                                  std::size_t min_chunk_cost = (1u << 15)) {
  if (per_item_cost == 0) per_item_cost = 1;
  const std::size_t g = min_chunk_cost / per_item_cost;
  return g ? g : 1;
}

}  // namespace lmmir::runtime
