#include "runtime/parallel_for.hpp"

#include <exception>
#include <mutex>

namespace lmmir::runtime::detail {

void parallel_run(ThreadPool* pool, std::size_t begin, std::size_t end,
                  std::size_t ntasks, const RangeBody& body) {
  const std::size_t n = end - begin;

  std::exception_ptr eptr;
  std::mutex emu;
  auto run_chunk = [&](std::size_t lo, std::size_t hi) {
    try {
      body(lo, hi);
    } catch (...) {
      std::lock_guard<std::mutex> lock(emu);
      if (!eptr) eptr = std::current_exception();
    }
  };

  // Even static partition: chunk t covers [begin + t*n/ntasks, ...).
  Latch latch(static_cast<std::ptrdiff_t>(ntasks - 1));
  std::size_t posted = 0;
  try {
    for (std::size_t t = 1; t < ntasks; ++t) {
      const std::size_t lo = begin + t * n / ntasks;
      const std::size_t hi = begin + (t + 1) * n / ntasks;
      pool->post([&, lo, hi] {
        run_chunk(lo, hi);
        latch.count_down();
      });
      ++posted;
    }
  } catch (...) {
    // post() failed (pool shutting down).  Chunks already queued reference
    // this frame — settle the latch for the ones never posted and wait for
    // the rest before letting the error unwind the stack.
    latch.count_down(static_cast<std::ptrdiff_t>(ntasks - 1 - posted));
    latch.wait();
    throw;
  }
  run_chunk(begin, begin + n / ntasks);
  latch.wait();
  if (eptr) std::rethrow_exception(eptr);
}

}  // namespace lmmir::runtime::detail
