#pragma once
// Fixed-size worker pool backing intra-op parallelism (tensor / sparse /
// feature kernels) and the serving subsystem.
//
// Threading model of the library:
//  - a single process-wide pool (global_pool) sized from LMMIR_THREADS or
//    the hardware concurrency; hot loops fan out over it via parallel_for
//    (see runtime/parallel_for.hpp) and fall back to serial execution when
//    the range is small or the pool is configured to one thread;
//  - worker threads never create nested parallelism: a parallel_for issued
//    from inside a worker runs inline, so kernels may be composed freely;
//  - results are bitwise identical to the serial code for any thread count
//    because ranges are split on outer loops only and every chunk performs
//    the exact per-row arithmetic of the serial implementation.
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lmmir::tensor {
class TensorArena;
}

namespace lmmir::runtime {

/// Single-use countdown synchronizer (std::latch analogue kept local so the
/// library builds on toolchains without <latch>).
class Latch {
 public:
  explicit Latch(std::ptrdiff_t count) : count_(count) {}
  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  void count_down(std::ptrdiff_t n = 1);
  /// Block until the counter reaches zero.
  void wait();
  /// Non-blocking: true when the counter already reached zero.
  bool try_wait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::ptrdiff_t count_;
};

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).  Each worker owns a
  /// tensor::TensorArena installed as its thread-local active arena for
  /// the worker's lifetime (when `worker_arenas`; the one-arg overload
  /// follows LMMIR_TENSOR_ARENA), so op-internal scratch drawn inside
  /// fanned-out kernel chunks — e.g. conv2d's im2col buffer — is pooled
  /// per worker instead of heap-allocated per chunk.
  explicit ThreadPool(std::size_t threads);
  ThreadPool(std::size_t threads, bool worker_arenas);
  /// Drains the queue (pending jobs still run), then joins all workers.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Worker `i`'s arena, or nullptr (arenas disabled / index out of
  /// range).  Counters are written by the owning worker: read them only
  /// while the pool is quiescent.
  tensor::TensorArena* worker_arena(std::size_t i) const;

  /// Enqueue a job; the future reports completion and rethrows the job's
  /// exception on get().
  std::future<void> submit(std::function<void()> job);

  /// Fire-and-forget enqueue (no future allocation; the job must not
  /// throw past its own boundary).
  void post(std::function<void()> job);

  /// True when the calling thread is one of this pool's workers.
  bool in_worker() const;

 private:
  void worker_loop(std::size_t index);

  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<tensor::TensorArena>> worker_arenas_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Total concurrency parallel_for may use (calling thread + pool workers).
/// First use reads LMMIR_THREADS, else std::thread::hardware_concurrency().
std::size_t global_threads();

/// Reconfigure the process-wide pool to `threads` total concurrency
/// (clamped to >= 1; 1 means fully serial).  Not safe to call while
/// parallel kernels are in flight on other threads.  Worker arenas
/// follow LMMIR_TENSOR_ARENA; the two-arg overload forces them on or
/// off (A/B measurement runs).
void set_global_threads(std::size_t threads);
void set_global_threads(std::size_t threads, bool worker_arenas);

/// The shared pool, or nullptr when running serial (global_threads() <= 1).
/// The pointer stays valid until the next set_global_threads call.
ThreadPool* global_pool();

}  // namespace lmmir::runtime
