#pragma once
// Fixed-size worker pool backing intra-op parallelism (tensor / sparse /
// feature kernels) and the serving subsystem.
//
// Threading model of the library:
//  - a single process-wide pool (global_pool) sized from LMMIR_THREADS or
//    the hardware concurrency; hot loops fan out over it via parallel_for
//    (see runtime/parallel_for.hpp) and fall back to serial execution when
//    the range is small or the pool is configured to one thread;
//  - worker threads never create nested parallelism: a parallel_for issued
//    from inside a worker runs inline, so kernels may be composed freely;
//  - results are bitwise identical to the serial code for any thread count
//    because ranges are split on outer loops only and every chunk performs
//    the exact per-row arithmetic of the serial implementation;
//  - the pool itself is layer-agnostic: per-worker state (e.g. the tensor
//    layer's scratch arenas) is injected through the WorkerInit hook below,
//    so runtime/ depends on nothing above it.
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lmmir::runtime {

/// Single-use countdown synchronizer (std::latch analogue kept local so the
/// library builds on toolchains without <latch>).
class Latch {
 public:
  explicit Latch(std::ptrdiff_t count) : count_(count) {}
  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  void count_down(std::ptrdiff_t n = 1);
  /// Block until the counter reaches zero.
  void wait();
  /// Non-blocking: true when the counter already reached zero.
  bool try_wait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::ptrdiff_t count_;
};

/// Per-worker initialization hook.  A pool invokes the hook once on each
/// worker THREAD (with the worker's index) before the worker drains any
/// job, and invokes the returned cleanup (when non-empty) on the same
/// thread right before the worker exits.  Thread-local state installed by
/// the hook — the tensor layer's per-worker scratch arenas, for example —
/// is therefore visible to every job the worker ever runs.  Hooks must be
/// callable concurrently from multiple workers; an exception thrown by a
/// hook is logged and the worker continues without its state.
using WorkerCleanup = std::function<void()>;
using WorkerInit = std::function<WorkerCleanup(std::size_t worker_index)>;

/// Default hook used by pools not given an explicit one (including the
/// process-wide pool).  Registered by the layer that owns the per-worker
/// state (the tensor layer registers its arena installer at static-init
/// time); empty when nothing registered.  Replacing it does not touch
/// already running pools.
void set_default_worker_init(WorkerInit init);
WorkerInit default_worker_init();

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one) with the process default
  /// worker-init hook (see default_worker_init).
  explicit ThreadPool(std::size_t threads);
  /// Spawns `threads` workers with an explicit hook; pass an empty
  /// WorkerInit for workers with no per-worker state.  The pool keeps the
  /// hook (and anything it captures) alive until destruction, and the
  /// constructor returns only after every worker has completed its init —
  /// per-worker state (e.g. an arena registry) is observable as soon as
  /// the pool exists.
  ThreadPool(std::size_t threads, WorkerInit init);
  /// Drains the queue (pending jobs still run), then joins all workers.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a job; the future reports completion and rethrows the job's
  /// exception on get().
  std::future<void> submit(std::function<void()> job);

  /// Fire-and-forget enqueue (no future allocation; the job must not
  /// throw past its own boundary).
  void post(std::function<void()> job);

  /// True when the calling thread is one of this pool's workers.
  bool in_worker() const;

 private:
  void worker_loop(std::size_t index, std::shared_ptr<Latch> started);

  WorkerInit init_;  // shared by all workers; alive for the pool's lifetime
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  // Whether this pool's workers were counted into the lmmir_pool_workers
  // gauge at construction — the destructor must only subtract what the
  // constructor added (metrics may toggle between the two).
  bool workers_gauged_ = false;
};

/// Total concurrency parallel_for may use (calling thread + pool workers).
/// First use reads LMMIR_THREADS, else std::thread::hardware_concurrency().
std::size_t global_threads();

/// Reconfigure the process-wide pool to `threads` total concurrency
/// (clamped to >= 1; 1 means fully serial).  Not safe to call while
/// parallel kernels are in flight on other threads.  Workers get the
/// default worker-init hook; the two-arg overload injects an explicit
/// hook instead (A/B measurement runs forcing per-worker state on or
/// off, e.g. the tensor layer's worker_arena_init(bool)).
void set_global_threads(std::size_t threads);
void set_global_threads(std::size_t threads, WorkerInit init);

/// The shared pool, or nullptr when running serial (global_threads() <= 1).
/// The pointer stays valid until the next set_global_threads call.
ThreadPool* global_pool();

}  // namespace lmmir::runtime
