#include "pointcloud/pool.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lmmir::pc {

TokenGrid grid_pool(const Cloud& cloud, int grid) {
  if (grid <= 0) throw std::invalid_argument("grid_pool: grid must be > 0");
  TokenGrid out;
  out.grid = grid;
  const std::size_t cells = out.token_count();
  out.features.assign(cells * kTokenFeatureDim, 0.0f);
  if (cloud.points.empty()) return out;

  std::vector<std::size_t> counts(cells, 0);
  const float gw = cloud.width_um > 0 ? static_cast<float>(grid) / cloud.width_um : 0.0f;
  const float gh = cloud.height_um > 0 ? static_cast<float>(grid) / cloud.height_um : 0.0f;

  float enc[kPointFeatureDim];
  for (const auto& p : cloud.points) {
    const float mx = 0.5f * (p.x1 + p.x2);
    const float my = 0.5f * (p.y1 + p.y2);
    const int cx = std::clamp(static_cast<int>(mx * gw), 0, grid - 1);
    const int cy = std::clamp(static_cast<int>(my * gh), 0, grid - 1);
    const std::size_t cell = static_cast<std::size_t>(cy) * grid +
                             static_cast<std::size_t>(cx);
    encode_point(cloud, p, enc);
    float* f = out.features.data() + cell * kTokenFeatureDim;
    for (int i = 0; i < kPointFeatureDim; ++i) f[i] += enc[i];
    ++counts[cell];
  }

  // Mean features; the extra channel is log-scaled population (log keeps
  // dense m1 cells from dwarfing sparse top-layer cells).
  double max_count = 1.0;
  for (auto c : counts) max_count = std::max(max_count, static_cast<double>(c));
  const float inv_log_max = static_cast<float>(1.0 / std::log1p(max_count));
  for (std::size_t cell = 0; cell < cells; ++cell) {
    float* f = out.features.data() + cell * kTokenFeatureDim;
    if (counts[cell] > 0) {
      const float inv = 1.0f / static_cast<float>(counts[cell]);
      for (int i = 0; i < kPointFeatureDim; ++i) f[i] *= inv;
      f[kPointFeatureDim] =
          std::log1p(static_cast<float>(counts[cell])) * inv_log_max;
    }
  }
  return out;
}

Cloud random_downsample(const Cloud& cloud, std::size_t max_points,
                        util::Rng& rng) {
  if (cloud.points.size() <= max_points) return cloud;
  Cloud out = cloud;
  // Partial Fisher-Yates: choose max_points without replacement.
  std::vector<std::size_t> idx(cloud.points.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  for (std::size_t i = 0; i < max_points; ++i) {
    const std::size_t j = static_cast<std::size_t>(
        rng.randint(static_cast<int>(i), static_cast<int>(idx.size()) - 1));
    std::swap(idx[i], idx[j]);
  }
  out.points.clear();
  out.points.reserve(max_points);
  for (std::size_t i = 0; i < max_points; ++i)
    out.points.push_back(cloud.points[idx[i]]);
  return out;
}

}  // namespace lmmir::pc
