#pragma once
// Fixed-size token grids from unbounded point clouds.
//
// The paper's LNT must ingest netlists of 10^5..10^6 elements.  Full
// quadratic self-attention over that many points is infeasible, so the
// cloud is reduced to a fixed GxG grid of "super-points": every point is
// binned by its midpoint, and each cell aggregates the mean encoded
// features of its points (plus a normalized population count).  Empty
// cells stay zero — "no PDN structure here" is itself signal.  The output
// is a [G*G, kPointFeatureDim+1] matrix, constant-size regardless of the
// netlist, which is what makes the approach scale.
#include <cstddef>
#include <vector>

#include "pointcloud/cloud.hpp"
#include "util/rng.hpp"

namespace lmmir::pc {

inline constexpr int kTokenFeatureDim = kPointFeatureDim + 1;

struct TokenGrid {
  int grid = 0;                 // G (tokens are G*G rows)
  std::vector<float> features;  // [G*G, kTokenFeatureDim] row-major

  std::size_t token_count() const { return static_cast<std::size_t>(grid) * grid; }
};

/// Grid-pool the cloud into G*G super-point tokens.
TokenGrid grid_pool(const Cloud& cloud, int grid);

/// Uniform random down-sampling to at most max_points (utility for
/// experiments on sampling-based alternatives; grid_pool does not need it).
Cloud random_downsample(const Cloud& cloud, std::size_t max_points,
                        util::Rng& rng);

}  // namespace lmmir::pc
