#include "pointcloud/cloud.hpp"

#include <algorithm>

namespace lmmir::pc {

using spice::ElementType;
using spice::kDbuPerMicron;
using spice::kGroundNode;
using spice::Netlist;
using spice::NodeId;

namespace {

struct Located {
  float x = 0, y = 0;
  int layer = 0;
  bool ok = false;
};

Located locate(const Netlist& nl, NodeId id) {
  Located l;
  if (id == kGroundNode) return l;
  const auto& node = nl.node(id);
  if (!node.parsed) return l;
  l.x = static_cast<float>(node.parsed->x) / kDbuPerMicron;
  l.y = static_cast<float>(node.parsed->y) / kDbuPerMicron;
  l.layer = node.parsed->layer;
  l.ok = true;
  return l;
}

}  // namespace

Cloud cloud_from_netlist(const Netlist& nl) {
  Cloud cloud;
  cloud.points.reserve(nl.element_count());
  const auto shape = nl.pixel_shape();
  cloud.width_um = static_cast<float>(shape.cols);
  cloud.height_um = static_cast<float>(shape.rows);
  cloud.max_layer = std::max(1, nl.max_layer());

  for (const auto& e : nl.elements()) {
    const Located a = locate(nl, e.node1);
    const Located b = locate(nl, e.node2);
    if (!a.ok && !b.ok) continue;  // free-form element, not representable
    const Located& primary = a.ok ? a : b;
    const Located& secondary = b.ok ? b : a;

    Point p;
    p.x1 = primary.x;
    p.y1 = primary.y;
    p.layer1 = static_cast<std::int8_t>(primary.layer);
    p.x2 = secondary.x;
    p.y2 = secondary.y;
    p.layer2 = static_cast<std::int8_t>(secondary.layer);
    p.value = static_cast<float>(e.value);
    switch (e.type) {
      case ElementType::Resistor:
        p.type = 0;
        cloud.max_resistance = std::max(cloud.max_resistance, p.value);
        break;
      case ElementType::CurrentSource:
        p.type = 1;
        cloud.max_current = std::max(cloud.max_current, p.value);
        break;
      case ElementType::VoltageSource:
        p.type = 2;
        cloud.max_voltage = std::max(cloud.max_voltage, p.value);
        break;
    }
    cloud.points.push_back(p);
  }
  return cloud;
}

void encode_point(const Cloud& cloud, const Point& p, float* out) {
  const float iw = cloud.width_um > 0 ? 1.0f / cloud.width_um : 0.0f;
  const float ih = cloud.height_um > 0 ? 1.0f / cloud.height_um : 0.0f;
  float vnorm = 0.0f;
  switch (p.type) {
    case 0:
      vnorm = cloud.max_resistance > 0 ? p.value / cloud.max_resistance : 0.0f;
      break;
    case 1:
      vnorm = cloud.max_current > 0 ? p.value / cloud.max_current : 0.0f;
      break;
    case 2:
      vnorm = cloud.max_voltage > 0 ? p.value / cloud.max_voltage : 0.0f;
      break;
    default: break;
  }
  const float il = 1.0f / static_cast<float>(cloud.max_layer);
  out[0] = p.x1 * iw;
  out[1] = p.y1 * ih;
  out[2] = p.x2 * iw;
  out[3] = p.y2 * ih;
  out[4] = vnorm;
  out[5] = p.type == 0 ? 1.0f : 0.0f;
  out[6] = p.type == 1 ? 1.0f : 0.0f;
  out[7] = p.type == 2 ? 1.0f : 0.0f;
  out[8] = static_cast<float>(p.layer1) * il;
  out[9] = static_cast<float>(p.layer2) * il;
  out[10] = p.is_via() ? 1.0f : 0.0f;
  out[11] = 1.0f;  // presence flag (distinguishes real points after pooling)
}

}  // namespace lmmir::pc
