#pragma once
// Netlist -> point cloud encoding (paper Sec. III-B / Fig. 3).
//
// Every netlist element becomes one point carrying its full attributes:
// both endpoint coordinates (x1,y1), (x2,y2), the element value, the
// element type (R / I / V) and both endpoint layers — so, unlike 2-D
// rasterized representations, nothing about inter-layer structure (vias)
// is lost.  Element counts are unbounded: a 10^6-element netlist is a
// 10^6-point cloud.
#include <cstdint>
#include <vector>

#include "spice/netlist.hpp"

namespace lmmir::pc {

struct Point {
  float x1 = 0, y1 = 0;  // first endpoint, microns
  float x2 = 0, y2 = 0;  // second endpoint (== first for I/V sources)
  float value = 0;       // ohms / amps / volts
  std::int8_t type = 0;  // 0 = R, 1 = I, 2 = V
  std::int8_t layer1 = 0;
  std::int8_t layer2 = 0;

  /// Inter-layer resistor (layer1 != layer2).
  bool is_via() const { return type == 0 && layer1 != layer2; }
};

struct Cloud {
  std::vector<Point> points;
  float width_um = 0;   // die extent used for coordinate normalization
  float height_um = 0;
  int max_layer = 1;
  float max_resistance = 0;
  float max_current = 0;
  float max_voltage = 0;
};

/// Build the cloud from a netlist. Elements with a free-form (unlocatable)
/// PDN-side node are skipped; ground endpoints reuse the located endpoint.
Cloud cloud_from_netlist(const spice::Netlist& nl);

/// Per-point normalized feature vector width (see encode_point).
inline constexpr int kPointFeatureDim = 12;

/// Normalized features of one point:
/// [x1,y1,x2,y2 (die-relative), value (per-type max-normalized),
///  onehot R/I/V, layer1, layer2 (layer-count-relative), is_via]
void encode_point(const Cloud& cloud, const Point& p, float* out12);

}  // namespace lmmir::pc
