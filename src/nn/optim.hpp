#pragma once
// Optimizers.  The paper trains with Adam (lr 1e-3); SGD is provided for
// ablations and tests.
#include <vector>

#include "tensor/tensor.hpp"

namespace lmmir::nn {

using tensor::Tensor;

class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  void zero_grad();
  virtual void step() = 0;

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f);
  void step() override;

  float lr;

 private:
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr = 1e-3f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void step() override;

  float lr;

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  long t_ = 0;
  std::vector<std::vector<float>> m_, v_;
};

/// Clip the global L2 norm of all parameter gradients to max_norm.
/// Returns the pre-clip norm.
float clip_grad_norm(const std::vector<Tensor>& params, float max_norm);

}  // namespace lmmir::nn
