#pragma once
// Standard layers built on tensor ops: Linear, Conv2d, ConvTranspose2d,
// BatchNorm2d, LayerNorm, activations, pooling, upsampling, Dropout and
// Sequential.  Weight layouts and default initializations follow PyTorch so
// architectures port over directly.
#include <memory>
#include <vector>

#include "nn/module.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace lmmir::nn {

/// Global parameter-init RNG seed helper: layers draw from the rng passed
/// to their constructor so model construction is deterministic.
class Linear : public Layer {
 public:
  Linear(int in_features, int out_features, util::Rng& rng, bool bias = true);
  Tensor forward(const Tensor& x) override;

  Tensor weight;  // [out,in]
  Tensor bias_t;  // [out] (undefined when bias == false)
};

class Conv2d : public Layer {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, util::Rng& rng,
         int stride = 1, int padding = 0, bool bias = true);
  /// Rectangular-kernel variant (kh x kw with independent padding) used by
  /// IRPnet's shape-adaptive kernels.
  Conv2d(int in_channels, int out_channels, int kernel_h, int kernel_w,
         util::Rng& rng, int stride, int pad_h, int pad_w, bool bias = true);
  Tensor forward(const Tensor& x) override;

  Tensor weight;  // [out,in,kh,kw]
  Tensor bias_t;  // [out]
  int stride;
  int pad_h;
  int pad_w;
};

class ConvTranspose2d : public Layer {
 public:
  ConvTranspose2d(int in_channels, int out_channels, int kernel,
                  util::Rng& rng, int stride = 1, int padding = 0,
                  bool bias = true);
  Tensor forward(const Tensor& x) override;

  Tensor weight;  // [in,out,k,k]
  Tensor bias_t;  // [out]
  int stride;
  int padding;
};

class BatchNorm2d : public Layer {
 public:
  explicit BatchNorm2d(int channels, float momentum = 0.1f, float eps = 1e-5f);
  Tensor forward(const Tensor& x) override;

  Tensor gamma, beta;
  std::vector<float> running_mean, running_var;
  float momentum, eps;
};

class LayerNorm : public Layer {
 public:
  explicit LayerNorm(int dim, float eps = 1e-5f);
  Tensor forward(const Tensor& x) override;

  Tensor gamma, beta;
  float eps;
};

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x) override { return tensor::relu(x); }
};

class Sigmoid : public Layer {
 public:
  Tensor forward(const Tensor& x) override { return tensor::sigmoid(x); }
};

class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(int kernel, int stride = -1)
      : kernel_(kernel), stride_(stride < 0 ? kernel : stride) {}
  Tensor forward(const Tensor& x) override {
    return tensor::maxpool2d(x, kernel_, stride_);
  }

 private:
  int kernel_, stride_;
};

class UpsampleNearest2x : public Layer {
 public:
  Tensor forward(const Tensor& x) override {
    return tensor::upsample_nearest2x(x);
  }
};

class Dropout : public Layer {
 public:
  explicit Dropout(float p, std::uint64_t seed = 0xd20f0e1u)
      : p_(p), rng_(seed) {}
  Tensor forward(const Tensor& x) override {
    return tensor::dropout(x, p_, rng_, training());
  }

 private:
  float p_;
  util::Rng rng_;
};

/// Ordered container of layers applied in sequence; owns its children.
class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Append a layer (takes ownership) and register it.
  template <typename L, typename... Args>
  L* emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* raw = layer.get();
    register_module("seq" + std::to_string(layers_.size()), raw);
    layers_.push_back(std::move(layer));
    return raw;
  }

  Tensor forward(const Tensor& x) override {
    Tensor y = x;
    for (auto& l : layers_) y = l->forward(y);
    return y;
  }

  std::size_t size() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace lmmir::nn
