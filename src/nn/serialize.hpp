#pragma once
// Binary checkpoint format for Module parameters and buffers.
//
// Layout: magic "LMMC" + u32 version + u64 entry count, then per entry:
// u32 name length, name bytes, u32 rank, u32 dims..., float data.
// Buffers are stored as rank-1 entries under their hierarchical name.
#include <string>

#include "nn/module.hpp"

namespace lmmir::nn {

/// Save all named parameters + buffers of a module.
void save_checkpoint(const Module& module, const std::string& path);

/// Load a checkpoint saved by save_checkpoint into a module with the SAME
/// architecture. Throws std::runtime_error on missing entries or shape
/// mismatches (a wrong-architecture checkpoint never loads silently).
void load_checkpoint(Module& module, const std::string& path);

}  // namespace lmmir::nn
