#pragma once
// Attention blocks (paper Sec. II-C / III-D):
//  - MultiHeadAttention: the scaled-dot-product attention of Eq. (1)-(2),
//    usable as self-attention (q == kv) inside the LNT and as
//    cross-attention in the multimodal fusion module;
//  - TransformerBlock: pre-norm attention + MLP used by the LNT;
//  - AttentionGate: the Attention-U-Net gate [Oktay et al.] applied to the
//    decoder skip connections.
#include "nn/layers.hpp"

namespace lmmir::nn {

class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(int dim, int heads, util::Rng& rng);

  /// query [B,Tq,D], key/value source [B,Tk,D] -> [B,Tq,D].
  Tensor forward(const Tensor& query, const Tensor& key_value);

  int dim() const { return dim_; }
  int heads() const { return heads_; }

 private:
  int dim_, heads_, head_dim_;
  Linear wq_, wk_, wv_, wo_;
};

class TransformerBlock : public Module {
 public:
  TransformerBlock(int dim, int heads, int mlp_ratio, util::Rng& rng);

  /// tokens [B,T,D] -> [B,T,D] with pre-norm residual attention + MLP.
  Tensor forward(const Tensor& tokens);

 private:
  LayerNorm norm1_, norm2_;
  MultiHeadAttention attn_;
  Linear fc1_, fc2_;
};

/// Attention gate on a U-Net skip connection: the gating signal (decoder
/// state) suppresses irrelevant skip activations; the paper credits this
/// with reducing false positives on small hotspots.
class AttentionGate : public Module {
 public:
  AttentionGate(int skip_channels, int gate_channels, int inter_channels,
                util::Rng& rng);

  /// skip [N,Cs,H,W], gate [N,Cg,H,W] (same spatial size) -> gated skip.
  Tensor forward(const Tensor& skip, const Tensor& gate);

 private:
  Conv2d theta_x_, phi_g_, psi_;
};

}  // namespace lmmir::nn
