#include "nn/module.hpp"

#include <stdexcept>

namespace lmmir::nn {

std::vector<NamedParam> Module::named_parameters() const {
  std::vector<NamedParam> out;
  collect_params("", out);
  return out;
}

std::vector<Tensor> Module::parameters() const {
  std::vector<Tensor> out;
  for (auto& np : named_parameters()) out.push_back(np.tensor);
  return out;
}

std::vector<NamedBuffer> Module::named_buffers() const {
  std::vector<NamedBuffer> out;
  collect_buffers("", out);
  return out;
}

std::size_t Module::parameter_count() const {
  std::size_t n = 0;
  for (const auto& np : named_parameters()) n += np.tensor.numel();
  return n;
}

void Module::set_training(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->set_training(training);
}

void Module::zero_grad() {
  for (auto& p : parameters()) p.zero_grad();
}

Tensor Module::register_parameter(const std::string& name, Tensor t) {
  if (!t.defined())
    throw std::invalid_argument("register_parameter: undefined tensor");
  t.set_requires_grad(true);
  params_.emplace_back(name, t);
  return t;
}

void Module::register_buffer(const std::string& name,
                             std::vector<float>* values) {
  if (values == nullptr)
    throw std::invalid_argument("register_buffer: null buffer");
  buffers_.emplace_back(name, values);
}

void Module::register_module(const std::string& name, Module* child) {
  if (child == nullptr)
    throw std::invalid_argument("register_module: null child");
  children_.emplace_back(name, child);
}

void Module::collect_params(const std::string& prefix,
                            std::vector<NamedParam>& out) const {
  for (const auto& [name, t] : params_)
    out.push_back({prefix.empty() ? name : prefix + "." + name, t});
  for (const auto& [name, child] : children_)
    child->collect_params(prefix.empty() ? name : prefix + "." + name, out);
}

void Module::collect_buffers(const std::string& prefix,
                             std::vector<NamedBuffer>& out) const {
  for (const auto& [name, b] : buffers_)
    out.push_back({prefix.empty() ? name : prefix + "." + name, b});
  for (const auto& [name, child] : children_)
    child->collect_buffers(prefix.empty() ? name : prefix + "." + name, out);
}

}  // namespace lmmir::nn
