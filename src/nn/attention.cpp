#include "nn/attention.hpp"

#include <cmath>
#include <stdexcept>

namespace lmmir::nn {

using namespace tensor;

MultiHeadAttention::MultiHeadAttention(int dim, int heads, util::Rng& rng)
    : dim_(dim),
      heads_(heads),
      head_dim_(dim / heads),
      wq_(dim, dim, rng),
      wk_(dim, dim, rng),
      wv_(dim, dim, rng),
      wo_(dim, dim, rng) {
  if (dim % heads != 0)
    throw std::invalid_argument("MultiHeadAttention: dim % heads != 0");
  register_module("wq", &wq_);
  register_module("wk", &wk_);
  register_module("wv", &wv_);
  register_module("wo", &wo_);
}

Tensor MultiHeadAttention::forward(const Tensor& query,
                                   const Tensor& key_value) {
  if (query.ndim() != 3 || key_value.ndim() != 3)
    throw std::invalid_argument("MultiHeadAttention: expects [B,T,D]");
  if (query.dim(2) != dim_ || key_value.dim(2) != dim_)
    throw std::invalid_argument("MultiHeadAttention: channel mismatch");
  if (query.dim(0) != key_value.dim(0))
    throw std::invalid_argument("MultiHeadAttention: batch mismatch");

  const Tensor q = wq_.forward(query);       // [B,Tq,D]
  const Tensor k = wk_.forward(key_value);   // [B,Tk,D]
  const Tensor v = wv_.forward(key_value);   // [B,Tk,D]

  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  Tensor merged;  // accumulate per-head outputs along the channel axis
  for (int h = 0; h < heads_; ++h) {
    const int off = h * head_dim_;
    const Tensor qh = slice_axis(q, 2, off, head_dim_);  // [B,Tq,dh]
    const Tensor kh = slice_axis(k, 2, off, head_dim_);  // [B,Tk,dh]
    const Tensor vh = slice_axis(v, 2, off, head_dim_);  // [B,Tk,dh]
    // softmax(Q Kᵀ / sqrt(dh)) V    (Eq. 2)
    const Tensor scores = scale(bmm(qh, transpose_last2(kh)), inv_sqrt);
    const Tensor attn = softmax_lastdim(scores);          // [B,Tq,Tk]
    const Tensor oh = bmm(attn, vh);                      // [B,Tq,dh]
    merged = merged.defined() ? concat(merged, oh, 2) : oh;
  }
  return wo_.forward(merged);
}

TransformerBlock::TransformerBlock(int dim, int heads, int mlp_ratio,
                                   util::Rng& rng)
    : norm1_(dim),
      norm2_(dim),
      attn_(dim, heads, rng),
      fc1_(dim, dim * mlp_ratio, rng),
      fc2_(dim * mlp_ratio, dim, rng) {
  register_module("norm1", &norm1_);
  register_module("norm2", &norm2_);
  register_module("attn", &attn_);
  register_module("fc1", &fc1_);
  register_module("fc2", &fc2_);
}

Tensor TransformerBlock::forward(const Tensor& tokens) {
  // Pre-norm residual: x + Attn(LN(x)), then x + MLP(LN(x)).
  Tensor x = tokens;
  {
    const Tensor n = norm1_.forward(x);
    x = add(x, attn_.forward(n, n));
  }
  {
    const Tensor n = norm2_.forward(x);
    x = add(x, fc2_.forward(relu(fc1_.forward(n))));
  }
  return x;
}

AttentionGate::AttentionGate(int skip_channels, int gate_channels,
                             int inter_channels, util::Rng& rng)
    : theta_x_(skip_channels, inter_channels, 1, rng),
      phi_g_(gate_channels, inter_channels, 1, rng),
      psi_(inter_channels, 1, 1, rng) {
  register_module("theta_x", &theta_x_);
  register_module("phi_g", &phi_g_);
  register_module("psi", &psi_);
}

Tensor AttentionGate::forward(const Tensor& skip, const Tensor& gate) {
  const Tensor f = relu(add(theta_x_.forward(skip), phi_g_.forward(gate)));
  const Tensor alpha = sigmoid(psi_.forward(f));  // [N,1,H,W]
  return mul_broadcast_channel(skip, alpha);
}

}  // namespace lmmir::nn
