#include "nn/layers.hpp"

#include <cmath>

namespace lmmir::nn {

namespace {
/// Kaiming-uniform bound used by PyTorch's default Linear/Conv init.
float kaiming_bound(std::size_t fan_in) {
  return fan_in > 0 ? 1.0f / std::sqrt(static_cast<float>(fan_in)) : 0.0f;
}

Tensor uniform_init(const tensor::Shape& shape, float bound, util::Rng& rng) {
  std::vector<float> v(tensor::shape_numel(shape));
  for (auto& x : v) x = rng.uniform(-bound, bound);
  return Tensor::from_data(shape, std::move(v));
}
}  // namespace

Linear::Linear(int in_features, int out_features, util::Rng& rng, bool bias) {
  const float bound = kaiming_bound(static_cast<std::size_t>(in_features));
  weight = register_parameter(
      "weight", uniform_init({out_features, in_features}, bound, rng));
  if (bias)
    bias_t = register_parameter("bias",
                                uniform_init({out_features}, bound, rng));
}

Tensor Linear::forward(const Tensor& x) {
  return tensor::linear(x, weight, bias_t);
}

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, util::Rng& rng,
               int stride_in, int padding_in, bool bias)
    : Conv2d(in_channels, out_channels, kernel, kernel, rng, stride_in,
             padding_in, padding_in, bias) {}

Conv2d::Conv2d(int in_channels, int out_channels, int kernel_h, int kernel_w,
               util::Rng& rng, int stride_in, int pad_h_in, int pad_w_in,
               bool bias)
    : stride(stride_in), pad_h(pad_h_in), pad_w(pad_w_in) {
  const std::size_t fan_in = static_cast<std::size_t>(in_channels) *
                             static_cast<std::size_t>(kernel_h) *
                             static_cast<std::size_t>(kernel_w);
  const float bound = kaiming_bound(fan_in);
  weight = register_parameter(
      "weight", uniform_init({out_channels, in_channels, kernel_h, kernel_w},
                             bound, rng));
  if (bias)
    bias_t = register_parameter("bias",
                                uniform_init({out_channels}, bound, rng));
}

Tensor Conv2d::forward(const Tensor& x) {
  return tensor::conv2d(x, weight, bias_t, stride, pad_h, pad_w);
}

ConvTranspose2d::ConvTranspose2d(int in_channels, int out_channels, int kernel,
                                 util::Rng& rng, int stride_in, int padding_in,
                                 bool bias)
    : stride(stride_in), padding(padding_in) {
  const std::size_t fan_in = static_cast<std::size_t>(in_channels) *
                             static_cast<std::size_t>(kernel) *
                             static_cast<std::size_t>(kernel);
  const float bound = kaiming_bound(fan_in);
  weight = register_parameter(
      "weight",
      uniform_init({in_channels, out_channels, kernel, kernel}, bound, rng));
  if (bias)
    bias_t = register_parameter("bias",
                                uniform_init({out_channels}, bound, rng));
}

Tensor ConvTranspose2d::forward(const Tensor& x) {
  return tensor::conv_transpose2d(x, weight, bias_t, stride, padding);
}

BatchNorm2d::BatchNorm2d(int channels, float momentum_in, float eps_in)
    : momentum(momentum_in), eps(eps_in) {
  gamma = register_parameter(
      "weight", Tensor::full({channels}, 1.0f));
  beta = register_parameter("bias", Tensor::zeros({channels}));
  running_mean.assign(static_cast<std::size_t>(channels), 0.0f);
  running_var.assign(static_cast<std::size_t>(channels), 1.0f);
  register_buffer("running_mean", &running_mean);
  register_buffer("running_var", &running_var);
}

Tensor BatchNorm2d::forward(const Tensor& x) {
  return tensor::batch_norm2d(x, gamma, beta, running_mean, running_var,
                              training(), momentum, eps);
}

LayerNorm::LayerNorm(int dim, float eps_in) : eps(eps_in) {
  gamma = register_parameter("weight", Tensor::full({dim}, 1.0f));
  beta = register_parameter("bias", Tensor::zeros({dim}));
}

Tensor LayerNorm::forward(const Tensor& x) {
  return tensor::layer_norm_lastdim(x, gamma, beta, eps);
}

}  // namespace lmmir::nn
