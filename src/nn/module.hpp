#pragma once
// Module system: a lightweight torch.nn.Module analogue.  Concrete modules
// own their sub-modules as ordinary members and register them (plus their
// parameters and stat buffers) in the constructor, giving recursive
// parameter collection and checkpoint serialization by hierarchical name.
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.hpp"

namespace lmmir::nn {

using tensor::Tensor;

struct NamedParam {
  std::string name;
  Tensor tensor;
};

/// Non-parameter state carried by a module (e.g. batch-norm running stats).
struct NamedBuffer {
  std::string name;
  std::vector<float>* values;  // non-owning; lives in the module
};

class Module {
 public:
  Module() = default;
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and its registered children, with
  /// hierarchical dotted names ("encoder.block1.conv.weight").
  std::vector<NamedParam> named_parameters() const;
  std::vector<Tensor> parameters() const;
  std::vector<NamedBuffer> named_buffers() const;

  /// Total learnable scalar count.
  std::size_t parameter_count() const;

  /// Switch training mode (recursively). Affects batch norm / dropout.
  void set_training(bool training);
  bool training() const { return training_; }

  void zero_grad();

 protected:
  /// Register and return a parameter tensor (requires_grad is forced on).
  Tensor register_parameter(const std::string& name, Tensor t);
  void register_buffer(const std::string& name, std::vector<float>* values);
  void register_module(const std::string& name, Module* child);

 private:
  void collect_params(const std::string& prefix,
                      std::vector<NamedParam>& out) const;
  void collect_buffers(const std::string& prefix,
                       std::vector<NamedBuffer>& out) const;

  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, std::vector<float>*>> buffers_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

/// A module with the standard single-tensor forward signature; Sequential
/// and most layers model this.
///
/// Forward contract: a layer may hold parameters and plain-buffer state
/// (e.g. batch-norm running stats) but must NOT cache input/output
/// tensors across forward calls — on the serving path intermediates are
/// arena-recycled per request (see docs/TENSOR.md), and a cached tensor
/// would pin its arena slot for as long as the layer holds it.
class Layer : public Module {
 public:
  virtual Tensor forward(const Tensor& x) = 0;
};

}  // namespace lmmir::nn
