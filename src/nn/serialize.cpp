#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <map>
#include <stdexcept>

namespace lmmir::nn {

namespace {

constexpr char kMagic[4] = {'L', 'M', 'M', 'C'};
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}
std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  return v;
}
std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  return v;
}

void write_entry(std::ostream& out, const std::string& name,
                 const std::vector<int>& shape,
                 const std::vector<float>& data) {
  write_u32(out, static_cast<std::uint32_t>(name.size()));
  out.write(name.data(), static_cast<std::streamsize>(name.size()));
  write_u32(out, static_cast<std::uint32_t>(shape.size()));
  for (int d : shape) write_u32(out, static_cast<std::uint32_t>(d));
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
}

struct Entry {
  std::vector<int> shape;
  std::vector<float> data;
};

std::map<std::string, Entry> read_all(std::istream& in,
                                      const std::string& path) {
  char magic[4];
  in.read(magic, 4);
  if (!in || std::string(magic, 4) != std::string(kMagic, 4))
    throw std::runtime_error("load_checkpoint: bad magic in " + path);
  const std::uint32_t version = read_u32(in);
  if (version != kVersion)
    throw std::runtime_error("load_checkpoint: unsupported version in " + path);
  const std::uint64_t count = read_u64(in);
  std::map<std::string, Entry> entries;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint32_t name_len = read_u32(in);
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    const std::uint32_t rank = read_u32(in);
    Entry e;
    std::size_t numel = 1;
    for (std::uint32_t r = 0; r < rank; ++r) {
      e.shape.push_back(static_cast<int>(read_u32(in)));
      numel *= static_cast<std::size_t>(e.shape.back());
    }
    e.data.resize(numel);
    in.read(reinterpret_cast<char*>(e.data.data()),
            static_cast<std::streamsize>(numel * sizeof(float)));
    if (!in)
      throw std::runtime_error("load_checkpoint: truncated file " + path);
    entries.emplace(std::move(name), std::move(e));
  }
  return entries;
}

}  // namespace

void save_checkpoint(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out)
    throw std::runtime_error("save_checkpoint: cannot open " + path);
  const auto params = module.named_parameters();
  const auto buffers = module.named_buffers();
  out.write(kMagic, 4);
  write_u32(out, kVersion);
  write_u64(out, static_cast<std::uint64_t>(params.size() + buffers.size()));
  for (const auto& p : params)
    write_entry(out, p.name, p.tensor.shape(), p.tensor.data());
  for (const auto& b : buffers)
    write_entry(out, b.name, {static_cast<int>(b.values->size())}, *b.values);
  if (!out)
    throw std::runtime_error("save_checkpoint: write failed for " + path);
}

void load_checkpoint(Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("load_checkpoint: cannot open " + path);
  auto entries = read_all(in, path);

  for (auto& p : module.named_parameters()) {
    const auto it = entries.find(p.name);
    if (it == entries.end())
      throw std::runtime_error("load_checkpoint: missing parameter " + p.name);
    if (it->second.shape != p.tensor.shape())
      throw std::runtime_error("load_checkpoint: shape mismatch for " + p.name);
    p.tensor.data() = it->second.data;
  }
  for (auto& b : module.named_buffers()) {
    const auto it = entries.find(b.name);
    if (it == entries.end())
      throw std::runtime_error("load_checkpoint: missing buffer " + b.name);
    if (it->second.data.size() != b.values->size())
      throw std::runtime_error("load_checkpoint: size mismatch for " + b.name);
    *b.values = it->second.data;
  }
}

}  // namespace lmmir::nn
