#include "nn/optim.hpp"

#include <cmath>

namespace lmmir::nn {

void Optimizer::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

Sgd::Sgd(std::vector<Tensor> params, float lr_in, float momentum)
    : Optimizer(std::move(params)), lr(lr_in), momentum_(momentum) {
  velocity_.resize(params_.size());
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (p.grad().empty()) continue;
    auto& vel = velocity_[i];
    if (momentum_ > 0.0f) {
      if (vel.size() != p.numel()) vel.assign(p.numel(), 0.0f);
      for (std::size_t j = 0; j < p.numel(); ++j) {
        vel[j] = momentum_ * vel[j] + p.grad()[j];
        p.data()[j] -= lr * vel[j];
      }
    } else {
      for (std::size_t j = 0; j < p.numel(); ++j)
        p.data()[j] -= lr * p.grad()[j];
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr_in, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr(lr_in),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (p.grad().empty()) continue;
    auto& m = m_[i];
    auto& v = v_[i];
    if (m.size() != p.numel()) m.assign(p.numel(), 0.0f);
    if (v.size() != p.numel()) v.assign(p.numel(), 0.0f);
    for (std::size_t j = 0; j < p.numel(); ++j) {
      float g = p.grad()[j];
      if (weight_decay_ > 0.0f) g += weight_decay_ * p.data()[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g * g;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      p.data()[j] -= lr * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

float clip_grad_norm(const std::vector<Tensor>& params, float max_norm) {
  double total = 0.0;
  for (const auto& p : params)
    for (float g : p.grad()) total += static_cast<double>(g) * g;
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float s = max_norm / norm;
    for (const auto& p : params) {
      auto& impl = *p.impl();
      for (auto& g : impl.grad) g *= s;
    }
  }
  return norm;
}

}  // namespace lmmir::nn
