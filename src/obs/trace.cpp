#include "obs/trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/clock.hpp"

namespace lmmir::obs {

namespace {

struct Event {
  const char* name = nullptr;  // static-storage string (span call sites)
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::uint64_t track = 0;  // 0 = the recording thread's row
};

/// Per-thread ring: written by exactly one thread, read by the exporter
/// under the registry mutex.  `head` counts every event ever recorded;
/// slot `head % capacity` is written before head is published (release),
/// so a reader sees fully-written events for every index below head.  A
/// ring that wraps while being scraped can yield a torn oldest event —
/// tracing is diagnostic, so this is tolerated rather than locked away.
struct ThreadBuffer {
  static constexpr std::size_t kCapacity = 1 << 16;
  explicit ThreadBuffer(std::uint64_t tid_) : tid(tid_) {
    ring.resize(kCapacity);
  }
  std::vector<Event> ring;
  std::atomic<std::uint64_t> head{0};
  std::uint64_t tid;
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;  // outlive threads
  std::uint64_t next_tid = 1;
  std::string exit_path;  // LMMIR_TRACE_FILE target, written at exit
};

Registry& registry() {
  static Registry* r = new Registry();  // outlives static destructors
  return *r;
}

ThreadBuffer& thread_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> tl_buf;
  if (!tl_buf) {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    tl_buf = std::make_shared<ThreadBuffer>(reg.next_tid++);
    reg.buffers.push_back(tl_buf);
  }
  return *tl_buf;
}

thread_local std::uint64_t tl_current_span = 0;

std::atomic<std::uint64_t> g_next_span_id{1};

void write_trace_at_exit() {
  std::string path;
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    path = reg.exit_path;
  }
  if (!path.empty()) write_trace(path);
}

bool trace_enabled_from_env() {
  const char* v = std::getenv("LMMIR_TRACE_FILE");
  if (!v || !*v) return false;
  Registry& reg = registry();
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.exit_path = v;
  }
  std::atexit(write_trace_at_exit);
  return true;
}

}  // namespace

namespace detail {

std::atomic<bool> g_trace_enabled{trace_enabled_from_env()};

void record_event(const char* name, std::uint64_t start_ns,
                  std::uint64_t end_ns, std::uint64_t id, std::uint64_t parent,
                  std::uint64_t track) {
  ThreadBuffer& buf = thread_buffer();
  const std::uint64_t head = buf.head.load(std::memory_order_relaxed);
  Event& e = buf.ring[head % ThreadBuffer::kCapacity];
  e.name = name;
  e.start_ns = start_ns;
  e.end_ns = end_ns;
  e.id = id;
  e.parent = parent;
  e.track = track;
  buf.head.store(head + 1, std::memory_order_release);
}

}  // namespace detail

void set_trace_enabled(bool enabled) {
  detail::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

std::uint64_t new_span_id() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t current_span_id() { return tl_current_span; }

Span::Span(const char* name, std::uint64_t parent) : name_(name) {
  if (!trace_enabled()) return;
  active_ = true;
  id_ = new_span_id();
  parent_ = parent;
  saved_current_ = tl_current_span;
  tl_current_span = id_;
  start_ns_ = now_ns();
}

Span::~Span() {
  if (!active_) return;
  detail::record_event(name_, start_ns_, now_ns(), id_, parent_, 0);
  tl_current_span = saved_current_;
}

std::uint64_t emit_span(const char* name, std::uint64_t start_ns,
                        std::uint64_t end_ns, std::uint64_t parent,
                        std::uint64_t track) {
  if (!trace_enabled()) return 0;
  const std::uint64_t id = new_span_id();
  detail::record_event(name, start_ns, end_ns, id, parent, track);
  return id;
}

bool write_trace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "obs: cannot write trace file %s\n", path.c_str());
    return false;
  }
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", f);
  bool first = true;
  bool request_track_named = false;
  for (const auto& buf : reg.buffers) {
    const std::uint64_t head = buf->head.load(std::memory_order_acquire);
    const std::uint64_t n =
        head < ThreadBuffer::kCapacity ? head : ThreadBuffer::kCapacity;
    if (n == 0) continue;
    if (!first) std::fputs(",\n", f);
    first = false;
    std::fprintf(f,
                 "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                 "\"tid\":%llu,\"args\":{\"name\":\"lmmir thread %llu\"}}",
                 static_cast<unsigned long long>(buf->tid),
                 static_cast<unsigned long long>(buf->tid));
    for (std::uint64_t i = head - n; i < head; ++i) {
      const Event& e = buf->ring[i % ThreadBuffer::kCapacity];
      const std::uint64_t tid = e.track ? e.track : buf->tid;
      if (e.track == kRequestTrack && !request_track_named) {
        request_track_named = true;
        std::fprintf(f,
                     ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                     "\"tid\":%llu,\"args\":{\"name\":\"requests\"}}",
                     static_cast<unsigned long long>(kRequestTrack));
      }
      const double ts_us = static_cast<double>(e.start_ns) / 1e3;
      const double dur_us =
          static_cast<double>(e.end_ns - e.start_ns) / 1e3;
      std::fprintf(f,
                   ",\n{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%llu,"
                   "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"id\":%llu,"
                   "\"parent\":%llu}}",
                   e.name ? e.name : "?",
                   static_cast<unsigned long long>(tid), ts_us, dur_us,
                   static_cast<unsigned long long>(e.id),
                   static_cast<unsigned long long>(e.parent));
    }
  }
  std::fputs("\n]}\n", f);
  std::fclose(f);
  return true;
}

void clear_trace() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  // Rewind, do not deallocate: recording threads still hold their buffers.
  for (const auto& buf : reg.buffers)
    buf->head.store(0, std::memory_order_release);
}

std::size_t buffered_events() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::size_t total = 0;
  for (const auto& buf : reg.buffers) {
    const std::uint64_t head = buf->head.load(std::memory_order_acquire);
    total += head < ThreadBuffer::kCapacity
                 ? static_cast<std::size_t>(head)
                 : ThreadBuffer::kCapacity;
  }
  return total;
}

}  // namespace lmmir::obs
