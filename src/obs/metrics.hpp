#pragma once
// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms, with Prometheus-style text and JSON exporters.
//
// Hot-path discipline: every instrument write is ONE relaxed check of the
// process-wide enable flag, and — when enabled — one relaxed atomic add
// on a sharded cell picked by a cached thread-local index (cache-line
// padded, so concurrent writers from different pool workers do not
// false-share).  Aggregation across shards happens only on scrape.
// Metrics never feed back into computation: outputs are bitwise identical
// with metrics on or off, at any thread count (gated by
// bench_obs_overhead).
//
// Instruments are created lazily and never destroyed: a call site looks
// its instrument up once (function-local static reference) and then
// writes lock-free forever after.
//
//   static obs::Counter& c =
//       obs::MetricsRegistry::instance().counter("lmmir_pcg_solves_total");
//   c.add();
//
// Naming scheme (see docs/OBSERVABILITY.md): lmmir_<subsystem>_<what>
// with Prometheus unit suffixes (_total for counters, _us / _ns /
// _seconds / _bytes where applicable).
//
// Env: LMMIR_METRICS unset or "0" disables (the default — serving jobs
// opt in); any other value enables.  set_metrics_enabled() overrides at
// run time (benches A/B phases, tests).
#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace lmmir::obs {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;

/// Number of independent cells per instrument.  Threads are assigned
/// cells round-robin at first metric touch, so any number of threads
/// spreads over the shards.
inline constexpr std::size_t kShards = 16;

/// The calling thread's shard (assigned once, cached thread-local).
std::size_t shard_index();

struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> v{0};
};
struct alignas(64) DoubleCell {
  std::atomic<double> v{0.0};
};

/// Relaxed add for atomic<double> via CAS (portable across libstdc++
/// versions that lack atomic<double>::fetch_add).
inline void atomic_add(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed,
                                  std::memory_order_relaxed)) {
  }
}
}  // namespace detail

/// True when instruments record (LMMIR_METRICS, or set_metrics_enabled).
inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool enabled);

/// Monotonically increasing count (events, iterations, rejects).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!metrics_enabled()) return;
    cells_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  /// Aggregate across shards (scrape path).
  std::uint64_t value() const;
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::array<detail::CounterCell, detail::kShards> cells_;
};

/// Point-in-time level (queue depth, bytes reserved).  add() deltas from
/// several writers aggregate; set() overwrites the whole gauge (single
/// authoritative writer).
class Gauge {
 public:
  void set(double v) {
    if (!metrics_enabled()) return;
    // set() collapses onto cell 0 so a later scrape reads exactly v.
    for (std::size_t i = 1; i < detail::kShards; ++i)
      cells_[i].v.store(0.0, std::memory_order_relaxed);
    cells_[0].v.store(v, std::memory_order_relaxed);
  }
  void add(double delta) {
    if (!metrics_enabled()) return;
    detail::atomic_add(cells_[detail::shard_index()].v, delta);
  }
  /// Unconditional add, for the decrement half of a paired inc/dec site
  /// (resource released after metrics were toggled off): the increment
  /// was recorded, so the decrement must be too or the level goes stale.
  void add_unchecked(double delta) {
    detail::atomic_add(cells_[detail::shard_index()].v, delta);
  }
  double value() const;
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::array<detail::DoubleCell, detail::kShards> cells_;
};

/// Fixed-bucket histogram: `bounds` are inclusive upper edges (le), with
/// an implicit +Inf bucket; observe() bumps the first bucket whose bound
/// is >= v.  Bucket layout is fixed at registration, so recording is a
/// branchless-ish scan plus one relaxed add.
class Histogram {
 public:
  void observe(double v);

  struct Snapshot {
    std::vector<double> bounds;          // upper edges, +Inf implicit
    std::vector<std::uint64_t> counts;   // bounds.size() + 1 entries
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  Snapshot snapshot() const;
  const std::string& name() const { return name_; }
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::vector<double> bounds);
  struct alignas(64) Shard {
    std::vector<std::atomic<std::uint64_t>> buckets;  // bounds+1
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };
  std::string name_;
  std::vector<double> bounds_;
  std::array<Shard, detail::kShards> shards_;
};

/// Default bucket edges for microsecond latencies (50 us .. 10 s).
std::vector<double> latency_buckets_us();
/// Default bucket edges for batch sizes (1 .. 64).
std::vector<double> batch_size_buckets();
/// Default bucket edges for PCG iteration counts (8 .. 131072).
std::vector<double> iteration_buckets();
/// Default bucket edges for second-scale durations (100 us .. 100 s) —
/// training steps, loader waits.
std::vector<double> seconds_buckets();

class MetricsRegistry {
 public:
  /// The process-wide registry.
  static MetricsRegistry& instance();

  /// Find-or-create; the returned reference is valid for the process
  /// lifetime.  Re-registering a histogram with different bounds keeps
  /// the original bounds.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Prometheus-style text exposition (sorted by name, with # TYPE lines).
  std::string render_text() const;
  /// One-line JSON: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string render_json() const;

  /// Zero every cell of every instrument (benches' A/B phases, tests).
  /// References returned earlier stay valid.
  void reset();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

/// Shorthands for call-site static initialization.
inline Counter& counter(const std::string& name) {
  return MetricsRegistry::instance().counter(name);
}
inline Gauge& gauge(const std::string& name) {
  return MetricsRegistry::instance().gauge(name);
}
inline Histogram& histogram(const std::string& name,
                            std::vector<double> bounds) {
  return MetricsRegistry::instance().histogram(name, std::move(bounds));
}

}  // namespace lmmir::obs
