#pragma once
// Scoped tracing: RAII spans recorded into lock-free per-thread ring
// buffers, exported as Chrome trace / Perfetto JSON.
//
//   {
//     obs::Span batch("serve.batch");          // parent = thread-current
//     {
//       obs::Span fwd("serve.forward");        // nested under `batch`
//       ...
//     }
//   }
//   obs::emit_span("serve.request", t_arrival_ns, t_done_ns, batch_id);
//
// Recording discipline: a Span costs one relaxed flag check when tracing
// is off.  When on, construction stamps obs::now_ns() and destruction
// appends one fixed-size event to the calling thread's ring buffer — no
// locks, no allocation after the buffer exists.  Each thread owns its
// buffer exclusively; the exporter walks all buffers (they outlive their
// threads) and writes one JSON file loadable in chrome://tracing or
// https://ui.perfetto.dev.
//
// Parentage: spans nest implicitly per thread (the thread-current span),
// and explicitly across threads via parent handles — a span id can be
// captured on one thread and passed as the parent of work executing on
// another (serve request lifecycles).  Ring capacity is fixed; when a
// thread records more events than fit, the oldest are overwritten (the
// tail of a long run is what you usually want).
//
// Env: LMMIR_TRACE_FILE=<path> enables tracing at startup and writes the
// trace there at process exit.  set_trace_enabled() / write_trace() give
// programmatic control (tests, benches).
#include <atomic>
#include <cstdint>
#include <string>

namespace lmmir::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
void record_event(const char* name, std::uint64_t start_ns,
                  std::uint64_t end_ns, std::uint64_t id, std::uint64_t parent,
                  std::uint64_t track);
}  // namespace detail

/// True when spans record (LMMIR_TRACE_FILE, or set_trace_enabled).
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}
void set_trace_enabled(bool enabled);

/// Fresh process-unique span id (non-zero).
std::uint64_t new_span_id();

/// The calling thread's innermost open Span id (0 when none / disabled).
std::uint64_t current_span_id();

/// Pseudo-track for cross-thread request lifecycle spans (rendered as its
/// own named row, separate from the per-thread rows).
inline constexpr std::uint64_t kRequestTrack = 9999;

class Span {
 public:
  /// Opens a span whose parent is the thread-current span.
  explicit Span(const char* name) : Span(name, current_span_id()) {}
  /// Opens a span with an explicit parent handle (0 = root); use this to
  /// link work executing on a different thread than its logical parent.
  Span(const char* name, std::uint64_t parent);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// This span's handle, capturable as another span's parent (0 when
  /// tracing is disabled).
  std::uint64_t id() const { return id_; }

 private:
  const char* name_;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint64_t start_ns_ = 0;
  std::uint64_t saved_current_ = 0;
  bool active_ = false;
};

/// Record a completed span with explicit timestamps — for lifecycles that
/// start on one thread and finish on another (e.g. a serve request from
/// submit to fulfil).  `track` 0 = the calling thread's row; non-zero
/// renders on a dedicated pseudo-track (see kRequestTrack).  Returns the
/// event's span id (0 when tracing is disabled).
std::uint64_t emit_span(const char* name, std::uint64_t start_ns,
                        std::uint64_t end_ns, std::uint64_t parent = 0,
                        std::uint64_t track = 0);

/// Write every buffered event as Chrome trace JSON ({"traceEvents": [...]})
/// to `path`.  Call while recording threads are quiescent for a complete
/// snapshot.  Returns false when the file cannot be written.
bool write_trace(const std::string& path);

/// Drop all buffered events (benches / tests isolating phases).
void clear_trace();

/// Number of events currently buffered across all threads.
std::size_t buffered_events();

}  // namespace lmmir::obs
