#pragma once
// The single monotonic time source for the observability layer: spans,
// stopwatches, and benches all read the same steady clock through
// now_ns(), so durations recorded in different subsystems are directly
// comparable (no mixed wall/steady clock sources).
#include <chrono>
#include <cstdint>

namespace lmmir::obs {

/// Monotonic nanoseconds since the steady-clock epoch.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// A steady-clock time_point expressed on the now_ns() scale (for code
/// that already holds time_points, e.g. request arrival stamps).
inline std::uint64_t to_ns(std::chrono::steady_clock::time_point tp) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          tp.time_since_epoch())
          .count());
}

}  // namespace lmmir::obs
