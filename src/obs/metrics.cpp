#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

namespace lmmir::obs {

namespace detail {

namespace {
bool metrics_enabled_from_env() {
  const char* v = std::getenv("LMMIR_METRICS");
  return v && !(v[0] == '0' && v[1] == '\0');
}
}  // namespace

std::atomic<bool> g_metrics_enabled{metrics_enabled_from_env()};

std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return idx;
}

}  // namespace detail

void set_metrics_enabled(bool enabled) {
  detail::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

double Gauge::value() const {
  double total = 0.0;
  for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  for (auto& s : shards_)
    s.buckets = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
}

void Histogram::observe(double v) {
  if (!metrics_enabled()) return;
  // First bucket whose inclusive upper edge admits v; +Inf catches the rest.
  const std::size_t b = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  Shard& s = shards_[detail::shard_index()];
  s.buckets[b].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(s.sum, v);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const auto& s : shards_) {
    for (std::size_t b = 0; b < snap.counts.size(); ++b)
      snap.counts[b] += s.buckets[b].load(std::memory_order_relaxed);
    snap.count += s.count.load(std::memory_order_relaxed);
    snap.sum += s.sum.load(std::memory_order_relaxed);
  }
  return snap;
}

std::vector<double> latency_buckets_us() {
  return {50,     100,    250,    500,    1e3,   2.5e3, 5e3,
          1e4,    2.5e4,  5e4,    1e5,    2.5e5, 5e5,   1e6,
          2.5e6,  5e6,    1e7};
}

std::vector<double> batch_size_buckets() {
  return {1, 2, 4, 8, 16, 32, 64};
}

std::vector<double> iteration_buckets() {
  // Extends to 131072: million-node ladders under weak preconditioning
  // (Jacobi at 10^6 unknowns) land well past the old 8192 top edge, and
  // everything above the last finite bucket collapses into +Inf.
  return {8,    16,   32,   64,    128,   256,   512,   1024,
          2048, 4096, 8192, 16384, 32768, 65536, 131072};
}

std::vector<double> seconds_buckets() {
  // Coarse log scale for whole-step / whole-wait durations (100 us .. 100
  // s) — training steps and loader waits, where the _us edges bottom out.
  return {1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100};
}

// ------------------------------------------------------------------ registry

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  // std::map: exporters walk instruments in sorted-name order for free.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry& MetricsRegistry::instance() {
  // Leaked on purpose: instruments referenced from function-local statics
  // in other translation units must outlive every static destructor.
  static MetricsRegistry* reg = new MetricsRegistry();
  return *reg;
}

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl* impl = new Impl();
  return *impl;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.counters[name];
  if (!slot) slot.reset(new Counter(name));
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.gauges[name];
  if (!slot) slot.reset(new Gauge(name));
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.histograms[name];
  if (!slot) slot.reset(new Histogram(name, std::move(bounds)));
  return *slot;
}

void MetricsRegistry::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (auto& [name, c] : im.counters)
    for (auto& cell : c->cells_) cell.v.store(0, std::memory_order_relaxed);
  for (auto& [name, g] : im.gauges)
    for (auto& cell : g->cells_) cell.v.store(0.0, std::memory_order_relaxed);
  for (auto& [name, h] : im.histograms)
    for (auto& shard : h->shards_) {
      for (auto& b : shard.buckets) b.store(0, std::memory_order_relaxed);
      shard.count.store(0, std::memory_order_relaxed);
      shard.sum.store(0.0, std::memory_order_relaxed);
    }
}

namespace {

std::string format_double(double v) {
  char buf[64];
  // %.17g round-trips doubles; trim the common integral case for
  // readability.
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

std::string format_bound(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%g", v);
  }
  return buf;
}

}  // namespace

std::string MetricsRegistry::render_text() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::string out;
  for (const auto& [name, c] : im.counters) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : im.gauges) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + format_double(g->value()) + "\n";
  }
  for (const auto& [name, h] : im.histograms) {
    const Histogram::Snapshot s = h->snapshot();
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < s.bounds.size(); ++b) {
      cumulative += s.counts[b];
      out += name + "_bucket{le=\"" + format_bound(s.bounds[b]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    cumulative += s.counts.back();
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
    out += name + "_sum " + format_double(s.sum) + "\n";
    out += name + "_count " + std::to_string(s.count) + "\n";
  }
  return out;
}

std::string MetricsRegistry::render_json() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : im.counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : im.gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + format_double(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : im.histograms) {
    if (!first) out += ",";
    first = false;
    const Histogram::Snapshot s = h->snapshot();
    out += "\"" + name + "\":{\"buckets\":[";
    for (std::size_t b = 0; b < s.bounds.size(); ++b) {
      if (b) out += ",";
      out += "[" + format_bound(s.bounds[b]) + "," +
             std::to_string(s.counts[b]) + "]";
    }
    if (!s.bounds.empty()) out += ",";
    out += "[\"+Inf\"," + std::to_string(s.counts.back()) + "]";
    out += "],\"sum\":" + format_double(s.sum) +
           ",\"count\":" + std::to_string(s.count) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace lmmir::obs
