#include "spice/netlist.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

namespace lmmir::spice {

namespace {
// Process-wide revision source: each mutation event gets a unique value,
// which is what makes Netlist::revision() a content key (equal revisions
// can only come from copies of the same snapshot).
std::atomic<std::uint64_t> g_netlist_revision{0};
}  // namespace

void Netlist::touch() {
  revision_ = 1 + g_netlist_revision.fetch_add(1, std::memory_order_relaxed);
}

NodeId Netlist::intern_node(const std::string& raw_name) {
  if (is_ground(raw_name)) return kGroundNode;
  auto it = node_index_.find(raw_name);
  if (it != node_index_.end()) return it->second;
  touch();
  Node n;
  n.raw_name = raw_name;
  NodeName parsed;
  if (parse_node_name(raw_name, parsed)) n.parsed = parsed;
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(n));
  node_index_.emplace(raw_name, id);
  return id;
}

std::optional<NodeId> Netlist::find_node(const std::string& raw_name) const {
  if (is_ground(raw_name)) return kGroundNode;
  auto it = node_index_.find(raw_name);
  if (it == node_index_.end()) return std::nullopt;
  return it->second;
}

void Netlist::add_resistor(const std::string& name, NodeId a, NodeId b,
                           double ohms) {
  touch();
  elements_.push_back({ElementType::Resistor, name, a, b, ohms});
}

void Netlist::add_current_source(const std::string& name, NodeId from,
                                 NodeId to, double amps) {
  touch();
  elements_.push_back({ElementType::CurrentSource, name, from, to, amps});
}

void Netlist::add_voltage_source(const std::string& name, NodeId plus,
                                 NodeId minus, double volts) {
  touch();
  elements_.push_back({ElementType::VoltageSource, name, plus, minus, volts});
}

void Netlist::set_element_value(std::size_t element_index, double value) {
  Element& e = elements_.at(element_index);
  if (e.type == ElementType::Resistor && value <= 0.0)
    throw std::invalid_argument("set_element_value: non-positive resistance");
  touch();
  e.value = value;
}

std::size_t Netlist::count(ElementType t) const {
  return static_cast<std::size_t>(
      std::count_if(elements_.begin(), elements_.end(),
                    [t](const Element& e) { return e.type == t; }));
}

int Netlist::max_layer() const {
  int layer = 0;
  for (const auto& n : nodes_)
    if (n.parsed) layer = std::max(layer, n.parsed->layer);
  return layer;
}

Netlist::Bounds Netlist::bounds() const {
  Bounds b;
  for (const auto& n : nodes_) {
    if (!n.parsed) continue;
    if (!b.valid) {
      b.min_x = b.max_x = n.parsed->x;
      b.min_y = b.max_y = n.parsed->y;
      b.valid = true;
    } else {
      b.min_x = std::min(b.min_x, n.parsed->x);
      b.max_x = std::max(b.max_x, n.parsed->x);
      b.min_y = std::min(b.min_y, n.parsed->y);
      b.max_y = std::max(b.max_y, n.parsed->y);
    }
  }
  return b;
}

Netlist::PixelShape Netlist::pixel_shape() const {
  const Bounds b = bounds();
  PixelShape s;
  if (!b.valid) return s;
  s.cols = static_cast<std::size_t>(b.max_x / kDbuPerMicron) + 1;
  s.rows = static_cast<std::size_t>(b.max_y / kDbuPerMicron) + 1;
  return s;
}

std::size_t Netlist::resident_bytes() const {
  std::size_t bytes = sizeof(Netlist);
  bytes += elements_.capacity() * sizeof(Element);
  for (const auto& e : elements_) bytes += e.name.capacity();
  bytes += nodes_.capacity() * sizeof(Node);
  for (const auto& n : nodes_) bytes += n.raw_name.capacity();
  // Hash map: one bucket pointer per bucket plus a node (key copy + id +
  // chain link) per entry — the dominant unordered_map costs.
  bytes += node_index_.bucket_count() * sizeof(void*);
  for (const auto& [name, id] : node_index_) {
    (void)id;
    bytes += name.capacity() + sizeof(NodeId) + 2 * sizeof(void*);
  }
  return bytes;
}

}  // namespace lmmir::spice
