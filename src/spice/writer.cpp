#include "spice/writer.hpp"

#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace lmmir::spice {

namespace {
char type_letter(ElementType t) {
  switch (t) {
    case ElementType::Resistor: return 'R';
    case ElementType::CurrentSource: return 'I';
    case ElementType::VoltageSource: return 'V';
  }
  return '?';
}

std::string node_spelling(const Netlist& nl, NodeId id) {
  if (id == kGroundNode) return "0";
  return nl.node(id).raw_name;
}
}  // namespace

void write_netlist(std::ostream& out, const Netlist& nl,
                   const std::string& title) {
  out << "* " << title << '\n';
  // max_digits10: write -> parse round-trips every double exactly, so a
  // netlist written to disk solves to the same ground truth as the
  // in-memory one.
  out.precision(std::numeric_limits<double>::max_digits10);
  for (const auto& e : nl.elements()) {
    out << type_letter(e.type) << e.name << ' ' << node_spelling(nl, e.node1)
        << ' ' << node_spelling(nl, e.node2) << ' ' << e.value << '\n';
  }
  out << ".end\n";
}

std::string write_netlist_string(const Netlist& nl, const std::string& title) {
  std::ostringstream ss;
  write_netlist(ss, nl, title);
  return ss.str();
}

void write_netlist_file(const std::string& path, const Netlist& nl,
                        const std::string& title) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("spice: cannot open for write " + path);
  write_netlist(f, nl, title);
  if (!f) throw std::runtime_error("spice: write failed for " + path);
}

}  // namespace lmmir::spice
