#pragma once
// Netlist serializer producing contest-style SPICE text; the inverse of the
// parser (round-trip is tested).
#include <ostream>
#include <string>

#include "spice/netlist.hpp"

namespace lmmir::spice {

/// Write the netlist. A header comment and ".end" are included.
void write_netlist(std::ostream& out, const Netlist& nl,
                   const std::string& title = "lmmir PDN");

std::string write_netlist_string(const Netlist& nl,
                                 const std::string& title = "lmmir PDN");

void write_netlist_file(const std::string& path, const Netlist& nl,
                        const std::string& title = "lmmir PDN");

}  // namespace lmmir::spice
