#pragma once
// SPICE PDN netlist parser (ICCAD-2023 contest subset).
//
// Grammar accepted, one element per line:
//   R<name> <node> <node> <ohms>
//   I<name> <node> <node> <amps>      (current flows node1 -> node2)
//   V<name> <node> <node> <volts>
// plus '*' / ';' comments, blank lines, and the directives
// ".title", ".end", ".op" (all ignored).  Element letters are
// case-insensitive; values accept SPICE engineering suffixes
// (f p n u m k meg g t) and plain scientific notation.
#include <istream>
#include <string>

#include "spice/netlist.hpp"

namespace lmmir::spice {

struct ParseStats {
  std::size_t lines = 0;
  std::size_t elements = 0;
  std::size_t comments = 0;
  std::size_t directives = 0;
};

/// Parse a numeric literal with optional SPICE engineering suffix.
/// Returns false on malformed input.
bool parse_spice_value(const std::string& token, double& out);

/// Parse netlist text. Throws std::runtime_error with a line number on
/// malformed element lines.
Netlist parse_netlist_string(const std::string& text,
                             ParseStats* stats = nullptr);

/// Parse from a stream / file.
Netlist parse_netlist_stream(std::istream& in, ParseStats* stats = nullptr);
Netlist parse_netlist_file(const std::string& path,
                           ParseStats* stats = nullptr);

}  // namespace lmmir::spice
