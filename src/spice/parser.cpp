#include "spice/parser.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/string_utils.hpp"

namespace lmmir::spice {

bool parse_spice_value(const std::string& token, double& out) {
  if (token.empty()) return false;
  // Split off a trailing alphabetic suffix, if any.
  std::size_t num_end = token.size();
  while (num_end > 0 &&
         std::isalpha(static_cast<unsigned char>(token[num_end - 1])))
    --num_end;
  const std::string digits = token.substr(0, num_end);
  const std::string suffix = util::to_lower(token.substr(num_end));
  double base = 0.0;
  if (!util::parse_double(digits, base)) return false;

  double mult = 1.0;
  if (suffix.empty()) mult = 1.0;
  else if (suffix == "f") mult = 1e-15;
  else if (suffix == "p") mult = 1e-12;
  else if (suffix == "n") mult = 1e-9;
  else if (suffix == "u") mult = 1e-6;
  else if (suffix == "m") mult = 1e-3;
  else if (suffix == "k") mult = 1e3;
  else if (suffix == "meg" || suffix == "x") mult = 1e6;
  else if (suffix == "g") mult = 1e9;
  else if (suffix == "t") mult = 1e12;
  else return false;

  out = base * mult;
  return true;
}

namespace {

[[noreturn]] void fail(std::size_t lineno, const std::string& what) {
  throw std::runtime_error("spice parse error at line " +
                           std::to_string(lineno) + ": " + what);
}

}  // namespace

Netlist parse_netlist_stream(std::istream& in, ParseStats* stats) {
  Netlist nl;
  ParseStats local;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    ++local.lines;
    auto s = util::trim(line);
    if (s.empty()) continue;
    if (s[0] == '*' || s[0] == ';') {
      ++local.comments;
      continue;
    }
    if (s[0] == '.') {
      ++local.directives;
      const auto word = util::to_lower(util::split_ws(s)[0]);
      if (word == ".end") break;
      continue;  // .title / .op / anything else: ignored
    }
    const auto tok = util::split_ws(s);
    if (tok.size() != 4)
      fail(lineno, "expected 4 tokens, got " + std::to_string(tok.size()));
    const char kind = static_cast<char>(
        std::tolower(static_cast<unsigned char>(tok[0][0])));
    double value = 0.0;
    if (!parse_spice_value(tok[3], value))
      fail(lineno, "bad value '" + tok[3] + "'");
    const std::string name = tok[0].size() > 1 ? tok[0].substr(1) : "";
    const NodeId a = nl.intern_node(tok[1]);
    const NodeId b = nl.intern_node(tok[2]);
    switch (kind) {
      case 'r':
        if (value <= 0.0) fail(lineno, "non-positive resistance");
        nl.add_resistor(name, a, b, value);
        break;
      case 'i':
        nl.add_current_source(name, a, b, value);
        break;
      case 'v':
        nl.add_voltage_source(name, a, b, value);
        break;
      default:
        fail(lineno, std::string("unsupported element '") + tok[0][0] + "'");
    }
    ++local.elements;
  }
  if (stats) *stats = local;
  return nl;
}

Netlist parse_netlist_string(const std::string& text, ParseStats* stats) {
  std::istringstream in(text);
  return parse_netlist_stream(in, stats);
}

Netlist parse_netlist_file(const std::string& path, ParseStats* stats) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("spice: cannot open " + path);
  return parse_netlist_stream(in, stats);
}

}  // namespace lmmir::spice
