#pragma once
// In-memory PDN netlist: the list of R / I / V elements plus an interned
// node table.  This is the shared data model between the parser, the golden
// solver, the feature extractor, and the point-cloud encoder.
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "spice/node_name.hpp"

namespace lmmir::spice {

enum class ElementType { Resistor, CurrentSource, VoltageSource };

/// Index of an interned node within Netlist; kGroundNode marks "0".
using NodeId = std::int32_t;
inline constexpr NodeId kGroundNode = -1;

struct Element {
  ElementType type = ElementType::Resistor;
  std::string name;      // e.g. "R1023" (without leading type letter: "1023")
  NodeId node1 = kGroundNode;
  NodeId node2 = kGroundNode;
  double value = 0.0;    // ohms / amps / volts
};

/// Interned node: parsed coordinates when the name follows the contest
/// grammar, or just the raw name for free-form nodes.
struct Node {
  std::string raw_name;
  std::optional<NodeName> parsed;  // nullopt for free-form names
};

class Netlist {
 public:
  /// Content revision key.  Every mutation (interning a new node, adding
  /// an element, rewriting an element value) stamps the netlist with a
  /// fresh value from a process-wide counter, so a given revision value is
  /// assigned to exactly one content snapshot: equal revisions imply equal
  /// content, across distinct Netlist objects (copies carry the revision
  /// of the snapshot they were taken from; mutating a copy re-stamps it).
  /// Caches keyed on the revision (feat::FeatureContext) can therefore
  /// skip re-validating a netlist they have already seen.
  std::uint64_t revision() const { return revision_; }

  /// Intern a node by raw name; returns kGroundNode for "0".
  NodeId intern_node(const std::string& raw_name);

  /// Look up an interned node id; returns nullopt if never interned.
  std::optional<NodeId> find_node(const std::string& raw_name) const;

  void add_resistor(const std::string& name, NodeId a, NodeId b, double ohms);
  void add_current_source(const std::string& name, NodeId from, NodeId to,
                          double amps);
  void add_voltage_source(const std::string& name, NodeId plus, NodeId minus,
                          double volts);

  /// Replace an element's value (PDN optimization: wire upsizing rewrites
  /// resistor values in place). Throws std::out_of_range / invalid_argument.
  void set_element_value(std::size_t element_index, double value);

  const std::vector<Element>& elements() const { return elements_; }
  const std::vector<Node>& nodes() const { return nodes_; }
  const Node& node(NodeId id) const { return nodes_.at(static_cast<std::size_t>(id)); }

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t element_count() const { return elements_.size(); }
  std::size_t count(ElementType t) const;

  /// Highest metal layer index among parsed nodes (0 when none parse).
  int max_layer() const;

  /// Bounding box over parsed node coordinates, in DBU.
  struct Bounds {
    std::int64_t min_x = 0, min_y = 0, max_x = 0, max_y = 0;
    bool valid = false;
  };
  Bounds bounds() const;

  /// Chip extent in feature-map pixels (ceil(max/µm) + 1 in each axis).
  struct PixelShape {
    std::size_t rows = 0;  // y extent
    std::size_t cols = 0;  // x extent
  };
  PixelShape pixel_shape() const;

  /// Estimated heap footprint of this netlist (elements, interned nodes,
  /// name strings, index buckets).  An accounting estimate for cache
  /// memory budgets (serve::SessionServer), not an allocator-exact count.
  std::size_t resident_bytes() const;

 private:
  void touch();  // stamp a fresh process-unique revision

  std::vector<Element> elements_;
  std::vector<Node> nodes_;
  std::unordered_map<std::string, NodeId> node_index_;
  std::uint64_t revision_ = 0;  // 0 = pristine empty netlist
};

}  // namespace lmmir::spice
