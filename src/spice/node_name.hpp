#pragma once
// PDN node naming in the ICCAD-2023 CAD contest convention:
//     n<net>_m<layer>_<x>_<y>
// e.g. "n1_m1_108000_26000" is net 1, metal layer 1, at (x, y) in database
// units (1 DBU = 1 nm; 1000 DBU = 1 µm, the feature-map pixel pitch).
// The ground node is the literal "0".
#include <cstdint>
#include <string>

namespace lmmir::spice {

/// Database units per feature-map pixel (1 µm at contest scale).
inline constexpr std::int64_t kDbuPerMicron = 1000;

struct NodeName {
  int net = 1;          // power net index (n1 = VDD)
  int layer = 1;        // metal layer index (m1 is the standard-cell rail)
  std::int64_t x = 0;   // DBU
  std::int64_t y = 0;   // DBU

  std::string to_string() const;

  bool operator==(const NodeName&) const = default;
};

/// True for the ground node spelling "0".
bool is_ground(const std::string& name);

/// Parse "n<net>_m<layer>_<x>_<y>". Returns false (and leaves `out`
/// unspecified) when the string is not a well-formed node name.
bool parse_node_name(const std::string& name, NodeName& out);

}  // namespace lmmir::spice
