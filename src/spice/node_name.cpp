#include "spice/node_name.hpp"

#include "util/string_utils.hpp"

namespace lmmir::spice {

std::string NodeName::to_string() const {
  return "n" + std::to_string(net) + "_m" + std::to_string(layer) + "_" +
         std::to_string(x) + "_" + std::to_string(y);
}

bool is_ground(const std::string& name) { return name == "0"; }

bool parse_node_name(const std::string& name, NodeName& out) {
  // Expected shape: n<digits>_m<digits>_<digits>_<digits>
  const auto parts = util::split(name, '_');
  if (parts.size() != 4) return false;
  if (parts[0].size() < 2 || (parts[0][0] != 'n' && parts[0][0] != 'N'))
    return false;
  if (parts[1].size() < 2 || (parts[1][0] != 'm' && parts[1][0] != 'M'))
    return false;
  long net = 0, layer = 0, x = 0, y = 0;
  if (!util::parse_long(parts[0].substr(1), net)) return false;
  if (!util::parse_long(parts[1].substr(1), layer)) return false;
  if (!util::parse_long(parts[2], x)) return false;
  if (!util::parse_long(parts[3], y)) return false;
  out.net = static_cast<int>(net);
  out.layer = static_cast<int>(layer);
  out.x = x;
  out.y = y;
  return true;
}

}  // namespace lmmir::spice
