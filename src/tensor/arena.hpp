#pragma once
// Arena-backed tensor memory for the inference hot path.
//
// Every tensor op allocates a fresh output node (TensorImpl + float
// buffer); a single CNN forward pass churns through dozens of heap
// allocations per layer.  Training needs owning allocations — tape nodes
// outlive the pass arbitrarily — but inference tensors have a strict
// request lifetime, so the serving layers recycle them through a
// TensorArena instead:
//
//   tensor::TensorArena arena;              // one per worker thread
//   {
//     tensor::NoGradGuard no_grad;          // the engage condition
//     tensor::ArenaScope scope(&arena);     // install for this thread
//     pred = model.forward(circuit, tokens);
//   }                                       // intermediates return to the pools
//   ... copy results out (owning) ...
//   arena.reset();                          // per-request barrier
//
// Ownership model (safety first): the arena keeps every node it ever
// created alive in a slot vector of shared_ptrs.  A node whose slot
// use_count() is back to 1 is free and gets recycled — its float buffer
// returns to a per-size free-list and the TensorImpl is reinitialized in
// place — so in steady state (same op sequence every request) a forward
// pass performs zero heap allocations.  A tensor that escapes the
// request (a bug, or a deliberate hand-off) simply keeps its node alive:
// the slot is never reused while referenced and destroying the arena
// cannot dangle it, because lifetime is plain shared_ptr ownership.
// Contract violations degrade to ordinary heap behaviour, never to
// use-after-free.
//
// Engage conditions:
//   * op outputs / make_node adopt into the arena only when the calling
//     thread has an ArenaScope installed AND grad mode is off
//     (NoGradGuard) AND the tensor does not require grad — training and
//     autograd keep the owning-allocation path untouched;
//   * ScratchBuffer / IndexScratchBuffer (op-internal temporaries that
//     never affect results) pool whenever an arena is installed,
//     including on runtime::ThreadPool workers, which own one arena each
//     (see runtime/thread_pool.hpp).
//
// Determinism: pooled buffers are zero-filled on acquisition exactly
// like the `std::vector<float>(n)` they replace, so results are bitwise
// identical with the arena on or off (bench_serve_throughput gates
// this).
//
// Thread model: a TensorArena is single-threaded state — one instance
// per worker thread, installed via ArenaScope.  Tensors allocated from
// it must be released by the owning thread before the arena is reused
// (escaped tensors are safe but pin their slot).
//
// Env: LMMIR_TENSOR_ARENA=0 disables arena adoption process-wide (the
// serving and runtime layers consult arena_enabled_from_env() when
// deciding whether to create arenas at all).
#include <cstddef>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "tensor/tensor.hpp"

namespace lmmir::tensor {

/// Lifetime counters of a TensorArena.  `*_allocs` count heap
/// allocations the pools could not serve (warm-up and shape changes);
/// `*_reuses` count the allocations saved by recycling.
struct ArenaStats {
  std::size_t node_allocs = 0;     // TensorImpl slots created
  std::size_t node_reuses = 0;     // nodes recycled in place
  std::size_t buffer_allocs = 0;   // data buffers heap-allocated
  std::size_t buffer_reuses = 0;   // data buffers served from the pool
  std::size_t scratch_allocs = 0;  // scratch buffers heap-allocated
  std::size_t scratch_reuses = 0;  // scratch buffers served from the pool
  std::size_t resets = 0;          // per-request reset() calls
  std::size_t bytes_reserved = 0;  // bytes held by slots + free-lists
  std::size_t live_nodes = 0;      // arena nodes currently referenced

  std::size_t allocations_saved() const {
    return node_reuses + buffer_reuses + scratch_reuses;
  }
  /// Heap allocations the arena had to perform.  Flat across steady-state
  /// requests once every shape has been seen — the bench gate.
  std::size_t heap_allocations() const {
    return node_allocs + buffer_allocs + scratch_allocs;
  }

  /// Field-wise sum (aggregation across per-worker arenas).
  ArenaStats& operator+=(const ArenaStats& o) {
    node_allocs += o.node_allocs;
    node_reuses += o.node_reuses;
    buffer_allocs += o.buffer_allocs;
    buffer_reuses += o.buffer_reuses;
    scratch_allocs += o.scratch_allocs;
    scratch_reuses += o.scratch_reuses;
    resets += o.resets;
    bytes_reserved += o.bytes_reserved;
    live_nodes += o.live_nodes;
    return *this;
  }
};

class TensorArena {
 public:
  TensorArena() = default;
  TensorArena(const TensorArena&) = delete;
  TensorArena& operator=(const TensorArena&) = delete;

  /// Adopt (shape, data) into a recycled node, or grow a new slot.  The
  /// returned node returns to the arena when its last reference drops.
  std::shared_ptr<TensorImpl> make_node(Shape shape, std::vector<float> data);

  /// Zero-filled data buffer of exactly `n` floats from the per-size
  /// free-list (bitwise-identical semantics to `std::vector<float>(n)`).
  std::vector<float> acquire(std::size_t n);
  /// Buffer initialized as a copy of [first, last): one pass instead of
  /// zero-fill + copy.
  std::vector<float> acquire_copy(const float* first, const float* last);
  /// Buffer of `n` floats whose contents are UNSPECIFIED (recycled as-is
  /// on a pool hit): the caller must overwrite every element before any
  /// read, or results become nondeterministic.
  std::vector<float> acquire_unfilled(std::size_t n);
  /// Return a buffer to the per-size free-list (keyed by size()).
  void release(std::vector<float>&& buf);

  /// Zero-filled scratch of `n` floats, capacity-fit from a small
  /// free-list (scratch sizes vary with chunking, so best-fit beats
  /// exact-size keying here).
  std::vector<float> acquire_scratch(std::size_t n);
  void release_scratch(std::vector<float>&& buf);
  std::vector<std::size_t> acquire_index_scratch(std::size_t n);
  void release_index_scratch(std::vector<std::size_t>&& buf);

  /// Per-request barrier: rewinds the slot scan cursor so the next pass
  /// re-walks slots in the same deterministic order.  Pools and slots
  /// stay warm — that is the point.
  void reset();

  /// Nodes currently referenced outside the arena (0 between requests
  /// unless a tensor escaped its scope).
  std::size_t live_nodes() const;

  /// Counter snapshot with bytes_reserved / live_nodes computed.
  ArenaStats stats() const;

 private:
  /// Push counter/gauge deltas since the last push into the process-wide
  /// obs registry (lmmir_arena_*).  Called from reset() — the per-request
  /// barrier — only when metrics are enabled, so the per-op hot path
  /// carries no instrumentation at all.
  void publish_metrics();

  std::vector<std::shared_ptr<TensorImpl>> slots_;
  std::size_t cursor_ = 0;  // round-robin free-slot scan position
  // Data-buffer free-lists keyed by element count (steady-state traffic
  // re-requests the exact sizes of the previous pass).
  std::unordered_map<std::size_t, std::vector<std::vector<float>>> buffers_;
  std::vector<std::vector<float>> scratch_;
  std::vector<std::vector<std::size_t>> index_scratch_;
  ArenaStats stats_;
  ArenaStats pushed_;  // snapshot at the last publish_metrics()
};

/// RAII: installs `arena` as the calling thread's active arena for the
/// scope's lifetime (restores the previous one on exit; nesting is
/// fine).  Passing nullptr is a no-op scope.
class ArenaScope {
 public:
  explicit ArenaScope(TensorArena* arena);
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  TensorArena* saved_;
};

/// The calling thread's installed arena, or nullptr.
TensorArena* active_arena();

/// Process-wide default for creating arenas at all: LMMIR_TENSOR_ARENA
/// unset or non-zero enables, "0" disables.  Read once.
bool arena_enabled_from_env();

/// Worker-init hook for runtime::ThreadPool that gives each pool worker
/// its own TensorArena, installed as the worker's active arena for the
/// worker's lifetime — so op-internal scratch drawn inside fanned-out
/// kernel chunks (e.g. conv2d's im2col buffer) is pooled per worker
/// instead of heap-allocated per chunk.  The arena layer registers the
/// env-gated form of this hook as the pool's process default at startup
/// (the pool itself knows nothing about tensors); pass
/// `worker_arena_init(false)` — an empty hook — to force arenas off, or
/// `worker_arena_init(true)` to force them on regardless of
/// LMMIR_TENSOR_ARENA (A/B measurement runs).
runtime::WorkerInit worker_arena_init(bool enabled);

/// Observable variant for tests and telemetry: a registry that records
/// each worker's arena.  One registry serves ONE pool: keep it alive for
/// the pool's whole lifetime, do not reuse it for a second pool (the
/// hook refuses rather than free an arena a live worker still holds),
/// and read arenas only while the pool is quiescent (counters are
/// written by the owning worker).
class WorkerArenas {
 public:
  /// The init hook; creates one arena per worker and records it here.
  /// Captures `this` — the registry must outlive the pool using the hook.
  runtime::WorkerInit init();

  /// Worker `i`'s arena, or nullptr (never spawned / index out of range).
  TensorArena* arena(std::size_t worker) const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<TensorArena>> arenas_;  // indexed by worker
};

/// Zero-filled float buffer for data destined to become a tensor: drawn
/// from the active arena when the adoption conditions hold (arena
/// installed, grad mode off), plain heap otherwise.  Ops use this for
/// their output buffers so make_node can recycle them.
std::vector<float> arena_buffer(std::size_t n);

/// Same routing, initialized as a copy of [first, last) in a single pass
/// (for reshape/detach-style whole-buffer copies).
std::vector<float> arena_buffer_copy(const float* first, const float* last);

/// Same routing, contents UNSPECIFIED on the arena path (zero-filled on
/// the heap fallback): only for callers that overwrite every element
/// before any read, e.g. batch stacking.
std::vector<float> arena_buffer_overwrite(std::size_t n);

/// RAII op-internal scratch (e.g. the im2col buffer): pooled whenever an
/// arena is installed on the calling thread, regardless of grad mode —
/// scratch never carries semantics.  take() detaches the underlying
/// vector for autograd closures that outlive the call.
class ScratchBuffer {
 public:
  explicit ScratchBuffer(std::size_t n);
  ~ScratchBuffer();
  ScratchBuffer(const ScratchBuffer&) = delete;
  ScratchBuffer& operator=(const ScratchBuffer&) = delete;

  float* data() { return buf_.data(); }
  const float* data() const { return buf_.data(); }
  std::size_t size() const { return buf_.size(); }
  float& operator[](std::size_t i) { return buf_[i]; }
  float operator[](std::size_t i) const { return buf_[i]; }

  /// Detach the vector (ownership leaves the arena; the buffer is freed
  /// by whoever holds it, e.g. a backward closure).
  std::vector<float> take();

 private:
  TensorArena* arena_;
  std::vector<float> buf_;
};

/// Same, for index scratch (e.g. maxpool argmax).
class IndexScratchBuffer {
 public:
  explicit IndexScratchBuffer(std::size_t n);
  ~IndexScratchBuffer();
  IndexScratchBuffer(const IndexScratchBuffer&) = delete;
  IndexScratchBuffer& operator=(const IndexScratchBuffer&) = delete;

  std::size_t* data() { return buf_.data(); }
  const std::size_t* data() const { return buf_.data(); }
  std::size_t& operator[](std::size_t i) { return buf_[i]; }
  std::size_t operator[](std::size_t i) const { return buf_[i]; }

  std::vector<std::size_t> take();

 private:
  TensorArena* arena_;
  std::vector<std::size_t> buf_;
};

}  // namespace lmmir::tensor
