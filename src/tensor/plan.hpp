#pragma once
// Ahead-of-time inference plans: recorded op graphs, static memory
// planning, fused replay kernels.
//
// The model's eval-mode forward graph is static per batch shape, yet the
// eager path re-pays dynamic op dispatch, per-request arena bookkeeping
// (slot scans, free-list lookups) and unfused conv→norm→activation chains
// on every request.  A plan compiles that work away:
//
//   1. RECORD — one eager forward runs inside a RecordScope.  A
//      thread-local hook in detail::make_node observes every node the
//      forward creates; each instrumented op then *claims* its output
//      right after make_node (op kind + input tensors + attributes), and
//      Tensor::from_data claims leaf tensors as shape-dependent
//      constants.  An op consuming a node that was created during
//      recording but never claimed was produced by an uninstrumented op —
//      the recording marks itself unsupported and the shape key falls
//      back to eager permanently (correctness never depends on coverage).
//   2. PLAN — liveness intervals over the recorded temporaries, greedy
//      size-descending offset assignment into ONE flat float arena (the
//      aten/c10 static memory-planning idiom): steady-state replay does
//      no per-tensor bookkeeping at all.  Fusion folds eval-mode
//      batch-norm and elementwise activations into the producing conv's
//      output loop, and consecutive convs over the same input reuse the
//      im2col patch matrix.
//   3. REPLAY — PlanExecutor walks the step list over the flat arena with
//      tensor/microkernels.hpp GEMMs.  Replay mirrors the eager kernels'
//      per-element arithmetic exactly (fusion applies the same formulas
//      in place, the AVX2 GEMM is mul+add per element, never FMA), so
//      plan-on output is bitwise identical to eager at any thread count —
//      tests/test_plan.cpp and bench_serve_throughput gate this.
//
// Recording contract (docs/PLAN.md): eval mode only — batch-norm training
// and active dropout refuse to record; from_data/full/zeros inside a
// recorded forward freeze as constants of the (model, batch-shape) key;
// weights are referenced live (a plan follows in-place weight updates but
// NOT weight-shape changes).  PlanRuntime caches one sealed plan per
// input-shape key and hands replays to a pool of executors; shape changes
// simply record a new plan, and a replay fed mismatched shapes throws
// std::logic_error.
//
// Env: LMMIR_INFER_PLAN=1 opts the serving/prediction layers in (default
// off, read once); LMMIR_SIMD=0 forces the scalar GEMM (microkernels.hpp).
#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.hpp"

namespace lmmir::tensor::plan {

enum class OpKind : std::uint8_t {
  kAdd,
  kSub,
  kMul,
  kScale,
  kAddScalar,
  kRelu,
  kLeakyRelu,
  kSigmoid,
  kTanh,
  kSoftmaxLastDim,
  kReshape,
  kConcat,
  kSliceAxis,
  kTransposeLast2,
  kMatmul,
  kBmm,
  kLinear,
  kConv2d,
  kConvTranspose2d,
  kMaxPool2d,
  kUpsampleNearest2x,
  kBatchNorm2dEval,
  kLayerNormLastDim,
  kAddBiasLastDim,
  kAddBiasChannels,
  kMulBroadcastChannel,
};

const char* op_kind_name(OpKind kind);

/// Small attribute bag carried by a recorded step.  Meaning is per-op
/// (e.g. conv2d: i0=stride, i1=pad_h, i2=pad_w, i3=has_bias; scale:
/// f0=factor).  `snapshot` holds values captured by value at record time
/// (batch-norm eval per-channel mean followed by invstd).
struct OpAttrs {
  int i0 = 0, i1 = 0, i2 = 0, i3 = 0;
  float f0 = 0.0f;
  std::vector<float> snapshot;
};

enum class ValueKind : std::uint8_t {
  kCircuitInput,  // bound per replay: the circuit tensor
  kTokenInput,    // bound per replay: the tokens tensor
  kConstant,      // weight (pinned live node) or recorded snapshot
  kTemp,          // planned into the flat arena
};

struct ValueInfo {
  Shape shape;
  std::size_t numel = 0;
  ValueKind kind = ValueKind::kTemp;
  /// Constant payload: external nodes (model weights) stay pinned and are
  /// read live at replay; constants materialized during the recorded
  /// forward (Tensor::full / from_data) are snapshotted by value instead,
  /// so no arena slot stays pinned after seal.
  std::shared_ptr<const TensorImpl> pinned;
  std::vector<float> snapshot;
  bool eliminated = false;  // fused away; gets no arena storage
};

/// An op folded into the producing step's output loop (conv→bn→act).
struct FusedOp {
  OpKind kind = OpKind::kRelu;
  OpAttrs attrs;
  std::vector<int> extra;  // extra value ids (batch-norm gamma, beta)
};

struct Step {
  OpKind kind = OpKind::kAdd;
  int out = -1;
  std::vector<int> in;  // value ids, op-specific order
  OpAttrs attrs;
  bool skip = false;          // folded into an earlier step
  bool reuse_im2col = false;  // col matrix of the previous conv is valid
  std::vector<FusedOp> fused;
};

/// One planned arena range.  `def`/`last` are step indices (inclusive);
/// the plan output's interval extends one past the final step.
struct PlannedBuffer {
  int value = -1;
  std::size_t offset = 0;  // floats
  std::size_t floats = 0;
  int def = 0;
  int last = 0;
};

/// Sealed, immutable record of one forward. Built by PlanRecorder::seal.
class InferencePlan {
 public:
  bool supported() const { return unsupported_.empty(); }
  const std::string& unsupported_reason() const { return unsupported_; }

  const Shape& circuit_shape() const { return circuit_shape_; }
  bool has_tokens() const { return has_tokens_; }
  const Shape& tokens_shape() const { return tokens_shape_; }
  int output_value() const { return output_value_; }
  const Shape& output_shape() const;

  const std::vector<ValueInfo>& values() const { return values_; }
  const std::vector<Step>& steps() const { return steps_; }
  /// Steps actually executed at replay (fused consumers excluded).
  std::size_t live_steps() const;
  /// Ops folded into a producer's output loop.
  std::size_t fused_ops() const;

  const std::vector<PlannedBuffer>& buffers() const { return buffers_; }
  std::size_t arena_floats() const { return arena_floats_; }
  /// Largest sum of simultaneously-live temp sizes over the step
  /// sequence; arena_floats() >= this by construction.
  std::size_t peak_live_floats() const { return peak_live_floats_; }
  /// im2col scratch requirement (max over conv steps; 0 when conv-free).
  std::size_t col_floats() const { return col_floats_; }

 private:
  friend class PlanRecorder;
  InferencePlan() = default;

  std::string unsupported_;
  Shape circuit_shape_;
  Shape tokens_shape_;
  bool has_tokens_ = false;
  int output_value_ = -1;
  std::vector<ValueInfo> values_;
  std::vector<Step> steps_;
  std::vector<PlannedBuffer> buffers_;
  std::size_t arena_floats_ = 0;
  std::size_t peak_live_floats_ = 0;
  std::size_t col_floats_ = 0;
};

/// Accumulates one forward's op trace.  Single-threaded: install on the
/// recording thread via RecordScope, run the eager forward, then seal().
/// The recorder pins every observed node (shared_ptr) so pointer
/// identity is stable for the whole recording, and drops all pins at
/// seal (recorded constants are snapshotted by value first).
class PlanRecorder {
 public:
  PlanRecorder();
  ~PlanRecorder();
  PlanRecorder(const PlanRecorder&) = delete;
  PlanRecorder& operator=(const PlanRecorder&) = delete;

  /// Declare the forward's inputs before recording.  Tokens may be
  /// undefined (single-modality models).
  void bind_inputs(const Tensor& circuit, const Tensor& tokens);

  /// Build the immutable plan: fusion, liveness, offsets.  `output` must
  /// be the recorded forward's result.  Throws std::logic_error on a
  /// second call; any record_* call after seal throws too (plans are
  /// immutable once sealed).
  std::shared_ptr<const InferencePlan> seal(const Tensor& output);

  bool sealed() const { return sealed_; }
  bool unsupported() const { return !unsupported_.empty(); }
  const std::string& unsupported_reason() const { return unsupported_; }

  // Hook entry points (called via the thread-local recording scope).
  void on_node(const std::shared_ptr<TensorImpl>& node, bool leaf);
  void on_op(OpKind kind, const std::shared_ptr<TensorImpl>& out,
             std::initializer_list<const Tensor*> inputs, OpAttrs attrs);
  void mark_unsupported(const char* why);

 private:
  void check_open(const char* what) const;
  int claim_input(const std::shared_ptr<TensorImpl>& impl);
  int add_value(const Shape& shape, ValueKind kind);
  void fuse_chains(int output_value, std::vector<int>& consumers);
  void annotate_im2col_reuse();
  void plan_memory(InferencePlan& plan, int output_value);

  bool bound_ = false;
  bool sealed_ = false;
  std::string unsupported_;
  Shape circuit_shape_;
  Shape tokens_shape_;
  bool has_tokens_ = false;
  std::unordered_map<const TensorImpl*, int> value_of_;
  std::unordered_map<const TensorImpl*, std::shared_ptr<TensorImpl>> pending_;
  std::vector<std::shared_ptr<TensorImpl>> pins_;
  std::vector<ValueInfo> values_;
  std::vector<Step> steps_;
};

/// RAII: routes this thread's make_node hook and record_* calls to
/// `recorder` for the scope's lifetime.  Scopes do not nest (the inner
/// constructor throws std::logic_error).
class RecordScope {
 public:
  explicit RecordScope(PlanRecorder& recorder);
  ~RecordScope();
  RecordScope(const RecordScope&) = delete;
  RecordScope& operator=(const RecordScope&) = delete;
};

namespace detail {
extern thread_local PlanRecorder* t_recorder;
void record_op_impl(OpKind kind, const std::shared_ptr<TensorImpl>& out,
                    std::initializer_list<const Tensor*> inputs,
                    OpAttrs attrs);
}  // namespace detail

/// True while the calling thread is recording a plan.
inline bool recording_active() { return detail::t_recorder != nullptr; }

/// Claim `out` (the node an op just created via make_node) as the result
/// of `kind` over `inputs`.  No-op unless this thread is recording.
/// Undefined tensors in `inputs` (optional biases) are skipped.
inline void record_op(OpKind kind, const std::shared_ptr<TensorImpl>& out,
                      std::initializer_list<const Tensor*> inputs,
                      OpAttrs attrs = {}) {
  if (detail::t_recorder)
    detail::record_op_impl(kind, out, inputs, std::move(attrs));
}

/// Mark the active recording (if any) unsupported; the shape key will
/// permanently run eager.  Ops call this from paths a plan cannot replay
/// (batch-norm training, active dropout).
inline void record_unsupported(const char* why) {
  if (detail::t_recorder) detail::t_recorder->mark_unsupported(why);
}

/// Replays a sealed plan over one flat arena.  One executor services one
/// replay at a time (PlanRuntime pools them); the flat arena and the
/// im2col scratch are allocated once at construction, so steady-state
/// replay performs zero tensor heap allocations (the output node itself
/// recycles through the caller's TensorArena when one is installed).
class PlanExecutor {
 public:
  explicit PlanExecutor(std::shared_ptr<const InferencePlan> plan);

  /// Run the plan.  Throws std::logic_error when the input shapes differ
  /// from the recorded ones (replay-after-shape-change) or when called on
  /// a thread that is currently recording.
  Tensor run(const Tensor& circuit, const Tensor& tokens);

  const InferencePlan& plan() const { return *plan_; }

 private:
  void exec_step(const Step& step);
  void exec_conv2d(const Step& step);
  void exec_conv_transpose2d(const Step& step);

  std::shared_ptr<const InferencePlan> plan_;
  std::vector<float> arena_;
  std::vector<float> col_;
  std::vector<const float*> src_;  // read pointer per value id
  std::vector<float*> dst_;        // write pointer per temp value id
};

struct RuntimeStats {
  std::size_t plans_recorded = 0;     // sealed, supported
  std::size_t plans_unsupported = 0;  // sealed, fell back permanently
  std::size_t replays = 0;            // requests served by a plan
  std::size_t eager_runs = 0;         // requests served eagerly
                                      // (recording passes included)
};

/// Read-once LMMIR_INFER_PLAN: "1" (any non-"0") opts in, default off.
bool plan_enabled_from_env();

/// Thread-safe plan cache keyed on input batch shape, with a per-plan
/// executor pool.  One runtime per model or per server; every forward
/// goes through run(), which records on first sight of a shape key,
/// replays once sealed, and falls back to `eager` while another thread
/// records, when the key is unsupported, or when the runtime is disabled.
class PlanRuntime {
 public:
  using EagerFn = std::function<Tensor(const Tensor&, const Tensor&)>;

  explicit PlanRuntime(bool enabled = plan_enabled_from_env());

  Tensor run(const Tensor& circuit, const Tensor& tokens,
             const EagerFn& eager);

  bool enabled() const;
  /// Toggle at a quiescent moment; cached plans survive a disable/enable
  /// cycle.
  void set_enabled(bool on);

  RuntimeStats stats() const;

  /// The sealed plan for these input shapes, or nullptr (not yet
  /// recorded / unsupported).  For tests and introspection.
  std::shared_ptr<const InferencePlan> plan_for(const Tensor& circuit,
                                               const Tensor& tokens) const;

 private:
  // Fixed-size shape key: no heap allocation on the steady-state lookup.
  struct ShapeKey {
    std::array<std::int32_t, 12> v{};
    bool operator==(const ShapeKey&) const = default;
  };
  struct ShapeKeyHash {
    std::size_t operator()(const ShapeKey& k) const;
  };
  enum class State : std::uint8_t { kEmpty, kRecording, kSealed,
                                    kUnsupported };
  struct Entry {
    State state = State::kEmpty;
    std::shared_ptr<const InferencePlan> plan;
    std::vector<std::unique_ptr<PlanExecutor>> pool;
  };

  static ShapeKey make_key(const Tensor& circuit, const Tensor& tokens);

  mutable std::mutex mu_;
  bool enabled_;
  std::unordered_map<ShapeKey, Entry, ShapeKeyHash> entries_;
  RuntimeStats stats_;
};

}  // namespace lmmir::tensor::plan
