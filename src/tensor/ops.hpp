#pragma once
// Differentiable operations over tensor::Tensor.  Every op returns a fresh
// tensor; when gradients can flow (grad mode on and some input requires
// grad) a backward closure is recorded on the output.
//
// Conventions:
//  - image tensors are NCHW;
//  - token tensors are [B, T, D] (batch, tokens, channels);
//  - weights follow PyTorch layouts: Linear [out,in], Conv2d
//    [out,in,kh,kw], ConvTranspose2d [in,out,kh,kw].
#include "tensor/tensor.hpp"

namespace lmmir::tensor {

// ---- element-wise ----------------------------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, float s);
Tensor add_scalar(const Tensor& a, float s);
Tensor neg(const Tensor& a);

// ---- activations ------------------------------------------------------
Tensor relu(const Tensor& x);
Tensor leaky_relu(const Tensor& x, float negative_slope = 0.01f);
Tensor sigmoid(const Tensor& x);
Tensor tanh_act(const Tensor& x);
/// Softmax over the last dimension.
Tensor softmax_lastdim(const Tensor& x);

// ---- shape ------------------------------------------------------------
/// Same number of elements, new shape (data copied; grads route through).
Tensor reshape(const Tensor& x, Shape new_shape);
/// Concatenate along `axis` (other dims must match).
Tensor concat(const Tensor& a, const Tensor& b, int axis);
/// Slice `len` entries starting at `start` along `axis`.
Tensor slice_axis(const Tensor& x, int axis, int start, int len);
/// Swap the last two axes of a 2-D or 3-D tensor.
Tensor transpose_last2(const Tensor& x);

// ---- reductions & losses ----------------------------------------------
Tensor sum_all(const Tensor& x);
Tensor mean_all(const Tensor& x);
Tensor mse_loss(const Tensor& pred, const Tensor& target);
Tensor l1_loss(const Tensor& pred, const Tensor& target);

/// x[N,C,H,W] * a[N,1,H,W]  (attention-gate style spatial mask broadcast
/// over channels).
Tensor mul_broadcast_channel(const Tensor& x, const Tensor& a);

// ---- bias -------------------------------------------------------------
/// x[..., D] + b[D]
Tensor add_bias_lastdim(const Tensor& x, const Tensor& b);
/// x[N, C, H, W] + b[C]
Tensor add_bias_channels(const Tensor& x, const Tensor& b);

// ---- matmul family ----------------------------------------------------
/// [M,K] x [K,N] -> [M,N]
Tensor matmul(const Tensor& a, const Tensor& b);
/// [B,M,K] x [B,K,N] -> [B,M,N]
Tensor bmm(const Tensor& a, const Tensor& b);
/// x[..., in] * w[out,in]^T + b[out]; pass an undefined bias to skip it.
Tensor linear(const Tensor& x, const Tensor& w, const Tensor& b);

// ---- convolution family -------------------------------------------------
Tensor conv2d(const Tensor& x, const Tensor& w, const Tensor& b, int stride,
              int padding);
/// Rectangular padding variant (pad_h rows, pad_w cols); kernel shape is
/// taken from w, so 1xk / kx1 "shape-adaptive" kernels are supported.
Tensor conv2d(const Tensor& x, const Tensor& w, const Tensor& b, int stride,
              int pad_h, int pad_w);
Tensor conv_transpose2d(const Tensor& x, const Tensor& w, const Tensor& b,
                        int stride, int padding);
Tensor maxpool2d(const Tensor& x, int kernel, int stride);
Tensor upsample_nearest2x(const Tensor& x);

// ---- normalization ------------------------------------------------------
/// Batch norm over (N, H, W) per channel; updates running stats in
/// training mode and uses them in eval mode.
Tensor batch_norm2d(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                    std::vector<float>& running_mean,
                    std::vector<float>& running_var, bool training,
                    float momentum = 0.1f, float eps = 1e-5f);
/// Layer norm over the last dimension.
Tensor layer_norm_lastdim(const Tensor& x, const Tensor& gamma,
                          const Tensor& beta, float eps = 1e-5f);
/// Inverted dropout; identity when !training or p == 0.
Tensor dropout(const Tensor& x, float p, util::Rng& rng, bool training);

}  // namespace lmmir::tensor
