#include <stdexcept>

#include "runtime/parallel_for.hpp"
#include "tensor/op_helpers.hpp"
#include "tensor/ops.hpp"
#include "tensor/plan.hpp"

namespace lmmir::tensor {

using detail::make_node;
using detail::needs_grad;
using ophelp::attach;
using ophelp::gemm_a_bt_acc;
using ophelp::gemm_acc;
using ophelp::gemm_at_b_acc;

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.ndim() != 2 || b.ndim() != 2)
    throw std::invalid_argument("matmul: expects 2-D tensors");
  if (a.dim(1) != b.dim(0))
    throw std::invalid_argument("matmul: inner dims differ: " +
                                shape_to_string(a.shape()) + " x " +
                                shape_to_string(b.shape()));
  const std::size_t m = static_cast<std::size_t>(a.dim(0));
  const std::size_t k = static_cast<std::size_t>(a.dim(1));
  const std::size_t n = static_cast<std::size_t>(b.dim(1));
  std::vector<float> y = arena_buffer(m * n);
  // Row blocks write disjoint slices of y; per-row arithmetic is the same
  // as the serial kernel, so results are thread-count independent.
  runtime::parallel_for(
      0, m, runtime::grain_for_cost(k * n),
      [&](std::size_t lo, std::size_t hi) {
        gemm_acc(a.data().data() + lo * k, b.data().data(), y.data() + lo * n,
                 hi - lo, k, n);
      });
  auto out = make_node(Shape{static_cast<int>(m), static_cast<int>(n)},
                       std::move(y));
  plan::record_op(plan::OpKind::kMatmul, out, {&a, &b});
  if (needs_grad({&a, &b})) {
    attach(out, {a, b},
           [self = out.get(), pa = a.impl(), pb = b.impl(), m, k, n]() {
             // dA = dY * Bᵀ ; dB = Aᵀ * dY
             if (pa->requires_grad) {
               pa->ensure_grad();
               gemm_a_bt_acc(self->grad.data(), pb->data.data(),
                             pa->grad.data(), m, n, k);
             }
             if (pb->requires_grad) {
               pb->ensure_grad();
               // dB[K,N] = Aᵀ dY with A stored [M,K]: helper K:=M, M:=K.
               gemm_at_b_acc(pa->data.data(), self->grad.data(),
                             pb->grad.data(), m, k, n);
             }
           });
  }
  return Tensor(out);
}

Tensor bmm(const Tensor& a, const Tensor& b) {
  if (a.ndim() != 3 || b.ndim() != 3)
    throw std::invalid_argument("bmm: expects 3-D tensors");
  if (a.dim(0) != b.dim(0) || a.dim(2) != b.dim(1))
    throw std::invalid_argument("bmm: shape mismatch " +
                                shape_to_string(a.shape()) + " x " +
                                shape_to_string(b.shape()));
  const std::size_t bs = static_cast<std::size_t>(a.dim(0));
  const std::size_t m = static_cast<std::size_t>(a.dim(1));
  const std::size_t k = static_cast<std::size_t>(a.dim(2));
  const std::size_t n = static_cast<std::size_t>(b.dim(2));
  std::vector<float> y = arena_buffer(bs * m * n);
  runtime::parallel_for(
      0, bs, runtime::grain_for_cost(m * k * n),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
          gemm_acc(a.data().data() + i * m * k, b.data().data() + i * k * n,
                   y.data() + i * m * n, m, k, n);
      });
  auto out = make_node(
      Shape{static_cast<int>(bs), static_cast<int>(m), static_cast<int>(n)},
      std::move(y));
  plan::record_op(plan::OpKind::kBmm, out, {&a, &b});
  if (needs_grad({&a, &b})) {
    attach(out, {a, b},
           [self = out.get(), pa = a.impl(), pb = b.impl(), bs, m, k, n]() {
             if (pa->requires_grad) {
               pa->ensure_grad();
               for (std::size_t i = 0; i < bs; ++i)
                 gemm_a_bt_acc(self->grad.data() + i * m * n,
                               pb->data.data() + i * k * n,
                               pa->grad.data() + i * m * k, m, n, k);
             }
             if (pb->requires_grad) {
               pb->ensure_grad();
               for (std::size_t i = 0; i < bs; ++i)
                 gemm_at_b_acc(pa->data.data() + i * m * k,
                               self->grad.data() + i * m * n,
                               pb->grad.data() + i * k * n, m, k, n);
             }
           });
  }
  return Tensor(out);
}

Tensor linear(const Tensor& x, const Tensor& w, const Tensor& b) {
  if (w.ndim() != 2)
    throw std::invalid_argument("linear: weight must be [out,in]");
  const std::size_t in = static_cast<std::size_t>(w.dim(1));
  const std::size_t outf = static_cast<std::size_t>(w.dim(0));
  if (static_cast<std::size_t>(x.dim(-1)) != in)
    throw std::invalid_argument("linear: input feature mismatch " +
                                shape_to_string(x.shape()) + " vs w " +
                                shape_to_string(w.shape()));
  if (b.defined() && (b.ndim() != 1 ||
                      static_cast<std::size_t>(b.dim(0)) != outf))
    throw std::invalid_argument("linear: bias shape mismatch");
  const std::size_t rows = x.numel() / in;

  // y[rows,out] = x[rows,in] * w[out,in]ᵀ (+ b)
  std::vector<float> y = arena_buffer(rows * outf);
  runtime::parallel_for(
      0, rows, runtime::grain_for_cost(in * outf),
      [&](std::size_t lo, std::size_t hi) {
        gemm_a_bt_acc(x.data().data() + lo * in, w.data().data(),
                      y.data() + lo * outf, hi - lo, in, outf);
        if (b.defined())
          for (std::size_t r = lo; r < hi; ++r)
            for (std::size_t o = 0; o < outf; ++o)
              y[r * outf + o] += b.data()[o];
      });

  Shape out_shape = x.shape();
  out_shape.back() = static_cast<int>(outf);
  auto out = make_node(std::move(out_shape), std::move(y));
  plan::record_op(plan::OpKind::kLinear, out, {&x, &w, &b},
                  {.i3 = b.defined() ? 1 : 0});
  if (needs_grad({&x, &w, &b})) {
    attach(out, {x, w, b},
           [self = out.get(), px = x.impl(), pw = w.impl(),
            pb = b.defined() ? b.impl() : nullptr, rows, in, outf]() {
             // dX = dY * W ; dW = dYᵀ * X ; db = column-sum of dY
             if (px->requires_grad) {
               px->ensure_grad();
               gemm_acc(self->grad.data(), pw->data.data(), px->grad.data(),
                        rows, outf, in);
             }
             if (pw->requires_grad) {
               pw->ensure_grad();
               gemm_at_b_acc(self->grad.data(), px->data.data(),
                             pw->grad.data(), rows, outf, in);
             }
             if (pb && pb->requires_grad) {
               pb->ensure_grad();
               for (std::size_t r = 0; r < rows; ++r)
                 for (std::size_t o = 0; o < outf; ++o)
                   pb->grad[o] += self->grad[r * outf + o];
             }
           });
  }
  return Tensor(out);
}

}  // namespace lmmir::tensor
