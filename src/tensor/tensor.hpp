#pragma once
// Minimal dense float tensor with tape-based reverse-mode autograd.
//
// This is the training substrate standing in for PyTorch (the paper trains
// with PyTorch 2.1 on an H100; this host is one CPU core).  Design choices:
//  - value-semantics `Tensor` handle over a shared `TensorImpl`;
//  - ops are free functions that record a backward closure on the output
//    node; `backward()` runs a topological sweep;
//  - closures are only recorded when gradients can flow (any input requires
//    grad and grad mode is enabled), so inference builds no tape;
//  - under NoGradGuard with a thread-local tensor::ArenaScope installed,
//    output nodes and buffers recycle through a TensorArena instead of
//    the heap (see tensor/arena.hpp and docs/TENSOR.md); training and
//    requires_grad tensors always use owning allocations.
#include <cstddef>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace lmmir::tensor {

using Shape = std::vector<int>;

std::size_t shape_numel(const Shape& shape);
std::string shape_to_string(const Shape& shape);
bool same_shape(const Shape& a, const Shape& b);

struct TensorImpl {
  Shape shape;
  std::vector<float> data;
  std::vector<float> grad;  // empty until first accumulation
  bool requires_grad = false;
  std::vector<std::shared_ptr<TensorImpl>> parents;
  std::function<void()> backward_fn;  // pulls this->grad into parents

  std::size_t numel() const { return data.size(); }
  void ensure_grad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  }
};

/// RAII guard disabling tape recording (inference / metric evaluation).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool saved_;
};

/// True when ops should record backward closures.
bool grad_enabled();

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  static Tensor zeros(const Shape& shape, bool requires_grad = false);
  static Tensor full(const Shape& shape, float value,
                     bool requires_grad = false);
  static Tensor from_data(const Shape& shape, std::vector<float> data,
                          bool requires_grad = false);
  static Tensor randn(const Shape& shape, util::Rng& rng, float stddev = 1.0f,
                      bool requires_grad = false);

  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const { return impl_->shape; }
  int ndim() const { return static_cast<int>(impl_->shape.size()); }
  /// dim(-1) is the last dimension.
  int dim(int i) const;
  std::size_t numel() const { return impl_->data.size(); }

  const std::vector<float>& data() const { return impl_->data; }
  std::vector<float>& data() { return impl_->data; }
  const std::vector<float>& grad() const { return impl_->grad; }

  bool requires_grad() const { return impl_->requires_grad; }
  void set_requires_grad(bool v) { impl_->requires_grad = v; }

  /// Value of a 0-d/1-element tensor.
  float item() const;

  /// Run reverse-mode autodiff from this scalar output.
  /// Throws std::logic_error when called on a non-scalar.
  void backward();

  void zero_grad();

  /// Graph-free copy sharing nothing with the original.
  Tensor detach() const;

  const std::shared_ptr<TensorImpl>& impl() const { return impl_; }

 private:
  std::shared_ptr<TensorImpl> impl_;
};

namespace detail {

/// Allocate a plain output node (no autograd edges yet).
std::shared_ptr<TensorImpl> make_node(Shape shape, std::vector<float> data);

/// Thread-local observation hook for plan recording (tensor/plan.hpp):
/// invoked for every node make_node hands out on this thread
/// (leaf=false), and a second time with leaf=true for tensors
/// Tensor::from_data materializes without autograd — the recorder claims
/// those as shape-dependent constants.  nullptr (the default) disables
/// observation; the hot path pays one thread-local load.
using NodeHook = void (*)(const std::shared_ptr<TensorImpl>& node, bool leaf);
void set_node_hook(NodeHook hook);
NodeHook node_hook();

/// True if gradients can flow from any of the inputs.
bool needs_grad(std::initializer_list<const Tensor*> inputs);

/// Accumulate `src` into the (lazily allocated) grad buffer of `dst`.
void accumulate_grad(TensorImpl& dst, const std::vector<float>& src);

}  // namespace detail

}  // namespace lmmir::tensor
