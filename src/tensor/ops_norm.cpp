#include <cmath>
#include <stdexcept>

#include "tensor/op_helpers.hpp"
#include "tensor/ops.hpp"
#include "tensor/plan.hpp"

namespace lmmir::tensor {

using detail::make_node;
using detail::needs_grad;
using ophelp::attach;

Tensor batch_norm2d(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                    std::vector<float>& running_mean,
                    std::vector<float>& running_var, bool training,
                    float momentum, float eps) {
  if (x.ndim() != 4) throw std::invalid_argument("batch_norm2d: expects NCHW");
  const std::size_t n = static_cast<std::size_t>(x.dim(0));
  const std::size_t c = static_cast<std::size_t>(x.dim(1));
  const std::size_t hw = static_cast<std::size_t>(x.dim(2)) *
                         static_cast<std::size_t>(x.dim(3));
  if (gamma.ndim() != 1 || static_cast<std::size_t>(gamma.dim(0)) != c ||
      beta.ndim() != 1 || static_cast<std::size_t>(beta.dim(0)) != c)
    throw std::invalid_argument("batch_norm2d: affine shape mismatch");
  if (running_mean.size() != c || running_var.size() != c)
    throw std::invalid_argument("batch_norm2d: running stats size mismatch");

  const std::size_t m = n * hw;  // elements per channel
  ScratchBuffer mean(c);
  ScratchBuffer invstd(c);
  if (training) {
    // Batch statistics and running-stat updates are per-pass state a
    // recorded plan cannot replay.
    plan::record_unsupported("batch_norm2d in training mode");
    for (std::size_t ci = 0; ci < c; ++ci) {
      double acc = 0.0;
      for (std::size_t ni = 0; ni < n; ++ni) {
        const float* in = x.data().data() + (ni * c + ci) * hw;
        for (std::size_t i = 0; i < hw; ++i) acc += in[i];
      }
      const double mu = acc / static_cast<double>(m);
      double var = 0.0;
      for (std::size_t ni = 0; ni < n; ++ni) {
        const float* in = x.data().data() + (ni * c + ci) * hw;
        for (std::size_t i = 0; i < hw; ++i) {
          const double d = in[i] - mu;
          var += d * d;
        }
      }
      var /= static_cast<double>(m);
      mean[ci] = static_cast<float>(mu);
      invstd[ci] = static_cast<float>(1.0 / std::sqrt(var + eps));
      running_mean[ci] = (1.0f - momentum) * running_mean[ci] +
                         momentum * static_cast<float>(mu);
      running_var[ci] = (1.0f - momentum) * running_var[ci] +
                        momentum * static_cast<float>(var);
    }
  } else {
    for (std::size_t ci = 0; ci < c; ++ci) {
      mean[ci] = running_mean[ci];
      invstd[ci] = 1.0f / std::sqrt(running_var[ci] + eps);
    }
  }

  ScratchBuffer xhat(x.numel());
  std::vector<float> y = arena_buffer(x.numel());
  for (std::size_t ni = 0; ni < n; ++ni)
    for (std::size_t ci = 0; ci < c; ++ci) {
      const float* in = x.data().data() + (ni * c + ci) * hw;
      float* xh = xhat.data() + (ni * c + ci) * hw;
      float* o = y.data() + (ni * c + ci) * hw;
      const float mu = mean[ci];
      const float is = invstd[ci];
      const float gm = gamma.data()[ci];
      const float bt = beta.data()[ci];
      for (std::size_t i = 0; i < hw; ++i) {
        xh[i] = (in[i] - mu) * is;
        o[i] = gm * xh[i] + bt;
      }
    }

  auto out = make_node(x.shape(), std::move(y));
  if (!training && plan::recording_active()) {
    // Eval-mode stats are constants of the recording: snapshot the
    // per-channel mean and inverse stddev by value (the running-stat
    // vectors are plain buffers the recorder cannot reference).
    plan::OpAttrs attrs;
    attrs.snapshot.reserve(2 * c);
    attrs.snapshot.insert(attrs.snapshot.end(), mean.data(), mean.data() + c);
    attrs.snapshot.insert(attrs.snapshot.end(), invstd.data(),
                          invstd.data() + c);
    plan::record_op(plan::OpKind::kBatchNorm2dEval, out, {&x, &gamma, &beta},
                    std::move(attrs));
  }
  if (needs_grad({&x, &gamma, &beta})) {
    attach(out, {x, gamma, beta},
           [self = out.get(), px = x.impl(), pg = gamma.impl(),
            pb = beta.impl(), xhat = xhat.take(), invstd = invstd.take(), n,
            c, hw, m, training]() {
             for (std::size_t ci = 0; ci < c; ++ci) {
               // Per-channel reductions of dY and dY·x̂.
               double sum_dy = 0.0, sum_dy_xhat = 0.0;
               for (std::size_t ni = 0; ni < n; ++ni) {
                 const std::size_t base = (ni * c + ci) * hw;
                 for (std::size_t i = 0; i < hw; ++i) {
                   const float gy = self->grad[base + i];
                   sum_dy += gy;
                   sum_dy_xhat += gy * xhat[base + i];
                 }
               }
               if (pg->requires_grad) {
                 pg->ensure_grad();
                 pg->grad[ci] += static_cast<float>(sum_dy_xhat);
               }
               if (pb->requires_grad) {
                 pb->ensure_grad();
                 pb->grad[ci] += static_cast<float>(sum_dy);
               }
               if (px->requires_grad) {
                 px->ensure_grad();
                 const float gm = pg->data[ci];
                 const float is = invstd[ci];
                 if (training) {
                   const float inv_m = 1.0f / static_cast<float>(m);
                   for (std::size_t ni = 0; ni < n; ++ni) {
                     const std::size_t base = (ni * c + ci) * hw;
                     for (std::size_t i = 0; i < hw; ++i) {
                       const float gy = self->grad[base + i];
                       px->grad[base + i] +=
                           gm * is *
                           (gy - inv_m * static_cast<float>(sum_dy) -
                            xhat[base + i] * inv_m *
                                static_cast<float>(sum_dy_xhat));
                     }
                   }
                 } else {
                   // Eval mode: stats are constants.
                   for (std::size_t ni = 0; ni < n; ++ni) {
                     const std::size_t base = (ni * c + ci) * hw;
                     for (std::size_t i = 0; i < hw; ++i)
                       px->grad[base + i] += self->grad[base + i] * gm * is;
                   }
                 }
               }
             }
           });
  }
  return Tensor(out);
}

Tensor layer_norm_lastdim(const Tensor& x, const Tensor& gamma,
                          const Tensor& beta, float eps) {
  const std::size_t d = static_cast<std::size_t>(x.dim(-1));
  if (gamma.ndim() != 1 || static_cast<std::size_t>(gamma.dim(0)) != d ||
      beta.ndim() != 1 || static_cast<std::size_t>(beta.dim(0)) != d)
    throw std::invalid_argument("layer_norm_lastdim: affine shape mismatch");
  const std::size_t rows = x.numel() / d;

  ScratchBuffer xhat(x.numel());
  ScratchBuffer invstd(rows);
  std::vector<float> y = arena_buffer(x.numel());
  for (std::size_t r = 0; r < rows; ++r) {
    const float* in = x.data().data() + r * d;
    double mu = 0.0;
    for (std::size_t i = 0; i < d; ++i) mu += in[i];
    mu /= static_cast<double>(d);
    double var = 0.0;
    for (std::size_t i = 0; i < d; ++i) {
      const double dv = in[i] - mu;
      var += dv * dv;
    }
    var /= static_cast<double>(d);
    const float is = static_cast<float>(1.0 / std::sqrt(var + eps));
    invstd[r] = is;
    float* xh = xhat.data() + r * d;
    float* o = y.data() + r * d;
    for (std::size_t i = 0; i < d; ++i) {
      xh[i] = (in[i] - static_cast<float>(mu)) * is;
      o[i] = gamma.data()[i] * xh[i] + beta.data()[i];
    }
  }

  auto out = make_node(x.shape(), std::move(y));
  plan::record_op(plan::OpKind::kLayerNormLastDim, out, {&x, &gamma, &beta},
                  {.f0 = eps});
  if (needs_grad({&x, &gamma, &beta})) {
    attach(out, {x, gamma, beta},
           [self = out.get(), px = x.impl(), pg = gamma.impl(),
            pb = beta.impl(), xhat = xhat.take(), invstd = invstd.take(),
            rows, d]() {
             if (pg->requires_grad) pg->ensure_grad();
             if (pb->requires_grad) pb->ensure_grad();
             if (px->requires_grad) px->ensure_grad();
             for (std::size_t r = 0; r < rows; ++r) {
               const float* gy = self->grad.data() + r * d;
               const float* xh = xhat.data() + r * d;
               double sum_g = 0.0, sum_g_xhat = 0.0;
               for (std::size_t i = 0; i < d; ++i) {
                 const float gyg = gy[i] * pg->data[i];
                 sum_g += gyg;
                 sum_g_xhat += gyg * xh[i];
                 if (pg->requires_grad) pg->grad[i] += gy[i] * xh[i];
                 if (pb->requires_grad) pb->grad[i] += gy[i];
               }
               if (px->requires_grad) {
                 const float is = invstd[r];
                 const float inv_d = 1.0f / static_cast<float>(d);
                 float* gx = px->grad.data() + r * d;
                 for (std::size_t i = 0; i < d; ++i) {
                   const float gyg = gy[i] * pg->data[i];
                   gx[i] += is * (gyg - inv_d * static_cast<float>(sum_g) -
                                  xh[i] * inv_d * static_cast<float>(sum_g_xhat));
                 }
               }
             }
           });
  }
  return Tensor(out);
}

}  // namespace lmmir::tensor
