#include "tensor/arena.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace lmmir::tensor {

namespace {
thread_local TensorArena* g_active_arena = nullptr;
}

std::shared_ptr<TensorImpl> TensorArena::make_node(Shape shape,
                                                   std::vector<float> data) {
  std::shared_ptr<TensorImpl> node;
  const std::size_t n = slots_.size();
  for (std::size_t k = 0; k < n; ++k) {
    auto& slot = slots_[(cursor_ + k) % n];
    // use_count == 1 means only the arena's slot reference remains: the
    // node is dead and safe to reinitialize in place.
    if (slot.use_count() == 1) {
      node = slot;
      cursor_ = (cursor_ + k + 1) % n;
      break;
    }
  }
  // Pair with the release decrement of the last external reference: an
  // escaped tensor may drop its handle on another thread, and without
  // this fence the reinitialization below would be unordered with that
  // thread's final reads of the node.
  if (node) std::atomic_thread_fence(std::memory_order_acquire);
  if (node) {
    ++stats_.node_reuses;
    // The buffer the dead node still carries goes back to the per-size
    // pool before the (possibly different-sized) new one moves in.
    if (!node->data.empty()) release(std::move(node->data));
    node->shape = std::move(shape);
    node->data = std::move(data);
    node->grad.clear();
    node->requires_grad = false;
    node->parents.clear();
    node->backward_fn = nullptr;
  } else {
    ++stats_.node_allocs;
    node = std::make_shared<TensorImpl>();
    node->shape = std::move(shape);
    node->data = std::move(data);
    slots_.push_back(node);
  }
  return node;
}

std::vector<float> TensorArena::acquire(std::size_t n) {
  auto it = buffers_.find(n);
  if (it != buffers_.end() && !it->second.empty()) {
    std::vector<float> v = std::move(it->second.back());
    it->second.pop_back();
    v.assign(n, 0.0f);  // capacity >= n: zero-fill without reallocating
    ++stats_.buffer_reuses;
    return v;
  }
  ++stats_.buffer_allocs;
  return std::vector<float>(n, 0.0f);
}

std::vector<float> TensorArena::acquire_copy(const float* first,
                                             const float* last) {
  const std::size_t n = static_cast<std::size_t>(last - first);
  auto it = buffers_.find(n);
  if (it != buffers_.end() && !it->second.empty()) {
    std::vector<float> v = std::move(it->second.back());
    it->second.pop_back();
    v.assign(first, last);
    ++stats_.buffer_reuses;
    return v;
  }
  ++stats_.buffer_allocs;
  return std::vector<float>(first, last);
}

std::vector<float> TensorArena::acquire_unfilled(std::size_t n) {
  auto it = buffers_.find(n);
  if (it != buffers_.end() && !it->second.empty()) {
    std::vector<float> v = std::move(it->second.back());
    it->second.pop_back();
    // Pooled buffers are stored at exactly size n: hand the recycled
    // contents back as-is (the caller's contract is to overwrite all).
    ++stats_.buffer_reuses;
    return v;
  }
  ++stats_.buffer_allocs;
  return std::vector<float>(n, 0.0f);
}

void TensorArena::release(std::vector<float>&& buf) {
  if (buf.capacity() == 0) return;
  buffers_[buf.size()].push_back(std::move(buf));
}

namespace {
/// Best capacity-fit pop from a scratch free-list: scratch sizes track
/// kernel chunking, so nearby sizes recur but rarely repeat exactly.
template <typename T>
std::vector<T> acquire_from_pool(std::vector<std::vector<T>>& pool,
                                 std::size_t n, ArenaStats& stats) {
  std::size_t best = pool.size();
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (pool[i].capacity() < n) continue;
    if (best == pool.size() || pool[i].capacity() < pool[best].capacity())
      best = i;
  }
  if (best != pool.size()) {
    std::vector<T> v = std::move(pool[best]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(best));
    v.assign(n, T{});
    ++stats.scratch_reuses;
    return v;
  }
  ++stats.scratch_allocs;
  return std::vector<T>(n, T{});
}
}  // namespace

std::vector<float> TensorArena::acquire_scratch(std::size_t n) {
  return acquire_from_pool(scratch_, n, stats_);
}

void TensorArena::release_scratch(std::vector<float>&& buf) {
  if (buf.capacity() == 0) return;
  scratch_.push_back(std::move(buf));
}

std::vector<std::size_t> TensorArena::acquire_index_scratch(std::size_t n) {
  return acquire_from_pool(index_scratch_, n, stats_);
}

void TensorArena::release_index_scratch(std::vector<std::size_t>&& buf) {
  if (buf.capacity() == 0) return;
  index_scratch_.push_back(std::move(buf));
}

void TensorArena::reset() {
  // Sweep the buffers still attached to dead nodes back into the
  // per-size pools so the next request's acquires hit immediately —
  // without this, each size-class would miss once more on the second
  // pass (acquire runs before the slot recycle that frees the old
  // buffer).  Live (escaped) nodes keep theirs.
  for (auto& slot : slots_)
    if (slot.use_count() == 1 && !slot->data.empty()) {
      // Same pairing as make_node: the last external reference may have
      // been dropped on another thread (escaped tensor); order the move
      // below after that thread's release decrement.
      std::atomic_thread_fence(std::memory_order_acquire);
      release(std::move(slot->data));
    }
  cursor_ = 0;
  ++stats_.resets;
  if (obs::metrics_enabled()) publish_metrics();
}

void TensorArena::publish_metrics() {
  // Aggregated pooled-vs-heap view across every arena in the process;
  // counters carry deltas since this arena's previous push, gauges carry
  // level deltas (the sum over arenas is the process level).
  struct ArenaMetrics {
    obs::Counter& heap_allocs =
        obs::counter("lmmir_arena_heap_allocations_total");
    obs::Counter& saved = obs::counter("lmmir_arena_allocations_saved_total");
    obs::Counter& resets = obs::counter("lmmir_arena_resets_total");
    obs::Gauge& bytes = obs::gauge("lmmir_arena_bytes_reserved");
    obs::Gauge& live = obs::gauge("lmmir_arena_live_nodes");

    static ArenaMetrics& get() {
      static ArenaMetrics m;
      return m;
    }
  };
  const ArenaStats cur = stats();
  auto& m = ArenaMetrics::get();
  m.heap_allocs.add(cur.heap_allocations() - pushed_.heap_allocations());
  m.saved.add(cur.allocations_saved() - pushed_.allocations_saved());
  m.resets.add(cur.resets - pushed_.resets);
  m.bytes.add(static_cast<double>(cur.bytes_reserved) -
              static_cast<double>(pushed_.bytes_reserved));
  m.live.add(static_cast<double>(cur.live_nodes) -
             static_cast<double>(pushed_.live_nodes));
  pushed_ = cur;
}

std::size_t TensorArena::live_nodes() const {
  std::size_t live = 0;
  for (const auto& slot : slots_)
    if (slot.use_count() > 1) ++live;
  return live;
}

ArenaStats TensorArena::stats() const {
  ArenaStats s = stats_;
  std::size_t bytes = 0;
  for (const auto& slot : slots_)
    bytes += slot->data.capacity() * sizeof(float) +
             slot->grad.capacity() * sizeof(float) + sizeof(TensorImpl);
  for (const auto& [size, list] : buffers_) {
    (void)size;
    for (const auto& b : list) bytes += b.capacity() * sizeof(float);
  }
  for (const auto& b : scratch_) bytes += b.capacity() * sizeof(float);
  for (const auto& b : index_scratch_)
    bytes += b.capacity() * sizeof(std::size_t);
  s.bytes_reserved = bytes;
  s.live_nodes = live_nodes();
  return s;
}

ArenaScope::ArenaScope(TensorArena* arena) : saved_(g_active_arena) {
  if (arena) g_active_arena = arena;
}

ArenaScope::~ArenaScope() { g_active_arena = saved_; }

TensorArena* active_arena() { return g_active_arena; }

bool arena_enabled_from_env() {
  static const bool enabled = [] {
    const char* v = std::getenv("LMMIR_TENSOR_ARENA");
    return !(v && v[0] == '0' && v[1] == '\0');
  }();
  return enabled;
}

runtime::WorkerInit worker_arena_init(bool enabled) {
  if (!enabled) return {};
  return [](std::size_t) -> runtime::WorkerCleanup {
    // Arena + scope live on the worker's own thread for its lifetime; the
    // cleanup (run on the same thread right before exit) unwinds them.
    auto* arena = new TensorArena();
    auto* scope = new ArenaScope(arena);
    return [arena, scope] {
      delete scope;
      delete arena;
    };
  };
}

runtime::WorkerInit WorkerArenas::init() {
  return [this](std::size_t worker) -> runtime::WorkerCleanup {
    TensorArena* arena;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (worker >= arenas_.size()) arenas_.resize(worker + 1);
      if (arenas_[worker])
        // A second pool is reusing this registry: replacing the slot
        // would free an arena the first pool's worker still has
        // installed.  Refuse; the hook failure is logged and this worker
        // runs arena-less (see ThreadPool::worker_loop).
        throw std::logic_error(
            "WorkerArenas: registry already bound to another pool's "
            "worker; use one WorkerArenas per ThreadPool");
      arenas_[worker] = std::make_unique<TensorArena>();
      arena = arenas_[worker].get();
    }
    auto* scope = new ArenaScope(arena);
    return [scope] { delete scope; };  // the registry keeps the arena
  };
}

TensorArena* WorkerArenas::arena(std::size_t worker) const {
  std::lock_guard<std::mutex> lock(mu_);
  return worker < arenas_.size() ? arenas_[worker].get() : nullptr;
}

namespace {
// The runtime pool is layer-agnostic (runtime/ must not depend on
// tensor/), so the arena layer — the owner of per-worker arenas —
// registers the env-gated install hook as the pool's process default.
// Runs at static-init time, before any global pool can exist (pools are
// created lazily on first use inside main).
//
// Static-archive linkage note: this initializer only runs if this TU is
// linked into the binary.  That is guaranteed for every binary that can
// benefit: all tensor op outputs route through arena_buffer/make_node in
// this TU, so a program using tensors always pulls it in — and a program
// that never touches tensors has nothing for a worker arena to pool.
[[maybe_unused]] const bool g_default_worker_init_registered = [] {
  runtime::set_default_worker_init(
      [](std::size_t worker) -> runtime::WorkerCleanup {
        const runtime::WorkerInit init = worker_arena_init(
            arena_enabled_from_env());
        return init ? init(worker) : runtime::WorkerCleanup{};
      });
  return true;
}();
}  // namespace

std::vector<float> arena_buffer(std::size_t n) {
  if (TensorArena* a = active_arena(); a && !grad_enabled())
    return a->acquire(n);
  return std::vector<float>(n, 0.0f);
}

std::vector<float> arena_buffer_copy(const float* first, const float* last) {
  if (TensorArena* a = active_arena(); a && !grad_enabled())
    return a->acquire_copy(first, last);
  return std::vector<float>(first, last);
}

std::vector<float> arena_buffer_overwrite(std::size_t n) {
  if (TensorArena* a = active_arena(); a && !grad_enabled())
    return a->acquire_unfilled(n);
  return std::vector<float>(n, 0.0f);
}

ScratchBuffer::ScratchBuffer(std::size_t n) : arena_(active_arena()) {
  buf_ = arena_ ? arena_->acquire_scratch(n) : std::vector<float>(n, 0.0f);
}

ScratchBuffer::~ScratchBuffer() {
  if (arena_) arena_->release_scratch(std::move(buf_));
}

std::vector<float> ScratchBuffer::take() {
  arena_ = nullptr;
  return std::move(buf_);
}

IndexScratchBuffer::IndexScratchBuffer(std::size_t n)
    : arena_(active_arena()) {
  buf_ = arena_ ? arena_->acquire_index_scratch(n)
                : std::vector<std::size_t>(n, 0);
}

IndexScratchBuffer::~IndexScratchBuffer() {
  if (arena_) arena_->release_index_scratch(std::move(buf_));
}

std::vector<std::size_t> IndexScratchBuffer::take() {
  arena_ = nullptr;
  return std::move(buf_);
}

}  // namespace lmmir::tensor
