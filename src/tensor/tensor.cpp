#include "tensor/tensor.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "tensor/arena.hpp"

namespace lmmir::tensor {

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    if (d < 0)
      throw std::invalid_argument("shape_numel: negative dimension in shape " +
                                  shape_to_string(shape));
    const auto ud = static_cast<std::size_t>(d);
    if (ud != 0 && n > std::numeric_limits<std::size_t>::max() / ud)
      throw std::invalid_argument("shape_numel: element count overflows for " +
                                  shape_to_string(shape));
    n *= ud;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ',';
    os << shape[i];
  }
  os << ']';
  return os.str();
}

bool same_shape(const Shape& a, const Shape& b) { return a == b; }

namespace {
thread_local bool g_grad_enabled = true;
}

NoGradGuard::NoGradGuard() : saved_(g_grad_enabled) { g_grad_enabled = false; }
NoGradGuard::~NoGradGuard() { g_grad_enabled = saved_; }

bool grad_enabled() { return g_grad_enabled; }

Tensor Tensor::zeros(const Shape& shape, bool requires_grad) {
  return from_data(shape, arena_buffer(shape_numel(shape)), requires_grad);
}

Tensor Tensor::full(const Shape& shape, float value, bool requires_grad) {
  const std::size_t n = shape_numel(shape);
  std::vector<float> data;
  if (TensorArena* a = active_arena(); a && !grad_enabled()) {
    data = a->acquire_unfilled(n);
    std::fill(data.begin(), data.end(), value);
  } else {
    data.assign(n, value);
  }
  return from_data(shape, std::move(data), requires_grad);
}

Tensor Tensor::from_data(const Shape& shape, std::vector<float> data,
                         bool requires_grad) {
  // shape_numel rejects negative dimensions and overflowing counts.
  const std::size_t expected = shape_numel(shape);
  if (data.size() != expected)
    throw std::invalid_argument("Tensor::from_data: size mismatch, shape " +
                                shape_to_string(shape) + " needs " +
                                std::to_string(expected) + " values, got " +
                                std::to_string(data.size()));
  std::shared_ptr<TensorImpl> impl;
  if (requires_grad) {
    // Parameters and leaf variables outlive any request: always owning,
    // never arena-recycled.
    impl = std::make_shared<TensorImpl>();
    impl->shape = shape;
    impl->data = std::move(data);
  } else {
    impl = detail::make_node(shape, std::move(data));
    // A from_data tensor has no producing op: tell the plan recorder (if
    // one is observing this thread) to claim it as a constant.
    if (detail::NodeHook h = detail::node_hook()) h(impl, /*leaf=*/true);
  }
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::randn(const Shape& shape, util::Rng& rng, float stddev,
                     bool requires_grad) {
  return from_data(shape, rng.normal_vec(shape_numel(shape), 0.0f, stddev),
                   requires_grad);
}

int Tensor::dim(int i) const {
  const int n = ndim();
  const int norm = i < 0 ? i + n : i;
  if (norm < 0 || norm >= n)
    throw std::out_of_range("Tensor::dim: axis " + std::to_string(i) +
                            " out of range for " + std::to_string(n) +
                            "-d tensor " + shape_to_string(impl_->shape));
  return impl_->shape[static_cast<std::size_t>(norm)];
}

float Tensor::item() const {
  if (numel() != 1)
    throw std::logic_error("Tensor::item: tensor has " +
                           std::to_string(numel()) + " elements");
  return impl_->data[0];
}

void Tensor::backward() {
  if (numel() != 1)
    throw std::logic_error("Tensor::backward: output must be scalar");

  // Topological order by iterative DFS.
  std::vector<TensorImpl*> order;
  std::unordered_set<TensorImpl*> visited;
  std::vector<std::pair<TensorImpl*, std::size_t>> stack;
  stack.emplace_back(impl_.get(), 0);
  visited.insert(impl_.get());
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    if (next < node->parents.size()) {
      TensorImpl* p = node->parents[next++].get();
      if (!visited.count(p)) {
        visited.insert(p);
        stack.emplace_back(p, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  impl_->grad.assign(1, 1.0f);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward_fn && !node->grad.empty()) node->backward_fn();
  }
}

void Tensor::zero_grad() { impl_->grad.clear(); }

Tensor Tensor::detach() const {
  std::vector<float> copy = arena_buffer_copy(
      impl_->data.data(), impl_->data.data() + impl_->data.size());
  return Tensor::from_data(impl_->shape, std::move(copy), false);
}

namespace detail {

namespace {
thread_local NodeHook g_node_hook = nullptr;
}

void set_node_hook(NodeHook hook) { g_node_hook = hook; }
NodeHook node_hook() { return g_node_hook; }

std::shared_ptr<TensorImpl> make_node(Shape shape, std::vector<float> data) {
  if (data.size() != shape_numel(shape))
    throw std::invalid_argument("make_node: size mismatch");
  // Inference nodes (arena installed, tape off) recycle through the
  // arena; everything else gets an owning allocation as before.
  std::shared_ptr<TensorImpl> impl;
  if (TensorArena* a = active_arena(); a && !grad_enabled()) {
    impl = a->make_node(std::move(shape), std::move(data));
  } else {
    impl = std::make_shared<TensorImpl>();
    impl->shape = std::move(shape);
    impl->data = std::move(data);
  }
  if (NodeHook h = g_node_hook) h(impl, /*leaf=*/false);
  return impl;
}

bool needs_grad(std::initializer_list<const Tensor*> inputs) {
  if (!grad_enabled()) return false;
  for (const Tensor* t : inputs)
    if (t->defined() && t->requires_grad()) return true;
  return false;
}

void accumulate_grad(TensorImpl& dst, const std::vector<float>& src) {
  if (src.size() != dst.data.size())
    throw std::logic_error("accumulate_grad: size mismatch");
  dst.ensure_grad();
  for (std::size_t i = 0; i < src.size(); ++i) dst.grad[i] += src[i];
}

}  // namespace detail

}  // namespace lmmir::tensor
