#pragma once
// Internal helpers shared by the op translation units. Not part of the
// public API.
#include <functional>
#include <initializer_list>
#include <stdexcept>
#include <string>

#include "tensor/arena.hpp"
#include "tensor/tensor.hpp"

namespace lmmir::tensor::ophelp {

inline void check_same_shape(const Tensor& a, const Tensor& b,
                             const char* op) {
  if (!same_shape(a.shape(), b.shape()))
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                shape_to_string(a.shape()) + " vs " +
                                shape_to_string(b.shape()));
}

/// Wire autograd edges onto `out`. Call only when needs_grad(...) is true.
inline void attach(const std::shared_ptr<TensorImpl>& out,
                   std::initializer_list<Tensor> parents,
                   std::function<void()> backward) {
  out->requires_grad = true;
  for (const auto& p : parents)
    if (p.defined()) out->parents.push_back(p.impl());
  out->backward_fn = std::move(backward);
}

/// C[M,N] += A[M,K] * B[K,N]   (row-major, ikj loop order for locality)
inline void gemm_acc(const float* a, const float* b, float* c, std::size_t m,
                     std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// C[M,N] += A[K,M]ᵀ * B[K,N]
inline void gemm_at_b_acc(const float* a, const float* b, float* c,
                          std::size_t k, std::size_t m, std::size_t n) {
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = a + kk * m;
    const float* brow = b + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// C[M,K] += A[M,N] * B[K,N]ᵀ
inline void gemm_a_bt_acc(const float* a, const float* b, float* c,
                          std::size_t m, std::size_t n, std::size_t k) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * n;
    float* crow = c + i * k;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float* brow = b + kk * n;
      float acc = 0.0f;
      for (std::size_t j = 0; j < n; ++j) acc += arow[j] * brow[j];
      crow[kk] += acc;
    }
  }
}

}  // namespace lmmir::tensor::ophelp
