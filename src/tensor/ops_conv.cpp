#include <algorithm>
#include <limits>
#include <stdexcept>

#include "runtime/parallel_for.hpp"
#include "tensor/microkernels.hpp"
#include "tensor/op_helpers.hpp"
#include "tensor/ops.hpp"
#include "tensor/plan.hpp"

namespace lmmir::tensor {

using detail::make_node;
using detail::needs_grad;
using ophelp::attach;
using ophelp::gemm_a_bt_acc;
using ophelp::gemm_acc;
using ophelp::gemm_at_b_acc;

namespace {

struct ConvGeom {
  std::size_t n, cin, h, w;      // input
  std::size_t cout, kh, kw;      // kernel
  std::size_t oh, ow;            // output
  int stride, pad_h, pad_w;
};

/// col[cin*kh*kw, oh*ow] for one sample (zero-padded borders).  The
/// patch gather itself lives in tensor/microkernels.hpp so the plan
/// replay (tensor/plan.hpp) shares this exact implementation.
void im2col(const float* x, const ConvGeom& g, float* col) {
  mk::im2col(x, g.cin, g.h, g.w, g.kh, g.kw, g.oh, g.ow, g.stride, g.pad_h,
             g.pad_w, col);
}

/// Scatter col gradients back onto the (padded) input. Inverse of im2col.
void col2im_acc(const float* col, const ConvGeom& g, float* gx) {
  const std::size_t cols = g.oh * g.ow;
  for (std::size_t c = 0; c < g.cin; ++c) {
    for (std::size_t ki = 0; ki < g.kh; ++ki) {
      for (std::size_t kj = 0; kj < g.kw; ++kj) {
        const std::size_t prow = (c * g.kh + ki) * g.kw + kj;
        for (std::size_t oy = 0; oy < g.oh; ++oy) {
          const long iy = static_cast<long>(oy) * g.stride - g.pad_h +
                          static_cast<long>(ki);
          if (iy < 0 || iy >= static_cast<long>(g.h)) continue;
          for (std::size_t ox = 0; ox < g.ow; ++ox) {
            const long ix = static_cast<long>(ox) * g.stride - g.pad_w +
                            static_cast<long>(kj);
            if (ix < 0 || ix >= static_cast<long>(g.w)) continue;
            gx[(c * g.h + static_cast<std::size_t>(iy)) * g.w +
               static_cast<std::size_t>(ix)] +=
                col[prow * cols + oy * g.ow + ox];
          }
        }
      }
    }
  }
}

ConvGeom conv_geometry(const Tensor& x, const Tensor& w, int stride,
                       int pad_h, int pad_w, const char* op) {
  if (x.ndim() != 4 || w.ndim() != 4)
    throw std::invalid_argument(std::string(op) + ": expects 4-D x and w");
  if (stride < 1) throw std::invalid_argument(std::string(op) + ": stride<1");
  if (pad_h < 0 || pad_w < 0)
    throw std::invalid_argument(std::string(op) + ": pad<0");
  ConvGeom g;
  g.n = static_cast<std::size_t>(x.dim(0));
  g.cin = static_cast<std::size_t>(x.dim(1));
  g.h = static_cast<std::size_t>(x.dim(2));
  g.w = static_cast<std::size_t>(x.dim(3));
  g.stride = stride;
  g.pad_h = pad_h;
  g.pad_w = pad_w;
  return g;
}

}  // namespace

Tensor conv2d(const Tensor& x, const Tensor& w, const Tensor& b, int stride,
              int padding) {
  return conv2d(x, w, b, stride, padding, padding);
}

Tensor conv2d(const Tensor& x, const Tensor& w, const Tensor& b, int stride,
              int pad_h, int pad_w) {
  ConvGeom g = conv_geometry(x, w, stride, pad_h, pad_w, "conv2d");
  g.cout = static_cast<std::size_t>(w.dim(0));
  g.kh = static_cast<std::size_t>(w.dim(2));
  g.kw = static_cast<std::size_t>(w.dim(3));
  if (static_cast<std::size_t>(w.dim(1)) != g.cin)
    throw std::invalid_argument("conv2d: channel mismatch x " +
                                shape_to_string(x.shape()) + " w " +
                                shape_to_string(w.shape()));
  const long oh = (static_cast<long>(g.h) + 2 * pad_h -
                   static_cast<long>(g.kh)) / stride + 1;
  const long ow = (static_cast<long>(g.w) + 2 * pad_w -
                   static_cast<long>(g.kw)) / stride + 1;
  if (oh <= 0 || ow <= 0)
    throw std::invalid_argument("conv2d: kernel larger than padded input");
  g.oh = static_cast<std::size_t>(oh);
  g.ow = static_cast<std::size_t>(ow);
  if (b.defined() && (b.ndim() != 1 ||
                      static_cast<std::size_t>(b.dim(0)) != g.cout))
    throw std::invalid_argument("conv2d: bias shape mismatch");

  const std::size_t patch = g.cin * g.kh * g.kw;
  const std::size_t spatial = g.oh * g.ow;
  std::vector<float> y = arena_buffer(g.n * g.cout * spatial);
  // Samples are independent (each chunk keeps a private im2col buffer and
  // writes its own output planes), so the batch fans out over the pool.
  // For a single-sample batch (the serving latency path) the outer loop
  // cannot use the pool at all; only then does the gemm fan out over cout
  // row blocks — otherwise the inner level runs inline so the caller's
  // chunk never blocks behind other samples' queued work.
  runtime::ThreadPool* inner_pool = g.n == 1 ? runtime::global_pool() : nullptr;
  runtime::parallel_for(
      0, g.n, runtime::grain_for_cost(patch * spatial * g.cout),
      [&](std::size_t lo, std::size_t hi) {
        // Pooled on the executing thread's arena (dispatcher or pool
        // worker); im2col overwrites the whole buffer.
        ScratchBuffer col(patch * spatial);
        for (std::size_t ni = lo; ni < hi; ++ni) {
          im2col(x.data().data() + ni * g.cin * g.h * g.w, g, col.data());
          runtime::parallel_for(
              inner_pool, 0, g.cout, runtime::grain_for_cost(patch * spatial),
              [&](std::size_t c_lo, std::size_t c_hi) {
                gemm_acc(w.data().data() + c_lo * patch, col.data(),
                         y.data() + (ni * g.cout + c_lo) * spatial,
                         c_hi - c_lo, patch, spatial);
                if (b.defined())
                  for (std::size_t c = c_lo; c < c_hi; ++c) {
                    float* dst = y.data() + (ni * g.cout + c) * spatial;
                    const float bv = b.data()[c];
                    for (std::size_t i = 0; i < spatial; ++i) dst[i] += bv;
                  }
              });
        }
      });
  auto out = make_node(Shape{static_cast<int>(g.n), static_cast<int>(g.cout),
                             static_cast<int>(g.oh), static_cast<int>(g.ow)},
                       std::move(y));
  plan::record_op(plan::OpKind::kConv2d, out, {&x, &w, &b},
                  {.i0 = stride,
                   .i1 = pad_h,
                   .i2 = pad_w,
                   .i3 = b.defined() ? 1 : 0});
  if (needs_grad({&x, &w, &b})) {
    attach(out, {x, w, b},
           [self = out.get(), px = x.impl(), pw = w.impl(),
            pb = b.defined() ? b.impl() : nullptr, g, patch, spatial]() {
             std::vector<float> col(patch * spatial);
             std::vector<float> dcol(patch * spatial);
             for (std::size_t ni = 0; ni < g.n; ++ni) {
               const float* gy = self->grad.data() + ni * g.cout * spatial;
               // Recompute the im2col matrix from the saved input.
               im2col(px->data.data() + ni * g.cin * g.h * g.w, g, col.data());
               if (pw->requires_grad) {
                 pw->ensure_grad();
                 // dW[cout,patch] += dY[cout,spatial] * col[patch,spatial]ᵀ
                 gemm_a_bt_acc(gy, col.data(), pw->grad.data(), g.cout,
                               spatial, patch);
               }
               if (px->requires_grad) {
                 px->ensure_grad();
                 std::fill(dcol.begin(), dcol.end(), 0.0f);
                 // dcol[patch,spatial] = W[cout,patch]ᵀ * dY[cout,spatial]
                 gemm_at_b_acc(pw->data.data(), gy, dcol.data(), g.cout,
                               patch, spatial);
                 col2im_acc(dcol.data(), g,
                            px->grad.data() + ni * g.cin * g.h * g.w);
               }
               if (pb && pb->requires_grad) {
                 pb->ensure_grad();
                 for (std::size_t c = 0; c < g.cout; ++c) {
                   float acc = 0.0f;
                   for (std::size_t i = 0; i < spatial; ++i)
                     acc += gy[c * spatial + i];
                   pb->grad[c] += acc;
                 }
               }
             }
           });
  }
  return Tensor(out);
}

Tensor conv_transpose2d(const Tensor& x, const Tensor& w, const Tensor& b,
                        int stride, int padding) {
  // w layout: [cin, cout, kh, kw]
  ConvGeom g =
      conv_geometry(x, w, stride, padding, padding, "conv_transpose2d");
  if (static_cast<std::size_t>(w.dim(0)) != g.cin)
    throw std::invalid_argument("conv_transpose2d: channel mismatch");
  g.cout = static_cast<std::size_t>(w.dim(1));
  g.kh = static_cast<std::size_t>(w.dim(2));
  g.kw = static_cast<std::size_t>(w.dim(3));
  const long oh = (static_cast<long>(g.h) - 1) * stride +
                  static_cast<long>(g.kh) - 2 * padding;
  const long ow = (static_cast<long>(g.w) - 1) * stride +
                  static_cast<long>(g.kw) - 2 * padding;
  if (oh <= 0 || ow <= 0)
    throw std::invalid_argument("conv_transpose2d: empty output");
  g.oh = static_cast<std::size_t>(oh);
  g.ow = static_cast<std::size_t>(ow);
  if (b.defined() && (b.ndim() != 1 ||
                      static_cast<std::size_t>(b.dim(0)) != g.cout))
    throw std::invalid_argument("conv_transpose2d: bias shape mismatch");

  std::vector<float> y = arena_buffer(g.n * g.cout * g.oh * g.ow);
  if (b.defined())
    for (std::size_t ni = 0; ni < g.n; ++ni)
      for (std::size_t c = 0; c < g.cout; ++c)
        std::fill_n(y.data() + (ni * g.cout + c) * g.oh * g.ow, g.oh * g.ow,
                    b.data()[c]);

  // Scatter: each input pixel adds its kernel-weighted footprint.  Output
  // planes are disjoint per (sample, out-channel), so the batch fans out
  // over the pool; only a single-sample batch (n=1 serving) fans the
  // out-channel loop out instead (see conv2d above).  Per-element
  // accumulation order is (ci, hy, hx, ki, kj) in both the serial and the
  // parallel nesting, keeping results bitwise identical.
  runtime::ThreadPool* inner_pool = g.n == 1 ? runtime::global_pool() : nullptr;
  runtime::parallel_for(
      0, g.n,
      runtime::grain_for_cost(g.cin * g.h * g.w * g.cout * g.kh * g.kw),
      [&](std::size_t n_lo, std::size_t n_hi) {
        for (std::size_t ni = n_lo; ni < n_hi; ++ni) {
          runtime::parallel_for(
              inner_pool, 0, g.cout,
              runtime::grain_for_cost(g.cin * g.h * g.w * g.kh * g.kw),
              [&, ni](std::size_t co_lo, std::size_t co_hi) {
                for (std::size_t co = co_lo; co < co_hi; ++co) {
                  float* yout = y.data() + (ni * g.cout + co) * g.oh * g.ow;
                  for (std::size_t ci = 0; ci < g.cin; ++ci) {
                    const float* xin =
                        x.data().data() + (ni * g.cin + ci) * g.h * g.w;
                    const float* wk =
                        w.data().data() + ((ci * g.cout + co) * g.kh) * g.kw;
                    for (std::size_t hy = 0; hy < g.h; ++hy) {
                      for (std::size_t hx = 0; hx < g.w; ++hx) {
                        const float xv = xin[hy * g.w + hx];
                        if (xv == 0.0f) continue;
                        for (std::size_t ki = 0; ki < g.kh; ++ki) {
                          const long oy = static_cast<long>(hy) * stride +
                                          static_cast<long>(ki) - padding;
                          if (oy < 0 || oy >= static_cast<long>(g.oh))
                            continue;
                          for (std::size_t kj = 0; kj < g.kw; ++kj) {
                            const long ox = static_cast<long>(hx) * stride +
                                            static_cast<long>(kj) - padding;
                            if (ox < 0 || ox >= static_cast<long>(g.ow))
                              continue;
                            yout[static_cast<std::size_t>(oy) * g.ow +
                                 static_cast<std::size_t>(ox)] +=
                                xv * wk[ki * g.kw + kj];
                          }
                        }
                      }
                    }
                  }
                }
              });
        }
      });
  auto out = make_node(Shape{static_cast<int>(g.n), static_cast<int>(g.cout),
                             static_cast<int>(g.oh), static_cast<int>(g.ow)},
                       std::move(y));
  plan::record_op(plan::OpKind::kConvTranspose2d, out, {&x, &w, &b},
                  {.i0 = stride, .i1 = padding, .i3 = b.defined() ? 1 : 0});
  if (needs_grad({&x, &w, &b})) {
    const int s = stride;
    const int p = padding;
    attach(out, {x, w, b},
           [self = out.get(), px = x.impl(), pw = w.impl(),
            pb = b.defined() ? b.impl() : nullptr, g, s, p]() {
             if (px->requires_grad) px->ensure_grad();
             if (pw->requires_grad) pw->ensure_grad();
             for (std::size_t ni = 0; ni < g.n; ++ni) {
               for (std::size_t ci = 0; ci < g.cin; ++ci) {
                 const float* xin =
                     px->data.data() + (ni * g.cin + ci) * g.h * g.w;
                 float* gx = px->requires_grad
                                 ? px->grad.data() + (ni * g.cin + ci) * g.h * g.w
                                 : nullptr;
                 for (std::size_t hy = 0; hy < g.h; ++hy) {
                   for (std::size_t hx = 0; hx < g.w; ++hx) {
                     float gx_acc = 0.0f;
                     for (std::size_t co = 0; co < g.cout; ++co) {
                       const float* wk =
                           pw->data.data() + ((ci * g.cout + co) * g.kh) * g.kw;
                       float* gw =
                           pw->requires_grad
                               ? pw->grad.data() + ((ci * g.cout + co) * g.kh) * g.kw
                               : nullptr;
                       const float* gy =
                           self->grad.data() + (ni * g.cout + co) * g.oh * g.ow;
                       for (std::size_t ki = 0; ki < g.kh; ++ki) {
                         const long oy = static_cast<long>(hy) * s +
                                         static_cast<long>(ki) - p;
                         if (oy < 0 || oy >= static_cast<long>(g.oh)) continue;
                         for (std::size_t kj = 0; kj < g.kw; ++kj) {
                           const long ox = static_cast<long>(hx) * s +
                                           static_cast<long>(kj) - p;
                           if (ox < 0 || ox >= static_cast<long>(g.ow)) continue;
                           const float gyv =
                               gy[static_cast<std::size_t>(oy) * g.ow +
                                  static_cast<std::size_t>(ox)];
                           gx_acc += gyv * wk[ki * g.kw + kj];
                           if (gw)
                             gw[ki * g.kw + kj] += gyv * xin[hy * g.w + hx];
                         }
                       }
                     }
                     if (gx) gx[hy * g.w + hx] += gx_acc;
                   }
                 }
               }
               if (pb && pb->requires_grad) {
                 pb->ensure_grad();
                 for (std::size_t co = 0; co < g.cout; ++co) {
                   const float* gy =
                       self->grad.data() + (ni * g.cout + co) * g.oh * g.ow;
                   float acc = 0.0f;
                   for (std::size_t i = 0; i < g.oh * g.ow; ++i) acc += gy[i];
                   pb->grad[co] += acc;
                 }
               }
             }
           });
  }
  return Tensor(out);
}

Tensor maxpool2d(const Tensor& x, int kernel, int stride) {
  if (x.ndim() != 4) throw std::invalid_argument("maxpool2d: expects NCHW");
  if (kernel < 1 || stride < 1)
    throw std::invalid_argument("maxpool2d: bad kernel/stride");
  const std::size_t n = static_cast<std::size_t>(x.dim(0));
  const std::size_t c = static_cast<std::size_t>(x.dim(1));
  const std::size_t h = static_cast<std::size_t>(x.dim(2));
  const std::size_t w = static_cast<std::size_t>(x.dim(3));
  if (h < static_cast<std::size_t>(kernel) ||
      w < static_cast<std::size_t>(kernel))
    throw std::invalid_argument("maxpool2d: input smaller than kernel");
  const std::size_t oh = (h - static_cast<std::size_t>(kernel)) /
                             static_cast<std::size_t>(stride) + 1;
  const std::size_t ow = (w - static_cast<std::size_t>(kernel)) /
                             static_cast<std::size_t>(stride) + 1;
  std::vector<float> y = arena_buffer(n * c * oh * ow);
  IndexScratchBuffer argmax(y.size());
  for (std::size_t nc = 0; nc < n * c; ++nc) {
    const float* in = x.data().data() + nc * h * w;
    float* o = y.data() + nc * oh * ow;
    std::size_t* am = argmax.data() + nc * oh * ow;
    for (std::size_t oy = 0; oy < oh; ++oy)
      for (std::size_t ox = 0; ox < ow; ++ox) {
        float best = -std::numeric_limits<float>::infinity();
        std::size_t bi = 0;
        for (int ki = 0; ki < kernel; ++ki)
          for (int kj = 0; kj < kernel; ++kj) {
            const std::size_t iy = oy * static_cast<std::size_t>(stride) +
                                   static_cast<std::size_t>(ki);
            const std::size_t ix = ox * static_cast<std::size_t>(stride) +
                                   static_cast<std::size_t>(kj);
            const float v = in[iy * w + ix];
            if (v > best) {
              best = v;
              bi = iy * w + ix;
            }
          }
        o[oy * ow + ox] = best;
        am[oy * ow + ox] = bi;
      }
  }
  auto out = make_node(Shape{static_cast<int>(n), static_cast<int>(c),
                             static_cast<int>(oh), static_cast<int>(ow)},
                       std::move(y));
  plan::record_op(plan::OpKind::kMaxPool2d, out, {&x},
                  {.i0 = kernel, .i1 = stride});
  if (needs_grad({&x})) {
    attach(out, {x},
           [self = out.get(), px = x.impl(), argmax = argmax.take(), n, c,
            h, w, oh, ow]() {
             if (!px->requires_grad) return;
             px->ensure_grad();
             for (std::size_t nc = 0; nc < n * c; ++nc) {
               const float* gy = self->grad.data() + nc * oh * ow;
               const std::size_t* am = argmax.data() + nc * oh * ow;
               float* gx = px->grad.data() + nc * h * w;
               for (std::size_t i = 0; i < oh * ow; ++i) gx[am[i]] += gy[i];
             }
           });
  }
  return Tensor(out);
}

Tensor upsample_nearest2x(const Tensor& x) {
  if (x.ndim() != 4)
    throw std::invalid_argument("upsample_nearest2x: expects NCHW");
  const std::size_t n = static_cast<std::size_t>(x.dim(0));
  const std::size_t c = static_cast<std::size_t>(x.dim(1));
  const std::size_t h = static_cast<std::size_t>(x.dim(2));
  const std::size_t w = static_cast<std::size_t>(x.dim(3));
  const std::size_t oh = h * 2, ow = w * 2;
  std::vector<float> y = arena_buffer(n * c * oh * ow);
  for (std::size_t nc = 0; nc < n * c; ++nc) {
    const float* in = x.data().data() + nc * h * w;
    float* o = y.data() + nc * oh * ow;
    for (std::size_t iy = 0; iy < oh; ++iy)
      for (std::size_t ix = 0; ix < ow; ++ix)
        o[iy * ow + ix] = in[(iy / 2) * w + (ix / 2)];
  }
  auto out = make_node(Shape{static_cast<int>(n), static_cast<int>(c),
                             static_cast<int>(oh), static_cast<int>(ow)},
                       std::move(y));
  plan::record_op(plan::OpKind::kUpsampleNearest2x, out, {&x});
  if (needs_grad({&x})) {
    attach(out, {x}, [self = out.get(), px = x.impl(), n, c, h, w, oh, ow]() {
      if (!px->requires_grad) return;
      px->ensure_grad();
      for (std::size_t nc = 0; nc < n * c; ++nc) {
        const float* gy = self->grad.data() + nc * oh * ow;
        float* gx = px->grad.data() + nc * h * w;
        for (std::size_t iy = 0; iy < oh; ++iy)
          for (std::size_t ix = 0; ix < ow; ++ix)
            gx[(iy / 2) * w + (ix / 2)] += gy[iy * ow + ix];
      }
    });
  }
  return Tensor(out);
}

}  // namespace lmmir::tensor
