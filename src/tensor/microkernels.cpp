// This translation unit is compiled with -mavx2 -mfma -ffp-contract=off
// on x86-64 (see CMakeLists.txt).  -ffp-contract=off matters: with FMA
// codegen enabled GCC would otherwise contract the scalar fallback's
// `c + a*b` into a single-rounding fmadd and break bitwise identity with
// the ophelp baseline built elsewhere without FMA.  Intrinsics are
// unaffected either way — the AVX2 kernel uses explicit mul+add.
#include "tensor/microkernels.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define LMMIR_MK_HAVE_AVX2 1
#else
#define LMMIR_MK_HAVE_AVX2 0
#endif

namespace lmmir::tensor::mk {

bool compiled_with_avx2() { return LMMIR_MK_HAVE_AVX2 != 0; }

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(_M_X64)
  static const bool has = [] {
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  }();
  return has;
#else
  return false;
#endif
}

bool simd_enabled() {
  static const bool enabled = [] {
    if (!compiled_with_avx2() || !cpu_has_avx2()) return false;
    const char* v = std::getenv("LMMIR_SIMD");
    return !(v && std::string_view(v) == "0");
  }();
  return enabled;
}

const char* active_kernel() { return simd_enabled() ? "avx2" : "scalar"; }

void gemm_acc_scalar(const float* a, const float* b, float* c, std::size_t m,
                     std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_acc_avx2(const float* a, const float* b, float* c, std::size_t m,
                   std::size_t k, std::size_t n) {
#if LMMIR_MK_HAVE_AVX2
  if (!cpu_has_avx2())
    throw std::runtime_error("gemm_acc_avx2: CPU lacks AVX2/FMA");
  const std::size_t n8 = n & ~static_cast<std::size_t>(7);
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;  // same sparsity shortcut as the scalar kernel
      const float* brow = b + kk * n;
      const __m256 vav = _mm256_set1_ps(av);
      std::size_t j = 0;
      for (; j < n8; j += 8) {
        const __m256 vb = _mm256_loadu_ps(brow + j);
        const __m256 vc = _mm256_loadu_ps(crow + j);
        // mul then add (two roundings), exactly like `c += av * b` compiled
        // without contraction — NOT _mm256_fmadd_ps, whose single rounding
        // would diverge from the eager baseline.
        _mm256_storeu_ps(crow + j,
                         _mm256_add_ps(vc, _mm256_mul_ps(vav, vb)));
      }
      for (; j < n; ++j) crow[j] += av * brow[j];
    }
  }
#else
  (void)a;
  (void)b;
  (void)c;
  (void)m;
  (void)k;
  (void)n;
  throw std::runtime_error("gemm_acc_avx2: binary built without AVX2");
#endif
}

void gemm_acc(const float* a, const float* b, float* c, std::size_t m,
              std::size_t k, std::size_t n) {
  if (simd_enabled())
    gemm_acc_avx2(a, b, c, m, k, n);
  else
    gemm_acc_scalar(a, b, c, m, k, n);
}

void im2col(const float* x, std::size_t cin, std::size_t h, std::size_t w,
            std::size_t kh, std::size_t kw, std::size_t oh, std::size_t ow,
            int stride, int pad_h, int pad_w, float* col) {
  const std::size_t patch = cin * kh * kw;
  const std::size_t cols = oh * ow;
  std::fill(col, col + patch * cols, 0.0f);
  for (std::size_t c = 0; c < cin; ++c) {
    for (std::size_t ki = 0; ki < kh; ++ki) {
      for (std::size_t kj = 0; kj < kw; ++kj) {
        const std::size_t prow = (c * kh + ki) * kw + kj;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const long iy =
              static_cast<long>(oy) * stride - pad_h + static_cast<long>(ki);
          if (iy < 0 || iy >= static_cast<long>(h)) continue;
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const long ix =
                static_cast<long>(ox) * stride - pad_w + static_cast<long>(kj);
            if (ix < 0 || ix >= static_cast<long>(w)) continue;
            col[prow * cols + oy * ow + ox] =
                x[(c * h + static_cast<std::size_t>(iy)) * w +
                  static_cast<std::size_t>(ix)];
          }
        }
      }
    }
  }
}

}  // namespace lmmir::tensor::mk
