#include "tensor/plan.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "runtime/parallel_for.hpp"
#include "tensor/arena.hpp"
#include "tensor/microkernels.hpp"
#include "tensor/op_helpers.hpp"

namespace lmmir::tensor::plan {

namespace {

/// Offsets are aligned to 16 floats (64 bytes, one cache line) so planned
/// buffers never share a line and vector loads start aligned-friendly.
std::size_t align16(std::size_t floats) {
  return (floats + 15) & ~static_cast<std::size_t>(15);
}

/// outer * axis_len * inner decomposition (mirrors ops_basic.cpp).
struct AxisSplit {
  std::size_t outer = 1, axis = 1, inner = 1;
};
AxisSplit split_at(const Shape& shape, int axis) {
  AxisSplit s;
  for (int i = 0; i < static_cast<int>(shape.size()); ++i) {
    const auto d = static_cast<std::size_t>(shape[static_cast<std::size_t>(i)]);
    if (i < axis) s.outer *= d;
    else if (i == axis) s.axis = d;
    else s.inner *= d;
  }
  return s;
}

}  // namespace

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kAdd: return "add";
    case OpKind::kSub: return "sub";
    case OpKind::kMul: return "mul";
    case OpKind::kScale: return "scale";
    case OpKind::kAddScalar: return "add_scalar";
    case OpKind::kRelu: return "relu";
    case OpKind::kLeakyRelu: return "leaky_relu";
    case OpKind::kSigmoid: return "sigmoid";
    case OpKind::kTanh: return "tanh";
    case OpKind::kSoftmaxLastDim: return "softmax_lastdim";
    case OpKind::kReshape: return "reshape";
    case OpKind::kConcat: return "concat";
    case OpKind::kSliceAxis: return "slice_axis";
    case OpKind::kTransposeLast2: return "transpose_last2";
    case OpKind::kMatmul: return "matmul";
    case OpKind::kBmm: return "bmm";
    case OpKind::kLinear: return "linear";
    case OpKind::kConv2d: return "conv2d";
    case OpKind::kConvTranspose2d: return "conv_transpose2d";
    case OpKind::kMaxPool2d: return "maxpool2d";
    case OpKind::kUpsampleNearest2x: return "upsample_nearest2x";
    case OpKind::kBatchNorm2dEval: return "batch_norm2d_eval";
    case OpKind::kLayerNormLastDim: return "layer_norm_lastdim";
    case OpKind::kAddBiasLastDim: return "add_bias_lastdim";
    case OpKind::kAddBiasChannels: return "add_bias_channels";
    case OpKind::kMulBroadcastChannel: return "mul_broadcast_channel";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// InferencePlan

const Shape& InferencePlan::output_shape() const {
  if (output_value_ < 0)
    throw std::logic_error("InferencePlan::output_shape: unsupported plan");
  return values_[static_cast<std::size_t>(output_value_)].shape;
}

std::size_t InferencePlan::live_steps() const {
  std::size_t n = 0;
  for (const Step& s : steps_)
    if (!s.skip) ++n;
  return n;
}

std::size_t InferencePlan::fused_ops() const {
  std::size_t n = 0;
  for (const Step& s : steps_)
    if (!s.skip) n += s.fused.size();
  return n;
}

// ---------------------------------------------------------------------------
// PlanRecorder

PlanRecorder::PlanRecorder() = default;
PlanRecorder::~PlanRecorder() = default;

void PlanRecorder::check_open(const char* what) const {
  if (sealed_)
    throw std::logic_error(std::string("PlanRecorder::") + what +
                           ": plan already sealed");
}

int PlanRecorder::add_value(const Shape& shape, ValueKind kind) {
  ValueInfo v;
  v.shape = shape;
  v.numel = shape_numel(shape);
  v.kind = kind;
  values_.push_back(std::move(v));
  return static_cast<int>(values_.size()) - 1;
}

void PlanRecorder::bind_inputs(const Tensor& circuit, const Tensor& tokens) {
  check_open("bind_inputs");
  if (bound_)
    throw std::logic_error("PlanRecorder::bind_inputs: already bound");
  if (!circuit.defined())
    throw std::invalid_argument(
        "PlanRecorder::bind_inputs: circuit must be defined");
  bound_ = true;
  circuit_shape_ = circuit.shape();
  const int cid = add_value(circuit_shape_, ValueKind::kCircuitInput);
  value_of_[circuit.impl().get()] = cid;
  pins_.push_back(circuit.impl());
  if (tokens.defined()) {
    has_tokens_ = true;
    tokens_shape_ = tokens.shape();
    const int tid = add_value(tokens_shape_, ValueKind::kTokenInput);
    value_of_[tokens.impl().get()] = tid;
    pins_.push_back(tokens.impl());
  }
}

void PlanRecorder::on_node(const std::shared_ptr<TensorImpl>& node, bool leaf) {
  if (sealed_ || !unsupported_.empty()) return;
  if (!leaf) {
    // Freshly created, not yet claimed by any op.  Holding the shared_ptr
    // pins the node so the arena cannot recycle it (and hand the same
    // pointer to a later op) while the recording is alive.
    pending_.emplace(node.get(), node);
    return;
  }
  // Tensor::from_data without autograd: a constant of this (model, shape)
  // key.  Snapshot the payload by value so no arena slot stays pinned once
  // the plan is sealed.
  pending_.erase(node.get());
  if (value_of_.count(node.get())) return;
  const int id = add_value(node->shape, ValueKind::kConstant);
  values_[static_cast<std::size_t>(id)].snapshot = node->data;
  value_of_[node.get()] = id;
  pins_.push_back(node);
}

void PlanRecorder::on_op(OpKind kind, const std::shared_ptr<TensorImpl>& out,
                         std::initializer_list<const Tensor*> inputs,
                         OpAttrs attrs) {
  check_open("on_op");
  if (!unsupported_.empty()) return;
  if (!bound_) {
    mark_unsupported("op recorded before bind_inputs");
    return;
  }
  auto pit = pending_.find(out.get());
  if (pit == pending_.end() || value_of_.count(out.get())) {
    mark_unsupported("op output was not a freshly created node");
    return;
  }
  Step step;
  step.kind = kind;
  step.attrs = std::move(attrs);
  for (const Tensor* t : inputs) {
    if (!t || !t->defined()) continue;  // optional bias omitted
    const TensorImpl* impl = t->impl().get();
    auto vit = value_of_.find(impl);
    int id;
    if (vit != value_of_.end()) {
      id = vit->second;
    } else if (pending_.count(impl)) {
      // Produced during recording by an op that did not claim it: an
      // uninstrumented producer.  Replaying would silently drop that op,
      // so the whole shape key falls back to eager.
      mark_unsupported("input produced by an unrecorded op");
      return;
    } else {
      // External tensor (model weight / registered buffer): referenced
      // live, so in-place weight updates flow into replays.
      id = add_value(impl->shape, ValueKind::kConstant);
      values_[static_cast<std::size_t>(id)].pinned = t->impl();
      value_of_[impl] = id;
      pins_.push_back(t->impl());
    }
    step.in.push_back(id);
  }
  const int out_id = add_value(out->shape, ValueKind::kTemp);
  value_of_[out.get()] = out_id;
  pins_.push_back(out);
  pending_.erase(pit);
  step.out = out_id;
  steps_.push_back(std::move(step));
}

void PlanRecorder::mark_unsupported(const char* why) {
  check_open("mark_unsupported");
  if (unsupported_.empty()) unsupported_ = why;
}

void PlanRecorder::fuse_chains(int output_value, std::vector<int>& consumers) {
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    Step& host = steps_[i];
    if (host.skip || host.kind != OpKind::kConv2d) continue;
    for (std::size_t j = i + 1; j < steps_.size(); ++j) {
      Step& next = steps_[j];
      if (next.skip) break;
      const int cur = host.out;
      // The candidate must be the sole consumer of the conv's output (a
      // value feeding anything else — including the plan output — must be
      // materialized) and must consume it as its primary input.
      if (consumers[static_cast<std::size_t>(cur)] != 1 || next.in.empty() ||
          next.in[0] != cur)
        break;
      bool multi = false;
      for (std::size_t q = 1; q < next.in.size(); ++q)
        if (next.in[q] == cur) multi = true;
      if (multi) break;
      FusedOp f;
      if (next.kind == OpKind::kBatchNorm2dEval && host.fused.empty()) {
        // Only directly after the conv (before any activation), and only
        // with constant affine parameters.
        if (next.in.size() != 3 ||
            values_[static_cast<std::size_t>(next.in[1])].kind !=
                ValueKind::kConstant ||
            values_[static_cast<std::size_t>(next.in[2])].kind !=
                ValueKind::kConstant)
          break;
        f.extra = {next.in[1], next.in[2]};
      } else if (next.kind == OpKind::kRelu ||
                 next.kind == OpKind::kLeakyRelu ||
                 next.kind == OpKind::kSigmoid ||
                 next.kind == OpKind::kTanh) {
        if (next.in.size() != 1) break;
      } else {
        break;
      }
      f.kind = next.kind;
      f.attrs = std::move(next.attrs);
      host.fused.push_back(std::move(f));
      next.skip = true;
      values_[static_cast<std::size_t>(cur)].eliminated = true;
      host.out = next.out;
      (void)output_value;
    }
  }
}

void PlanRecorder::annotate_im2col_reuse() {
  // Consecutive convs (in execution order) over the same input value with
  // the same patch geometry share one im2col matrix.  Gated on batch 1:
  // the executor's col buffer holds a single sample, so with n > 1 the
  // buffer ends the previous conv holding only the LAST sample's patches.
  bool have = false;
  int prev_in = -1;
  std::array<int, 5> prev_key{};
  for (Step& s : steps_) {
    if (s.skip) continue;
    if (s.kind != OpKind::kConv2d) continue;  // non-conv steps never touch col
    const ValueInfo& x = values_[static_cast<std::size_t>(s.in[0])];
    const ValueInfo& w = values_[static_cast<std::size_t>(s.in[1])];
    const std::array<int, 5> key = {w.shape[2], w.shape[3], s.attrs.i0,
                                    s.attrs.i1, s.attrs.i2};
    if (have && x.shape[0] == 1 && s.in[0] == prev_in && key == prev_key)
      s.reuse_im2col = true;
    have = true;
    prev_in = s.in[0];
    prev_key = key;
  }
}

void PlanRecorder::plan_memory(InferencePlan& plan, int output_value) {
  const auto& values = plan.values_;
  const auto& steps = plan.steps_;
  const int nsteps = static_cast<int>(steps.size());

  // Liveness over original step indices: a temp is live from the step
  // defining it through its last read (the plan output reads one past the
  // final step, when the executor copies it out).
  std::vector<int> def(values.size(), -1);
  std::vector<int> last(values.size(), -1);
  for (int t = 0; t < nsteps; ++t) {
    const Step& s = steps[static_cast<std::size_t>(t)];
    if (s.skip) continue;
    if (def[static_cast<std::size_t>(s.out)] < 0)
      def[static_cast<std::size_t>(s.out)] = t;
    last[static_cast<std::size_t>(s.out)] =
        std::max(last[static_cast<std::size_t>(s.out)], t);
    for (int v : s.in)
      last[static_cast<std::size_t>(v)] =
          std::max(last[static_cast<std::size_t>(v)], t);
  }
  last[static_cast<std::size_t>(output_value)] = nsteps;

  struct Cand {
    int v;
    std::size_t floats;
    int def, last;
  };
  std::vector<Cand> cands;
  for (std::size_t v = 0; v < values.size(); ++v) {
    if (values[v].kind != ValueKind::kTemp || values[v].eliminated) continue;
    if (def[v] < 0) continue;
    cands.push_back({static_cast<int>(v), values[v].numel, def[v], last[v]});
  }
  // Largest-first greedy (the aten/c10 static-planning idiom): big
  // buffers claim low offsets, small ones fill the gaps.  Ties break by
  // definition order then value id so the layout is deterministic.
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.floats != b.floats) return a.floats > b.floats;
    if (a.def != b.def) return a.def < b.def;
    return a.v < b.v;
  });

  std::vector<PlannedBuffer> placed;
  std::size_t arena_floats = 0;
  for (const Cand& c : cands) {
    std::vector<const PlannedBuffer*> conflicts;
    for (const PlannedBuffer& p : placed)
      if (c.def <= p.last && p.def <= c.last) conflicts.push_back(&p);
    std::sort(conflicts.begin(), conflicts.end(),
              [](const PlannedBuffer* a, const PlannedBuffer* b) {
                return a->offset < b->offset;
              });
    std::size_t offset = 0;
    for (const PlannedBuffer* p : conflicts) {
      if (offset + c.floats <= p->offset) break;  // fits in the gap
      offset = std::max(offset, align16(p->offset + p->floats));
    }
    placed.push_back({c.v, offset, c.floats, c.def, c.last});
    arena_floats = std::max(arena_floats, offset + c.floats);
  }
  plan.buffers_ = std::move(placed);
  plan.arena_floats_ = arena_floats;

  std::size_t peak = 0;
  for (int t = 0; t <= nsteps; ++t) {
    std::size_t live = 0;
    for (const PlannedBuffer& b : plan.buffers_)
      if (b.def <= t && t <= b.last) live += b.floats;
    peak = std::max(peak, live);
  }
  plan.peak_live_floats_ = peak;

  std::size_t col_floats = 0;
  for (const Step& s : steps) {
    if (s.skip || s.kind != OpKind::kConv2d) continue;
    const ValueInfo& x = values[static_cast<std::size_t>(s.in[0])];
    const ValueInfo& w = values[static_cast<std::size_t>(s.in[1])];
    const ValueInfo& o = values[static_cast<std::size_t>(s.out)];
    const std::size_t patch = static_cast<std::size_t>(x.shape[1]) *
                              static_cast<std::size_t>(w.shape[2]) *
                              static_cast<std::size_t>(w.shape[3]);
    const std::size_t spatial = static_cast<std::size_t>(o.shape[2]) *
                                static_cast<std::size_t>(o.shape[3]);
    col_floats = std::max(col_floats, patch * spatial);
  }
  plan.col_floats_ = col_floats;
}

std::shared_ptr<const InferencePlan> PlanRecorder::seal(const Tensor& output) {
  check_open("seal");
  sealed_ = true;

  auto plan = std::shared_ptr<InferencePlan>(new InferencePlan());
  int out_id = -1;
  if (unsupported_.empty()) {
    if (!bound_) {
      unsupported_ = "seal without bind_inputs";
    } else if (!output.defined()) {
      unsupported_ = "forward returned an undefined tensor";
    } else {
      auto it = value_of_.find(output.impl().get());
      if (it == value_of_.end() ||
          values_[static_cast<std::size_t>(it->second)].kind !=
              ValueKind::kTemp)
        unsupported_ = "forward output was not produced by a recorded op";
      else
        out_id = it->second;
    }
  }
  plan->circuit_shape_ = circuit_shape_;
  plan->tokens_shape_ = tokens_shape_;
  plan->has_tokens_ = has_tokens_;
  if (!unsupported_.empty()) {
    plan->unsupported_ = unsupported_;
  } else {
    std::vector<int> consumers(values_.size(), 0);
    for (const Step& s : steps_)
      for (int v : s.in) ++consumers[static_cast<std::size_t>(v)];
    ++consumers[static_cast<std::size_t>(out_id)];
    fuse_chains(out_id, consumers);
    annotate_im2col_reuse();
    plan->output_value_ = out_id;
    plan->values_ = std::move(values_);
    plan->steps_ = std::move(steps_);
    plan_memory(*plan, out_id);
  }
  // Drop every pin: recorded constants were snapshotted by value, so the
  // only nodes the plan keeps alive are external weights (ValueInfo::
  // pinned), which live outside any arena.
  pins_.clear();
  pending_.clear();
  value_of_.clear();
  values_.clear();
  steps_.clear();
  return plan;
}

// ---------------------------------------------------------------------------
// RecordScope / thread-local plumbing

namespace detail {
thread_local PlanRecorder* t_recorder = nullptr;

void record_op_impl(OpKind kind, const std::shared_ptr<TensorImpl>& out,
                    std::initializer_list<const Tensor*> inputs,
                    OpAttrs attrs) {
  t_recorder->on_op(kind, out, inputs, std::move(attrs));
}
}  // namespace detail

namespace {
void record_hook(const std::shared_ptr<TensorImpl>& node, bool leaf) {
  if (detail::t_recorder) detail::t_recorder->on_node(node, leaf);
}
}  // namespace

RecordScope::RecordScope(PlanRecorder& recorder) {
  if (detail::t_recorder)
    throw std::logic_error(
        "RecordScope: a recording is already active on this thread");
  detail::t_recorder = &recorder;
  tensor::detail::set_node_hook(&record_hook);
}

RecordScope::~RecordScope() {
  tensor::detail::set_node_hook(nullptr);
  detail::t_recorder = nullptr;
}

// ---------------------------------------------------------------------------
// PlanExecutor

PlanExecutor::PlanExecutor(std::shared_ptr<const InferencePlan> plan)
    : plan_(std::move(plan)) {
  if (!plan_ || !plan_->supported())
    throw std::invalid_argument(
        "PlanExecutor: plan is missing or unsupported");
  arena_.resize(plan_->arena_floats());
  col_.resize(plan_->col_floats());
  const auto& values = plan_->values();
  src_.assign(values.size(), nullptr);
  dst_.assign(values.size(), nullptr);
  for (const PlannedBuffer& b : plan_->buffers()) {
    dst_[static_cast<std::size_t>(b.value)] = arena_.data() + b.offset;
    src_[static_cast<std::size_t>(b.value)] = arena_.data() + b.offset;
  }
  for (std::size_t v = 0; v < values.size(); ++v)
    if (values[v].kind == ValueKind::kConstant)
      src_[v] = values[v].pinned ? values[v].pinned->data.data()
                                 : values[v].snapshot.data();
}

Tensor PlanExecutor::run(const Tensor& circuit, const Tensor& tokens) {
  if (recording_active())
    throw std::logic_error(
        "PlanExecutor::run: calling thread is recording a plan");
  if (!circuit.defined() ||
      !same_shape(circuit.shape(), plan_->circuit_shape()))
    throw std::logic_error(
        "PlanExecutor::run: circuit shape " +
        (circuit.defined() ? shape_to_string(circuit.shape())
                           : std::string("<undefined>")) +
        " does not match recorded " +
        shape_to_string(plan_->circuit_shape()));
  if (plan_->has_tokens()) {
    if (!tokens.defined() || !same_shape(tokens.shape(), plan_->tokens_shape()))
      throw std::logic_error(
          "PlanExecutor::run: tokens shape " +
          (tokens.defined() ? shape_to_string(tokens.shape())
                            : std::string("<undefined>")) +
          " does not match recorded " +
          shape_to_string(plan_->tokens_shape()));
  } else if (tokens.defined()) {
    throw std::logic_error(
        "PlanExecutor::run: plan was recorded without tokens");
  }

  const auto& values = plan_->values();
  for (std::size_t v = 0; v < values.size(); ++v) {
    if (values[v].kind == ValueKind::kCircuitInput)
      src_[v] = circuit.data().data();
    else if (values[v].kind == ValueKind::kTokenInput)
      src_[v] = tokens.data().data();
  }
  for (const Step& s : plan_->steps())
    if (!s.skip) exec_step(s);

  const auto out = static_cast<std::size_t>(plan_->output_value());
  const float* res = src_[out];
  std::vector<float> buf = arena_buffer_copy(res, res + values[out].numel);
  return Tensor::from_data(values[out].shape, std::move(buf));
}

void PlanExecutor::exec_step(const Step& s) {
  const auto& values = plan_->values();
  const ValueInfo& ov = values[static_cast<std::size_t>(s.out)];
  float* o = dst_[static_cast<std::size_t>(s.out)];
  const auto in = [&](std::size_t i) {
    return src_[static_cast<std::size_t>(s.in[i])];
  };
  const auto shape_of = [&](std::size_t i) -> const Shape& {
    return values[static_cast<std::size_t>(s.in[i])].shape;
  };

  switch (s.kind) {
    case OpKind::kAdd: {
      const float* a = in(0);
      const float* b = in(1);
      for (std::size_t i = 0; i < ov.numel; ++i) o[i] = a[i] + b[i];
      break;
    }
    case OpKind::kSub: {
      const float* a = in(0);
      const float* b = in(1);
      for (std::size_t i = 0; i < ov.numel; ++i) o[i] = a[i] - b[i];
      break;
    }
    case OpKind::kMul: {
      const float* a = in(0);
      const float* b = in(1);
      for (std::size_t i = 0; i < ov.numel; ++i) o[i] = a[i] * b[i];
      break;
    }
    case OpKind::kScale: {
      const float* a = in(0);
      for (std::size_t i = 0; i < ov.numel; ++i) o[i] = a[i] * s.attrs.f0;
      break;
    }
    case OpKind::kAddScalar: {
      const float* a = in(0);
      for (std::size_t i = 0; i < ov.numel; ++i) o[i] = a[i] + s.attrs.f0;
      break;
    }
    case OpKind::kRelu: {
      const float* a = in(0);
      for (std::size_t i = 0; i < ov.numel; ++i) o[i] = std::max(0.0f, a[i]);
      break;
    }
    case OpKind::kLeakyRelu: {
      const float* a = in(0);
      const float slope = s.attrs.f0;
      for (std::size_t i = 0; i < ov.numel; ++i) {
        const float v = a[i];
        o[i] = v > 0.0f ? v : slope * v;
      }
      break;
    }
    case OpKind::kSigmoid: {
      const float* a = in(0);
      for (std::size_t i = 0; i < ov.numel; ++i)
        o[i] = 1.0f / (1.0f + std::exp(-a[i]));
      break;
    }
    case OpKind::kTanh: {
      const float* a = in(0);
      for (std::size_t i = 0; i < ov.numel; ++i) o[i] = std::tanh(a[i]);
      break;
    }
    case OpKind::kSoftmaxLastDim: {
      const float* a = in(0);
      const std::size_t d = static_cast<std::size_t>(ov.shape.back());
      const std::size_t rows = ov.numel / d;
      for (std::size_t r = 0; r < rows; ++r) {
        const float* row = a + r * d;
        float* orow = o + r * d;
        float mx = row[0];
        for (std::size_t i = 1; i < d; ++i) mx = std::max(mx, row[i]);
        float sum = 0.0f;
        for (std::size_t i = 0; i < d; ++i) {
          orow[i] = std::exp(row[i] - mx);
          sum += orow[i];
        }
        const float inv = 1.0f / sum;
        for (std::size_t i = 0; i < d; ++i) orow[i] *= inv;
      }
      break;
    }
    case OpKind::kReshape: {
      std::copy_n(in(0), ov.numel, o);
      break;
    }
    case OpKind::kConcat: {
      const auto sa = split_at(shape_of(0), s.attrs.i0);
      const auto sb = split_at(shape_of(1), s.attrs.i0);
      const std::size_t stride_a = sa.axis * sa.inner;
      const std::size_t stride_b = sb.axis * sb.inner;
      const std::size_t stride_o = stride_a + stride_b;
      const float* a = in(0);
      const float* b = in(1);
      for (std::size_t oo = 0; oo < sa.outer; ++oo) {
        std::copy_n(a + oo * stride_a, stride_a, o + oo * stride_o);
        std::copy_n(b + oo * stride_b, stride_b,
                    o + oo * stride_o + stride_a);
      }
      break;
    }
    case OpKind::kSliceAxis: {
      const auto sp = split_at(shape_of(0), s.attrs.i0);
      const std::size_t in_stride = sp.axis * sp.inner;
      const std::size_t out_stride =
          static_cast<std::size_t>(s.attrs.i2) * sp.inner;
      const std::size_t off = static_cast<std::size_t>(s.attrs.i1) * sp.inner;
      const float* a = in(0);
      for (std::size_t oo = 0; oo < sp.outer; ++oo)
        std::copy_n(a + oo * in_stride + off, out_stride, o + oo * out_stride);
      break;
    }
    case OpKind::kTransposeLast2: {
      const Shape& xs = shape_of(0);
      const std::size_t batch =
          xs.size() == 3 ? static_cast<std::size_t>(xs[0]) : 1;
      const std::size_t m = static_cast<std::size_t>(xs[xs.size() - 2]);
      const std::size_t n = static_cast<std::size_t>(xs[xs.size() - 1]);
      const float* a = in(0);
      for (std::size_t b = 0; b < batch; ++b) {
        const float* ip = a + b * m * n;
        float* op = o + b * m * n;
        for (std::size_t i = 0; i < m; ++i)
          for (std::size_t j = 0; j < n; ++j) op[j * m + i] = ip[i * n + j];
      }
      break;
    }
    case OpKind::kMatmul: {
      const std::size_t m = static_cast<std::size_t>(shape_of(0)[0]);
      const std::size_t k = static_cast<std::size_t>(shape_of(0)[1]);
      const std::size_t n = static_cast<std::size_t>(ov.shape[1]);
      const float* a = in(0);
      const float* b = in(1);
      std::fill_n(o, ov.numel, 0.0f);
      runtime::parallel_for(0, m, runtime::grain_for_cost(k * n),
                            [&](std::size_t lo, std::size_t hi) {
                              mk::gemm_acc(a + lo * k, b, o + lo * n, hi - lo,
                                           k, n);
                            });
      break;
    }
    case OpKind::kBmm: {
      const std::size_t bs = static_cast<std::size_t>(shape_of(0)[0]);
      const std::size_t m = static_cast<std::size_t>(shape_of(0)[1]);
      const std::size_t k = static_cast<std::size_t>(shape_of(0)[2]);
      const std::size_t n = static_cast<std::size_t>(ov.shape[2]);
      const float* a = in(0);
      const float* b = in(1);
      std::fill_n(o, ov.numel, 0.0f);
      runtime::parallel_for(0, bs, runtime::grain_for_cost(m * k * n),
                            [&](std::size_t lo, std::size_t hi) {
                              for (std::size_t i = lo; i < hi; ++i)
                                mk::gemm_acc(a + i * m * k, b + i * k * n,
                                             o + i * m * n, m, k, n);
                            });
      break;
    }
    case OpKind::kLinear: {
      // Stays on the scalar dot-product kernel: vectorizing a dot product
      // reassociates the sum and would break bitwise identity with eager.
      const std::size_t inf = static_cast<std::size_t>(shape_of(1)[1]);
      const std::size_t outf = static_cast<std::size_t>(shape_of(1)[0]);
      const std::size_t rows =
          values[static_cast<std::size_t>(s.in[0])].numel / inf;
      const float* x = in(0);
      const float* w = in(1);
      const float* bias = s.attrs.i3 ? in(2) : nullptr;
      std::fill_n(o, ov.numel, 0.0f);
      runtime::parallel_for(
          0, rows, runtime::grain_for_cost(inf * outf),
          [&](std::size_t lo, std::size_t hi) {
            ophelp::gemm_a_bt_acc(x + lo * inf, w, o + lo * outf, hi - lo, inf,
                                  outf);
            if (bias)
              for (std::size_t r = lo; r < hi; ++r)
                for (std::size_t c = 0; c < outf; ++c)
                  o[r * outf + c] += bias[c];
          });
      break;
    }
    case OpKind::kConv2d:
      exec_conv2d(s);
      break;
    case OpKind::kConvTranspose2d:
      exec_conv_transpose2d(s);
      break;
    case OpKind::kMaxPool2d: {
      const Shape& xs = shape_of(0);
      const std::size_t nc = static_cast<std::size_t>(xs[0]) *
                             static_cast<std::size_t>(xs[1]);
      const std::size_t h = static_cast<std::size_t>(xs[2]);
      const std::size_t w = static_cast<std::size_t>(xs[3]);
      const std::size_t oh = static_cast<std::size_t>(ov.shape[2]);
      const std::size_t ow = static_cast<std::size_t>(ov.shape[3]);
      const int kernel = s.attrs.i0;
      const int stride = s.attrs.i1;
      const float* a = in(0);
      for (std::size_t b = 0; b < nc; ++b) {
        const float* ip = a + b * h * w;
        float* op = o + b * oh * ow;
        for (std::size_t oy = 0; oy < oh; ++oy)
          for (std::size_t ox = 0; ox < ow; ++ox) {
            float best = -std::numeric_limits<float>::infinity();
            for (int ki = 0; ki < kernel; ++ki)
              for (int kj = 0; kj < kernel; ++kj) {
                const std::size_t iy = oy * static_cast<std::size_t>(stride) +
                                       static_cast<std::size_t>(ki);
                const std::size_t ix = ox * static_cast<std::size_t>(stride) +
                                       static_cast<std::size_t>(kj);
                const float v = ip[iy * w + ix];
                if (v > best) best = v;
              }
            op[oy * ow + ox] = best;
          }
      }
      break;
    }
    case OpKind::kUpsampleNearest2x: {
      const Shape& xs = shape_of(0);
      const std::size_t nc = static_cast<std::size_t>(xs[0]) *
                             static_cast<std::size_t>(xs[1]);
      const std::size_t h = static_cast<std::size_t>(xs[2]);
      const std::size_t w = static_cast<std::size_t>(xs[3]);
      const std::size_t oh = h * 2, ow = w * 2;
      const float* a = in(0);
      for (std::size_t b = 0; b < nc; ++b) {
        const float* ip = a + b * h * w;
        float* op = o + b * oh * ow;
        for (std::size_t iy = 0; iy < oh; ++iy)
          for (std::size_t ix = 0; ix < ow; ++ix)
            op[iy * ow + ix] = ip[(iy / 2) * w + (ix / 2)];
      }
      break;
    }
    case OpKind::kBatchNorm2dEval: {
      const Shape& xs = shape_of(0);
      const std::size_t n = static_cast<std::size_t>(xs[0]);
      const std::size_t c = static_cast<std::size_t>(xs[1]);
      const std::size_t hw = static_cast<std::size_t>(xs[2]) *
                             static_cast<std::size_t>(xs[3]);
      const float* a = in(0);
      const float* gamma = in(1);
      const float* beta = in(2);
      const float* mean = s.attrs.snapshot.data();
      const float* invstd = s.attrs.snapshot.data() + c;
      for (std::size_t ni = 0; ni < n; ++ni)
        for (std::size_t ci = 0; ci < c; ++ci) {
          const float* ip = a + (ni * c + ci) * hw;
          float* op = o + (ni * c + ci) * hw;
          const float mu = mean[ci];
          const float is = invstd[ci];
          const float gm = gamma[ci];
          const float bt = beta[ci];
          for (std::size_t i = 0; i < hw; ++i) {
            const float xh = (ip[i] - mu) * is;
            op[i] = gm * xh + bt;
          }
        }
      break;
    }
    case OpKind::kLayerNormLastDim: {
      const std::size_t d = static_cast<std::size_t>(ov.shape.back());
      const std::size_t rows = ov.numel / d;
      const float* a = in(0);
      const float* gamma = in(1);
      const float* beta = in(2);
      const float eps = s.attrs.f0;
      for (std::size_t r = 0; r < rows; ++r) {
        const float* ip = a + r * d;
        float* op = o + r * d;
        double mu = 0.0;
        for (std::size_t i = 0; i < d; ++i) mu += ip[i];
        mu /= static_cast<double>(d);
        double var = 0.0;
        for (std::size_t i = 0; i < d; ++i) {
          const double dv = ip[i] - mu;
          var += dv * dv;
        }
        var /= static_cast<double>(d);
        const float is = static_cast<float>(1.0 / std::sqrt(var + eps));
        for (std::size_t i = 0; i < d; ++i) {
          const float xh = (ip[i] - static_cast<float>(mu)) * is;
          op[i] = gamma[i] * xh + beta[i];
        }
      }
      break;
    }
    case OpKind::kAddBiasLastDim: {
      const std::size_t d = static_cast<std::size_t>(ov.shape.back());
      const std::size_t rows = ov.numel / d;
      const float* a = in(0);
      const float* b = in(1);
      for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t i = 0; i < d; ++i)
          o[r * d + i] = a[r * d + i] + b[i];
      break;
    }
    case OpKind::kAddBiasChannels: {
      const std::size_t n = static_cast<std::size_t>(ov.shape[0]);
      const std::size_t c = static_cast<std::size_t>(ov.shape[1]);
      const std::size_t hw = static_cast<std::size_t>(ov.shape[2]) *
                             static_cast<std::size_t>(ov.shape[3]);
      const float* a = in(0);
      const float* b = in(1);
      for (std::size_t ni = 0; ni < n; ++ni)
        for (std::size_t ci = 0; ci < c; ++ci) {
          const float bv = b[ci];
          const std::size_t base = (ni * c + ci) * hw;
          for (std::size_t i = 0; i < hw; ++i) o[base + i] = a[base + i] + bv;
        }
      break;
    }
    case OpKind::kMulBroadcastChannel: {
      const std::size_t n = static_cast<std::size_t>(ov.shape[0]);
      const std::size_t c = static_cast<std::size_t>(ov.shape[1]);
      const std::size_t hw = static_cast<std::size_t>(ov.shape[2]) *
                             static_cast<std::size_t>(ov.shape[3]);
      const float* a = in(0);
      const float* mask = in(1);
      for (std::size_t ni = 0; ni < n; ++ni) {
        const float* mv = mask + ni * hw;
        for (std::size_t ci = 0; ci < c; ++ci) {
          const std::size_t base = (ni * c + ci) * hw;
          for (std::size_t i = 0; i < hw; ++i) o[base + i] = a[base + i] * mv[i];
        }
      }
      break;
    }
  }
}

void PlanExecutor::exec_conv2d(const Step& s) {
  const auto& values = plan_->values();
  const ValueInfo& xv = values[static_cast<std::size_t>(s.in[0])];
  const ValueInfo& wv = values[static_cast<std::size_t>(s.in[1])];
  const ValueInfo& ov = values[static_cast<std::size_t>(s.out)];
  const std::size_t n = static_cast<std::size_t>(xv.shape[0]);
  const std::size_t cin = static_cast<std::size_t>(xv.shape[1]);
  const std::size_t h = static_cast<std::size_t>(xv.shape[2]);
  const std::size_t w = static_cast<std::size_t>(xv.shape[3]);
  const std::size_t cout = static_cast<std::size_t>(wv.shape[0]);
  const std::size_t kh = static_cast<std::size_t>(wv.shape[2]);
  const std::size_t kw = static_cast<std::size_t>(wv.shape[3]);
  const std::size_t oh = static_cast<std::size_t>(ov.shape[2]);
  const std::size_t ow = static_cast<std::size_t>(ov.shape[3]);
  const int stride = s.attrs.i0;
  const int pad_h = s.attrs.i1;
  const int pad_w = s.attrs.i2;
  const float* x = src_[static_cast<std::size_t>(s.in[0])];
  const float* wt = src_[static_cast<std::size_t>(s.in[1])];
  const float* bias =
      s.attrs.i3 ? src_[static_cast<std::size_t>(s.in[2])] : nullptr;
  float* y = dst_[static_cast<std::size_t>(s.out)];
  const std::size_t patch = cin * kh * kw;
  const std::size_t spatial = oh * ow;

  // Samples run serially (one shared col buffer); the out-channel loop
  // fans out over the pool.  Each output element's arithmetic is fixed
  // regardless of chunking, so results stay bitwise identical to eager.
  for (std::size_t ni = 0; ni < n; ++ni) {
    if (!s.reuse_im2col)
      mk::im2col(x + ni * cin * h * w, cin, h, w, kh, kw, oh, ow, stride,
                 pad_h, pad_w, col_.data());
    runtime::parallel_for(
        0, cout, runtime::grain_for_cost(patch * spatial),
        [&](std::size_t c_lo, std::size_t c_hi) {
          float* yblock = y + (ni * cout + c_lo) * spatial;
          std::fill_n(yblock, (c_hi - c_lo) * spatial, 0.0f);
          mk::gemm_acc(wt + c_lo * patch, col_.data(), yblock, c_hi - c_lo,
                       patch, spatial);
          for (std::size_t c = c_lo; c < c_hi; ++c) {
            float* dstp = y + (ni * cout + c) * spatial;
            if (bias) {
              const float bv = bias[c];
              for (std::size_t i = 0; i < spatial; ++i) dstp[i] += bv;
            }
            // Fused epilogue: the exact per-element formulas of the eager
            // ops this chain replaced, applied in place per channel.
            for (const FusedOp& f : s.fused) {
              switch (f.kind) {
                case OpKind::kBatchNorm2dEval: {
                  const float mu = f.attrs.snapshot[c];
                  const float is = f.attrs.snapshot[cout + c];
                  const float gm =
                      src_[static_cast<std::size_t>(f.extra[0])][c];
                  const float bt =
                      src_[static_cast<std::size_t>(f.extra[1])][c];
                  for (std::size_t i = 0; i < spatial; ++i) {
                    const float xh = (dstp[i] - mu) * is;
                    dstp[i] = gm * xh + bt;
                  }
                  break;
                }
                case OpKind::kRelu:
                  for (std::size_t i = 0; i < spatial; ++i)
                    dstp[i] = std::max(0.0f, dstp[i]);
                  break;
                case OpKind::kLeakyRelu: {
                  const float slope = f.attrs.f0;
                  for (std::size_t i = 0; i < spatial; ++i) {
                    const float v = dstp[i];
                    dstp[i] = v > 0.0f ? v : slope * v;
                  }
                  break;
                }
                case OpKind::kSigmoid:
                  for (std::size_t i = 0; i < spatial; ++i)
                    dstp[i] = 1.0f / (1.0f + std::exp(-dstp[i]));
                  break;
                case OpKind::kTanh:
                  for (std::size_t i = 0; i < spatial; ++i)
                    dstp[i] = std::tanh(dstp[i]);
                  break;
                default:
                  break;
              }
            }
          }
        });
  }
}

void PlanExecutor::exec_conv_transpose2d(const Step& s) {
  const auto& values = plan_->values();
  const ValueInfo& xv = values[static_cast<std::size_t>(s.in[0])];
  const ValueInfo& wv = values[static_cast<std::size_t>(s.in[1])];
  const ValueInfo& ov = values[static_cast<std::size_t>(s.out)];
  const std::size_t n = static_cast<std::size_t>(xv.shape[0]);
  const std::size_t cin = static_cast<std::size_t>(xv.shape[1]);
  const std::size_t h = static_cast<std::size_t>(xv.shape[2]);
  const std::size_t w = static_cast<std::size_t>(xv.shape[3]);
  const std::size_t cout = static_cast<std::size_t>(wv.shape[1]);
  const std::size_t kh = static_cast<std::size_t>(wv.shape[2]);
  const std::size_t kw = static_cast<std::size_t>(wv.shape[3]);
  const std::size_t oh = static_cast<std::size_t>(ov.shape[2]);
  const std::size_t ow = static_cast<std::size_t>(ov.shape[3]);
  const int stride = s.attrs.i0;
  const int padding = s.attrs.i1;
  const float* x = src_[static_cast<std::size_t>(s.in[0])];
  const float* wt = src_[static_cast<std::size_t>(s.in[1])];
  const float* bias =
      s.attrs.i3 ? src_[static_cast<std::size_t>(s.in[2])] : nullptr;
  float* y = dst_[static_cast<std::size_t>(s.out)];

  if (bias) {
    for (std::size_t ni = 0; ni < n; ++ni)
      for (std::size_t c = 0; c < cout; ++c)
        std::fill_n(y + (ni * cout + c) * oh * ow, oh * ow, bias[c]);
  } else {
    std::fill_n(y, ov.numel, 0.0f);
  }

  // Same scatter order as eager — (ci, hy, hx, ki, kj) with the zero-input
  // skip — so per-element accumulation order (and the result) is
  // identical at any thread count.
  for (std::size_t ni = 0; ni < n; ++ni) {
    runtime::parallel_for(
        0, cout, runtime::grain_for_cost(cin * h * w * kh * kw),
        [&, ni](std::size_t co_lo, std::size_t co_hi) {
          for (std::size_t co = co_lo; co < co_hi; ++co) {
            float* yout = y + (ni * cout + co) * oh * ow;
            for (std::size_t ci = 0; ci < cin; ++ci) {
              const float* xin = x + (ni * cin + ci) * h * w;
              const float* wk = wt + ((ci * cout + co) * kh) * kw;
              for (std::size_t hy = 0; hy < h; ++hy) {
                for (std::size_t hx = 0; hx < w; ++hx) {
                  const float xval = xin[hy * w + hx];
                  if (xval == 0.0f) continue;
                  for (std::size_t ki = 0; ki < kh; ++ki) {
                    const long oy = static_cast<long>(hy) * stride +
                                    static_cast<long>(ki) - padding;
                    if (oy < 0 || oy >= static_cast<long>(oh)) continue;
                    for (std::size_t kj = 0; kj < kw; ++kj) {
                      const long ox = static_cast<long>(hx) * stride +
                                      static_cast<long>(kj) - padding;
                      if (ox < 0 || ox >= static_cast<long>(ow)) continue;
                      yout[static_cast<std::size_t>(oy) * ow +
                           static_cast<std::size_t>(ox)] +=
                          xval * wk[ki * kw + kj];
                    }
                  }
                }
              }
            }
          }
        });
  }
}

// ---------------------------------------------------------------------------
// PlanRuntime

bool plan_enabled_from_env() {
  static const bool enabled = [] {
    const char* v = std::getenv("LMMIR_INFER_PLAN");
    return v && std::string_view(v) != "0";
  }();
  return enabled;
}

PlanRuntime::PlanRuntime(bool enabled) : enabled_(enabled) {}

std::size_t PlanRuntime::ShapeKeyHash::operator()(const ShapeKey& k) const {
  // FNV-1a over the packed dims.
  std::size_t h = 1469598103934665603ull;
  for (std::int32_t d : k.v) {
    h ^= static_cast<std::size_t>(static_cast<std::uint32_t>(d));
    h *= 1099511628211ull;
  }
  return h;
}

PlanRuntime::ShapeKey PlanRuntime::make_key(const Tensor& circuit,
                                            const Tensor& tokens) {
  ShapeKey k;  // slots 0-5: circuit ndim + dims; 6-11: tokens (-1 = absent)
  k.v[0] = circuit.ndim();
  for (int i = 0; i < circuit.ndim() && i < 5; ++i)
    k.v[static_cast<std::size_t>(1 + i)] = circuit.dim(i);
  k.v[6] = tokens.defined() ? tokens.ndim() : -1;
  if (tokens.defined())
    for (int i = 0; i < tokens.ndim() && i < 5; ++i)
      k.v[static_cast<std::size_t>(7 + i)] = tokens.dim(i);
  return k;
}

Tensor PlanRuntime::run(const Tensor& circuit, const Tensor& tokens,
                        const EagerFn& eager) {
  enum class Action { kEager, kRecord, kReplay };
  Action act = Action::kEager;
  std::shared_ptr<const InferencePlan> plan;
  std::unique_ptr<PlanExecutor> exec;
  ShapeKey key{};

  if (circuit.defined() && !recording_active()) {
    std::lock_guard<std::mutex> lk(mu_);
    if (enabled_) {
      key = make_key(circuit, tokens);
      Entry& e = entries_[key];
      if (e.state == State::kEmpty) {
        // This thread claims the one recording pass for this shape key;
        // concurrent requests for the same key run eager meanwhile.
        e.state = State::kRecording;
        act = Action::kRecord;
      } else if (e.state == State::kSealed) {
        plan = e.plan;
        if (!e.pool.empty()) {
          exec = std::move(e.pool.back());
          e.pool.pop_back();
        }
        act = Action::kReplay;
      }
      // kRecording / kUnsupported: eager.
    }
  }

  if (act == Action::kReplay) {
    if (!exec) exec = std::make_unique<PlanExecutor>(plan);
    Tensor out = exec->run(circuit, tokens);
    std::lock_guard<std::mutex> lk(mu_);
    entries_[key].pool.push_back(std::move(exec));
    ++stats_.replays;
    return out;
  }

  if (act == Action::kRecord) {
    PlanRecorder recorder;
    Tensor out;
    std::shared_ptr<const InferencePlan> sealed;
    try {
      recorder.bind_inputs(circuit, tokens);
      {
        RecordScope scope(recorder);
        out = eager(circuit, tokens);
      }
      sealed = recorder.seal(out);
    } catch (...) {
      // The eager forward itself failed (shape error, shutdown, ...):
      // release the recording claim so a later request can retry, and let
      // the caller see the original error.
      std::lock_guard<std::mutex> lk(mu_);
      entries_[key].state = State::kEmpty;
      throw;
    }
    std::lock_guard<std::mutex> lk(mu_);
    Entry& e = entries_[key];
    e.plan = std::move(sealed);
    if (e.plan->supported()) {
      e.state = State::kSealed;
      e.pool.reserve(16);
      ++stats_.plans_recorded;
    } else {
      e.state = State::kUnsupported;
      ++stats_.plans_unsupported;
    }
    ++stats_.eager_runs;
    return out;
  }

  Tensor out = eager(circuit, tokens);
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.eager_runs;
  }
  return out;
}

bool PlanRuntime::enabled() const {
  std::lock_guard<std::mutex> lk(mu_);
  return enabled_;
}

void PlanRuntime::set_enabled(bool on) {
  std::lock_guard<std::mutex> lk(mu_);
  enabled_ = on;
}

RuntimeStats PlanRuntime::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::shared_ptr<const InferencePlan> PlanRuntime::plan_for(
    const Tensor& circuit, const Tensor& tokens) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(make_key(circuit, tokens));
  return it == entries_.end() ? nullptr : it->second.plan;
}

}  // namespace lmmir::tensor::plan
