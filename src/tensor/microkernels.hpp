#pragma once
// CPU microkernels for the matmul/conv inner loops.
//
// The plan executor (tensor/plan.hpp) replays recorded forwards through
// these kernels instead of the header-inline ophelp loops.  Two variants
// exist for the accumulating GEMM:
//
//   * gemm_acc_scalar — the reference: the exact loop nest of
//     ophelp::gemm_acc (ikj order, zero-row skip);
//   * gemm_acc_avx2   — 8-lane AVX2 over the output column index j only.
//     Each output element still sees the same scalar arithmetic
//     (one mul, one add per (i,kk,j) — deliberately NOT vfmadd: FMA's
//     single rounding would diverge from the eager baseline), the
//     zero-row skip is preserved, and the j remainder runs the scalar
//     tail, so results are bitwise identical to the scalar kernel.
//
// gemm_acc() dispatches once per process: AVX2 requires the binary to
// carry the AVX2 codegen (this TU is compiled with -mavx2 -mfma
// -ffp-contract=off on x86-64), the CPU to report AVX2+FMA, and
// LMMIR_SIMD to not be "0".  Everything else falls back to the scalar
// reference — the dispatch is a behavior-preserving speed knob, never a
// semantics knob (tests/test_microkernels.cpp enforces the identity).
//
// im2col lives here too so the eager conv2d and the plan replay share one
// patch-gather implementation (pure copies, no float arithmetic).
#include <cstddef>

namespace lmmir::tensor::mk {

/// True when this binary contains the AVX2 kernels at all (compiled on
/// x86-64 with the per-file -mavx2 flags).
bool compiled_with_avx2();

/// Raw CPUID probe: the host supports AVX2 and FMA.  Ignores LMMIR_SIMD —
/// tests use it to decide whether gemm_acc_avx2 may be called directly.
bool cpu_has_avx2();

/// The process-wide dispatch decision, read once:
/// compiled_with_avx2() && cpu_has_avx2() && LMMIR_SIMD != "0".
bool simd_enabled();

/// "avx2" or "scalar" — what gemm_acc() actually runs.
const char* active_kernel();

/// C[M,N] += A[M,K] * B[K,N]  (row-major; reference scalar kernel,
/// identical to ophelp::gemm_acc).
void gemm_acc_scalar(const float* a, const float* b, float* c, std::size_t m,
                     std::size_t k, std::size_t n);

/// Same contract, AVX2 body.  Bitwise identical to the scalar kernel by
/// construction.  Throws std::runtime_error when the binary or the CPU
/// lacks AVX2 (call cpu_has_avx2() && compiled_with_avx2() first).
void gemm_acc_avx2(const float* a, const float* b, float* c, std::size_t m,
                   std::size_t k, std::size_t n);

/// Dispatched entry point used by the plan executor.
void gemm_acc(const float* a, const float* b, float* c, std::size_t m,
              std::size_t k, std::size_t n);

/// col[cin*kh*kw, oh*ow] patch-gather for one NCHW sample with zero
/// padding (shared by the eager conv2d and the plan replay).
void im2col(const float* x, std::size_t cin, std::size_t h, std::size_t w,
            std::size_t kh, std::size_t kw, std::size_t oh, std::size_t ow,
            int stride, int pad_h, int pad_w, float* col);

}  // namespace lmmir::tensor::mk
