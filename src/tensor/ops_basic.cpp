#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/op_helpers.hpp"
#include "tensor/ops.hpp"
#include "tensor/plan.hpp"

namespace lmmir::tensor {

using detail::accumulate_grad;
using detail::make_node;
using detail::needs_grad;
using ophelp::attach;
using ophelp::check_same_shape;

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  std::vector<float> y = arena_buffer(a.numel());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = a.data()[i] + b.data()[i];
  auto out = make_node(a.shape(), std::move(y));
  plan::record_op(plan::OpKind::kAdd, out, {&a, &b});
  if (needs_grad({&a, &b})) {
    attach(out, {a, b}, [self = out.get(), pa = a.impl(), pb = b.impl()]() {
      if (pa->requires_grad) accumulate_grad(*pa, self->grad);
      if (pb->requires_grad) accumulate_grad(*pb, self->grad);
    });
  }
  return Tensor(out);
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  std::vector<float> y = arena_buffer(a.numel());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = a.data()[i] - b.data()[i];
  auto out = make_node(a.shape(), std::move(y));
  plan::record_op(plan::OpKind::kSub, out, {&a, &b});
  if (needs_grad({&a, &b})) {
    attach(out, {a, b}, [self = out.get(), pa = a.impl(), pb = b.impl()]() {
      if (pa->requires_grad) accumulate_grad(*pa, self->grad);
      if (pb->requires_grad) {
        pb->ensure_grad();
        for (std::size_t i = 0; i < self->grad.size(); ++i)
          pb->grad[i] -= self->grad[i];
      }
    });
  }
  return Tensor(out);
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  std::vector<float> y = arena_buffer(a.numel());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = a.data()[i] * b.data()[i];
  auto out = make_node(a.shape(), std::move(y));
  plan::record_op(plan::OpKind::kMul, out, {&a, &b});
  if (needs_grad({&a, &b})) {
    attach(out, {a, b}, [self = out.get(), pa = a.impl(), pb = b.impl()]() {
      if (pa->requires_grad) {
        pa->ensure_grad();
        for (std::size_t i = 0; i < self->grad.size(); ++i)
          pa->grad[i] += self->grad[i] * pb->data[i];
      }
      if (pb->requires_grad) {
        pb->ensure_grad();
        for (std::size_t i = 0; i < self->grad.size(); ++i)
          pb->grad[i] += self->grad[i] * pa->data[i];
      }
    });
  }
  return Tensor(out);
}

Tensor scale(const Tensor& a, float s) {
  std::vector<float> y = arena_buffer(a.numel());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = a.data()[i] * s;
  auto out = make_node(a.shape(), std::move(y));
  plan::record_op(plan::OpKind::kScale, out, {&a}, {.f0 = s});
  if (needs_grad({&a})) {
    attach(out, {a}, [self = out.get(), pa = a.impl(), s]() {
      if (!pa->requires_grad) return;
      pa->ensure_grad();
      for (std::size_t i = 0; i < self->grad.size(); ++i)
        pa->grad[i] += self->grad[i] * s;
    });
  }
  return Tensor(out);
}

Tensor add_scalar(const Tensor& a, float s) {
  std::vector<float> y = arena_buffer(a.numel());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = a.data()[i] + s;
  auto out = make_node(a.shape(), std::move(y));
  plan::record_op(plan::OpKind::kAddScalar, out, {&a}, {.f0 = s});
  if (needs_grad({&a})) {
    attach(out, {a}, [self = out.get(), pa = a.impl()]() {
      if (pa->requires_grad) accumulate_grad(*pa, self->grad);
    });
  }
  return Tensor(out);
}

Tensor neg(const Tensor& a) { return scale(a, -1.0f); }

Tensor relu(const Tensor& x) {
  std::vector<float> y = arena_buffer(x.numel());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = std::max(0.0f, x.data()[i]);
  auto out = make_node(x.shape(), std::move(y));
  plan::record_op(plan::OpKind::kRelu, out, {&x});
  if (needs_grad({&x})) {
    attach(out, {x}, [self = out.get(), px = x.impl()]() {
      if (!px->requires_grad) return;
      px->ensure_grad();
      for (std::size_t i = 0; i < self->grad.size(); ++i)
        if (px->data[i] > 0.0f) px->grad[i] += self->grad[i];
    });
  }
  return Tensor(out);
}

Tensor leaky_relu(const Tensor& x, float negative_slope) {
  std::vector<float> y = arena_buffer(x.numel());
  for (std::size_t i = 0; i < y.size(); ++i) {
    const float v = x.data()[i];
    y[i] = v > 0.0f ? v : negative_slope * v;
  }
  auto out = make_node(x.shape(), std::move(y));
  plan::record_op(plan::OpKind::kLeakyRelu, out, {&x}, {.f0 = negative_slope});
  if (needs_grad({&x})) {
    attach(out, {x}, [self = out.get(), px = x.impl(), negative_slope]() {
      if (!px->requires_grad) return;
      px->ensure_grad();
      for (std::size_t i = 0; i < self->grad.size(); ++i)
        px->grad[i] +=
            self->grad[i] * (px->data[i] > 0.0f ? 1.0f : negative_slope);
    });
  }
  return Tensor(out);
}

Tensor sigmoid(const Tensor& x) {
  std::vector<float> y = arena_buffer(x.numel());
  for (std::size_t i = 0; i < y.size(); ++i)
    y[i] = 1.0f / (1.0f + std::exp(-x.data()[i]));
  auto out = make_node(x.shape(), std::move(y));
  plan::record_op(plan::OpKind::kSigmoid, out, {&x});
  if (needs_grad({&x})) {
    attach(out, {x}, [self = out.get(), px = x.impl()]() {
      if (!px->requires_grad) return;
      px->ensure_grad();
      for (std::size_t i = 0; i < self->grad.size(); ++i) {
        const float s = self->data[i];
        px->grad[i] += self->grad[i] * s * (1.0f - s);
      }
    });
  }
  return Tensor(out);
}

Tensor tanh_act(const Tensor& x) {
  std::vector<float> y = arena_buffer(x.numel());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = std::tanh(x.data()[i]);
  auto out = make_node(x.shape(), std::move(y));
  plan::record_op(plan::OpKind::kTanh, out, {&x});
  if (needs_grad({&x})) {
    attach(out, {x}, [self = out.get(), px = x.impl()]() {
      if (!px->requires_grad) return;
      px->ensure_grad();
      for (std::size_t i = 0; i < self->grad.size(); ++i) {
        const float t = self->data[i];
        px->grad[i] += self->grad[i] * (1.0f - t * t);
      }
    });
  }
  return Tensor(out);
}

Tensor softmax_lastdim(const Tensor& x) {
  if (x.ndim() < 1)
    throw std::invalid_argument("softmax_lastdim: needs >=1 dims");
  const std::size_t d = static_cast<std::size_t>(x.dim(-1));
  const std::size_t rows = x.numel() / d;
  std::vector<float> y = arena_buffer(x.numel());
  for (std::size_t r = 0; r < rows; ++r) {
    const float* in = x.data().data() + r * d;
    float* o = y.data() + r * d;
    float mx = in[0];
    for (std::size_t i = 1; i < d; ++i) mx = std::max(mx, in[i]);
    float sum = 0.0f;
    for (std::size_t i = 0; i < d; ++i) {
      o[i] = std::exp(in[i] - mx);
      sum += o[i];
    }
    const float inv = 1.0f / sum;
    for (std::size_t i = 0; i < d; ++i) o[i] *= inv;
  }
  auto out = make_node(x.shape(), std::move(y));
  plan::record_op(plan::OpKind::kSoftmaxLastDim, out, {&x});
  if (needs_grad({&x})) {
    attach(out, {x}, [self = out.get(), px = x.impl(), d, rows]() {
      if (!px->requires_grad) return;
      px->ensure_grad();
      for (std::size_t r = 0; r < rows; ++r) {
        const float* yv = self->data.data() + r * d;
        const float* gy = self->grad.data() + r * d;
        float dot = 0.0f;
        for (std::size_t i = 0; i < d; ++i) dot += yv[i] * gy[i];
        float* gx = px->grad.data() + r * d;
        for (std::size_t i = 0; i < d; ++i)
          gx[i] += yv[i] * (gy[i] - dot);
      }
    });
  }
  return Tensor(out);
}

Tensor reshape(const Tensor& x, Shape new_shape) {
  if (shape_numel(new_shape) != x.numel())
    throw std::invalid_argument("reshape: element count mismatch " +
                                shape_to_string(x.shape()) + " -> " +
                                shape_to_string(new_shape));
  std::vector<float> y =
      arena_buffer_copy(x.data().data(), x.data().data() + x.numel());
  auto out = make_node(std::move(new_shape), std::move(y));
  plan::record_op(plan::OpKind::kReshape, out, {&x});
  if (needs_grad({&x})) {
    attach(out, {x}, [self = out.get(), px = x.impl()]() {
      if (px->requires_grad) accumulate_grad(*px, self->grad);
    });
  }
  return Tensor(out);
}

namespace {
/// outer * axis_len * inner decomposition for axis-wise ops.
struct AxisSplit {
  std::size_t outer = 1, axis = 1, inner = 1;
};
AxisSplit split_at(const Shape& shape, int axis) {
  AxisSplit s;
  for (int i = 0; i < static_cast<int>(shape.size()); ++i) {
    const auto d = static_cast<std::size_t>(shape[static_cast<std::size_t>(i)]);
    if (i < axis) s.outer *= d;
    else if (i == axis) s.axis = d;
    else s.inner *= d;
  }
  return s;
}
int normalize_axis(int axis, int ndim, const char* op) {
  if (axis < 0) axis += ndim;
  if (axis < 0 || axis >= ndim)
    throw std::invalid_argument(std::string(op) + ": axis out of range");
  return axis;
}
}  // namespace

Tensor concat(const Tensor& a, const Tensor& b, int axis) {
  if (a.ndim() != b.ndim())
    throw std::invalid_argument("concat: rank mismatch");
  axis = normalize_axis(axis, a.ndim(), "concat");
  for (int i = 0; i < a.ndim(); ++i)
    if (i != axis && a.dim(i) != b.dim(i))
      throw std::invalid_argument("concat: non-axis dims differ");

  Shape out_shape = a.shape();
  out_shape[static_cast<std::size_t>(axis)] += b.dim(axis);
  const auto sa = split_at(a.shape(), axis);
  const auto sb = split_at(b.shape(), axis);
  std::vector<float> y = arena_buffer(shape_numel(out_shape));
  const std::size_t stride_a = sa.axis * sa.inner;
  const std::size_t stride_b = sb.axis * sb.inner;
  const std::size_t stride_o = stride_a + stride_b;
  for (std::size_t o = 0; o < sa.outer; ++o) {
    std::copy_n(a.data().data() + o * stride_a, stride_a,
                y.data() + o * stride_o);
    std::copy_n(b.data().data() + o * stride_b, stride_b,
                y.data() + o * stride_o + stride_a);
  }
  auto out = make_node(std::move(out_shape), std::move(y));
  plan::record_op(plan::OpKind::kConcat, out, {&a, &b}, {.i0 = axis});
  if (needs_grad({&a, &b})) {
    attach(out, {a, b},
           [self = out.get(), pa = a.impl(), pb = b.impl(), sa, stride_a,
            stride_b, stride_o]() {
             if (pa->requires_grad) {
               pa->ensure_grad();
               for (std::size_t o = 0; o < sa.outer; ++o)
                 for (std::size_t i = 0; i < stride_a; ++i)
                   pa->grad[o * stride_a + i] += self->grad[o * stride_o + i];
             }
             if (pb->requires_grad) {
               pb->ensure_grad();
               for (std::size_t o = 0; o < sa.outer; ++o)
                 for (std::size_t i = 0; i < stride_b; ++i)
                   pb->grad[o * stride_b + i] +=
                       self->grad[o * stride_o + stride_a + i];
             }
           });
  }
  return Tensor(out);
}

Tensor slice_axis(const Tensor& x, int axis, int start, int len) {
  axis = normalize_axis(axis, x.ndim(), "slice_axis");
  if (start < 0 || len <= 0 || start + len > x.dim(axis))
    throw std::invalid_argument("slice_axis: range out of bounds");
  const auto s = split_at(x.shape(), axis);
  Shape out_shape = x.shape();
  out_shape[static_cast<std::size_t>(axis)] = len;
  std::vector<float> y = arena_buffer(shape_numel(out_shape));
  const std::size_t in_stride = s.axis * s.inner;
  const std::size_t out_stride = static_cast<std::size_t>(len) * s.inner;
  const std::size_t off = static_cast<std::size_t>(start) * s.inner;
  for (std::size_t o = 0; o < s.outer; ++o)
    std::copy_n(x.data().data() + o * in_stride + off, out_stride,
                y.data() + o * out_stride);
  auto out = make_node(std::move(out_shape), std::move(y));
  plan::record_op(plan::OpKind::kSliceAxis, out, {&x},
                  {.i0 = axis, .i1 = start, .i2 = len});
  if (needs_grad({&x})) {
    attach(out, {x},
           [self = out.get(), px = x.impl(), s, in_stride, out_stride, off]() {
             if (!px->requires_grad) return;
             px->ensure_grad();
             for (std::size_t o = 0; o < s.outer; ++o)
               for (std::size_t i = 0; i < out_stride; ++i)
                 px->grad[o * in_stride + off + i] +=
                     self->grad[o * out_stride + i];
           });
  }
  return Tensor(out);
}

Tensor transpose_last2(const Tensor& x) {
  if (x.ndim() != 2 && x.ndim() != 3)
    throw std::invalid_argument("transpose_last2: expects 2-D or 3-D");
  const std::size_t batch = x.ndim() == 3 ? static_cast<std::size_t>(x.dim(0)) : 1;
  const std::size_t m = static_cast<std::size_t>(x.dim(-2));
  const std::size_t n = static_cast<std::size_t>(x.dim(-1));
  Shape out_shape = x.shape();
  out_shape[out_shape.size() - 2] = static_cast<int>(n);
  out_shape[out_shape.size() - 1] = static_cast<int>(m);
  std::vector<float> y = arena_buffer(x.numel());
  for (std::size_t b = 0; b < batch; ++b) {
    const float* in = x.data().data() + b * m * n;
    float* o = y.data() + b * m * n;
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) o[j * m + i] = in[i * n + j];
  }
  auto out = make_node(std::move(out_shape), std::move(y));
  plan::record_op(plan::OpKind::kTransposeLast2, out, {&x});
  if (needs_grad({&x})) {
    attach(out, {x}, [self = out.get(), px = x.impl(), batch, m, n]() {
      if (!px->requires_grad) return;
      px->ensure_grad();
      for (std::size_t b = 0; b < batch; ++b) {
        const float* gy = self->grad.data() + b * m * n;
        float* gx = px->grad.data() + b * m * n;
        for (std::size_t i = 0; i < m; ++i)
          for (std::size_t j = 0; j < n; ++j) gx[i * n + j] += gy[j * m + i];
      }
    });
  }
  return Tensor(out);
}

namespace {
/// 1-element output node for reductions (pooled like every op output).
std::vector<float> scalar_buffer(float value) {
  std::vector<float> y = arena_buffer(1);
  y[0] = value;
  return y;
}
}  // namespace

Tensor sum_all(const Tensor& x) {
  double acc = 0.0;
  for (float v : x.data()) acc += v;
  auto out = make_node(Shape{1}, scalar_buffer(static_cast<float>(acc)));
  if (needs_grad({&x})) {
    attach(out, {x}, [self = out.get(), px = x.impl()]() {
      if (!px->requires_grad) return;
      px->ensure_grad();
      const float g = self->grad[0];
      for (auto& v : px->grad) v += g;
    });
  }
  return Tensor(out);
}

Tensor mean_all(const Tensor& x) {
  return scale(sum_all(x), 1.0f / static_cast<float>(x.numel()));
}

Tensor mse_loss(const Tensor& pred, const Tensor& target) {
  check_same_shape(pred, target, "mse_loss");
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.numel(); ++i) {
    const double d = static_cast<double>(pred.data()[i]) - target.data()[i];
    acc += d * d;
  }
  const float n = static_cast<float>(pred.numel());
  auto out = make_node(Shape{1}, scalar_buffer(static_cast<float>(acc / n)));
  if (needs_grad({&pred, &target})) {
    attach(out, {pred, target},
           [self = out.get(), pp = pred.impl(), pt = target.impl(), n]() {
             const float g = self->grad[0] * 2.0f / n;
             if (pp->requires_grad) {
               pp->ensure_grad();
               for (std::size_t i = 0; i < pp->data.size(); ++i)
                 pp->grad[i] += g * (pp->data[i] - pt->data[i]);
             }
             if (pt->requires_grad) {
               pt->ensure_grad();
               for (std::size_t i = 0; i < pt->data.size(); ++i)
                 pt->grad[i] -= g * (pp->data[i] - pt->data[i]);
             }
           });
  }
  return Tensor(out);
}

Tensor l1_loss(const Tensor& pred, const Tensor& target) {
  check_same_shape(pred, target, "l1_loss");
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.numel(); ++i)
    acc += std::abs(static_cast<double>(pred.data()[i]) - target.data()[i]);
  const float n = static_cast<float>(pred.numel());
  auto out = make_node(Shape{1}, scalar_buffer(static_cast<float>(acc / n)));
  if (needs_grad({&pred, &target})) {
    attach(out, {pred, target},
           [self = out.get(), pp = pred.impl(), pt = target.impl(), n]() {
             const float g = self->grad[0] / n;
             if (pp->requires_grad) {
               pp->ensure_grad();
               for (std::size_t i = 0; i < pp->data.size(); ++i) {
                 const float d = pp->data[i] - pt->data[i];
                 pp->grad[i] += g * (d > 0 ? 1.0f : (d < 0 ? -1.0f : 0.0f));
               }
             }
             if (pt->requires_grad) {
               pt->ensure_grad();
               for (std::size_t i = 0; i < pt->data.size(); ++i) {
                 const float d = pp->data[i] - pt->data[i];
                 pt->grad[i] -= g * (d > 0 ? 1.0f : (d < 0 ? -1.0f : 0.0f));
               }
             }
           });
  }
  return Tensor(out);
}

Tensor add_bias_lastdim(const Tensor& x, const Tensor& b) {
  if (b.ndim() != 1 || b.dim(0) != x.dim(-1))
    throw std::invalid_argument("add_bias_lastdim: bias shape mismatch");
  const std::size_t d = static_cast<std::size_t>(x.dim(-1));
  const std::size_t rows = x.numel() / d;
  std::vector<float> y = arena_buffer(x.numel());
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t i = 0; i < d; ++i)
      y[r * d + i] = x.data()[r * d + i] + b.data()[i];
  auto out = make_node(x.shape(), std::move(y));
  plan::record_op(plan::OpKind::kAddBiasLastDim, out, {&x, &b});
  if (needs_grad({&x, &b})) {
    attach(out, {x, b},
           [self = out.get(), px = x.impl(), pb = b.impl(), rows, d]() {
             if (px->requires_grad) accumulate_grad(*px, self->grad);
             if (pb->requires_grad) {
               pb->ensure_grad();
               for (std::size_t r = 0; r < rows; ++r)
                 for (std::size_t i = 0; i < d; ++i)
                   pb->grad[i] += self->grad[r * d + i];
             }
           });
  }
  return Tensor(out);
}

Tensor add_bias_channels(const Tensor& x, const Tensor& b) {
  if (x.ndim() != 4)
    throw std::invalid_argument("add_bias_channels: expects NCHW");
  if (b.ndim() != 1 || b.dim(0) != x.dim(1))
    throw std::invalid_argument("add_bias_channels: bias shape mismatch");
  const std::size_t n = static_cast<std::size_t>(x.dim(0));
  const std::size_t c = static_cast<std::size_t>(x.dim(1));
  const std::size_t hw = static_cast<std::size_t>(x.dim(2)) *
                         static_cast<std::size_t>(x.dim(3));
  std::vector<float> y = arena_buffer(x.numel());
  for (std::size_t ni = 0; ni < n; ++ni)
    for (std::size_t ci = 0; ci < c; ++ci) {
      const float bv = b.data()[ci];
      const std::size_t base = (ni * c + ci) * hw;
      for (std::size_t i = 0; i < hw; ++i)
        y[base + i] = x.data()[base + i] + bv;
    }
  auto out = make_node(x.shape(), std::move(y));
  plan::record_op(plan::OpKind::kAddBiasChannels, out, {&x, &b});
  if (needs_grad({&x, &b})) {
    attach(out, {x, b},
           [self = out.get(), px = x.impl(), pb = b.impl(), n, c, hw]() {
             if (px->requires_grad) accumulate_grad(*px, self->grad);
             if (pb->requires_grad) {
               pb->ensure_grad();
               for (std::size_t ni = 0; ni < n; ++ni)
                 for (std::size_t ci = 0; ci < c; ++ci) {
                   const std::size_t base = (ni * c + ci) * hw;
                   float acc = 0.0f;
                   for (std::size_t i = 0; i < hw; ++i)
                     acc += self->grad[base + i];
                   pb->grad[ci] += acc;
                 }
             }
           });
  }
  return Tensor(out);
}

Tensor mul_broadcast_channel(const Tensor& x, const Tensor& a) {
  if (x.ndim() != 4 || a.ndim() != 4)
    throw std::invalid_argument("mul_broadcast_channel: expects 4-D tensors");
  if (a.dim(1) != 1 || a.dim(0) != x.dim(0) || a.dim(2) != x.dim(2) ||
      a.dim(3) != x.dim(3))
    throw std::invalid_argument("mul_broadcast_channel: mask must be [N,1,H,W]");
  const std::size_t n = static_cast<std::size_t>(x.dim(0));
  const std::size_t c = static_cast<std::size_t>(x.dim(1));
  const std::size_t hw = static_cast<std::size_t>(x.dim(2)) *
                         static_cast<std::size_t>(x.dim(3));
  std::vector<float> y = arena_buffer(x.numel());
  for (std::size_t ni = 0; ni < n; ++ni) {
    const float* av = a.data().data() + ni * hw;
    for (std::size_t ci = 0; ci < c; ++ci) {
      const std::size_t base = (ni * c + ci) * hw;
      for (std::size_t i = 0; i < hw; ++i)
        y[base + i] = x.data()[base + i] * av[i];
    }
  }
  auto out = make_node(x.shape(), std::move(y));
  plan::record_op(plan::OpKind::kMulBroadcastChannel, out, {&x, &a});
  if (needs_grad({&x, &a})) {
    attach(out, {x, a},
           [self = out.get(), px = x.impl(), pa = a.impl(), n, c, hw]() {
             if (px->requires_grad) {
               px->ensure_grad();
               for (std::size_t ni = 0; ni < n; ++ni) {
                 const float* av = pa->data.data() + ni * hw;
                 for (std::size_t ci = 0; ci < c; ++ci) {
                   const std::size_t base = (ni * c + ci) * hw;
                   for (std::size_t i = 0; i < hw; ++i)
                     px->grad[base + i] += self->grad[base + i] * av[i];
                 }
               }
             }
             if (pa->requires_grad) {
               pa->ensure_grad();
               for (std::size_t ni = 0; ni < n; ++ni) {
                 float* ga = pa->grad.data() + ni * hw;
                 for (std::size_t ci = 0; ci < c; ++ci) {
                   const std::size_t base = (ni * c + ci) * hw;
                   for (std::size_t i = 0; i < hw; ++i)
                     ga[i] += self->grad[base + i] * px->data[base + i];
                 }
               }
             }
           });
  }
  return Tensor(out);
}

Tensor dropout(const Tensor& x, float p, util::Rng& rng, bool training) {
  if (!training || p <= 0.0f) return scale(x, 1.0f);  // identity (keeps graph)
  if (p >= 1.0f) throw std::invalid_argument("dropout: p must be < 1");
  // Random masks are per-pass state a recorded plan cannot replay.
  plan::record_unsupported("dropout in training mode");
  const float keep = 1.0f - p;
  std::vector<float> mask(x.numel());
  for (auto& m : mask) m = rng.uniform() < p ? 0.0f : 1.0f / keep;
  std::vector<float> y = arena_buffer(x.numel());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = x.data()[i] * mask[i];
  auto out = make_node(x.shape(), std::move(y));
  if (needs_grad({&x})) {
    attach(out, {x},
           [self = out.get(), px = x.impl(), mask = std::move(mask)]() {
             if (!px->requires_grad) return;
             px->ensure_grad();
             for (std::size_t i = 0; i < self->grad.size(); ++i)
               px->grad[i] += self->grad[i] * mask[i];
           });
  }
  return Tensor(out);
}

}  // namespace lmmir::tensor
