#include "pdn/optimize.hpp"

#include <stdexcept>
#include <vector>

#include "pdn/solver_context.hpp"
#include "util/log.hpp"

namespace lmmir::pdn {

using spice::ElementType;
using spice::kGroundNode;

StrengthenResult strengthen_pdn(const spice::Netlist& netlist,
                                const StrengthenOptions& opts) {
  if (opts.resistance_scale <= 0.0 || opts.resistance_scale >= 1.0)
    throw std::invalid_argument("strengthen_pdn: resistance_scale in (0,1)");
  if (opts.target_fraction <= 0.0 || opts.hotspot_fraction <= 0.0 ||
      opts.hotspot_fraction > 1.0)
    throw std::invalid_argument("strengthen_pdn: bad fractions");

  StrengthenResult res;
  res.netlist = netlist;

  // The ECO loop only rewrites resistor VALUES, so every round after the
  // first hits the context's numeric-refresh + warm-start fast path.
  SolveOptions solve_opts = opts.solve;
  solve_opts.context = nullptr;  // the loop owns its context explicitly
  SolverContext context(solve_opts);

  auto analyze = [&](const Circuit& circuit) {
    ++res.golden_solves;
    Solution sol = opts.use_solver_context ? context.solve(circuit)
                                           : solve_ir_drop(circuit, solve_opts);
    res.total_cg_iterations += sol.cg_iterations;
    return sol;
  };

  for (int round = 0;; ++round) {
    const Circuit circuit(res.netlist);
    const Solution sol = analyze(circuit);
    if (round == 0) res.initial_worst_drop = sol.worst_drop;
    res.final_worst_drop = sol.worst_drop;

    const double target = opts.target_fraction * sol.vdd;
    if (sol.worst_drop <= target) {
      res.met_target = true;
      break;
    }
    if (round == opts.max_iterations) break;  // analysis budget exhausted

    // Mark violating nodes.
    const double hotspot = opts.hotspot_fraction * sol.worst_drop;
    std::vector<char> violating(res.netlist.node_count(), 0);
    for (std::size_t i = 0; i < sol.ir_drop.size(); ++i)
      if (sol.ir_drop[i] >= hotspot) violating[i] = 1;

    // Upsize every resistor touching a violating node.
    std::size_t upsized = 0;
    const auto& elements = res.netlist.elements();
    for (std::size_t i = 0; i < elements.size(); ++i) {
      const auto& e = elements[i];
      if (e.type != ElementType::Resistor) continue;
      const bool touches =
          (e.node1 != kGroundNode &&
           violating[static_cast<std::size_t>(e.node1)]) ||
          (e.node2 != kGroundNode &&
           violating[static_cast<std::size_t>(e.node2)]);
      if (!touches) continue;
      res.netlist.set_element_value(i, e.value * opts.resistance_scale);
      ++upsized;
    }
    if (upsized == 0) break;  // no-op round: nothing to count or re-solve
    res.resistors_upsized += upsized;
    ++res.iterations;
    util::log_info("strengthen_pdn: round ", round, " worst ", sol.worst_drop,
                   " V, upsized ", upsized, " segment(s)");
  }

  if (opts.use_solver_context) {
    res.precond_builds = context.stats().precond_builds;
    res.warm_starts = context.stats().warm_starts;
  } else {
    res.precond_builds = static_cast<std::size_t>(res.golden_solves);
  }
  return res;
}

}  // namespace lmmir::pdn
