#pragma once
// Testcase statistics in the shape of the paper's Table II.
#include <string>

#include "spice/netlist.hpp"

namespace lmmir::pdn {

struct TestcaseStats {
  std::string name;
  std::size_t nodes = 0;        // interned circuit nodes
  std::size_t resistors = 0;
  std::size_t current_sources = 0;
  std::size_t voltage_sources = 0;
  std::size_t rows = 0;         // pixel shape
  std::size_t cols = 0;
  int layers = 0;

  /// "601x601"-style shape string as printed in Table II.
  std::string shape_string() const;
};

TestcaseStats compute_stats(const spice::Netlist& netlist,
                            const std::string& name = "");

}  // namespace lmmir::pdn
