#include "pdn/solver_context.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "util/stopwatch.hpp"

namespace lmmir::pdn {

using spice::ElementType;
using spice::kGroundNode;
using spice::NodeId;

namespace {

/// Registry view of the SolverContext reuse machinery, aggregated across
/// every context in the process (the per-context SolverContextStats stay
/// the per-instance view).
struct SolverMetrics {
  obs::Counter& solves = obs::counter("lmmir_solver_ctx_solves_total");
  obs::Counter& rebuilds = obs::counter("lmmir_solver_ctx_rebuilds_total");
  obs::Counter& refreshes = obs::counter("lmmir_solver_ctx_refreshes_total");
  obs::Counter& matrix_refreshes =
      obs::counter("lmmir_solver_ctx_matrix_refreshes_total");
  obs::Counter& precond_reuses =
      obs::counter("lmmir_solver_ctx_precond_reuses_total");
  obs::Counter& precond_builds =
      obs::counter("lmmir_solver_ctx_precond_builds_total");
  obs::Counter& precond_refreshes =
      obs::counter("lmmir_solver_ctx_precond_refreshes_total");

  static SolverMetrics& get() {
    static SolverMetrics m;
    return m;
  }
};

}  // namespace

Solution SolverContext::solve(const Circuit& circuit,
                              const SolveOptions& opts) {
  obs::Span span("solver.solve");
  ++stats_.solves;
  SolverMetrics::get().solves.add();
  const bool reuse = cached_ && topology_matches(circuit);
  if (reuse)
    refresh(circuit);
  else
    rebuild(circuit);

  const auto kind = opts.cg.preconditioner;
  // Reuse the built preconditioner exactly when it still describes THIS
  // matrix (version match: identical re-solves and rhs-only refreshes).
  // After a conductance change a stale factor would stay SPD — PCG would
  // still be correct — but measurement showed the extra iterations cost
  // more than the setup it saves, so staleness is never carried.
  const bool keep_precond = reuse && opts.reuse_preconditioner && precond_ &&
                            precond_->kind() == kind &&
                            precond_version_ == matrix_version_;
  // When only the VALUES moved on the cached pattern, kinds with a
  // symbolic/numeric split (AMG keeps its aggregates and transfer
  // patterns, Schwarz its tile partition and extraction plans) refactor
  // in place instead of rebuilding — the ECO-loop fast path.
  const bool try_refresh = !keep_precond && reuse &&
                           opts.reuse_preconditioner && precond_ &&
                           precond_->kind() == kind;
  double setup_seconds = 0.0;
  if (keep_precond) {
    SolverMetrics::get().precond_reuses.add();
  } else {
    util::Stopwatch setup_watch;
    if (try_refresh && precond_->refresh(sys_.matrix)) {
      setup_seconds = setup_watch.seconds();
      ++stats_.precond_refreshes;
      SolverMetrics::get().precond_refreshes.add();
    } else {
      precond_ = sparse::make_preconditioner(kind, sys_.matrix);
      setup_seconds = setup_watch.seconds();
      ++stats_.precond_builds;
      SolverMetrics::get().precond_builds.add();
    }
    precond_version_ = matrix_version_;
    stats_.precond_setup_seconds += setup_seconds;
  }
  // Mixed-precision solves want the preconditioner's own storage demoted
  // too, where the kind supports it (idempotent; no-op otherwise).
  if (opts.cg.precision == sparse::SolverPrecision::Mixed)
    precond_->demote_storage();

  const std::vector<double>* x0 = nullptr;
  if (reuse && opts.warm_start && last_x_.size() == sys_.matrix.dim())
    x0 = &last_x_;

  auto cg = sparse::conjugate_gradient(sys_.matrix, sys_.rhs, opts.cg,
                                       precond_.get(), x0);
  if (cg.warm_started) ++stats_.warm_starts;
  stats_.total_cg_iterations += cg.iterations;
  last_x_ = cg.x;
  // The injected-preconditioner path reports zero setup; attribute the
  // build this solve actually paid for (zero when the factor was reused).
  cg.precond_setup_seconds = setup_seconds;

  Solution sol = detail::finish_solution(circuit, sys_, std::move(cg));
  sol.reused_pattern = reuse;
  return sol;
}

bool SolverContext::topology_matches(const Circuit& circuit) const {
  const auto& nl = circuit.netlist();
  if (nl.node_count() != node_count_) return false;
  const auto& elements = nl.elements();
  if (elements.size() != topo_.size()) return false;
  for (std::size_t i = 0; i < elements.size(); ++i) {
    const auto& e = elements[i];
    const auto& t = topo_[i];
    if (e.type != t.type || e.node1 != t.node1 || e.node2 != t.node2)
      return false;
  }
  return true;
}

void SolverContext::rebuild(const Circuit& circuit) {
  obs::Span span("solver.rebuild");
  SolverMetrics::get().rebuilds.add();
  util::Stopwatch watch;
  sys_ = assemble_ir_system(circuit);  // throws when unsolvable

  const auto& nl = circuit.netlist();
  node_count_ = nl.node_count();
  topo_.clear();
  topo_.reserve(nl.element_count());
  element_values_.clear();
  element_values_.reserve(nl.element_count());
  for (const auto& e : nl.elements()) {
    topo_.push_back({e.type, e.node1, e.node2});
    element_values_.push_back(e.value);
  }
  build_stamp_plan(circuit);

  ++matrix_version_;
  precond_.reset();
  last_x_.clear();
  cached_ = true;
  stats_.assemble_seconds += watch.seconds();
  ++stats_.rebuilds;
}

void SolverContext::build_stamp_plan(const Circuit& circuit) {
  g_stamps_.clear();
  pin_stamps_.clear();
  i_stamps_.clear();

  auto slot_of = [&](std::ptrdiff_t row, std::ptrdiff_t col) {
    const std::size_t k = sys_.matrix.find_entry(static_cast<std::size_t>(row),
                                                 static_cast<std::size_t>(col));
    if (k == sparse::CsrMatrix::npos)
      throw std::logic_error(
          "SolverContext: stamp slot missing from assembled pattern");
    return k;
  };
  auto unknown = [&](NodeId id) {
    return id == kGroundNode ? -1
                             : sys_.unknown_of[static_cast<std::size_t>(id)];
  };

  const auto& elements = circuit.netlist().elements();
  for (std::size_t ei = 0; ei < elements.size(); ++ei) {
    const auto& e = elements[ei];
    switch (e.type) {
      case ElementType::Resistor: {
        const std::ptrdiff_t ua = unknown(e.node1);
        const std::ptrdiff_t ub = unknown(e.node2);
        const bool a_pinned =
            e.node1 != kGroundNode && circuit.is_pinned(e.node1);
        const bool b_pinned =
            e.node2 != kGroundNode && circuit.is_pinned(e.node2);
        if (ua >= 0) {
          g_stamps_.push_back({slot_of(ua, ua), ei, 1.0});
          if (ub >= 0)
            g_stamps_.push_back({slot_of(ua, ub), ei, -1.0});
          else if (b_pinned)
            pin_stamps_.push_back(
                {static_cast<std::size_t>(ua), ei, e.node2});
        }
        if (ub >= 0) {
          g_stamps_.push_back({slot_of(ub, ub), ei, 1.0});
          if (ua >= 0)
            g_stamps_.push_back({slot_of(ub, ua), ei, -1.0});
          else if (a_pinned)
            pin_stamps_.push_back(
                {static_cast<std::size_t>(ub), ei, e.node1});
        }
        break;
      }
      case ElementType::CurrentSource: {
        // SPICE convention (see assemble_ir_system): e.value flows from
        // node1 through the source to node2.
        const std::ptrdiff_t uf = unknown(e.node1);
        const std::ptrdiff_t ut = unknown(e.node2);
        if (uf >= 0)
          i_stamps_.push_back({static_cast<std::size_t>(uf), ei, -1.0});
        if (ut >= 0)
          i_stamps_.push_back({static_cast<std::size_t>(ut), ei, 1.0});
        break;
      }
      case ElementType::VoltageSource:
        break;  // realized as Dirichlet pins by Circuit
    }
  }
}

void SolverContext::refresh(const Circuit& circuit) {
  obs::Span span("solver.refresh");
  SolverMetrics::get().refreshes.add();
  util::Stopwatch watch;
  const auto& elements = circuit.netlist().elements();
  // The matrix depends on resistor values only; a refresh that moved just
  // current/voltage sources (a load sweep) keeps the values — and the
  // preconditioner built for them — exactly valid.
  bool matrix_changed = false;
  for (std::size_t i = 0; i < elements.size(); ++i)
    if (topo_[i].type == ElementType::Resistor &&
        elements[i].value != element_values_[i]) {
      matrix_changed = true;
      break;
    }
  for (std::size_t i = 0; i < elements.size(); ++i)
    element_values_[i] = elements[i].value;

  // Fixed element order: the refresh is bitwise reproducible run-to-run
  // (summation order differs from the sorted COO assembly, so refreshed
  // and from-scratch VALUES may differ in the last ulp — solutions agree
  // to solver tolerance).
  if (matrix_changed) {
    auto& vals = sys_.matrix.values_mut();
    std::fill(vals.begin(), vals.end(), 0.0);
    for (const auto& s : g_stamps_)
      vals[s.slot] += s.sign / elements[s.element].value;
    ++matrix_version_;
    ++stats_.matrix_refreshes;
    SolverMetrics::get().matrix_refreshes.add();
  }
  std::fill(sys_.rhs.begin(), sys_.rhs.end(), 0.0);
  for (const auto& s : pin_stamps_)
    sys_.rhs[s.row] +=
        circuit.pinned_voltage(s.pinned_node) / elements[s.element].value;
  for (const auto& s : i_stamps_)
    sys_.rhs[s.row] += s.sign * elements[s.element].value;
  stats_.refresh_seconds += watch.seconds();
  ++stats_.refreshes;
}

std::vector<Solution> solve_ir_drop_batch(
    const std::vector<const Circuit*>& circuits, const SolveOptions& opts,
    std::size_t stripes, SolverContextStats* aggregate) {
  const std::size_t n = circuits.size();
  std::vector<Solution> out(n);
  if (n == 0) return out;
  if (stripes == 0) stripes = 1;
  stripes = std::min(stripes, n);

  SolveOptions stripe_opts = opts;
  stripe_opts.context = nullptr;  // each stripe owns its context

  std::mutex agg_mu;
  // Contiguous blocks keep consecutive same-topology cases in one
  // context's reuse chain; the partition depends only on (n, stripes),
  // so any thread count replays the same chains bitwise.
  auto run_stripe = [&](std::size_t s) {
    const std::size_t begin = s * n / stripes;
    const std::size_t end = (s + 1) * n / stripes;
    SolverContext ctx;
    for (std::size_t i = begin; i < end; ++i)
      out[i] = ctx.solve(*circuits[i], stripe_opts);
    if (aggregate) {
      std::lock_guard<std::mutex> lock(agg_mu);
      *aggregate += ctx.stats();
    }
  };

  runtime::ThreadPool* pool = runtime::global_pool();
  if (!pool || pool->in_worker()) {
    for (std::size_t s = 0; s < stripes; ++s) run_stripe(s);
    return out;
  }
  // Every stripe runs as a posted job: on workers the nested solver
  // kernels run inline (no nested parallelism), so no stripe ever blocks
  // on pool latches behind another stripe's whole solve — which is what
  // would happen if the caller ran a stripe itself and its inner
  // parallel_for queued chunks behind the busy workers.
  std::vector<std::future<void>> futures;
  futures.reserve(stripes);
  for (std::size_t s = 0; s < stripes; ++s)
    futures.push_back(pool->submit([&run_stripe, s] { run_stripe(s); }));
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return out;
}

void SolverContext::invalidate() {
  cached_ = false;
  sys_ = {};
  topo_.clear();
  element_values_.clear();
  g_stamps_.clear();
  pin_stamps_.clear();
  i_stamps_.clear();
  precond_.reset();
  last_x_.clear();
  node_count_ = 0;
}

}  // namespace lmmir::pdn
