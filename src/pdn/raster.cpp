#include "pdn/raster.hpp"

#include <stdexcept>

namespace lmmir::pdn {

void fill_holes_by_diffusion(grid::Grid2D& g, const std::vector<char>& assigned) {
  if (assigned.size() != g.size())
    throw std::invalid_argument("fill_holes_by_diffusion: mask size mismatch");
  const std::size_t rows = g.rows();
  const std::size_t cols = g.cols();
  std::vector<char> done = assigned;

  // Multi-pass BFS-style dilation: each pass assigns every empty pixel that
  // touches at least one assigned pixel to the mean of its assigned
  // neighbors.  Terminates in O(max(rows, cols)) passes.
  bool progress = true;
  while (progress) {
    progress = false;
    std::vector<char> next = done;
    grid::Grid2D snapshot = g;
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        if (done[r * cols + c]) continue;
        float acc = 0.0f;
        int cnt = 0;
        const long lr = static_cast<long>(r);
        const long lc = static_cast<long>(c);
        const long drc[4][2] = {{-1, 0}, {1, 0}, {0, -1}, {0, 1}};
        for (const auto& d : drc) {
          const long rr = lr + d[0];
          const long cc = lc + d[1];
          if (rr < 0 || cc < 0 || rr >= static_cast<long>(rows) ||
              cc >= static_cast<long>(cols))
            continue;
          if (done[static_cast<std::size_t>(rr) * cols + static_cast<std::size_t>(cc)]) {
            acc += snapshot.at(static_cast<std::size_t>(rr), static_cast<std::size_t>(cc));
            ++cnt;
          }
        }
        if (cnt > 0) {
          g.at(r, c) = acc / static_cast<float>(cnt);
          next[r * cols + c] = 1;
          progress = true;
        }
      }
    }
    done.swap(next);
  }
}

grid::Grid2D rasterize_node_values(const spice::Netlist& netlist,
                                   const std::vector<double>& values,
                                   const RasterOptions& opts) {
  if (values.size() != netlist.node_count())
    throw std::invalid_argument("rasterize_node_values: value count mismatch");
  const auto shape = netlist.pixel_shape();
  if (shape.rows == 0 || shape.cols == 0)
    throw std::runtime_error("rasterize_node_values: netlist has no located nodes");
  grid::Grid2D out(shape.rows, shape.cols, 0.0f);
  grid::Grid2D counts(shape.rows, shape.cols, 0.0f);
  std::vector<char> assigned(out.size(), 0);

  for (std::size_t i = 0; i < netlist.node_count(); ++i) {
    const auto& node = netlist.node(static_cast<spice::NodeId>(i));
    if (!node.parsed) continue;
    if (opts.max_layer > 0 && node.parsed->layer > opts.max_layer) continue;
    const auto r = static_cast<std::size_t>(node.parsed->y / spice::kDbuPerMicron);
    const auto c = static_cast<std::size_t>(node.parsed->x / spice::kDbuPerMicron);
    if (r >= out.rows() || c >= out.cols()) continue;
    const float v = static_cast<float>(values[i]);
    if (opts.combine_max) {
      if (!assigned[r * out.cols() + c] || v > out.at(r, c)) out.at(r, c) = v;
    } else {
      out.at(r, c) += v;
      counts.at(r, c) += 1.0f;
    }
    assigned[r * out.cols() + c] = 1;
  }
  if (!opts.combine_max)
    for (std::size_t i = 0; i < out.size(); ++i)
      if (counts.data()[i] > 0) out.data()[i] /= counts.data()[i];

  if (opts.fill_holes) fill_holes_by_diffusion(out, assigned);
  return out;
}

grid::Grid2D rasterize_ir_drop(const spice::Netlist& netlist,
                               const Solution& solution,
                               const RasterOptions& opts) {
  return rasterize_node_values(netlist, solution.ir_drop, opts);
}

}  // namespace lmmir::pdn
