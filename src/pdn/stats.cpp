#include "pdn/stats.hpp"

namespace lmmir::pdn {

std::string TestcaseStats::shape_string() const {
  return std::to_string(cols) + "x" + std::to_string(rows);
}

TestcaseStats compute_stats(const spice::Netlist& netlist,
                            const std::string& name) {
  TestcaseStats s;
  s.name = name;
  s.nodes = netlist.node_count();
  s.resistors = netlist.count(spice::ElementType::Resistor);
  s.current_sources = netlist.count(spice::ElementType::CurrentSource);
  s.voltage_sources = netlist.count(spice::ElementType::VoltageSource);
  const auto shape = netlist.pixel_shape();
  s.rows = shape.rows;
  s.cols = shape.cols;
  s.layers = netlist.max_layer();
  return s;
}

}  // namespace lmmir::pdn
