#pragma once
// PDN circuit view over a spice::Netlist: classifies nodes (pinned by a
// voltage source vs. free unknowns), finds connected components, and
// exposes the element lists the MNA solver stamps from.
#include <vector>

#include "spice/netlist.hpp"

namespace lmmir::pdn {

struct PinnedNode {
  spice::NodeId node;
  double volts;
};

class Circuit {
 public:
  /// Build from a parsed netlist. Voltage sources must have one terminal at
  /// ground; others throw std::runtime_error (not a PDN-style netlist).
  explicit Circuit(const spice::Netlist& netlist);

  const spice::Netlist& netlist() const { return *netlist_; }

  /// Nodes held at a fixed voltage by a source (deduplicated).
  const std::vector<PinnedNode>& pinned() const { return pinned_; }
  bool is_pinned(spice::NodeId id) const;
  double pinned_voltage(spice::NodeId id) const;

  /// Nominal supply voltage: the maximum source value (0 when no sources).
  double vdd() const { return vdd_; }

  /// Connected-component label per node (resistor edges only).
  const std::vector<int>& component() const { return component_; }
  int component_count() const { return component_count_; }

  /// True if the node's resistive component contains at least one pinned
  /// node; nodes in unpowered islands cannot be solved and are reported.
  bool component_powered(spice::NodeId id) const;

  /// Count of nodes living in unpowered islands (diagnostic).
  std::size_t unpowered_node_count() const;

 private:
  const spice::Netlist* netlist_;
  std::vector<PinnedNode> pinned_;
  std::vector<char> pinned_mask_;      // per node
  std::vector<double> pinned_volts_;   // per node
  std::vector<int> component_;         // per node
  std::vector<char> powered_;          // per component
  int component_count_ = 0;
  double vdd_ = 0.0;
};

}  // namespace lmmir::pdn
