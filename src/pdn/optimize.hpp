#pragma once
// Iterative IR-drop violation fixing (the workflow the paper's
// introduction motivates: "addressing IR drop violations frequently
// demands iterative analysis").  Each round golden-solves the PDN, finds
// the hotspot nodes, and upsizes (scales down the resistance of) the wire
// segments incident to them — the standard strap-widening ECO — until the
// worst drop meets the target or the iteration budget runs out.
#include "pdn/solver.hpp"
#include "spice/netlist.hpp"

namespace lmmir::pdn {

struct StrengthenOptions {
  /// Stop when worst drop <= target_fraction * vdd.
  double target_fraction = 0.04;
  /// Nodes with drop >= hotspot_fraction * worst are "violating".
  double hotspot_fraction = 0.9;
  /// Resistance multiplier applied to upsized segments (0 < s < 1).
  double resistance_scale = 0.6;
  int max_iterations = 5;
  /// Golden-solver configuration for every analysis round.
  SolveOptions solve{};
  /// Solve successive rounds through a shared SolverContext: the ECO loop
  /// only rewrites resistor values, so each re-analysis is a numeric
  /// refresh on the cached pattern with a reused IC(0) factor and a
  /// warm-started PCG.  Disable to force a cold solve per round (the
  /// pre-context behavior; the bench's baseline).
  bool use_solver_context = true;
};

struct StrengthenResult {
  spice::Netlist netlist;        // the strengthened PDN
  /// ECO rounds that actually upsized at least one segment.  A run that
  /// exhausts the budget reports exactly max_iterations; a round whose
  /// hotspot set touches no resistor is NOT counted (nothing executed).
  int iterations = 0;
  /// Golden analysis solves performed: one per ECO round plus the final
  /// re-analysis, counted directly rather than inferred from iterations
  /// (the old `iterations + 1` inference over-counted by one when a round
  /// found nothing to upsize).
  int golden_solves = 0;
  double initial_worst_drop = 0; // volts
  double final_worst_drop = 0;   // volts
  std::size_t resistors_upsized = 0;  // total across rounds
  bool met_target = false;
  // Solver-reuse telemetry (what the SolverContext amortized).
  std::size_t total_cg_iterations = 0;
  std::size_t precond_builds = 0;     // == golden_solves on the cold path
  std::size_t warm_starts = 0;
};

/// Run the strengthening loop. Throws like solve_ir_drop on unsolvable
/// inputs; validates option ranges.
StrengthenResult strengthen_pdn(const spice::Netlist& netlist,
                                const StrengthenOptions& opts = {});

}  // namespace lmmir::pdn
