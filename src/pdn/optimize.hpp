#pragma once
// Iterative IR-drop violation fixing (the workflow the paper's
// introduction motivates: "addressing IR drop violations frequently
// demands iterative analysis").  Each round golden-solves the PDN, finds
// the hotspot nodes, and upsizes (scales down the resistance of) the wire
// segments incident to them — the standard strap-widening ECO — until the
// worst drop meets the target or the iteration budget runs out.
#include "pdn/solver.hpp"
#include "spice/netlist.hpp"

namespace lmmir::pdn {

struct StrengthenOptions {
  /// Stop when worst drop <= target_fraction * vdd.
  double target_fraction = 0.04;
  /// Nodes with drop >= hotspot_fraction * worst are "violating".
  double hotspot_fraction = 0.9;
  /// Resistance multiplier applied to upsized segments (0 < s < 1).
  double resistance_scale = 0.6;
  int max_iterations = 5;
};

struct StrengthenResult {
  spice::Netlist netlist;        // the strengthened PDN
  int iterations = 0;            // ECO rounds actually executed
  double initial_worst_drop = 0; // volts
  double final_worst_drop = 0;   // volts
  std::size_t resistors_upsized = 0;  // total across rounds
  bool met_target = false;
};

/// Run the strengthening loop. Throws like solve_ir_drop on unsolvable
/// inputs; validates option ranges.
StrengthenResult strengthen_pdn(const spice::Netlist& netlist,
                                const StrengthenOptions& opts = {});

}  // namespace lmmir::pdn
