#pragma once
// Golden static IR-drop solver.  Performs reduced modified nodal analysis:
// voltage-source-pinned nodes are eliminated (Dirichlet boundary), the
// remaining conductance system G v = i is SPD and solved with
// Jacobi-preconditioned CG.  This is the "commercial tool" stand-in that
// produces ground truth for every experiment.
#include <vector>

#include "pdn/circuit.hpp"
#include "sparse/cg.hpp"

namespace lmmir::pdn {

struct SolveOptions {
  sparse::CgOptions cg;
};

struct Solution {
  /// Voltage per netlist node (pinned nodes hold their source value;
  /// unpowered-island nodes are reported at vdd, i.e. zero drop).
  std::vector<double> node_voltage;
  /// IR drop per node: vdd - voltage.
  std::vector<double> ir_drop;
  double vdd = 0.0;
  double worst_drop = 0.0;
  std::size_t unknowns = 0;       // size of the reduced system
  std::size_t cg_iterations = 0;
  double cg_residual = 0.0;
  bool converged = false;
};

/// Solve the static IR drop of the circuit. Throws std::runtime_error when
/// the netlist has no voltage source at all.
Solution solve_ir_drop(const Circuit& circuit, const SolveOptions& opts = {});

}  // namespace lmmir::pdn
