#pragma once
// Golden static IR-drop solver.  Performs reduced modified nodal analysis:
// voltage-source-pinned nodes are eliminated (Dirichlet boundary), the
// remaining conductance system G v = i is SPD and solved with
// preconditioned CG (Jacobi / SSOR / IC0, see sparse/preconditioner.hpp).
// This is the "commercial tool" stand-in that produces ground truth for
// every experiment, so it carries per-solve telemetry (iterations,
// residual history, preconditioner setup/apply time).
#include <cstddef>
#include <vector>

#include "pdn/circuit.hpp"
#include "sparse/cg.hpp"

namespace lmmir::pdn {

struct SolveOptions {
  sparse::CgOptions cg;  // tolerance, iteration cap, preconditioner kind
};

/// The reduced MNA system of a circuit, exposed so tests and benches can
/// reach the raw SPD matrix the solver iterates on.
struct AssembledSystem {
  sparse::CsrMatrix matrix;            // reduced conductance matrix G
  std::vector<double> rhs;             // current injections i
  std::vector<std::ptrdiff_t> unknown_of;  // netlist node -> unknown (-1: none)
};

/// Stamp the reduced conductance system (pinned nodes folded into the rhs,
/// unpowered islands excluded).
AssembledSystem assemble_ir_system(const Circuit& circuit);

struct Solution {
  /// Voltage per netlist node (pinned nodes hold their source value;
  /// unpowered-island nodes are reported at vdd, i.e. zero drop).
  std::vector<double> node_voltage;
  /// IR drop per node: vdd - voltage.
  std::vector<double> ir_drop;
  double vdd = 0.0;
  double worst_drop = 0.0;
  std::size_t unknowns = 0;       // size of the reduced system
  std::size_t cg_iterations = 0;
  double cg_residual = 0.0;
  bool converged = false;
  bool breakdown = false;         // PCG degenerated (see CgResult::breakdown)
  // Solver telemetry.
  sparse::PreconditionerKind preconditioner = sparse::PreconditionerKind::Jacobi;
  std::vector<double> residual_history;  // relative residual per iteration
  double precond_setup_seconds = 0.0;
  double precond_apply_seconds = 0.0;
};

/// Solve the static IR drop of the circuit. Throws std::runtime_error when
/// the netlist has no voltage source at all.
Solution solve_ir_drop(const Circuit& circuit, const SolveOptions& opts = {});

}  // namespace lmmir::pdn
