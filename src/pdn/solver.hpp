#pragma once
// Golden static IR-drop solver.  Performs reduced modified nodal analysis:
// voltage-source-pinned nodes are eliminated (Dirichlet boundary), the
// remaining conductance system G v = i is SPD and solved with
// preconditioned CG (Jacobi / SSOR / IC0, see sparse/preconditioner.hpp).
// This is the "commercial tool" stand-in that produces ground truth for
// every experiment, so it carries per-solve telemetry (iterations,
// residual history, preconditioner setup/apply time).
#include <cstddef>
#include <vector>

#include "pdn/circuit.hpp"
#include "sparse/cg.hpp"

namespace lmmir::pdn {

class SolverContext;  // solver_context.hpp: reuse cache for repeated solves

struct SolveOptions {
  sparse::CgOptions cg;  // tolerance, iteration cap, preconditioner kind
  /// Optional reuse cache.  When set, solve_ir_drop routes through the
  /// context: topologically identical circuits get a numeric refresh on
  /// the cached sparsity pattern, a reused preconditioner, and a
  /// warm-started PCG instead of a from-scratch solve.
  SolverContext* context = nullptr;
  /// Context solves: start PCG from the previous iterate when the cached
  /// pattern matches (see conjugate_gradient's x0).
  bool warm_start = true;
  /// Context solves: keep the built preconditioner across solves whose
  /// matrix values are unchanged (identical re-solves, current/voltage
  /// load sweeps) so IC(0) setup is paid once.  A conductance change
  /// always rebuilds — a stale factor stays SPD but was measured to cost
  /// more extra PCG iterations than its setup saves.
  bool reuse_preconditioner = true;
};

/// The reduced MNA system of a circuit, exposed so tests and benches can
/// reach the raw SPD matrix the solver iterates on.
struct AssembledSystem {
  sparse::CsrMatrix matrix;            // reduced conductance matrix G
  std::vector<double> rhs;             // current injections i
  std::vector<std::ptrdiff_t> unknown_of;  // netlist node -> unknown (-1: none)
};

/// Stamp the reduced conductance system (pinned nodes folded into the rhs,
/// unpowered islands excluded).
AssembledSystem assemble_ir_system(const Circuit& circuit);

struct Solution {
  /// Voltage per netlist node (pinned nodes hold their source value;
  /// unpowered-island nodes are reported at vdd, i.e. zero drop).
  std::vector<double> node_voltage;
  /// IR drop per node: vdd - voltage.
  std::vector<double> ir_drop;
  double vdd = 0.0;
  double worst_drop = 0.0;
  std::size_t unknowns = 0;       // size of the reduced system
  std::size_t cg_iterations = 0;
  double cg_residual = 0.0;
  bool converged = false;
  bool breakdown = false;         // PCG degenerated (see CgResult::breakdown)
  // Solver telemetry.
  sparse::PreconditionerKind preconditioner = sparse::PreconditionerKind::Jacobi;
  std::vector<double> residual_history;  // relative residual per iteration
  double precond_setup_seconds = 0.0;
  double precond_apply_seconds = 0.0;
  // Context-reuse telemetry (always false/1.0 on the from-scratch path).
  bool reused_pattern = false;   // numeric refresh on a cached pattern
  bool warm_started = false;     // PCG started from the previous iterate
  double initial_residual = 1.0; // relative residual before iteration 1
};

/// Solve the static IR drop of the circuit. Throws std::runtime_error when
/// the netlist has no voltage source at all.  With opts.context set, the
/// solve goes through the SolverContext reuse cache (see solver_context.hpp).
Solution solve_ir_drop(const Circuit& circuit, const SolveOptions& opts = {});

namespace detail {
/// Expand a reduced-system CG result into the per-node Solution (shared by
/// the from-scratch path and SolverContext).
Solution finish_solution(const Circuit& circuit, const AssembledSystem& sys,
                         sparse::CgResult cg);
}  // namespace detail

}  // namespace lmmir::pdn
