#include "pdn/circuit.hpp"

#include <numeric>
#include <stdexcept>

#include "util/log.hpp"

namespace lmmir::pdn {

namespace {

// Union-find over node ids.
class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

Circuit::Circuit(const spice::Netlist& netlist) : netlist_(&netlist) {
  const std::size_t n = netlist.node_count();
  pinned_mask_.assign(n, 0);
  pinned_volts_.assign(n, 0.0);

  for (const auto& e : netlist.elements()) {
    if (e.type != spice::ElementType::VoltageSource) continue;
    // PDN convention: V <power-node> 0 <vdd>  (either terminal order).
    spice::NodeId power = e.node1;
    if (power == spice::kGroundNode) power = e.node2;
    if (power == spice::kGroundNode)
      throw std::runtime_error("Circuit: voltage source with both terminals grounded");
    if (e.node1 != spice::kGroundNode && e.node2 != spice::kGroundNode)
      throw std::runtime_error(
          "Circuit: voltage source must have one ground terminal (PDN netlist)");
    const auto idx = static_cast<std::size_t>(power);
    if (!pinned_mask_[idx]) {
      pinned_mask_[idx] = 1;
      pinned_volts_[idx] = e.value;
      pinned_.push_back({power, e.value});
    }
    vdd_ = std::max(vdd_, e.value);
  }

  // Connected components over resistor edges.
  DisjointSet ds(n);
  for (const auto& e : netlist.elements()) {
    if (e.type != spice::ElementType::Resistor) continue;
    if (e.node1 == spice::kGroundNode || e.node2 == spice::kGroundNode)
      continue;  // resistors to ground do not merge power-net components
    ds.unite(static_cast<std::size_t>(e.node1),
             static_cast<std::size_t>(e.node2));
  }
  component_.assign(n, -1);
  std::vector<int> root_to_comp(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r = ds.find(i);
    if (root_to_comp[r] < 0) root_to_comp[r] = component_count_++;
    component_[i] = root_to_comp[r];
  }
  powered_.assign(static_cast<std::size_t>(component_count_), 0);
  for (const auto& p : pinned_)
    powered_[static_cast<std::size_t>(component_[static_cast<std::size_t>(p.node)])] = 1;

  const std::size_t orphans = unpowered_node_count();
  if (orphans > 0)
    util::log_warn("Circuit: ", orphans,
                   " node(s) in islands with no voltage source");
}

bool Circuit::is_pinned(spice::NodeId id) const {
  return id != spice::kGroundNode &&
         pinned_mask_[static_cast<std::size_t>(id)] != 0;
}

double Circuit::pinned_voltage(spice::NodeId id) const {
  return pinned_volts_.at(static_cast<std::size_t>(id));
}

bool Circuit::component_powered(spice::NodeId id) const {
  if (id == spice::kGroundNode) return true;
  return powered_[static_cast<std::size_t>(
             component_[static_cast<std::size_t>(id)])] != 0;
}

std::size_t Circuit::unpowered_node_count() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < component_.size(); ++i)
    if (!powered_[static_cast<std::size_t>(component_[i])]) ++n;
  return n;
}

}  // namespace lmmir::pdn
