#pragma once
// Reusable solver state for repeated IR-drop solves.
//
// Every workload that matters solves near-identical PDN systems over and
// over: the ECO loop in pdn::strengthen_pdn perturbs resistor values
// between rounds, corpus generation sweeps current loads over a fixed
// grid, and benchmark suites re-solve the same topologies.  A cold
// solve_ir_drop pays full price each time — node classification, COO
// stamping, CSR construction, preconditioner setup, and a zero-start PCG.
//
// SolverContext caches everything that survives a value-only change:
//
//   * the reduced-system sparsity pattern and unknown mapping (rebuilt
//     only when the element topology changes),
//   * a numeric-refresh "stamp plan" mapping each netlist element to the
//     CSR value slots / rhs entries it writes, so a value change is an
//     O(nnz) in-place update instead of a re-assembly — and a refresh
//     that only moved current/voltage sources skips the matrix refill
//     entirely (rhs-only update),
//   * the built preconditioner, reused for every solve whose MATRIX
//     values are unchanged (load sweeps, identical re-solves) and rebuilt
//     when conductances moved: a stale IC(0) factor stays SPD but was
//     measured to cost more extra PCG iterations than its setup saves on
//     the ECO workload, so staleness is never carried,
//   * the previous iterate, used to warm-start PCG on the next solve.
//
// Determinism: the refresh path re-stamps values in fixed element order
// and the PCG kernels keep their fixed-block contract, so repeated solves
// are bitwise reproducible run-to-run for any thread count.  Refresh and
// from-scratch assembly may differ in floating-point summation order, so
// their SOLUTIONS agree to solver tolerance, not bitwise.
//
// A context is single-threaded state (like the preconditioners it owns):
// use one instance per concurrently-running solve loop.
#include <cstddef>
#include <memory>
#include <vector>

#include "pdn/circuit.hpp"
#include "pdn/solver.hpp"
#include "sparse/preconditioner.hpp"
#include "spice/netlist.hpp"

namespace lmmir::pdn {

/// Lifetime counters of a SolverContext (telemetry for benches and logs).
struct SolverContextStats {
  std::size_t solves = 0;
  std::size_t rebuilds = 0;      // full assemblies (first solve + topology changes)
  std::size_t refreshes = 0;     // numeric refreshes on the cached pattern
  std::size_t matrix_refreshes = 0;  // refreshes that had to refill values
                                     // (the rest were rhs-only updates)
  std::size_t precond_builds = 0;
  std::size_t precond_refreshes = 0;  // numeric-only refactors on the kept
                                      // structure (AMG aggregates, Schwarz
                                      // partition) instead of full rebuilds
  std::size_t warm_starts = 0;
  std::size_t total_cg_iterations = 0;
  double assemble_seconds = 0.0;       // full assemblies + plan builds
  double refresh_seconds = 0.0;        // in-place value updates
  double precond_setup_seconds = 0.0;

  /// Field-wise sum (aggregation across per-stripe contexts).
  SolverContextStats& operator+=(const SolverContextStats& o) {
    solves += o.solves;
    rebuilds += o.rebuilds;
    refreshes += o.refreshes;
    matrix_refreshes += o.matrix_refreshes;
    precond_builds += o.precond_builds;
    precond_refreshes += o.precond_refreshes;
    warm_starts += o.warm_starts;
    total_cg_iterations += o.total_cg_iterations;
    assemble_seconds += o.assemble_seconds;
    refresh_seconds += o.refresh_seconds;
    precond_setup_seconds += o.precond_setup_seconds;
    return *this;
  }
};

class SolverContext {
 public:
  SolverContext() = default;
  /// Fix the solve configuration for the no-options solve() overload.
  explicit SolverContext(SolveOptions opts) : opts_(std::move(opts)) {}

  SolverContext(const SolverContext&) = delete;
  SolverContext& operator=(const SolverContext&) = delete;

  /// Solve the circuit, reusing the cached pattern / preconditioner /
  /// iterate when the circuit is topologically identical to the previous
  /// one (same nodes, same elements up to values).  Falls back to a full
  /// rebuild otherwise.  Throws like solve_ir_drop.
  Solution solve(const Circuit& circuit) { return solve(circuit, opts_); }
  /// Same, with explicit options (opts.context is ignored — this IS the
  /// context).  Changing the preconditioner kind between calls triggers a
  /// preconditioner rebuild on the cached pattern.
  Solution solve(const Circuit& circuit, const SolveOptions& opts);

  const SolverContextStats& stats() const { return stats_; }
  const SolveOptions& options() const { return opts_; }

  /// Drop every cache (pattern, plan, preconditioner, iterate).  The next
  /// solve is a full rebuild; stats are preserved.
  void invalidate();

 private:
  bool topology_matches(const Circuit& circuit) const;
  void rebuild(const Circuit& circuit);
  void refresh(const Circuit& circuit);
  void build_stamp_plan(const Circuit& circuit);

  SolveOptions opts_;
  SolverContextStats stats_;

  // Cached reduced system + the topology fingerprint it was built for.
  AssembledSystem sys_;
  bool cached_ = false;
  std::size_t node_count_ = 0;
  struct ElementTopo {
    spice::ElementType type;
    spice::NodeId node1;
    spice::NodeId node2;
  };
  std::vector<ElementTopo> topo_;
  std::vector<double> element_values_;  // values at the last (re)stamp:
                                        // detects rhs-only refreshes
  std::size_t matrix_version_ = 0;      // bumped whenever values_mut changes
  std::size_t precond_version_ = 0;     // matrix version precond_ was built for

  // Numeric-refresh plan: value slots / rhs entries per netlist element.
  struct ConductanceStamp {            // vals[slot] += sign / R
    std::size_t slot;
    std::size_t element;
    double sign;                       // +1 diagonal, -1 off-diagonal
  };
  struct PinnedRhsStamp {              // rhs[row] += V(pinned) / R
    std::size_t row;
    std::size_t element;
    spice::NodeId pinned_node;
  };
  struct CurrentRhsStamp {             // rhs[row] += sign * I
    std::size_t row;
    std::size_t element;
    double sign;
  };
  std::vector<ConductanceStamp> g_stamps_;
  std::vector<PinnedRhsStamp> pin_stamps_;
  std::vector<CurrentRhsStamp> i_stamps_;

  std::unique_ptr<sparse::Preconditioner> precond_;
  std::vector<double> last_x_;  // previous iterate, reduced-system order
};

/// Golden-solve a batch of independent circuits across the runtime pool,
/// one SolverContext per worker stripe (the corpus-generation workload:
/// many cases, repeated topologies benefiting from refresh + warm
/// starts).
///
/// The batch is split into at most `stripes` contiguous index blocks;
/// each block processes its cases in index order through a private
/// SolverContext, and blocks fan out over runtime::global_pool().
/// Because the stripe partition depends only on the case count — never
/// on the thread count — every context's reuse chain (pattern refresh,
/// preconditioner reuse, PCG warm start) is identical no matter how many
/// threads execute it: results are bitwise reproducible for any
/// LMMIR_THREADS, including fully serial.
///
/// `opts.context` is ignored (each stripe owns its context).  When
/// `aggregate` is non-null the per-stripe context stats are summed into
/// it.  Throws like solve_ir_drop (the first stripe failure wins).
std::vector<Solution> solve_ir_drop_batch(
    const std::vector<const Circuit*>& circuits, const SolveOptions& opts,
    std::size_t stripes = 8, SolverContextStats* aggregate = nullptr);

}  // namespace lmmir::pdn
