#include "pdn/solver.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "pdn/solver_context.hpp"
#include "spice/netlist.hpp"
#include "util/log.hpp"

namespace lmmir::pdn {

using spice::ElementType;
using spice::kGroundNode;
using spice::NodeId;

AssembledSystem assemble_ir_system(const Circuit& circuit) {
  const auto& nl = circuit.netlist();
  const std::size_t n = nl.node_count();
  if (circuit.pinned().empty())
    throw std::runtime_error("solve_ir_drop: netlist has no voltage source");

  AssembledSystem sys;
  // Map solvable free nodes to unknown indices.
  sys.unknown_of.assign(n, -1);
  std::size_t n_unknown = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId id = static_cast<NodeId>(i);
    if (circuit.is_pinned(id)) continue;
    if (!circuit.component_powered(id)) continue;
    sys.unknown_of[i] = static_cast<std::ptrdiff_t>(n_unknown++);
  }

  sparse::CooBuilder coo(n_unknown);
  sys.rhs.assign(n_unknown, 0.0);

  auto stamp_conductance = [&](NodeId a, NodeId b, double g) {
    const bool a_ground = a == kGroundNode;
    const bool b_ground = b == kGroundNode;
    const std::ptrdiff_t ua =
        a_ground ? -1 : sys.unknown_of[static_cast<std::size_t>(a)];
    const std::ptrdiff_t ub =
        b_ground ? -1 : sys.unknown_of[static_cast<std::size_t>(b)];
    const bool a_pinned = !a_ground && circuit.is_pinned(a);
    const bool b_pinned = !b_ground && circuit.is_pinned(b);

    if (ua >= 0) {
      coo.add(static_cast<std::size_t>(ua), static_cast<std::size_t>(ua), g);
      if (ub >= 0) coo.add(static_cast<std::size_t>(ua), static_cast<std::size_t>(ub), -g);
      else if (b_pinned) sys.rhs[static_cast<std::size_t>(ua)] += g * circuit.pinned_voltage(b);
      // b at ground contributes nothing to the rhs.
    }
    if (ub >= 0) {
      coo.add(static_cast<std::size_t>(ub), static_cast<std::size_t>(ub), g);
      if (ua >= 0) coo.add(static_cast<std::size_t>(ub), static_cast<std::size_t>(ua), -g);
      else if (a_pinned) sys.rhs[static_cast<std::size_t>(ub)] += g * circuit.pinned_voltage(a);
    }
  };

  for (const auto& e : nl.elements()) {
    switch (e.type) {
      case ElementType::Resistor:
        stamp_conductance(e.node1, e.node2, 1.0 / e.value);
        break;
      case ElementType::CurrentSource: {
        // SPICE convention: e.value amps flow from node1 through the source
        // to node2, i.e. the source removes current from node1's KCL.
        const NodeId from = e.node1;
        const NodeId to = e.node2;
        if (from != kGroundNode) {
          const auto u = sys.unknown_of[static_cast<std::size_t>(from)];
          if (u >= 0) sys.rhs[static_cast<std::size_t>(u)] -= e.value;
        }
        if (to != kGroundNode) {
          const auto u = sys.unknown_of[static_cast<std::size_t>(to)];
          if (u >= 0) sys.rhs[static_cast<std::size_t>(u)] += e.value;
        }
        break;
      }
      case ElementType::VoltageSource:
        break;  // realized as Dirichlet pins by Circuit
    }
  }

  sys.matrix = sparse::CsrMatrix::from_coo(coo);
  return sys;
}

namespace detail {

Solution finish_solution(const Circuit& circuit, const AssembledSystem& sys,
                         sparse::CgResult cg) {
  if (!cg.converged)
    util::log_warn("solve_ir_drop: CG (", sparse::to_string(cg.preconditioner),
                   ") stopped at residual ", cg.residual, " after ",
                   cg.iterations, " iterations",
                   cg.breakdown ? " [breakdown]" : "");
  const std::size_t n = circuit.netlist().node_count();
  Solution sol;
  sol.vdd = circuit.vdd();
  sol.unknowns = sys.matrix.dim();
  sol.cg_iterations = cg.iterations;
  sol.cg_residual = cg.residual;
  sol.converged = cg.converged;
  sol.breakdown = cg.breakdown;
  sol.preconditioner = cg.preconditioner;
  sol.residual_history = std::move(cg.residual_history);
  sol.precond_setup_seconds = cg.precond_setup_seconds;
  sol.precond_apply_seconds = cg.precond_apply_seconds;
  sol.warm_started = cg.warm_started;
  sol.initial_residual = cg.initial_residual;
  sol.node_voltage.assign(n, sol.vdd);
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId id = static_cast<NodeId>(i);
    if (circuit.is_pinned(id))
      sol.node_voltage[i] = circuit.pinned_voltage(id);
    else if (sys.unknown_of[i] >= 0)
      sol.node_voltage[i] = cg.x[static_cast<std::size_t>(sys.unknown_of[i])];
    // unpowered islands stay at vdd (zero drop), matching Circuit's warning
  }
  sol.ir_drop.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    sol.ir_drop[i] = sol.vdd - sol.node_voltage[i];
    sol.worst_drop = std::max(sol.worst_drop, sol.ir_drop[i]);
  }
  return sol;
}

}  // namespace detail

Solution solve_ir_drop(const Circuit& circuit, const SolveOptions& opts) {
  if (opts.context) return opts.context->solve(circuit, opts);
  AssembledSystem sys = assemble_ir_system(circuit);
  auto cg = sparse::conjugate_gradient(sys.matrix, sys.rhs, opts.cg);
  return detail::finish_solution(circuit, sys, std::move(cg));
}

}  // namespace lmmir::pdn
