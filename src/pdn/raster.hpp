#pragma once
// Rasterization of per-node solver results onto the 1 µm feature-map grid,
// producing the ground-truth IR-drop map the models regress against.
#include "grid/grid2d.hpp"
#include "pdn/solver.hpp"
#include "spice/netlist.hpp"

namespace lmmir::pdn {

struct RasterOptions {
  /// Only nodes with layer <= max_layer contribute (0 = all layers).
  /// The contest ground truth is reported at the standard-cell rail (m1).
  int max_layer = 1;
  /// Combine multiple nodes per pixel with max (true) or mean (false).
  bool combine_max = true;
  /// Diffuse values into pixels that received no node (hole filling), so
  /// the map is dense like the contest CSVs.
  bool fill_holes = true;
};

/// Rasterize per-node IR drop to the netlist's pixel shape.
grid::Grid2D rasterize_ir_drop(const spice::Netlist& netlist,
                               const Solution& solution,
                               const RasterOptions& opts = {});

/// Rasterize an arbitrary per-node scalar field (voltage, drop, ...).
grid::Grid2D rasterize_node_values(const spice::Netlist& netlist,
                                   const std::vector<double>& values,
                                   const RasterOptions& opts = {});

/// Fill zero/unassigned pixels by iterative neighbor averaging; `assigned`
/// marks pixels that already have a value. Exposed for testing.
void fill_holes_by_diffusion(grid::Grid2D& g, const std::vector<char>& assigned);

}  // namespace lmmir::pdn
