#include "core/pipeline.hpp"

#include <cstdlib>

#include "features/feature_context.hpp"
#include "pdn/solver_context.hpp"
#include "sparse/precision.hpp"
#include "sparse/preconditioner.hpp"
#include "spice/parser.hpp"
#include "util/log.hpp"

namespace lmmir::core {

namespace {
long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (!v) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') {
    util::log_warn("ignoring malformed ", name, "='", v, "'");
    return fallback;
  }
  return parsed;
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (!v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') {
    util::log_warn("ignoring malformed ", name, "='", v, "'");
    return fallback;
  }
  return parsed;
}
}  // namespace

PipelineOptions PipelineOptions::from_environment() {
  PipelineOptions o;
  o.sample.input_side =
      static_cast<std::size_t>(env_long("LMMIR_INPUT_SIDE", 48));
  o.sample.pc_grid = static_cast<int>(env_long("LMMIR_PC_GRID", 8));
  o.suite_scale = env_double("LMMIR_SCALE", 0.09);
  o.fake_cases = static_cast<int>(env_long("LMMIR_FAKE_CASES", 16));
  o.real_cases = static_cast<int>(env_long("LMMIR_REAL_CASES", 6));
  o.train.finetune_epochs = static_cast<int>(env_long("LMMIR_EPOCHS", 55));
  o.train.pretrain_epochs =
      static_cast<int>(env_long("LMMIR_PRETRAIN_EPOCHS", 3));
  o.seed = static_cast<std::uint64_t>(env_long("LMMIR_SEED", 7));
  o.train.seed = o.seed + 1;
  o.sample.solver_precond =
      sparse::preconditioner_kind_from_env(o.sample.solver_precond);
  o.sample.solver_precision =
      sparse::solver_precision_from_env(o.sample.solver_precision);
  o.solver_context_reuse = env_long("LMMIR_SOLVER_REUSE", 1) != 0;
  o.feature_context_reuse = env_long("LMMIR_FEATURE_REUSE", 1) != 0;
  o.tensor_arena = env_long("LMMIR_TENSOR_ARENA", 1) != 0;
  o.inference_plan = env_long("LMMIR_INFER_PLAN", 0) != 0;
  o.session_cache_sessions = static_cast<std::size_t>(
      env_long("LMMIR_SESSION_CACHE",
               static_cast<long>(o.session_cache_sessions)));
  o.session_cache_bytes =
      static_cast<std::size_t>(env_long(
          "LMMIR_SESSION_CACHE_MB",
          static_cast<long>(o.session_cache_bytes >> 20)))
      << 20;
  if (const char* dir = std::getenv("LMMIR_CORPUS_DIR")) o.corpus_dir = dir;
  o.prefetch = env_long("LMMIR_PREFETCH", 1) != 0;
  return o;
}

namespace {
void log_context_stats(const char* what, const pdn::SolverContext& ctx) {
  const auto& st = ctx.stats();
  util::log_stats("solver_context",
                  {{"phase", what},
                   {"solves", std::to_string(st.solves)},
                   {"rebuilds", std::to_string(st.rebuilds)},
                   {"refreshes", std::to_string(st.refreshes)},
                   {"precond_builds", std::to_string(st.precond_builds)},
                   {"warm_starts", std::to_string(st.warm_starts)},
                   {"cg_iterations", std::to_string(st.total_cg_iterations)}});
}

void log_feature_stats(const char* what, const feat::FeatureContext& ctx) {
  const auto& st = ctx.stats();
  util::log_stats(
      "feature_context",
      {{"phase", what},
       {"extractions", std::to_string(st.extractions)},
       {"classify_passes", std::to_string(st.classify_passes)},
       {"channels_computed", std::to_string(st.channels_computed)},
       {"channels_reused", std::to_string(st.channels_reused)},
       {"revision_hits", std::to_string(st.revision_hits)}});
}
}  // namespace

data::Dataset Pipeline::build_training_dataset() const {
  data::DatasetOptions d;
  d.sample = opts_.sample;
  d.fake_cases = opts_.fake_cases;
  d.real_cases = opts_.real_cases;
  d.fake_oversample = opts_.fake_oversample;
  d.real_oversample = opts_.real_oversample;
  d.suite_scale = opts_.suite_scale;
  d.seed = opts_.seed;
  pdn::SolverContext solver_ctx;
  feat::FeatureContext feature_ctx;
  if (opts_.solver_context_reuse) d.sample.solver_context = &solver_ctx;
  if (opts_.feature_context_reuse) d.sample.feature_context = &feature_ctx;
  data::Dataset ds = data::build_training_dataset(d);
  if (opts_.solver_context_reuse) log_context_stats("dataset", solver_ctx);
  if (opts_.feature_context_reuse) log_feature_stats("dataset", feature_ctx);
  return ds;
}

data::CorpusManifest Pipeline::export_training_corpus(
    const std::string& dir, std::size_t samples_per_shard) const {
  data::DatasetOptions d;
  d.sample = opts_.sample;
  d.fake_cases = opts_.fake_cases;
  d.real_cases = opts_.real_cases;
  d.fake_oversample = opts_.fake_oversample;
  d.real_oversample = opts_.real_oversample;
  d.suite_scale = opts_.suite_scale;
  d.seed = opts_.seed;
  pdn::SolverContext solver_ctx;
  feat::FeatureContext feature_ctx;
  if (opts_.solver_context_reuse) d.sample.solver_context = &solver_ctx;
  if (opts_.feature_context_reuse) d.sample.feature_context = &feature_ctx;
  const data::CorpusManifest manifest =
      data::spill_training_dataset(d, dir, samples_per_shard);
  if (opts_.solver_context_reuse) log_context_stats("corpus", solver_ctx);
  if (opts_.feature_context_reuse) log_feature_stats("corpus", feature_ctx);
  return manifest;
}

std::unique_ptr<data::StreamingLoader> Pipeline::make_streaming_loader(
    const std::string& dir) const {
  const std::string& corpus_dir = dir.empty() ? opts_.corpus_dir : dir;
  if (corpus_dir.empty())
    throw std::invalid_argument(
        "make_streaming_loader: no corpus directory (set LMMIR_CORPUS_DIR "
        "or pass one)");
  auto corpus = std::make_unique<data::ShardCorpus>(corpus_dir);
  return std::make_unique<data::StreamingLoader>(
      std::move(corpus), train::provider_options(opts_.train, opts_.prefetch));
}

std::vector<data::Sample> Pipeline::build_hidden_testset() const {
  data::SampleOptions sample = opts_.sample;
  pdn::SolverContext solver_ctx;
  feat::FeatureContext feature_ctx;
  if (opts_.solver_context_reuse) sample.solver_context = &solver_ctx;
  if (opts_.feature_context_reuse) sample.feature_context = &feature_ctx;
  auto tests = data::build_table2_testset(sample, opts_.suite_scale);
  if (opts_.solver_context_reuse) log_context_stats("testset", solver_ctx);
  if (opts_.feature_context_reuse) log_feature_stats("testset", feature_ctx);
  return tests;
}

data::Sample Pipeline::sample_from_netlist_file(const std::string& path) const {
  const spice::Netlist nl = spice::parse_netlist_file(path);
  return data::make_sample(nl, path, opts_.sample);
}

std::unique_ptr<serve::InferenceServer> Pipeline::make_server(
    std::shared_ptr<models::IrModel> model, serve::ServeOptions options) const {
  options.use_tensor_arena = options.use_tensor_arena && opts_.tensor_arena;
  // OR, not AND: plans are opt-in (default off), so either the pipeline
  // option or the per-server option turning them on should win.
  options.use_inference_plan =
      options.use_inference_plan || opts_.inference_plan;
  return std::make_unique<serve::InferenceServer>(std::move(model), options);
}

std::unique_ptr<serve::SessionServer> Pipeline::make_session_server(
    std::shared_ptr<models::IrModel> model,
    serve::SessionServeOptions options) const {
  options.serve.use_tensor_arena =
      options.serve.use_tensor_arena && opts_.tensor_arena;
  options.serve.use_inference_plan =
      options.serve.use_inference_plan || opts_.inference_plan;
  options.sample = opts_.sample;
  // Per-session FeatureContexts are owned by the cache; no shared solver
  // either (serving never golden-solves).
  options.sample.solver_context = nullptr;
  options.sample.feature_context = nullptr;
  options.max_sessions = opts_.session_cache_sessions;
  options.max_resident_bytes = opts_.session_cache_bytes;
  return std::make_unique<serve::SessionServer>(std::move(model), options);
}

std::vector<train::EvalCase> Pipeline::train_and_evaluate(
    models::IrModel& model, const data::Dataset& dataset,
    const std::vector<data::Sample>& tests, float extra_augmentation) const {
  train::TrainConfig cfg = opts_.train;
  data::Dataset ds = dataset;  // cheap: samples share tensor storage
  if (extra_augmentation > 1.0f) {
    // Model-specific augmented regime (the 2nd-place team's extra data):
    // extend the epoch list proportionally.
    const std::size_t extra = static_cast<std::size_t>(
        static_cast<float>(dataset.epoch.size()) * (extra_augmentation - 1.0f));
    util::Rng rng(opts_.seed + 33);
    for (std::size_t i = 0; i < extra; ++i)
      ds.epoch.push_back(dataset.epoch[static_cast<std::size_t>(
          rng.randint(0, static_cast<int>(dataset.epoch.size()) - 1))]);
  }
  train::fit(model, ds, cfg);
  return train::evaluate_testset(model, tests);
}

}  // namespace lmmir::core
