#pragma once
// High-level one-call API tying the whole system together.  Examples and
// benchmark binaries go through this facade; downstream users can too:
//
//   lmmir::core::Pipeline pipe;                  // defaults scale to 1 core
//   auto model  = lmmir::models::make_model("LMM-IR");
//   auto data   = pipe.build_training_dataset();
//   lmmir::train::fit(*model, data, pipe.train_config());
//   for (auto& row : pipe.evaluate_on_hidden_cases(*model)) ...
//
// Environment overrides (read once at construction):
//   LMMIR_INPUT_SIDE, LMMIR_PC_GRID, LMMIR_SCALE, LMMIR_FAKE_CASES,
//   LMMIR_REAL_CASES, LMMIR_EPOCHS, LMMIR_PRETRAIN_EPOCHS, LMMIR_SEED,
//   LMMIR_PRECOND (golden-solver preconditioner:
//   none|jacobi|ssor|ic0|amg|dd),
//   LMMIR_SOLVER_PRECISION (golden-solver arithmetic: double|mixed; see
//   docs/SOLVER.md),
//   LMMIR_SOLVER_REUSE (0 disables the shared SolverContext during
//   dataset / testset golden solves),
//   LMMIR_FEATURE_REUSE (0 disables the shared feat::FeatureContext during
//   dataset / testset feature extraction; see docs/FEATURES.md),
//   LMMIR_TENSOR_ARENA (0 disables arena-backed tensor recycling on the
//   inference path; see docs/TENSOR.md),
//   LMMIR_INFER_PLAN (1 enables ahead-of-time inference plans — record
//   once per input shape, replay with fused/SIMD kernels through
//   preplanned storage; see docs/PLAN.md),
//   LMMIR_SESSION_CACHE (max cached sessions in make_session_server),
//   LMMIR_SESSION_CACHE_MB (session-cache memory budget, MiB; see
//   docs/SERVING.md),
//   LMMIR_CORPUS_DIR (shard-corpus directory for out-of-core training;
//   see docs/DATA.md),
//   LMMIR_PREFETCH (0 disables the streaming loader's async prefetch;
//   results are bitwise identical either way).
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "data/loader.hpp"
#include "models/common.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "train/trainer.hpp"

namespace lmmir::core {

struct PipelineOptions {
  data::SampleOptions sample;      // input side + token grid
  double suite_scale = 0.125;      // Table-II linear scale
  int fake_cases = 12;
  int real_cases = 4;
  int fake_oversample = 2;
  int real_oversample = 4;
  train::TrainConfig train;
  std::uint64_t seed = 7;
  /// Share one pdn::SolverContext across the golden solves of a dataset /
  /// testset build (pattern + preconditioner reuse and warm starts for
  /// consecutive same-topology cases; distinct topologies rebuild
  /// automatically).  Env: LMMIR_SOLVER_REUSE=0 to disable.
  bool solver_context_reuse = true;
  /// Share one feat::FeatureContext across the feature extractions of a
  /// dataset / testset build (topology-invariant channels reused for
  /// consecutive same-topology cases; bitwise identical either way).
  /// Env: LMMIR_FEATURE_REUSE=0 to disable.
  bool feature_context_reuse = true;
  /// Recycle inference tensors through per-worker arenas in the servers
  /// this pipeline creates (zero steady-state allocations on the forward
  /// path; bitwise-identical results).  Env: LMMIR_TENSOR_ARENA=0 to
  /// disable.  make_server() ANDs this with ServeOptions::
  /// use_tensor_arena, so either knob can switch arenas off.
  bool tensor_arena = true;
  /// Replay ahead-of-time inference plans in the servers this pipeline
  /// creates (record one eager pass per batch shape, then replay it with
  /// fused/SIMD kernels through preplanned flat-arena storage; bitwise
  /// identical to eager — see docs/PLAN.md).  Opt-in, so the default is
  /// off; env: LMMIR_INFER_PLAN=1 to enable.  make_server() ORs this
  /// with ServeOptions::use_inference_plan, so either knob can switch
  /// plans on.
  bool inference_plan = false;
  /// Session-cache bounds for make_session_server (raw-netlist serving):
  /// max concurrently cached tenant sessions and the memory budget over
  /// their estimated resident bytes.  Env: LMMIR_SESSION_CACHE,
  /// LMMIR_SESSION_CACHE_MB (0 = unbounded; see docs/SERVING.md).
  std::size_t session_cache_sessions = 64;
  std::size_t session_cache_bytes = 256ull << 20;
  /// Shard-corpus directory for out-of-core training (docs/DATA.md).
  /// Empty (the default) keeps the in-memory Dataset path; non-empty
  /// points make_streaming_loader() (and the training examples) at an
  /// existing corpus written by export_training_corpus() or
  /// examples/export_corpus.  Env: LMMIR_CORPUS_DIR.
  std::string corpus_dir;
  /// Async double-buffered batch prefetch in the streaming loader (next
  /// batch stacked on a pool worker while the current step runs).
  /// Bitwise-identical results on or off.  Env: LMMIR_PREFETCH=0 to
  /// disable.
  bool prefetch = true;

  /// Defaults overridden from LMMIR_* environment variables.
  static PipelineOptions from_environment();
};

class Pipeline {
 public:
  Pipeline() : Pipeline(PipelineOptions::from_environment()) {}
  explicit Pipeline(PipelineOptions options) : opts_(std::move(options)) {}

  const PipelineOptions& options() const { return opts_; }
  const train::TrainConfig& train_config() const { return opts_.train; }

  /// Generate + featurize + golden-solve the training pool.
  data::Dataset build_training_dataset() const;

  /// Spill the training pool to a shard corpus under `dir` instead of
  /// holding it resident: same cases, bitwise-identical samples, but the
  /// memory footprint is one sample at a time (docs/DATA.md).
  data::CorpusManifest export_training_corpus(
      const std::string& dir, std::size_t samples_per_shard = 64) const;

  /// Open a shard corpus (defaults to options().corpus_dir) as a
  /// streaming batch provider wired to this pipeline's train config and
  /// prefetch knob; feed it to train::fit.  The returned loader owns the
  /// corpus mapping.
  std::unique_ptr<data::StreamingLoader> make_streaming_loader(
      const std::string& dir = "") const;

  /// The 10 hidden Table-II cases.
  std::vector<data::Sample> build_hidden_testset() const;

  /// Build a sample from an external SPICE netlist file.
  data::Sample sample_from_netlist_file(const std::string& path) const;

  /// Train (two-stage) and evaluate on the hidden cases in one call.
  std::vector<train::EvalCase> train_and_evaluate(
      models::IrModel& model, const data::Dataset& dataset,
      const std::vector<data::Sample>& tests,
      float extra_augmentation = 1.0f) const;

  /// Put a model behind a dynamic-batching inference server (takes shared
  /// ownership; the model is switched to eval mode).  Batch-size /
  /// wait-window / dispatcher-count defaults come from `options`; override
  /// any of them before heavy traffic.
  std::unique_ptr<serve::InferenceServer> make_server(
      std::shared_ptr<models::IrModel> model,
      serve::ServeOptions options = {}) const;

  /// Put a model behind an end-to-end raw-netlist session server: clients
  /// send SPICE text or value-edit deltas keyed by session id; feature
  /// extraction runs server-side with per-session warm reuse (see
  /// serve/session.hpp and docs/SERVING.md).  Featurization options
  /// (input side, token grid) and the session-cache bounds come from this
  /// pipeline's options; `options.sample` is overwritten accordingly.
  std::unique_ptr<serve::SessionServer> make_session_server(
      std::shared_ptr<models::IrModel> model,
      serve::SessionServeOptions options = {}) const;

 private:
  PipelineOptions opts_;
};

}  // namespace lmmir::core
