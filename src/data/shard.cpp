#include "data/shard.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define LMMIR_SHARD_HAVE_MMAP 1
#endif

#include "util/log.hpp"

namespace lmmir::data {

namespace {

constexpr std::size_t kHeaderBytes = 64;
constexpr std::size_t kIndexEntryBytes = 128;
constexpr std::uint32_t kFlagLittleEndianFloats = 1u;

// ---- little-endian scalar (de)serialization ---------------------------
// The format is defined little-endian; every supported target is, so the
// codecs are memcpy with a static guard rather than byte swizzling.
static_assert(sizeof(float) == 4 && sizeof(double) == 8,
              "shard format assumes IEEE-754 float/double");

template <typename T>
void put(std::vector<unsigned char>& buf, T v) {
  const auto* p = reinterpret_cast<const unsigned char*>(&v);
  buf.insert(buf.end(), p, p + sizeof(T));
}

template <typename T>
T get(const unsigned char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("shard: " + path + ": " + what);
}

void write_all(std::FILE* f, const void* data, std::size_t n,
               const std::string& path) {
  if (n && std::fwrite(data, 1, n, f) != n)
    fail(path, "short write (disk full?)");
}

std::uint64_t fnv_floats(std::uint64_t h, const std::vector<float>& v) {
  return v.empty() ? h : fnv1a_bytes(v.data(), v.size() * sizeof(float), h);
}

}  // namespace

std::uint64_t fnv1a_bytes(const void* data, std::size_t n,
                          std::uint64_t seed) {
  std::uint64_t h = seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// ---------------------------------------------------------- ShardWriter

ShardWriter::ShardWriter(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (!file_) fail(path_, "cannot open for writing");
  // Reserve the header slot; finalize() rewrites it with real values, so
  // a crashed writer leaves zeros the reader rejects as bad magic.
  const unsigned char zeros[kHeaderBytes] = {};
  write_all(file_, zeros, kHeaderBytes, path_);
  offset_ = kHeaderBytes;
}

ShardWriter::~ShardWriter() {
  try {
    finalize();
  } catch (const std::exception& e) {
    util::log_warn("shard: finalize of ", path_, " failed: ", e.what());
    if (file_) std::fclose(file_);
    file_ = nullptr;
  }
}

void ShardWriter::append(const Sample& sample, std::uint32_t oversample) {
  if (finalized_) fail(path_, "append after finalize");
  if (sample.circuit.ndim() != 3 || sample.tokens.ndim() != 2 ||
      sample.target.ndim() != 3)
    fail(path_, "sample '" + sample.name + "' has unexpected tensor ranks");
  if (oversample == 0) fail(path_, "oversample must be >= 1");

  Entry e;
  e.meta.name = sample.name;
  e.meta.oversample = oversample;
  for (int d = 0; d < 3; ++d) {
    e.meta.circuit_shape[d] =
        static_cast<std::uint32_t>(sample.circuit.dim(d));
    e.meta.target_shape[d] = static_cast<std::uint32_t>(sample.target.dim(d));
  }
  for (int d = 0; d < 2; ++d)
    e.meta.tokens_shape[d] = static_cast<std::uint32_t>(sample.tokens.dim(d));
  e.meta.truth_rows = static_cast<std::uint32_t>(sample.truth_full.rows());
  e.meta.truth_cols = static_cast<std::uint32_t>(sample.truth_full.cols());
  e.meta.vdd = sample.vdd;
  e.meta.golden_solve_seconds = sample.golden_solve_seconds;
  e.meta.node_count = sample.node_count;
  e.meta.adjust = sample.adjust;
  e.payload_offset = offset_;

  // Name bytes, then zero padding up to the aligned float run.
  write_all(file_, sample.name.data(), sample.name.size(), path_);
  offset_ += sample.name.size();
  const std::uint64_t aligned =
      (offset_ + (kShardAlign - 1)) & ~static_cast<std::uint64_t>(kShardAlign - 1);
  const std::size_t pad = static_cast<std::size_t>(aligned - offset_);
  if (pad) {
    const unsigned char zeros[kShardAlign] = {};
    write_all(file_, zeros, pad, path_);
    offset_ = aligned;
  }
  e.float_offset = offset_;

  std::uint64_t sum = fnv1a_bytes(sample.name.data(), sample.name.size());
  for (std::size_t i = 0; i < pad; ++i) {
    sum ^= 0;
    sum *= 1099511628211ull;
  }
  const std::vector<float>* runs[4] = {&sample.circuit.data(),
                                       &sample.tokens.data(),
                                       &sample.target.data(),
                                       &sample.truth_full.data()};
  for (const auto* run : runs) {
    write_all(file_, run->data(), run->size() * sizeof(float), path_);
    offset_ += run->size() * sizeof(float);
    sum = fnv_floats(sum, *run);
  }
  e.checksum = sum;
  entries_.push_back(std::move(e));
}

void ShardWriter::finalize() {
  if (finalized_) return;
  if (!file_) fail(path_, "finalize without an open file");

  // Index block.
  std::vector<unsigned char> index;
  index.reserve(entries_.size() * kIndexEntryBytes);
  for (const Entry& e : entries_) {
    const std::size_t before = index.size();
    put<std::uint64_t>(index, e.payload_offset);
    put<std::uint64_t>(index, e.float_offset);
    put<std::uint64_t>(index, e.checksum);
    put<std::uint32_t>(index, static_cast<std::uint32_t>(e.meta.name.size()));
    put<std::uint32_t>(index, e.meta.oversample);
    for (int d = 0; d < 3; ++d) put<std::uint32_t>(index, e.meta.circuit_shape[d]);
    for (int d = 0; d < 2; ++d) put<std::uint32_t>(index, e.meta.tokens_shape[d]);
    for (int d = 0; d < 3; ++d) put<std::uint32_t>(index, e.meta.target_shape[d]);
    put<std::uint32_t>(index, e.meta.truth_rows);
    put<std::uint32_t>(index, e.meta.truth_cols);
    put<std::uint64_t>(index, static_cast<std::uint64_t>(e.meta.adjust.orig_rows));
    put<std::uint64_t>(index, static_cast<std::uint64_t>(e.meta.adjust.orig_cols));
    put<std::uint64_t>(index, static_cast<std::uint64_t>(e.meta.adjust.side));
    put<std::uint32_t>(index, e.meta.adjust.scaled ? 1u : 0u);
    put<std::uint32_t>(index, 0u);  // reserved
    put<double>(index, e.meta.vdd);
    put<double>(index, e.meta.golden_solve_seconds);
    put<std::uint64_t>(index, e.meta.node_count);
    if (index.size() - before != kIndexEntryBytes)
      fail(path_, "internal: index entry size drifted");
  }
  const std::uint64_t index_offset = offset_;
  write_all(file_, index.data(), index.size(), path_);
  offset_ += index.size();

  // Header.
  std::vector<unsigned char> header;
  header.reserve(kHeaderBytes);
  header.insert(header.end(), kShardMagic, kShardMagic + 8);
  put<std::uint32_t>(header, kShardVersion);
  put<std::uint32_t>(header, kFlagLittleEndianFloats);
  put<std::uint64_t>(header, static_cast<std::uint64_t>(entries_.size()));
  put<std::uint64_t>(header, index_offset);
  put<std::uint64_t>(header, fnv1a_bytes(index.data(), index.size()));
  put<std::uint64_t>(header, offset_);
  header.resize(kHeaderBytes, 0);

  if (std::fseek(file_, 0, SEEK_SET) != 0) fail(path_, "seek failed");
  write_all(file_, header.data(), header.size(), path_);
  if (std::fclose(file_) != 0) {
    file_ = nullptr;
    fail(path_, "close failed");
  }
  file_ = nullptr;
  finalized_ = true;
}

// ---------------------------------------------------------- ShardReader

ShardReader::ShardReader(const std::string& path) : path_(path) {
#ifdef LMMIR_SHARD_HAVE_MMAP
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) fail(path_, "cannot open");
  struct stat st;
  if (::fstat(fd_, &st) != 0 || st.st_size < 0) {
    ::close(fd_);
    fd_ = -1;
    fail(path_, "stat failed");
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ < kHeaderBytes) {
    ::close(fd_);
    fd_ = -1;
    fail(path_, "file too small for a shard header");
  }
  void* m = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd_, 0);
  if (m == MAP_FAILED) {
    // Fall back to a heap copy (e.g. filesystems without mmap support).
    unsigned char* buf = nullptr;
    if (::posix_memalign(reinterpret_cast<void**>(&buf), kShardAlign,
                         size_ ? size_ : 1) != 0)
      buf = nullptr;
    std::FILE* f = buf ? std::fopen(path.c_str(), "rb") : nullptr;
    const bool ok = f && std::fread(buf, 1, size_, f) == size_;
    if (f) std::fclose(f);
    if (!ok) {
      std::free(buf);
      ::close(fd_);
      fd_ = -1;
      fail(path_, "mmap and read fallback both failed");
    }
    map_ = buf;
    heap_fallback_ = true;
  } else {
    map_ = static_cast<const unsigned char*>(m);
  }
#else
  fail(path_, "no mmap support on this platform");
#endif

  // Header.
  if (std::memcmp(map_, kShardMagic, 8) != 0) fail(path_, "bad magic");
  const std::uint32_t version = get<std::uint32_t>(map_ + 8);
  if (version != kShardVersion)
    fail(path_, "unsupported version " + std::to_string(version));
  const std::uint32_t flags = get<std::uint32_t>(map_ + 12);
  if (!(flags & kFlagLittleEndianFloats))
    fail(path_, "unsupported float encoding");
  const std::uint64_t count = get<std::uint64_t>(map_ + 16);
  const std::uint64_t index_offset = get<std::uint64_t>(map_ + 24);
  const std::uint64_t index_checksum = get<std::uint64_t>(map_ + 32);
  const std::uint64_t file_bytes = get<std::uint64_t>(map_ + 40);
  if (file_bytes != size_)
    fail(path_, "header size mismatch (truncated or grown file)");
  const std::uint64_t index_bytes = count * kIndexEntryBytes;
  if (index_offset > size_ || index_bytes > size_ - index_offset)
    fail(path_, "index out of bounds");
  const unsigned char* index = map_ + index_offset;
  if (fnv1a_bytes(index, index_bytes) != index_checksum)
    fail(path_, "index checksum mismatch");

  metas_.reserve(count);
  float_offsets_.reserve(count);
  payload_offsets_.reserve(count);
  checksums_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const unsigned char* p = index + i * kIndexEntryBytes;
    SampleMeta m;
    const std::uint64_t payload_offset = get<std::uint64_t>(p + 0);
    const std::uint64_t float_offset = get<std::uint64_t>(p + 8);
    const std::uint64_t checksum = get<std::uint64_t>(p + 16);
    const std::uint32_t name_len = get<std::uint32_t>(p + 24);
    m.oversample = get<std::uint32_t>(p + 28);
    for (int d = 0; d < 3; ++d)
      m.circuit_shape[d] = get<std::uint32_t>(p + 32 + 4 * d);
    for (int d = 0; d < 2; ++d)
      m.tokens_shape[d] = get<std::uint32_t>(p + 44 + 4 * d);
    for (int d = 0; d < 3; ++d)
      m.target_shape[d] = get<std::uint32_t>(p + 52 + 4 * d);
    m.truth_rows = get<std::uint32_t>(p + 64);
    m.truth_cols = get<std::uint32_t>(p + 68);
    m.adjust.orig_rows =
        static_cast<std::size_t>(get<std::uint64_t>(p + 72));
    m.adjust.orig_cols =
        static_cast<std::size_t>(get<std::uint64_t>(p + 80));
    m.adjust.side = static_cast<std::size_t>(get<std::uint64_t>(p + 88));
    m.adjust.scaled = get<std::uint32_t>(p + 96) != 0;
    m.vdd = get<double>(p + 104);
    m.golden_solve_seconds = get<double>(p + 112);
    m.node_count = get<std::uint64_t>(p + 120);

    // Bounds: the whole payload (name + pad + floats) must sit inside
    // the file, and the float run must carry the aligned offset the
    // writer guarantees.
    if (payload_offset > size_ || name_len > size_ - payload_offset)
      fail(path_, "sample " + std::to_string(i) + " name out of bounds");
    if (float_offset % alignof(float) != 0)
      fail(path_, "sample " + std::to_string(i) + " misaligned float run");
    const std::uint64_t float_bytes =
        static_cast<std::uint64_t>(m.float_count()) * sizeof(float);
    if (float_offset < payload_offset + name_len || float_offset > size_ ||
        float_bytes > size_ - float_offset)
      fail(path_, "sample " + std::to_string(i) + " floats out of bounds");

    m.name.assign(reinterpret_cast<const char*>(map_ + payload_offset),
                  name_len);
    if (m.oversample == 0)
      fail(path_, "sample " + std::to_string(i) + " has zero oversample");
    metas_.push_back(std::move(m));
    float_offsets_.push_back(float_offset);
    payload_offsets_.push_back(payload_offset);
    checksums_.push_back(checksum);
  }
}

ShardReader::~ShardReader() {
#ifdef LMMIR_SHARD_HAVE_MMAP
  if (map_) {
    if (heap_fallback_)
      std::free(const_cast<unsigned char*>(map_));
    else
      ::munmap(const_cast<unsigned char*>(map_), size_);
  }
  if (fd_ >= 0) ::close(fd_);
#endif
}

const unsigned char* ShardReader::base(std::size_t offset,
                                       std::size_t n) const {
  if (offset > size_ || n > size_ - offset)
    fail(path_, "read out of bounds");
  return map_ + offset;
}

const float* ShardReader::circuit_data(std::size_t i) const {
  const SampleMeta& m = meta(i);
  return reinterpret_cast<const float*>(base(
      static_cast<std::size_t>(float_offsets_[i]),
      m.float_count() * sizeof(float)));
}

const float* ShardReader::tokens_data(std::size_t i) const {
  return circuit_data(i) + meta(i).circuit_numel();
}

const float* ShardReader::target_data(std::size_t i) const {
  const SampleMeta& m = meta(i);
  return circuit_data(i) + m.circuit_numel() + m.tokens_numel();
}

const float* ShardReader::truth_data(std::size_t i) const {
  const SampleMeta& m = meta(i);
  return circuit_data(i) + m.circuit_numel() + m.tokens_numel() +
         m.target_numel();
}

Sample ShardReader::read_sample(std::size_t i) const {
  const SampleMeta& m = meta(i);
  Sample s;
  s.name = m.name;
  s.vdd = m.vdd;
  s.golden_solve_seconds = m.golden_solve_seconds;
  s.node_count = static_cast<std::size_t>(m.node_count);
  s.adjust = m.adjust;

  const float* c = circuit_data(i);
  s.circuit = tensor::Tensor::from_data(
      {static_cast<int>(m.circuit_shape[0]),
       static_cast<int>(m.circuit_shape[1]),
       static_cast<int>(m.circuit_shape[2])},
      std::vector<float>(c, c + m.circuit_numel()));
  const float* t = tokens_data(i);
  s.tokens = tensor::Tensor::from_data(
      {static_cast<int>(m.tokens_shape[0]),
       static_cast<int>(m.tokens_shape[1])},
      std::vector<float>(t, t + m.tokens_numel()));
  const float* y = target_data(i);
  s.target = tensor::Tensor::from_data(
      {static_cast<int>(m.target_shape[0]),
       static_cast<int>(m.target_shape[1]),
       static_cast<int>(m.target_shape[2])},
      std::vector<float>(y, y + m.target_numel()));
  const float* tr = truth_data(i);
  s.truth_full = grid::Grid2D(m.truth_rows, m.truth_cols);
  std::copy(tr, tr + m.truth_numel(), s.truth_full.data().begin());
  return s;
}

bool ShardReader::verify_sample(std::size_t i) const {
  const SampleMeta& m = meta(i);
  const std::size_t start = static_cast<std::size_t>(payload_offsets_[i]);
  const std::size_t end = static_cast<std::size_t>(float_offsets_[i]) +
                          m.float_count() * sizeof(float);
  const unsigned char* p = base(start, end - start);
  return fnv1a_bytes(p, end - start) == checksums_[i];
}

bool ShardReader::verify(std::string* error) const {
  for (std::size_t i = 0; i < metas_.size(); ++i) {
    if (!verify_sample(i)) {
      if (error)
        *error = path_ + ": sample " + std::to_string(i) + " ('" +
                 metas_[i].name + "') checksum mismatch";
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------- ShardCorpusWriter

ShardCorpusWriter::ShardCorpusWriter(std::string dir,
                                     std::size_t samples_per_shard)
    : dir_(std::move(dir)),
      samples_per_shard_(samples_per_shard ? samples_per_shard : 1) {
  namespace fs = std::filesystem;
  fs::create_directories(dir_);
  for (const auto& entry : fs::directory_iterator(dir_))
    if (entry.path().extension() == ".lmshard")
      fail(dir_, "directory already holds shards (corpora are immutable)");
}

ShardCorpusWriter::~ShardCorpusWriter() {
  try {
    finalize();
  } catch (const std::exception& e) {
    util::log_warn("shard corpus: finalize of ", dir_, " failed: ", e.what());
  }
}

void ShardCorpusWriter::roll() {
  if (writer_) {
    writer_->finalize();
    manifest_.bytes += std::filesystem::file_size(writer_->path());
    writer_.reset();
  }
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%06zu.lmshard",
                manifest_.shard_files.size());
  const std::string path = dir_ + "/" + name;
  writer_ = std::make_unique<ShardWriter>(path);
  manifest_.shard_files.push_back(path);
}

void ShardCorpusWriter::append(const Sample& sample,
                               std::uint32_t oversample) {
  if (finalized_) fail(dir_, "append after finalize");
  if (!writer_ || writer_->sample_count() >= samples_per_shard_) roll();
  writer_->append(sample, oversample);
  ++manifest_.samples;
  manifest_.epoch_samples += oversample;
}

CorpusManifest ShardCorpusWriter::finalize() {
  if (!finalized_) {
    if (writer_) {
      writer_->finalize();
      manifest_.bytes += std::filesystem::file_size(writer_->path());
      writer_.reset();
    }
    finalized_ = true;
  }
  return manifest_;
}

// ----------------------------------------------------------- ShardCorpus

ShardCorpus::ShardCorpus(const std::string& dir) : dir_(dir) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir_)) fail(dir_, "not a directory");
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir_))
    if (entry.path().extension() == ".lmshard")
      files.push_back(entry.path().string());
  std::sort(files.begin(), files.end());
  if (files.empty()) fail(dir_, "no .lmshard files");
  for (const auto& f : files) {
    shard_base_.push_back(total_samples_);
    shards_.push_back(std::make_unique<ShardReader>(f));
    total_samples_ += shards_.back()->sample_count();
    for (std::size_t i = 0; i < shards_.back()->sample_count(); ++i)
      epoch_size_ += shards_.back()->meta(i).oversample;
  }
}

std::vector<std::size_t> ShardCorpus::epoch_order() const {
  std::vector<std::size_t> order;
  order.reserve(epoch_size_);
  std::size_t global = 0;
  for (const auto& shard : shards_)
    for (std::size_t i = 0; i < shard->sample_count(); ++i, ++global)
      for (std::uint32_t k = 0; k < shard->meta(i).oversample; ++k)
        order.push_back(global);
  return order;
}

const ShardReader& ShardCorpus::shard_of(std::size_t global,
                                         std::size_t& local) const {
  if (global >= total_samples_) fail(dir_, "sample index out of range");
  // shard_base_ is sorted; find the last base <= global.
  std::size_t lo = 0;
  for (std::size_t s = 1; s < shard_base_.size(); ++s)
    if (shard_base_[s] <= global) lo = s;
  local = global - shard_base_[lo];
  return *shards_[lo];
}

const SampleMeta& ShardCorpus::meta(std::size_t global) const {
  std::size_t local = 0;
  const ShardReader& shard = shard_of(global, local);
  return shard.meta(local);
}

Sample ShardCorpus::read_sample(std::size_t global) const {
  std::size_t local = 0;
  const ShardReader& shard = shard_of(global, local);
  return shard.read_sample(local);
}

std::size_t ShardCorpus::mapped_bytes() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard->mapped_bytes();
  return n;
}

bool ShardCorpus::verify(std::string* error) const {
  for (const auto& shard : shards_)
    if (!shard->verify(error)) return false;
  return true;
}

}  // namespace lmmir::data
