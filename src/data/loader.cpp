#include "data/loader.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace lmmir::data {

namespace {

obs::Counter& prefetch_hits() {
  static obs::Counter& c =
      obs::counter("lmmir_train_prefetch_hits_total");
  return c;
}
obs::Counter& prefetch_stalls() {
  static obs::Counter& c =
      obs::counter("lmmir_train_prefetch_stalls_total");
  return c;
}
obs::Histogram& loader_wait_seconds() {
  static obs::Histogram& h = obs::histogram(
      "lmmir_train_loader_wait_seconds", obs::seconds_buckets());
  return h;
}

}  // namespace

// -------------------------------------------------- DatasetBatchProvider

DatasetBatchProvider::DatasetBatchProvider(const Dataset& dataset,
                                           LoaderOptions opts)
    : dataset_(&dataset), opts_(opts) {
  if (opts_.batch_size <= 0)
    throw std::invalid_argument("DatasetBatchProvider: batch_size must be >0");
}

std::size_t DatasetBatchProvider::epoch_size() const {
  return dataset_->epoch.size();
}

void DatasetBatchProvider::start_epoch(util::Rng& rng) {
  rng_ = &rng;
  order_ = dataset_->epoch;
  rng.shuffle(order_);
  cursor_ = 0;
}

bool DatasetBatchProvider::next(Batch& out) {
  if (!rng_ || cursor_ >= order_.size()) return false;
  util::Stopwatch wait;
  const std::size_t end =
      std::min(order_.size(),
               cursor_ + static_cast<std::size_t>(opts_.batch_size));
  idx_.assign(order_.begin() + static_cast<std::ptrdiff_t>(cursor_),
              order_.begin() + static_cast<std::ptrdiff_t>(end));
  cursor_ = end;
  const float noise =
      opts_.augment ? rng_->uniform(0.0f, opts_.noise_std_max) : 0.0f;
  make_batch_into(dataset_->samples, idx_, noise, *rng_, out);
  loader_wait_seconds().observe(wait.seconds());
  return true;
}

// ------------------------------------------------------ StreamingLoader

StreamingLoader::StreamingLoader(const ShardCorpus& corpus, LoaderOptions opts)
    : corpus_(&corpus), opts_(opts), base_order_(corpus.epoch_order()) {
  if (opts_.batch_size <= 0)
    throw std::invalid_argument("StreamingLoader: batch_size must be > 0");
}

StreamingLoader::StreamingLoader(std::unique_ptr<ShardCorpus> corpus,
                                 LoaderOptions opts)
    : owned_corpus_(std::move(corpus)),
      corpus_(owned_corpus_.get()),
      opts_(opts),
      base_order_(corpus_->epoch_order()) {
  if (opts_.batch_size <= 0)
    throw std::invalid_argument("StreamingLoader: batch_size must be > 0");
}

StreamingLoader::~StreamingLoader() {
  if (pending_valid_ && pending_async_) {
    try {
      pending_.get();
    } catch (const std::exception& e) {
      util::log_warn("streaming loader: in-flight prefetch failed during "
                     "teardown: ",
                     e.what());
    }
  }
}

std::size_t StreamingLoader::epoch_size() const { return base_order_.size(); }

void StreamingLoader::start_epoch(util::Rng& rng) {
  if (pending_valid_ && pending_async_) pending_.get();  // never overlap epochs
  pending_valid_ = false;
  rng_ = &rng;
  order_ = base_order_;  // assign into retained capacity
  rng.shuffle(order_);
  cursor_ = 0;
  issue_prefetch();
}

void StreamingLoader::issue_prefetch() {
  pending_valid_ = false;
  pending_async_ = false;
  if (cursor_ >= order_.size()) return;
  const std::size_t begin = cursor_;
  const std::size_t end =
      std::min(order_.size(),
               begin + static_cast<std::size_t>(opts_.batch_size));
  cursor_ = end;
  Batch* slot = &slots_[fill_];
  runtime::ThreadPool* pool = runtime::global_pool();
  if (opts_.prefetch && pool && !pool->in_worker()) {
    // Exactly one task in flight: the next issue happens only after this
    // one is consumed, so the RNG draw order stays serialized (see the
    // determinism contract in the header).
    pending_ = pool->submit(
        [this, slot, begin, end] { stack_range(*slot, begin, end); });
    pending_async_ = true;
  } else {
    util::Stopwatch watch;
    stack_range(*slot, begin, end);
    inline_stack_seconds_ = watch.seconds();
  }
  pending_valid_ = true;
}

bool StreamingLoader::next(Batch& out) {
  if (!pending_valid_) return false;
  if (pending_async_) {
    const bool ready = pending_.wait_for(std::chrono::seconds(0)) ==
                       std::future_status::ready;
    (ready ? prefetch_hits() : prefetch_stalls()).add();
    util::Stopwatch wait;
    pending_.get();  // rethrows stacking errors on the training thread
    loader_wait_seconds().observe(wait.seconds());
  } else {
    // Inline mode: the stack ran synchronously at issue time — all of it
    // was training-loop wait.
    prefetch_stalls().add();
    loader_wait_seconds().observe(inline_stack_seconds_);
  }
  const int ready_slot = fill_;
  fill_ ^= 1;
  // Swap, never copy: the caller's previous batch tensors drop into the
  // slot (uniquely owned again now that the step's tape is gone) and get
  // reused by the prefetch after next — the zero-allocation rotation.
  std::swap(out.circuit, slots_[ready_slot].circuit);
  std::swap(out.tokens, slots_[ready_slot].tokens);
  std::swap(out.target, slots_[ready_slot].target);
  issue_prefetch();
  return true;
}

void StreamingLoader::stack_range(Batch& out, std::size_t begin,
                                  std::size_t end) {
  const float noise =
      opts_.augment ? rng_->uniform(0.0f, opts_.noise_std_max) : 0.0f;
  const SampleMeta& first = corpus_->meta(order_[begin]);
  const int b = static_cast<int>(end - begin);
  std::vector<float>& circ = detail::ensure_batch_slot(
      out.circuit, {b, static_cast<int>(first.circuit_shape[0]),
                    static_cast<int>(first.circuit_shape[1]),
                    static_cast<int>(first.circuit_shape[2])});
  std::vector<float>& toks = detail::ensure_batch_slot(
      out.tokens, {b, static_cast<int>(first.tokens_shape[0]),
                   static_cast<int>(first.tokens_shape[1])});
  std::vector<float>& targ = detail::ensure_batch_slot(
      out.target, {b, static_cast<int>(first.target_shape[0]),
                   static_cast<int>(first.target_shape[1]),
                   static_cast<int>(first.target_shape[2])});

  for (std::size_t i = begin; i < end; ++i) {
    std::size_t local = 0;
    const ShardReader& shard = corpus_->shard_of(order_[i], local);
    const SampleMeta& m = shard.meta(local);
    if (m.circuit_numel() != first.circuit_numel() ||
        m.tokens_numel() != first.tokens_numel() ||
        m.target_numel() != first.target_numel())
      throw std::invalid_argument(
          "StreamingLoader: heterogeneous sample shapes");
    // Stack straight out of the mapping — same insert order as
    // make_batch, no intermediate Sample materialization.
    const float* c = shard.circuit_data(local);
    circ.insert(circ.end(), c, c + m.circuit_numel());
    const float* t = shard.tokens_data(local);
    toks.insert(toks.end(), t, t + m.tokens_numel());
    const float* y = shard.target_data(local);
    targ.insert(targ.end(), y, y + m.target_numel());
  }
  if (noise > 0.0f)
    for (auto& v : circ) v += rng_->normal(0.0f, noise);
}

std::size_t StreamingLoader::resident_batch_bytes() const {
  std::size_t bytes = 0;
  for (const Batch& slot : slots_)
    for (const tensor::Tensor* t :
         {&slot.circuit, &slot.tokens, &slot.target})
      if (t->defined()) bytes += t->impl()->data.capacity() * sizeof(float);
  return bytes;
}

}  // namespace lmmir::data
