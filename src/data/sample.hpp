#pragma once
// One training/evaluation sample: the six adjusted+normalized circuit
// channels, the pooled netlist tokens, and the IR-drop target.
//
// Targets are stored as percent-of-VDD drop: case-independent scale,
// invertible back to volts with the recorded vdd, and numerically friendly
// for MSE (raw drops are 1e-3..1e-1 V).
#include <string>

#include "features/spatial.hpp"
#include "gen/began.hpp"
#include "grid/grid2d.hpp"
#include "sparse/precision.hpp"
#include "sparse/preconditioner.hpp"
#include "spice/netlist.hpp"
#include "tensor/tensor.hpp"

namespace lmmir::pdn {
class SolverContext;  // pdn/solver_context.hpp
}
namespace lmmir::feat {
class FeatureContext;  // features/feature_context.hpp
}

namespace lmmir::data {

struct SampleOptions {
  std::size_t input_side = 64;  // paper: 512; reduced default for 1 core
  int pc_grid = 8;              // netlist token grid (G*G tokens)
  /// Preconditioner for the golden IR-drop solve backing the ground truth.
  sparse::PreconditionerKind solver_precond =
      sparse::PreconditionerKind::Jacobi;
  /// Solver arithmetic for that solve (sparse/precision.hpp): Double is
  /// the bit-exact default; Mixed streams f32 matrix storage inside a
  /// double iterative-refinement loop — same tolerance, fewer bytes.
  sparse::SolverPrecision solver_precision = sparse::SolverPrecision::Double;
  /// Optional shared solver cache for corpus generation: consecutive
  /// samples of the same PDN topology (load sweeps, ECO variants) reuse
  /// the assembled pattern / preconditioner and warm-start PCG; unrelated
  /// topologies fall back to a full rebuild automatically.  Not owned; the
  /// caller keeps it alive across make_sample calls and does not share one
  /// context between concurrent solves.
  pdn::SolverContext* solver_context = nullptr;
  /// Optional shared feature-extraction cache, the raster-side analogue of
  /// solver_context: consecutive same-topology netlists reuse the
  /// topology-invariant channels and results stay bitwise identical to a
  /// cold extraction.  Same ownership/threading contract as
  /// solver_context (not owned; one context per serial sample loop).
  feat::FeatureContext* feature_context = nullptr;
};

/// Stored regression targets are percent-of-vdd x kTargetScale, keeping
/// them O(0.1) so freshly initialized heads start in range; predictions
/// are divided back before metric computation.
inline constexpr float kTargetScale = 0.1f;

struct Sample {
  std::string name;
  tensor::Tensor circuit;       // [feat::kChannelCount, S, S], normalized
  tensor::Tensor tokens;        // [G*G, pc::kTokenFeatureDim]
  tensor::Tensor target;        // [1, S, S], percent-of-vdd drop, adjusted
  grid::Grid2D truth_full;      // percent-of-vdd at original resolution
  feat::AdjustInfo adjust;      // pad/scale record for restoring predictions
  double vdd = 0.0;
  double golden_solve_seconds = 0.0;  // TAT of the golden solver (reference)
  std::size_t node_count = 0;
};

/// The inference-side inputs of a sample: the adjusted+normalized circuit
/// channel stack, the pooled netlist tokens, and the pad/scale record
/// needed to restore predictions — everything a served prediction needs,
/// with NO golden solve (the model replaces it).  This is exactly the
/// input half of make_sample; the serving path (serve::SessionServer)
/// builds requests from it.
struct FeaturizedNetlist {
  tensor::Tensor circuit;   // [feat::kChannelCount, S, S], normalized
  tensor::Tensor tokens;    // [G*G, pc::kTokenFeatureDim]
  feat::AdjustInfo adjust;  // pad/scale record for restoring predictions
};

/// Featurize a netlist for inference.  Honors opts.feature_context the
/// same way make_sample does (warm channel reuse for same-topology
/// netlists; results bitwise identical to a cold extraction).  Throws
/// like compute_feature_maps.
FeaturizedNetlist featurize_netlist(const spice::Netlist& netlist,
                                    const SampleOptions& opts);

/// Build a sample from an already-parsed netlist (solves the golden IR
/// drop as ground truth).
Sample make_sample(const spice::Netlist& netlist, const std::string& name,
                   const SampleOptions& opts);

/// Generate the netlist from a config, then build the sample.
Sample make_sample(const gen::GeneratorConfig& config,
                   const SampleOptions& opts);

/// Build a sample from a contest-format case directory (see
/// feat::read_contest_case).  The provided current / effective-distance /
/// PDN-density CSVs are authoritative for channels 0-2; the three extra
/// channels and the point cloud come from the netlist.  When the
/// directory carries a ground-truth map it is used (volts); otherwise the
/// golden solver produces it.
Sample make_sample_from_contest_dir(const std::string& dir,
                                    const SampleOptions& opts);

/// Convert a percent-of-vdd MAE to the paper's 1e-4 V unit.
double percent_mae_to_1e4_volts(double mae_percent, double vdd);

}  // namespace lmmir::data
