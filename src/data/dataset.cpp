#include "data/dataset.hpp"

#include <stdexcept>

#include "gen/suite.hpp"
#include "tensor/ops.hpp"
#include "util/log.hpp"

namespace lmmir::data {

Dataset build_training_dataset(const DatasetOptions& opts) {
  Dataset ds;
  gen::SuiteOptions suite;
  suite.scale = opts.suite_scale;
  const auto fakes =
      gen::fake_training_suite(opts.fake_cases, opts.seed, suite);
  const auto reals =
      gen::real_training_suite(opts.real_cases, opts.seed + 101, suite);

  for (const auto& cfg : fakes) {
    ds.samples.push_back(make_sample(cfg, opts.sample));
    for (int k = 0; k < opts.fake_oversample; ++k)
      ds.epoch.push_back(ds.samples.size() - 1);
  }
  for (const auto& cfg : reals) {
    ds.samples.push_back(make_sample(cfg, opts.sample));
    for (int k = 0; k < opts.real_oversample; ++k)
      ds.epoch.push_back(ds.samples.size() - 1);
  }
  util::log_info("dataset: ", ds.samples.size(), " cases, epoch size ",
                 ds.epoch.size());
  return ds;
}

std::vector<Sample> build_table2_testset(const SampleOptions& opts,
                                         double suite_scale) {
  gen::SuiteOptions suite;
  suite.scale = suite_scale;
  std::vector<Sample> out;
  for (const auto& cfg : gen::table2_suite(suite))
    out.push_back(make_sample(cfg, opts));
  return out;
}

Batch make_batch(const std::vector<Sample>& samples,
                 const std::vector<std::size_t>& indices, float noise_std,
                 util::Rng& rng) {
  if (indices.empty()) throw std::invalid_argument("make_batch: empty batch");
  const Sample& first = samples.at(indices[0]);
  const auto cs = first.circuit.shape();  // [C,S,S]
  const auto ts = first.tokens.shape();   // [T,F]
  const auto ys = first.target.shape();   // [1,S,S]
  const int b = static_cast<int>(indices.size());

  std::vector<float> circ;
  std::vector<float> toks;
  std::vector<float> targ;
  circ.reserve(static_cast<std::size_t>(b) * first.circuit.numel());
  toks.reserve(static_cast<std::size_t>(b) * first.tokens.numel());
  targ.reserve(static_cast<std::size_t>(b) * first.target.numel());
  for (std::size_t idx : indices) {
    const Sample& s = samples.at(idx);
    if (!tensor::same_shape(s.circuit.shape(), cs) ||
        !tensor::same_shape(s.tokens.shape(), ts))
      throw std::invalid_argument("make_batch: heterogeneous sample shapes");
    circ.insert(circ.end(), s.circuit.data().begin(), s.circuit.data().end());
    toks.insert(toks.end(), s.tokens.data().begin(), s.tokens.data().end());
    targ.insert(targ.end(), s.target.data().begin(), s.target.data().end());
  }
  if (noise_std > 0.0f)
    for (auto& v : circ) v += rng.normal(0.0f, noise_std);

  Batch batch;
  batch.circuit =
      tensor::Tensor::from_data({b, cs[0], cs[1], cs[2]}, std::move(circ));
  batch.tokens = tensor::Tensor::from_data({b, ts[0], ts[1]}, std::move(toks));
  batch.target =
      tensor::Tensor::from_data({b, ys[0], ys[1], ys[2]}, std::move(targ));
  return batch;
}

tensor::Tensor slice_channels(const tensor::Tensor& circuit, int k) {
  if (circuit.ndim() != 4)
    throw std::invalid_argument("slice_channels: expects [B,C,S,S]");
  if (k == circuit.dim(1)) return circuit;
  if (k <= 0 || k > circuit.dim(1))
    throw std::invalid_argument("slice_channels: bad channel count");
  return tensor::slice_axis(circuit, 1, 0, k);
}

}  // namespace lmmir::data
