#include "data/dataset.hpp"

#include <atomic>
#include <stdexcept>
#include <utility>

#include "gen/suite.hpp"
#include "tensor/ops.hpp"
#include "util/log.hpp"

namespace lmmir::data {

namespace {

std::atomic<std::uint64_t> g_batch_tensor_allocs{0};

/// Shared generation loop: build_training_dataset and
/// spill_training_dataset must produce bitwise-identical samples in the
/// same order, so both funnel through this one emitter.
template <typename Emit>
void generate_training_cases(const DatasetOptions& opts, Emit&& emit) {
  gen::SuiteOptions suite;
  suite.scale = opts.suite_scale;
  const auto fakes =
      gen::fake_training_suite(opts.fake_cases, opts.seed, suite);
  const auto reals =
      gen::real_training_suite(opts.real_cases, opts.seed + 101, suite);
  for (const auto& cfg : fakes)
    emit(make_sample(cfg, opts.sample), opts.fake_oversample);
  for (const auto& cfg : reals)
    emit(make_sample(cfg, opts.sample), opts.real_oversample);
}

}  // namespace

std::uint64_t batch_tensor_allocations() {
  return g_batch_tensor_allocs.load(std::memory_order_relaxed);
}

Dataset build_training_dataset(const DatasetOptions& opts) {
  Dataset ds;
  generate_training_cases(opts, [&ds](Sample&& s, int oversample) {
    ds.samples.push_back(std::move(s));
    for (int k = 0; k < oversample; ++k)
      ds.epoch.push_back(ds.samples.size() - 1);
  });
  util::log_info("dataset: ", ds.samples.size(), " cases, epoch size ",
                 ds.epoch.size());
  return ds;
}

CorpusManifest spill_training_dataset(const DatasetOptions& opts,
                                      const std::string& dir,
                                      std::size_t samples_per_shard) {
  ShardCorpusWriter writer(dir, samples_per_shard);
  generate_training_cases(opts, [&writer](Sample&& s, int oversample) {
    writer.append(s, static_cast<std::uint32_t>(oversample));
    // `s` dies here: resident footprint is one sample, not the corpus.
  });
  const CorpusManifest manifest = writer.finalize();
  util::log_info("dataset: spilled ", manifest.samples, " cases (epoch size ",
                 manifest.epoch_samples, ") into ",
                 manifest.shard_files.size(), " shards under ", dir);
  return manifest;
}

CorpusManifest write_corpus(const Dataset& dataset, const std::string& dir,
                            std::size_t samples_per_shard) {
  std::vector<std::uint32_t> oversample(dataset.samples.size(), 0);
  for (std::size_t idx : dataset.epoch) ++oversample.at(idx);
  ShardCorpusWriter writer(dir, samples_per_shard);
  for (std::size_t i = 0; i < dataset.samples.size(); ++i)
    writer.append(dataset.samples[i], oversample[i] ? oversample[i] : 1);
  return writer.finalize();
}

std::vector<Sample> build_table2_testset(const SampleOptions& opts,
                                         double suite_scale) {
  gen::SuiteOptions suite;
  suite.scale = suite_scale;
  std::vector<Sample> out;
  for (const auto& cfg : gen::table2_suite(suite))
    out.push_back(make_sample(cfg, opts));
  return out;
}

namespace detail {

std::vector<float>& ensure_batch_slot(tensor::Tensor& t,
                                      const tensor::Shape& shape) {
  const std::size_t numel = tensor::shape_numel(shape);
  if (t.defined() && t.impl().use_count() == 1 && !t.requires_grad() &&
      t.impl()->data.capacity() >= numel) {
    tensor::TensorImpl& impl = *t.impl();
    impl.shape = shape;
    impl.data.clear();  // keeps capacity: refill is insert-only, no realloc
    impl.grad.clear();
    impl.parents.clear();
    impl.backward_fn = nullptr;
    return impl.data;
  }
  g_batch_tensor_allocs.fetch_add(1, std::memory_order_relaxed);
  auto impl = std::make_shared<tensor::TensorImpl>();
  impl->shape = shape;
  impl->data.reserve(numel);
  t = tensor::Tensor(std::move(impl));
  return t.impl()->data;
}

}  // namespace detail

void make_batch_into(const std::vector<Sample>& samples,
                     const std::vector<std::size_t>& indices, float noise_std,
                     util::Rng& rng, Batch& out) {
  if (indices.empty()) throw std::invalid_argument("make_batch: empty batch");
  const Sample& first = samples.at(indices[0]);
  const auto cs = first.circuit.shape();  // [C,S,S]
  const auto ts = first.tokens.shape();   // [T,F]
  const auto ys = first.target.shape();   // [1,S,S]
  const int b = static_cast<int>(indices.size());

  std::vector<float>& circ =
      detail::ensure_batch_slot(out.circuit, {b, cs[0], cs[1], cs[2]});
  std::vector<float>& toks =
      detail::ensure_batch_slot(out.tokens, {b, ts[0], ts[1]});
  std::vector<float>& targ =
      detail::ensure_batch_slot(out.target, {b, ys[0], ys[1], ys[2]});
  for (std::size_t idx : indices) {
    const Sample& s = samples.at(idx);
    if (!tensor::same_shape(s.circuit.shape(), cs) ||
        !tensor::same_shape(s.tokens.shape(), ts))
      throw std::invalid_argument("make_batch: heterogeneous sample shapes");
    circ.insert(circ.end(), s.circuit.data().begin(), s.circuit.data().end());
    toks.insert(toks.end(), s.tokens.data().begin(), s.tokens.data().end());
    targ.insert(targ.end(), s.target.data().begin(), s.target.data().end());
  }
  if (noise_std > 0.0f)
    for (auto& v : circ) v += rng.normal(0.0f, noise_std);
}

Batch make_batch(const std::vector<Sample>& samples,
                 const std::vector<std::size_t>& indices, float noise_std,
                 util::Rng& rng) {
  Batch batch;
  make_batch_into(samples, indices, noise_std, rng, batch);
  return batch;
}

tensor::Tensor slice_channels(const tensor::Tensor& circuit, int k) {
  if (circuit.ndim() != 4)
    throw std::invalid_argument("slice_channels: expects [B,C,S,S]");
  if (k == circuit.dim(1)) return circuit;
  if (k <= 0 || k > circuit.dim(1))
    throw std::invalid_argument("slice_channels: bad channel count");
  return tensor::slice_axis(circuit, 1, 0, k);
}

}  // namespace lmmir::data
