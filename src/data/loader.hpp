#pragma once
// Batch providers: the training loop's data plane (see docs/DATA.md).
//
// train::fit consumes batches through the BatchProvider interface; two
// implementations exist:
//  - DatasetBatchProvider wraps the resident data::Dataset (the original
//    in-memory path, behavior unchanged);
//  - StreamingLoader streams a sharded on-disk corpus (data/shard.hpp)
//    with async double-buffered prefetch over runtime::global_pool():
//    the next batch is stacked straight out of the memory-mapped shards
//    while the current optimization step runs, so resident sample memory
//    is the prefetch window (two pooled batches), never the corpus.
//
// Determinism contract (gated by bench_train_pipeline): for the same
// corpus, seed, and options, both providers produce bitwise-identical
// batch sequences at any thread count.  Three properties make that hold:
//  1. ShardCorpus::epoch_order() reconstructs exactly the Dataset::epoch
//     index list (sample order, oversample repeats adjacent), so the
//     seeded Fisher-Yates shuffle visits identical state;
//  2. every RNG draw (shuffle, per-batch noise sigma, per-element noise)
//     happens in the same sequence as the in-memory loop — the loader
//     keeps at most ONE prefetch task in flight and issues the next only
//     after the previous completed, so draws stay serialized no matter
//     how many pool workers exist;
//  3. batch stacking copies sample floats verbatim (same insert order as
//     make_batch) before applying noise with the shared helper.
//
// Zero-allocation contract: batch tensors are pooled.  next() SWAPS the
// ready slot with the caller's Batch (never copies handles), so after a
// warmup of at most three Batch generations the same tensor buffers
// rotate caller -> slot -> caller forever and
// data::batch_tensor_allocations() stays flat (gated, mirroring the
// serve arena gate).
#include <cstddef>
#include <future>
#include <memory>
#include <vector>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace lmmir::data {

/// Batching knobs shared by both providers.  Noise settings mirror
/// train::TrainConfig (the trainer forwards its own values).
struct LoaderOptions {
  int batch_size = 2;
  bool augment = true;          // draw sigma ~ U(0, noise_std_max) per batch
  float noise_std_max = 1e-2f;  // Gaussian augmentation ceiling
  /// Stack the next batch on a pool worker while the current step runs.
  /// Off (or no pool, or called from inside a worker): stacking runs
  /// inline with identical results.  Env: LMMIR_PREFETCH=0 via
  /// core::PipelineOptions.
  bool prefetch = true;
};

/// Source of shuffled training batches for one epoch at a time.
/// start_epoch() borrows the caller's Rng for the whole epoch (shuffle +
/// noise draws); the caller must not draw from it again until next()
/// has returned false (or a new epoch is started).
class BatchProvider {
 public:
  virtual ~BatchProvider() = default;

  /// Over-sampled samples per epoch (== ceil-div steps * batch size).
  virtual std::size_t epoch_size() const = 0;

  /// Shuffle a fresh epoch order from `rng` and arm the first batch.
  virtual void start_epoch(util::Rng& rng) = 0;

  /// Produce the next batch into `out`, reusing out's tensors when
  /// possible (see make_batch_into).  False once the epoch is drained.
  virtual bool next(Batch& out) = 0;
};

/// The resident path: batches stacked from Dataset::samples exactly as
/// the pre-provider training loop did.
class DatasetBatchProvider final : public BatchProvider {
 public:
  explicit DatasetBatchProvider(const Dataset& dataset,
                                LoaderOptions opts = {});

  std::size_t epoch_size() const override;
  void start_epoch(util::Rng& rng) override;
  bool next(Batch& out) override;

 private:
  const Dataset* dataset_;
  LoaderOptions opts_;
  util::Rng* rng_ = nullptr;
  std::vector<std::size_t> order_;
  std::vector<std::size_t> idx_;  // current-batch scratch, capacity reused
  std::size_t cursor_ = 0;
};

/// The out-of-core path: double-buffered prefetching reader over a
/// ShardCorpus.  The corpus reference must outlive the loader.
class StreamingLoader final : public BatchProvider {
 public:
  explicit StreamingLoader(const ShardCorpus& corpus, LoaderOptions opts = {});
  /// Owning variant: the loader keeps the corpus (and its mappings)
  /// alive — what core::Pipeline::make_streaming_loader hands out.
  explicit StreamingLoader(std::unique_ptr<ShardCorpus> corpus,
                           LoaderOptions opts = {});
  ~StreamingLoader() override;
  StreamingLoader(const StreamingLoader&) = delete;
  StreamingLoader& operator=(const StreamingLoader&) = delete;

  std::size_t epoch_size() const override;
  void start_epoch(util::Rng& rng) override;
  bool next(Batch& out) override;

  const ShardCorpus& corpus() const { return *corpus_; }
  /// Prefetch depth in batches (the resident-sample window).
  std::size_t prefetch_window() const { return 2; }
  /// Bytes held by the pooled batch slots right now — the loader's whole
  /// resident sample footprint (shard payloads stay in the file-backed
  /// mapping).  bench_train_pipeline gates this against the prefetch
  /// window, independent of corpus size.
  std::size_t resident_batch_bytes() const;

 private:
  void issue_prefetch();
  void stack_range(Batch& out, std::size_t begin, std::size_t end);

  std::unique_ptr<ShardCorpus> owned_corpus_;  // set by the owning ctor
  const ShardCorpus* corpus_;
  LoaderOptions opts_;
  util::Rng* rng_ = nullptr;
  std::vector<std::size_t> base_order_;  // epoch_order(), shuffled per epoch
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
  Batch slots_[2];
  int fill_ = 0;  // slot the in-flight (or armed) batch lands in
  bool pending_valid_ = false;
  bool pending_async_ = false;
  std::future<void> pending_;
  double inline_stack_seconds_ = 0.0;  // stacking time when run inline
};

}  // namespace lmmir::data
