#include "data/sample.hpp"

#include <algorithm>
#include <stdexcept>

#include "features/contest_io.hpp"
#include "features/feature_context.hpp"
#include "features/maps.hpp"
#include "pdn/circuit.hpp"
#include "pdn/raster.hpp"
#include "pdn/solver.hpp"
#include "pdn/solver_context.hpp"
#include "pointcloud/cloud.hpp"
#include "pointcloud/pool.hpp"
#include "util/stopwatch.hpp"

namespace lmmir::data {

double percent_mae_to_1e4_volts(double mae_percent, double vdd) {
  // percent -> volts: p/100 * vdd; volts -> 1e-4 V: x 1e4.
  return mae_percent / 100.0 * vdd * 1e4;
}

FeaturizedNetlist featurize_netlist(const spice::Netlist& netlist,
                                    const SampleOptions& opts) {
  FeaturizedNetlist f;

  // Circuit modality: the canonical channel stack, adjusted to the model
  // side and normalized per channel (paper Sec. III-A).  A caller-shared
  // FeatureContext reuses topology-invariant channels across consecutive
  // same-topology netlists; the local fallback still gets the single-pass
  // + parallel extraction (and is bitwise identical — cold == warm).
  feat::FeatureContext local_feature_context;
  feat::FeatureContext& feature_context = opts.feature_context
                                              ? *opts.feature_context
                                              : local_feature_context;
  const feat::FeatureMaps& maps = feature_context.extract(netlist);
  std::vector<float> circuit_data;
  circuit_data.reserve(feat::kChannelCount * opts.input_side * opts.input_side);
  for (int c = 0; c < feat::kChannelCount; ++c) {
    feat::AdjustInfo info;
    const grid::Grid2D adj =
        feat::adjust_to_side(maps.channel(c), opts.input_side, info);
    const grid::Grid2D normed = feat::normalize_channel_fixed(adj, c);
    circuit_data.insert(circuit_data.end(), normed.data().begin(),
                        normed.data().end());
    if (c == 0) f.adjust = info;
  }
  const int side = static_cast<int>(opts.input_side);
  f.circuit = tensor::Tensor::from_data(
      {feat::kChannelCount, side, side}, std::move(circuit_data));

  // Netlist modality: point cloud -> fixed token grid.
  const pc::Cloud cloud = pc::cloud_from_netlist(netlist);
  const pc::TokenGrid grid_tokens = pc::grid_pool(cloud, opts.pc_grid);
  f.tokens = tensor::Tensor::from_data(
      {static_cast<int>(grid_tokens.token_count()), pc::kTokenFeatureDim},
      grid_tokens.features);
  return f;
}

Sample make_sample(const spice::Netlist& netlist, const std::string& name,
                   const SampleOptions& opts) {
  Sample s;
  s.name = name;
  s.node_count = netlist.node_count();

  // Golden solve -> ground truth map in percent of vdd.
  util::Stopwatch solve_watch;
  const pdn::Circuit circuit(netlist);
  pdn::SolveOptions solve_opts;
  solve_opts.cg.preconditioner = opts.solver_precond;
  solve_opts.cg.precision = opts.solver_precision;
  solve_opts.context = opts.solver_context;
  const pdn::Solution sol = pdn::solve_ir_drop(circuit, solve_opts);
  grid::Grid2D truth = pdn::rasterize_ir_drop(netlist, sol);
  s.golden_solve_seconds = solve_watch.seconds();
  s.vdd = sol.vdd;
  if (s.vdd <= 0.0)
    throw std::runtime_error("make_sample: netlist has no supply voltage");
  truth.scale(static_cast<float>(100.0 / s.vdd));  // volts -> percent
  s.truth_full = truth;

  // Inference-side inputs (channel stack + tokens), shared verbatim with
  // the serving path so a served request sees the exact tensors a sample
  // would carry.
  FeaturizedNetlist f = featurize_netlist(netlist, opts);
  s.circuit = std::move(f.circuit);
  s.tokens = std::move(f.tokens);
  s.adjust = f.adjust;

  // Target, same spatial adjustment, in scaled-percent units.
  const int side = static_cast<int>(opts.input_side);
  feat::AdjustInfo target_info;
  grid::Grid2D target_adj =
      feat::adjust_to_side(truth, opts.input_side, target_info);
  target_adj.scale(kTargetScale);
  s.target = tensor::Tensor::from_data({1, side, side}, target_adj.data());
  return s;
}

Sample make_sample(const gen::GeneratorConfig& config,
                   const SampleOptions& opts) {
  const spice::Netlist netlist = gen::generate_pdn(config);
  return make_sample(netlist, config.name, opts);
}

Sample make_sample_from_contest_dir(const std::string& dir,
                                    const SampleOptions& opts) {
  const feat::ContestCase cc = feat::read_contest_case(dir);
  Sample s = make_sample(cc.netlist, dir, opts);
  if (cc.ir_drop.empty()) return s;  // golden-solved truth already in place

  // Override the ground truth with the provided map (volts -> percent).
  grid::Grid2D truth = cc.ir_drop;
  truth.scale(static_cast<float>(100.0 / s.vdd));
  s.truth_full = truth;
  feat::AdjustInfo info;
  grid::Grid2D adj = feat::adjust_to_side(truth, opts.input_side, info);
  adj.scale(kTargetScale);
  s.target = tensor::Tensor::from_data(
      {1, static_cast<int>(opts.input_side), static_cast<int>(opts.input_side)},
      adj.data());

  // Override channels 0-2 with the provided (authoritative) maps.
  const grid::Grid2D* provided[3] = {&cc.current, &cc.effective_distance,
                                     &cc.pdn_density};
  const std::size_t plane = opts.input_side * opts.input_side;
  for (int c = 0; c < 3; ++c) {
    feat::AdjustInfo ci;
    const grid::Grid2D a = feat::adjust_to_side(*provided[c], opts.input_side, ci);
    const grid::Grid2D n = feat::normalize_channel_fixed(a, c);
    std::copy(n.data().begin(), n.data().end(),
              s.circuit.data().begin() +
                  static_cast<std::ptrdiff_t>(static_cast<std::size_t>(c) * plane));
  }
  return s;
}

}  // namespace lmmir::data
