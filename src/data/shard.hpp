#pragma once
// Sharded on-disk sample store: the out-of-core half of the training
// pipeline (see docs/DATA.md).
//
// The paper's regime is 200 epochs x 3310 cases; holding every Sample
// resident caps corpus scale far below that, so corpus generation can
// spill samples into *shards* — versioned binary files carrying the raw
// channel / token / target tensors plus the metadata needed to
// reconstruct a data::Sample bit-for-bit — and training streams them
// back through a memory-mapped reader (data/loader.hpp) whose resident
// footprint is the prefetch window, not the corpus.
//
// Format (version 1, little-endian, see docs/DATA.md for the layout
// table):
//   header   64 bytes: magic "LMIRSHD1", version, flags, sample count,
//            index offset, index checksum (FNV-1a), file size;
//   payload  per sample: name bytes, then the circuit / tokens / target
//            / truth float arrays in one contiguous 64-byte-aligned run;
//   index    one fixed-width entry per sample (offsets, shapes,
//            metadata, FNV-1a checksum over the sample's payload).
//
// Safety model: every read is bounds-checked against the mapping before
// it is trusted, the index checksum is verified on open, and per-sample
// payload checksums are verified on demand (verify()) — a truncated or
// bit-flipped shard fails loudly instead of training on garbage.  The
// reader memory-maps the file read-only and hands out const float views
// directly into the mapping (the writer 64-byte-aligns every float run,
// so the views are always aligned on a page-aligned mapping); sample
// materialization copies only into the caller's destination, never
// through intermediate buffers.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/sample.hpp"

namespace lmmir::data {

/// Magic + version of the shard format this build reads and writes.
inline constexpr char kShardMagic[8] = {'L', 'M', 'I', 'R',
                                        'S', 'H', 'D', '1'};
inline constexpr std::uint32_t kShardVersion = 1;
/// Alignment of every per-sample float run (allows aligned views and
/// future SIMD consumption straight from the mapping).
inline constexpr std::size_t kShardAlign = 64;

/// FNV-1a over a byte range — the checksum the shard format pins.
std::uint64_t fnv1a_bytes(const void* data, std::size_t n,
                          std::uint64_t seed = 14695981039346656037ull);

/// Everything stored about a sample except the float payload.  The
/// oversample count realizes the dataset's over-sampling (fake x10,
/// real x20 at paper scale) without duplicating payload bytes: a
/// streaming epoch repeats the sample `oversample` times, exactly like
/// Dataset::epoch repeats its index.
struct SampleMeta {
  std::string name;
  std::uint32_t oversample = 1;
  std::uint32_t circuit_shape[3] = {0, 0, 0};  // [C, S, S]
  std::uint32_t tokens_shape[2] = {0, 0};      // [T, F]
  std::uint32_t target_shape[3] = {0, 0, 0};   // [1, S, S]
  std::uint32_t truth_rows = 0;
  std::uint32_t truth_cols = 0;
  double vdd = 0.0;
  double golden_solve_seconds = 0.0;
  std::uint64_t node_count = 0;
  feat::AdjustInfo adjust;

  std::size_t circuit_numel() const {
    return static_cast<std::size_t>(circuit_shape[0]) * circuit_shape[1] *
           circuit_shape[2];
  }
  std::size_t tokens_numel() const {
    return static_cast<std::size_t>(tokens_shape[0]) * tokens_shape[1];
  }
  std::size_t target_numel() const {
    return static_cast<std::size_t>(target_shape[0]) * target_shape[1] *
           target_shape[2];
  }
  std::size_t truth_numel() const {
    return static_cast<std::size_t>(truth_rows) * truth_cols;
  }
  /// Total float payload (circuit + tokens + target + truth).
  std::size_t float_count() const {
    return circuit_numel() + tokens_numel() + target_numel() + truth_numel();
  }
};

/// Streaming writer for one shard file.  append() streams the sample's
/// payload to disk immediately — the writer's resident state is one
/// index entry per sample, never the samples themselves — and
/// finalize() (or the destructor) writes the index and header.  A
/// writer that fails mid-stream leaves a file without a valid header,
/// which the reader rejects.
class ShardWriter {
 public:
  explicit ShardWriter(const std::string& path);
  ~ShardWriter();  // finalizes if not already done (errors swallowed)
  ShardWriter(const ShardWriter&) = delete;
  ShardWriter& operator=(const ShardWriter&) = delete;

  /// Append one sample; `oversample` is its epoch repeat count.
  void append(const Sample& sample, std::uint32_t oversample = 1);

  /// Write index + header and close the file.  Idempotent.
  void finalize();

  std::size_t sample_count() const { return entries_.size(); }
  /// Bytes written so far (payload only until finalize()).
  std::size_t bytes_written() const { return offset_; }
  const std::string& path() const { return path_; }

 private:
  struct Entry {
    SampleMeta meta;
    std::uint64_t payload_offset = 0;  // name bytes
    std::uint64_t float_offset = 0;    // 64-aligned float run
    std::uint64_t checksum = 0;        // FNV-1a over the whole payload
  };
  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t offset_ = 0;  // current end-of-payload file offset
  std::vector<Entry> entries_;
  bool finalized_ = false;
};

/// Memory-mapped reader for one shard file.  Opening validates magic,
/// version, bounds, and the index checksum; float views point straight
/// into the mapping (zero-copy — the writer aligned them) and stay
/// valid for the reader's lifetime.
class ShardReader {
 public:
  explicit ShardReader(const std::string& path);
  ~ShardReader();
  ShardReader(const ShardReader&) = delete;
  ShardReader& operator=(const ShardReader&) = delete;

  std::size_t sample_count() const { return metas_.size(); }
  const SampleMeta& meta(std::size_t i) const { return metas_.at(i); }
  const std::string& path() const { return path_; }
  /// Bytes of the read-only mapping (file-backed, not anonymous heap).
  std::size_t mapped_bytes() const { return size_; }

  /// Aligned views into the mapping (valid while the reader lives).
  const float* circuit_data(std::size_t i) const;
  const float* tokens_data(std::size_t i) const;
  const float* target_data(std::size_t i) const;
  const float* truth_data(std::size_t i) const;

  /// Materialize the full Sample (copies out of the mapping — the only
  /// copy on the read path).
  Sample read_sample(std::size_t i) const;

  /// Recompute sample `i`'s payload checksum against the index.
  bool verify_sample(std::size_t i) const;
  /// Verify every sample; on failure returns false and describes the
  /// first mismatch in `error` (when non-null).
  bool verify(std::string* error = nullptr) const;

 private:
  const unsigned char* base(std::size_t offset, std::size_t n) const;

  std::string path_;
  int fd_ = -1;
  const unsigned char* map_ = nullptr;
  std::size_t size_ = 0;
  bool heap_fallback_ = false;  // mmap unavailable: file read into heap
  std::vector<SampleMeta> metas_;
  std::vector<std::uint64_t> float_offsets_;
  std::vector<std::uint64_t> payload_offsets_;
  std::vector<std::uint64_t> checksums_;
};

/// Summary of a written corpus directory.
struct CorpusManifest {
  std::vector<std::string> shard_files;  // absolute or dir-relative paths
  std::size_t samples = 0;
  std::size_t epoch_samples = 0;  // sum of oversample counts
  std::size_t bytes = 0;          // payload + index + header bytes
};

/// Rolling multi-shard writer over a directory: append() spills into
/// `shard-NNNNNN.lmshard` files of at most `samples_per_shard` samples.
/// Creates the directory; refuses a directory that already holds
/// shards (a corpus is immutable once written).
class ShardCorpusWriter {
 public:
  ShardCorpusWriter(std::string dir, std::size_t samples_per_shard = 64);
  ~ShardCorpusWriter();

  void append(const Sample& sample, std::uint32_t oversample = 1);
  /// Finalize the open shard and return the manifest.  Idempotent.
  CorpusManifest finalize();

 private:
  void roll();

  std::string dir_;
  std::size_t samples_per_shard_;
  std::unique_ptr<ShardWriter> writer_;
  CorpusManifest manifest_;
  bool finalized_ = false;
};

/// Read-only view over a corpus directory: every `*.lmshard` file in
/// lexical order, with global sample indices spanning the shards in
/// that order (matching the order ShardCorpusWriter wrote them).
class ShardCorpus {
 public:
  explicit ShardCorpus(const std::string& dir);

  std::size_t sample_count() const { return total_samples_; }
  std::size_t shard_count() const { return shards_.size(); }
  /// Epoch length: the sum of per-sample oversample counts.
  std::size_t epoch_size() const { return epoch_size_; }
  /// The over-sampled epoch index list, constructed exactly like
  /// Dataset::epoch (sample order, repeats adjacent) so a seeded
  /// shuffle of it is bitwise-identical to the in-memory path.
  std::vector<std::size_t> epoch_order() const;

  const SampleMeta& meta(std::size_t global) const;
  /// The shard holding `global`, and its local index within it.
  const ShardReader& shard_of(std::size_t global, std::size_t& local) const;
  Sample read_sample(std::size_t global) const;

  /// File-backed mapped bytes across all shards (the corpus costs this
  /// much address space, but resident pages are the kernel's page
  /// cache, evictable under pressure — not anonymous training memory).
  std::size_t mapped_bytes() const;

  bool verify(std::string* error = nullptr) const;

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  std::vector<std::unique_ptr<ShardReader>> shards_;
  std::vector<std::size_t> shard_base_;  // global index of each shard's 0
  std::size_t total_samples_ = 0;
  std::size_t epoch_size_ = 0;
};

}  // namespace lmmir::data
