#pragma once
// Dataset assembly mirroring the paper's regime (Sec. IV-A): fake cases +
// real-like cases, over-sampled (fake x10, real x20 at paper scale) and
// augmented with Gaussian noise at batch time.
#include <vector>

#include "data/sample.hpp"
#include "data/shard.hpp"
#include "util/rng.hpp"

namespace lmmir::data {

struct DatasetOptions {
  SampleOptions sample;
  int fake_cases = 12;
  int real_cases = 4;
  int fake_oversample = 2;   // paper: 10
  int real_oversample = 4;   // paper: 20
  double suite_scale = 0.125;
  std::uint64_t seed = 7;
};

/// The training pool: generated fake + real-like cases, with the
/// over-sampling realized as repeated (index) entries so memory stays flat.
struct Dataset {
  std::vector<Sample> samples;       // unique cases
  std::vector<std::size_t> epoch;    // indices into samples, over-sampled

  std::size_t case_count() const { return samples.size(); }
  std::size_t epoch_size() const { return epoch.size(); }
};

Dataset build_training_dataset(const DatasetOptions& opts);

/// Spill-to-disk mode of build_training_dataset: generates the exact same
/// cases in the exact same order (bitwise-identical samples), but each one
/// is appended to a shard corpus under `dir` and released instead of kept
/// resident — corpus scale is bounded by disk, not memory.  The per-sample
/// oversample counts land in the shard index, so ShardCorpus::epoch_order()
/// reproduces the Dataset::epoch list.
CorpusManifest spill_training_dataset(const DatasetOptions& opts,
                                      const std::string& dir,
                                      std::size_t samples_per_shard = 64);

/// Write an already-built Dataset as a shard corpus under `dir`
/// (oversample counts recovered from the epoch list).  Round trip is
/// bitwise: ShardCorpus::read_sample returns the same tensors and
/// epoch_order() the same index list.
CorpusManifest write_corpus(const Dataset& dataset, const std::string& dir,
                            std::size_t samples_per_shard = 64);

/// The 10 hidden Table-II evaluation cases.
std::vector<Sample> build_table2_testset(const SampleOptions& opts,
                                         double suite_scale = 0.125);

/// A stacked minibatch (inputs carry no autograd tape).
struct Batch {
  tensor::Tensor circuit;  // [B, 6, S, S]
  tensor::Tensor tokens;   // [B, T, F]
  tensor::Tensor target;   // [B, 1, S, S]
};

/// Assemble a batch from dataset indices.  When noise_std > 0, Gaussian
/// noise is added to the circuit channels (paper's augmentation, sigma
/// drawn per batch from U(0, noise_std_max) by the caller).
Batch make_batch(const std::vector<Sample>& samples,
                 const std::vector<std::size_t>& indices, float noise_std,
                 util::Rng& rng);

/// Assemble a batch into caller-provided tensors.  A slot of `out` is
/// reused in place when it is uniquely owned and its buffer capacity
/// already covers the batch (the capacity test absorbs a ragged tail
/// batch without reallocating); otherwise a fresh tensor is allocated
/// and counted by batch_tensor_allocations().  Values are bitwise
/// identical to the allocating overload for the same rng state.
void make_batch_into(const std::vector<Sample>& samples,
                     const std::vector<std::size_t>& indices, float noise_std,
                     util::Rng& rng, Batch& out);

/// Fresh batch-tensor allocations made by make_batch_into (and the
/// streaming loader's stacker) since process start — the training
/// analogue of tensor::ArenaStats::heap_allocations(): a pooled training
/// loop allocates a fixed number up front and then holds this counter
/// flat in steady state (gated by bench_train_pipeline).
std::uint64_t batch_tensor_allocations();

/// Slice the canonical 6-channel stack down to the first k channels
/// (IREDGe consumes 3, IRPnet 1). Returns the input unchanged for k == 6.
tensor::Tensor slice_channels(const tensor::Tensor& circuit, int k);

namespace detail {
/// Reuse-or-allocate one batch tensor slot: when `t` is uniquely owned
/// with enough capacity it is retargeted in place (shape updated, data
/// cleared, capacity kept); otherwise a fresh tensor is allocated and
/// batch_tensor_allocations() incremented.  Returns the (empty) data
/// vector for the caller to fill to exactly shape_numel(shape) floats.
std::vector<float>& ensure_batch_slot(tensor::Tensor& t,
                                      const tensor::Shape& shape);
}  // namespace detail

}  // namespace lmmir::data
