#pragma once
// Dataset assembly mirroring the paper's regime (Sec. IV-A): fake cases +
// real-like cases, over-sampled (fake x10, real x20 at paper scale) and
// augmented with Gaussian noise at batch time.
#include <vector>

#include "data/sample.hpp"
#include "util/rng.hpp"

namespace lmmir::data {

struct DatasetOptions {
  SampleOptions sample;
  int fake_cases = 12;
  int real_cases = 4;
  int fake_oversample = 2;   // paper: 10
  int real_oversample = 4;   // paper: 20
  double suite_scale = 0.125;
  std::uint64_t seed = 7;
};

/// The training pool: generated fake + real-like cases, with the
/// over-sampling realized as repeated (index) entries so memory stays flat.
struct Dataset {
  std::vector<Sample> samples;       // unique cases
  std::vector<std::size_t> epoch;    // indices into samples, over-sampled

  std::size_t case_count() const { return samples.size(); }
  std::size_t epoch_size() const { return epoch.size(); }
};

Dataset build_training_dataset(const DatasetOptions& opts);

/// The 10 hidden Table-II evaluation cases.
std::vector<Sample> build_table2_testset(const SampleOptions& opts,
                                         double suite_scale = 0.125);

/// A stacked minibatch (inputs carry no autograd tape).
struct Batch {
  tensor::Tensor circuit;  // [B, 6, S, S]
  tensor::Tensor tokens;   // [B, T, F]
  tensor::Tensor target;   // [B, 1, S, S]
};

/// Assemble a batch from dataset indices.  When noise_std > 0, Gaussian
/// noise is added to the circuit channels (paper's augmentation, sigma
/// drawn per batch from U(0, noise_std_max) by the caller).
Batch make_batch(const std::vector<Sample>& samples,
                 const std::vector<std::size_t>& indices, float noise_std,
                 util::Rng& rng);

/// Slice the canonical 6-channel stack down to the first k channels
/// (IREDGe consumes 3, IRPnet 1). Returns the input unchanged for k == 6.
tensor::Tensor slice_channels(const tensor::Tensor& circuit, int k);

}  // namespace lmmir::data
