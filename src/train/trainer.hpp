#pragma once
// Two-stage training (paper Sec. III-D): a reconstruction pre-train that
// teaches the joint circuit+netlist representation, then fine-tuning on
// the IR-drop regression, both with Adam + MSE.
#include <vector>

#include "data/dataset.hpp"
#include "data/loader.hpp"
#include "eval/metrics.hpp"
#include "models/common.hpp"

namespace lmmir::train {

struct TrainConfig {
  int pretrain_epochs = 1;
  int finetune_epochs = 6;
  /// The paper uses 1e-3 over 200 epochs x 3310 cases; the reduced regime
  /// compensates its ~100x fewer optimizer steps with a higher rate.
  float lr = 3e-3f;
  float lr_decay = 0.96f;     // per-epoch multiplicative decay
  int batch_size = 2;
  /// Hotspot-weighted MSE: per-pixel weight 1 + w*(t/max t)^2. The paper
  /// trains plain MSE at 200 epochs x 3310 cases and lets attention focus
  /// the hot regions; at this reduced step budget the explicit weight
  /// recovers the same emphasis. 0 disables (plain MSE).
  float hotspot_weight = 4.0f;
  bool augment = true;        // Gaussian-noise augmentation (Fig.4 "W-Aug")
  /// Max noise sigma, drawn per batch from U(0, max). The paper uses
  /// (0, 1e-3) on its normalization; against this library's fixed-divisor
  /// feature scale that amplitude is a no-op, so the default keeps the
  /// same *relative* strength (~1% of the feature range).
  float noise_std_max = 1e-2f;
  float clip_norm = 5.0f;
  std::uint64_t seed = 42;
  bool verbose = false;
};

struct TrainHistory {
  std::vector<float> pretrain_loss;  // mean epoch loss
  std::vector<float> finetune_loss;
  double seconds = 0.0;
};

/// Train a model from any batch provider (in-memory DatasetBatchProvider
/// or out-of-core StreamingLoader — see data/loader.hpp).  Batch tensors
/// are pooled across steps and stages: one Batch rotates through the
/// provider for the whole run, so steady-state steps make zero
/// batch-tensor heap allocations (data::batch_tensor_allocations(),
/// gated by bench_train_pipeline).  The provider's batching options must
/// match `config` for the loss history to be comparable across
/// providers; provider_options(config) builds them.
TrainHistory fit(models::IrModel& model, data::BatchProvider& provider,
                 const TrainConfig& config);

/// Train a model on the dataset's (over-sampled) epoch list.  Wraps the
/// provider overload with a DatasetBatchProvider; behavior (losses,
/// weights, RNG draws) is unchanged from the pre-provider trainer.
TrainHistory fit(models::IrModel& model, const data::Dataset& dataset,
                 const TrainConfig& config);

/// The LoaderOptions matching a TrainConfig (batch size + augmentation),
/// so callers wiring a StreamingLoader to fit() can't drift from the
/// in-memory path.
data::LoaderOptions provider_options(const TrainConfig& config,
                                     bool prefetch = true);

/// Per-case evaluation record in Table-III units.
struct EvalCase {
  std::string name;
  double f1 = 0.0;
  double mae_1e4_volts = 0.0;     // MAE, 1e-4 V (paper's unit)
  double tat_seconds = 0.0;       // model inference wall clock
  double golden_seconds = 0.0;    // golden solver wall clock (reference)
  eval::Metrics raw;              // metrics in percent units
};

/// Run inference on one sample, restore to original resolution, score.
EvalCase evaluate_case(models::IrModel& model, const data::Sample& sample);

/// Evaluate a whole test set; the last entry is the "Avg" row.
std::vector<EvalCase> evaluate_testset(models::IrModel& model,
                                       const std::vector<data::Sample>& tests);

/// Predict one sample and return the restored full-resolution map
/// (percent-of-vdd units) — used by the visualization benches.
grid::Grid2D predict_map(models::IrModel& model, const data::Sample& sample);

}  // namespace lmmir::train
