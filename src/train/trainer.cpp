#include "train/trainer.hpp"

#include <algorithm>
#include <cmath>

#include "nn/optim.hpp"
#include "obs/metrics.hpp"
#include "tensor/ops.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace lmmir::train {

using tensor::Tensor;

namespace {

/// One optimization pass over the provider's epoch with the given target
/// builder; returns the mean batch loss.  `batch` is the run-wide pooled
/// Batch — the provider reuses (or swaps) its tensors, so passing the
/// same instance across epochs and stages is what keeps steady-state
/// steps allocation-free.
template <typename TargetFn>
float run_epoch(models::IrModel& model, data::BatchProvider& provider,
                const TrainConfig& config, nn::Adam& opt, util::Rng& rng,
                data::Batch& batch, TargetFn&& make_target) {
  static obs::Counter& steps_total =
      obs::counter("lmmir_train_steps_total");
  static obs::Counter& samples_total =
      obs::counter("lmmir_train_samples_total");
  static obs::Histogram& step_seconds = obs::histogram(
      "lmmir_train_step_seconds", obs::seconds_buckets());

  provider.start_epoch(rng);
  double loss_sum = 0.0;
  std::size_t batches = 0;
  while (provider.next(batch)) {
    util::Stopwatch step_watch;
    const Tensor input =
        data::slice_channels(batch.circuit, model.in_channels());

    opt.zero_grad();
    const Tensor pred = model.forward(input, batch.tokens);
    const Tensor target = make_target(batch);
    Tensor loss;
    if (config.hotspot_weight > 0.0f) {
      // mean( w .* (p - t)^2 ), w = 1 + hw * (t / max t)^2 (constant).
      float tmax = 0.0f;
      for (float v : target.data()) tmax = std::max(tmax, v);
      std::vector<float> w(target.numel(), 1.0f);
      if (tmax > 0.0f)
        for (std::size_t j = 0; j < w.size(); ++j) {
          const float r = target.data()[j] / tmax;
          w[j] += config.hotspot_weight * r * r;
        }
      const Tensor weights = Tensor::from_data(target.shape(), std::move(w));
      const Tensor diff = tensor::sub(pred, target);
      loss = tensor::mean_all(
          tensor::mul(tensor::mul(diff, diff), weights));
    } else {
      loss = tensor::mse_loss(pred, target);
    }
    loss.backward();
    nn::clip_grad_norm(opt.params(), config.clip_norm);
    opt.step();

    loss_sum += loss.item();
    ++batches;
    steps_total.add();
    samples_total.add(static_cast<std::uint64_t>(batch.circuit.dim(0)));
    step_seconds.observe(step_watch.seconds());
  }
  return batches ? static_cast<float>(loss_sum / static_cast<double>(batches))
                 : 0.0f;
}

}  // namespace

data::LoaderOptions provider_options(const TrainConfig& config,
                                     bool prefetch) {
  data::LoaderOptions opts;
  opts.batch_size = config.batch_size;
  opts.augment = config.augment;
  opts.noise_std_max = config.noise_std_max;
  opts.prefetch = prefetch;
  return opts;
}

TrainHistory fit(models::IrModel& model, data::BatchProvider& provider,
                 const TrainConfig& config) {
  TrainHistory hist;
  util::Stopwatch watch;
  util::Rng rng(config.seed);
  model.set_training(true);

  nn::Adam opt(model.parameters(), config.lr);
  // One pooled Batch for the whole run: after a short warmup its tensors
  // just rotate through the provider (zero steady-state allocations).
  data::Batch batch;

  // Stage 1: reconstruction pre-training — the decoder reproduces the
  // (clean) current map from the noisy multimodal input.
  for (int e = 0; e < config.pretrain_epochs; ++e) {
    const float loss = run_epoch(model, provider, config, opt, rng, batch,
                                 [](const data::Batch& b) {
                                   return data::slice_channels(b.circuit, 1);
                                 });
    hist.pretrain_loss.push_back(loss);
    if (config.verbose)
      util::log_info("pretrain epoch ", e, " loss ", loss);
    opt.lr *= config.lr_decay;
  }

  // Stage 2: IR-drop fine-tuning.
  for (int e = 0; e < config.finetune_epochs; ++e) {
    const float loss =
        run_epoch(model, provider, config, opt, rng, batch,
                  [](const data::Batch& b) { return b.target; });
    hist.finetune_loss.push_back(loss);
    if (config.verbose)
      util::log_info("finetune epoch ", e, " loss ", loss);
    opt.lr *= config.lr_decay;
  }

  model.set_training(false);
  hist.seconds = watch.seconds();
  return hist;
}

TrainHistory fit(models::IrModel& model, const data::Dataset& dataset,
                 const TrainConfig& config) {
  data::DatasetBatchProvider provider(dataset, provider_options(config));
  return fit(model, provider, config);
}

grid::Grid2D predict_map(models::IrModel& model, const data::Sample& sample) {
  tensor::NoGradGuard no_grad;
  model.set_training(false);
  util::Rng rng(0);
  data::Batch batch = data::make_batch({sample}, {0}, 0.0f, rng);
  const Tensor input = data::slice_channels(batch.circuit, model.in_channels());
  // predict() nests a second NoGradGuard — nesting restores correctly.
  const Tensor pred = model.predict(input, batch.tokens);

  const std::size_t side = static_cast<std::size_t>(pred.dim(2));
  grid::Grid2D map(side, side);
  map.data() = pred.data();
  map.scale(1.0f / data::kTargetScale);  // back to percent-of-vdd
  return feat::restore_from_side(map, sample.adjust);
}

EvalCase evaluate_case(models::IrModel& model, const data::Sample& sample) {
  EvalCase ec;
  ec.name = sample.name;
  util::Stopwatch watch;
  const grid::Grid2D pred = predict_map(model, sample);
  ec.tat_seconds = watch.seconds();
  ec.golden_seconds = sample.golden_solve_seconds;
  ec.raw = eval::compute_metrics(pred, sample.truth_full);
  ec.f1 = ec.raw.f1;
  ec.mae_1e4_volts = data::percent_mae_to_1e4_volts(ec.raw.mae, sample.vdd);
  return ec;
}

std::vector<EvalCase> evaluate_testset(models::IrModel& model,
                                       const std::vector<data::Sample>& tests) {
  std::vector<EvalCase> rows;
  rows.reserve(tests.size() + 1);
  EvalCase avg;
  avg.name = "Avg";
  for (const auto& s : tests) {
    rows.push_back(evaluate_case(model, s));
    avg.f1 += rows.back().f1;
    avg.mae_1e4_volts += rows.back().mae_1e4_volts;
    avg.tat_seconds += rows.back().tat_seconds;
    avg.golden_seconds += rows.back().golden_seconds;
  }
  if (!tests.empty()) {
    const double n = static_cast<double>(tests.size());
    avg.f1 /= n;
    avg.mae_1e4_volts /= n;
    avg.tat_seconds /= n;
    avg.golden_seconds /= n;
  }
  rows.push_back(avg);
  return rows;
}

}  // namespace lmmir::train
