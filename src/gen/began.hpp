#pragma once
// BeGAN-style synthetic PDN benchmark generator.
//
// The ICCAD-2023 contest data and the BeGAN augmentation set are not
// redistributable, so this module regenerates statistically similar
// benchmarks: a multi-layer power grid (alternating horizontal/vertical
// stripes, via-connected), current sources drawn from a Gaussian-mixture
// power map tapped onto the m1 rails, and voltage-source bumps on the top
// layer.  The output is an ordinary spice::Netlist, so everything
// downstream (parser round-trip, golden solver, feature maps, point cloud)
// treats generated and externally loaded benchmarks identically.
#include <cstdint>
#include <string>
#include <vector>

#include "grid/grid2d.hpp"
#include "spice/netlist.hpp"
#include "util/rng.hpp"

namespace lmmir::gen {

enum class Direction { Horizontal, Vertical };

/// One routing layer of the PDN stripe stack.
struct LayerSpec {
  int layer = 1;              // metal index (m1 = standard-cell rails)
  Direction dir = Direction::Horizontal;
  double pitch_um = 2.0;      // stripe-to-stripe spacing
  double offset_um = 0.5;     // first stripe position
  double res_per_um = 0.4;    // wire resistance per µm (thin wires: higher)
};

struct GeneratorConfig {
  std::string name = "case";
  double width_um = 64.0;
  double height_um = 64.0;
  std::vector<LayerSpec> layers;      // ascending metal index, alternating dir
  double via_resistance = 2.0;        // ohms per inter-layer via
  double vdd = 1.1;                   // volts
  double bump_pitch_um = 24.0;        // top-layer voltage-source array pitch
  double total_current = 0.5;         // amps over the whole die
  int n_hotspots = 3;                 // Gaussian-mixture current hotspots
  double hotspot_sigma_min_um = 3.0;
  double hotspot_sigma_max_um = 8.0;
  double background_fraction = 0.35;  // share of current spread uniformly
  std::uint64_t seed = 1;

  /// Fill `layers` with a standard 4-layer stack scaled to the die size.
  void use_default_stack();
};

/// Synthesize the per-µm² current-density map the current sources are
/// drawn from (background + Gaussian hotspots, normalized to
/// total_current). Exposed separately for tests and visualisation.
grid::Grid2D synth_current_map(const GeneratorConfig& cfg, util::Rng& rng);

/// Generate the full PDN netlist for a configuration.
/// Throws std::invalid_argument on inconsistent configs (fewer than two
/// layers, non-alternating directions, non-positive pitches).
spice::Netlist generate_pdn(const GeneratorConfig& cfg);

}  // namespace lmmir::gen
