#include "gen/began.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "spice/node_name.hpp"

namespace lmmir::gen {

using spice::kDbuPerMicron;
using spice::Netlist;
using spice::NodeId;
using spice::NodeName;

void GeneratorConfig::use_default_stack() {
  layers.clear();
  // Pitch is a property of the technology, not the die: it stays fixed as
  // the die grows (node count then scales with area, as in the contest
  // testcases), and grows with the metal index as real PDN stacks do
  // (upper layers thick, wide, sparse).
  constexpr double base = 2.5;
  layers.push_back({1, Direction::Horizontal, base, base * 0.5, 0.40});
  layers.push_back({2, Direction::Vertical, base, base * 0.5, 0.25});
  layers.push_back({3, Direction::Horizontal, base * 2.0, base, 0.12});
  layers.push_back({4, Direction::Vertical, base * 4.0, base, 0.05});
}

namespace {

std::vector<double> stripe_positions(const LayerSpec& spec, double extent_um) {
  std::vector<double> pos;
  for (double p = spec.offset_um; p < extent_um; p += spec.pitch_um)
    pos.push_back(p);
  if (pos.size() < 2) {
    // Degenerate die: fall back to two stripes at the edges.
    pos = {extent_um * 0.25, extent_um * 0.75};
  }
  return pos;
}

std::int64_t to_dbu(double um) {
  return static_cast<std::int64_t>(std::llround(um * kDbuPerMicron));
}

/// Index of the element of `sorted` closest to v.
std::size_t nearest_index(const std::vector<double>& sorted, double v) {
  const auto it = std::lower_bound(sorted.begin(), sorted.end(), v);
  if (it == sorted.begin()) return 0;
  if (it == sorted.end()) return sorted.size() - 1;
  const auto hi = static_cast<std::size_t>(it - sorted.begin());
  const auto lo = hi - 1;
  return (v - sorted[lo] <= sorted[hi] - v) ? lo : hi;
}

void validate(const GeneratorConfig& cfg) {
  if (cfg.layers.size() < 2)
    throw std::invalid_argument("generate_pdn: need at least 2 layers");
  for (std::size_t i = 0; i < cfg.layers.size(); ++i) {
    if (cfg.layers[i].pitch_um <= 0)
      throw std::invalid_argument("generate_pdn: non-positive pitch");
    if (cfg.layers[i].res_per_um <= 0)
      throw std::invalid_argument("generate_pdn: non-positive wire resistance");
    if (i > 0 && cfg.layers[i].dir == cfg.layers[i - 1].dir)
      throw std::invalid_argument(
          "generate_pdn: adjacent layers must alternate direction");
    if (i > 0 && cfg.layers[i].layer <= cfg.layers[i - 1].layer)
      throw std::invalid_argument("generate_pdn: layers must ascend");
  }
  if (cfg.width_um <= 0 || cfg.height_um <= 0)
    throw std::invalid_argument("generate_pdn: non-positive die size");
  if (cfg.vdd <= 0) throw std::invalid_argument("generate_pdn: vdd <= 0");
  if (cfg.via_resistance <= 0)
    throw std::invalid_argument("generate_pdn: via resistance <= 0");
}

}  // namespace

grid::Grid2D synth_current_map(const GeneratorConfig& cfg, util::Rng& rng) {
  const auto rows = static_cast<std::size_t>(std::ceil(cfg.height_um));
  const auto cols = static_cast<std::size_t>(std::ceil(cfg.width_um));
  grid::Grid2D map(rows, cols, 0.0f);

  // Uniform background.
  const float bg = static_cast<float>(cfg.background_fraction);
  map.fill(bg / static_cast<float>(map.size()));

  // Gaussian hotspots share the remaining current mass.
  const int k = std::max(0, cfg.n_hotspots);
  if (k > 0) {
    const double mass_per = (1.0 - cfg.background_fraction) / k;
    for (int h = 0; h < k; ++h) {
      const double cx = rng.uniform_double(0.1, 0.9) * cfg.width_um;
      const double cy = rng.uniform_double(0.1, 0.9) * cfg.height_um;
      const double sigma =
          rng.uniform_double(cfg.hotspot_sigma_min_um, cfg.hotspot_sigma_max_um);
      // Evaluate the (unnormalized) Gaussian, then normalize to mass_per.
      double total = 0.0;
      std::vector<double> weights(map.size());
      for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c) {
          const double dx = (static_cast<double>(c) + 0.5) - cx;
          const double dy = (static_cast<double>(r) + 0.5) - cy;
          const double w = std::exp(-0.5 * (dx * dx + dy * dy) / (sigma * sigma));
          weights[r * cols + c] = w;
          total += w;
        }
      if (total > 0)
        for (std::size_t i = 0; i < map.size(); ++i)
          map.data()[i] += static_cast<float>(mass_per * weights[i] / total);
    }
  }

  // Normalize to the configured current budget.
  const float sum = map.sum();
  if (sum > 0) map.scale(static_cast<float>(cfg.total_current) / sum);
  return map;
}

spice::Netlist generate_pdn(const GeneratorConfig& cfg) {
  validate(cfg);
  util::Rng rng(cfg.seed);
  Netlist nl;

  const std::size_t nlayers = cfg.layers.size();

  // Stripe coordinates per layer: y-positions for horizontal stripes,
  // x-positions for vertical ones.
  std::vector<std::vector<double>> stripes(nlayers);
  for (std::size_t i = 0; i < nlayers; ++i) {
    const double extent = cfg.layers[i].dir == Direction::Horizontal
                              ? cfg.height_um
                              : cfg.width_um;
    stripes[i] = stripe_positions(cfg.layers[i], extent);
  }

  // Node bookkeeping: per layer, per stripe, sorted in-stripe coordinates.
  // Key: (stripe index, coordinate along the stripe in DBU).
  struct StripeNodes {
    std::map<std::int64_t, NodeId> by_coord;  // along-stripe coord -> node
  };
  std::vector<std::vector<StripeNodes>> nodes(nlayers);
  for (std::size_t i = 0; i < nlayers; ++i) nodes[i].resize(stripes[i].size());

  auto node_at = [&](std::size_t li, std::size_t stripe_idx,
                     double along_um) -> NodeId {
    const auto& spec = cfg.layers[li];
    const double fixed_um = stripes[li][stripe_idx];
    const std::int64_t along = to_dbu(along_um);
    auto& slot = nodes[li][stripe_idx].by_coord;
    auto it = slot.find(along);
    if (it != slot.end()) return it->second;
    NodeName nm;
    nm.net = 1;
    nm.layer = spec.layer;
    if (spec.dir == Direction::Horizontal) {
      nm.x = along;
      nm.y = to_dbu(fixed_um);
    } else {
      nm.x = to_dbu(fixed_um);
      nm.y = along;
    }
    const NodeId id = nl.intern_node(nm.to_string());
    slot.emplace(along, id);
    return id;
  };

  // 1. Vias: nodes at every crossing of adjacent layers (directions
  //    alternate, so each pair crosses on a full grid).
  std::size_t via_count = 0;
  for (std::size_t li = 0; li + 1 < nlayers; ++li) {
    const auto& lower = cfg.layers[li];
    for (std::size_t si = 0; si < stripes[li].size(); ++si) {
      for (std::size_t sj = 0; sj < stripes[li + 1].size(); ++sj) {
        // Crossing point: lower stripe's fixed coord + upper stripe's fixed
        // coord; "along" on the lower layer equals the upper stripe position.
        const double along_lower = stripes[li + 1][sj];
        const double along_upper = stripes[li][si];
        const NodeId a = node_at(li, si, along_lower);
        const NodeId b = node_at(li + 1, sj, along_upper);
        nl.add_resistor("v" + std::to_string(via_count++), a, b,
                        cfg.via_resistance);
        (void)lower;
      }
    }
  }

  // 2. Wire segments: consecutive nodes along every stripe.
  std::size_t seg_count = 0;
  for (std::size_t li = 0; li < nlayers; ++li) {
    for (std::size_t si = 0; si < stripes[li].size(); ++si) {
      const auto& slot = nodes[li][si].by_coord;
      if (slot.size() < 2) continue;
      auto prev = slot.begin();
      for (auto it = std::next(slot.begin()); it != slot.end(); ++it) {
        const double dist_um =
            static_cast<double>(it->first - prev->first) / kDbuPerMicron;
        const double ohms =
            std::max(1e-3, dist_um * cfg.layers[li].res_per_um);
        nl.add_resistor("w" + std::to_string(seg_count++), prev->second,
                        it->second, ohms);
        prev = it;
      }
    }
  }

  // 3. Current taps on m1: bin each current-map pixel to the nearest m1
  //    node (nearest stripe, then nearest in-stripe node); totals are
  //    conserved exactly.
  const grid::Grid2D imap = synth_current_map(cfg, rng);
  {
    const auto& m1 = cfg.layers[0];
    const auto& m1_stripes = stripes[0];
    // Pre-extract sorted in-stripe coordinates for each m1 stripe.
    std::vector<std::vector<double>> coords(m1_stripes.size());
    std::vector<std::vector<NodeId>> ids(m1_stripes.size());
    for (std::size_t si = 0; si < m1_stripes.size(); ++si) {
      for (const auto& [along, id] : nodes[0][si].by_coord) {
        coords[si].push_back(static_cast<double>(along) / kDbuPerMicron);
        ids[si].push_back(id);
      }
    }
    std::vector<double> tap(nl.node_count(), 0.0);
    for (std::size_t r = 0; r < imap.rows(); ++r) {
      for (std::size_t c = 0; c < imap.cols(); ++c) {
        const float amps = imap.at(r, c);
        if (amps <= 0) continue;
        const double px = static_cast<double>(c) + 0.5;
        const double py = static_cast<double>(r) + 0.5;
        const double stripe_coord = m1.dir == Direction::Horizontal ? py : px;
        const double along_coord = m1.dir == Direction::Horizontal ? px : py;
        const std::size_t si = nearest_index(m1_stripes, stripe_coord);
        if (coords[si].empty()) continue;
        const std::size_t ni = nearest_index(coords[si], along_coord);
        tap[static_cast<std::size_t>(ids[si][ni])] += amps;
      }
    }
    std::size_t i_count = 0;
    for (std::size_t n = 0; n < tap.size(); ++n) {
      if (tap[n] <= 0) continue;
      nl.add_current_source("l" + std::to_string(i_count++),
                            static_cast<NodeId>(n), spice::kGroundNode,
                            tap[n]);
    }
  }

  // 4. Bumps: voltage sources on the top layer at a regular array.
  {
    const std::size_t top = nlayers - 1;
    const auto& top_stripes = stripes[top];
    std::vector<std::vector<double>> coords(top_stripes.size());
    std::vector<std::vector<NodeId>> ids(top_stripes.size());
    for (std::size_t si = 0; si < top_stripes.size(); ++si) {
      for (const auto& [along, id] : nodes[top][si].by_coord) {
        coords[si].push_back(static_cast<double>(along) / kDbuPerMicron);
        ids[si].push_back(id);
      }
    }
    std::vector<char> bumped(nl.node_count(), 0);
    std::size_t v_count = 0;
    const double half = cfg.bump_pitch_um / 2.0;
    for (double by = half; by < cfg.height_um; by += cfg.bump_pitch_um) {
      for (double bx = half; bx < cfg.width_um; bx += cfg.bump_pitch_um) {
        const double stripe_coord =
            cfg.layers[top].dir == Direction::Horizontal ? by : bx;
        const double along_coord =
            cfg.layers[top].dir == Direction::Horizontal ? bx : by;
        const std::size_t si = nearest_index(top_stripes, stripe_coord);
        if (coords[si].empty()) continue;
        const std::size_t ni = nearest_index(coords[si], along_coord);
        const NodeId node = ids[si][ni];
        if (bumped[static_cast<std::size_t>(node)]) continue;
        bumped[static_cast<std::size_t>(node)] = 1;
        nl.add_voltage_source("b" + std::to_string(v_count++), node,
                              spice::kGroundNode, cfg.vdd);
      }
    }
    if (v_count == 0) {
      // Guarantee at least one supply: pin the centre-most top-layer node.
      const std::size_t si = top_stripes.size() / 2;
      if (!coords[si].empty()) {
        const NodeId node = ids[si][coords[si].size() / 2];
        nl.add_voltage_source("b0", node, spice::kGroundNode, cfg.vdd);
      }
    }
  }

  return nl;
}

}  // namespace lmmir::gen
