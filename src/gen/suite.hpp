#pragma once
// Benchmark suites mirroring the paper's data regime:
//  - table2_suite(): the 10 hidden evaluation testcases of Table II
//    (7, 8, 9, 10, 13, 14, 15, 16, 19, 20), regenerated at a configurable
//    linear scale (default 1/8 of the contest pixel sizes);
//  - fake_training_suite(): BeGAN-like random "fake" cases;
//  - real_training_suite(): cases drawn near the testcase distribution,
//    standing in for the contest's 10 released real cases.
#include <cstdint>
#include <vector>

#include "gen/began.hpp"

namespace lmmir::gen {

struct SuiteOptions {
  /// Linear scale against the contest pixel sizes (1.0 = paper scale;
  /// the default 1/8 gives ~1/64 of the node counts, solvable on one core).
  double scale = 0.125;
};

/// Paper Table II reference statistics (full scale) for reporting.
struct Table2Reference {
  const char* name;
  std::size_t paper_nodes;
  std::size_t paper_side;  // square pixel shape
};

/// The ten hidden testcases in paper order.
const std::vector<Table2Reference>& table2_reference();

std::vector<GeneratorConfig> table2_suite(const SuiteOptions& opts = {});

std::vector<GeneratorConfig> fake_training_suite(int count, std::uint64_t seed,
                                                 const SuiteOptions& opts = {});

std::vector<GeneratorConfig> real_training_suite(int count, std::uint64_t seed,
                                                 const SuiteOptions& opts = {});

}  // namespace lmmir::gen
