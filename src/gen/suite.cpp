#include "gen/suite.hpp"

#include <algorithm>
#include <cmath>

namespace lmmir::gen {

const std::vector<Table2Reference>& table2_reference() {
  static const std::vector<Table2Reference> ref = {
      {"testcase7", 85591, 601},  {"testcase8", 83030, 601},
      {"testcase9", 166734, 835}, {"testcase10", 159940, 835},
      {"testcase13", 15768, 257}, {"testcase14", 15436, 257},
      {"testcase15", 57508, 489}, {"testcase16", 55197, 489},
      {"testcase19", 181206, 870}, {"testcase20", 174304, 870}};
  return ref;
}

namespace {

GeneratorConfig base_case(const std::string& name, double side_um,
                          std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.name = name;
  cfg.width_um = side_um;
  cfg.height_um = side_um;
  cfg.seed = seed;
  cfg.use_default_stack();
  cfg.bump_pitch_um = std::max(12.0, side_um / 3.0);
  // Current budget grows with die area so drops stay in a realistic band.
  cfg.total_current = 0.08 * (side_um * side_um) / (64.0 * 64.0);
  cfg.n_hotspots = 2 + static_cast<int>(side_um / 32.0);
  cfg.hotspot_sigma_min_um = std::max(2.0, side_um / 24.0);
  cfg.hotspot_sigma_max_um = std::max(4.0, side_um / 10.0);
  return cfg;
}

/// The paper notes several hidden cases differ from the training
/// distribution; testcases 13/14 (the smallest) get an off-distribution
/// stack: three layers, coarse rails, higher wire resistance.
void make_off_distribution(GeneratorConfig& cfg) {
  const double base = std::max(2.0, std::min(cfg.width_um, cfg.height_um) / 12.0);
  cfg.layers.clear();
  cfg.layers.push_back({1, Direction::Horizontal, base, base * 0.5, 0.65});
  cfg.layers.push_back({2, Direction::Vertical, base, base * 0.5, 0.40});
  cfg.layers.push_back({3, Direction::Horizontal, base * 2.0, base, 0.15});
  cfg.background_fraction = 0.15;
  cfg.n_hotspots = 1;
  cfg.total_current *= 1.6;
}

}  // namespace

std::vector<GeneratorConfig> table2_suite(const SuiteOptions& opts) {
  std::vector<GeneratorConfig> suite;
  std::uint64_t seed = 90001;
  for (const auto& ref : table2_reference()) {
    const double side = std::max(24.0, std::floor(ref.paper_side * opts.scale));
    GeneratorConfig cfg = base_case(ref.name, side, seed);
    seed += 7;
    if (ref.name == std::string("testcase13") ||
        ref.name == std::string("testcase14"))
      make_off_distribution(cfg);
    suite.push_back(std::move(cfg));
  }
  return suite;
}

std::vector<GeneratorConfig> fake_training_suite(int count, std::uint64_t seed,
                                                 const SuiteOptions& opts) {
  std::vector<GeneratorConfig> suite;
  util::Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    const double lo = 200.0 * opts.scale;
    const double hi = 700.0 * opts.scale;
    const double side = std::max(24.0, rng.uniform_double(lo, hi));
    GeneratorConfig cfg =
        base_case("fake" + std::to_string(i), side, seed * 131 + static_cast<std::uint64_t>(i));
    cfg.total_current *= rng.uniform_double(0.6, 1.6);
    cfg.n_hotspots = rng.randint(1, 5);
    cfg.background_fraction = rng.uniform_double(0.2, 0.5);
    suite.push_back(std::move(cfg));
  }
  return suite;
}

std::vector<GeneratorConfig> real_training_suite(int count, std::uint64_t seed,
                                                 const SuiteOptions& opts) {
  // Sample near the Table-II sizes so the "real" training cases match the
  // hidden-case distribution, as the contest's released real cases did.
  std::vector<GeneratorConfig> suite;
  util::Rng rng(seed);
  const auto& refs = table2_reference();
  for (int i = 0; i < count; ++i) {
    const auto& ref = refs[static_cast<std::size_t>(i) % refs.size()];
    const double side =
        std::max(24.0, std::floor(ref.paper_side * opts.scale *
                                  rng.uniform_double(0.9, 1.1)));
    GeneratorConfig cfg =
        base_case("real" + std::to_string(i), side, seed * 977 + static_cast<std::uint64_t>(i));
    cfg.total_current *= rng.uniform_double(0.8, 1.3);
    suite.push_back(std::move(cfg));
  }
  return suite;
}

}  // namespace lmmir::gen
