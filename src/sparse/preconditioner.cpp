#include "sparse/preconditioner.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel_for.hpp"
#include "sparse/amg.hpp"
#include "sparse/schwarz.hpp"
#include "sparse/trisolve.hpp"
#include "util/log.hpp"

namespace lmmir::sparse {

const char* to_string(PreconditionerKind kind) {
  switch (kind) {
    case PreconditionerKind::None: return "none";
    case PreconditionerKind::Jacobi: return "jacobi";
    case PreconditionerKind::Ssor: return "ssor";
    case PreconditionerKind::Ic0: return "ic0";
    case PreconditionerKind::Amg: return "amg";
    case PreconditionerKind::Schwarz: return "dd";
  }
  return "unknown";
}

std::optional<PreconditionerKind> preconditioner_kind_from_string(
    std::string_view key) {
  std::string k(key);
  for (auto& c : k) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (k == "none" || k == "identity") return PreconditionerKind::None;
  if (k == "jacobi" || k == "diag") return PreconditionerKind::Jacobi;
  if (k == "ssor") return PreconditionerKind::Ssor;
  if (k == "ic0" || k == "ic" || k == "ichol") return PreconditionerKind::Ic0;
  if (k == "amg" || k == "multigrid" || k == "sa")
    return PreconditionerKind::Amg;
  if (k == "dd" || k == "schwarz" || k == "block_jacobi")
    return PreconditionerKind::Schwarz;
  return std::nullopt;
}

PreconditionerKind preconditioner_kind_from_env(PreconditionerKind fallback) {
  const char* v = std::getenv("LMMIR_PRECOND");
  if (!v) return fallback;
  if (const auto kind = preconditioner_kind_from_string(v)) return *kind;
  util::log_warn("ignoring malformed LMMIR_PRECOND='", v,
                 "' (want none|jacobi|ssor|ic0|amg|dd)");
  return fallback;
}

namespace {

class IdentityPreconditioner final : public Preconditioner {
 public:
  PreconditionerKind kind() const override { return PreconditionerKind::None; }
  void apply(const std::vector<double>& r,
             std::vector<double>& z) const override {
    z = r;
  }
};

class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const CsrMatrix& a) : inv_diag_(a.diagonal()) {
    for (auto& d : inv_diag_) d = (d != 0.0) ? 1.0 / d : 1.0;
  }
  PreconditionerKind kind() const override { return PreconditionerKind::Jacobi; }
  void apply(const std::vector<double>& r,
             std::vector<double>& z) const override {
    z.resize(r.size());
    // Elementwise scale: disjoint writes, bitwise-identical for any thread
    // count.  Demoted mode reads the f32 diagonal (half the stream) and
    // widens per element; the product stays double.
    if (!inv_diag_f32_.empty()) {
      runtime::parallel_for(
          0, r.size(), runtime::grain_for_cost(1),
          [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i)
              z[i] = static_cast<double>(inv_diag_f32_[i]) * r[i];
          });
      return;
    }
    runtime::parallel_for(0, r.size(), runtime::grain_for_cost(1),
                          [&](std::size_t lo, std::size_t hi) {
                            for (std::size_t i = lo; i < hi; ++i)
                              z[i] = inv_diag_[i] * r[i];
                          });
  }
  bool demote_storage() override {
    if (inv_diag_f32_.empty())
      inv_diag_f32_.assign(inv_diag_.begin(), inv_diag_.end());
    return true;
  }
  bool refresh(const CsrMatrix& a) override {
    inv_diag_ = a.diagonal();
    for (auto& d : inv_diag_) d = (d != 0.0) ? 1.0 / d : 1.0;
    if (!inv_diag_f32_.empty())
      inv_diag_f32_.assign(inv_diag_.begin(), inv_diag_.end());
    return true;
  }

 private:
  std::vector<double> inv_diag_;
  std::vector<float> inv_diag_f32_;  // demoted mirror (mixed precision)
};

/// Symmetric Gauss-Seidel / SSOR sweep,
///   M = (1/(ω(2-ω))) (D + ωL) D⁻¹ (D + ωU),
/// so z = M⁻¹r = ω(2-ω) (D + ωU)⁻¹ D (D + ωL)⁻¹ r: a forward solve, a
/// diagonal scale, and a backward solve over the matrix rows.  Both
/// triangular sweeps are level-scheduled (trisolve.hpp): rows of one
/// dependency wavefront solve concurrently, each with the exact serial
/// per-row arithmetic, so results stay bitwise-identical for any runtime
/// thread count.  Holds a reference to the matrix: no extra storage.
class SsorPreconditioner final : public Preconditioner {
 public:
  explicit SsorPreconditioner(const CsrMatrix& a, double omega = 1.0)
      : a_(a),
        omega_(omega),
        diag_(a.diagonal()),
        forward_(LevelSchedule::lower(a.row_ptr(), a.col_idx(), a.dim())),
        backward_(LevelSchedule::upper(a.row_ptr(), a.col_idx(), a.dim())) {
    if (!(omega > 0.0) || !(omega < 2.0))
      throw std::invalid_argument("SsorPreconditioner: omega must be in (0,2)");
    for (auto& d : diag_)
      if (d == 0.0) d = 1.0;  // empty row: act as identity there
  }
  PreconditionerKind kind() const override { return PreconditionerKind::Ssor; }

  void apply(const std::vector<double>& r,
             std::vector<double>& z) const override {
    const std::size_t n = a_.dim();
    const auto& row_ptr = a_.row_ptr();
    const auto& col_idx = a_.col_idx();
    const auto& vals = a_.values();
    const std::size_t row_cost = 2 * (a_.nnz() / (n ? n : 1) + 1);
    work_.resize(n);
    z.resize(n);
    // Forward: (D + ωL) y = r, strictly-lower entries come first in each
    // sorted row.
    for_each_level(forward_, row_cost, [&](std::size_t i) {
      double s = r[i];
      for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
        const std::size_t j = col_idx[k];
        if (j >= i) break;
        s -= omega_ * vals[k] * work_[j];
      }
      work_[i] = s / diag_[i];
    });
    // Scale by ω(2-ω) · D (the D⁻¹ middle factor combined with the
    // 1/(ω(2-ω)) normalization).  Elementwise: disjoint writes.
    const double scale = omega_ * (2.0 - omega_);
    runtime::parallel_for(0, n, runtime::grain_for_cost(2),
                          [&](std::size_t lo, std::size_t hi) {
                            for (std::size_t i = lo; i < hi; ++i)
                              work_[i] *= scale * diag_[i];
                          });
    // Backward: (D + ωU) z = work, strictly-upper entries trail the row.
    for_each_level(backward_, row_cost, [&](std::size_t ii) {
      double s = work_[ii];
      for (std::size_t k = row_ptr[ii + 1]; k-- > row_ptr[ii];) {
        const std::size_t j = col_idx[k];
        if (j <= ii) break;
        s -= omega_ * vals[k] * z[j];
      }
      z[ii] = s / diag_[ii];
    });
  }

 private:
  const CsrMatrix& a_;
  double omega_;                      // ω=1 from the factory: symmetric GS
  std::vector<double> diag_;          // zero-diagonal rows patched to 1
  LevelSchedule forward_;             // wavefronts of the (D+ωL) solve
  LevelSchedule backward_;            // wavefronts of the (D+ωU) solve
  mutable std::vector<double> work_;  // forward-sweep intermediate
};

/// Incomplete Cholesky with zero fill-in: L has exactly the lower-triangle
/// sparsity of A and A ≈ L Lᵀ.  Apply = forward solve L y = r over L, then
/// backward solve Lᵀ z = y as a row-gather sweep over an explicitly stored
/// U = Lᵀ.  Both sweeps are level-scheduled (trisolve.hpp): the rows of one
/// dependency wavefront solve concurrently with fixed per-row arithmetic,
/// so results are bitwise-identical for any runtime thread count.
class Ic0Preconditioner final : public Preconditioner {
 public:
  explicit Ic0Preconditioner(const CsrMatrix& a) {
    n_ = a.dim();
    // A diagonal shift A + α·diag(A) repairs non-SPD pivots; PDN matrices
    // factor at α = 0.
    for (double alpha : {0.0, 1e-3, 1e-2, 1e-1, 0.5, 1.0, 10.0}) {
      if (factor(a, alpha)) {
        build_transpose();
        forward_ = LevelSchedule::lower(row_ptr_, col_idx_, n_);
        backward_ = LevelSchedule::upper(ut_row_ptr_, ut_col_idx_, n_);
        return;
      }
    }
    throw std::runtime_error(
        "Ic0Preconditioner: factorization broke down even with diagonal "
        "shifts (matrix far from SPD)");
  }
  PreconditionerKind kind() const override { return PreconditionerKind::Ic0; }

  void apply(const std::vector<double>& r,
             std::vector<double>& z) const override {
    const std::size_t row_cost =
        2 * (col_idx_.size() / (n_ ? n_ : 1) + 1);
    work_.resize(n_);
    z.resize(n_);
    // Forward: L y = r (diagonal entry is last in each row of L).
    for_each_level(forward_, row_cost, [&](std::size_t i) {
      double s = r[i];
      for (std::size_t k = row_ptr_[i]; k + 1 < row_ptr_[i + 1]; ++k)
        s -= vals_[k] * work_[col_idx_[k]];
      work_[i] = s / vals_[row_ptr_[i + 1] - 1];
    });
    // Backward: Lᵀ z = y, gathered per row of U = Lᵀ (diagonal entry is
    // first in each row of U).
    for_each_level(backward_, row_cost, [&](std::size_t i) {
      double s = work_[i];
      for (std::size_t k = ut_row_ptr_[i] + 1; k < ut_row_ptr_[i + 1]; ++k)
        s -= ut_vals_[k] * z[ut_col_idx_[k]];
      z[i] = s / ut_vals_[ut_row_ptr_[i]];
    });
  }

 private:
  /// One factorization attempt; false on a non-positive pivot.
  bool factor(const CsrMatrix& a, double alpha) {
    const auto& arp = a.row_ptr();
    const auto& aci = a.col_idx();
    const auto& av = a.values();
    row_ptr_.assign(n_ + 1, 0);
    col_idx_.clear();
    vals_.clear();
    // Lower-triangle pattern of A with the diagonal forced present.
    for (std::size_t i = 0; i < n_; ++i) {
      bool saw_diag = false;
      for (std::size_t k = arp[i]; k < arp[i + 1]; ++k) {
        const std::size_t j = aci[k];
        if (j > i) break;
        double v = av[k];
        if (j == i) {
          saw_diag = true;
          v += alpha * v;
        }
        col_idx_.push_back(j);
        vals_.push_back(v);
      }
      if (!saw_diag) {  // empty diagonal: keep the row solvable
        col_idx_.push_back(i);
        vals_.push_back(1.0);
      }
      row_ptr_[i + 1] = col_idx_.size();
    }
    // In-place row-by-row factorization on the fixed pattern.
    for (std::size_t i = 0; i < n_; ++i) {
      const std::size_t diag_k = row_ptr_[i + 1] - 1;
      for (std::size_t k = row_ptr_[i]; k < diag_k; ++k) {
        const std::size_t j = col_idx_[k];
        // l_ij = (a_ij - Σ_{t<j} l_it l_jt) / l_jj via a two-pointer merge
        // of row i's and row j's already-factored prefixes.
        double s = vals_[k];
        std::size_t pi = row_ptr_[i];
        std::size_t pj = row_ptr_[j];
        const std::size_t j_diag = row_ptr_[j + 1] - 1;
        while (pi < k && pj < j_diag) {
          if (col_idx_[pi] == col_idx_[pj]) {
            s -= vals_[pi] * vals_[pj];
            ++pi;
            ++pj;
          } else if (col_idx_[pi] < col_idx_[pj]) {
            ++pi;
          } else {
            ++pj;
          }
        }
        vals_[k] = s / vals_[j_diag];
      }
      double s = vals_[diag_k];
      for (std::size_t k = row_ptr_[i]; k < diag_k; ++k)
        s -= vals_[k] * vals_[k];
      if (!(s > 0.0) || !std::isfinite(s)) return false;  // pivot breakdown
      vals_[diag_k] = std::sqrt(s);
    }
    return true;
  }

  /// U = Lᵀ in CSR (row i holds L's column i, ascending, diagonal first):
  /// turns the backward solve's column scatter into a per-row gather the
  /// level scheduler can fan out.
  void build_transpose() {
    ut_row_ptr_.assign(n_ + 1, 0);
    for (std::size_t j : col_idx_) ++ut_row_ptr_[j + 1];
    for (std::size_t i = 0; i < n_; ++i) ut_row_ptr_[i + 1] += ut_row_ptr_[i];
    ut_col_idx_.resize(col_idx_.size());
    ut_vals_.resize(vals_.size());
    std::vector<std::size_t> cursor(ut_row_ptr_.begin(),
                                    ut_row_ptr_.end() - 1);
    // Walking L's rows in ascending order writes each U row's columns in
    // ascending order, and the first entry of column i encountered is the
    // diagonal L_ii (rows below i contribute the strictly-upper tail).
    for (std::size_t i = 0; i < n_; ++i)
      for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
        const std::size_t j = col_idx_[k];
        ut_col_idx_[cursor[j]] = i;
        ut_vals_[cursor[j]] = vals_[k];
        ++cursor[j];
      }
  }

  std::size_t n_ = 0;
  std::vector<std::size_t> row_ptr_;  // L, lower triangle incl. diagonal
  std::vector<std::size_t> col_idx_;
  std::vector<double> vals_;
  std::vector<std::size_t> ut_row_ptr_;  // U = Lᵀ (see build_transpose)
  std::vector<std::size_t> ut_col_idx_;
  std::vector<double> ut_vals_;
  LevelSchedule forward_;   // wavefronts of the L solve
  LevelSchedule backward_;  // wavefronts of the Lᵀ solve
  mutable std::vector<double> work_;  // forward-solve intermediate
};

}  // namespace

std::unique_ptr<Preconditioner> make_preconditioner(PreconditionerKind kind,
                                                    const CsrMatrix& a) {
  obs::Span span("precond.build");
  if (obs::metrics_enabled())
    obs::counter("lmmir_precond_builds_total").add();
  switch (kind) {
    case PreconditionerKind::None:
      return std::make_unique<IdentityPreconditioner>();
    case PreconditionerKind::Jacobi:
      return std::make_unique<JacobiPreconditioner>(a);
    case PreconditionerKind::Ssor:
      return std::make_unique<SsorPreconditioner>(a);
    case PreconditionerKind::Ic0:
      return std::make_unique<Ic0Preconditioner>(a);
    case PreconditionerKind::Amg:
      return std::make_unique<AmgPreconditioner>(a);
    case PreconditionerKind::Schwarz:
      return std::make_unique<SchwarzPreconditioner>(a);
  }
  throw std::invalid_argument("make_preconditioner: unknown kind");
}

std::unique_ptr<Preconditioner> make_preconditioner(std::string_view key,
                                                    const CsrMatrix& a) {
  const auto kind = preconditioner_kind_from_string(key);
  if (!kind)
    throw std::invalid_argument("make_preconditioner: unknown key '" +
                                std::string(key) + "'");
  return make_preconditioner(*kind, a);
}

}  // namespace lmmir::sparse
