#include "sparse/cg.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel_for.hpp"
#include "util/stopwatch.hpp"

namespace lmmir::sparse {

namespace {

/// Fixed reduction block: partial sums are computed per block (serial
/// inside each block) and combined serially in block order, so the result
/// is bitwise-identical for any runtime thread count.
constexpr std::size_t kReduceBlock = 4096;

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = a.size();
  if (n <= kReduceBlock) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
    return acc;
  }
  const std::size_t nblocks = (n + kReduceBlock - 1) / kReduceBlock;
  std::vector<double> partial(nblocks, 0.0);
  runtime::parallel_for(
      0, nblocks, runtime::grain_for_cost(2 * kReduceBlock),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t blk = lo; blk < hi; ++blk) {
          const std::size_t from = blk * kReduceBlock;
          const std::size_t to = std::min(n, from + kReduceBlock);
          double acc = 0.0;
          for (std::size_t i = from; i < to; ++i) acc += a[i] * b[i];
          partial[blk] = acc;
        }
      });
  double acc = 0.0;
  for (double p : partial) acc += p;
  return acc;
}

double norm2(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

/// x += alpha*p, r -= alpha*ap in one pass (disjoint element writes).
void update_iterate(std::vector<double>& x, std::vector<double>& r,
                    const std::vector<double>& p, const std::vector<double>& ap,
                    double alpha) {
  runtime::parallel_for(0, x.size(), runtime::grain_for_cost(4),
                        [&](std::size_t lo, std::size_t hi) {
                          for (std::size_t i = lo; i < hi; ++i) {
                            x[i] += alpha * p[i];
                            r[i] -= alpha * ap[i];
                          }
                        });
}

/// p = z + beta*p.
void update_direction(std::vector<double>& p, const std::vector<double>& z,
                      double beta) {
  runtime::parallel_for(0, p.size(), runtime::grain_for_cost(2),
                        [&](std::size_t lo, std::size_t hi) {
                          for (std::size_t i = lo; i < hi; ++i)
                            p[i] = z[i] + beta * p[i];
                        });
}

/// Step sizes beyond this are numerically meaningless for conductance
/// systems and risk overflowing the iterate: treat as breakdown instead.
constexpr double kAlphaLimit = 1e100;

}  // namespace

namespace {

CgResult run_pcg(const CsrMatrix& a, const std::vector<double>& b,
                 const CgOptions& opts, const Preconditioner* precond,
                 const std::vector<double>* x0) {
  const std::size_t n = a.dim();
  if (b.size() != n)
    throw std::invalid_argument("conjugate_gradient: rhs size mismatch");
  if (x0 && x0->size() != n)
    throw std::invalid_argument("conjugate_gradient: x0 size mismatch");

  CgResult res;
  res.preconditioner = precond ? precond->kind() : opts.preconditioner;
  res.x.assign(n, 0.0);
  if (n == 0) {
    res.converged = true;
    return res;
  }

  const double bnorm = norm2(b);
  if (bnorm == 0.0) {
    res.converged = true;  // x = 0 is exact; ignore any guess
    return res;
  }

  std::unique_ptr<Preconditioner> owned;
  const Preconditioner* m = precond;
  if (!m) {
    util::Stopwatch setup_watch;
    owned = make_preconditioner(opts.preconditioner, a);
    m = owned.get();
    res.precond_setup_seconds = setup_watch.seconds();
  }

  std::vector<double> r = b;  // r = b - A*0
  std::vector<double> z(n), p(n), ap(n);
  if (x0) {
    // Warm start: r = b - A·x₀.  A guess with a non-finite residual (stale
    // iterate of an exploded solve) is discarded rather than trusted.
    res.x = *x0;
    a.multiply(res.x, ap);
    runtime::parallel_for(0, n, runtime::grain_for_cost(1),
                          [&](std::size_t lo, std::size_t hi) {
                            for (std::size_t i = lo; i < hi; ++i)
                              r[i] -= ap[i];
                          });
    const double r0 = norm2(r) / bnorm;
    if (std::isfinite(r0)) {
      res.warm_started = true;
      res.initial_residual = r0;
      res.residual = r0;
      if (r0 < opts.tolerance) {
        res.converged = true;  // the guess already satisfies the tolerance
        return res;
      }
    } else {
      res.x.assign(n, 0.0);
      r = b;
    }
  }
  {
    util::Stopwatch apply_watch;
    m->apply(r, z);
    res.precond_apply_seconds += apply_watch.seconds();
  }
  p = z;
  double rz = dot(r, z);
  if (!res.warm_started) res.residual = 1.0;  // ||b - A*0|| / ||b||
  if (!(rz > 0.0) || !std::isfinite(rz)) {
    // M is not positive definite on r (degenerate preconditioner input).
    res.breakdown = true;
    return res;
  }

  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    a.multiply(p, ap);
    const double pap = dot(p, ap);
    if (!(pap > 0.0) || !std::isfinite(pap)) {
      res.breakdown = true;  // matrix not SPD along p (semi-definite case)
      break;
    }
    const double alpha = rz / pap;
    if (!std::isfinite(alpha) || std::abs(alpha) > kAlphaLimit) {
      res.breakdown = true;  // step would overflow the iterate
      break;
    }
    update_iterate(res.x, r, p, ap, alpha);
    const double next_residual = norm2(r) / bnorm;
    if (!std::isfinite(next_residual)) {
      // ||r||² overflowed: roll the update back (entries are still finite,
      // alpha was bounded) and stop with the last usable iterate.
      update_iterate(res.x, r, p, ap, -alpha);
      res.breakdown = true;
      break;
    }
    res.iterations = it + 1;
    res.residual = next_residual;
    if (opts.record_residual_history)
      res.residual_history.push_back(next_residual);
    if (res.residual < opts.tolerance) {
      res.converged = true;
      return res;
    }
    {
      util::Stopwatch apply_watch;
      m->apply(r, z);
      res.precond_apply_seconds += apply_watch.seconds();
    }
    const double rz_next = dot(r, z);
    if (!(rz_next > 0.0) || !std::isfinite(rz_next)) {
      res.breakdown = true;  // z lost positivity: cannot form a new direction
      break;
    }
    const double beta = rz_next / rz;
    rz = rz_next;
    update_direction(p, z, beta);
  }
  // Breakdown and iteration-exhaustion paths both report a finite residual.
  if (!std::isfinite(res.residual))
    res.residual = std::numeric_limits<double>::max();
  return res;
}

}  // namespace

CgResult conjugate_gradient(const CsrMatrix& a, const std::vector<double>& b,
                            const CgOptions& opts,
                            const Preconditioner* precond,
                            const std::vector<double>* x0) {
  obs::Span span("cg.solve");
  CgResult res = run_pcg(a, b, opts, precond, x0);
  // Per-solve telemetry: one-shot registry writes after the iteration, so
  // the hot loop itself carries no instrumentation.
  if (obs::metrics_enabled()) {
    static obs::Counter& solves = obs::counter("lmmir_pcg_solves_total");
    static obs::Counter& iterations =
        obs::counter("lmmir_pcg_iterations_total");
    static obs::Counter& converged = obs::counter("lmmir_pcg_converged_total");
    static obs::Counter& breakdowns =
        obs::counter("lmmir_pcg_breakdowns_total");
    static obs::Counter& warm = obs::counter("lmmir_pcg_warm_starts_total");
    static obs::Histogram& iter_hist =
        obs::histogram("lmmir_pcg_iterations", obs::iteration_buckets());
    static obs::Gauge& setup_s =
        obs::gauge("lmmir_pcg_precond_setup_seconds_total");
    static obs::Gauge& apply_s =
        obs::gauge("lmmir_pcg_precond_apply_seconds_total");
    solves.add();
    iterations.add(res.iterations);
    if (res.converged) converged.add();
    if (res.breakdown) breakdowns.add();
    if (res.warm_started) warm.add();
    iter_hist.observe(static_cast<double>(res.iterations));
    setup_s.add(res.precond_setup_seconds);
    apply_s.add(res.precond_apply_seconds);
  }
  return res;
}

}  // namespace lmmir::sparse
