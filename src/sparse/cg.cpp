#include "sparse/cg.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel_for.hpp"
#include "util/stopwatch.hpp"

namespace lmmir::sparse {

namespace {

/// Fixed reduction block: partial sums are computed per block (serial
/// inside each block) and combined serially in block order, so the result
/// is bitwise-identical for any runtime thread count.
constexpr std::size_t kReduceBlock = 4096;

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = a.size();
  if (n <= kReduceBlock) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
    return acc;
  }
  const std::size_t nblocks = (n + kReduceBlock - 1) / kReduceBlock;
  std::vector<double> partial(nblocks, 0.0);
  runtime::parallel_for(
      0, nblocks, runtime::grain_for_cost(2 * kReduceBlock),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t blk = lo; blk < hi; ++blk) {
          const std::size_t from = blk * kReduceBlock;
          const std::size_t to = std::min(n, from + kReduceBlock);
          double acc = 0.0;
          for (std::size_t i = from; i < to; ++i) acc += a[i] * b[i];
          partial[blk] = acc;
        }
      });
  double acc = 0.0;
  for (double p : partial) acc += p;
  return acc;
}

double norm2(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

/// x += alpha*p, r -= alpha*ap in one pass (disjoint element writes).
void update_iterate(std::vector<double>& x, std::vector<double>& r,
                    const std::vector<double>& p, const std::vector<double>& ap,
                    double alpha) {
  runtime::parallel_for(0, x.size(), runtime::grain_for_cost(4),
                        [&](std::size_t lo, std::size_t hi) {
                          for (std::size_t i = lo; i < hi; ++i) {
                            x[i] += alpha * p[i];
                            r[i] -= alpha * ap[i];
                          }
                        });
}

/// p = z + beta*p.
void update_direction(std::vector<double>& p, const std::vector<double>& z,
                      double beta) {
  runtime::parallel_for(0, p.size(), runtime::grain_for_cost(2),
                        [&](std::size_t lo, std::size_t hi) {
                          for (std::size_t i = lo; i < hi; ++i)
                            p[i] = z[i] + beta * p[i];
                        });
}

/// Step sizes beyond this are numerically meaningless for conductance
/// systems and risk overflowing the iterate: treat as breakdown instead.
constexpr double kAlphaLimit = 1e100;

}  // namespace

namespace {

/// y = A·x with the solve's work counters updated: one product, its
/// deterministic byte count, and the wall time it took.  Counter and
/// stopwatch writes happen outside the kernel, so the double path's
/// floating-point arithmetic — and the golden checksums — are untouched.
template <typename Mat>
void counted_spmv(const Mat& a, const std::vector<double>& x,
                  std::vector<double>& y, CgResult& res) {
  util::Stopwatch watch;
  a.multiply(x, y);
  res.spmv_seconds += watch.seconds();
  res.spmv_count += 1;
  res.spmv_bytes += a.bytes_per_spmv();
}

/// The PCG recurrence, templated over the matrix storage: CsrMatrix for
/// the classic all-double solve, CsrMatrixF32 for the memory-bound inner
/// solves of the mixed-precision path (f32 storage, double recurrences).
/// The f32 instantiation requires a prebuilt preconditioner — it is built
/// from the double matrix, which this function does not see.
template <typename Mat>
CgResult run_pcg(const Mat& a, const std::vector<double>& b,
                 const CgOptions& opts, const Preconditioner* precond,
                 const std::vector<double>* x0) {
  const std::size_t n = a.dim();
  if (b.size() != n)
    throw std::invalid_argument("conjugate_gradient: rhs size mismatch");
  if (x0 && x0->size() != n)
    throw std::invalid_argument("conjugate_gradient: x0 size mismatch");

  CgResult res;
  res.preconditioner = precond ? precond->kind() : opts.preconditioner;
  res.x.assign(n, 0.0);
  if (n == 0) {
    res.converged = true;
    return res;
  }

  const double bnorm = norm2(b);
  if (bnorm == 0.0) {
    res.converged = true;  // x = 0 is exact; ignore any guess
    return res;
  }

  std::unique_ptr<Preconditioner> owned;
  const Preconditioner* m = precond;
  if (!m) {
    if constexpr (std::is_same_v<Mat, CsrMatrix>) {
      util::Stopwatch setup_watch;
      owned = make_preconditioner(opts.preconditioner, a);
      m = owned.get();
      res.precond_setup_seconds = setup_watch.seconds();
    } else {
      throw std::logic_error(
          "run_pcg: the f32 inner solve needs a prebuilt preconditioner");
    }
  }

  std::vector<double> r = b;  // r = b - A*0
  std::vector<double> z(n), p(n), ap(n);
  if (x0) {
    // Warm start: r = b - A·x₀.  A guess with a non-finite residual (stale
    // iterate of an exploded solve) is discarded rather than trusted.
    res.x = *x0;
    counted_spmv(a, res.x, ap, res);
    runtime::parallel_for(0, n, runtime::grain_for_cost(1),
                          [&](std::size_t lo, std::size_t hi) {
                            for (std::size_t i = lo; i < hi; ++i)
                              r[i] -= ap[i];
                          });
    const double r0 = norm2(r) / bnorm;
    if (std::isfinite(r0)) {
      res.warm_started = true;
      res.initial_residual = r0;
      res.residual = r0;
      if (r0 < opts.tolerance) {
        res.converged = true;  // the guess already satisfies the tolerance
        return res;
      }
    } else {
      res.x.assign(n, 0.0);
      r = b;
    }
  }
  {
    util::Stopwatch apply_watch;
    m->apply(r, z);
    res.precond_apply_seconds += apply_watch.seconds();
  }
  p = z;
  double rz = dot(r, z);
  if (!res.warm_started) res.residual = 1.0;  // ||b - A*0|| / ||b||
  if (!(rz > 0.0) || !std::isfinite(rz)) {
    // M is not positive definite on r (degenerate preconditioner input).
    res.breakdown = true;
    return res;
  }

  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    counted_spmv(a, p, ap, res);
    const double pap = dot(p, ap);
    if (!(pap > 0.0) || !std::isfinite(pap)) {
      res.breakdown = true;  // matrix not SPD along p (semi-definite case)
      break;
    }
    const double alpha = rz / pap;
    if (!std::isfinite(alpha) || std::abs(alpha) > kAlphaLimit) {
      res.breakdown = true;  // step would overflow the iterate
      break;
    }
    update_iterate(res.x, r, p, ap, alpha);
    const double next_residual = norm2(r) / bnorm;
    if (!std::isfinite(next_residual)) {
      // ||r||² overflowed: roll the update back (entries are still finite,
      // alpha was bounded) and stop with the last usable iterate.
      update_iterate(res.x, r, p, ap, -alpha);
      res.breakdown = true;
      break;
    }
    res.iterations = it + 1;
    res.residual = next_residual;
    if (opts.record_residual_history)
      res.residual_history.push_back(next_residual);
    if (res.residual < opts.tolerance) {
      res.converged = true;
      return res;
    }
    {
      util::Stopwatch apply_watch;
      m->apply(r, z);
      res.precond_apply_seconds += apply_watch.seconds();
    }
    const double rz_next = dot(r, z);
    if (!(rz_next > 0.0) || !std::isfinite(rz_next)) {
      res.breakdown = true;  // z lost positivity: cannot form a new direction
      break;
    }
    const double beta = rz_next / rz;
    rz = rz_next;
    update_direction(p, z, beta);
  }
  // Breakdown and iteration-exhaustion paths both report a finite residual.
  if (!std::isfinite(res.residual))
    res.residual = std::numeric_limits<double>::max();
  return res;
}

/// Inner solves stop at this relative reduction: below ~1e-6 the f32
/// matrix's own representation error dominates the inner residual, so
/// extra inner iterations buy nothing the outer refinement can keep.
constexpr double kMixedInnerFloor = 1e-6;
/// Refinement passes beyond this mean the f32 floor was hit; each pass
/// normally multiplies the residual by ~1e-5, so 8 covers any tolerance.
constexpr std::size_t kMaxRefinements = 8;

/// Mixed-precision PCG: double-precision iterative refinement around f32-
/// storage inner solves.
///
///   loop: r_d = b − A·x      (double matrix — the exact residual)
///         solve A32·dx = r_d (inner PCG, f32 SpMV, double recurrences)
///         x += dx
///
/// Each pass re-measures the TRUE residual in double, so the accumulated
/// x converges to the same tolerance as the all-double path while the
/// memory-bound SpMVs stream roughly half the bytes.  `max_iterations`
/// budgets the summed inner iterations.
CgResult run_mixed(const CsrMatrix& a, const std::vector<double>& b,
                   const CgOptions& opts, const Preconditioner* precond,
                   const std::vector<double>* x0) {
  const std::size_t n = a.dim();
  if (b.size() != n)
    throw std::invalid_argument("conjugate_gradient: rhs size mismatch");
  if (x0 && x0->size() != n)
    throw std::invalid_argument("conjugate_gradient: x0 size mismatch");

  CgResult res;
  res.precision = SolverPrecision::Mixed;
  res.preconditioner = precond ? precond->kind() : opts.preconditioner;
  res.x.assign(n, 0.0);
  if (n == 0) {
    res.converged = true;
    return res;
  }
  const double bnorm = norm2(b);
  if (bnorm == 0.0) {
    res.converged = true;
    return res;
  }

  std::unique_ptr<Preconditioner> owned;
  const Preconditioner* m = precond;
  if (!m) {
    util::Stopwatch setup_watch;
    owned = make_preconditioner(opts.preconditioner, a);
    // Kinds that support it halve their own apply traffic too (Jacobi f32
    // diagonal, AMG f32 level operators); the rest keep double storage.
    owned->demote_storage();
    m = owned.get();
    res.precond_setup_seconds = setup_watch.seconds();
  }

  const CsrMatrixF32 a32(a);
  std::vector<double> rd(n), work(n);
  if (x0) res.x = *x0;
  double prev_rel = std::numeric_limits<double>::infinity();
  for (std::size_t pass = 0;; ++pass) {
    // True residual in double precision.
    counted_spmv(a, res.x, work, res);
    runtime::parallel_for(0, n, runtime::grain_for_cost(2),
                          [&](std::size_t lo, std::size_t hi) {
                            for (std::size_t i = lo; i < hi; ++i)
                              rd[i] = b[i] - work[i];
                          });
    double rel = norm2(rd) / bnorm;
    if (pass == 0) {
      if (x0 && std::isfinite(rel)) {
        res.warm_started = true;
        res.initial_residual = rel;
      } else if (x0) {
        // Non-finite guess: fall back to the zero start (rd = b exactly).
        res.x.assign(n, 0.0);
        rd = b;
        rel = 1.0;
      }
    } else if (!std::isfinite(rel)) {
      res.breakdown = true;
      break;
    }
    res.residual = rel;
    if (opts.record_residual_history && pass > 0)
      res.residual_history.push_back(rel);
    if (rel < opts.tolerance) {
      res.converged = true;
      break;
    }
    // Stop when refinement stalls (the f32 representation floor), the
    // pass budget runs out, or the inner-iteration budget is spent.
    if (pass > 0 && rel > 0.5 * prev_rel) break;
    if (pass >= kMaxRefinements) break;
    if (res.iterations >= opts.max_iterations) break;
    prev_rel = rel;

    CgOptions inner = opts;
    inner.precision = SolverPrecision::Double;  // recurrences; storage is f32
    inner.record_residual_history = false;
    inner.max_iterations = opts.max_iterations - res.iterations;
    // The global residual after the pass is roughly (inner reduction)·rel,
    // so aim a factor 4 below the target but never under the f32 floor.
    inner.tolerance =
        std::max(kMixedInnerFloor, 0.25 * opts.tolerance / rel);
    const CgResult ir = run_pcg(a32, rd, inner, m, nullptr);
    res.iterations += ir.iterations;
    res.spmv_count += ir.spmv_count;
    res.spmv_bytes += ir.spmv_bytes;
    res.spmv_seconds += ir.spmv_seconds;
    res.precond_apply_seconds += ir.precond_apply_seconds;
    res.refinement_steps = pass + 1;
    runtime::parallel_for(0, n, runtime::grain_for_cost(2),
                          [&](std::size_t lo, std::size_t hi) {
                            for (std::size_t i = lo; i < hi; ++i)
                              res.x[i] += ir.x[i];
                          });
    if (ir.breakdown) {
      // Report the residual of the corrected iterate honestly, then stop.
      counted_spmv(a, res.x, work, res);
      runtime::parallel_for(0, n, runtime::grain_for_cost(2),
                            [&](std::size_t lo, std::size_t hi) {
                              for (std::size_t i = lo; i < hi; ++i)
                                rd[i] = b[i] - work[i];
                            });
      const double final_rel = norm2(rd) / bnorm;
      if (std::isfinite(final_rel)) res.residual = final_rel;
      res.converged = res.residual < opts.tolerance;
      res.breakdown = !res.converged;
      break;
    }
  }
  if (!std::isfinite(res.residual))
    res.residual = std::numeric_limits<double>::max();
  return res;
}

}  // namespace

CgResult conjugate_gradient(const CsrMatrix& a, const std::vector<double>& b,
                            const CgOptions& opts,
                            const Preconditioner* precond,
                            const std::vector<double>* x0) {
  obs::Span span("cg.solve");
  // Mixed precision needs u32-indexable storage; past that the double
  // path is the only correct option, so downgrade silently (res.precision
  // reports what ran).
  constexpr std::size_t kU32Max = 0xFFFFFFFFull;
  const bool mixed = opts.precision == SolverPrecision::Mixed &&
                     a.dim() < kU32Max && a.nnz() < kU32Max;
  CgResult res = mixed ? run_mixed(a, b, opts, precond, x0)
                       : run_pcg(a, b, opts, precond, x0);
  // Per-solve telemetry: one-shot registry writes after the iteration, so
  // the hot loop itself carries no instrumentation.
  if (obs::metrics_enabled()) {
    static obs::Counter& solves = obs::counter("lmmir_pcg_solves_total");
    static obs::Counter& iterations =
        obs::counter("lmmir_pcg_iterations_total");
    static obs::Counter& converged = obs::counter("lmmir_pcg_converged_total");
    static obs::Counter& breakdowns =
        obs::counter("lmmir_pcg_breakdowns_total");
    static obs::Counter& warm = obs::counter("lmmir_pcg_warm_starts_total");
    static obs::Histogram& iter_hist =
        obs::histogram("lmmir_pcg_iterations", obs::iteration_buckets());
    static obs::Gauge& setup_s =
        obs::gauge("lmmir_pcg_precond_setup_seconds_total");
    static obs::Gauge& apply_s =
        obs::gauge("lmmir_pcg_precond_apply_seconds_total");
    static obs::Counter& spmvs = obs::counter("lmmir_pcg_spmv_total");
    static obs::Counter& spmv_bytes =
        obs::counter("lmmir_pcg_spmv_bytes_total");
    static obs::Gauge& spmv_s = obs::gauge("lmmir_pcg_spmv_seconds_total");
    static obs::Counter& refinements =
        obs::counter("lmmir_pcg_refinement_steps_total");
    solves.add();
    iterations.add(res.iterations);
    if (res.converged) converged.add();
    if (res.breakdown) breakdowns.add();
    if (res.warm_started) warm.add();
    iter_hist.observe(static_cast<double>(res.iterations));
    setup_s.add(res.precond_setup_seconds);
    apply_s.add(res.precond_apply_seconds);
    spmvs.add(res.spmv_count);
    spmv_bytes.add(res.spmv_bytes);
    spmv_s.add(res.spmv_seconds);
    refinements.add(res.refinement_steps);
    // Per-preconditioner breakdown, encoded in the metric name (the
    // registry is name-keyed; this is a post-solve lookup, not hot path).
    const std::string prefix =
        std::string("lmmir_pcg_") + to_string(res.preconditioner);
    obs::counter(prefix + "_solves_total").add();
    obs::counter(prefix + "_iterations_total").add(res.iterations);
  }
  return res;
}

}  // namespace lmmir::sparse
