#include "sparse/cg.hpp"

#include <cmath>
#include <stdexcept>

namespace lmmir::sparse {

namespace {
double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}
double norm2(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }
}  // namespace

CgResult conjugate_gradient(const CsrMatrix& a, const std::vector<double>& b,
                            const CgOptions& opts) {
  const std::size_t n = a.dim();
  if (b.size() != n)
    throw std::invalid_argument("conjugate_gradient: rhs size mismatch");

  CgResult res;
  res.x.assign(n, 0.0);
  if (n == 0) {
    res.converged = true;
    return res;
  }

  const double bnorm = norm2(b);
  if (bnorm == 0.0) {
    res.converged = true;
    return res;
  }

  // Jacobi preconditioner M = diag(A); guard against zero diagonals.
  std::vector<double> inv_diag = a.diagonal();
  for (auto& d : inv_diag) d = (d != 0.0) ? 1.0 / d : 1.0;

  std::vector<double> r = b;  // r = b - A*0
  std::vector<double> z(n), p(n), ap(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
  p = z;
  double rz = dot(r, z);

  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    a.multiply(p, ap);
    const double pap = dot(p, ap);
    if (pap <= 0.0) break;  // matrix not SPD (or breakdown)
    const double alpha = rz / pap;
    for (std::size_t i = 0; i < n; ++i) {
      res.x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    res.iterations = it + 1;
    res.residual = norm2(r) / bnorm;
    if (res.residual < opts.tolerance) {
      res.converged = true;
      return res;
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return res;
}

}  // namespace lmmir::sparse
