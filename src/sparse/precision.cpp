#include "sparse/precision.hpp"

#include <cctype>
#include <cstdlib>
#include <string>

#include "util/log.hpp"

namespace lmmir::sparse {

const char* to_string(SolverPrecision precision) {
  switch (precision) {
    case SolverPrecision::Double: return "double";
    case SolverPrecision::Mixed: return "mixed";
  }
  return "unknown";
}

std::optional<SolverPrecision> solver_precision_from_string(
    std::string_view key) {
  std::string k(key);
  for (auto& c : k)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (k == "double" || k == "fp64" || k == "f64")
    return SolverPrecision::Double;
  if (k == "mixed" || k == "float" || k == "fp32" || k == "f32")
    return SolverPrecision::Mixed;
  return std::nullopt;
}

SolverPrecision solver_precision_from_env(SolverPrecision fallback) {
  const char* v = std::getenv("LMMIR_SOLVER_PRECISION");
  if (!v) return fallback;
  if (const auto p = solver_precision_from_string(v)) return *p;
  util::log_warn("ignoring malformed LMMIR_SOLVER_PRECISION='", v,
                 "' (want double|mixed)");
  return fallback;
}

}  // namespace lmmir::sparse
