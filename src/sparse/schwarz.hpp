#pragma once
// Overlapping additive-Schwarz (tiled domain-decomposition) preconditioner.
// The unknowns are split into contiguous index tiles — the PDN generators
// number nodes in grid order, so index tiles are spatially coherent bands —
// each tile is grown by `overlap` rounds of matrix-pattern adjacency, and
// one apply solves every extended tile with its own IC(0) factor:
//
//   M⁻¹ = Σ_s  R_sᵀ · (L_s·L_sᵀ)⁻¹ · R_s
//
// (R_s = restriction onto subdomain s).  Each term is symmetric positive
// semi-definite and the overlapping union covers every unknown, so the sum
// is SPD and valid for PCG.  Symmetric additive combination was chosen
// over restricted additive Schwarz deliberately: RAS converges a bit
// faster with GMRES but is nonsymmetric, which PCG cannot use.
//
// This preconditioner is the "turn threads into single-solve speedup"
// path: subdomain solves are independent and fan out over the runtime
// pool, while SSOR/IC(0) level-scheduled sweeps only parallelize within a
// wavefront.
//
// Determinism contract: the partition depends only on the matrix (dim,
// pattern) and the options — NEVER on the thread count.  Subdomain solves
// write private buffers, and the overlapping contributions are summed
// serially in fixed subdomain order, so the apply is bitwise-identical
// for any LMMIR_THREADS.
//
// Reuse: `refresh(a)` keeps the partition and the per-subdomain
// extraction plans (local-nnz -> global-nnz slot maps) and only re-copies
// values + refactors the local IC(0) solvers — the pdn::SolverContext
// ECO / load-sweep path.
#include <cstddef>
#include <memory>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/preconditioner.hpp"

namespace lmmir::sparse {

struct SchwarzOptions {
  /// Number of tiles.  Clamped to the matrix dimension; more tiles means
  /// more parallelism but weaker coupling (slightly more iterations).
  std::size_t blocks = 8;
  /// Halo growth rounds: each round extends every tile by its
  /// matrix-pattern neighbors.  0 = non-overlapping block Jacobi.
  std::size_t overlap = 1;

  /// Defaults overridden from LMMIR_DD_BLOCKS / LMMIR_DD_OVERLAP
  /// (malformed values warn and fall back).
  static SchwarzOptions from_environment();
};

class SchwarzPreconditioner final : public Preconditioner {
 public:
  explicit SchwarzPreconditioner(
      const CsrMatrix& a, SchwarzOptions opts = SchwarzOptions::from_environment());

  PreconditionerKind kind() const override {
    return PreconditionerKind::Schwarz;
  }
  void apply(const std::vector<double>& r,
             std::vector<double>& z) const override;

  /// Numeric rebuild on the SAME pattern: re-copy subdomain values through
  /// the stored slot maps and refactor the local IC(0) solvers.  The
  /// partition and extraction plans are kept.  Always true.
  bool refresh(const CsrMatrix& a) override;

  /// Partition telemetry for tests / benches.
  struct PartitionStats {
    std::size_t subdomains = 0;
    std::size_t overlap_rounds = 0;
    /// Σ extended-tile sizes; > dim when tiles overlap.
    std::size_t total_nodes = 0;
    std::size_t max_subdomain = 0;
    std::size_t refreshes = 0;
  };
  const PartitionStats& stats() const { return stats_; }
  const SchwarzOptions& options() const { return opts_; }

 private:
  struct Subdomain {
    std::vector<std::size_t> nodes;    // global ids, ascending (core + halo)
    CsrMatrix a_local;                 // principal submatrix over `nodes`
    std::vector<std::size_t> slots;    // local nnz k -> global values() slot
    std::unique_ptr<Preconditioner> solver;  // local IC(0)
    mutable std::vector<double> r_local, z_local;  // private apply buffers
  };

  void extract(const CsrMatrix& a, Subdomain& sd) const;

  SchwarzOptions opts_;
  std::size_t n_ = 0;
  std::vector<Subdomain> subdomains_;
  PartitionStats stats_;
};

}  // namespace lmmir::sparse
