#pragma once
// Solver storage precision for the PCG hot loop.  PDN SpMV is memory-bound
// — the value and index arrays stream through cache once per iteration —
// so demoting the MATRIX STORAGE to float (values f32, indices u32) halves
// the byte traffic per iteration while every recurrence (dot products,
// alpha/beta, iterate updates) stays in double.  An outer
// iterative-refinement loop recovers full double-precision accuracy: each
// inner solve runs against the demoted operator, the true residual is
// re-evaluated in double, and the correction system is re-solved until the
// double-precision tolerance holds.
//
//   Double — today's pure-double PCG, bit-exact with the pre-knob solver.
//   Mixed  — f32-storage SpMV + double recurrences + refinement.
//
// The knob rides SolveOptions::cg.precision; LMMIR_SOLVER_PRECISION
// selects it process-wide ("double" | "mixed").
#include <optional>
#include <string_view>

namespace lmmir::sparse {

enum class SolverPrecision { Double, Mixed };

/// Canonical lower-case key ("double", "mixed").
const char* to_string(SolverPrecision precision);

/// Parse a key (case-insensitive); nullopt for unknown keys.
std::optional<SolverPrecision> solver_precision_from_string(
    std::string_view key);

/// Read the LMMIR_SOLVER_PRECISION environment variable.  Returns
/// `fallback` when unset; warns (util::log_warn) and returns `fallback`
/// on unknown keys.
SolverPrecision solver_precision_from_env(
    SolverPrecision fallback = SolverPrecision::Double);

}  // namespace lmmir::sparse
