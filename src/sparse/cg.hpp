#pragma once
// Preconditioner-agnostic Preconditioned Conjugate Gradient.  PDN
// conductance matrices are SPD and diagonally dominant, for which Jacobi
// PCG converges in a few hundred iterations even on 10^5-node systems;
// SSOR / IC(0) (see sparse/preconditioner.hpp) cut that further.
//
// Hot loops (SpMV, dot, axpy, Jacobi apply) fan out over the runtime
// thread pool under the bitwise-determinism contract: dot products reduce
// over fixed-size blocks whose partials are summed serially in block
// order, so results are identical for any thread count.
#include <cstddef>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/preconditioner.hpp"

namespace lmmir::sparse {

struct CgOptions {
  std::size_t max_iterations = 20000;
  double tolerance = 1e-10;  // on ||r|| / ||b||
  PreconditionerKind preconditioner = PreconditionerKind::Jacobi;
  bool record_residual_history = true;
};

struct CgResult {
  std::vector<double> x;
  std::size_t iterations = 0;
  double residual = 0.0;  // final relative residual, always finite
  bool converged = false;
  /// True when the solve started from a caller-supplied iterate.
  bool warm_started = false;
  /// ||b - A·x₀|| / ||b|| before the first iteration (1.0 for a cold
  /// start): how much work the warm start already paid for.
  double initial_residual = 1.0;
  /// True when the iteration degenerated (semi-definite matrix, indefinite
  /// preconditioner, overflow): x holds the last usable iterate and
  /// `residual` stays finite — never NaN.
  bool breakdown = false;
  PreconditionerKind preconditioner = PreconditionerKind::Jacobi;
  /// Relative residual after each accepted iteration (telemetry; filled
  /// when CgOptions::record_residual_history).
  std::vector<double> residual_history;
  double precond_setup_seconds = 0.0;  // factory time (0 when injected)
  double precond_apply_seconds = 0.0;  // summed M⁻¹ applications
};

/// Solve A x = b for SPD A. Throws std::invalid_argument on size mismatch.
/// `precond` injects a prebuilt preconditioner, amortizing setup across
/// sequential solves of the same matrix (apply() is not concurrency-safe;
/// see preconditioner.hpp); when null, one is built from
/// `opts.preconditioner`.  `x0` warm-starts the iteration from a previous
/// iterate (e.g. the solution of a nearby system): the initial residual
/// becomes b - A·x₀ and convergence is still measured relative to ||b||,
/// so a good guess converges in fewer iterations — possibly zero.  When
/// null the solve starts from zero exactly as before (bitwise-identical
/// to the pre-warm-start implementation).
CgResult conjugate_gradient(const CsrMatrix& a, const std::vector<double>& b,
                            const CgOptions& opts = {},
                            const Preconditioner* precond = nullptr,
                            const std::vector<double>* x0 = nullptr);

}  // namespace lmmir::sparse
