#pragma once
// Preconditioner-agnostic Preconditioned Conjugate Gradient.  PDN
// conductance matrices are SPD and diagonally dominant, for which Jacobi
// PCG converges in a few hundred iterations even on 10^5-node systems;
// SSOR / IC(0) (see sparse/preconditioner.hpp) cut that further.
//
// Hot loops (SpMV, dot, axpy, Jacobi apply) fan out over the runtime
// thread pool under the bitwise-determinism contract: dot products reduce
// over fixed-size blocks whose partials are summed serially in block
// order, so results are identical for any thread count.
#include <cstddef>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/precision.hpp"
#include "sparse/preconditioner.hpp"

namespace lmmir::sparse {

struct CgOptions {
  std::size_t max_iterations = 20000;
  double tolerance = 1e-10;  // on ||r|| / ||b||
  PreconditionerKind preconditioner = PreconditionerKind::Jacobi;
  bool record_residual_history = true;
  /// Double: today's bit-exact all-double iteration.  Mixed: the SpMV
  /// streams an f32-storage mirror of the matrix (CsrMatrixF32 — roughly
  /// half the bytes) with double recurrences, wrapped in a double-
  /// precision iterative-refinement outer loop that recovers the full
  /// tolerance; `max_iterations` bounds the summed inner iterations.
  /// Mixed falls back to Double when dim/nnz exceed u32 indexing.
  SolverPrecision precision = SolverPrecision::Double;
};

struct CgResult {
  std::vector<double> x;
  std::size_t iterations = 0;
  double residual = 0.0;  // final relative residual, always finite
  bool converged = false;
  /// True when the solve started from a caller-supplied iterate.
  bool warm_started = false;
  /// ||b - A·x₀|| / ||b|| before the first iteration (1.0 for a cold
  /// start): how much work the warm start already paid for.
  double initial_residual = 1.0;
  /// True when the iteration degenerated (semi-definite matrix, indefinite
  /// preconditioner, overflow): x holds the last usable iterate and
  /// `residual` stays finite — never NaN.
  bool breakdown = false;
  PreconditionerKind preconditioner = PreconditionerKind::Jacobi;
  /// Relative residual after each accepted iteration (telemetry; filled
  /// when CgOptions::record_residual_history).  The Mixed path records
  /// one entry per refinement pass (the true double-precision residual)
  /// instead of per inner iteration.
  std::vector<double> residual_history;
  double precond_setup_seconds = 0.0;  // factory time (0 when injected)
  double precond_apply_seconds = 0.0;  // summed M⁻¹ applications
  /// Which arithmetic actually ran (Mixed downgrades to Double past u32).
  SolverPrecision precision = SolverPrecision::Double;
  /// Iterative-refinement outer passes completed (0 on the Double path).
  std::size_t refinement_steps = 0;
  /// Deterministic SpMV work counts: products of A (any precision) with a
  /// vector, and the bytes those products streamed (bytes_per_spmv sums).
  /// These — not timings — back the mixed-precision byte-traffic gates on
  /// the 1-core CI host.
  std::size_t spmv_count = 0;
  std::size_t spmv_bytes = 0;
  double spmv_seconds = 0.0;  // wall time inside those products
};

/// Solve A x = b for SPD A. Throws std::invalid_argument on size mismatch.
/// `precond` injects a prebuilt preconditioner, amortizing setup across
/// sequential solves of the same matrix (apply() is not concurrency-safe;
/// see preconditioner.hpp); when null, one is built from
/// `opts.preconditioner`.  `x0` warm-starts the iteration from a previous
/// iterate (e.g. the solution of a nearby system): the initial residual
/// becomes b - A·x₀ and convergence is still measured relative to ||b||,
/// so a good guess converges in fewer iterations — possibly zero.  When
/// null the solve starts from zero exactly as before (bitwise-identical
/// to the pre-warm-start implementation).
CgResult conjugate_gradient(const CsrMatrix& a, const std::vector<double>& b,
                            const CgOptions& opts = {},
                            const Preconditioner* precond = nullptr,
                            const std::vector<double>* x0 = nullptr);

}  // namespace lmmir::sparse
