#pragma once
// Jacobi-preconditioned Conjugate Gradient.  PDN conductance matrices are
// SPD and diagonally dominant, for which Jacobi-CG converges in a few
// hundred iterations even on 10^5-node systems.
#include <cstddef>
#include <vector>

#include "sparse/csr.hpp"

namespace lmmir::sparse {

struct CgOptions {
  std::size_t max_iterations = 20000;
  double tolerance = 1e-10;  // on ||r|| / ||b||
};

struct CgResult {
  std::vector<double> x;
  std::size_t iterations = 0;
  double residual = 0.0;  // final relative residual
  bool converged = false;
};

/// Solve A x = b for SPD A. Throws std::invalid_argument on size mismatch.
CgResult conjugate_gradient(const CsrMatrix& a, const std::vector<double>& b,
                            const CgOptions& opts = {});

}  // namespace lmmir::sparse
