#include "sparse/dense.hpp"

#include <cmath>
#include <stdexcept>

namespace lmmir::sparse {

std::vector<double> cholesky_solve(const DenseMatrix& a,
                                   const std::vector<double>& b) {
  const std::size_t n = a.dim();
  if (b.size() != n)
    throw std::invalid_argument("cholesky_solve: rhs size mismatch");

  // L lower-triangular with A = L Lᵀ.
  DenseMatrix l(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a.at(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l.at(i, k) * l.at(j, k);
      if (i == j) {
        if (s <= 0.0)
          throw std::runtime_error("cholesky_solve: matrix not SPD");
        l.at(i, j) = std::sqrt(s);
      } else {
        l.at(i, j) = s / l.at(j, j);
      }
    }
  }

  // Forward solve L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l.at(i, k) * y[k];
    y[i] = s / l.at(i, i);
  }
  // Back solve Lᵀ x = y.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l.at(k, ii) * x[k];
    x[ii] = s / l.at(ii, ii);
  }
  return x;
}

}  // namespace lmmir::sparse
