#include "sparse/trisolve.hpp"

#include <algorithm>

namespace lmmir::sparse {

LevelSchedule LevelSchedule::from_levels(const std::vector<std::size_t>& level,
                                         std::size_t n_levels) {
  LevelSchedule s;
  const std::size_t n = level.size();
  s.level_ptr_.assign(n_levels + 1, 0);
  for (std::size_t i = 0; i < n; ++i) ++s.level_ptr_[level[i] + 1];
  for (std::size_t l = 0; l < n_levels; ++l)
    s.level_ptr_[l + 1] += s.level_ptr_[l];
  // Counting sort: iterating rows in ascending order keeps each level's
  // row list ascending, which the sweeps rely on for locality and
  // reproducible chunking.
  s.rows_.resize(n);
  std::vector<std::size_t> cursor(s.level_ptr_.begin(),
                                  s.level_ptr_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) s.rows_[cursor[level[i]]++] = i;
  return s;
}

LevelSchedule LevelSchedule::lower(const std::vector<std::size_t>& row_ptr,
                                   const std::vector<std::size_t>& col_idx,
                                   std::size_t n) {
  std::vector<std::size_t> level(n, 0);
  std::size_t n_levels = n ? 1 : 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t lvl = 0;
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const std::size_t j = col_idx[k];
      if (j >= i) break;  // rows are sorted: past the strict lower part
      lvl = std::max(lvl, level[j] + 1);
    }
    level[i] = lvl;
    n_levels = std::max(n_levels, lvl + 1);
  }
  return from_levels(level, n_levels);
}

LevelSchedule LevelSchedule::upper(const std::vector<std::size_t>& row_ptr,
                                   const std::vector<std::size_t>& col_idx,
                                   std::size_t n) {
  std::vector<std::size_t> level(n, 0);
  std::size_t n_levels = n ? 1 : 0;
  for (std::size_t i = n; i-- > 0;) {
    std::size_t lvl = 0;
    for (std::size_t k = row_ptr[i + 1]; k-- > row_ptr[i];) {
      const std::size_t j = col_idx[k];
      if (j <= i) break;  // past the strict upper part
      lvl = std::max(lvl, level[j] + 1);
    }
    level[i] = lvl;
    n_levels = std::max(n_levels, lvl + 1);
  }
  return from_levels(level, n_levels);
}

double LevelSchedule::average_width() const {
  const std::size_t levels = level_count();
  if (levels == 0) return 0.0;
  return static_cast<double>(rows_.size()) / static_cast<double>(levels);
}

}  // namespace lmmir::sparse
