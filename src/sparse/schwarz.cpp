#include "sparse/schwarz.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "runtime/parallel_for.hpp"
#include "util/log.hpp"

namespace lmmir::sparse {

namespace {

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') {
    util::log_warn("ignoring malformed ", name, "='", v, "' (want an integer)");
    return fallback;
  }
  return parsed;
}

}  // namespace

SchwarzOptions SchwarzOptions::from_environment() {
  SchwarzOptions o;
  o.blocks = static_cast<std::size_t>(std::max<long>(
      1, env_long("LMMIR_DD_BLOCKS", static_cast<long>(o.blocks))));
  o.overlap = static_cast<std::size_t>(std::clamp<long>(
      env_long("LMMIR_DD_OVERLAP", static_cast<long>(o.overlap)), 0, 8));
  return o;
}

SchwarzPreconditioner::SchwarzPreconditioner(const CsrMatrix& a,
                                             SchwarzOptions opts)
    : opts_(opts), n_(a.dim()) {
  opts_.blocks = std::max<std::size_t>(1, opts_.blocks);
  // The partition depends only on (dim, pattern, options) — never on the
  // thread count — so two runs at different LMMIR_THREADS build the exact
  // same subdomains.
  const std::size_t nblocks = std::min(opts_.blocks, std::max<std::size_t>(1, n_));
  subdomains_.resize(n_ ? nblocks : 0);
  std::vector<std::size_t> member(n_, static_cast<std::size_t>(-1));
  std::vector<std::size_t> frontier, next;
  for (std::size_t b = 0; b < subdomains_.size(); ++b) {
    Subdomain& sd = subdomains_[b];
    const std::size_t lo = b * n_ / nblocks;
    const std::size_t hi = (b + 1) * n_ / nblocks;
    sd.nodes.clear();
    frontier.clear();
    for (std::size_t i = lo; i < hi; ++i) {
      member[i] = b;
      sd.nodes.push_back(i);
      frontier.push_back(i);
    }
    // Halo: `overlap` rounds of matrix-pattern adjacency growth.
    for (std::size_t round = 0; round < opts_.overlap; ++round) {
      next.clear();
      for (std::size_t i : frontier)
        for (std::size_t k = a.row_ptr()[i]; k < a.row_ptr()[i + 1]; ++k) {
          const std::size_t j = a.col_idx()[k];
          if (member[j] != b) {
            member[j] = b;
            sd.nodes.push_back(j);
            next.push_back(j);
          }
        }
      frontier.swap(next);
    }
    std::sort(sd.nodes.begin(), sd.nodes.end());
    extract(a, sd);
    sd.solver = make_preconditioner(PreconditionerKind::Ic0, sd.a_local);
  }

  stats_.subdomains = subdomains_.size();
  stats_.overlap_rounds = opts_.overlap;
  stats_.total_nodes = 0;
  stats_.max_subdomain = 0;
  for (const auto& sd : subdomains_) {
    stats_.total_nodes += sd.nodes.size();
    stats_.max_subdomain = std::max(stats_.max_subdomain, sd.nodes.size());
  }
}

void SchwarzPreconditioner::extract(const CsrMatrix& a, Subdomain& sd) const {
  // Principal submatrix over sd.nodes.  Insertion happens in ascending
  // (local row, local col) order with no duplicates, so from_coo keeps
  // the triplet order and `slots` lines up with a_local.values().
  std::vector<std::size_t> local_of(n_, static_cast<std::size_t>(-1));
  for (std::size_t li = 0; li < sd.nodes.size(); ++li)
    local_of[sd.nodes[li]] = li;
  CooBuilder coo(sd.nodes.size());
  sd.slots.clear();
  for (std::size_t li = 0; li < sd.nodes.size(); ++li) {
    const std::size_t gi = sd.nodes[li];
    for (std::size_t k = a.row_ptr()[gi]; k < a.row_ptr()[gi + 1]; ++k) {
      const std::size_t lj = local_of[a.col_idx()[k]];
      if (lj == static_cast<std::size_t>(-1)) continue;  // truncated halo edge
      coo.add(li, lj, a.values()[k]);
      sd.slots.push_back(k);
    }
  }
  sd.a_local = CsrMatrix::from_coo(coo);
}

void SchwarzPreconditioner::apply(const std::vector<double>& r,
                                  std::vector<double>& z) const {
  if (r.size() != n_)
    throw std::invalid_argument("SchwarzPreconditioner::apply: size");
  // Subdomain solves are independent: each gathers its slice of r, runs
  // its IC(0) apply into private buffers, and never touches z.  grain=1
  // so each tile is one pool task (the nested level-scheduled sweeps run
  // inline on the worker).
  runtime::parallel_for(
      0, subdomains_.size(), 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t s = lo; s < hi; ++s) {
          const Subdomain& sd = subdomains_[s];
          sd.r_local.resize(sd.nodes.size());
          for (std::size_t li = 0; li < sd.nodes.size(); ++li)
            sd.r_local[li] = r[sd.nodes[li]];
          sd.solver->apply(sd.r_local, sd.z_local);
        }
      });
  // Additive combination, summed serially in fixed subdomain order so
  // overlapped nodes accumulate identically for any thread count.
  z.assign(n_, 0.0);
  for (const auto& sd : subdomains_)
    for (std::size_t li = 0; li < sd.nodes.size(); ++li)
      z[sd.nodes[li]] += sd.z_local[li];
}

bool SchwarzPreconditioner::refresh(const CsrMatrix& a) {
  if (a.dim() != n_) {
    // Pattern changed under us: rebuild from scratch (SolverContext only
    // calls refresh on the fixed-pattern path, so this is a safety net).
    *this = SchwarzPreconditioner(a, opts_);
    return true;
  }
  const std::size_t refreshes = stats_.refreshes + 1;
  for (auto& sd : subdomains_) {
    auto& vals = sd.a_local.values_mut();
    for (std::size_t k = 0; k < sd.slots.size(); ++k)
      vals[k] = a.values()[sd.slots[k]];
    sd.solver = make_preconditioner(PreconditionerKind::Ic0, sd.a_local);
  }
  stats_.refreshes = refreshes;
  return true;
}

}  // namespace lmmir::sparse
