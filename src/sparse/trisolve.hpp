#pragma once
// Level-scheduled sparse triangular solves.
//
// A triangular solve carries a loop dependence (row i needs the results of
// the rows its off-diagonal entries reference), which is why the SSOR and
// IC(0) preconditioner applies were serial.  Level scheduling recovers the
// parallelism that IS there: rows are grouped into "levels" such that every
// dependency of a row lives in a strictly earlier level, so all rows of one
// level can be solved concurrently with a barrier between levels.  On
// PDN-mesh matrices the levels are wide (anti-diagonal wavefronts), so the
// sweep scales over the thread pool.
//
// Determinism contract (same fixed-block discipline as the PCG reductions):
// each row is computed by exactly one thread using the exact per-row
// arithmetic of the serial sweep, and a row only reads values finalized in
// earlier levels (the parallel_for join is the barrier).  The solved vector
// is therefore bitwise-identical for any thread count, including the fully
// serial pool.
#include <cstddef>
#include <vector>

#include "runtime/parallel_for.hpp"

namespace lmmir::sparse {

/// Dependency schedule of a sparse triangular solve over CSR storage.
/// Immutable after build; one schedule serves any number of solves on
/// matrices with the same sparsity pattern (values may change freely).
class LevelSchedule {
 public:
  LevelSchedule() = default;

  /// Schedule for a LOWER solve: row i depends on every column j < i
  /// present in row i (entries with j >= i are ignored, so the full matrix
  /// or an L factor with explicit diagonal both work).
  static LevelSchedule lower(const std::vector<std::size_t>& row_ptr,
                             const std::vector<std::size_t>& col_idx,
                             std::size_t n);

  /// Schedule for an UPPER solve: row i depends on every column j > i
  /// present in row i.
  static LevelSchedule upper(const std::vector<std::size_t>& row_ptr,
                             const std::vector<std::size_t>& col_idx,
                             std::size_t n);

  std::size_t row_count() const { return rows_.size(); }
  std::size_t level_count() const {
    return level_ptr_.empty() ? 0 : level_ptr_.size() - 1;
  }
  /// Row ids grouped by level, ascending within each level.
  const std::vector<std::size_t>& rows() const { return rows_; }
  /// Level l spans rows()[level_ptr()[l] .. level_ptr()[l+1]).
  const std::vector<std::size_t>& level_ptr() const { return level_ptr_; }
  /// Mean rows per level: the parallelism a sweep can actually use.
  double average_width() const;

 private:
  static LevelSchedule from_levels(const std::vector<std::size_t>& level,
                                   std::size_t n_levels);

  std::vector<std::size_t> rows_;
  std::vector<std::size_t> level_ptr_;
};

/// Run `row_solve(row)` for every scheduled row, level by level, fanning
/// the rows of each level over the global thread pool.  `per_row_cost` is
/// the approximate scalar-op cost of one row (see grain_for_cost); small
/// levels run inline on the caller.  Bitwise-identical for any thread
/// count provided row_solve(i) only reads results of earlier levels.
template <typename RowSolve>
void for_each_level(const LevelSchedule& sched, std::size_t per_row_cost,
                    RowSolve&& row_solve) {
  const auto& rows = sched.rows();
  const auto& lp = sched.level_ptr();
  const std::size_t grain = runtime::grain_for_cost(per_row_cost);
  for (std::size_t l = 0; l + 1 < lp.size(); ++l) {
    runtime::parallel_for(lp[l], lp[l + 1], grain,
                          [&](std::size_t lo, std::size_t hi) {
                            for (std::size_t k = lo; k < hi; ++k)
                              row_solve(rows[k]);
                          });
  }
}

}  // namespace lmmir::sparse
