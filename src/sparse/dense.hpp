#pragma once
// Small dense SPD solver (Cholesky).  Used to cross-check the sparse CG
// solver in tests and to solve tiny hand-built circuits exactly.
#include <cstddef>
#include <vector>

namespace lmmir::sparse {

/// Row-major square dense matrix.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  explicit DenseMatrix(std::size_t n) : n_(n), a_(n * n, 0.0) {}

  std::size_t dim() const { return n_; }
  double at(std::size_t r, std::size_t c) const { return a_[r * n_ + c]; }
  double& at(std::size_t r, std::size_t c) { return a_[r * n_ + c]; }

 private:
  std::size_t n_ = 0;
  std::vector<double> a_;
};

/// Solve A x = b by Cholesky factorization (A must be SPD).
/// Throws std::runtime_error if the matrix is not positive definite.
std::vector<double> cholesky_solve(const DenseMatrix& a,
                                   const std::vector<double>& b);

}  // namespace lmmir::sparse
