#pragma once
// Sparse linear algebra for the golden IR-drop solver.  PDN conductance
// matrices are symmetric positive definite with a handful of nonzeros per
// row, so a COO builder + CSR storage + CG solver covers everything the
// library needs without external dependencies.
#include <cstddef>
#include <cstdint>
#include <vector>

namespace lmmir::sparse {

/// Triplet accumulator.  Duplicate (row, col) entries are summed when
/// converting to CSR, which is exactly the "stamping" semantics MNA needs.
class CooBuilder {
 public:
  explicit CooBuilder(std::size_t n) : n_(n) {}

  std::size_t dim() const { return n_; }
  std::size_t entry_count() const { return rows_.size(); }

  void add(std::size_t row, std::size_t col, double value);

  const std::vector<std::size_t>& rows() const { return rows_; }
  const std::vector<std::size_t>& cols() const { return cols_; }
  const std::vector<double>& values() const { return vals_; }

 private:
  std::size_t n_;
  std::vector<std::size_t> rows_, cols_;
  std::vector<double> vals_;
};

/// Compressed sparse row matrix (square, double precision).
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Build from triplets, summing duplicate (row, col) entries.
  static CsrMatrix from_coo(const CooBuilder& coo);

  std::size_t dim() const { return n_; }
  std::size_t nnz() const { return vals_.size(); }

  /// y = A * x  (x.size() == y.size() == dim()).
  void multiply(const std::vector<double>& x, std::vector<double>& y) const;

  /// Diagonal entries (zero where absent) — Jacobi preconditioner input.
  std::vector<double> diagonal() const;

  /// Entry lookup (O(log nnz_row)); 0.0 where absent.
  double at(std::size_t row, std::size_t col) const;

  /// Storage slot of entry (row, col) in values(), or npos when the entry
  /// is not in the sparsity pattern.  Lets callers precompute a numeric-
  /// refresh plan once and then update values in place (see values_mut).
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t find_entry(std::size_t row, std::size_t col) const;

  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::size_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return vals_; }

  /// Mutable numeric values on the FIXED sparsity pattern — the in-place
  /// refresh path for repeated solves of topologically identical systems
  /// (pdn::SolverContext).  The pattern itself (row_ptr/col_idx) is
  /// immutable after construction.
  std::vector<double>& values_mut() { return vals_; }

  /// Max |A - Aᵀ| entry; 0 for exactly symmetric matrices.
  double symmetry_error() const;

  /// Bytes streamed by one multiply(): values + indices + x + y.  The
  /// deterministic work-count behind the mixed-precision byte-traffic
  /// gates (bench_solver_convergence) — no timing involved.
  std::size_t bytes_per_spmv() const;

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> row_ptr_;  // n+1
  std::vector<std::size_t> col_idx_;  // nnz (sorted per row)
  std::vector<double> vals_;          // nnz
};

/// Float-storage mirror of a CsrMatrix for the mixed-precision PCG path
/// (sparse/precision.hpp): values demoted to f32 and indices to u32, so
/// one SpMV streams roughly half the bytes of the double matrix.  The
/// accumulation stays double — each stored value is widened before the
/// multiply-add — and rows are written disjointly with serial per-row
/// arithmetic, so results are bitwise-identical for any thread count
/// (same contract as CsrMatrix::multiply).  Construction requires
/// dim and nnz to fit u32 (throws std::invalid_argument otherwise);
/// at 4B unknowns the double path is the only option anyway.
class CsrMatrixF32 {
 public:
  CsrMatrixF32() = default;
  explicit CsrMatrixF32(const CsrMatrix& a);

  std::size_t dim() const { return n_; }
  std::size_t nnz() const { return vals_.size(); }

  /// y = A32 * x with double accumulation.
  void multiply(const std::vector<double>& x, std::vector<double>& y) const;

  /// Re-demote values from `a` on the SAME sparsity pattern (numeric
  /// refresh; pattern mismatch is the caller's bug).
  void refresh_values(const CsrMatrix& a);

  /// Bytes streamed by one multiply() (f32 values, u32 indices, f64 x/y).
  std::size_t bytes_per_spmv() const;

 private:
  std::size_t n_ = 0;
  std::vector<std::uint32_t> row_ptr_;  // n+1
  std::vector<std::uint32_t> col_idx_;  // nnz (sorted per row)
  std::vector<float> vals_;             // nnz
};

}  // namespace lmmir::sparse
