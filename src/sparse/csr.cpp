#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "runtime/parallel_for.hpp"

namespace lmmir::sparse {

void CooBuilder::add(std::size_t row, std::size_t col, double value) {
  if (row >= n_ || col >= n_)
    throw std::out_of_range("CooBuilder::add: index out of range");
  rows_.push_back(row);
  cols_.push_back(col);
  vals_.push_back(value);
}

CsrMatrix CsrMatrix::from_coo(const CooBuilder& coo) {
  CsrMatrix m;
  m.n_ = coo.dim();
  const std::size_t nnz_in = coo.entry_count();

  // Sort triplet indices by (row, col).
  std::vector<std::size_t> order(nnz_in);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (coo.rows()[a] != coo.rows()[b]) return coo.rows()[a] < coo.rows()[b];
    return coo.cols()[a] < coo.cols()[b];
  });

  m.row_ptr_.assign(m.n_ + 1, 0);
  for (std::size_t k : order) {
    const std::size_t r = coo.rows()[k];
    const std::size_t c = coo.cols()[k];
    const double v = coo.values()[k];
    if (!m.col_idx_.empty() && m.row_ptr_[r + 1] > m.row_ptr_[r] &&
        m.col_idx_.back() == c &&
        // last pushed entry belongs to this same row?
        m.col_idx_.size() == m.row_ptr_[r + 1]) {
      m.vals_.back() += v;  // duplicate: accumulate (MNA stamping)
    } else {
      m.col_idx_.push_back(c);
      m.vals_.push_back(v);
      m.row_ptr_[r + 1] = m.col_idx_.size();
    }
  }
  // Rows with no entries still need cumulative pointers.
  for (std::size_t r = 0; r < m.n_; ++r)
    m.row_ptr_[r + 1] = std::max(m.row_ptr_[r + 1], m.row_ptr_[r]);
  return m;
}

void CsrMatrix::multiply(const std::vector<double>& x,
                         std::vector<double>& y) const {
  if (x.size() != n_) throw std::invalid_argument("CsrMatrix::multiply: size");
  y.assign(n_, 0.0);
  // Rows are independent; y is written in disjoint slices and each row's
  // accumulation order matches the serial kernel (deterministic results).
  const std::size_t avg_nnz = vals_.size() / (n_ ? n_ : 1);
  runtime::parallel_for(
      0, n_, runtime::grain_for_cost(2 * (avg_nnz + 1)),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          double acc = 0.0;
          for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
            acc += vals_[k] * x[col_idx_[k]];
          y[r] = acc;
        }
      });
}

std::vector<double> CsrMatrix::diagonal() const {
  std::vector<double> d(n_, 0.0);
  for (std::size_t r = 0; r < n_; ++r)
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      if (col_idx_[k] == r) d[r] = vals_[k];
  return d;
}

double CsrMatrix::at(std::size_t row, std::size_t col) const {
  const std::size_t k = find_entry(row, col);
  return k == npos ? 0.0 : vals_[k];
}

std::size_t CsrMatrix::find_entry(std::size_t row, std::size_t col) const {
  if (row >= n_ || col >= n_)
    throw std::out_of_range("CsrMatrix::find_entry: index out of range");
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return npos;
  return static_cast<std::size_t>(it - col_idx_.begin());
}

std::size_t CsrMatrix::bytes_per_spmv() const {
  return vals_.size() * sizeof(double) +          // values
         col_idx_.size() * sizeof(std::size_t) +  // column indices
         row_ptr_.size() * sizeof(std::size_t) +  // row pointers
         2 * n_ * sizeof(double);                 // x read + y write
}

double CsrMatrix::symmetry_error() const {
  double worst = 0.0;
  for (std::size_t r = 0; r < n_; ++r)
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const double vt = at(col_idx_[k], r);
      worst = std::max(worst, std::abs(vals_[k] - vt));
    }
  return worst;
}

CsrMatrixF32::CsrMatrixF32(const CsrMatrix& a) {
  n_ = a.dim();
  constexpr std::size_t kMax = 0xFFFFFFFFull;
  if (a.dim() >= kMax || a.nnz() >= kMax)
    throw std::invalid_argument(
        "CsrMatrixF32: dimension or nnz exceeds u32 index range");
  row_ptr_.assign(a.row_ptr().begin(), a.row_ptr().end());
  col_idx_.assign(a.col_idx().begin(), a.col_idx().end());
  vals_.assign(a.values().begin(), a.values().end());
}

void CsrMatrixF32::refresh_values(const CsrMatrix& a) {
  if (a.nnz() != vals_.size() || a.dim() != n_)
    throw std::invalid_argument("CsrMatrixF32::refresh_values: pattern size");
  vals_.assign(a.values().begin(), a.values().end());
}

void CsrMatrixF32::multiply(const std::vector<double>& x,
                            std::vector<double>& y) const {
  if (x.size() != n_)
    throw std::invalid_argument("CsrMatrixF32::multiply: size");
  y.assign(n_, 0.0);
  // Same disjoint-row contract as CsrMatrix::multiply: each stored f32
  // value is widened to double before the multiply-add, so the per-row
  // accumulation is exact double arithmetic over demoted inputs.
  const std::size_t avg_nnz = vals_.size() / (n_ ? n_ : 1);
  runtime::parallel_for(
      0, n_, runtime::grain_for_cost(2 * (avg_nnz + 1)),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          double acc = 0.0;
          for (std::uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
            acc += static_cast<double>(vals_[k]) * x[col_idx_[k]];
          y[r] = acc;
        }
      });
}

std::size_t CsrMatrixF32::bytes_per_spmv() const {
  return vals_.size() * sizeof(float) +
         col_idx_.size() * sizeof(std::uint32_t) +
         row_ptr_.size() * sizeof(std::uint32_t) +
         2 * n_ * sizeof(double);
}

}  // namespace lmmir::sparse
