#pragma once
// Smoothed-aggregation algebraic multigrid (AMG) preconditioner for the
// million-node solver regime.  Single-level preconditioners (Jacobi /
// SSOR / IC0) damp high-frequency error fast but leave the smooth modes
// to CG, so iteration counts grow with grid size.  A multigrid V-cycle
// attacks every frequency at its own scale: smooth on the fine grid,
// restrict the residual to a coarser operator, recurse, prolong the
// correction back — iteration counts stay near grid-independent.
//
// The hierarchy is built algebraically from the matrix alone:
//
//   1. strength of connection: j is a strong neighbor of i when
//      |a_ij| >= θ·sqrt(|a_ii·a_jj|);
//   2. greedy aggregation (Vanek-style): root nodes absorb their strong
//      neighborhood, leftovers join their strongest aggregated neighbor,
//      isolated nodes become singletons;
//   3. smoothed prolongation P = (I − ω_p·D⁻¹A)·T over the tentative
//      piecewise-constant T (one column per aggregate);
//   4. Galerkin coarse operator A_c = Pᵀ·A·P, recursively until the
//      coarsest level fits a dense Cholesky factor.
//
// The V-cycle smoother is weighted Jacobi with EQUAL pre/post sweep
// counts; the Jacobi iteration operator is A-self-adjoint, so the cycle
// is a symmetric positive definite operator and valid for PCG.
//
// Determinism: setup (strength, aggregation, Galerkin products) is
// serial with fixed traversal order; the apply fans out only through the
// repo's deterministic kernels (CsrMatrix::multiply, disjoint-row
// transfer gathers, elementwise parallel_for), so V-cycle output is
// bitwise-identical for any runtime thread count.
//
// Reuse: `refresh(a)` re-derives every numeric quantity (diagonals,
// smoothed P, Galerkin operators, coarse factor) while keeping the
// aggregates and traversal patterns — the ECO / load-sweep path through
// pdn::SolverContext skips the symbolic setup.  `demote_storage()`
// mirrors each level operator as CsrMatrixF32 for the mixed-precision
// PCG path (sparse/precision.hpp).
//
// Level 0 references the matrix it was built from (like SSOR): the
// matrix must outlive the preconditioner, and an in-place value change
// requires refresh() before the next apply.
#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/preconditioner.hpp"

namespace lmmir::sparse {

struct AmgOptions {
  /// Strength-of-connection drop tolerance θ.  Smaller keeps more edges
  /// in the aggregation graph (larger aggregates, faster coarsening).
  double strength_theta = 0.08;
  /// Prolongation-smoothing damping ω_p in P = (I − ω_p·D⁻¹A)·T.
  double prolong_omega = 2.0 / 3.0;
  /// Weighted-Jacobi smoother damping.
  double smoother_omega = 2.0 / 3.0;
  /// Pre-smoothing sweeps per level; post-smoothing always matches so
  /// the cycle stays symmetric (see header comment).
  int smoother_sweeps = 1;
  /// Stop coarsening at this many unknowns and solve directly (dense
  /// Cholesky, factored once at setup).
  std::size_t coarse_size = 96;
  std::size_t max_levels = 25;

  /// Defaults overridden from LMMIR_AMG_THETA / LMMIR_AMG_SWEEPS /
  /// LMMIR_AMG_COARSE (malformed values warn and fall back).
  static AmgOptions from_environment();
};

class AmgPreconditioner final : public Preconditioner {
 public:
  explicit AmgPreconditioner(const CsrMatrix& a,
                             AmgOptions opts = AmgOptions::from_environment());

  PreconditionerKind kind() const override { return PreconditionerKind::Amg; }
  void apply(const std::vector<double>& r,
             std::vector<double>& z) const override;

  /// Numeric rebuild on the SAME pattern, reusing aggregates and the
  /// level structure (skips strength + aggregation).  Always true.
  bool refresh(const CsrMatrix& a) override;

  /// Mirror every level operator as CsrMatrixF32 so the V-cycle SpMVs
  /// stream half the bytes (mixed-precision path).  Always true.
  bool demote_storage() override;

  /// Hierarchy telemetry for tests / benches.
  struct HierarchyStats {
    std::size_t levels = 0;
    std::vector<std::size_t> level_dims;  // unknowns per level, fine first
    std::vector<std::size_t> level_nnz;
    /// Σ level nnz / fine nnz — the classic AMG memory-overhead figure.
    double operator_complexity = 0.0;
    std::size_t refreshes = 0;
    bool coarse_direct = false;  // dense Cholesky at the coarsest level
  };
  const HierarchyStats& stats() const { return stats_; }
  const AmgOptions& options() const { return opts_; }

 private:
  struct Level {
    const CsrMatrix* a = nullptr;  // level 0: borrowed; else &a_owned
    CsrMatrix a_owned;
    std::optional<CsrMatrixF32> a_f32;  // demoted mirror (mixed precision)
    std::vector<double> inv_diag;       // Jacobi smoother (zero rows -> 1)
    std::vector<std::size_t> agg_of;    // fine node -> aggregate (refresh)
    // Prolongation P (fine rows) and restriction R = Pᵀ (coarse rows).
    std::vector<std::size_t> p_row_ptr, p_col;
    std::vector<double> p_val;
    std::vector<std::size_t> r_row_ptr, r_col;
    std::vector<double> r_val;
    // V-cycle scratch (apply is logically const; one instance per solve).
    mutable std::vector<double> rhs, x, work, resid;
  };

  void build(const CsrMatrix& a, bool reuse_structure);
  void build_level_transfers(Level& lvl, std::size_t n_coarse);
  CsrMatrix galerkin_product(const Level& lvl) const;
  void factor_coarse(const CsrMatrix& a);
  void coarse_solve(const std::vector<double>& rhs,
                    std::vector<double>& x) const;
  void vcycle(std::size_t l, const std::vector<double>& rhs,
              std::vector<double>& x) const;
  void spmv(const Level& lvl, const std::vector<double>& x,
            std::vector<double>& y) const;

  AmgOptions opts_;
  std::vector<Level> levels_;
  // Coarsest-level dense Cholesky factor (row-major lower triangle), or
  // empty when the factorization failed even with diagonal shifts — the
  // coarse solve then falls back to fixed Jacobi sweeps (semi-definite
  // systems stay usable; PCG's breakdown guards handle the rest).
  std::size_t coarse_dim_ = 0;
  std::vector<double> coarse_factor_;
  mutable std::vector<double> coarse_y_;
  HierarchyStats stats_;
  bool demoted_ = false;
};

}  // namespace lmmir::sparse
