#pragma once
// Pluggable preconditioners for the PCG solver.  The golden IR-drop solver
// spends all of its time in conjugate-gradient iterations, so the choice of
// preconditioner directly bounds the size of the netlist corpus we can
// generate ground truth for.  Three classic SPD preconditioners are
// provided behind one interface:
//
//   None    — identity; pure CG, the iteration-count baseline.
//   Jacobi  — diagonal scaling; O(n) setup, embarrassingly parallel apply,
//             effective on diagonally dominant PDN meshes.
//   SSOR    — symmetric successive over-relaxation sweep; no extra storage
//             beyond the matrix, roughly halves iterations on grids.
//   IC0     — incomplete Cholesky with zero fill-in; strongest
//             single-level iteration reduction, triangular-solve apply.
//   AMG     — smoothed-aggregation algebraic multigrid V-cycle
//             (sparse/amg.hpp); near-grid-independent iteration counts,
//             the million-node-regime preconditioner.
//   Schwarz — overlapping additive Schwarz over contiguous index tiles
//             with per-subdomain IC(0) solves (sparse/schwarz.hpp); turns
//             thread count into solver speedup on one solve.
//
// The SSOR and IC(0) triangular sweeps are level-scheduled (see
// sparse/trisolve.hpp): rows are grouped into dependency wavefronts so the
// apply fans out over the runtime thread pool while staying
// bitwise-identical for any thread count.
//
// Setup happens in the factory.  Instances are immutable after
// construction but apply() reuses an internal scratch buffer, so use one
// instance per concurrently-running solve.  SSOR references the matrix it
// was built from (no copy); the matrix must outlive the preconditioner.
// Because SSOR reads the matrix on every apply, an in-place numeric
// refresh of the matrix values (pdn::SolverContext) requires rebuilding
// the SSOR instance; IC(0) copies its factor and stays self-contained.
#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sparse/csr.hpp"

namespace lmmir::sparse {

enum class PreconditionerKind { None, Jacobi, Ssor, Ic0, Amg, Schwarz };

/// Canonical lower-case key ("none", "jacobi", "ssor", "ic0", "amg",
/// "dd").
const char* to_string(PreconditionerKind kind);

/// Parse a factory key (case-insensitive); nullopt for unknown keys.
std::optional<PreconditionerKind> preconditioner_kind_from_string(
    std::string_view key);

/// Read the LMMIR_PRECOND environment variable.  Returns `fallback` when
/// unset; warns (util::log_warn) and returns `fallback` on unknown keys.
/// Shared by the pipeline and the CLI entry points so they accept exactly
/// the same spellings.
PreconditionerKind preconditioner_kind_from_env(
    PreconditionerKind fallback = PreconditionerKind::Jacobi);

/// Application side of a preconditioner M ~ A: z = M⁻¹ r.  The factored
/// state is immutable after construction, but apply() reuses an internal
/// scratch buffer: do NOT share one instance between concurrently-running
/// solves — build one per solve thread instead.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  virtual PreconditionerKind kind() const = 0;
  virtual void apply(const std::vector<double>& r,
                     std::vector<double>& z) const = 0;
  const char* name() const { return to_string(kind()); }

  /// Numeric refresh: re-derive the factored state from `a`, which must
  /// have the SAME sparsity pattern the instance was built from (new
  /// values only — the pdn::SolverContext in-place value update).
  /// Returns false when the kind has no cheaper-than-rebuild path (the
  /// default); the caller then rebuilds via the factory.  Kinds that
  /// return true (AMG: aggregates and transfer patterns kept; Schwarz:
  /// tile partition and extraction plans kept) skip their symbolic setup
  /// and refactor numerics only.
  virtual bool refresh(const CsrMatrix& a) {
    (void)a;
    return false;
  }

  /// Demote internal storage to f32 where the kind supports it (the
  /// mixed-precision path, sparse/precision.hpp): Jacobi stores a float
  /// inverse diagonal, AMG mirrors its level operators as CsrMatrixF32.
  /// Recurrences stay double either way.  Returns false when the kind
  /// keeps full double storage (SSOR, IC0, Schwarz: their triangular
  /// sweeps carry loop dependences where f32 storage was not worth the
  /// extra rounding).  Idempotent.
  virtual bool demote_storage() { return false; }
};

/// Build a preconditioner for SPD matrix `a`.  IC0 retries with a scaled
/// diagonal shift when the factorization meets a non-positive pivot (the
/// matrix is then only semi-definite or badly conditioned); it throws
/// std::runtime_error if the shift retries are exhausted.
std::unique_ptr<Preconditioner> make_preconditioner(PreconditionerKind kind,
                                                    const CsrMatrix& a);

/// String-keyed factory: throws std::invalid_argument on unknown keys.
std::unique_ptr<Preconditioner> make_preconditioner(std::string_view key,
                                                    const CsrMatrix& a);

}  // namespace lmmir::sparse
