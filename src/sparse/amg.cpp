#include "sparse/amg.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "runtime/parallel_for.hpp"
#include "util/log.hpp"

namespace lmmir::sparse {

namespace {

constexpr std::size_t kNoAgg = static_cast<std::size_t>(-1);

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0' || !std::isfinite(parsed)) {
    util::log_warn("ignoring malformed ", name, "='", v, "' (want a number)");
    return fallback;
  }
  return parsed;
}

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') {
    util::log_warn("ignoring malformed ", name, "='", v, "' (want an integer)");
    return fallback;
  }
  return parsed;
}

std::vector<double> jacobi_inverse_diagonal(const CsrMatrix& a) {
  std::vector<double> inv = a.diagonal();
  for (auto& d : inv) d = (d != 0.0) ? 1.0 / d : 1.0;
  return inv;
}

/// Strength-of-connection graph: for each node the neighbors j != i with
/// |a_ij| >= θ·sqrt(|a_ii·a_jj|), as flat CSR-style lists plus |a_ij| for
/// pass-2 "strongest neighbor" ties.  Serial, fixed traversal order.
struct StrengthGraph {
  std::vector<std::size_t> ptr, col;
  std::vector<double> mag;
};

StrengthGraph build_strength(const CsrMatrix& a, double theta) {
  const std::size_t n = a.dim();
  const std::vector<double> diag = a.diagonal();
  StrengthGraph g;
  g.ptr.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = a.row_ptr()[i]; k < a.row_ptr()[i + 1]; ++k) {
      const std::size_t j = a.col_idx()[k];
      if (j == i) continue;
      const double v = std::abs(a.values()[k]);
      const double scale = std::sqrt(std::abs(diag[i] * diag[j]));
      if (v >= theta * scale) {
        g.col.push_back(j);
        g.mag.push_back(v);
      }
    }
    g.ptr[i + 1] = g.col.size();
  }
  return g;
}

/// Vanek two-pass greedy aggregation over the strength graph.  Returns the
/// aggregate count; agg[i] identifies each node's aggregate.
std::size_t aggregate_nodes(const StrengthGraph& g, std::size_t n,
                            std::vector<std::size_t>& agg) {
  agg.assign(n, kNoAgg);
  std::size_t count = 0;
  // Pass 1: nodes whose whole strong neighborhood is untouched become
  // roots and absorb it.
  for (std::size_t i = 0; i < n; ++i) {
    if (agg[i] != kNoAgg) continue;
    bool clean = true;
    for (std::size_t k = g.ptr[i]; k < g.ptr[i + 1] && clean; ++k)
      clean = agg[g.col[k]] == kNoAgg;
    if (!clean) continue;
    const std::size_t id = count++;
    agg[i] = id;
    for (std::size_t k = g.ptr[i]; k < g.ptr[i + 1]; ++k) agg[g.col[k]] = id;
  }
  // Pass 2: leftovers join their strongest aggregated neighbor (ties go to
  // the smallest column index — the first strict maximum wins).
  for (std::size_t i = 0; i < n; ++i) {
    if (agg[i] != kNoAgg) continue;
    std::size_t best = kNoAgg;
    double best_mag = -1.0;
    for (std::size_t k = g.ptr[i]; k < g.ptr[i + 1]; ++k) {
      const std::size_t j = g.col[k];
      if (agg[j] != kNoAgg && g.mag[k] > best_mag) {
        best = j;
        best_mag = g.mag[k];
      }
    }
    if (best != kNoAgg) agg[i] = agg[best];
  }
  // Pass 3: isolated nodes (no strong aggregated neighbor) become
  // singleton aggregates.
  for (std::size_t i = 0; i < n; ++i)
    if (agg[i] == kNoAgg) agg[i] = count++;
  return count;
}

}  // namespace

AmgOptions AmgOptions::from_environment() {
  AmgOptions o;
  o.strength_theta =
      std::max(0.0, env_double("LMMIR_AMG_THETA", o.strength_theta));
  o.smoother_sweeps = static_cast<int>(std::clamp<long>(
      env_long("LMMIR_AMG_SWEEPS", o.smoother_sweeps), 1, 8));
  o.coarse_size = static_cast<std::size_t>(std::max<long>(
      8, env_long("LMMIR_AMG_COARSE", static_cast<long>(o.coarse_size))));
  return o;
}

AmgPreconditioner::AmgPreconditioner(const CsrMatrix& a, AmgOptions opts)
    : opts_(opts) {
  opts_.smoother_sweeps = std::max(1, opts_.smoother_sweeps);
  opts_.coarse_size = std::max<std::size_t>(1, opts_.coarse_size);
  opts_.max_levels = std::max<std::size_t>(2, opts_.max_levels);
  build(a, /*reuse_structure=*/false);
}

void AmgPreconditioner::build(const CsrMatrix& a, bool reuse_structure) {
  if (!reuse_structure) {
    levels_.clear();
    levels_.emplace_back();
    levels_[0].a = &a;
    // Coarsen until the operator fits the direct solve, the level budget
    // runs out, or aggregation stalls (no-strong-connection matrices).
    for (std::size_t l = 0;; ++l) {
      const CsrMatrix& al = *levels_[l].a;
      levels_[l].inv_diag = jacobi_inverse_diagonal(al);
      if (al.dim() <= opts_.coarse_size || l + 1 >= opts_.max_levels) break;
      const StrengthGraph g = build_strength(al, opts_.strength_theta);
      const std::size_t n_coarse =
          aggregate_nodes(g, al.dim(), levels_[l].agg_of);
      // Stall when aggregation shrinks the grid by less than 25%: weakly
      // coupled near-dense coarse operators aggregate badly, and pushing
      // past them squares the smoothed-P stencil into dense Galerkin
      // products (observed: a 334-unknown level going fully dense).
      // Stopping early keeps the hierarchy cheap; the coarse direct solve
      // absorbs the slightly larger coarsest level.
      if (n_coarse == 0 || 4 * n_coarse >= 3 * al.dim()) {
        levels_[l].agg_of.clear();  // stalled: this level is the coarsest
        break;
      }
      build_level_transfers(levels_[l], n_coarse);
      CsrMatrix ac = galerkin_product(levels_[l]);
      levels_.emplace_back();
      levels_.back().a_owned = std::move(ac);
      levels_.back().a = &levels_.back().a_owned;
    }
    // Growing `levels_` moved earlier Level objects, so their self-
    // referencing `a` pointers are stale: re-point every owned level.
    for (std::size_t l = 1; l < levels_.size(); ++l)
      levels_[l].a = &levels_[l].a_owned;
  } else {
    // Numeric refresh on the frozen level structure: same aggregates, same
    // traversal order, new values everywhere.
    levels_[0].a = &a;
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      levels_[l].inv_diag = jacobi_inverse_diagonal(*levels_[l].a);
      if (l + 1 < levels_.size()) {
        const std::size_t n_coarse = levels_[l + 1].a->dim();
        build_level_transfers(levels_[l], n_coarse);
        levels_[l + 1].a_owned = galerkin_product(levels_[l]);
        levels_[l + 1].a = &levels_[l + 1].a_owned;
      }
    }
  }
  factor_coarse(*levels_.back().a);
  if (demoted_)
    for (auto& lvl : levels_) {
      if (lvl.a_f32)
        lvl.a_f32->refresh_values(*lvl.a);
      else
        lvl.a_f32.emplace(*lvl.a);
    }

  stats_.levels = levels_.size();
  stats_.level_dims.clear();
  stats_.level_nnz.clear();
  std::size_t total_nnz = 0;
  for (const auto& lvl : levels_) {
    stats_.level_dims.push_back(lvl.a->dim());
    stats_.level_nnz.push_back(lvl.a->nnz());
    total_nnz += lvl.a->nnz();
  }
  const std::size_t fine_nnz = levels_[0].a->nnz();
  stats_.operator_complexity =
      fine_nnz ? static_cast<double>(total_nnz) / static_cast<double>(fine_nnz)
               : 1.0;
  stats_.coarse_direct = !coarse_factor_.empty();
}

void AmgPreconditioner::build_level_transfers(Level& lvl,
                                              std::size_t n_coarse) {
  const CsrMatrix& a = *lvl.a;
  const std::size_t n = a.dim();
  const double w = opts_.prolong_omega;

  // Smoothed prolongation P = (I − ω_p·D⁻¹A)·T, built row by row: the
  // tentative column agg[i] gets 1, and every matrix entry a_ik spills
  // −ω_p·d_i⁻¹·a_ik onto column agg[col(k)] (the k == i term damps the
  // tentative 1).  Duplicate coarse columns are merged in first-seen
  // order (stable sort), so values are deterministic.
  lvl.p_row_ptr.assign(n + 1, 0);
  lvl.p_col.clear();
  lvl.p_val.clear();
  std::vector<std::pair<std::size_t, double>> row;
  for (std::size_t i = 0; i < n; ++i) {
    row.clear();
    row.emplace_back(lvl.agg_of[i], 1.0);
    for (std::size_t k = a.row_ptr()[i]; k < a.row_ptr()[i + 1]; ++k)
      row.emplace_back(lvl.agg_of[a.col_idx()[k]],
                       -w * lvl.inv_diag[i] * a.values()[k]);
    std::stable_sort(row.begin(), row.end(),
                     [](const auto& x, const auto& y) {
                       return x.first < y.first;
                     });
    for (std::size_t k = 0; k < row.size();) {
      const std::size_t c = row[k].first;
      double v = 0.0;
      for (; k < row.size() && row[k].first == c; ++k) v += row[k].second;
      lvl.p_col.push_back(c);
      lvl.p_val.push_back(v);
    }
    lvl.p_row_ptr[i + 1] = lvl.p_col.size();
  }

  // R = Pᵀ stored explicitly so restriction is a per-coarse-row gather
  // (deterministic) instead of a fine-row scatter.
  lvl.r_row_ptr.assign(n_coarse + 1, 0);
  for (std::size_t c : lvl.p_col) ++lvl.r_row_ptr[c + 1];
  for (std::size_t c = 0; c < n_coarse; ++c)
    lvl.r_row_ptr[c + 1] += lvl.r_row_ptr[c];
  lvl.r_col.resize(lvl.p_col.size());
  lvl.r_val.resize(lvl.p_val.size());
  std::vector<std::size_t> cursor(lvl.r_row_ptr.begin(),
                                  lvl.r_row_ptr.end() - 1);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = lvl.p_row_ptr[i]; k < lvl.p_row_ptr[i + 1]; ++k) {
      const std::size_t c = lvl.p_col[k];
      lvl.r_col[cursor[c]] = i;
      lvl.r_val[cursor[c]] = lvl.p_val[k];
      ++cursor[c];
    }
}

CsrMatrix AmgPreconditioner::galerkin_product(const Level& lvl) const {
  const CsrMatrix& a = *lvl.a;
  const std::size_t n_coarse = lvl.r_row_ptr.size() - 1;
  // Row c of A_c = R·A·P via a stamped sparse accumulator; the additions
  // land in fixed triple-loop order, so values are deterministic even
  // though the touched columns are sorted only afterwards.
  CooBuilder coo(n_coarse);
  std::vector<double> acc(n_coarse, 0.0);
  std::vector<std::size_t> stamp(n_coarse, kNoAgg);
  std::vector<std::size_t> touched;
  for (std::size_t c = 0; c < n_coarse; ++c) {
    touched.clear();
    for (std::size_t rk = lvl.r_row_ptr[c]; rk < lvl.r_row_ptr[c + 1]; ++rk) {
      const std::size_t i = lvl.r_col[rk];
      const double rv = lvl.r_val[rk];
      for (std::size_t ak = a.row_ptr()[i]; ak < a.row_ptr()[i + 1]; ++ak) {
        const std::size_t j = a.col_idx()[ak];
        const double av = rv * a.values()[ak];
        for (std::size_t pk = lvl.p_row_ptr[j]; pk < lvl.p_row_ptr[j + 1];
             ++pk) {
          const std::size_t jc = lvl.p_col[pk];
          if (stamp[jc] != c) {
            stamp[jc] = c;
            acc[jc] = 0.0;
            touched.push_back(jc);
          }
          acc[jc] += av * lvl.p_val[pk];
        }
      }
    }
    std::sort(touched.begin(), touched.end());
    for (std::size_t jc : touched) coo.add(c, jc, acc[jc]);
  }
  return CsrMatrix::from_coo(coo);
}

void AmgPreconditioner::factor_coarse(const CsrMatrix& a) {
  const std::size_t n = a.dim();
  coarse_dim_ = n;
  coarse_factor_.clear();
  // A stalled hierarchy can leave a coarsest level far above coarse_size;
  // cap the dense factor so setup stays O(coarse³) bounded and the n²
  // buffer cannot balloon on million-node inputs (2048² doubles = 32 MiB).
  // Past the cap the coarse solve falls back to fixed Jacobi sweeps.
  constexpr std::size_t kMaxDenseCoarse = 2048;
  if (n > kMaxDenseCoarse) return;
  // Dense lower-Cholesky factor, computed once at setup.  A relative
  // diagonal shift repairs semi-definite coarse operators (floating
  // subgrids Galerkin-project to singular blocks); if every shift fails
  // the coarse "solve" degrades to fixed Jacobi sweeps.
  for (double alpha : {0.0, 1e-12, 1e-9, 1e-6, 1e-3, 1e-1}) {
    std::vector<double> f(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t k = a.row_ptr()[i]; k < a.row_ptr()[i + 1]; ++k) {
        const std::size_t j = a.col_idx()[k];
        if (j <= i) f[i * n + j] = a.values()[k];
        if (j == i) f[i * n + j] += alpha * std::abs(a.values()[k]);
      }
    bool ok = true;
    for (std::size_t i = 0; i < n && ok; ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        double s = f[i * n + j];
        for (std::size_t t = 0; t < j; ++t) s -= f[i * n + t] * f[j * n + t];
        f[i * n + j] = s / f[j * n + j];
      }
      double s = f[i * n + i];
      for (std::size_t t = 0; t < i; ++t) s -= f[i * n + t] * f[i * n + t];
      if (!(s > 0.0) || !std::isfinite(s)) {
        ok = false;
        break;
      }
      f[i * n + i] = std::sqrt(s);
    }
    if (ok) {
      coarse_factor_ = std::move(f);
      return;
    }
  }
}

void AmgPreconditioner::coarse_solve(const std::vector<double>& rhs,
                                     std::vector<double>& x) const {
  const std::size_t n = coarse_dim_;
  x.resize(n);
  if (!coarse_factor_.empty()) {
    // L·Lᵀ x = rhs by substitution (n <= coarse_size: serial is fastest).
    coarse_y_.resize(n);
    const double* f = coarse_factor_.data();
    for (std::size_t i = 0; i < n; ++i) {
      double s = rhs[i];
      for (std::size_t j = 0; j < i; ++j) s -= f[i * n + j] * coarse_y_[j];
      coarse_y_[i] = s / f[i * n + i];
    }
    for (std::size_t i = n; i-- > 0;) {
      double s = coarse_y_[i];
      for (std::size_t j = i + 1; j < n; ++j) s -= f[j * n + i] * x[j];
      x[i] = s / f[i * n + i];
    }
    return;
  }
  // Factorization fallback: a fixed number of weighted-Jacobi sweeps on
  // the coarsest operator (a symmetric polynomial in D⁻¹·A — still a
  // valid SPD-friendly coarse approximation).
  const Level& lvl = levels_.back();
  const double w = opts_.smoother_omega;
  for (std::size_t i = 0; i < n; ++i) x[i] = w * lvl.inv_diag[i] * rhs[i];
  for (int sweep = 1; sweep < 4; ++sweep) {
    spmv(lvl, x, lvl.work);
    for (std::size_t i = 0; i < n; ++i)
      x[i] += w * lvl.inv_diag[i] * (rhs[i] - lvl.work[i]);
  }
}

void AmgPreconditioner::spmv(const Level& lvl, const std::vector<double>& x,
                             std::vector<double>& y) const {
  if (demoted_ && lvl.a_f32)
    lvl.a_f32->multiply(x, y);
  else
    lvl.a->multiply(x, y);
}

void AmgPreconditioner::vcycle(std::size_t l, const std::vector<double>& rhs,
                               std::vector<double>& x) const {
  if (l + 1 == levels_.size()) {
    coarse_solve(rhs, x);
    return;
  }
  const Level& lvl = levels_[l];
  const Level& nxt = levels_[l + 1];
  const std::size_t n = lvl.a->dim();
  const std::size_t n_coarse = nxt.a->dim();
  const double w = opts_.smoother_omega;
  const std::size_t row_cost = 2 * (lvl.a->nnz() / (n ? n : 1) + 1);
  x.resize(n);

  // Pre-smooth with a zero initial guess: the first sweep is just the
  // damped diagonal scale, later sweeps need the residual.
  runtime::parallel_for(0, n, runtime::grain_for_cost(2),
                        [&](std::size_t lo, std::size_t hi) {
                          for (std::size_t i = lo; i < hi; ++i)
                            x[i] = w * lvl.inv_diag[i] * rhs[i];
                        });
  for (int s = 1; s < opts_.smoother_sweeps; ++s) {
    spmv(lvl, x, lvl.work);
    runtime::parallel_for(0, n, runtime::grain_for_cost(4),
                          [&](std::size_t lo, std::size_t hi) {
                            for (std::size_t i = lo; i < hi; ++i)
                              x[i] += w * lvl.inv_diag[i] *
                                      (rhs[i] - lvl.work[i]);
                          });
  }

  // Restrict the residual: rhs_c = R·(rhs − A·x), a per-coarse-row gather.
  spmv(lvl, x, lvl.work);
  lvl.resid.resize(n);
  runtime::parallel_for(0, n, runtime::grain_for_cost(2),
                        [&](std::size_t lo, std::size_t hi) {
                          for (std::size_t i = lo; i < hi; ++i)
                            lvl.resid[i] = rhs[i] - lvl.work[i];
                        });
  nxt.rhs.resize(n_coarse);
  runtime::parallel_for(
      0, n_coarse, runtime::grain_for_cost(row_cost),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t c = lo; c < hi; ++c) {
          double acc = 0.0;
          for (std::size_t k = lvl.r_row_ptr[c]; k < lvl.r_row_ptr[c + 1]; ++k)
            acc += lvl.r_val[k] * lvl.resid[lvl.r_col[k]];
          nxt.rhs[c] = acc;
        }
      });

  vcycle(l + 1, nxt.rhs, nxt.x);

  // Prolong the coarse correction: x += P·x_c, a per-fine-row gather.
  runtime::parallel_for(
      0, n, runtime::grain_for_cost(row_cost),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          double acc = 0.0;
          for (std::size_t k = lvl.p_row_ptr[i]; k < lvl.p_row_ptr[i + 1]; ++k)
            acc += lvl.p_val[k] * nxt.x[lvl.p_col[k]];
          x[i] += acc;
        }
      });

  // Post-smooth the same number of sweeps so the cycle stays symmetric.
  for (int s = 0; s < opts_.smoother_sweeps; ++s) {
    spmv(lvl, x, lvl.work);
    runtime::parallel_for(0, n, runtime::grain_for_cost(4),
                          [&](std::size_t lo, std::size_t hi) {
                            for (std::size_t i = lo; i < hi; ++i)
                              x[i] += w * lvl.inv_diag[i] *
                                      (rhs[i] - lvl.work[i]);
                          });
  }
}

void AmgPreconditioner::apply(const std::vector<double>& r,
                              std::vector<double>& z) const {
  if (r.size() != levels_[0].a->dim())
    throw std::invalid_argument("AmgPreconditioner::apply: size");
  vcycle(0, r, z);
}

bool AmgPreconditioner::refresh(const CsrMatrix& a) {
  const bool same_pattern = a.dim() == levels_[0].a->dim() &&
                            a.nnz() == levels_[0].a->nnz();
  build(a, /*reuse_structure=*/same_pattern);
  ++stats_.refreshes;
  return true;
}

bool AmgPreconditioner::demote_storage() {
  if (demoted_) return true;
  for (auto& lvl : levels_)
    if (!lvl.a_f32) lvl.a_f32.emplace(*lvl.a);
  demoted_ = true;
  return true;
}

}  // namespace lmmir::sparse
