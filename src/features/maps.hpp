#pragma once
// Circuit-modality feature maps (paper Sec. II-A and III-A).
//
// The three contest-provided channels:
//   1. current map          — per-pixel sum of current-source draw;
//   2. effective distance   — 1 / Σᵢ 1/dist(p, voltage source i);
//   3. PDN density          — stripe density of the power grid around p;
// plus the three channels the paper adds:
//   4. voltage-source map   — source volts at bump pixels;
//   5. current-source map   — source amps at tap pixels (value plot);
//   6. resistance map       — each resistor's ohms spread over the pixels
//                             its segment overlaps.
//
// The extraction pipeline behind these (single classification pass,
// parallel rasterization, incremental reuse) lives in
// features/feature_context.hpp; the free functions here are the
// per-channel entry points and the cold one-shot extractor.
#include <array>

#include "grid/grid2d.hpp"
#include "spice/netlist.hpp"

namespace lmmir::feat {

inline constexpr int kChannelCount = 6;

/// Canonical channel indices (the order of FeatureMaps::channel and of
/// the [kChannelCount, S, S] model input stack).
inline constexpr int kChannelCurrent = 0;
inline constexpr int kChannelEffectiveDistance = 1;
inline constexpr int kChannelPdnDensity = 2;
inline constexpr int kChannelVoltageSource = 3;
inline constexpr int kChannelCurrentSource = 4;
inline constexpr int kChannelResistance = 5;

/// Stable snake_case name of a canonical channel (bench output, logs).
/// Throws std::out_of_range outside [0, kChannelCount).
const char* channel_name(int channel);

struct FeatureMaps {
  grid::Grid2D current;
  grid::Grid2D effective_distance;
  grid::Grid2D pdn_density;
  grid::Grid2D voltage_source;
  grid::Grid2D current_source;
  grid::Grid2D resistance;

  /// Channel access in canonical order (see kChannelCount).
  const grid::Grid2D& channel(int i) const;
  grid::Grid2D& channel(int i);
};

grid::Grid2D current_map(const spice::Netlist& nl);
grid::Grid2D effective_distance_map(const spice::Netlist& nl);
grid::Grid2D pdn_density_map(const spice::Netlist& nl);
grid::Grid2D voltage_source_map(const spice::Netlist& nl);
grid::Grid2D current_source_map(const spice::Netlist& nl);
grid::Grid2D resistance_map(const spice::Netlist& nl);

/// All six channels at the netlist's pixel shape (cold extraction; runs
/// through the same single-pass pipeline as feat::FeatureContext).
FeatureMaps compute_feature_maps(const spice::Netlist& nl);

}  // namespace lmmir::feat
