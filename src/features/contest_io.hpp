#pragma once
// ICCAD-2023-contest-style on-disk layout for a testcase directory:
//   <dir>/current_map.csv, eff_dist_map.csv, pdn_density.csv,
//   <dir>/ir_drop_map.csv  (ground truth), <dir>/netlist.sp
// This lets benchmarks be exported / reloaded in the same format the
// contest distributed.
#include <string>

#include "features/maps.hpp"
#include "spice/netlist.hpp"

namespace lmmir::feat {

struct ContestCase {
  spice::Netlist netlist;
  grid::Grid2D current;
  grid::Grid2D effective_distance;
  grid::Grid2D pdn_density;
  grid::Grid2D ir_drop;  // ground truth (may be empty when absent)
};

/// Write a case directory (creates it if missing).
void write_contest_case(const std::string& dir, const spice::Netlist& nl,
                        const FeatureMaps& maps, const grid::Grid2D& ir_drop);

/// Read a case directory written by write_contest_case (or the contest).
/// Throws std::runtime_error when mandatory files are missing.
ContestCase read_contest_case(const std::string& dir);

}  // namespace lmmir::feat
