#include "features/spatial.hpp"

#include <stdexcept>

namespace lmmir::feat {

grid::Grid2D adjust_to_side(const grid::Grid2D& g, std::size_t side,
                            AdjustInfo& info) {
  if (side == 0) throw std::invalid_argument("adjust_to_side: side == 0");
  info.orig_rows = g.rows();
  info.orig_cols = g.cols();
  info.side = side;
  if (g.rows() <= side && g.cols() <= side) {
    info.scaled = false;
    return g.padded_to(side, side, 0.0f);
  }
  info.scaled = true;
  return g.resized_bilinear(side, side);
}

grid::Grid2D restore_from_side(const grid::Grid2D& pred,
                               const AdjustInfo& info) {
  if (pred.rows() != info.side || pred.cols() != info.side)
    throw std::invalid_argument("restore_from_side: prediction side mismatch");
  if (!info.scaled) return pred.cropped_to(info.orig_rows, info.orig_cols);
  return pred.resized_bilinear(info.orig_rows, info.orig_cols);
}

float channel_fixed_scale(int channel) {
  switch (channel) {
    case 0: return 2e-3f;   // current map: amps per pixel (hotspot peak scale)
    case 1: return 60.0f;   // effective distance: microns
    case 2: return 8.0f;    // PDN density: stripes per blurred pixel
    case 3: return 1.2f;    // voltage-source map: volts (~vdd)
    case 4: return 2e-3f;   // current-source map: amps
    case 5: return 25.0f;   // resistance map: ohms per pixel
    default: throw std::invalid_argument("channel_fixed_scale: bad channel");
  }
}

grid::Grid2D normalize_channel_fixed(const grid::Grid2D& g, int channel) {
  grid::Grid2D out = g;
  out.scale(1.0f / channel_fixed_scale(channel));
  return out;
}

grid::Grid2D normalize_channel(const grid::Grid2D& g, ChannelNorm& norm) {
  norm.lo = g.min();
  norm.hi = g.max();
  grid::Grid2D out = g;
  const float span = norm.hi - norm.lo;
  if (span <= 0.0f) {
    out.fill(0.0f);
    return out;
  }
  for (auto& v : out.data()) v = (v - norm.lo) / span;
  return out;
}

}  // namespace lmmir::feat
