#pragma once
// Spatial batch adjustment (paper Sec. III-A): testcase edge lengths range
// widely (204–930 px at contest scale), but training batches need one side
// length.  Grids smaller than the target are zero-padded (lossless);
// larger grids are bilinearly scaled down.  The AdjustInfo records how to
// map a model prediction back to the original resolution.
#include "grid/grid2d.hpp"

namespace lmmir::feat {

struct AdjustInfo {
  std::size_t orig_rows = 0;
  std::size_t orig_cols = 0;
  std::size_t side = 0;   // model input side length
  bool scaled = false;    // true: resized; false: padded
};

/// Adjust a grid to side x side per the pad-or-scale rule.
grid::Grid2D adjust_to_side(const grid::Grid2D& g, std::size_t side,
                            AdjustInfo& info);

/// Map a side x side prediction back to the original resolution.
grid::Grid2D restore_from_side(const grid::Grid2D& pred,
                               const AdjustInfo& info);

/// Min-max normalize each channel into [0,1] (paper's per-channel
/// normalization); returns the scale so predictions stay interpretable.
struct ChannelNorm {
  float lo = 0.0f;
  float hi = 1.0f;
};
grid::Grid2D normalize_channel(const grid::Grid2D& g, ChannelNorm& norm);

/// Fixed per-channel divisors for the canonical six-channel stack.  IR
/// drop scales with absolute current and resistance, so those channels
/// keep their physical magnitude (divided by a dataset-level constant)
/// instead of per-sample min-max, which would erase the scale the model
/// must regress.  Index order matches feat::FeatureMaps::channel.
float channel_fixed_scale(int channel);

/// Divide a channel by its fixed scale.
grid::Grid2D normalize_channel_fixed(const grid::Grid2D& g, int channel);

}  // namespace lmmir::feat
