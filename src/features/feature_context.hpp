#pragma once
// Single-pass, incrementally-refreshed feature extraction.
//
// The seed extractor walked the full netlist once PER CHANNEL (six
// traversals, each re-resolving every node's pixel), and every call
// started from scratch.  This header replaces that with a two-stage
// pipeline:
//
//   1. classify_netlist — ONE pass over nl.elements() with a shared
//      node→pixel cache (each node resolved exactly once) that bins the
//      elements into the per-channel rasterization lists below;
//   2. rasterize_channel — per-channel rasterization from those lists,
//      bitwise-identical to the seed free functions in features/maps.hpp
//      (the lists preserve element order, so float accumulation order is
//      unchanged).
//
// FeatureContext adds the reuse layer on top: it caches the previous
// classification and the six rasterized grids, and on the next extract
// recomputes only the channels whose INPUT LISTS changed.  The dirty
// check is keyed two ways:
//
//   * spice::Netlist::revision() — a process-unique content key; a
//     same-revision netlist (identical content) skips even the
//     classification pass;
//   * exact list comparison per channel group — consecutive
//     same-topology netlists where only current sources changed (the
//     load-sweep / ECO structure pdn::SolverContext already exploits for
//     warm starts) reuse the four topology-invariant channels
//     (effective_distance, pdn_density, voltage_source, resistance)
//     and recompute only the two current channels.
//
// Channels whose inputs are value-insensitive compare positions only:
// effective_distance ignores voltage-source magnitudes and pdn_density
// ignores resistor ohms, so a vdd or resistance rescale still reuses
// them.  Reuse is exact (list equality, not hashing): a warm extract is
// bitwise-identical to a cold one for any thread count and cache state.
//
// Dirty channels rasterize in parallel over the runtime pool as
// independent tasks; effective_distance (the O(rows·cols·sources) hot
// loop) stays on the calling thread so its intra-channel parallel_for
// can still fan out.  Each channel writes only its own grid, so the
// schedule cannot affect results.
//
// A context is single-threaded state: use one instance per extraction
// loop (compute_feature_maps_batch stripes a corpus over the pool with
// one context per stripe).  Enforced end to end by bench_feature_pipeline.
#include <array>
#include <cstdint>
#include <vector>

#include "features/maps.hpp"
#include "grid/grid2d.hpp"
#include "spice/netlist.hpp"

namespace lmmir::feat {

/// Product of the single classification pass: per-channel rasterization
/// inputs, in element order, with off-grid endpoints already dropped
/// (they cannot touch any pixel, so excluding them both from the lists
/// and from the dirty comparison is exact).
struct ClassifiedNetlist {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::uint64_t revision = 0;  // of the classified netlist

  struct PointSource {
    std::uint32_t r = 0, c = 0;
    float value = 0.0f;
    bool operator==(const PointSource&) const = default;
  };
  struct Segment {
    std::uint32_t r1 = 0, c1 = 0, r2 = 0, c2 = 0;
    float value = 0.0f;
    bool operator==(const Segment&) const = default;
  };

  std::vector<PointSource> current_sources;  // tap pixel + amps
  std::vector<PointSource> voltage_sources;  // pin pixel + volts
  std::vector<Segment> resistors;            // endpoint pixels + ohms

  /// Estimated heap footprint of the classification lists (accounting for
  /// cache memory budgets; capacity-based, not allocator-exact).
  std::size_t resident_bytes() const {
    return current_sources.capacity() * sizeof(PointSource) +
           voltage_sources.capacity() * sizeof(PointSource) +
           resistors.capacity() * sizeof(Segment);
  }
};

/// One pass over nl.elements() with a shared node→pixel cache.  Throws
/// std::runtime_error when the netlist has no located nodes (matching
/// the seed per-channel extractors).
ClassifiedNetlist classify_netlist(const spice::Netlist& nl);

/// Rasterize one channel (canonical index, see maps.hpp) from the
/// classified lists.  Bitwise-identical to the corresponding free
/// function in features/maps.hpp.
grid::Grid2D rasterize_channel(const ClassifiedNetlist& cls, int channel);

/// True when `channel`'s rasterization inputs are identical between two
/// classifications (the channel may be reused verbatim).
bool channel_inputs_equal(const ClassifiedNetlist& a,
                          const ClassifiedNetlist& b, int channel);

/// Lifetime counters of a FeatureContext (telemetry for benches, logs,
/// and the reuse gates in bench_feature_pipeline).
struct FeatureContextStats {
  std::size_t extractions = 0;        // extract() calls
  std::size_t revision_hits = 0;      // same-revision: no work at all
  std::size_t classify_passes = 0;
  std::size_t channels_computed = 0;
  std::size_t channels_reused = 0;    // revision hits count all channels
  double classify_seconds = 0.0;
  double rasterize_seconds = 0.0;

  /// Field-wise sum (aggregation across per-stripe contexts).
  FeatureContextStats& operator+=(const FeatureContextStats& o) {
    extractions += o.extractions;
    revision_hits += o.revision_hits;
    classify_passes += o.classify_passes;
    channels_computed += o.channels_computed;
    channels_reused += o.channels_reused;
    classify_seconds += o.classify_seconds;
    rasterize_seconds += o.rasterize_seconds;
    return *this;
  }
};

class FeatureContext {
 public:
  FeatureContext() = default;
  FeatureContext(const FeatureContext&) = delete;
  FeatureContext& operator=(const FeatureContext&) = delete;

  /// Extract all six channels, reusing cached channels whose inputs are
  /// unchanged since the previous extract.  The returned reference stays
  /// valid until the next extract()/invalidate() call on this context;
  /// copy the maps out to keep them longer.  Throws like
  /// compute_feature_maps.
  const FeatureMaps& extract(const spice::Netlist& nl);

  /// Drop every cached channel; the next extract recomputes all six.
  /// Stats are preserved.
  void invalidate();

  /// Estimated heap footprint of the cached state (six rasterized grids
  /// plus the previous classification lists).  Used by session caches
  /// (serve::SessionServer) to enforce memory budgets.
  std::size_t resident_bytes() const;

  const FeatureContextStats& stats() const { return stats_; }

 private:
  void rasterize_dirty(const ClassifiedNetlist& cls,
                       const std::array<bool, kChannelCount>& dirty);

  FeatureMaps maps_;
  ClassifiedNetlist prev_;
  std::array<bool, kChannelCount> valid_{};  // all false: nothing cached
  bool has_prev_ = false;
  FeatureContextStats stats_;
};

/// Extract feature maps for a batch of independent netlists across the
/// runtime pool, one FeatureContext per worker stripe (the corpus
/// workload: many cases, consecutive same-topology cases hitting the
/// reuse path).  The stripe partition depends only on the case count —
/// never on the thread count — and each case's extraction is
/// deterministic, so results are bitwise reproducible for any
/// LMMIR_THREADS, including fully serial.  When `aggregate` is non-null
/// the per-stripe context stats are summed into it.  Throws like
/// compute_feature_maps (the first stripe failure wins).
std::vector<FeatureMaps> compute_feature_maps_batch(
    const std::vector<const spice::Netlist*>& netlists,
    std::size_t stripes = 8, FeatureContextStats* aggregate = nullptr);

}  // namespace lmmir::feat
