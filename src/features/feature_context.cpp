#include "features/feature_context.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <exception>
#include <future>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"
#include "util/stopwatch.hpp"

namespace lmmir::feat {

using spice::ElementType;
using spice::kDbuPerMicron;
using spice::Netlist;
using spice::NodeId;

namespace {

/// Registry view of the extraction cache, aggregated across every
/// FeatureContext in the process (per-context FeatureContextStats stay
/// the per-instance view).
struct FeatureMetrics {
  obs::Counter& extractions = obs::counter("lmmir_feature_extractions_total");
  obs::Counter& revision_hits =
      obs::counter("lmmir_feature_revision_hits_total");
  obs::Counter& classify_passes =
      obs::counter("lmmir_feature_classify_passes_total");
  obs::Counter& channels_computed =
      obs::counter("lmmir_feature_channels_computed_total");
  obs::Counter& channels_reused =
      obs::counter("lmmir_feature_channels_reused_total");

  static FeatureMetrics& get() {
    static FeatureMetrics m;
    return m;
  }
};

struct Pixel {
  std::size_t r = 0, c = 0;
  bool valid = false;
};

Pixel node_pixel(const spice::Node& node, std::size_t rows, std::size_t cols) {
  Pixel p;
  if (!node.parsed) return p;
  p.r = static_cast<std::size_t>(node.parsed->y / kDbuPerMicron);
  p.c = static_cast<std::size_t>(node.parsed->x / kDbuPerMicron);
  p.valid = p.r < rows && p.c < cols;
  return p;
}

/// March a straight wire segment over the pixels it overlaps; calls
/// visit(r, c, fraction) where fractions over the segment sum to 1.
template <typename Visit>
void walk_segment(const ClassifiedNetlist::Segment& s, Visit&& visit) {
  const long dr = static_cast<long>(s.r2) - static_cast<long>(s.r1);
  const long dc = static_cast<long>(s.c2) - static_cast<long>(s.c1);
  const long steps = std::max(std::abs(dr), std::abs(dc));
  if (steps == 0) {
    visit(s.r1, s.c1, 1.0f);
    return;
  }
  const float frac = 1.0f / static_cast<float>(steps + 1);
  for (long t = 0; t <= steps; ++t) {
    const long r = static_cast<long>(s.r1) + dr * t / steps;
    const long c = static_cast<long>(s.c1) + dc * t / steps;
    visit(static_cast<std::size_t>(r), static_cast<std::size_t>(c), frac);
  }
}

bool positions_equal(const std::vector<ClassifiedNetlist::PointSource>& a,
                     const std::vector<ClassifiedNetlist::PointSource>& b) {
  return std::equal(a.begin(), a.end(), b.begin(), b.end(),
                    [](const ClassifiedNetlist::PointSource& x,
                       const ClassifiedNetlist::PointSource& y) {
                      return x.r == y.r && x.c == y.c;
                    });
}

bool positions_equal(const std::vector<ClassifiedNetlist::Segment>& a,
                     const std::vector<ClassifiedNetlist::Segment>& b) {
  return std::equal(a.begin(), a.end(), b.begin(), b.end(),
                    [](const ClassifiedNetlist::Segment& x,
                       const ClassifiedNetlist::Segment& y) {
                      return x.r1 == y.r1 && x.c1 == y.c1 && x.r2 == y.r2 &&
                             x.c2 == y.c2;
                    });
}

}  // namespace

ClassifiedNetlist classify_netlist(const Netlist& nl) {
  ClassifiedNetlist cls;
  const auto shape = nl.pixel_shape();
  if (shape.rows == 0 || shape.cols == 0)
    throw std::runtime_error("feature maps: netlist has no located nodes");
  cls.rows = shape.rows;
  cls.cols = shape.cols;
  cls.revision = nl.revision();

  // Shared node→pixel cache: each node resolves exactly once, instead of
  // once per channel per element reference.
  const auto& nodes = nl.nodes();
  std::vector<Pixel> pixels(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i)
    pixels[i] = node_pixel(nodes[i], cls.rows, cls.cols);
  const Pixel invalid;  // ground / unresolved
  auto pixel_of = [&](NodeId id) -> const Pixel& {
    return id == spice::kGroundNode ? invalid
                                    : pixels[static_cast<std::size_t>(id)];
  };

  for (const auto& e : nl.elements()) {
    switch (e.type) {
      case ElementType::CurrentSource: {
        // The PDN-side terminal is the non-ground one.
        const NodeId tap = e.node1 != spice::kGroundNode ? e.node1 : e.node2;
        const Pixel& p = pixel_of(tap);
        if (p.valid)
          cls.current_sources.push_back({static_cast<std::uint32_t>(p.r),
                                         static_cast<std::uint32_t>(p.c),
                                         static_cast<float>(e.value)});
        break;
      }
      case ElementType::VoltageSource: {
        const NodeId pin = e.node1 != spice::kGroundNode ? e.node1 : e.node2;
        const Pixel& p = pixel_of(pin);
        if (p.valid)
          cls.voltage_sources.push_back({static_cast<std::uint32_t>(p.r),
                                         static_cast<std::uint32_t>(p.c),
                                         static_cast<float>(e.value)});
        break;
      }
      case ElementType::Resistor: {
        const Pixel& pa = pixel_of(e.node1);
        const Pixel& pb = pixel_of(e.node2);
        if (pa.valid && pb.valid)
          cls.resistors.push_back({static_cast<std::uint32_t>(pa.r),
                                   static_cast<std::uint32_t>(pa.c),
                                   static_cast<std::uint32_t>(pb.r),
                                   static_cast<std::uint32_t>(pb.c),
                                   static_cast<float>(e.value)});
        break;
      }
    }
  }
  return cls;
}

grid::Grid2D rasterize_channel(const ClassifiedNetlist& cls, int channel) {
  grid::Grid2D map(cls.rows, cls.cols, 0.0f);
  switch (channel) {
    case kChannelCurrent:
    case kChannelCurrentSource:
      // Identical definitions (sum of source amps at the tap pixel); the
      // list preserves element order, so accumulation order matches the
      // seed per-channel traversals.
      for (const auto& s : cls.current_sources) map.at(s.r, s.c) += s.value;
      return map;

    case kChannelEffectiveDistance: {
      if (cls.voltage_sources.empty()) {
        map.fill(0.0f);
        return map;
      }
      std::vector<std::pair<float, float>> sources;  // (y, x)
      sources.reserve(cls.voltage_sources.size());
      for (const auto& s : cls.voltage_sources)
        sources.emplace_back(static_cast<float>(s.r), static_cast<float>(s.c));
      // d_eff(p) = ( Σᵢ 1/d(p, vᵢ) )⁻¹, with d floored at one pixel so the
      // source pixel itself stays finite.  O(rows * cols * sources) — the
      // hottest rasterization loop — fanned out over pixel rows.
      runtime::parallel_for(
          0, map.rows(),
          runtime::grain_for_cost(map.cols() * sources.size() * 8),
          [&](std::size_t r_lo, std::size_t r_hi) {
            for (std::size_t r = r_lo; r < r_hi; ++r)
              for (std::size_t c = 0; c < map.cols(); ++c) {
                double acc = 0.0;
                for (const auto& [sy, sx] : sources) {
                  const double dy = static_cast<double>(r) - sy;
                  const double dx = static_cast<double>(c) - sx;
                  const double d = std::max(1.0, std::sqrt(dy * dy + dx * dx));
                  acc += 1.0 / d;
                }
                map.at(r, c) = static_cast<float>(1.0 / acc);
              }
          });
      return map;
    }

    case kChannelPdnDensity: {
      // Rasterize wire segments (vias excluded: same pixel endpoints still
      // count once via walk_segment's zero-length branch, matching "stripes
      // passing through the region").
      for (const auto& s : cls.resistors)
        walk_segment(s, [&](std::size_t r, std::size_t c, float) {
          map.at(r, c) += 1.0f;
        });
      // Local mean over a window approximates "mean PDN spacing per region".
      const float sigma = std::max(
          2.0f, static_cast<float>(std::min(map.rows(), map.cols())) / 32.0f);
      return map.blurred(sigma);
    }

    case kChannelVoltageSource:
      for (const auto& s : cls.voltage_sources)
        map.at(s.r, s.c) = std::max(map.at(s.r, s.c), s.value);
      return map;

    case kChannelResistance:
      for (const auto& s : cls.resistors)
        walk_segment(s, [&](std::size_t r, std::size_t c, float frac) {
          map.at(r, c) += s.value * frac;
        });
      return map;

    default:
      throw std::out_of_range("feat::rasterize_channel");
  }
}

bool channel_inputs_equal(const ClassifiedNetlist& a, const ClassifiedNetlist& b,
                          int channel) {
  if (a.rows != b.rows || a.cols != b.cols) return false;
  switch (channel) {
    case kChannelCurrent:
    case kChannelCurrentSource:
      return a.current_sources == b.current_sources;
    case kChannelEffectiveDistance:
      // Value-insensitive: only the pin positions enter the harmonic sum.
      return positions_equal(a.voltage_sources, b.voltage_sources);
    case kChannelVoltageSource:
      return a.voltage_sources == b.voltage_sources;
    case kChannelPdnDensity:
      // Value-insensitive: density counts stripes, not ohms.
      return positions_equal(a.resistors, b.resistors);
    case kChannelResistance:
      return a.resistors == b.resistors;
    default:
      throw std::out_of_range("feat::channel_inputs_equal");
  }
}

const FeatureMaps& FeatureContext::extract(const Netlist& nl) {
  obs::Span span("feature.extract");
  ++stats_.extractions;
  FeatureMetrics::get().extractions.add();
  // Same revision == same content (see Netlist::revision): nothing to do,
  // not even a classification pass.
  if (has_prev_ && nl.revision() == prev_.revision) {
    ++stats_.revision_hits;
    stats_.channels_reused += kChannelCount;
    FeatureMetrics::get().revision_hits.add();
    FeatureMetrics::get().channels_reused.add(kChannelCount);
    return maps_;
  }

  util::Stopwatch classify_watch;
  ClassifiedNetlist cls;
  {
    obs::Span classify_span("feature.classify");
    cls = classify_netlist(nl);
  }
  ++stats_.classify_passes;
  FeatureMetrics::get().classify_passes.add();
  stats_.classify_seconds += classify_watch.seconds();

  std::array<bool, kChannelCount> dirty;
  for (int c = 0; c < kChannelCount; ++c)
    dirty[static_cast<std::size_t>(c)] =
        !valid_[static_cast<std::size_t>(c)] || !has_prev_ ||
        !channel_inputs_equal(prev_, cls, c);

  util::Stopwatch rasterize_watch;
  try {
    obs::Span rasterize_span("feature.rasterize");
    rasterize_dirty(cls, dirty);
  } catch (...) {
    // A half-updated cache (some channels rasterized, validity flags not
    // yet advanced) must not be reusable: drop everything.
    invalidate();
    throw;
  }
  stats_.rasterize_seconds += rasterize_watch.seconds();

  for (int c = 0; c < kChannelCount; ++c) {
    if (dirty[static_cast<std::size_t>(c)]) {
      valid_[static_cast<std::size_t>(c)] = true;
      ++stats_.channels_computed;
      FeatureMetrics::get().channels_computed.add();
    } else {
      ++stats_.channels_reused;
      FeatureMetrics::get().channels_reused.add();
    }
  }
  prev_ = std::move(cls);
  has_prev_ = true;
  return maps_;
}

void FeatureContext::rasterize_dirty(
    const ClassifiedNetlist& cls, const std::array<bool, kChannelCount>& dirty) {
  std::vector<int> todo;
  for (int c = 0; c < kChannelCount; ++c)
    if (dirty[static_cast<std::size_t>(c)]) todo.push_back(c);
  if (todo.empty()) return;

  runtime::ThreadPool* pool = runtime::global_pool();
  if (!pool || pool->in_worker() || todo.size() == 1) {
    for (int c : todo) maps_.channel(c) = rasterize_channel(cls, c);
    return;
  }

  // Fan the dirty channels out as independent pool tasks.  Keep
  // effective_distance on the calling thread: posted jobs run their inner
  // loops inline (no nested parallelism), but the caller's intra-channel
  // parallel_for can still split the O(rows·cols·sources) loop across
  // whatever workers free up.  Each task writes only its own grid, so the
  // schedule cannot change results.
  int keep = todo.front();
  for (int c : todo)
    if (c == kChannelEffectiveDistance) keep = c;
  std::vector<std::future<void>> futures;
  futures.reserve(todo.size() - 1);
  for (int c : todo) {
    if (c == keep) continue;
    futures.push_back(pool->submit(
        [this, &cls, c] { maps_.channel(c) = rasterize_channel(cls, c); }));
  }
  std::exception_ptr first_error;
  try {
    maps_.channel(keep) = rasterize_channel(cls, keep);
  } catch (...) {
    first_error = std::current_exception();
  }
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void FeatureContext::invalidate() {
  valid_.fill(false);
  has_prev_ = false;
  prev_ = {};
  maps_ = {};
}

std::size_t FeatureContext::resident_bytes() const {
  std::size_t bytes = sizeof(FeatureContext);
  for (int c = 0; c < kChannelCount; ++c)
    bytes += maps_.channel(c).data().capacity() * sizeof(float);
  bytes += prev_.resident_bytes();
  return bytes;
}

std::vector<FeatureMaps> compute_feature_maps_batch(
    const std::vector<const Netlist*>& netlists, std::size_t stripes,
    FeatureContextStats* aggregate) {
  const std::size_t n = netlists.size();
  std::vector<FeatureMaps> out(n);
  if (n == 0) return out;
  if (stripes == 0) stripes = 1;
  stripes = std::min(stripes, n);

  std::mutex agg_mu;
  // Contiguous blocks keep consecutive same-topology cases in one
  // context's reuse chain; the partition depends only on (n, stripes),
  // so any thread count replays the same chains bitwise.
  auto run_stripe = [&](std::size_t s) {
    const std::size_t begin = s * n / stripes;
    const std::size_t end = (s + 1) * n / stripes;
    FeatureContext ctx;
    for (std::size_t i = begin; i < end; ++i)
      out[i] = ctx.extract(*netlists[i]);
    if (aggregate) {
      std::lock_guard<std::mutex> lock(agg_mu);
      *aggregate += ctx.stats();
    }
  };

  runtime::ThreadPool* pool = runtime::global_pool();
  if (!pool || pool->in_worker()) {
    for (std::size_t s = 0; s < stripes; ++s) run_stripe(s);
    return out;
  }
  // Every stripe runs as a posted job: on workers the per-channel fan-out
  // and the intra-channel parallel_for both degrade to inline execution,
  // so no stripe blocks on pool latches behind another stripe's work.
  std::vector<std::future<void>> futures;
  futures.reserve(stripes);
  for (std::size_t s = 0; s < stripes; ++s)
    futures.push_back(pool->submit([&run_stripe, s] { run_stripe(s); }));
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return out;
}

}  // namespace lmmir::feat
