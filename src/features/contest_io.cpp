#include "features/contest_io.hpp"

#include <filesystem>

#include "spice/parser.hpp"
#include "spice/writer.hpp"
#include "util/csv.hpp"

namespace lmmir::feat {

namespace fs = std::filesystem;

void write_contest_case(const std::string& dir, const spice::Netlist& nl,
                        const FeatureMaps& maps, const grid::Grid2D& ir_drop) {
  fs::create_directories(dir);
  spice::write_netlist_file(dir + "/netlist.sp", nl);
  util::write_csv_file(dir + "/current_map.csv", maps.current.to_csv());
  util::write_csv_file(dir + "/eff_dist_map.csv",
                       maps.effective_distance.to_csv());
  util::write_csv_file(dir + "/pdn_density.csv", maps.pdn_density.to_csv());
  if (!ir_drop.empty())
    util::write_csv_file(dir + "/ir_drop_map.csv", ir_drop.to_csv(), 8);
}

ContestCase read_contest_case(const std::string& dir) {
  ContestCase c;
  c.netlist = spice::parse_netlist_file(dir + "/netlist.sp");
  c.current = grid::Grid2D::from_csv(util::read_csv_file(dir + "/current_map.csv"));
  c.effective_distance =
      grid::Grid2D::from_csv(util::read_csv_file(dir + "/eff_dist_map.csv"));
  c.pdn_density =
      grid::Grid2D::from_csv(util::read_csv_file(dir + "/pdn_density.csv"));
  const std::string gt = dir + "/ir_drop_map.csv";
  if (fs::exists(gt)) c.ir_drop = grid::Grid2D::from_csv(util::read_csv_file(gt));
  return c;
}

}  // namespace lmmir::feat
