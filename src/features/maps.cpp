#include "features/maps.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "runtime/parallel_for.hpp"

namespace lmmir::feat {

using spice::ElementType;
using spice::kDbuPerMicron;
using spice::Netlist;
using spice::NodeId;

namespace {

struct Pixel {
  std::size_t r, c;
  bool valid = false;
};

Pixel node_pixel(const Netlist& nl, NodeId id, std::size_t rows,
                 std::size_t cols) {
  Pixel p;
  if (id == spice::kGroundNode) return p;
  const auto& node = nl.node(id);
  if (!node.parsed) return p;
  p.r = static_cast<std::size_t>(node.parsed->y / kDbuPerMicron);
  p.c = static_cast<std::size_t>(node.parsed->x / kDbuPerMicron);
  p.valid = p.r < rows && p.c < cols;
  return p;
}

grid::Grid2D empty_map(const Netlist& nl) {
  const auto shape = nl.pixel_shape();
  if (shape.rows == 0 || shape.cols == 0)
    throw std::runtime_error("feature maps: netlist has no located nodes");
  return grid::Grid2D(shape.rows, shape.cols, 0.0f);
}

/// March a straight wire segment over the pixels it overlaps; calls
/// visit(r, c, fraction) where fractions over the segment sum to 1.
template <typename Visit>
void walk_segment(const Netlist& nl, NodeId a, NodeId b, std::size_t rows,
                  std::size_t cols, Visit&& visit) {
  const Pixel pa = node_pixel(nl, a, rows, cols);
  const Pixel pb = node_pixel(nl, b, rows, cols);
  if (!pa.valid || !pb.valid) return;
  const long dr = static_cast<long>(pb.r) - static_cast<long>(pa.r);
  const long dc = static_cast<long>(pb.c) - static_cast<long>(pa.c);
  const long steps = std::max(std::abs(dr), std::abs(dc));
  if (steps == 0) {
    visit(pa.r, pa.c, 1.0f);
    return;
  }
  const float frac = 1.0f / static_cast<float>(steps + 1);
  for (long s = 0; s <= steps; ++s) {
    const long r = static_cast<long>(pa.r) + dr * s / steps;
    const long c = static_cast<long>(pa.c) + dc * s / steps;
    visit(static_cast<std::size_t>(r), static_cast<std::size_t>(c), frac);
  }
}

}  // namespace

const grid::Grid2D& FeatureMaps::channel(int i) const {
  switch (i) {
    case 0: return current;
    case 1: return effective_distance;
    case 2: return pdn_density;
    case 3: return voltage_source;
    case 4: return current_source;
    case 5: return resistance;
    default: throw std::out_of_range("FeatureMaps::channel");
  }
}

grid::Grid2D current_map(const Netlist& nl) {
  grid::Grid2D map = empty_map(nl);
  for (const auto& e : nl.elements()) {
    if (e.type != ElementType::CurrentSource) continue;
    // The PDN-side terminal is the non-ground one.
    const NodeId tap = e.node1 != spice::kGroundNode ? e.node1 : e.node2;
    const Pixel p = node_pixel(nl, tap, map.rows(), map.cols());
    if (p.valid) map.at(p.r, p.c) += static_cast<float>(e.value);
  }
  return map;
}

grid::Grid2D effective_distance_map(const Netlist& nl) {
  grid::Grid2D map = empty_map(nl);
  // Collect voltage-source pixel positions (micron units).
  std::vector<std::pair<float, float>> sources;  // (y, x)
  for (const auto& e : nl.elements()) {
    if (e.type != ElementType::VoltageSource) continue;
    const NodeId pin = e.node1 != spice::kGroundNode ? e.node1 : e.node2;
    const Pixel p = node_pixel(nl, pin, map.rows(), map.cols());
    if (p.valid)
      sources.emplace_back(static_cast<float>(p.r), static_cast<float>(p.c));
  }
  if (sources.empty()) {
    map.fill(0.0f);
    return map;
  }
  // d_eff(p) = ( Σᵢ 1/d(p, vᵢ) )⁻¹, with d floored at one pixel so the
  // source pixel itself stays finite.  O(rows * cols * sources) — the
  // hottest rasterization loop — fanned out over pixel rows.
  runtime::parallel_for(
      0, map.rows(), runtime::grain_for_cost(map.cols() * sources.size() * 8),
      [&](std::size_t r_lo, std::size_t r_hi) {
        for (std::size_t r = r_lo; r < r_hi; ++r)
          for (std::size_t c = 0; c < map.cols(); ++c) {
            double acc = 0.0;
            for (const auto& [sy, sx] : sources) {
              const double dy = static_cast<double>(r) - sy;
              const double dx = static_cast<double>(c) - sx;
              const double d = std::max(1.0, std::sqrt(dy * dy + dx * dx));
              acc += 1.0 / d;
            }
            map.at(r, c) = static_cast<float>(1.0 / acc);
          }
      });
  return map;
}

grid::Grid2D pdn_density_map(const Netlist& nl) {
  grid::Grid2D map = empty_map(nl);
  // Rasterize wire segments (vias excluded: same pixel endpoints still
  // count once via walk_segment's zero-length branch, matching "stripes
  // passing through the region").
  for (const auto& e : nl.elements()) {
    if (e.type != ElementType::Resistor) continue;
    walk_segment(nl, e.node1, e.node2, map.rows(), map.cols(),
                 [&](std::size_t r, std::size_t c, float) {
                   map.at(r, c) += 1.0f;
                 });
  }
  // Local mean over a window approximates "mean PDN spacing per region".
  const float sigma = std::max(2.0f, static_cast<float>(
      std::min(map.rows(), map.cols())) / 32.0f);
  return map.blurred(sigma);
}

grid::Grid2D voltage_source_map(const Netlist& nl) {
  grid::Grid2D map = empty_map(nl);
  for (const auto& e : nl.elements()) {
    if (e.type != ElementType::VoltageSource) continue;
    const NodeId pin = e.node1 != spice::kGroundNode ? e.node1 : e.node2;
    const Pixel p = node_pixel(nl, pin, map.rows(), map.cols());
    if (p.valid)
      map.at(p.r, p.c) = std::max(map.at(p.r, p.c), static_cast<float>(e.value));
  }
  return map;
}

grid::Grid2D current_source_map(const Netlist& nl) {
  grid::Grid2D map = empty_map(nl);
  for (const auto& e : nl.elements()) {
    if (e.type != ElementType::CurrentSource) continue;
    const NodeId tap = e.node1 != spice::kGroundNode ? e.node1 : e.node2;
    const Pixel p = node_pixel(nl, tap, map.rows(), map.cols());
    if (p.valid) map.at(p.r, p.c) += static_cast<float>(e.value);
  }
  return map;
}

grid::Grid2D resistance_map(const Netlist& nl) {
  grid::Grid2D map = empty_map(nl);
  for (const auto& e : nl.elements()) {
    if (e.type != ElementType::Resistor) continue;
    const float ohms = static_cast<float>(e.value);
    walk_segment(nl, e.node1, e.node2, map.rows(), map.cols(),
                 [&](std::size_t r, std::size_t c, float frac) {
                   map.at(r, c) += ohms * frac;
                 });
  }
  return map;
}

FeatureMaps compute_feature_maps(const Netlist& nl) {
  FeatureMaps f;
  f.current = current_map(nl);
  f.effective_distance = effective_distance_map(nl);
  f.pdn_density = pdn_density_map(nl);
  f.voltage_source = voltage_source_map(nl);
  f.current_source = current_source_map(nl);
  f.resistance = resistance_map(nl);
  return f;
}

}  // namespace lmmir::feat
