#include "features/maps.hpp"

#include <stdexcept>

#include "features/feature_context.hpp"

namespace lmmir::feat {

const char* channel_name(int channel) {
  switch (channel) {
    case kChannelCurrent: return "current";
    case kChannelEffectiveDistance: return "effective_distance";
    case kChannelPdnDensity: return "pdn_density";
    case kChannelVoltageSource: return "voltage_source";
    case kChannelCurrentSource: return "current_source";
    case kChannelResistance: return "resistance";
    default: throw std::out_of_range("feat::channel_name");
  }
}

const grid::Grid2D& FeatureMaps::channel(int i) const {
  switch (i) {
    case kChannelCurrent: return current;
    case kChannelEffectiveDistance: return effective_distance;
    case kChannelPdnDensity: return pdn_density;
    case kChannelVoltageSource: return voltage_source;
    case kChannelCurrentSource: return current_source;
    case kChannelResistance: return resistance;
    default: throw std::out_of_range("FeatureMaps::channel");
  }
}

grid::Grid2D& FeatureMaps::channel(int i) {
  return const_cast<grid::Grid2D&>(
      static_cast<const FeatureMaps&>(*this).channel(i));
}

namespace {
// Classifies ALL element groups even though one channel reads only one of
// them: a deliberate tradeoff keeping a single classification
// implementation (the dirty-compare in FeatureContext depends on its
// exact binning).  Callers extracting several channels should classify
// once and call rasterize_channel, or use a FeatureContext.
grid::Grid2D one_channel(const spice::Netlist& nl, int channel) {
  return rasterize_channel(classify_netlist(nl), channel);
}
}  // namespace

grid::Grid2D current_map(const spice::Netlist& nl) {
  return one_channel(nl, kChannelCurrent);
}

grid::Grid2D effective_distance_map(const spice::Netlist& nl) {
  return one_channel(nl, kChannelEffectiveDistance);
}

grid::Grid2D pdn_density_map(const spice::Netlist& nl) {
  return one_channel(nl, kChannelPdnDensity);
}

grid::Grid2D voltage_source_map(const spice::Netlist& nl) {
  return one_channel(nl, kChannelVoltageSource);
}

grid::Grid2D current_source_map(const spice::Netlist& nl) {
  return one_channel(nl, kChannelCurrentSource);
}

grid::Grid2D resistance_map(const spice::Netlist& nl) {
  return one_channel(nl, kChannelResistance);
}

FeatureMaps compute_feature_maps(const spice::Netlist& nl) {
  // A throwaway context: identical code path to warm extraction (the
  // cold == warm bitwise contract falls out of sharing it).
  FeatureContext ctx;
  return ctx.extract(nl);
}

}  // namespace lmmir::feat
