#pragma once
// ICCAD-2023 contest winner baselines (paper Table I / III).
//
// Both winners used image-only U-Nets with engineered extra features and a
// global attention mechanism, but no netlist modality:
//  - Contest1st: larger U-Net, attention-gated skips + bottleneck
//    self-attention. Best image-only accuracy, highest TAT (14.8 s avg in
//    the paper vs 3.0 s for the others).
//  - Contest2nd: lighter U-Net with bottleneck self-attention only; the
//    team compensated with heavy data augmentation (~5400 generated
//    cases), which the training harness reproduces via a higher
//    over-sampling factor.
#include <memory>
#include <vector>

#include "features/maps.hpp"
#include "models/blocks.hpp"
#include "models/common.hpp"

namespace lmmir::models {

struct ContestConfig {
  int base_channels = 8;
  int levels = 3;
  int token_dim = 32;
  int heads = 2;
  std::uint64_t seed = 0xc0de57;
};

/// Shared implementation: a U-Net with extra features, optional gates and
/// optional bottleneck self-attention.
class ContestUNet : public IrModel {
 public:
  ContestUNet(std::string name, const ContestConfig& config, bool gates,
              bool bottleneck_attention);

  Tensor forward(const Tensor& circuit, const Tensor& tokens) override;
  std::string name() const override { return name_; }
  Capabilities capabilities() const override;
  int in_channels() const override { return feat::kChannelCount; }

 private:
  std::string name_;
  ContestConfig config_;
  bool bottleneck_attention_;
  util::Rng rng_;
  std::vector<std::unique_ptr<EncoderStage>> enc_;
  ConvBnRelu bottom_;
  std::unique_ptr<nn::Conv2d> to_tokens_, from_tokens_;
  std::unique_ptr<nn::TransformerBlock> attn_;
  std::vector<std::unique_ptr<DecoderStage>> dec_;
  nn::Conv2d head_;
};

/// Factory helpers with the paper-matched configurations.
std::unique_ptr<ContestUNet> make_contest_first(std::uint64_t seed = 0xc0de57);
std::unique_ptr<ContestUNet> make_contest_second(std::uint64_t seed = 0xc0de58);

}  // namespace lmmir::models
