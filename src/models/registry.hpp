#pragma once
// Model registry: every predictor the paper compares, constructible by
// name, with its Table-I capability row and its training-regime hints
// (the 2nd-place team's extra augmentation is a data-side property, so it
// lives here rather than in the architecture).
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "models/common.hpp"

namespace lmmir::models {

struct ModelSpec {
  std::string name;
  std::function<std::unique_ptr<IrModel>(std::uint64_t seed)> make;
  /// Over-sampling multiplier relative to the standard regime (the paper
  /// notes the 2nd-place team generated ~5400 cases vs the contest 3310).
  float augmentation_factor = 1.0f;
};

/// All five Table-III entrants, in the paper's column order:
/// 1st-Place, 2nd-Place, IREDGe, IRPnet, LMM-IR.
const std::vector<ModelSpec>& model_registry();

/// Construct by registry name; throws std::invalid_argument for unknown
/// names.
std::unique_ptr<IrModel> make_model(const std::string& name,
                                    std::uint64_t seed = 0);

}  // namespace lmmir::models
