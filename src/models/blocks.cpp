#include "models/blocks.hpp"

#include <algorithm>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace lmmir::models {

using namespace tensor;

int unet_level_channels(int base, int level) {
  return std::min(base * (1 << level), base * 8);
}

ConvBnRelu::ConvBnRelu(int in_channels, int out_channels, int kernel,
                       util::Rng& rng, int stride, int padding)
    : conv_(in_channels, out_channels, kernel, rng, stride, padding),
      bn_(out_channels) {
  register_module("conv", &conv_);
  register_module("bn", &bn_);
}

Tensor ConvBnRelu::forward(const Tensor& x) {
  return relu(bn_.forward(conv_.forward(x)));
}

EncoderStage::EncoderStage(int in_channels, int out_channels, util::Rng& rng)
    : conv1_(in_channels, out_channels, 3, rng),
      conv2_(out_channels, out_channels, 3, rng) {
  register_module("conv1", &conv1_);
  register_module("conv2", &conv2_);
}

EncoderStage::Out EncoderStage::forward(const Tensor& x) {
  Out out;
  out.skip = conv2_.forward(conv1_.forward(x));
  out.pooled = maxpool2d(out.skip, 2, 2);
  return out;
}

DecoderStage::DecoderStage(int in_channels, int skip_channels,
                           bool attention_gate, util::Rng& rng)
    : up_(in_channels, skip_channels, 2, rng, /*stride=*/2),
      conv_(skip_channels * 2, skip_channels, 3, rng) {
  register_module("up", &up_);
  if (attention_gate) {
    gate_ = std::make_unique<nn::AttentionGate>(
        skip_channels, skip_channels, std::max(1, skip_channels / 2), rng);
    register_module("gate", gate_.get());
  }
  register_module("conv", &conv_);
}

Tensor DecoderStage::forward(const Tensor& x, const Tensor& skip) {
  const Tensor up = up_.forward(x);
  const Tensor gated = gate_ ? gate_->forward(skip, up) : skip;
  return conv_.forward(concat(up, gated, 1));
}

Tensor tokens_from_map(const Tensor& x) {
  if (x.ndim() != 4) throw std::invalid_argument("tokens_from_map: NCHW");
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  return transpose_last2(reshape(x, {n, c, h * w}));
}

Tensor map_from_tokens(const Tensor& tokens, int h, int w) {
  if (tokens.ndim() != 3)
    throw std::invalid_argument("map_from_tokens: [N,T,D]");
  const int n = tokens.dim(0), t = tokens.dim(1), d = tokens.dim(2);
  if (t != h * w)
    throw std::invalid_argument("map_from_tokens: token count != h*w");
  return reshape(transpose_last2(tokens), {n, d, h, w});
}

Tensor mean_tokens(const Tensor& tokens) {
  if (tokens.ndim() != 3)
    throw std::invalid_argument("mean_tokens: [N,T,D]");
  const int n = tokens.dim(0), t = tokens.dim(1), d = tokens.dim(2);
  // [N,T,D] -> [N,D,T] -> [N*D, T] x [T,1] -> [N,D]
  const Tensor flat = reshape(transpose_last2(tokens), {n * d, t});
  const Tensor avg = Tensor::full({t, 1}, 1.0f / static_cast<float>(t));
  return reshape(matmul(flat, avg), {n, d});
}

Tensor add_broadcast_tokens(const Tensor& tokens, const Tensor& v) {
  if (tokens.ndim() != 3 || v.ndim() != 2)
    throw std::invalid_argument("add_broadcast_tokens: [N,T,D] + [N,D]");
  const int n = tokens.dim(0), t = tokens.dim(1), d = tokens.dim(2);
  if (v.dim(0) != n || v.dim(1) != d)
    throw std::invalid_argument("add_broadcast_tokens: vector shape mismatch");
  // ones[N,T,1] x v[N,1,D] broadcasts v over the token axis.
  const Tensor ones = Tensor::full({n, t, 1}, 1.0f);
  return add(tokens, bmm(ones, reshape(v, {n, 1, d})));
}

}  // namespace lmmir::models
