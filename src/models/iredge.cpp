#include "models/iredge.hpp"

#include <algorithm>

namespace lmmir::models {

namespace {
int level_channels(int base, int level) {
  return unet_level_channels(base, level);
}
}  // namespace

IREDGe::IREDGe(const IredgeConfig& config)
    : config_(config),
      rng_(config.seed),
      bottom_(level_channels(config.base_channels, config.levels - 1),
              level_channels(config.base_channels, config.levels), 3, rng_),
      head_(config.base_channels, 1, 1, rng_) {
  int cin = in_channels();
  std::vector<int> skips;
  for (int l = 0; l < config.levels; ++l) {
    const int cout = level_channels(config.base_channels, l);
    enc_.push_back(std::make_unique<EncoderStage>(cin, cout, rng_));
    register_module("enc" + std::to_string(l), enc_.back().get());
    skips.push_back(cout);
    cin = cout;
  }
  register_module("bottom", &bottom_);
  int dec_in = level_channels(config.base_channels, config.levels);
  for (int l = config.levels - 1; l >= 0; --l) {
    dec_.push_back(std::make_unique<DecoderStage>(
        dec_in, skips[static_cast<std::size_t>(l)], /*attention_gate=*/false,
        rng_));
    register_module("dec" + std::to_string(l), dec_.back().get());
    dec_in = skips[static_cast<std::size_t>(l)];
  }
  register_module("head", &head_);
}

Tensor IREDGe::forward(const Tensor& circuit, const Tensor& /*tokens*/) {
  Tensor h = circuit;
  std::vector<Tensor> skips;
  for (auto& stage : enc_) {
    auto s = stage->forward(h);
    skips.push_back(s.skip);
    h = s.pooled;
  }
  h = bottom_.forward(h);
  for (std::size_t i = 0; i < dec_.size(); ++i)
    h = dec_[i]->forward(h, skips[dec_.size() - 1 - i]);
  return head_.forward(h);
}

}  // namespace lmmir::models
