#pragma once
// LMM-IR (paper Sec. III, Fig. 2): dual-stream multimodal predictor.
//
//   circuit image --> CircuitEncoder (U-Net encoder, skips kept)
//                         |  bottleneck tokens  <- optional self-attention
//   netlist cloud --> LNT (embed + transformer blocks over super-points)
//                         |
//        CrossAttention fusion (circuit queries attend to netlist tokens)
//                         |
//   Decoder: 4x [deconv up, attention-gated skip concat, conv], 1x1 head.
//
// The ablation switches in LmmirConfig reproduce Fig. 4's configurations
// (EC / W-Att / W-LNT / United); W-Aug is a training-side switch.
#include <memory>
#include <vector>

#include "features/maps.hpp"
#include "models/blocks.hpp"
#include "models/common.hpp"
#include "pointcloud/pool.hpp"

namespace lmmir::models {

struct LmmirConfig {
  int in_channels = feat::kChannelCount;  // the paper's six circuit maps
  int base_channels = 12;  // encoder width at full resolution
  int levels = 3;          // encoder downsampling levels (paper: 4)
  int token_dim = 32;      // shared embedding width D
  int lnt_blocks = 2;      // transformer depth N
  int heads = 2;
  int mlp_ratio = 2;
  bool use_lnt = true;        // Fig.4 "W-LNT" sets this false
  bool use_attention = true;  // Fig.4 "W-Att": no self-attn / gates / cross-attn
  std::uint64_t seed = 0x1a2b3c;

  /// Fig. 4 "EC": plain encoder-decoder (both streams of extras off).
  static LmmirConfig encoder_decoder_only() {
    LmmirConfig c;
    c.use_lnt = false;
    c.use_attention = false;
    return c;
  }
};

class CircuitEncoder : public nn::Module {
 public:
  CircuitEncoder(int in_channels, int base_channels, int levels,
                 util::Rng& rng);

  struct Out {
    Tensor bottleneck;
    std::vector<Tensor> skips;  // [0] = full resolution ... [levels-1]
  };
  Out forward(const Tensor& x);

  int bottleneck_channels() const { return bottleneck_channels_; }
  const std::vector<int>& skip_channels() const { return skip_channels_; }

 private:
  nn::Conv2d stem_;
  nn::BatchNorm2d stem_bn_;
  std::vector<std::unique_ptr<EncoderStage>> stages_;
  ConvBnRelu bottom_;
  int bottleneck_channels_ = 0;
  std::vector<int> skip_channels_;

  static int level_channels(int base, int level);
};

/// Large-scale Netlist Transformer: embeds pooled super-point tokens and
/// runs self-attention transformer blocks over them (paper Sec. III-C).
class LNT : public nn::Module {
 public:
  LNT(int token_dim, int blocks, int heads, int mlp_ratio, util::Rng& rng);

  /// raw tokens [N, T, pc::kTokenFeatureDim] -> embedded [N, T, token_dim].
  Tensor forward(const Tensor& raw_tokens);

 private:
  nn::Linear embed_;
  nn::LayerNorm embed_norm_;
  std::vector<std::unique_ptr<nn::TransformerBlock>> blocks_;
};

/// Cross-attention fusion (paper Sec. III-D): circuit tokens query the
/// netlist tokens; residual + LayerNorm + Linear/ReLU projection.
class FusionModule : public nn::Module {
 public:
  FusionModule(int dim, int heads, util::Rng& rng);
  Tensor forward(const Tensor& circuit_tokens, const Tensor& netlist_tokens);

 private:
  nn::MultiHeadAttention cross_;
  nn::LayerNorm norm_;
  nn::Linear proj_;
};

class LMMIR : public IrModel {
 public:
  explicit LMMIR(const LmmirConfig& config);

  Tensor forward(const Tensor& circuit, const Tensor& tokens) override;
  std::string name() const override { return "LMM-IR"; }
  Capabilities capabilities() const override;
  int in_channels() const override { return config_.in_channels; }

  const LmmirConfig& config() const { return config_; }

 private:
  LmmirConfig config_;
  util::Rng rng_;
  CircuitEncoder encoder_;
  nn::Conv2d to_tokens_;    // 1x1: bottleneck channels -> token_dim
  nn::Conv2d from_tokens_;  // 1x1: token_dim -> bottleneck channels
  std::unique_ptr<nn::TransformerBlock> self_attn_;  // when use_attention
  std::unique_ptr<LNT> lnt_;                         // when use_lnt
  std::unique_ptr<FusionModule> fusion_;             // when use_lnt
  std::unique_ptr<nn::Linear> context_proj_;  // mean-context fallback fusion
  std::vector<std::unique_ptr<DecoderStage>> decoder_;
  nn::Conv2d head_;
};

}  // namespace lmmir::models
