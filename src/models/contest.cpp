#include "models/contest.hpp"

#include <algorithm>

#include "tensor/ops.hpp"

namespace lmmir::models {

using namespace tensor;

namespace {
int level_channels(int base, int level) {
  return unet_level_channels(base, level);
}
}  // namespace

ContestUNet::ContestUNet(std::string name, const ContestConfig& config,
                         bool gates, bool bottleneck_attention)
    : name_(std::move(name)),
      config_(config),
      bottleneck_attention_(bottleneck_attention),
      rng_(config.seed),
      bottom_(level_channels(config.base_channels, config.levels - 1),
              level_channels(config.base_channels, config.levels), 3, rng_),
      head_(config.base_channels, 1, 1, rng_) {
  int cin = in_channels();
  std::vector<int> skips;
  for (int l = 0; l < config.levels; ++l) {
    const int cout = level_channels(config.base_channels, l);
    enc_.push_back(std::make_unique<EncoderStage>(cin, cout, rng_));
    register_module("enc" + std::to_string(l), enc_.back().get());
    skips.push_back(cout);
    cin = cout;
  }
  register_module("bottom", &bottom_);
  const int cb = level_channels(config.base_channels, config.levels);
  if (bottleneck_attention_) {
    to_tokens_ = std::make_unique<nn::Conv2d>(cb, config.token_dim, 1, rng_);
    from_tokens_ = std::make_unique<nn::Conv2d>(config.token_dim, cb, 1, rng_);
    attn_ = std::make_unique<nn::TransformerBlock>(config.token_dim,
                                                   config.heads, 2, rng_);
    register_module("to_tokens", to_tokens_.get());
    register_module("from_tokens", from_tokens_.get());
    register_module("attn", attn_.get());
  }
  int dec_in = cb;
  for (int l = config.levels - 1; l >= 0; --l) {
    dec_.push_back(std::make_unique<DecoderStage>(
        dec_in, skips[static_cast<std::size_t>(l)], gates, rng_));
    register_module("dec" + std::to_string(l), dec_.back().get());
    dec_in = skips[static_cast<std::size_t>(l)];
  }
  register_module("head", &head_);
}

Capabilities ContestUNet::capabilities() const {
  Capabilities c;
  c.extra_features = true;
  c.global_attention = true;
  return c;  // no netlist, no multimodal fusion
}

Tensor ContestUNet::forward(const Tensor& circuit, const Tensor& /*tokens*/) {
  Tensor h = circuit;
  std::vector<Tensor> skips;
  for (auto& stage : enc_) {
    auto s = stage->forward(h);
    skips.push_back(s.skip);
    h = s.pooled;
  }
  h = bottom_.forward(h);
  if (bottleneck_attention_) {
    const int th = h.dim(2), tw = h.dim(3);
    Tensor t = tokens_from_map(to_tokens_->forward(h));
    t = attn_->forward(t);
    h = relu(add(h, from_tokens_->forward(map_from_tokens(t, th, tw))));
  }
  for (std::size_t i = 0; i < dec_.size(); ++i)
    h = dec_[i]->forward(h, skips[dec_.size() - 1 - i]);
  return head_.forward(h);
}

std::unique_ptr<ContestUNet> make_contest_first(std::uint64_t seed) {
  ContestConfig cfg;
  cfg.base_channels = 12;  // the heavyweight entry
  cfg.levels = 4;          // deepest encoder of the field -> highest TAT
  cfg.seed = seed;
  return std::make_unique<ContestUNet>("1st-Place", cfg, /*gates=*/true,
                                       /*bottleneck_attention=*/true);
}

std::unique_ptr<ContestUNet> make_contest_second(std::uint64_t seed) {
  ContestConfig cfg;
  cfg.base_channels = 6;  // the fast entry
  cfg.levels = 2;
  cfg.seed = seed;
  return std::make_unique<ContestUNet>("2nd-Place", cfg, /*gates=*/false,
                                       /*bottleneck_attention=*/true);
}

}  // namespace lmmir::models
