#include "models/irpnet.hpp"

#include "tensor/ops.hpp"

namespace lmmir::models {

using namespace tensor;

IRPnet::ShapeAdaptiveBlock::ShapeAdaptiveBlock(int cin, int cout, int k,
                                               util::Rng& rng)
    : horiz_(cin, cout, 1, k, rng, /*stride=*/1, /*pad_h=*/0, /*pad_w=*/k / 2),
      vert_(cin, cout, k, 1, rng, /*stride=*/1, /*pad_h=*/k / 2, /*pad_w=*/0),
      square_(cin, cout, 3, rng, /*stride=*/1, /*padding=*/1),
      bn_(cout) {
  register_module("horiz", &horiz_);
  register_module("vert", &vert_);
  register_module("square", &square_);
  register_module("bn", &bn_);
}

Tensor IRPnet::ShapeAdaptiveBlock::forward(const Tensor& x) {
  const Tensor sum = add(add(horiz_.forward(x), vert_.forward(x)),
                         square_.forward(x));
  return relu(bn_.forward(sum));
}

IRPnet::IRPnet(const IrpnetConfig& config)
    : config_(config),
      rng_(config.seed),
      head_(config.channels, 1, 1, rng_) {
  int cin = in_channels();
  for (int b = 0; b < config.blocks; ++b) {
    blocks_.push_back(std::make_unique<ShapeAdaptiveBlock>(
        cin, config.channels, config.k, rng_));
    register_module("block" + std::to_string(b), blocks_.back().get());
    cin = config.channels;
  }
  register_module("head", &head_);
}

Tensor IRPnet::forward(const Tensor& circuit, const Tensor& /*tokens*/) {
  Tensor h = circuit;
  for (auto& b : blocks_) h = b->forward(h);
  return head_.forward(h);
}

}  // namespace lmmir::models
