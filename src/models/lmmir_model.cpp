#include "models/lmmir_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace lmmir::models {

using namespace tensor;

int CircuitEncoder::level_channels(int base, int level) {
  return unet_level_channels(base, level);
}

CircuitEncoder::CircuitEncoder(int in_channels, int base_channels, int levels,
                               util::Rng& rng)
    : stem_(in_channels, base_channels, 7, rng, /*stride=*/1, /*padding=*/3),
      stem_bn_(base_channels),
      bottom_(level_channels(base_channels, levels - 1),
              level_channels(base_channels, levels), 3, rng) {
  register_module("stem", &stem_);
  register_module("stem_bn", &stem_bn_);
  for (int l = 0; l < levels; ++l) {
    const int cin = l == 0 ? base_channels : level_channels(base_channels, l - 1);
    const int cout = level_channels(base_channels, l);
    stages_.push_back(std::make_unique<EncoderStage>(cin, cout, rng));
    register_module("stage" + std::to_string(l), stages_.back().get());
    skip_channels_.push_back(cout);
  }
  register_module("bottom", &bottom_);
  bottleneck_channels_ = level_channels(base_channels, levels);
}

CircuitEncoder::Out CircuitEncoder::forward(const Tensor& x) {
  Out out;
  Tensor h = relu(stem_bn_.forward(stem_.forward(x)));
  for (auto& stage : stages_) {
    auto s = stage->forward(h);
    out.skips.push_back(s.skip);
    h = s.pooled;
  }
  out.bottleneck = bottom_.forward(h);
  return out;
}

LNT::LNT(int token_dim, int blocks, int heads, int mlp_ratio, util::Rng& rng)
    : embed_(pc::kTokenFeatureDim, token_dim, rng), embed_norm_(token_dim) {
  register_module("embed", &embed_);
  register_module("embed_norm", &embed_norm_);
  for (int b = 0; b < blocks; ++b) {
    blocks_.push_back(
        std::make_unique<nn::TransformerBlock>(token_dim, heads, mlp_ratio, rng));
    register_module("block" + std::to_string(b), blocks_.back().get());
  }
}

Tensor LNT::forward(const Tensor& raw_tokens) {
  if (raw_tokens.ndim() != 3 ||
      raw_tokens.dim(2) != pc::kTokenFeatureDim)
    throw std::invalid_argument(
        "LNT: expects [N,T," + std::to_string(pc::kTokenFeatureDim) + "]");
  Tensor t = embed_norm_.forward(relu(embed_.forward(raw_tokens)));
  for (auto& b : blocks_) t = b->forward(t);
  return t;
}

FusionModule::FusionModule(int dim, int heads, util::Rng& rng)
    : cross_(dim, heads, rng), norm_(dim), proj_(dim, dim, rng) {
  register_module("cross", &cross_);
  register_module("norm", &norm_);
  register_module("proj", &proj_);
}

Tensor FusionModule::forward(const Tensor& circuit_tokens,
                             const Tensor& netlist_tokens) {
  Tensor f = add(circuit_tokens, cross_.forward(circuit_tokens, netlist_tokens));
  f = norm_.forward(f);
  return relu(proj_.forward(f));
}

LMMIR::LMMIR(const LmmirConfig& config)
    : config_(config),
      rng_(config.seed),
      encoder_(config.in_channels, config.base_channels, config.levels, rng_),
      to_tokens_(encoder_.bottleneck_channels(), config.token_dim, 1, rng_),
      from_tokens_(config.token_dim, encoder_.bottleneck_channels(), 1, rng_),
      head_(config.base_channels, 1, 1, rng_) {
  register_module("encoder", &encoder_);
  register_module("to_tokens", &to_tokens_);
  register_module("from_tokens", &from_tokens_);
  if (config.use_attention) {
    self_attn_ = std::make_unique<nn::TransformerBlock>(
        config.token_dim, config.heads, config.mlp_ratio, rng_);
    register_module("self_attn", self_attn_.get());
  }
  if (config.use_lnt) {
    lnt_ = std::make_unique<LNT>(config.token_dim, config.lnt_blocks,
                                 config.heads, config.mlp_ratio, rng_);
    register_module("lnt", lnt_.get());
    if (config.use_attention) {
      fusion_ = std::make_unique<FusionModule>(config.token_dim, config.heads,
                                               rng_);
      register_module("fusion", fusion_.get());
    } else {
      // Attention-less fusion fallback: mean netlist context broadcast
      // over the circuit tokens (used by the W-Att ablation).
      context_proj_ = std::make_unique<nn::Linear>(config.token_dim,
                                                   config.token_dim, rng_);
      register_module("context_proj", context_proj_.get());
    }
  }
  // Decoder mirrors the encoder: one stage per level, gated when
  // use_attention is on.
  const auto& skips = encoder_.skip_channels();
  int cin = encoder_.bottleneck_channels();
  for (int l = config.levels - 1; l >= 0; --l) {
    decoder_.push_back(std::make_unique<DecoderStage>(
        cin, skips[static_cast<std::size_t>(l)], config.use_attention, rng_));
    register_module("dec" + std::to_string(l), decoder_.back().get());
    cin = skips[static_cast<std::size_t>(l)];
  }
}

Capabilities LMMIR::capabilities() const {
  Capabilities c;
  c.full_netlist = config_.use_lnt;
  c.multimodal_fusion = config_.use_lnt;
  c.extra_features = config_.in_channels > 3;
  c.global_attention = config_.use_attention;
  return c;
}

Tensor LMMIR::forward(const Tensor& circuit, const Tensor& tokens) {
  auto enc = encoder_.forward(circuit);
  const int h = enc.bottleneck.dim(2);
  const int w = enc.bottleneck.dim(3);

  // Bottleneck -> token space.
  Tensor circ_tokens = tokens_from_map(to_tokens_.forward(enc.bottleneck));
  if (self_attn_) circ_tokens = self_attn_->forward(circ_tokens);

  if (lnt_) {
    if (!tokens.defined())
      throw std::invalid_argument("LMMIR: netlist tokens required (use_lnt)");
    const Tensor netlist_tokens = lnt_->forward(tokens);
    if (fusion_) {
      circ_tokens = fusion_->forward(circ_tokens, netlist_tokens);
    } else {
      const Tensor context =
          context_proj_->forward(mean_tokens(netlist_tokens));
      circ_tokens = add_broadcast_tokens(circ_tokens, context);
    }
  }

  // Token space -> bottleneck map; residual keeps the encoder signal.
  Tensor fused = relu(add(
      enc.bottleneck,
      from_tokens_.forward(map_from_tokens(circ_tokens, h, w))));

  // Decoder with skip connections.
  Tensor y = fused;
  for (std::size_t i = 0; i < decoder_.size(); ++i) {
    const std::size_t skip_idx = decoder_.size() - 1 - i;
    y = decoder_[i]->forward(y, enc.skips[skip_idx]);
  }
  return head_.forward(y);
}

}  // namespace lmmir::models
