#pragma once
// IREDGe baseline [Chhabria et al., ASP-DAC 2021]: a plain convolutional
// encoder-decoder (U-Net) over the three contest feature maps.  No
// attention, no netlist modality, no extra features — the paper attributes
// its weak hidden-case F1 (0.13 avg) to exactly these limitations.
#include <memory>
#include <vector>

#include "models/blocks.hpp"
#include "models/common.hpp"

namespace lmmir::models {

struct IredgeConfig {
  int base_channels = 8;
  int levels = 3;
  std::uint64_t seed = 0x17edce;
};

class IREDGe : public IrModel {
 public:
  explicit IREDGe(const IredgeConfig& config = {});

  Tensor forward(const Tensor& circuit, const Tensor& tokens) override;
  std::string name() const override { return "IREDGe"; }
  Capabilities capabilities() const override { return {}; }  // all absent
  int in_channels() const override { return 3; }

 private:
  IredgeConfig config_;
  util::Rng rng_;
  std::vector<std::unique_ptr<EncoderStage>> enc_;
  ConvBnRelu bottom_;
  std::vector<std::unique_ptr<DecoderStage>> dec_;
  nn::Conv2d head_;
};

}  // namespace lmmir::models
