#include "models/registry.hpp"

#include <stdexcept>

#include "models/contest.hpp"
#include "models/iredge.hpp"
#include "models/irpnet.hpp"
#include "models/lmmir_model.hpp"

namespace lmmir::models {

const std::vector<ModelSpec>& model_registry() {
  static const std::vector<ModelSpec> registry = [] {
    std::vector<ModelSpec> r;
    r.push_back({"1st-Place",
                 [](std::uint64_t seed) -> std::unique_ptr<IrModel> {
                   return make_contest_first(seed ? seed : 0xc0de57);
                 },
                 1.0f});
    r.push_back({"2nd-Place",
                 [](std::uint64_t seed) -> std::unique_ptr<IrModel> {
                   return make_contest_second(seed ? seed : 0xc0de58);
                 },
                 1.6f});  // their ~5400-case augmented regime vs 3310
    r.push_back({"IREDGe",
                 [](std::uint64_t seed) -> std::unique_ptr<IrModel> {
                   IredgeConfig cfg;
                   if (seed) cfg.seed = seed;
                   return std::make_unique<IREDGe>(cfg);
                 },
                 1.0f});
    r.push_back({"IRPnet",
                 [](std::uint64_t seed) -> std::unique_ptr<IrModel> {
                   IrpnetConfig cfg;
                   if (seed) cfg.seed = seed;
                   return std::make_unique<IRPnet>(cfg);
                 },
                 1.0f});
    r.push_back({"LMM-IR",
                 [](std::uint64_t seed) -> std::unique_ptr<IrModel> {
                   LmmirConfig cfg;
                   if (seed) cfg.seed = seed;
                   return std::make_unique<LMMIR>(cfg);
                 },
                 1.0f});
    return r;
  }();
  return registry;
}

std::unique_ptr<IrModel> make_model(const std::string& name,
                                    std::uint64_t seed) {
  for (const auto& spec : model_registry())
    if (spec.name == name) return spec.make(seed);
  throw std::invalid_argument("make_model: unknown model '" + name + "'");
}

}  // namespace lmmir::models
