#pragma once
// Building blocks shared by the models: conv-BN-ReLU units, U-Net style
// encoder/decoder stages with optional attention gates, and the
// token-grid <-> feature-map adapters used around the fusion module.
#include <memory>
#include <vector>

#include "nn/attention.hpp"
#include "nn/layers.hpp"

namespace lmmir::models {

using nn::Tensor;

/// Channel width of U-Net level `level` with base width `base`
/// (doubling per level, capped at 8x) — shared by every encoder here.
int unet_level_channels(int base, int level);

/// Conv(k) -> BatchNorm -> ReLU.
class ConvBnRelu : public nn::Layer {
 public:
  ConvBnRelu(int in_channels, int out_channels, int kernel, util::Rng& rng,
             int stride = 1, int padding = 1);
  Tensor forward(const Tensor& x) override;

 private:
  nn::Conv2d conv_;
  nn::BatchNorm2d bn_;
};

/// One encoder level: two ConvBnRelu, exposing the pre-pool activation as
/// the skip connection, then 2x max-pool.
class EncoderStage : public nn::Module {
 public:
  EncoderStage(int in_channels, int out_channels, util::Rng& rng);

  struct Out {
    Tensor skip;    // pre-pool, full resolution of this level
    Tensor pooled;  // 2x downsampled
  };
  Out forward(const Tensor& x);

 private:
  ConvBnRelu conv1_, conv2_;
};

/// One decoder level: 2x transposed-conv upsample, (optionally attention-
/// gated) skip concat, then ConvBnRelu.
class DecoderStage : public nn::Module {
 public:
  DecoderStage(int in_channels, int skip_channels, bool attention_gate,
               util::Rng& rng);
  Tensor forward(const Tensor& x, const Tensor& skip);

 private:
  nn::ConvTranspose2d up_;
  std::unique_ptr<nn::AttentionGate> gate_;  // null when gating disabled
  ConvBnRelu conv_;
};

/// [N,C,h,w] -> [N, h*w, C] token view.
Tensor tokens_from_map(const Tensor& x);
/// [N, h*w, C] -> [N,C,h,w].
Tensor map_from_tokens(const Tensor& tokens, int h, int w);
/// Mean over the token axis: [N,T,D] -> [N,D].
Tensor mean_tokens(const Tensor& tokens);
/// Broadcast a per-sample vector over all tokens: [N,T,D] + [N,D].
Tensor add_broadcast_tokens(const Tensor& tokens, const Tensor& v);

}  // namespace lmmir::models
