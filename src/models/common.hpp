#pragma once
// Shared model interface.  Every predictor (LMM-IR and the four baselines)
// maps a circuit-feature image (and optionally netlist tokens) to an
// IR-drop map, so benchmarks and the trainer treat them uniformly.
#include <string>

#include "nn/module.hpp"
#include "tensor/plan.hpp"

namespace lmmir::models {

using nn::Tensor;

/// The capability axes of the paper's Table I.
struct Capabilities {
  bool full_netlist = false;       // consumes the raw netlist (point cloud)
  bool multimodal_fusion = false;  // fuses netlist + circuit modalities
  bool extra_features = false;     // uses channels beyond the contest three
  bool global_attention = false;   // any global attention mechanism
};

class IrModel : public nn::Module {
 public:
  /// circuit: [N, in_channels, S, S]; tokens: [N, T, pc::kTokenFeatureDim]
  /// (pass an undefined tensor for single-modality models).
  /// Returns the predicted IR-drop map [N, 1, S, S].
  virtual Tensor forward(const Tensor& circuit, const Tensor& tokens) = 0;

  /// Inference entry point: forward under NoGradGuard, so no tape is
  /// recorded and — when the calling thread has a tensor::ArenaScope
  /// installed — every intermediate recycles through the arena instead
  /// of the heap.  Routed through the model's PlanRuntime: when
  /// LMMIR_INFER_PLAN is on, the first call per input shape records an
  /// ahead-of-time InferencePlan and later calls replay it (bitwise
  /// identical, zero tensor heap allocations — see docs/PLAN.md); when
  /// off, every call runs the eager forward.  Used by trainer
  /// evaluation; the serving workers route through their server-owned
  /// PlanRuntime inline in run_batch (they scope batch assembly too).
  /// Training code calls forward() directly.
  Tensor predict(const Tensor& circuit, const Tensor& tokens) {
    tensor::NoGradGuard no_grad;
    return plan_runtime_.run(circuit, tokens,
                             [this](const Tensor& c, const Tensor& t) {
                               return forward(c, t);
                             });
  }

  /// The per-model plan cache behind predict().  Exposed so tests and
  /// tools can toggle it (set_enabled) and inspect recording outcomes
  /// (stats, plan_for).  Module is non-copyable, so per-instance state
  /// here is safe.
  tensor::plan::PlanRuntime& plan_runtime() { return plan_runtime_; }

  virtual std::string name() const = 0;
  virtual Capabilities capabilities() const = 0;
  /// How many circuit channels the model consumes (3 = contest features
  /// only, feat::kChannelCount = with the paper's extra maps). The data
  /// pipeline slices the canonical channel stack down to this.
  virtual int in_channels() const = 0;

 private:
  tensor::plan::PlanRuntime plan_runtime_;
};

}  // namespace lmmir::models
