#pragma once
// IRPnet baseline [Meng et al., DATE 2024]: a physics-constrained CNN with
// shape-adaptive kernels.  Each block runs three parallel branches — a
// horizontal 1xk, a vertical kx1 (matching PDN stripe geometry) and a
// square kxk — whose sum feeds BN+ReLU.  The network stays at full
// resolution (drop is driven by local current in its physics prior), which
// is exactly why it fails to generalize to hidden cases whose global bump
// topology differs (paper: 0.03 avg F1).
#include <memory>
#include <vector>

#include "models/blocks.hpp"
#include "models/common.hpp"

namespace lmmir::models {

struct IrpnetConfig {
  int channels = 8;
  int blocks = 3;
  int k = 5;  // shape-adaptive kernel extent
  std::uint64_t seed = 0x14b9e7;
};

class IRPnet : public IrModel {
 public:
  explicit IRPnet(const IrpnetConfig& config = {});

  Tensor forward(const Tensor& circuit, const Tensor& tokens) override;
  std::string name() const override { return "IRPnet"; }
  Capabilities capabilities() const override { return {}; }
  /// Physics-constrained: consumes the current map only.
  int in_channels() const override { return 1; }

 private:
  /// One shape-adaptive block: 1xk + kx1 + 3x3 branches, summed.
  class ShapeAdaptiveBlock : public nn::Module {
   public:
    ShapeAdaptiveBlock(int cin, int cout, int k, util::Rng& rng);
    Tensor forward(const Tensor& x);

   private:
    nn::Conv2d horiz_, vert_, square_;
    nn::BatchNorm2d bn_;
  };

  IrpnetConfig config_;
  util::Rng rng_;
  std::vector<std::unique_ptr<ShapeAdaptiveBlock>> blocks_;
  nn::Conv2d head_;
};

}  // namespace lmmir::models
