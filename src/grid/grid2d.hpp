#pragma once
// Dense 2-D float field.  Every circuit-modality feature map (current map,
// effective-distance map, PDN density, …) and every IR-drop map is a Grid2D.
// The coordinate convention is (row, col) = (y, x); row 0 is the chip's
// bottom edge (y = 0 µm) so grid indices match layout coordinates directly.
#include <cstddef>
#include <vector>

#include "util/csv.hpp"

namespace lmmir::grid {

class Grid2D {
 public:
  Grid2D() = default;
  Grid2D(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Grid2D from_csv(const util::CsvMatrix& m);
  util::CsvMatrix to_csv() const;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  float& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }

  /// Clamped accessor: out-of-range indices read the nearest edge cell.
  float at_clamped(long r, long c) const;

  const std::vector<float>& data() const { return data_; }
  std::vector<float>& data() { return data_; }

  void fill(float v);

  float min() const;
  float max() const;
  float sum() const;
  float mean() const;

  /// Add another grid of identical shape (element-wise).
  void accumulate(const Grid2D& other);
  /// Multiply every cell by s.
  void scale(float s);

  /// Bilinear resample to (new_rows, new_cols).
  Grid2D resized_bilinear(std::size_t new_rows, std::size_t new_cols) const;

  /// Zero-pad at the bottom/right up to (new_rows, new_cols); the grid must
  /// already fit. Mirrors the paper's pad-when-smaller rule (Sec. III-A).
  Grid2D padded_to(std::size_t new_rows, std::size_t new_cols,
                   float pad_value = 0.0f) const;

  /// Top-left crop back to (new_rows, new_cols); inverse of padded_to.
  Grid2D cropped_to(std::size_t new_rows, std::size_t new_cols) const;

  /// Min-max normalize into [0,1]; constant grids become all-zero.
  Grid2D normalized_minmax() const;

  /// Separable Gaussian blur with the given sigma (in cells).
  Grid2D blurred(float sigma) const;

  /// Average-pool by an integer factor (trailing partial cells averaged).
  Grid2D downsampled_avg(std::size_t factor) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// Mean absolute difference between two same-shape grids.
float mean_abs_diff(const Grid2D& a, const Grid2D& b);

}  // namespace lmmir::grid
