#include "grid/grid2d.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace lmmir::grid {

Grid2D Grid2D::from_csv(const util::CsvMatrix& m) {
  Grid2D g(m.rows, m.cols);
  g.data_ = m.values;
  return g;
}

util::CsvMatrix Grid2D::to_csv() const {
  util::CsvMatrix m;
  m.rows = rows_;
  m.cols = cols_;
  m.values = data_;
  return m;
}

float Grid2D::at_clamped(long r, long c) const {
  r = std::clamp<long>(r, 0, static_cast<long>(rows_) - 1);
  c = std::clamp<long>(c, 0, static_cast<long>(cols_) - 1);
  return data_[static_cast<std::size_t>(r) * cols_ + static_cast<std::size_t>(c)];
}

void Grid2D::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

float Grid2D::min() const {
  return data_.empty() ? 0.0f : *std::min_element(data_.begin(), data_.end());
}
float Grid2D::max() const {
  return data_.empty() ? 0.0f : *std::max_element(data_.begin(), data_.end());
}
float Grid2D::sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0f);
}
float Grid2D::mean() const {
  return data_.empty() ? 0.0f : sum() / static_cast<float>(data_.size());
}

void Grid2D::accumulate(const Grid2D& other) {
  if (other.rows_ != rows_ || other.cols_ != cols_)
    throw std::invalid_argument("Grid2D::accumulate: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Grid2D::scale(float s) {
  for (auto& v : data_) v *= s;
}

Grid2D Grid2D::resized_bilinear(std::size_t new_rows,
                                std::size_t new_cols) const {
  if (new_rows == 0 || new_cols == 0)
    throw std::invalid_argument("Grid2D::resized_bilinear: zero target");
  if (empty()) throw std::invalid_argument("Grid2D::resized_bilinear: empty");
  Grid2D out(new_rows, new_cols);
  const float ry = new_rows > 1
                       ? static_cast<float>(rows_ - 1) / static_cast<float>(new_rows - 1)
                       : 0.0f;
  const float rx = new_cols > 1
                       ? static_cast<float>(cols_ - 1) / static_cast<float>(new_cols - 1)
                       : 0.0f;
  for (std::size_t r = 0; r < new_rows; ++r) {
    const float fy = static_cast<float>(r) * ry;
    const long y0 = static_cast<long>(fy);
    const float wy = fy - static_cast<float>(y0);
    for (std::size_t c = 0; c < new_cols; ++c) {
      const float fx = static_cast<float>(c) * rx;
      const long x0 = static_cast<long>(fx);
      const float wx = fx - static_cast<float>(x0);
      const float v00 = at_clamped(y0, x0);
      const float v01 = at_clamped(y0, x0 + 1);
      const float v10 = at_clamped(y0 + 1, x0);
      const float v11 = at_clamped(y0 + 1, x0 + 1);
      out.at(r, c) = v00 * (1 - wy) * (1 - wx) + v01 * (1 - wy) * wx +
                     v10 * wy * (1 - wx) + v11 * wy * wx;
    }
  }
  return out;
}

Grid2D Grid2D::padded_to(std::size_t new_rows, std::size_t new_cols,
                         float pad_value) const {
  if (new_rows < rows_ || new_cols < cols_)
    throw std::invalid_argument("Grid2D::padded_to: target smaller than grid");
  Grid2D out(new_rows, new_cols, pad_value);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out.at(r, c) = at(r, c);
  return out;
}

Grid2D Grid2D::cropped_to(std::size_t new_rows, std::size_t new_cols) const {
  if (new_rows > rows_ || new_cols > cols_)
    throw std::invalid_argument("Grid2D::cropped_to: target larger than grid");
  Grid2D out(new_rows, new_cols);
  for (std::size_t r = 0; r < new_rows; ++r)
    for (std::size_t c = 0; c < new_cols; ++c) out.at(r, c) = at(r, c);
  return out;
}

Grid2D Grid2D::normalized_minmax() const {
  Grid2D out = *this;
  const float lo = min();
  const float hi = max();
  const float span = hi - lo;
  if (span <= 0.0f) {
    out.fill(0.0f);
    return out;
  }
  for (auto& v : out.data_) v = (v - lo) / span;
  return out;
}

Grid2D Grid2D::blurred(float sigma) const {
  if (sigma <= 0.0f) return *this;
  const int radius = std::max(1, static_cast<int>(std::ceil(3.0f * sigma)));
  std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1));
  float ksum = 0.0f;
  for (int i = -radius; i <= radius; ++i) {
    const float w = std::exp(-0.5f * static_cast<float>(i * i) / (sigma * sigma));
    kernel[static_cast<std::size_t>(i + radius)] = w;
    ksum += w;
  }
  for (auto& w : kernel) w /= ksum;

  Grid2D tmp(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) {
      float acc = 0.0f;
      for (int k = -radius; k <= radius; ++k)
        acc += kernel[static_cast<std::size_t>(k + radius)] *
               at_clamped(static_cast<long>(r), static_cast<long>(c) + k);
      tmp.at(r, c) = acc;
    }
  Grid2D out(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) {
      float acc = 0.0f;
      for (int k = -radius; k <= radius; ++k)
        acc += kernel[static_cast<std::size_t>(k + radius)] *
               tmp.at_clamped(static_cast<long>(r) + k, static_cast<long>(c));
      out.at(r, c) = acc;
    }
  return out;
}

Grid2D Grid2D::downsampled_avg(std::size_t factor) const {
  if (factor == 0) throw std::invalid_argument("downsampled_avg: factor 0");
  const std::size_t nr = (rows_ + factor - 1) / factor;
  const std::size_t nc = (cols_ + factor - 1) / factor;
  Grid2D out(nr, nc);
  for (std::size_t r = 0; r < nr; ++r)
    for (std::size_t c = 0; c < nc; ++c) {
      float acc = 0.0f;
      std::size_t n = 0;
      for (std::size_t rr = r * factor; rr < std::min(rows_, (r + 1) * factor); ++rr)
        for (std::size_t cc = c * factor; cc < std::min(cols_, (c + 1) * factor); ++cc) {
          acc += at(rr, cc);
          ++n;
        }
      out.at(r, c) = n ? acc / static_cast<float>(n) : 0.0f;
    }
  return out;
}

float mean_abs_diff(const Grid2D& a, const Grid2D& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    throw std::invalid_argument("mean_abs_diff: shape mismatch");
  if (a.empty()) return 0.0f;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc += std::abs(static_cast<double>(a.data()[i]) - b.data()[i]);
  return static_cast<float>(acc / static_cast<double>(a.size()));
}

}  // namespace lmmir::grid
