#pragma once
// Evaluation metrics (paper Sec. II-D):
//  - F1 with the contest's hotspot definition: pixels whose true IR drop
//    exceeds 90 % of the true maximum are the positive class;
//  - MAE between predicted and true maps;
//  - TAT is a wall-clock measurement taken by the caller (Stopwatch).
#include <cstddef>

#include "grid/grid2d.hpp"

namespace lmmir::eval {

struct Metrics {
  double f1 = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double mae = 0.0;       // same units as the input grids
  double cc = 0.0;        // Pearson correlation (IREDGe-style secondary metric)
  double max_true = 0.0;  // max of the ground truth (threshold basis)
  std::size_t tp = 0, fp = 0, fn = 0, tn = 0;
};

/// Pearson correlation coefficient between two same-shape grids
/// (0 when either field is constant). Exposed for direct use.
double pearson_cc(const grid::Grid2D& a, const grid::Grid2D& b);

/// Compare a prediction against ground truth (same shape).  The hotspot
/// threshold is `threshold_fraction` x max(truth); both maps are binarized
/// against that same absolute threshold, per the contest scoring.
/// Throws std::invalid_argument on shape mismatch.
Metrics compute_metrics(const grid::Grid2D& prediction,
                        const grid::Grid2D& truth,
                        double threshold_fraction = 0.9);

}  // namespace lmmir::eval
