#include "eval/metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace lmmir::eval {

double pearson_cc(const grid::Grid2D& a, const grid::Grid2D& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    throw std::invalid_argument("pearson_cc: shape mismatch");
  const std::size_t n = a.size();
  if (n == 0) return 0.0;
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += a.data()[i];
    mb += b.data()[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = a.data()[i] - ma;
    const double db = b.data()[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

Metrics compute_metrics(const grid::Grid2D& prediction,
                        const grid::Grid2D& truth,
                        double threshold_fraction) {
  if (prediction.rows() != truth.rows() || prediction.cols() != truth.cols())
    throw std::invalid_argument("compute_metrics: shape mismatch");
  Metrics m;
  m.max_true = truth.max();
  const double thresh = threshold_fraction * m.max_true;

  double abs_err = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double p = prediction.data()[i];
    const double t = truth.data()[i];
    abs_err += std::abs(p - t);
    const bool pos_true = t > thresh;
    const bool pos_pred = p > thresh;
    if (pos_true && pos_pred) ++m.tp;
    else if (!pos_true && pos_pred) ++m.fp;
    else if (pos_true && !pos_pred) ++m.fn;
    else ++m.tn;
  }
  m.mae = truth.size() ? abs_err / static_cast<double>(truth.size()) : 0.0;
  m.precision = (m.tp + m.fp) ? static_cast<double>(m.tp) / (m.tp + m.fp) : 0.0;
  m.recall = (m.tp + m.fn) ? static_cast<double>(m.tp) / (m.tp + m.fn) : 0.0;
  m.f1 = (m.precision + m.recall) > 0
             ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
             : 0.0;
  m.cc = pearson_cc(prediction, truth);
  return m;
}

}  // namespace lmmir::eval
