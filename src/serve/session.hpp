#pragma once
// End-to-end raw-netlist serving with multi-tenant session caching.
//
// InferenceServer (server.hpp) answers requests that already carry model
// tensors; this layer accepts what a real client actually has — a raw
// SPICE netlist, or a small delta (value edits) against a netlist the
// server has already seen — and runs feature extraction server-side.
//
// The unit of reuse is a *session*: one tenant's stream of related
// revisions (a load sweep, an ECO loop).  Each session owns
//   * the current spice::Netlist (so deltas have a base to apply to),
//   * a feat::FeatureContext (so same-topology revisions reuse the four
//     topology-invariant channels — the ~25x warm extraction path),
//   * the featurized tensors of the latest revision, keyed on
//     spice::Netlist::revision() (a repeat of the same revision skips
//     featurization entirely).
//
// Sessions live in an LRU cache bounded two ways: entry count
// (max_sessions) and estimated resident bytes (max_resident_bytes).
// Eviction walks from the LRU tail, skipping entries whose per-session
// lock is held by an in-flight request (shared_ptr keeps an evicted
// entry alive for its current request; it is simply no longer cached).
//
// Threading / deadlock contract: submit() runs feature extraction INLINE
// on the calling thread and returns a SessionTicket whose get() blocks on
// the inner inference future.  Calling get() from a runtime::global_pool
// worker can deadlock (the batched forward fans out over the same pool;
// if every worker is blocked in get(), the forward's chunks never run).
// Submit from anywhere; get() from a non-pool thread.  Requests within
// one session serialize on the session lock (a session is one tenant's
// ordered revision stream); distinct sessions proceed concurrently.
//
// Deadlines: SessionRequest::deadline_us covers the WHOLE server-side
// path — parse + extraction + queue wait.  Whatever extraction spends is
// subtracted before the inner submit; an already-blown deadline rejects
// with RejectedError{DeadlineExceeded} without wasting a forward pass.
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/sample.hpp"
#include "features/feature_context.hpp"
#include "serve/server.hpp"
#include "spice/netlist.hpp"

namespace lmmir::serve {

struct SessionServeOptions {
  ServeOptions serve;          // inner dynamic-batching server
  data::SampleOptions sample;  // featurization (input_side, pc_grid, ...)
  /// LRU capacity: number of concurrently cached sessions.  0 = unbounded.
  std::size_t max_sessions = 64;
  /// Memory budget over the estimated resident bytes of all cached
  /// sessions (netlist + feature context + featurized tensors).  Enforced
  /// after each request by evicting from the LRU tail.  0 = unbounded.
  std::size_t max_resident_bytes = 256ull << 20;
};

/// One in-place element value rewrite (ECO / load-sweep delta): the
/// element at `element_index` in the session's current netlist gets
/// `value` (amps / ohms / volts depending on the element).
struct ValueEdit {
  std::size_t element_index = 0;
  double value = 0.0;
};

/// A raw-netlist (or delta) prediction request.
///
/// Exactly one of three shapes:
///   * full netlist:  netlist_text set (SPICE source); edits may refine it;
///   * delta:         netlist_text empty, edits non-empty — applied to the
///                    session's cached netlist (requires a prior request
///                    on this session; base_revision, when non-zero, must
///                    match the cached netlist's revision or the request
///                    is rejected as stale);
///   * replay:        both empty — re-predict the session's current
///                    revision (hits the full-reuse fast path).
struct SessionRequest {
  std::string session_id;     // tenant/session key (cache key)
  std::string id;             // caller tag, echoed in the result
  std::string netlist_text;   // raw SPICE source ("" = delta/replay)
  std::vector<ValueEdit> edits;
  /// Optimistic concurrency check for deltas: 0 = skip the check.
  std::uint64_t base_revision = 0;
  /// Whole-path deadline in microseconds from submit() entry (0 = none);
  /// see the header comment.
  std::uint64_t deadline_us = 0;
};

struct SessionResult {
  std::string id;
  std::string session_id;
  std::uint64_t revision = 0;   // netlist revision this prediction is for
  grid::Grid2D percent_map;     // percent-of-vdd at original resolution
  tensor::Tensor map;           // [1,S,S] model-side prediction
  bool session_hit = false;     // session already cached at submit
  bool revision_reuse = false;  // same revision: featurization skipped
  std::size_t channels_reused = 0;    // feature channels reused this request
  std::size_t channels_computed = 0;  // feature channels rasterized
  double extract_us = 0.0;  // parse + delta + featurize wall clock
  double queue_us = 0.0;    // inner server: submit -> batch start
  double compute_us = 0.0;  // inner server: batched forward
  double total_us = 0.0;    // submit() entry -> result assembled
};

/// Lifetime counters of the session cache (always-on per-server view;
/// the same quantities stream into obs:: lmmir_serve_session_* when
/// LMMIR_METRICS is enabled).
struct SessionCacheStats {
  std::size_t requests = 0;
  std::size_t hits = 0;             // session already cached
  std::size_t misses = 0;           // session created (or recreated)
  std::size_t revision_reuses = 0;  // featurization skipped entirely
  std::size_t evictions_lru = 0;    // evicted for max_sessions
  std::size_t evictions_memory = 0; // evicted for max_resident_bytes
  std::size_t channels_reused = 0;  // across all session FeatureContexts
  std::size_t channels_computed = 0;
  std::size_t sessions = 0;         // currently cached
  std::size_t resident_bytes = 0;   // current estimated footprint
  std::size_t peak_resident_bytes = 0;  // post-enforcement high-water mark
};

class SessionServer;

/// Handle to an in-flight session prediction.  get() blocks on the inner
/// inference future and assembles the SessionResult (call it at most
/// once, and never from a runtime::global_pool worker — see the header
/// comment).  Rethrows inference errors and RejectedError.
class SessionTicket {
 public:
  SessionTicket() = default;
  SessionTicket(SessionTicket&&) = default;
  SessionTicket& operator=(SessionTicket&&) = default;

  bool valid() const { return future_.valid(); }
  SessionResult get();

 private:
  friend class SessionServer;
  std::future<PredictResult> future_;
  SessionResult partial_;      // metadata filled at submit time
  feat::AdjustInfo adjust_;    // restore record for percent_map
  std::chrono::steady_clock::time_point start_{};
};

class SessionServer {
 public:
  SessionServer(std::shared_ptr<models::IrModel> model,
                SessionServeOptions options = {});
  ~SessionServer();
  SessionServer(const SessionServer&) = delete;
  SessionServer& operator=(const SessionServer&) = delete;

  /// Parse/apply + featurize inline, enqueue the inference, return a
  /// ticket.  Throws RejectedError (shutdown, inner queue full, deadline
  /// blown during extraction), std::invalid_argument (malformed request:
  /// delta with no cached base, stale base_revision, bad element index),
  /// and whatever the parser/extractor throw on bad netlist text.
  SessionTicket submit(SessionRequest request);

  /// Synchronous convenience wrapper: submit + get.  Same thread
  /// restrictions as SessionTicket::get().
  SessionResult predict(SessionRequest request);

  /// Stop accepting new requests, drain the inner server, join.
  /// Idempotent; also run by the destructor.  Submissions racing
  /// shutdown either complete or reject with RejectedError{Shutdown}.
  void shutdown();

  /// Drop a session from the cache (tenant disconnect).  In-flight
  /// requests on it finish normally.  Returns true when it was cached.
  bool drop_session(const std::string& session_id);

  SessionCacheStats cache_stats() const;
  ServerStats server_stats() const { return server_->stats(); }
  const SessionServeOptions& options() const { return opts_; }
  InferenceServer& server() { return *server_; }

 private:
  struct Entry {
    std::string session_id;
    std::mutex mu;  // serializes requests within the session
    spice::Netlist netlist;
    bool has_netlist = false;
    feat::FeatureContext context;
    // Featurized tensors of `featurized_revision` (shared-impl handles;
    // requests ride the same buffers — inference never mutates inputs).
    std::uint64_t featurized_revision = 0;
    bool has_featurized = false;
    tensor::Tensor circuit;
    tensor::Tensor tokens;
    feat::AdjustInfo adjust;
    // Snapshot of context.stats() already folded into the server-wide
    // channel counters (so eviction never loses telemetry).
    feat::FeatureContextStats reported;
    std::size_t bytes = 0;   // last accounted footprint
    bool resident = true;    // false once evicted (entry may outlive it)
  };
  using EntryPtr = std::shared_ptr<Entry>;

  std::size_t entry_bytes(const Entry& e) const;
  /// Under cache_mu_: find-or-create + move to MRU front.
  EntryPtr acquire_entry(const std::string& session_id, bool& hit);
  /// Under cache_mu_: evict from the LRU tail until both bounds hold.
  void enforce_budget_locked();
  void evict_locked(std::list<EntryPtr>::iterator it, bool memory);

  std::shared_ptr<models::IrModel> model_;
  SessionServeOptions opts_;
  std::unique_ptr<InferenceServer> server_;
  std::atomic<bool> stopping_{false};

  mutable std::mutex cache_mu_;
  std::list<EntryPtr> lru_;  // MRU at front
  std::unordered_map<std::string, std::list<EntryPtr>::iterator> index_;
  std::size_t resident_bytes_ = 0;
  std::size_t peak_resident_bytes_ = 0;

  std::atomic<std::size_t> requests_{0};
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> revision_reuses_{0};
  std::atomic<std::size_t> evictions_lru_{0};
  std::atomic<std::size_t> evictions_memory_{0};
  std::atomic<std::size_t> channels_reused_{0};
  std::atomic<std::size_t> channels_computed_{0};
};

}  // namespace lmmir::serve
