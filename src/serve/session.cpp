#include "serve/session.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "spice/parser.hpp"

namespace lmmir::serve {

namespace {

using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

/// Session-cache instruments (lazy, lock-free writes; no-ops unless
/// LMMIR_METRICS is on — see obs/metrics.hpp).
struct SessionMetrics {
  obs::Counter& requests =
      obs::counter("lmmir_serve_session_requests_total");
  obs::Counter& hits = obs::counter("lmmir_serve_session_hits_total");
  obs::Counter& misses = obs::counter("lmmir_serve_session_misses_total");
  obs::Counter& revision_reuses =
      obs::counter("lmmir_serve_session_revision_reuses_total");
  obs::Counter& evictions =
      obs::counter("lmmir_serve_session_evictions_total");
  obs::Gauge& sessions = obs::gauge("lmmir_serve_session_count");
  obs::Gauge& resident_bytes =
      obs::gauge("lmmir_serve_session_resident_bytes");
};

SessionMetrics& metrics() {
  static SessionMetrics m;
  return m;
}

std::size_t tensor_bytes(const tensor::Tensor& t) {
  return t.defined() ? t.numel() * sizeof(float) : 0;
}

}  // namespace

SessionResult SessionTicket::get() {
  if (!future_.valid())
    throw std::logic_error("SessionTicket::get: no pending request");
  PredictResult inner = future_.get();
  SessionResult out = std::move(partial_);
  out.queue_us = inner.queue_us;
  out.compute_us = inner.compute_us;
  out.percent_map = restore_percent_map(inner, adjust_);
  out.map = std::move(inner.map);
  out.total_us = us_since(start_);
  return out;
}

SessionServer::SessionServer(std::shared_ptr<models::IrModel> model,
                             SessionServeOptions options)
    : model_(std::move(model)),
      opts_(options),
      server_(std::make_unique<InferenceServer>(model_, options.serve)) {}

SessionServer::~SessionServer() { shutdown(); }

void SessionServer::shutdown() {
  stopping_.store(true, std::memory_order_release);
  server_->shutdown();
}

std::size_t SessionServer::entry_bytes(const Entry& e) const {
  std::size_t bytes = sizeof(Entry) + e.session_id.capacity();
  if (e.has_netlist) bytes += e.netlist.resident_bytes();
  bytes += e.context.resident_bytes();
  if (e.has_featurized)
    bytes += tensor_bytes(e.circuit) + tensor_bytes(e.tokens);
  return bytes;
}

SessionServer::EntryPtr SessionServer::acquire_entry(
    const std::string& session_id, bool& hit) {
  auto found = index_.find(session_id);
  if (found != index_.end()) {
    hit = true;
    lru_.splice(lru_.begin(), lru_, found->second);  // move to MRU front
    found->second = lru_.begin();
    return *found->second;
  }
  hit = false;
  auto entry = std::make_shared<Entry>();
  entry->session_id = session_id;
  lru_.push_front(entry);
  index_[session_id] = lru_.begin();
  metrics().sessions.set(static_cast<double>(lru_.size()));
  return entry;
}

void SessionServer::evict_locked(std::list<EntryPtr>::iterator it,
                                 bool memory) {
  EntryPtr entry = *it;
  entry->resident = false;
  resident_bytes_ -= entry->bytes;
  index_.erase(entry->session_id);
  lru_.erase(it);
  (memory ? evictions_memory_ : evictions_lru_)
      .fetch_add(1, std::memory_order_relaxed);
  metrics().evictions.add();
  metrics().sessions.set(static_cast<double>(lru_.size()));
  metrics().resident_bytes.set(static_cast<double>(resident_bytes_));
}

void SessionServer::enforce_budget_locked() {
  // Walk from the LRU tail, skipping entries whose lock is held by an
  // in-flight request (they stay cached; shared_ptr would keep an evicted
  // entry alive anyway, but evicting active sessions is bad policy).
  auto evict_one = [&](bool memory) {
    if (lru_.empty()) return false;
    auto it = std::prev(lru_.end());
    while (true) {
      std::unique_lock<std::mutex> lock((*it)->mu, std::try_to_lock);
      if (lock.owns_lock()) {
        lock.unlock();  // bytes/resident are cache_mu_-guarded; mu was
        evict_locked(it, memory);  // only probed for in-flight activity
        return true;
      }
      if (it == lru_.begin()) return false;
      --it;
    }
  };
  while (opts_.max_sessions > 0 && lru_.size() > opts_.max_sessions)
    if (!evict_one(false)) break;
  while (opts_.max_resident_bytes > 0 &&
         resident_bytes_ > opts_.max_resident_bytes)
    if (!evict_one(true)) break;
}

SessionTicket SessionServer::submit(SessionRequest request) {
  const Clock::time_point start = Clock::now();
  requests_.fetch_add(1, std::memory_order_relaxed);
  metrics().requests.add();
  if (stopping_.load(std::memory_order_acquire))
    throw RejectedError(RejectReason::Shutdown, 0,
                        "submit: server is shut down");

  bool hit = false;
  EntryPtr entry;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    entry = acquire_entry(request.session_id, hit);
  }
  (hit ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
  (hit ? metrics().hits : metrics().misses).add();

  SessionTicket ticket;
  ticket.start_ = start;
  ticket.partial_.id = request.id;
  ticket.partial_.session_id = request.session_id;
  ticket.partial_.session_hit = hit;

  std::lock_guard<std::mutex> entry_lock(entry->mu);

  // --- Materialize the netlist revision this request asks about. ---
  if (!request.netlist_text.empty()) {
    entry->netlist = spice::parse_netlist_string(request.netlist_text);
    entry->has_netlist = true;
  } else if (!entry->has_netlist) {
    throw std::invalid_argument(
        "session submit: delta/replay request but session '" +
        request.session_id + "' has no cached base netlist");
  }
  if (request.base_revision != 0 &&
      entry->netlist.revision() != request.base_revision)
    throw std::invalid_argument(
        "session submit: stale base_revision " +
        std::to_string(request.base_revision) + " (session '" +
        request.session_id + "' is at revision " +
        std::to_string(entry->netlist.revision()) + ")");
  for (const ValueEdit& edit : request.edits)
    entry->netlist.set_element_value(edit.element_index, edit.value);

  // --- Featurize (or reuse the cached tensors of this exact revision). ---
  const std::uint64_t revision = entry->netlist.revision();
  ticket.partial_.revision = revision;
  const bool revision_reuse =
      entry->has_featurized && entry->featurized_revision == revision;
  ticket.partial_.revision_reuse = revision_reuse;
  if (revision_reuse) {
    revision_reuses_.fetch_add(1, std::memory_order_relaxed);
    metrics().revision_reuses.add();
    ticket.partial_.channels_reused = feat::kChannelCount;
  } else {
    data::SampleOptions sample_opts = opts_.sample;
    sample_opts.feature_context = &entry->context;
    const feat::FeatureContextStats before = entry->context.stats();
    data::FeaturizedNetlist f =
        data::featurize_netlist(entry->netlist, sample_opts);
    const feat::FeatureContextStats& after = entry->context.stats();
    ticket.partial_.channels_reused =
        after.channels_reused - before.channels_reused;
    ticket.partial_.channels_computed =
        after.channels_computed - before.channels_computed;
    entry->circuit = std::move(f.circuit);
    entry->tokens = std::move(f.tokens);
    entry->adjust = f.adjust;
    entry->featurized_revision = revision;
    entry->has_featurized = true;
    // Fold the context's lifetime counters into the server-wide totals as
    // a delta against what was already reported, so eviction (which
    // destroys the context) never loses telemetry.
    channels_reused_.fetch_add(
        after.channels_reused - entry->reported.channels_reused,
        std::memory_order_relaxed);
    channels_computed_.fetch_add(
        after.channels_computed - entry->reported.channels_computed,
        std::memory_order_relaxed);
    entry->reported = after;
  }
  ticket.adjust_ = entry->adjust;
  ticket.partial_.extract_us = us_since(start);

  // --- Re-account this session's footprint and enforce the budgets.  The
  // current entry's lock is held, so the eviction walk skips it. ---
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    const std::size_t new_bytes = entry_bytes(*entry);
    if (entry->resident) {
      resident_bytes_ -= entry->bytes;
      resident_bytes_ += new_bytes;
    }
    entry->bytes = new_bytes;
    enforce_budget_locked();
    if (resident_bytes_ > peak_resident_bytes_)
      peak_resident_bytes_ = resident_bytes_;
    metrics().resident_bytes.set(static_cast<double>(resident_bytes_));
  }

  // --- Forward whatever deadline budget extraction left over. ---
  PredictRequest inner;
  inner.id = request.id;
  inner.circuit = entry->circuit;  // shared-impl handles: no copy, and the
  inner.tokens = entry->tokens;    // forward pass never mutates its inputs
  if (request.deadline_us > 0) {
    const std::uint64_t spent =
        static_cast<std::uint64_t>(us_since(start));
    if (spent >= request.deadline_us)
      throw RejectedError(
          RejectReason::DeadlineExceeded, 0,
          "session submit: deadline of " + std::to_string(request.deadline_us) +
              " us exhausted during extraction (" + std::to_string(spent) +
              " us spent)");
    inner.deadline_us = request.deadline_us - spent;
  }
  ticket.future_ = server_->submit(std::move(inner));
  return ticket;
}

SessionResult SessionServer::predict(SessionRequest request) {
  return submit(std::move(request)).get();
}

bool SessionServer::drop_session(const std::string& session_id) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto found = index_.find(session_id);
  if (found == index_.end()) return false;
  EntryPtr entry = *found->second;
  entry->resident = false;
  resident_bytes_ -= entry->bytes;
  lru_.erase(found->second);
  index_.erase(found);
  metrics().sessions.set(static_cast<double>(lru_.size()));
  metrics().resident_bytes.set(static_cast<double>(resident_bytes_));
  return true;
}

SessionCacheStats SessionServer::cache_stats() const {
  SessionCacheStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.revision_reuses = revision_reuses_.load(std::memory_order_relaxed);
  s.evictions_lru = evictions_lru_.load(std::memory_order_relaxed);
  s.evictions_memory = evictions_memory_.load(std::memory_order_relaxed);
  s.channels_reused = channels_reused_.load(std::memory_order_relaxed);
  s.channels_computed = channels_computed_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(cache_mu_);
  s.sessions = lru_.size();
  s.resident_bytes = resident_bytes_;
  s.peak_resident_bytes = peak_resident_bytes_;
  return s;
}

}  // namespace lmmir::serve
