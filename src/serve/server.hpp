#pragma once
// Online inference serving with dynamic batching.
//
// An InferenceServer owns a trained (or freshly constructed) IrModel behind
// a request queue.  Callers submit PredictRequests from any thread and get
// a future; a dispatcher coalesces pending requests into batches of up to
// `max_batch`, waiting at most `max_wait_us` after the oldest pending
// request arrived, runs one batched forward pass, and fulfills each
// request's future with its slice of the output.  This amortizes model
// dispatch across concurrent clients — the same dynamic-batching discipline
// production model servers use — while keeping results bitwise identical to
// single-request inference (every layer in the stack is per-sample in eval
// mode; see tests/test_serve.cpp).
//
//   auto server = pipe.make_server(models::make_model("LMM-IR"));
//   auto fut = server->submit(serve::request_from_sample(sample));
//   serve::PredictResult r = fut.get();           // [1,S,S] prediction
//   grid::Grid2D map = serve::restore_percent_map(r, sample);
//
// Thread model: `worker_threads` dispatcher threads pop batches
// independently; the batched forward itself fans out over the
// runtime::global_pool for intra-op parallelism.  The model is switched to
// eval mode at construction and never mutated afterwards, so concurrent
// batch runners are safe.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/sample.hpp"
#include "models/common.hpp"
#include "tensor/arena.hpp"
#include "tensor/tensor.hpp"

namespace lmmir::serve {

struct ServeOptions {
  std::size_t max_batch = 8;       // largest coalesced batch
  std::uint64_t max_wait_us = 500; // batching window after the oldest arrival
  std::size_t worker_threads = 1;  // concurrent batch dispatchers
  /// Backpressure: submit() throws once this many requests are pending
  /// (each Pending holds full input tensors; an unbounded queue would grow
  /// without limit whenever arrival outpaces compute). 0 = unbounded.
  std::size_t max_queue = 1024;
  /// Recycle inference tensors through one tensor::TensorArena per
  /// dispatcher thread (reset between batches): the batched forward is
  /// allocation-free in steady state once every batch shape has been
  /// seen, with bitwise-identical predictions.  Result maps are always
  /// owning copies — they outlive the request scope.
  /// Default follows LMMIR_TENSOR_ARENA (unset/non-zero = on).
  bool use_tensor_arena = tensor::arena_enabled_from_env();
};

struct PredictRequest {
  std::string id;          // caller tag, echoed in the result
  tensor::Tensor circuit;  // [C,S,S]; C >= model in_channels (extra sliced)
  tensor::Tensor tokens;   // [T,F] netlist tokens; may be undefined for
                           // single-modality models
};

struct PredictResult {
  std::string id;
  tensor::Tensor map;      // [1,S,S] prediction, target-scale units
  double queue_us = 0.0;   // submit -> batch start
  double compute_us = 0.0; // batched forward wall clock (shared by batch)
  double total_us = 0.0;   // submit -> future fulfilled
  std::size_t batch_size = 0;  // size of the batch this request rode in
};

/// Aggregate latency / throughput counters.  Counts, throughput and batch
/// shape cover the server's whole lifetime; the latency distribution
/// (p50/p95/p99/mean/max) covers the most recent kStatsWindow completions
/// so a long-lived server's memory and stats() cost stay bounded.
///
/// This struct is the always-on per-server view; the same quantities also
/// stream into the process-wide obs::MetricsRegistry (lmmir_serve_*) when
/// LMMIR_METRICS is enabled — see docs/OBSERVABILITY.md.
struct ServerStats {
  std::size_t completed = 0;
  std::size_t batches = 0;
  /// Admission-control telemetry (groundwork for retry-after policies):
  /// submissions refused at the queue-full backpressure limit, refused
  /// after shutdown, and requests whose future was fulfilled with an
  /// exception because their batch failed.  Before these counters, every
  /// rejected future vanished without a trace.
  std::size_t rejected_queue_full = 0;
  std::size_t rejected_shutdown = 0;
  std::size_t failed = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double max_us = 0.0;
  double throughput_rps = 0.0;  // completed / (last completion - first submit)
  double mean_batch = 0.0;      // mean executed batch size
  std::size_t max_batch_seen = 0;
};

class InferenceServer {
 public:
  explicit InferenceServer(std::shared_ptr<models::IrModel> model,
                           ServeOptions options = {});
  /// Drains pending requests, then joins the dispatchers.
  ~InferenceServer();
  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueue from any thread.  The future rethrows inference errors.
  /// Throws std::runtime_error after shutdown() or when the pending queue
  /// is at max_queue (backpressure — retry later).
  std::future<PredictResult> submit(PredictRequest request);

  /// Synchronous convenience wrapper: submit + wait.
  PredictResult predict(PredictRequest request);

  /// Stop accepting new requests, serve everything already queued, join.
  /// Idempotent; also run by the destructor.
  void shutdown();

  ServerStats stats() const;
  const ServeOptions& options() const { return opts_; }
  const models::IrModel& model() const { return *model_; }

  /// Aggregated tensor-arena counters across the dispatcher arenas (all
  /// zero when use_tensor_arena is off).  The counters are written by
  /// the dispatchers without synchronization: call while the server is
  /// idle (no in-flight requests), e.g. after the futures you're
  /// measuring have resolved.
  tensor::ArenaStats arena_stats() const;

  /// Latency samples retained for the stats() distribution (ring buffer).
  static constexpr std::size_t kStatsWindow = 16384;

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    PredictRequest request;
    std::promise<PredictResult> promise;
    Clock::time_point arrival;
  };

  void dispatcher_loop(std::size_t worker_index);
  void run_batch(std::vector<Pending>& batch, tensor::TensorArena* arena);
  static bool batchable(const PredictRequest& a, const PredictRequest& b);

  std::shared_ptr<models::IrModel> model_;
  ServeOptions opts_;
  std::vector<std::unique_ptr<tensor::TensorArena>> arenas_;  // per dispatcher

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  std::vector<std::thread> dispatchers_;
  std::mutex shutdown_mu_;  // serializes concurrent shutdown() calls

  // Reject/failure counters live outside stats_mu_: they increment on
  // throw paths where taking the stats lock would be wasted work.
  std::atomic<std::size_t> rejected_queue_full_{0};
  std::atomic<std::size_t> rejected_shutdown_{0};
  std::atomic<std::size_t> failed_{0};

  mutable std::mutex stats_mu_;
  std::vector<double> latencies_us_;   // ring of the last kStatsWindow
  std::size_t latency_pos_ = 0;        // next overwrite slot once full
  std::size_t completed_ = 0;          // lifetime counters
  std::size_t batches_ = 0;
  std::size_t batched_requests_ = 0;   // sum of executed batch sizes
  std::size_t max_batch_seen_ = 0;
  Clock::time_point first_submit_{};
  Clock::time_point last_done_{};
  bool any_submit_ = false;
};

/// Build a request carrying a sample's canonical circuit stack and tokens.
PredictRequest request_from_sample(const data::Sample& sample);

/// Undo target scaling and the pad/resize adjustment: the result map in
/// percent-of-vdd units at the sample's original resolution (the inference
/// half of train::predict_map).
grid::Grid2D restore_percent_map(const PredictResult& result,
                                 const data::Sample& sample);

}  // namespace lmmir::serve
