#pragma once
// Online inference serving with dynamic batching.
//
// An InferenceServer owns a trained (or freshly constructed) IrModel behind
// a request queue.  Callers submit PredictRequests from any thread and get
// a future; a dispatcher coalesces pending requests into batches of up to
// `max_batch`, waiting at most `max_wait_us` after the oldest pending
// request arrived, runs one batched forward pass, and fulfills each
// request's future with its slice of the output.  This amortizes model
// dispatch across concurrent clients — the same dynamic-batching discipline
// production model servers use — while keeping results bitwise identical to
// single-request inference (every layer in the stack is per-sample in eval
// mode; see tests/test_serve.cpp).
//
//   auto server = pipe.make_server(models::make_model("LMM-IR"));
//   auto fut = server->submit(serve::request_from_sample(sample));
//   serve::PredictResult r = fut.get();           // [1,S,S] prediction
//   grid::Grid2D map = serve::restore_percent_map(r, sample);
//
// Thread model: `worker_threads` dispatcher threads pop batches
// independently; the batched forward itself fans out over the
// runtime::global_pool for intra-op parallelism.  The model is switched to
// eval mode at construction and never mutated afterwards, so concurrent
// batch runners are safe.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "data/sample.hpp"
#include "models/common.hpp"
#include "tensor/arena.hpp"
#include "tensor/plan.hpp"
#include "tensor/tensor.hpp"

namespace lmmir::serve {

/// Why an admission decision refused a request.
enum class RejectReason {
  QueueFull,         // backpressure: pending queue at max_queue
  Shutdown,          // server no longer accepts work
  DeadlineExceeded,  // request expired before batch formation
};

const char* reject_reason_name(RejectReason reason);

/// Typed admission-control rejection.  Clients that catch RejectedError
/// can back off programmatically (reason + retry_after_us) instead of
/// parsing what(); catching std::runtime_error keeps working because the
/// what() text is unchanged from the pre-typed throws.
///
///   retry_after_us > 0  — transient: retry after the hint (queue-full
///                         rejections hint one batching window, the time
///                         for the current window to drain);
///   retry_after_us == 0 — permanent for this server (shutdown) or for
///                         this request (deadline already exceeded).
class RejectedError : public std::runtime_error {
 public:
  RejectedError(RejectReason reason, std::uint64_t retry_after_us,
                const std::string& what_text)
      : std::runtime_error(what_text),
        reason_(reason),
        retry_after_us_(retry_after_us) {}

  RejectReason reason() const { return reason_; }
  std::uint64_t retry_after_us() const { return retry_after_us_; }

 private:
  RejectReason reason_;
  std::uint64_t retry_after_us_;
};

struct ServeOptions {
  std::size_t max_batch = 8;       // largest coalesced batch
  std::uint64_t max_wait_us = 500; // batching window after the oldest arrival
  std::size_t worker_threads = 1;  // concurrent batch dispatchers
  /// Backpressure: submit() throws once this many requests are pending
  /// (each Pending holds full input tensors; an unbounded queue would grow
  /// without limit whenever arrival outpaces compute). 0 = unbounded.
  std::size_t max_queue = 1024;
  /// Recycle inference tensors through one tensor::TensorArena per
  /// dispatcher thread (reset between batches): the batched forward is
  /// allocation-free in steady state once every batch shape has been
  /// seen, with bitwise-identical predictions.  Result maps are always
  /// owning copies — they outlive the request scope.
  /// Default follows LMMIR_TENSOR_ARENA (unset/non-zero = on).
  bool use_tensor_arena = tensor::arena_enabled_from_env();
  /// Replay ahead-of-time inference plans: the first batch per input
  /// shape runs the eager forward under a recording scope; every later
  /// batch with the same shape replays the recorded op sequence through
  /// preplanned flat-arena storage and fused/SIMD kernels — bitwise
  /// identical to eager, zero tensor heap allocations in steady state
  /// (see docs/PLAN.md).  The plan cache is server-owned and keyed on
  /// the batched input shapes, so every max_batch value the coalescer
  /// produces gets its own plan.  Default follows LMMIR_INFER_PLAN
  /// (opt-in: unset/"0" = off).
  bool use_inference_plan = tensor::plan::plan_enabled_from_env();
};

struct PredictRequest {
  std::string id;          // caller tag, echoed in the result
  tensor::Tensor circuit;  // [C,S,S]; C >= model in_channels (extra sliced)
  tensor::Tensor tokens;   // [T,F] netlist tokens; may be undefined for
                           // single-modality models
  /// Per-request deadline, microseconds after submit() admitted the
  /// request (0 = none).  Enforced at batch-formation time: a request
  /// whose deadline passed while it waited in the queue is dropped before
  /// the batch is stacked and its future rethrows RejectedError
  /// {DeadlineExceeded} — the compute it would have wasted goes to
  /// requests that can still meet theirs.  A request already inside a
  /// forming batch runs to completion (deadlines bound queue wait, not
  /// compute).
  std::uint64_t deadline_us = 0;
};

struct PredictResult {
  std::string id;
  tensor::Tensor map;      // [1,S,S] prediction, target-scale units
  double queue_us = 0.0;   // submit -> batch start
  double compute_us = 0.0; // batched forward wall clock (shared by batch)
  double total_us = 0.0;   // submit -> future fulfilled
  std::size_t batch_size = 0;  // size of the batch this request rode in
};

/// Aggregate latency / throughput counters.  Counts, throughput and batch
/// shape cover the server's whole lifetime; the latency distribution
/// (p50/p95/p99/mean/max) covers the most recent kStatsWindow completions
/// so a long-lived server's memory and stats() cost stay bounded.
///
/// This struct is the always-on per-server view; the same quantities also
/// stream into the process-wide obs::MetricsRegistry (lmmir_serve_*) when
/// LMMIR_METRICS is enabled — see docs/OBSERVABILITY.md.
struct ServerStats {
  std::size_t completed = 0;
  std::size_t batches = 0;
  /// Admission-control telemetry (groundwork for retry-after policies):
  /// submissions refused at the queue-full backpressure limit, refused
  /// after shutdown, and requests whose future was fulfilled with an
  /// exception because their batch failed.  Before these counters, every
  /// rejected future vanished without a trace.
  std::size_t rejected_queue_full = 0;
  std::size_t rejected_shutdown = 0;
  /// Requests admitted but dropped at batch formation because their
  /// deadline_us expired while queued (future rethrows RejectedError).
  std::size_t timed_out = 0;
  std::size_t failed = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double max_us = 0.0;
  double throughput_rps = 0.0;  // completed / (last completion - first submit)
  double mean_batch = 0.0;      // mean executed batch size
  std::size_t max_batch_seen = 0;
};

/// Lifetime throughput from completions over the span between the first
/// ADMITTED submission and the last completion.  Defensive against
/// degenerate spans: zero completions, or a zero/negative span (every
/// completion sharing one timestamp on a coarse clock, or a span computed
/// from default-constructed time points) report 0 instead of inf/NaN or a
/// 1e9x-inflated rate.  Exposed for direct unit testing; stats() uses it.
double throughput_rps(std::size_t completed, double span_seconds);

class InferenceServer {
 public:
  explicit InferenceServer(std::shared_ptr<models::IrModel> model,
                           ServeOptions options = {});
  /// Drains pending requests, then joins the dispatchers.
  ~InferenceServer();
  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueue from any thread.  The future rethrows inference errors (and
  /// RejectedError{DeadlineExceeded} when request.deadline_us expired
  /// before batch formation).  Throws RejectedError{Shutdown} after
  /// shutdown() and RejectedError{QueueFull, retry_after_us} when the
  /// pending queue is at max_queue (backpressure — both are
  /// std::runtime_error subclasses with the historical what() text).
  /// Rejected submissions leave the lifetime/throughput bookkeeping
  /// untouched: only admitted requests count.
  std::future<PredictResult> submit(PredictRequest request);

  /// Synchronous convenience wrapper: submit + wait.
  PredictResult predict(PredictRequest request);

  /// Stop accepting new requests, serve everything already queued, join.
  /// Idempotent; also run by the destructor.
  void shutdown();

  ServerStats stats() const;
  const ServeOptions& options() const { return opts_; }
  const models::IrModel& model() const { return *model_; }

  /// Aggregated tensor-arena counters across the dispatcher arenas (all
  /// zero when use_tensor_arena is off).  The counters are written by
  /// the dispatchers without synchronization: call while the server is
  /// idle (no in-flight requests), e.g. after the futures you're
  /// measuring have resolved.
  tensor::ArenaStats arena_stats() const;

  /// Plan-cache counters (recorded / unsupported / replays / eager runs;
  /// all zero when use_inference_plan is off).
  tensor::plan::RuntimeStats plan_stats() const { return plan_runtime_.stats(); }

  /// Latency samples retained for the stats() distribution (ring buffer).
  static constexpr std::size_t kStatsWindow = 16384;

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    PredictRequest request;
    std::promise<PredictResult> promise;
    Clock::time_point arrival;
  };

  void dispatcher_loop(std::size_t worker_index);
  void run_batch(std::vector<Pending>& batch, tensor::TensorArena* arena);
  static bool batchable(const PredictRequest& a, const PredictRequest& b);
  /// Move queued requests whose deadline passed into `expired` (called
  /// under mu_; promises are fulfilled by the caller after unlocking).
  void collect_expired_locked(std::vector<Pending>& expired);

  std::shared_ptr<models::IrModel> model_;
  ServeOptions opts_;
  std::vector<std::unique_ptr<tensor::TensorArena>> arenas_;  // per dispatcher
  /// Shared by the dispatchers: one plan per batched input shape; the
  /// runtime serializes recording and pools executors for replay.
  tensor::plan::PlanRuntime plan_runtime_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  std::vector<std::thread> dispatchers_;
  std::mutex shutdown_mu_;  // serializes concurrent shutdown() calls

  // Reject/failure counters live outside stats_mu_: they increment on
  // throw paths where taking the stats lock would be wasted work.
  std::atomic<std::size_t> rejected_queue_full_{0};
  std::atomic<std::size_t> rejected_shutdown_{0};
  std::atomic<std::size_t> timed_out_{0};
  std::atomic<std::size_t> failed_{0};

  mutable std::mutex stats_mu_;
  std::vector<double> latencies_us_;   // ring of the last kStatsWindow
  std::size_t latency_pos_ = 0;        // next overwrite slot once full
  std::size_t completed_ = 0;          // lifetime counters
  std::size_t batches_ = 0;
  std::size_t batched_requests_ = 0;   // sum of executed batch sizes
  std::size_t max_batch_seen_ = 0;
  Clock::time_point first_submit_{};
  Clock::time_point last_done_{};
  bool any_submit_ = false;
};

/// Build a request carrying a sample's canonical circuit stack and tokens.
PredictRequest request_from_sample(const data::Sample& sample);

/// Undo target scaling and the pad/resize adjustment: the result map in
/// percent-of-vdd units at the sample's original resolution (the inference
/// half of train::predict_map).
grid::Grid2D restore_percent_map(const PredictResult& result,
                                 const data::Sample& sample);

/// Same, from a bare adjustment record (the serving path, where there is
/// no Sample — only the AdjustInfo recorded at featurization time).
grid::Grid2D restore_percent_map(const PredictResult& result,
                                 const feat::AdjustInfo& adjust);

}  // namespace lmmir::serve
