#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <stdexcept>

#include "data/dataset.hpp"
#include "features/spatial.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace lmmir::serve {

using tensor::Tensor;

namespace {

double elapsed_us(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// Registry instruments for the serve subsystem, resolved once (see
/// docs/OBSERVABILITY.md for the naming scheme).  Writes are no-ops while
/// LMMIR_METRICS is off.
struct ServeMetrics {
  obs::Counter& requests = obs::counter("lmmir_serve_requests_total");
  obs::Counter& completed = obs::counter("lmmir_serve_completed_total");
  obs::Counter& batches = obs::counter("lmmir_serve_batches_total");
  obs::Counter& rejected_full =
      obs::counter("lmmir_serve_rejected_queue_full_total");
  obs::Counter& rejected_shutdown =
      obs::counter("lmmir_serve_rejected_shutdown_total");
  obs::Counter& timed_out = obs::counter("lmmir_serve_timed_out_total");
  obs::Counter& failed = obs::counter("lmmir_serve_failed_total");
  obs::Gauge& queue_depth = obs::gauge("lmmir_serve_queue_depth");
  obs::Histogram& latency = obs::histogram("lmmir_serve_request_latency_us",
                                           obs::latency_buckets_us());
  obs::Histogram& queue_wait = obs::histogram("lmmir_serve_queue_wait_us",
                                              obs::latency_buckets_us());
  obs::Histogram& compute = obs::histogram("lmmir_serve_compute_us",
                                           obs::latency_buckets_us());
  obs::Histogram& batch_size = obs::histogram("lmmir_serve_batch_size",
                                              obs::batch_size_buckets());

  static ServeMetrics& get() {
    static ServeMetrics m;
    return m;
  }
};

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(p / 100.0 * static_cast<double>(sorted.size()));
  const std::size_t idx = static_cast<std::size_t>(
      std::clamp(rank - 1.0, 0.0, static_cast<double>(sorted.size() - 1)));
  return sorted[idx];
}

}  // namespace

const char* reject_reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::QueueFull: return "queue_full";
    case RejectReason::Shutdown: return "shutdown";
    case RejectReason::DeadlineExceeded: return "deadline_exceeded";
  }
  return "unknown";
}

double throughput_rps(std::size_t completed, double span_seconds) {
  if (completed == 0 || !(span_seconds > 0.0)) return 0.0;
  return static_cast<double>(completed) / span_seconds;
}

InferenceServer::InferenceServer(std::shared_ptr<models::IrModel> model,
                                 ServeOptions options)
    : model_(std::move(model)),
      opts_(options),
      plan_runtime_(options.use_inference_plan) {
  if (!model_)
    throw std::invalid_argument("InferenceServer: model must not be null");
  if (opts_.max_batch == 0) opts_.max_batch = 1;
  if (opts_.worker_threads == 0) opts_.worker_threads = 1;
  // Eval mode once, up front: batch norm uses running stats and dropout is
  // identity, making every layer per-sample and inference side-effect free
  // (batched == sequential bitwise; concurrent dispatchers are safe).
  model_->set_training(false);
  if (opts_.use_tensor_arena) {
    arenas_.reserve(opts_.worker_threads);
    for (std::size_t i = 0; i < opts_.worker_threads; ++i)
      arenas_.push_back(std::make_unique<tensor::TensorArena>());
  }
  dispatchers_.reserve(opts_.worker_threads);
  try {
    for (std::size_t i = 0; i < opts_.worker_threads; ++i)
      dispatchers_.emplace_back([this, i] { dispatcher_loop(i); });
  } catch (...) {
    shutdown();  // join the dispatchers that did start, then rethrow
    throw;
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

std::future<PredictResult> InferenceServer::submit(PredictRequest request) {
  if (!request.circuit.defined() || request.circuit.ndim() != 3)
    throw std::invalid_argument("submit: circuit must be a [C,S,S] tensor");
  if (request.circuit.dim(0) < model_->in_channels())
    throw std::invalid_argument(
        "submit: circuit has fewer channels than the model consumes");
  if (request.tokens.defined() && request.tokens.ndim() != 2)
    throw std::invalid_argument("submit: tokens must be [T,F]");

  Pending p;
  p.request = std::move(request);
  p.arrival = Clock::now();
  std::future<PredictResult> fut = p.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Admission first: a rejected submission must leave the lifetime
    // bookkeeping untouched, or every rejection before the first admitted
    // request would stretch the throughput_rps span to cover traffic the
    // server never accepted.
    if (stopping_) {
      rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
      ServeMetrics::get().rejected_shutdown.add();
      throw RejectedError(RejectReason::Shutdown, 0,
                          "submit: server is shut down");
    }
    if (opts_.max_queue > 0 && queue_.size() >= opts_.max_queue) {
      rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
      ServeMetrics::get().rejected_full.add();
      // Retry hint: one batching window — the time for the window holding
      // the queue at capacity to close and dispatch (floored so max_wait 0
      // still suggests a non-zero backoff).
      const std::uint64_t retry_us = std::max<std::uint64_t>(
          opts_.max_wait_us, 100);
      throw RejectedError(RejectReason::QueueFull, retry_us,
                          "submit: queue full (" +
                              std::to_string(opts_.max_queue) +
                              " pending); retry later");
    }
    {
      // Admitted: stamp before the request becomes visible to
      // dispatchers, so last_done_ can never precede first_submit_.
      // stats_mu_ nests inside mu_ here; nothing takes mu_ under
      // stats_mu_, so the order is acyclic.
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      if (!any_submit_) {
        first_submit_ = p.arrival;
        any_submit_ = true;
      }
    }
    queue_.push_back(std::move(p));
    // Under the lock, like the dispatcher's drain-side write: depth sets
    // from the two sides never interleave stale-over-fresh.
    ServeMetrics::get().queue_depth.set(static_cast<double>(queue_.size()));
  }
  ServeMetrics::get().requests.add();
  cv_.notify_all();
  return fut;
}

PredictResult InferenceServer::predict(PredictRequest request) {
  return submit(std::move(request)).get();
}

bool InferenceServer::batchable(const PredictRequest& a,
                                const PredictRequest& b) {
  if (!tensor::same_shape(a.circuit.shape(), b.circuit.shape())) return false;
  if (a.tokens.defined() != b.tokens.defined()) return false;
  if (a.tokens.defined() &&
      !tensor::same_shape(a.tokens.shape(), b.tokens.shape()))
    return false;
  return true;
}

void InferenceServer::collect_expired_locked(std::vector<Pending>& expired) {
  const auto now = Clock::now();
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->request.deadline_us > 0 &&
        now >= it->arrival +
                   std::chrono::microseconds(it->request.deadline_us)) {
      expired.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

void InferenceServer::dispatcher_loop(std::size_t worker_index) {
  tensor::TensorArena* arena =
      worker_index < arenas_.size() ? arenas_[worker_index].get() : nullptr;
  for (;;) {
    std::vector<Pending> batch;
    std::vector<Pending> expired;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained

      // Batching window: collect arrivals until the batch is full or
      // max_wait_us passed since the oldest pending request.  The deadline
      // is recomputed from the current front every wake: another dispatcher
      // may have served the request the previous deadline belonged to, and
      // a fresh arrival deserves its own full window.
      while (!stopping_ && !queue_.empty() &&
             queue_.size() < opts_.max_batch) {
        const auto deadline = queue_.front().arrival +
                              std::chrono::microseconds(opts_.max_wait_us);
        if (Clock::now() >= deadline) break;
        cv_.wait_until(lock, deadline);
      }

      // Per-request deadlines are enforced here, at batch formation: a
      // request that already cannot be answered in time is dropped before
      // the batch is stacked, so its slot (and the forward-pass compute)
      // goes to requests that can still meet theirs.  Promises are
      // fulfilled after unlocking.
      collect_expired_locked(expired);

      if (!queue_.empty()) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
        while (batch.size() < opts_.max_batch && !queue_.empty() &&
               batchable(batch.front().request, queue_.front().request)) {
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
      }
      // Authoritative write under the queue lock: the gauge tracks drains
      // and expiries as well as submits (otherwise it freezes at the last
      // submit depth).
      ServeMetrics::get().queue_depth.set(static_cast<double>(queue_.size()));
    }
    if (!expired.empty()) {
      timed_out_.fetch_add(expired.size(), std::memory_order_relaxed);
      ServeMetrics::get().timed_out.add(expired.size());
      for (auto& p : expired) {
        const double waited = elapsed_us(p.arrival, Clock::now());
        p.promise.set_exception(std::make_exception_ptr(RejectedError(
            RejectReason::DeadlineExceeded, 0,
            "batch formation: deadline of " +
                std::to_string(p.request.deadline_us) + " us exceeded (" +
                std::to_string(static_cast<std::uint64_t>(waited)) +
                " us in queue)")));
      }
    }
    if (batch.empty()) continue;  // raced, drained, or everything expired
    run_batch(batch, arena);  // resets the arena before fulfilling promises
  }
}

void InferenceServer::run_batch(std::vector<Pending>& batch,
                                tensor::TensorArena* arena) {
  const auto t_start = Clock::now();
  const std::size_t n = batch.size();
  std::size_t fulfilled = 0;  // promises already satisfied (never re-set)
  std::uint64_t batch_span_id = 0;
  try {
    // The batch span closes before the per-request lifecycle events are
    // emitted below, so in the trace each request [arrival → fulfil]
    // strictly contains its batch [dequeue → fulfil], which contains the
    // forward span: the nested request → batch → forward view.
    std::optional<obs::Span> batch_span;
    batch_span.emplace("serve.batch");
    batch_span_id = batch_span->id();
    Tensor pred;
    {
      tensor::NoGradGuard no_grad;     // inference builds no tape...
      tensor::ArenaScope scope(arena); // ...and recycles through the arena.

      // Stack [C,S,S] -> [N,C,S,S] (and tokens [T,F] -> [N,T,F]), exactly
      // the concatenation data::make_batch performs for training batches.
      Tensor circuit, tokens;
      {
        obs::Span stack_span("serve.stack");
        const auto& cs = batch.front().request.circuit.shape();
        const std::size_t per = batch.front().request.circuit.numel();
        // Every element is overwritten by the per-request copies below.
        std::vector<float> circ = tensor::arena_buffer_overwrite(n * per);
        std::size_t off = 0;
        for (const auto& p : batch) {
          std::copy(p.request.circuit.data().begin(),
                    p.request.circuit.data().end(),
                    circ.begin() + static_cast<std::ptrdiff_t>(off));
          off += per;
        }
        circuit = Tensor::from_data(
            {static_cast<int>(n), cs[0], cs[1], cs[2]}, std::move(circ));
        circuit = data::slice_channels(circuit, model_->in_channels());

        if (batch.front().request.tokens.defined()) {
          const auto& ts = batch.front().request.tokens.shape();
          const std::size_t per_tok = batch.front().request.tokens.numel();
          std::vector<float> toks =
              tensor::arena_buffer_overwrite(n * per_tok);
          std::size_t tok_off = 0;
          for (const auto& p : batch) {
            std::copy(p.request.tokens.data().begin(),
                      p.request.tokens.data().end(),
                      toks.begin() + static_cast<std::ptrdiff_t>(tok_off));
            tok_off += per_tok;
          }
          tokens = Tensor::from_data({static_cast<int>(n), ts[0], ts[1]},
                                     std::move(toks));
        }
      }

      {
        obs::Span forward_span("serve.forward");
        // Routed through the server's plan cache: first batch per shape
        // records (an eager pass under a recording scope), later ones
        // replay.  With use_inference_plan off the runtime always takes
        // the eager branch, so this is the plain forward.
        pred = plan_runtime_.run(
            circuit, tokens, [this](const Tensor& c, const Tensor& t) {
              return model_->forward(c, t);
            });
      }
      // The scope ends here: the batch inputs and every intermediate
      // return to the arena as their handles drop.  `pred` stays alive
      // (arena-backed) while the owning result slices are copied out
      // below, outside the scope.
    }
    const auto t_done = Clock::now();
    const double compute_us = elapsed_us(t_start, t_done);

    // Record stats before fulfilling promises so a caller returning from
    // predict() immediately observes its own request in stats().
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      for (const auto& p : batch) {
        const double lat = elapsed_us(p.arrival, t_done);
        if (latencies_us_.size() < kStatsWindow) {
          latencies_us_.push_back(lat);
        } else {
          latencies_us_[latency_pos_] = lat;
          latency_pos_ = (latency_pos_ + 1) % kStatsWindow;
        }
      }
      completed_ += n;
      batches_ += 1;
      batched_requests_ += n;
      max_batch_seen_ = std::max(max_batch_seen_, n);
      // max(): with several dispatchers, batches may record out of order.
      last_done_ = std::max(last_done_, t_done);
    }
    if (obs::metrics_enabled()) {
      ServeMetrics& m = ServeMetrics::get();
      for (const auto& p : batch) {
        m.latency.observe(elapsed_us(p.arrival, t_done));
        m.queue_wait.observe(elapsed_us(p.arrival, t_start));
      }
      m.compute.observe(compute_us);
      m.batch_size.observe(static_cast<double>(n));
      m.completed.add(n);
      m.batches.add();
    }

    const std::size_t per = pred.numel() / n;
    const tensor::Shape map_shape{pred.dim(1), pred.dim(2), pred.dim(3)};
    std::vector<PredictResult> results;
    results.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      PredictResult r;
      r.id = batch[i].request.id;
      r.map = Tensor::from_data(
          map_shape,
          std::vector<float>(pred.data().begin() +
                                 static_cast<std::ptrdiff_t>(i * per),
                             pred.data().begin() +
                                 static_cast<std::ptrdiff_t>((i + 1) * per)));
      r.queue_us = elapsed_us(batch[i].arrival, t_start);
      r.compute_us = compute_us;
      r.total_us = elapsed_us(batch[i].arrival, t_done);
      r.batch_size = n;
      results.push_back(std::move(r));
    }
    // Release the batched output and run the per-request arena barrier
    // BEFORE fulfilling the promises: a caller returning from predict()
    // then observes a quiescent arena (live_nodes 0, pools swept) in
    // arena_stats().
    {
      obs::Span fulfil_span("serve.fulfil");
      pred = Tensor();
      if (arena) arena->reset();
      for (std::size_t i = 0; i < n; ++i) {
        batch[i].promise.set_value(std::move(results[i]));
        ++fulfilled;
      }
    }
    // Close the batch span, then stamp one lifecycle event per request
    // (submit → fulfil, started on the client thread) so the trace shows
    // queue wait and batch ride-along per request.
    batch_span.reset();
    if (obs::trace_enabled()) {
      const std::uint64_t t_end = obs::now_ns();
      for (const auto& p : batch)
        obs::emit_span("serve.request", obs::to_ns(p.arrival), t_end,
                       batch_span_id);
    }
  } catch (const std::exception& e) {
    util::log_error("InferenceServer: batch of ", n, " failed: ", e.what());
    // Unwinding released every tensor; the barrier still has to run or
    // the dead buffers stay out of the pools (and the quiescence
    // contract breaks) for every batch after a failure.
    if (arena) arena->reset();
    failed_.fetch_add(batch.size() - fulfilled, std::memory_order_relaxed);
    ServeMetrics::get().failed.add(batch.size() - fulfilled);
    for (std::size_t i = fulfilled; i < batch.size(); ++i)
      batch[i].promise.set_exception(std::current_exception());
  } catch (...) {
    util::log_error("InferenceServer: batch of ", n,
                    " failed with a non-std exception");
    if (arena) arena->reset();
    failed_.fetch_add(batch.size() - fulfilled, std::memory_order_relaxed);
    ServeMetrics::get().failed.add(batch.size() - fulfilled);
    for (std::size_t i = fulfilled; i < batch.size(); ++i)
      batch[i].promise.set_exception(std::current_exception());
  }
}

void InferenceServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Serialize the join+clear so concurrent shutdown() calls (or shutdown
  // racing the destructor) don't double-join the same thread.
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  for (auto& d : dispatchers_)
    if (d.joinable()) d.join();
  dispatchers_.clear();
}

tensor::ArenaStats InferenceServer::arena_stats() const {
  tensor::ArenaStats total;
  for (const auto& a : arenas_) total += a->stats();
  return total;
}

ServerStats InferenceServer::stats() const {
  ServerStats s;
  s.rejected_queue_full = rejected_queue_full_.load(std::memory_order_relaxed);
  s.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
  s.timed_out = timed_out_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  std::vector<double> lat;
  Clock::time_point first, last;
  bool any;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    lat = latencies_us_;  // bounded by kStatsWindow
    s.completed = completed_;
    s.batches = batches_;
    s.max_batch_seen = max_batch_seen_;
    if (batches_ > 0)
      s.mean_batch = static_cast<double>(batched_requests_) /
                     static_cast<double>(batches_);
    first = first_submit_;
    last = last_done_;
    any = any_submit_;
  }
  if (lat.empty()) return s;

  std::sort(lat.begin(), lat.end());
  s.p50_us = percentile(lat, 50.0);
  s.p95_us = percentile(lat, 95.0);
  s.p99_us = percentile(lat, 99.0);
  s.max_us = lat.back();
  double sum = 0.0;
  for (double v : lat) sum += v;
  s.mean_us = sum / static_cast<double>(lat.size());

  if (any) {
    // A zero span is real (the only completions can share one timestamp
    // on a coarse steady_clock); the helper reports 0 for it instead of
    // the inf-like rate a 1e-9 floor used to manufacture.
    s.throughput_rps = throughput_rps(
        s.completed, std::chrono::duration<double>(last - first).count());
  }
  return s;
}

PredictRequest request_from_sample(const data::Sample& sample) {
  PredictRequest r;
  r.id = sample.name;
  r.circuit = sample.circuit;
  r.tokens = sample.tokens;
  return r;
}

grid::Grid2D restore_percent_map(const PredictResult& result,
                                 const data::Sample& sample) {
  return restore_percent_map(result, sample.adjust);
}

grid::Grid2D restore_percent_map(const PredictResult& result,
                                 const feat::AdjustInfo& adjust) {
  if (!result.map.defined() || result.map.ndim() != 3)
    throw std::invalid_argument("restore_percent_map: expects a [1,S,S] map");
  const std::size_t side = static_cast<std::size_t>(result.map.dim(1));
  grid::Grid2D map(side, side);
  map.data() = result.map.data();
  map.scale(1.0f / data::kTargetScale);
  return feat::restore_from_side(map, adjust);
}

}  // namespace lmmir::serve
