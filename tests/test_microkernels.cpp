// microkernels: the dispatched GEMM must be bitwise identical to the
// scalar reference on every shape (SIMD is a speed knob, never a
// semantics knob), and im2col must match a naive patch-gather.
#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "tensor/microkernels.hpp"
#include "util/rng.hpp"

namespace {

using namespace lmmir;
namespace mk = tensor::mk;

std::vector<float> random_vec(util::Rng& rng, std::size_t n) {
  std::vector<float> v(n);
  for (auto& x : v) x = rng.normal(0.0f, 1.0f);
  return v;
}

/// Run both kernels from identical accumulator states and require bitwise
/// equality of every output element.
void expect_gemm_identical(util::Rng& rng, std::size_t m, std::size_t k,
                           std::size_t n, bool zero_rows = false) {
  std::vector<float> a = random_vec(rng, m * k);
  if (zero_rows)  // exercise the av == 0.0f inner-loop skip
    for (std::size_t i = 0; i < a.size(); i += 3) a[i] = 0.0f;
  const std::vector<float> b = random_vec(rng, k * n);
  // Non-zero accumulator start: the kernels accumulate, they don't store.
  const std::vector<float> c0 = random_vec(rng, m * n);

  std::vector<float> c_ref = c0;
  mk::gemm_acc_scalar(a.data(), b.data(), c_ref.data(), m, k, n);

  std::vector<float> c_dispatch = c0;
  mk::gemm_acc(a.data(), b.data(), c_dispatch.data(), m, k, n);
  for (std::size_t i = 0; i < c_ref.size(); ++i)
    ASSERT_EQ(c_ref[i], c_dispatch[i])
        << "dispatched kernel (" << mk::active_kernel() << ") diverged at "
        << i << " for m=" << m << " k=" << k << " n=" << n;

  if (mk::compiled_with_avx2() && mk::cpu_has_avx2()) {
    std::vector<float> c_avx = c0;
    mk::gemm_acc_avx2(a.data(), b.data(), c_avx.data(), m, k, n);
    for (std::size_t i = 0; i < c_ref.size(); ++i)
      ASSERT_EQ(c_ref[i], c_avx[i])
          << "avx2 kernel diverged at " << i << " for m=" << m << " k=" << k
          << " n=" << n;
  }
}

TEST(Microkernel, DispatchReportsConsistentState) {
  // simd_enabled() implies both the binary and the CPU carry AVX2; the
  // active kernel string matches the decision.
  if (mk::simd_enabled()) {
    EXPECT_TRUE(mk::compiled_with_avx2());
    EXPECT_TRUE(mk::cpu_has_avx2());
    EXPECT_STREQ(mk::active_kernel(), "avx2");
  } else {
    EXPECT_STREQ(mk::active_kernel(), "scalar");
  }
}

TEST(Microkernel, GemmRandomizedShapesBitwise) {
  util::Rng rng(1234);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t m = static_cast<std::size_t>(rng.randint(1, 9));
    const std::size_t k = static_cast<std::size_t>(rng.randint(1, 33));
    const std::size_t n = static_cast<std::size_t>(rng.randint(1, 40));
    expect_gemm_identical(rng, m, k, n);
  }
}

TEST(Microkernel, GemmVectorRemainderTails) {
  // Every n in [1, 17] crosses the 8-lane boundary somewhere: n < 8 is
  // pure tail, n = 8/16 is pure vector, the rest mix.
  util::Rng rng(77);
  for (std::size_t n = 1; n <= 17; ++n) expect_gemm_identical(rng, 3, 5, n);
}

TEST(Microkernel, GemmZeroRowSkipPreserved) {
  util::Rng rng(9);
  expect_gemm_identical(rng, 6, 12, 19, /*zero_rows=*/true);
  // All-zero A: C must stay exactly the initial accumulator.
  const std::size_t m = 4, k = 7, n = 11;
  std::vector<float> a(m * k, 0.0f);
  std::vector<float> b = random_vec(rng, k * n);
  std::vector<float> c0 = random_vec(rng, m * n);
  std::vector<float> c = c0;
  mk::gemm_acc(a.data(), b.data(), c.data(), m, k, n);
  EXPECT_EQ(c, c0);
}

TEST(Microkernel, GemmDegenerateDims) {
  // m, k or n of zero must be a no-op (no reads, no writes).
  util::Rng rng(5);
  std::vector<float> a = random_vec(rng, 12);
  std::vector<float> b = random_vec(rng, 12);
  std::vector<float> c0 = random_vec(rng, 12);
  std::vector<float> c = c0;
  mk::gemm_acc(a.data(), b.data(), c.data(), 0, 3, 4);
  EXPECT_EQ(c, c0);
  mk::gemm_acc(a.data(), b.data(), c.data(), 3, 0, 4);
  EXPECT_EQ(c, c0);
  mk::gemm_acc(a.data(), b.data(), c.data(), 3, 4, 0);
  EXPECT_EQ(c, c0);
}

TEST(Microkernel, GemmUnalignedOffsets) {
  // The plan executor hands the kernels interior pointers of a flat
  // arena; nothing guarantees 32-byte alignment.  Slice at odd offsets.
  util::Rng rng(31);
  const std::size_t m = 4, k = 6, n = 13;
  std::vector<float> backing = random_vec(rng, 1 + m * k + 3 + k * n + 5 +
                                                   m * n);
  const float* a = backing.data() + 1;
  const float* b = backing.data() + 1 + m * k + 3;
  std::vector<float> c0 = random_vec(rng, m * n + 1);
  std::vector<float> c_ref = c0, c_disp = c0;
  mk::gemm_acc_scalar(a, b, c_ref.data() + 1, m, k, n);
  mk::gemm_acc(a, b, c_disp.data() + 1, m, k, n);
  EXPECT_EQ(c_ref, c_disp);
}

TEST(Microkernel, Avx2ThrowsWhereUnavailable) {
  if (mk::compiled_with_avx2() && mk::cpu_has_avx2())
    GTEST_SKIP() << "AVX2 available; the guard path is not reachable here";
  std::vector<float> a(4, 1.0f), b(4, 1.0f), c(4, 0.0f);
  EXPECT_THROW(mk::gemm_acc_avx2(a.data(), b.data(), c.data(), 2, 2, 2),
               std::runtime_error);
}

/// Naive reference: col[(ci*kh*kw + ki*kw + kj) * (oh*ow) + oy*ow + ox].
std::vector<float> im2col_reference(const std::vector<float>& x,
                                    std::size_t cin, std::size_t h,
                                    std::size_t w, std::size_t kh,
                                    std::size_t kw, std::size_t oh,
                                    std::size_t ow, int stride, int pad_h,
                                    int pad_w) {
  std::vector<float> col(cin * kh * kw * oh * ow, 0.0f);
  for (std::size_t ci = 0; ci < cin; ++ci)
    for (std::size_t ki = 0; ki < kh; ++ki)
      for (std::size_t kj = 0; kj < kw; ++kj)
        for (std::size_t oy = 0; oy < oh; ++oy)
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const long iy = static_cast<long>(oy) * stride - pad_h +
                            static_cast<long>(ki);
            const long ix = static_cast<long>(ox) * stride - pad_w +
                            static_cast<long>(kj);
            float v = 0.0f;
            if (iy >= 0 && iy < static_cast<long>(h) && ix >= 0 &&
                ix < static_cast<long>(w))
              v = x[(ci * h + static_cast<std::size_t>(iy)) * w +
                    static_cast<std::size_t>(ix)];
            col[((ci * kh + ki) * kw + kj) * (oh * ow) + oy * ow + ox] = v;
          }
  return col;
}

TEST(Microkernel, Im2colMatchesReference) {
  util::Rng rng(88);
  struct Case {
    std::size_t cin, h, w, kh, kw;
    int stride, pad_h, pad_w;
  };
  const Case cases[] = {
      {1, 5, 5, 3, 3, 1, 1, 1},   // classic same-pad 3x3
      {2, 6, 4, 1, 1, 1, 0, 0},   // 1x1 kernel, pure channel gather
      {3, 7, 7, 3, 3, 2, 1, 1},   // strided
      {1, 4, 4, 2, 2, 3, 0, 0},   // stride > kernel (skipped pixels)
      {2, 5, 3, 3, 2, 1, 2, 0},   // asymmetric pad, rectangular kernel
  };
  for (const auto& c : cases) {
    const std::size_t oh =
        static_cast<std::size_t>((static_cast<long>(c.h) + 2 * c.pad_h -
                                  static_cast<long>(c.kh)) / c.stride) + 1;
    const std::size_t ow =
        static_cast<std::size_t>((static_cast<long>(c.w) + 2 * c.pad_w -
                                  static_cast<long>(c.kw)) / c.stride) + 1;
    const std::vector<float> x = random_vec(rng, c.cin * c.h * c.w);
    std::vector<float> col(c.cin * c.kh * c.kw * oh * ow, -777.0f);
    mk::im2col(x.data(), c.cin, c.h, c.w, c.kh, c.kw, oh, ow, c.stride,
               c.pad_h, c.pad_w, col.data());
    const std::vector<float> ref = im2col_reference(
        x, c.cin, c.h, c.w, c.kh, c.kw, oh, ow, c.stride, c.pad_h, c.pad_w);
    ASSERT_EQ(col.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
      ASSERT_EQ(col[i], ref[i])
          << "im2col diverged at " << i << " (cin=" << c.cin << " h=" << c.h
          << " w=" << c.w << " kh=" << c.kh << " kw=" << c.kw
          << " stride=" << c.stride << ")";
  }
}

}  // namespace
