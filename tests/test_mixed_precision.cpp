// Mixed-precision PCG: knob parsing, tolerance parity with the all-double
// path, byte-traffic reduction via the deterministic SpMV work counters,
// semi-definite robustness, and bitwise thread-count determinism.
#include <gtest/gtest.h>

#include <cmath>

#include "gen/began.hpp"
#include "pdn/circuit.hpp"
#include "pdn/solver.hpp"
#include "runtime/thread_pool.hpp"
#include "sparse/cg.hpp"
#include "sparse/precision.hpp"
#include "util/rng.hpp"

namespace {

using namespace lmmir;
using namespace lmmir::sparse;

const std::vector<pdn::AssembledSystem>& suite_systems() {
  static const std::vector<pdn::AssembledSystem> systems = [] {
    std::vector<pdn::AssembledSystem> out;
    for (const double side : {30.0, 48.0}) {
      gen::GeneratorConfig cfg;
      cfg.name = "mixed_suite";
      cfg.width_um = cfg.height_um = side;
      cfg.seed = 0xF32Fu + static_cast<std::uint64_t>(side);
      cfg.use_default_stack();
      cfg.total_current = 0.08 * (side * side) / (64.0 * 64.0);
      const spice::Netlist nl = gen::generate_pdn(cfg);
      out.push_back(pdn::assemble_ir_system(pdn::Circuit(nl)));
    }
    return out;
  }();
  return systems;
}

TEST(MixedPrecisionKnob, ParsesStringsAndRoundTrips) {
  EXPECT_EQ(solver_precision_from_string("double"), SolverPrecision::Double);
  EXPECT_EQ(solver_precision_from_string("fp64"), SolverPrecision::Double);
  EXPECT_EQ(solver_precision_from_string("Mixed"), SolverPrecision::Mixed);
  EXPECT_EQ(solver_precision_from_string("f32"), SolverPrecision::Mixed);
  EXPECT_FALSE(solver_precision_from_string("half").has_value());
  for (const auto p : {SolverPrecision::Double, SolverPrecision::Mixed})
    EXPECT_EQ(solver_precision_from_string(to_string(p)), p);
}

TEST(MixedPrecisionStorage, F32MirrorTracksDoubleMatrix) {
  const auto& sys = suite_systems().front();
  const CsrMatrixF32 a32(sys.matrix);
  EXPECT_EQ(a32.dim(), sys.matrix.dim());
  EXPECT_EQ(a32.nnz(), sys.matrix.nnz());
  // f32 values + u32 indices stream strictly fewer bytes per product.
  EXPECT_LT(a32.bytes_per_spmv(), sys.matrix.bytes_per_spmv());

  util::Rng rng(5);
  std::vector<double> x(sys.matrix.dim()), yd, y32;
  for (auto& v : x) v = rng.uniform_double(-1.0, 1.0);
  sys.matrix.multiply(x, yd);
  a32.multiply(x, y32);
  for (std::size_t i = 0; i < yd.size(); ++i) {
    // Demotion loses at most f32 relative precision per entry.
    const double scale = std::max(1.0, std::abs(yd[i]));
    EXPECT_NEAR(y32[i], yd[i], 1e-5 * scale) << "row " << i;
  }
}

TEST(MixedPrecisionSolve, ReachesDoubleToleranceOnGoldenSuite) {
  for (const auto& sys : suite_systems()) {
    for (const auto kind :
         {PreconditionerKind::Jacobi, PreconditionerKind::Ic0,
          PreconditionerKind::Amg}) {
      CgOptions d_opts;
      d_opts.preconditioner = kind;
      const auto ref = conjugate_gradient(sys.matrix, sys.rhs, d_opts);
      ASSERT_TRUE(ref.converged) << to_string(kind);
      ASSERT_EQ(ref.precision, SolverPrecision::Double);

      CgOptions m_opts = d_opts;
      m_opts.precision = SolverPrecision::Mixed;
      const auto res = conjugate_gradient(sys.matrix, sys.rhs, m_opts);
      ASSERT_TRUE(res.converged) << to_string(kind);
      ASSERT_EQ(res.precision, SolverPrecision::Mixed);
      EXPECT_LT(res.residual, m_opts.tolerance);
      EXPECT_GE(res.refinement_steps, 1u);
      ASSERT_EQ(res.x.size(), ref.x.size());
      for (std::size_t i = 0; i < res.x.size(); ++i)
        EXPECT_NEAR(res.x[i], ref.x[i], 1e-8)
            << to_string(kind) << " node " << i;
    }
  }
}

TEST(MixedPrecisionSolve, StreamsFewerSpmvBytesThanDouble) {
  // The acceptance gate's work-count argument at test scale: same matrix,
  // same tolerance, byte traffic measured by the deterministic
  // bytes_per_spmv sums — not timing.
  const auto& sys = suite_systems().back();
  CgOptions d_opts;
  d_opts.preconditioner = PreconditionerKind::Jacobi;
  const auto ref = conjugate_gradient(sys.matrix, sys.rhs, d_opts);
  ASSERT_TRUE(ref.converged);
  ASSERT_GT(ref.spmv_count, 0u);
  ASSERT_GT(ref.spmv_bytes, 0u);

  CgOptions m_opts = d_opts;
  m_opts.precision = SolverPrecision::Mixed;
  const auto res = conjugate_gradient(sys.matrix, sys.rhs, m_opts);
  ASSERT_TRUE(res.converged);
  EXPECT_LT(res.spmv_bytes, ref.spmv_bytes);
}

TEST(MixedPrecisionSolve, PureDoubleRequestIsUntouchedByTheNewPath) {
  // precision = Double must run the classic path: identical iterate
  // stream, zero refinement passes (the bit-exactness contract that keeps
  // the golden checksums valid).
  const auto& sys = suite_systems().front();
  CgOptions opts;
  opts.preconditioner = PreconditionerKind::Ic0;
  const auto a = conjugate_gradient(sys.matrix, sys.rhs, opts);
  opts.precision = SolverPrecision::Double;  // explicit, same meaning
  const auto b = conjugate_gradient(sys.matrix, sys.rhs, opts);
  ASSERT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.refinement_steps, 0u);
  for (std::size_t i = 0; i < a.x.size(); ++i) ASSERT_EQ(a.x[i], b.x[i]);
}

TEST(MixedPrecisionSolve, ZeroRhsAndWarmStartEdges) {
  const auto& sys = suite_systems().front();
  CgOptions opts;
  opts.precision = SolverPrecision::Mixed;
  const std::vector<double> zero(sys.matrix.dim(), 0.0);
  const auto trivial = conjugate_gradient(sys.matrix, zero, opts);
  EXPECT_TRUE(trivial.converged);
  EXPECT_EQ(trivial.iterations, 0u);

  // Warm start from the converged solution: the first refinement residual
  // already satisfies the tolerance, so no inner iterations run.
  const auto cold = conjugate_gradient(sys.matrix, sys.rhs, opts);
  ASSERT_TRUE(cold.converged);
  const auto warm =
      conjugate_gradient(sys.matrix, sys.rhs, opts, nullptr, &cold.x);
  EXPECT_TRUE(warm.converged);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_EQ(warm.iterations, 0u);
  EXPECT_LT(warm.initial_residual, opts.tolerance);
}

TEST(MixedPrecisionBreakdown, SemiDefiniteSystemStaysFinite) {
  const std::size_t n = 48;
  CooBuilder coo(n);  // singular graph Laplacian
  for (std::size_t i = 0; i < n; ++i) {
    double diag = 0.0;
    if (i > 0) {
      coo.add(i, i - 1, -1.0);
      diag += 1.0;
    }
    if (i + 1 < n) {
      coo.add(i, i + 1, -1.0);
      diag += 1.0;
    }
    coo.add(i, i, diag);
  }
  const auto m = CsrMatrix::from_coo(coo);
  std::vector<double> b(n, 0.0);
  b.front() = 1.0;
  b.back() = -1.0;
  CgOptions opts;
  opts.precision = SolverPrecision::Mixed;
  opts.max_iterations = 400;
  const auto res = conjugate_gradient(m, b, opts);
  EXPECT_TRUE(std::isfinite(res.residual));
  for (const double v : res.x) EXPECT_TRUE(std::isfinite(v));
}

/// Restores the global pool to 1 thread even when an ASSERT bails out.
struct ThreadGuard {
  ~ThreadGuard() { runtime::set_global_threads(1); }
};

TEST(MixedPrecisionDeterminism, BitwiseIdentical1Vs4Threads) {
  const auto& sys = suite_systems().back();
  ThreadGuard guard;
  CgOptions opts;
  opts.precision = SolverPrecision::Mixed;
  opts.preconditioner = PreconditionerKind::Jacobi;

  runtime::set_global_threads(1);
  const auto serial = conjugate_gradient(sys.matrix, sys.rhs, opts);
  runtime::set_global_threads(4);
  const auto parallel = conjugate_gradient(sys.matrix, sys.rhs, opts);
  runtime::set_global_threads(1);

  ASSERT_TRUE(serial.converged);
  ASSERT_EQ(serial.iterations, parallel.iterations);
  ASSERT_EQ(serial.refinement_steps, parallel.refinement_steps);
  ASSERT_EQ(serial.spmv_count, parallel.spmv_count);
  ASSERT_EQ(serial.spmv_bytes, parallel.spmv_bytes);
  for (std::size_t i = 0; i < serial.x.size(); ++i)
    ASSERT_EQ(serial.x[i], parallel.x[i]) << "node " << i;
}

}  // namespace
