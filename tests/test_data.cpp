// data: sample assembly, dataset over-sampling, batching, augmentation.
#include <gtest/gtest.h>

#include <filesystem>

#include "data/dataset.hpp"
#include "runtime/thread_pool.hpp"
#include "features/contest_io.hpp"
#include "features/maps.hpp"
#include "gen/began.hpp"
#include "pdn/circuit.hpp"
#include "pdn/raster.hpp"
#include "pdn/solver.hpp"
#include "pointcloud/pool.hpp"

namespace {

using namespace lmmir;

data::SampleOptions tiny_opts() {
  data::SampleOptions o;
  o.input_side = 24;
  o.pc_grid = 4;
  return o;
}

gen::GeneratorConfig tiny_case(std::uint64_t seed = 31) {
  gen::GeneratorConfig cfg;
  cfg.name = "tiny";
  cfg.width_um = 28;
  cfg.height_um = 28;
  cfg.seed = seed;
  cfg.use_default_stack();
  return cfg;
}

TEST(Sample, ShapesAndMetadata) {
  const auto s = data::make_sample(tiny_case(), tiny_opts());
  EXPECT_EQ(s.circuit.shape(), (tensor::Shape{feat::kChannelCount, 24, 24}));
  EXPECT_EQ(s.tokens.shape(), (tensor::Shape{16, pc::kTokenFeatureDim}));
  EXPECT_EQ(s.target.shape(), (tensor::Shape{1, 24, 24}));
  EXPECT_GT(s.vdd, 0.0);
  EXPECT_GT(s.node_count, 0u);
  EXPECT_EQ(s.truth_full.rows(), 28u);
  EXPECT_GE(s.golden_solve_seconds, 0.0);
}

TEST(Sample, TargetScaleInvertible) {
  const auto s = data::make_sample(tiny_case(), tiny_opts());
  // truth_full is percent; target is percent * kTargetScale, pad region 0.
  float max_target = 0;
  for (float v : s.target.data()) max_target = std::max(max_target, v);
  EXPECT_NEAR(max_target / data::kTargetScale, s.truth_full.max(), 0.05f);
}

TEST(Sample, PadVsScalePath) {
  auto opts = tiny_opts();
  // 28 µm die, side 24: scaled; side 48: padded.
  const auto scaled = data::make_sample(tiny_case(), opts);
  EXPECT_TRUE(scaled.adjust.scaled);
  opts.input_side = 48;
  const auto padded = data::make_sample(tiny_case(), opts);
  EXPECT_FALSE(padded.adjust.scaled);
  EXPECT_EQ(padded.circuit.shape()[1], 48);
}

TEST(Sample, MaeUnitConversion) {
  // 1% of 1.1 V = 0.011 V = 110 x 1e-4 V.
  EXPECT_NEAR(data::percent_mae_to_1e4_volts(1.0, 1.1), 110.0, 1e-9);
}

TEST(Dataset, OversamplingCounts) {
  data::DatasetOptions opts;
  opts.sample = tiny_opts();
  opts.fake_cases = 3;
  opts.real_cases = 2;
  opts.fake_oversample = 2;
  opts.real_oversample = 5;
  opts.suite_scale = 0.05;
  const auto ds = data::build_training_dataset(opts);
  EXPECT_EQ(ds.case_count(), 5u);
  EXPECT_EQ(ds.epoch_size(), 3u * 2u + 2u * 5u);
  for (std::size_t idx : ds.epoch) EXPECT_LT(idx, ds.samples.size());
}

TEST(Dataset, Table2TestsetNamesAndOrder) {
  const auto tests = data::build_table2_testset(tiny_opts(), 0.05);
  ASSERT_EQ(tests.size(), 10u);
  EXPECT_EQ(tests.front().name, "testcase7");
  EXPECT_EQ(tests.back().name, "testcase20");
}

TEST(Batch, StacksSamples) {
  const auto s1 = data::make_sample(tiny_case(1), tiny_opts());
  const auto s2 = data::make_sample(tiny_case(2), tiny_opts());
  util::Rng rng(5);
  const auto b = data::make_batch({s1, s2}, {0, 1}, 0.0f, rng);
  EXPECT_EQ(b.circuit.shape(), (tensor::Shape{2, 6, 24, 24}));
  EXPECT_EQ(b.tokens.shape(), (tensor::Shape{2, 16, pc::kTokenFeatureDim}));
  EXPECT_EQ(b.target.shape(), (tensor::Shape{2, 1, 24, 24}));
  // First sample occupies the first block unchanged (no noise).
  for (std::size_t i = 0; i < s1.circuit.numel(); ++i)
    EXPECT_FLOAT_EQ(b.circuit.data()[i], s1.circuit.data()[i]);
}

TEST(Batch, NoiseAugmentationPerturbsOnlyCircuit) {
  const auto s = data::make_sample(tiny_case(3), tiny_opts());
  util::Rng rng(6);
  const auto clean = data::make_batch({s}, {0}, 0.0f, rng);
  const auto noisy = data::make_batch({s}, {0}, 1e-3f, rng);
  double diff = 0;
  for (std::size_t i = 0; i < clean.circuit.numel(); ++i)
    diff += std::abs(static_cast<double>(clean.circuit.data()[i]) -
                     noisy.circuit.data()[i]);
  EXPECT_GT(diff, 0.0);
  for (std::size_t i = 0; i < clean.target.numel(); ++i)
    EXPECT_FLOAT_EQ(clean.target.data()[i], noisy.target.data()[i]);
}

TEST(Batch, EmptyIndicesRejected) {
  util::Rng rng(7);
  EXPECT_THROW(data::make_batch({}, {}, 0.0f, rng), std::invalid_argument);
}

TEST(Sample, ContestDirectoryIngestion) {
  // Export a generated case in contest format, re-ingest it, and check the
  // provided ground truth + maps drive the sample.
  const auto cfg = tiny_case(41);
  const auto nl = gen::generate_pdn(cfg);
  const auto sol = pdn::solve_ir_drop(pdn::Circuit(nl));
  const auto ir = pdn::rasterize_ir_drop(nl, sol);
  const auto maps = feat::compute_feature_maps(nl);
  const std::string dir = "contest_sample_tmp";
  feat::write_contest_case(dir, nl, maps, ir);

  const auto s = data::make_sample_from_contest_dir(dir, tiny_opts());
  const auto direct = data::make_sample(nl, "direct", tiny_opts());
  // Same ground truth (volts -> percent) up to CSV round-off.
  EXPECT_NEAR(s.truth_full.max(), direct.truth_full.max(), 0.05f);
  EXPECT_EQ(s.circuit.shape(), direct.circuit.shape());
  // Channels 0-2 come from the CSVs; they match the direct build closely.
  double diff = 0;
  for (std::size_t i = 0; i < 3u * 24u * 24u; ++i)
    diff += std::abs(static_cast<double>(s.circuit.data()[i]) -
                     direct.circuit.data()[i]);
  EXPECT_LT(diff / (3.0 * 24 * 24), 1e-3);
  std::filesystem::remove_all(dir);
}

TEST(SliceChannels, SelectsLeadingChannels) {
  const auto s = data::make_sample(tiny_case(4), tiny_opts());
  util::Rng rng(8);
  const auto b = data::make_batch({s}, {0}, 0.0f, rng);
  const auto three = data::slice_channels(b.circuit, 3);
  EXPECT_EQ(three.shape(), (tensor::Shape{1, 3, 24, 24}));
  // Channel 0 (current map) preserved exactly.
  for (int i = 0; i < 24 * 24; ++i)
    EXPECT_FLOAT_EQ(three.data()[static_cast<std::size_t>(i)],
                    b.circuit.data()[static_cast<std::size_t>(i)]);
  const auto all = data::slice_channels(b.circuit, 6);
  EXPECT_EQ(all.shape(), b.circuit.shape());
  EXPECT_THROW(data::slice_channels(b.circuit, 7), std::invalid_argument);
  EXPECT_THROW(data::slice_channels(b.circuit, 0), std::invalid_argument);
}

TEST(SliceChannels, EdgeCases) {
  const auto s = data::make_sample(tiny_case(9), tiny_opts());
  util::Rng rng(12);
  const auto b = data::make_batch({s}, {0}, 0.0f, rng);

  // k == 0 and negative k are rejected, never silently empty.
  EXPECT_THROW(data::slice_channels(b.circuit, 0), std::invalid_argument);
  EXPECT_THROW(data::slice_channels(b.circuit, -1), std::invalid_argument);

  // k == channel count is a pass-through IDENTITY: the very same impl,
  // not a copy (the trainer relies on this for the 6-channel model).
  const auto full = data::slice_channels(b.circuit, 6);
  EXPECT_EQ(full.impl().get(), b.circuit.impl().get());

  // A slice of a slice (the "already narrowed" input): values must match
  // the leading channels of the original stack.
  const auto three = data::slice_channels(b.circuit, 3);
  const auto two = data::slice_channels(three, 2);
  EXPECT_EQ(two.shape(), (tensor::Shape{1, 2, 24, 24}));
  for (std::size_t i = 0; i < two.numel(); ++i)
    EXPECT_FLOAT_EQ(two.data()[i], b.circuit.data()[i]);

  // Non-4D input is rejected.
  EXPECT_THROW(data::slice_channels(s.circuit, 3), std::invalid_argument);
}

TEST(Batch, NoiseDeterministicAcrossThreadCounts) {
  const auto s1 = data::make_sample(tiny_case(11), tiny_opts());
  const auto s2 = data::make_sample(tiny_case(12), tiny_opts());
  const std::size_t saved_threads = runtime::global_threads();

  runtime::set_global_threads(1);
  util::Rng r1(99);
  const auto serial = data::make_batch({s1, s2}, {0, 1}, 5e-3f, r1);

  runtime::set_global_threads(4);
  util::Rng r2(99);
  const auto threaded = data::make_batch({s1, s2}, {0, 1}, 5e-3f, r2);
  runtime::set_global_threads(saved_threads);

  // Same seed => bitwise-equal batch regardless of pool size (noise is
  // drawn from one sequential stream, never split across workers).
  EXPECT_EQ(serial.circuit.data(), threaded.circuit.data());
  EXPECT_EQ(serial.tokens.data(), threaded.tokens.data());
  EXPECT_EQ(serial.target.data(), threaded.target.data());
}

TEST(Batch, MakeBatchIntoReusesUniquelyOwnedSlots) {
  const auto s1 = data::make_sample(tiny_case(13), tiny_opts());
  const auto s2 = data::make_sample(tiny_case(14), tiny_opts());
  util::Rng rng(21);

  data::Batch out;
  data::make_batch_into({s1, s2}, {0, 1}, 0.0f, rng, out);
  const std::uint64_t after_first = data::batch_tensor_allocations();
  const auto* circuit_impl = out.circuit.impl().get();

  // Uniquely owned + same size: reused in place, zero new allocations.
  data::make_batch_into({s1, s2}, {1, 0}, 1e-3f, rng, out);
  EXPECT_EQ(data::batch_tensor_allocations(), after_first);
  EXPECT_EQ(out.circuit.impl().get(), circuit_impl);

  // Ragged tail (smaller batch) still fits the retained capacity.
  data::make_batch_into({s1, s2}, {1}, 0.0f, rng, out);
  EXPECT_EQ(data::batch_tensor_allocations(), after_first);
  EXPECT_EQ(out.circuit.shape(), (tensor::Shape{1, 6, 24, 24}));
  for (std::size_t i = 0; i < s2.circuit.numel(); ++i)
    ASSERT_EQ(out.circuit.data()[i], s2.circuit.data()[i]);

  // A second owner (e.g. a live autograd tape) forces a fresh tensor —
  // reuse must never scribble over data someone else can still read.
  const tensor::Tensor retained = out.circuit;
  data::make_batch_into({s1, s2}, {0, 1}, 0.0f, rng, out);
  EXPECT_EQ(data::batch_tensor_allocations(), after_first + 1);
  EXPECT_NE(out.circuit.impl().get(), retained.impl().get());
  EXPECT_EQ(retained.shape(), (tensor::Shape{1, 6, 24, 24}));  // untouched
}

TEST(Batch, AllocatingOverloadMatchesIntoVariant) {
  const auto s = data::make_sample(tiny_case(15), tiny_opts());
  util::Rng r1(77), r2(77);
  const auto a = data::make_batch({s}, {0}, 2e-3f, r1);
  data::Batch b;
  data::make_batch_into({s}, {0}, 2e-3f, r2, b);
  EXPECT_EQ(a.circuit.data(), b.circuit.data());
  EXPECT_EQ(a.tokens.data(), b.tokens.data());
  EXPECT_EQ(a.target.data(), b.target.data());
}

}  // namespace
