// TensorArena: the inference-path memory recycler.  Steady-state op
// sequences must be allocation-free, results must be bitwise identical
// with the arena on or off, training/autograd must never adopt into an
// arena, and escaped tensors must survive arena destruction.  Also
// covers the engage condition's ingredients: NoGradGuard nesting and the
// thread-locality of grad mode / active arenas across pool workers.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <set>
#include <vector>

#include "models/registry.hpp"
#include "pointcloud/pool.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/arena.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace {

using namespace lmmir;
using tensor::Tensor;

// ---- NoGradGuard semantics (the arena's engage condition) -------------

TEST(NoGradGuard, NestingRestoresCorrectly) {
  ASSERT_TRUE(tensor::grad_enabled());
  {
    tensor::NoGradGuard outer;
    EXPECT_FALSE(tensor::grad_enabled());
    {
      tensor::NoGradGuard inner;
      EXPECT_FALSE(tensor::grad_enabled());
    }
    // The inner guard must restore the *outer guard's* state, not the
    // default: still disabled here.
    EXPECT_FALSE(tensor::grad_enabled());
  }
  EXPECT_TRUE(tensor::grad_enabled());
}

TEST(NoGradGuard, ThreadLocalAcrossPoolWorkers) {
  runtime::ThreadPool pool(2, runtime::WorkerInit{});
  tensor::NoGradGuard no_grad;  // disables grad on THIS thread only
  ASSERT_FALSE(tensor::grad_enabled());

  // A pool worker starts with its own thread-local default: enabled.
  auto fut = pool.submit([] {
    EXPECT_TRUE(tensor::grad_enabled());
    // A guard taken on the worker is scoped to the worker.
    tensor::NoGradGuard worker_guard;
    EXPECT_FALSE(tensor::grad_enabled());
  });
  fut.get();

  // Neither the worker's default nor its guard leaked into the caller.
  EXPECT_FALSE(tensor::grad_enabled());
  auto fut2 = pool.submit([] { EXPECT_TRUE(tensor::grad_enabled()); });
  fut2.get();
}

TEST(NoGradGuard, OpsRecordNoTapeUnderGuard) {
  Tensor w = Tensor::full({2, 2}, 0.5f, /*requires_grad=*/true);
  tensor::NoGradGuard no_grad;
  Tensor y = tensor::mul(w, w);
  EXPECT_FALSE(y.requires_grad());
  EXPECT_TRUE(y.impl()->parents.empty());
}

// ---- per-worker arenas on the runtime pool ----------------------------
// Arena installation rides the generic worker-init hook (the pool itself
// knows nothing about tensors); tensor::WorkerArenas is the observable
// registry form of the hook.

TEST(WorkerArena, InstalledPerWorkerAndDistinct) {
  tensor::WorkerArenas arenas;
  runtime::ThreadPool pool(2, arenas.init());
  // The pool constructor waits for every worker's init: the registry is
  // fully populated here.
  ASSERT_NE(arenas.arena(0), nullptr);
  ASSERT_NE(arenas.arena(1), nullptr);
  EXPECT_NE(arenas.arena(0), arenas.arena(1));
  EXPECT_EQ(arenas.arena(2), nullptr);  // out of range

  // Jobs observe their executing worker's arena as the active one, and
  // the caller's thread is unaffected.
  EXPECT_EQ(tensor::active_arena(), nullptr);
  std::set<tensor::TensorArena*> seen;
  for (int i = 0; i < 16; ++i) {
    auto fut = pool.submit([&seen] {
      tensor::TensorArena* a = tensor::active_arena();
      ASSERT_NE(a, nullptr);
      seen.insert(a);  // futures serialize with get() below: no race
    });
    fut.get();
  }
  for (tensor::TensorArena* a : seen)
    EXPECT_TRUE(a == arenas.arena(0) || a == arenas.arena(1));
  EXPECT_EQ(tensor::active_arena(), nullptr);
}

TEST(WorkerArena, DisabledPoolInstallsNone) {
  runtime::ThreadPool pool(1, runtime::WorkerInit{});
  auto fut = pool.submit([] { EXPECT_EQ(tensor::active_arena(), nullptr); });
  fut.get();
}

TEST(WorkerArena, RegistryRefusesSecondPool) {
  // Reusing one registry for a second pool must not free arenas a live
  // worker still holds: the hook refuses, the second pool's workers run
  // arena-less, and the first pool's arenas stay valid.
  tensor::WorkerArenas arenas;
  runtime::ThreadPool first(2, arenas.init());
  tensor::TensorArena* a0 = arenas.arena(0);
  ASSERT_NE(a0, nullptr);

  runtime::ThreadPool second(2, arenas.init());  // init throws, logged
  auto fut = second.submit([] { EXPECT_EQ(tensor::active_arena(), nullptr); });
  fut.get();
  EXPECT_EQ(arenas.arena(0), a0);  // untouched
  auto fut2 = first.submit([] { EXPECT_NE(tensor::active_arena(), nullptr); });
  fut2.get();
}

TEST(WorkerArena, SelfOwnedInitInstallsAndUninstalls) {
  // The env-independent forced form used by A/B benches: arenas exist
  // only on the workers, owned by the hook's closures.
  runtime::ThreadPool pool(2, tensor::worker_arena_init(true));
  auto fut = pool.submit([] { EXPECT_NE(tensor::active_arena(), nullptr); });
  fut.get();
  EXPECT_EQ(tensor::active_arena(), nullptr);  // caller unaffected

  runtime::ThreadPool off(2, tensor::worker_arena_init(false));
  auto fut2 = off.submit([] { EXPECT_EQ(tensor::active_arena(), nullptr); });
  fut2.get();
}

// ---- adoption rules ---------------------------------------------------

TEST(TensorArena, AdoptsOnlyUnderNoGrad) {
  tensor::TensorArena arena;
  Tensor a = Tensor::full({4}, 2.0f);

  {
    tensor::ArenaScope scope(&arena);
    // Grad mode on: ops must keep the owning path.
    Tensor y = tensor::relu(a);
    EXPECT_EQ(arena.live_nodes(), 0u);
    EXPECT_EQ(arena.stats().node_allocs, 0u);

    tensor::NoGradGuard no_grad;
    Tensor z = tensor::relu(a);
    EXPECT_EQ(arena.live_nodes(), 1u);
    EXPECT_EQ(arena.stats().node_allocs, 1u);
  }
  EXPECT_EQ(arena.live_nodes(), 0u);  // z released its node on scope exit
}

TEST(TensorArena, RequiresGradTensorsNeverAdopted) {
  tensor::TensorArena arena;
  tensor::ArenaScope scope(&arena);
  tensor::NoGradGuard no_grad;
  Tensor param =
      Tensor::from_data({3}, {1.0f, 2.0f, 3.0f}, /*requires_grad=*/true);
  EXPECT_EQ(arena.live_nodes(), 0u);
  EXPECT_TRUE(param.requires_grad());
}

TEST(TensorArena, NoScopeMeansOwningAllocations) {
  tensor::NoGradGuard no_grad;
  ASSERT_EQ(tensor::active_arena(), nullptr);
  Tensor y = tensor::relu(Tensor::full({4}, -1.0f));
  EXPECT_EQ(y.numel(), 4u);  // plain path still works
}

// ---- recycling --------------------------------------------------------

/// A representative op chain (conv + matmul + softmax + elementwise) run
/// under the arena; returns the final value for identity checks.
std::vector<float> run_op_chain(util::Rng& rng) {
  Tensor img = Tensor::randn({1, 3, 8, 8}, rng);
  Tensor kernel = Tensor::randn({4, 3, 3, 3}, rng);
  Tensor bias = Tensor::zeros({4});
  Tensor conv = tensor::conv2d(img, kernel, bias, 1, 1);
  Tensor pooled = tensor::maxpool2d(conv, 2, 2);
  Tensor flat = tensor::reshape(pooled, {4, 16});
  Tensor wt = Tensor::randn({16, 5}, rng);
  Tensor logits = tensor::matmul(flat, wt);
  Tensor soft = tensor::softmax_lastdim(logits);
  return tensor::sum_all(soft).data();
}

TEST(TensorArena, SteadyStateIsAllocationFree) {
  tensor::TensorArena arena;
  util::Rng rng(7);
  {
    tensor::NoGradGuard no_grad;
    tensor::ArenaScope scope(&arena);
    run_op_chain(rng);  // warm-up: pools fill here
  }
  arena.reset();
  const std::size_t warm = arena.stats().heap_allocations();
  EXPECT_GT(warm, 0u);

  for (int pass = 0; pass < 3; ++pass) {
    tensor::NoGradGuard no_grad;
    tensor::ArenaScope scope(&arena);
    run_op_chain(rng);
    tensor::active_arena()->reset();
    ASSERT_EQ(arena.stats().heap_allocations(), warm)
        << "pass " << pass << " allocated";
  }
  EXPECT_GT(arena.stats().allocations_saved(), 0u);
  EXPECT_EQ(arena.live_nodes(), 0u);
  EXPECT_GT(arena.stats().bytes_reserved, 0u);
  EXPECT_EQ(arena.stats().resets, 4u);
}

TEST(TensorArena, ResultsBitwiseIdenticalOnAndOff) {
  auto run = [](tensor::TensorArena* arena) {
    util::Rng rng(99);  // same stream both ways
    tensor::NoGradGuard no_grad;
    tensor::ArenaScope scope(arena);
    std::vector<std::vector<float>> outs;
    for (int i = 0; i < 2; ++i) {
      outs.push_back(run_op_chain(rng));
      if (arena) arena->reset();
    }
    return outs;
  };
  const auto off = run(nullptr);
  tensor::TensorArena arena;
  const auto on = run(&arena);
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    ASSERT_EQ(off[i].size(), on[i].size());
    for (std::size_t k = 0; k < off[i].size(); ++k)
      ASSERT_EQ(off[i][k], on[i][k]) << "pass " << i << " elem " << k;
  }
}

TEST(TensorArena, ModelForwardBitwiseIdenticalOnAndOff) {
  auto model = models::make_model("LMM-IR", 17);
  model->set_training(false);
  util::Rng rng(5);
  Tensor circuit = Tensor::randn({1, model->in_channels(), 16, 16}, rng);
  Tensor tokens = Tensor::randn({1, 9, pc::kTokenFeatureDim}, rng);

  const std::vector<float> off = model->predict(circuit, tokens).data();
  tensor::TensorArena arena;
  std::vector<float> on;
  {
    tensor::ArenaScope scope(&arena);
    on = model->predict(circuit, tokens).data();
  }
  arena.reset();
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t k = 0; k < off.size(); ++k) ASSERT_EQ(off[k], on[k]);
  EXPECT_GT(arena.stats().node_allocs, 0u);  // the pass really used it
  EXPECT_EQ(arena.live_nodes(), 0u);
}

// ---- lifetime safety --------------------------------------------------

TEST(TensorArena, EscapedTensorSurvivesArenaDestruction) {
  Tensor escaped;
  {
    tensor::TensorArena arena;
    tensor::NoGradGuard no_grad;
    tensor::ArenaScope scope(&arena);
    escaped = tensor::add_scalar(Tensor::zeros({3}), 1.5f);
    EXPECT_EQ(arena.live_nodes(), 1u);
  }  // arena destroyed while `escaped` still references its node
  ASSERT_EQ(escaped.numel(), 3u);
  for (float v : escaped.data()) EXPECT_EQ(v, 1.5f);  // ASan-checked
}

TEST(TensorArena, LiveNodePinsItsSlot) {
  tensor::TensorArena arena;
  tensor::NoGradGuard no_grad;
  tensor::ArenaScope scope(&arena);
  Tensor held = Tensor::full({4}, 3.0f);
  arena.reset();
  // A new tensor must not recycle the held slot.
  Tensor fresh = Tensor::full({4}, 7.0f);
  for (float v : held.data()) EXPECT_EQ(v, 3.0f);
  for (float v : fresh.data()) EXPECT_EQ(v, 7.0f);
  EXPECT_EQ(arena.live_nodes(), 2u);
}

// ---- scratch ----------------------------------------------------------

TEST(TensorArena, ScratchBuffersPoolAndDetach) {
  tensor::TensorArena arena;
  tensor::ArenaScope scope(&arena);
  {
    tensor::ScratchBuffer s(64);
    EXPECT_EQ(s.size(), 64u);
    for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(s[i], 0.0f);
  }
  const std::size_t after_first = arena.stats().scratch_allocs;
  {
    tensor::ScratchBuffer s(32);  // capacity-fit reuse of the 64-buffer
    EXPECT_EQ(arena.stats().scratch_allocs, after_first);
    EXPECT_GT(arena.stats().scratch_reuses, 0u);
  }
  {
    tensor::ScratchBuffer s(16);
    std::vector<float> taken = s.take();  // leaves arena custody
    EXPECT_EQ(taken.size(), 16u);
  }
  // The taken buffer did not return: the float pool is now empty, so the
  // next acquisition must heap-allocate (scratch_allocs increments).
  const std::size_t before_realloc = arena.stats().scratch_allocs;
  {
    tensor::ScratchBuffer s(16);
    EXPECT_EQ(arena.stats().scratch_allocs, before_realloc + 1);
  }
  // Index scratch lives in its own pool.
  tensor::IndexScratchBuffer idx(8);
  idx[0] = 42;
  EXPECT_EQ(idx[0], 42u);
}

}  // namespace
