#pragma once
// Numeric gradient checking for the autograd engine: central differences
// against the analytic backward pass.
#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/tensor.hpp"

namespace lmmir::testing {

/// Check d(scalar fn)/d(inputs[i]) for every input element against central
/// differences.  fn must rebuild the graph from the given inputs each call
/// and return a scalar tensor.
inline void expect_gradients_match(
    std::vector<tensor::Tensor> inputs,
    const std::function<tensor::Tensor(const std::vector<tensor::Tensor>&)>& fn,
    float eps = 1e-2f, float rtol = 5e-2f, float atol = 5e-3f) {
  for (auto& in : inputs) in.set_requires_grad(true);

  tensor::Tensor out = fn(inputs);
  ASSERT_EQ(out.numel(), 1u) << "gradcheck target must be scalar";
  out.backward();

  for (std::size_t t = 0; t < inputs.size(); ++t) {
    auto& input = inputs[t];
    ASSERT_FALSE(input.grad().empty())
        << "input " << t << " received no gradient";
    for (std::size_t i = 0; i < input.numel(); ++i) {
      const float saved = input.data()[i];
      input.data()[i] = saved + eps;
      const float up = fn(inputs).item();
      input.data()[i] = saved - eps;
      const float down = fn(inputs).item();
      input.data()[i] = saved;
      const float numeric = (up - down) / (2.0f * eps);
      const float analytic = input.grad()[i];
      const float tol = atol + rtol * std::abs(numeric);
      EXPECT_NEAR(analytic, numeric, tol)
          << "input " << t << " element " << i;
    }
  }
}

}  // namespace lmmir::testing
