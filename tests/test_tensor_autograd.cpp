// Numeric gradient checks for every differentiable op: the analytic
// backward pass must match central differences.  These tests are the
// ground truth for the training substrate — if they pass, the optimizer
// sees correct gradients for every architecture built from these ops.
#include <gtest/gtest.h>

#include "gradcheck.hpp"
#include "tensor/ops.hpp"

namespace {

using lmmir::tensor::Shape;
using lmmir::tensor::Tensor;
using lmmir::testing::expect_gradients_match;
using lmmir::util::Rng;
namespace ops = lmmir::tensor;

Tensor rand_tensor(const Shape& shape, Rng& rng, float stddev = 1.0f) {
  return Tensor::randn(shape, rng, stddev);
}

TEST(Autograd, AddSubMul) {
  Rng rng(1);
  auto a = rand_tensor({2, 3}, rng);
  auto b = rand_tensor({2, 3}, rng);
  expect_gradients_match({a, b}, [](const std::vector<Tensor>& in) {
    return ops::sum_all(ops::mul(ops::add(in[0], in[1]), ops::sub(in[0], in[1])));
  });
}

TEST(Autograd, ScaleAddScalarNeg) {
  Rng rng(2);
  auto a = rand_tensor({4}, rng);
  expect_gradients_match({a}, [](const std::vector<Tensor>& in) {
    return ops::sum_all(ops::neg(ops::add_scalar(ops::scale(in[0], 2.5f), 1.0f)));
  });
}

TEST(Autograd, ReluLeakySigmoidTanh) {
  Rng rng(3);
  auto a = rand_tensor({3, 4}, rng);
  // Shift away from 0 so the ReLU kink doesn't poison central differences.
  for (auto& v : a.data())
    if (std::abs(v) < 0.05f) v += 0.1f;
  expect_gradients_match({a}, [](const std::vector<Tensor>& in) {
    auto y = ops::relu(in[0]);
    y = ops::add(y, ops::leaky_relu(in[0], 0.1f));
    y = ops::add(y, ops::sigmoid(in[0]));
    y = ops::add(y, ops::tanh_act(in[0]));
    return ops::sum_all(y);
  });
}

TEST(Autograd, SoftmaxLastdim) {
  Rng rng(4);
  auto a = rand_tensor({2, 5}, rng);
  auto w = rand_tensor({2, 5}, rng);  // weight the entries so grads differ
  expect_gradients_match({a}, [w](const std::vector<Tensor>& in) {
    return ops::sum_all(ops::mul(ops::softmax_lastdim(in[0]), w));
  });
}

TEST(Autograd, ReshapeConcatSlice) {
  Rng rng(5);
  auto a = rand_tensor({2, 3}, rng);
  auto b = rand_tensor({2, 2}, rng);
  expect_gradients_match({a, b}, [](const std::vector<Tensor>& in) {
    auto cat = ops::concat(in[0], in[1], 1);              // [2,5]
    auto sl = ops::slice_axis(cat, 1, 1, 3);              // [2,3]
    auto rs = ops::reshape(sl, {3, 2});
    return ops::mean_all(ops::mul(rs, rs));
  });
}

TEST(Autograd, TransposeLast2) {
  Rng rng(6);
  auto a = rand_tensor({2, 3, 4}, rng);
  auto w = rand_tensor({2, 4, 3}, rng);
  expect_gradients_match({a}, [w](const std::vector<Tensor>& in) {
    return ops::sum_all(ops::mul(ops::transpose_last2(in[0]), w));
  });
}

TEST(Autograd, MatmulLinear) {
  Rng rng(7);
  auto a = rand_tensor({3, 4}, rng);
  auto b = rand_tensor({4, 2}, rng);
  expect_gradients_match({a, b}, [](const std::vector<Tensor>& in) {
    return ops::sum_all(ops::matmul(in[0], in[1]));
  });

  auto x = rand_tensor({2, 3, 4}, rng);  // [B,T,in]
  auto w = rand_tensor({5, 4}, rng);
  auto bias = rand_tensor({5}, rng);
  expect_gradients_match({x, w, bias}, [](const std::vector<Tensor>& in) {
    return ops::mean_all(ops::linear(in[0], in[1], in[2]));
  });
}

TEST(Autograd, Bmm) {
  Rng rng(8);
  auto a = rand_tensor({2, 3, 4}, rng);
  auto b = rand_tensor({2, 4, 2}, rng);
  expect_gradients_match({a, b}, [](const std::vector<Tensor>& in) {
    auto y = ops::bmm(in[0], in[1]);
    return ops::sum_all(ops::mul(y, y));
  });
}

TEST(Autograd, BiasAdds) {
  Rng rng(9);
  auto x = rand_tensor({2, 3, 4}, rng);
  auto b = rand_tensor({4}, rng);
  expect_gradients_match({x, b}, [](const std::vector<Tensor>& in) {
    return ops::sum_all(
        ops::mul(ops::add_bias_lastdim(in[0], in[1]),
                 ops::add_bias_lastdim(in[0], in[1])));
  });

  auto img = rand_tensor({2, 3, 2, 2}, rng);
  auto cb = rand_tensor({3}, rng);
  expect_gradients_match({img, cb}, [](const std::vector<Tensor>& in) {
    auto y = ops::add_bias_channels(in[0], in[1]);
    return ops::mean_all(ops::mul(y, y));
  });
}

TEST(Autograd, MulBroadcastChannel) {
  Rng rng(10);
  auto x = rand_tensor({2, 3, 2, 2}, rng);
  auto a = rand_tensor({2, 1, 2, 2}, rng);
  expect_gradients_match({x, a}, [](const std::vector<Tensor>& in) {
    return ops::sum_all(ops::mul_broadcast_channel(in[0], in[1]));
  });
}

TEST(Autograd, Losses) {
  Rng rng(11);
  auto p = rand_tensor({2, 3}, rng);
  auto t = rand_tensor({2, 3}, rng);
  expect_gradients_match({p}, [t](const std::vector<Tensor>& in) {
    return ops::mse_loss(in[0], t);
  });
  // keep L1 away from zero-crossings
  auto p2 = rand_tensor({2, 3}, rng);
  for (std::size_t i = 0; i < p2.numel(); ++i)
    p2.data()[i] = t.data()[i] + (p2.data()[i] > 0 ? 1.0f : -1.0f);
  expect_gradients_match({p2}, [t](const std::vector<Tensor>& in) {
    return ops::l1_loss(in[0], t);
  });
}

TEST(Autograd, Conv2d) {
  Rng rng(12);
  auto x = rand_tensor({2, 2, 5, 5}, rng);
  auto w = rand_tensor({3, 2, 3, 3}, rng);
  auto b = rand_tensor({3}, rng);
  expect_gradients_match({x, w, b}, [](const std::vector<Tensor>& in) {
    auto y = ops::conv2d(in[0], in[1], in[2], 1, 1);
    return ops::mean_all(ops::mul(y, y));
  });
}

TEST(Autograd, Conv2dStridedRectPad) {
  Rng rng(13);
  auto x = rand_tensor({1, 2, 6, 6}, rng);
  auto w = rand_tensor({2, 2, 1, 5}, rng);  // 1x5 horizontal kernel
  auto b = rand_tensor({2}, rng);
  expect_gradients_match({x, w, b}, [](const std::vector<Tensor>& in) {
    auto y = ops::conv2d(in[0], in[1], in[2], 1, 0, 2);
    return ops::mean_all(ops::mul(y, y));
  });
}

TEST(Autograd, ConvTranspose2d) {
  Rng rng(14);
  auto x = rand_tensor({2, 3, 3, 3}, rng);
  auto w = rand_tensor({3, 2, 2, 2}, rng);
  auto b = rand_tensor({2}, rng);
  expect_gradients_match({x, w, b}, [](const std::vector<Tensor>& in) {
    auto y = ops::conv_transpose2d(in[0], in[1], in[2], 2, 0);
    return ops::mean_all(ops::mul(y, y));
  });
}

TEST(Autograd, MaxPoolUpsample) {
  Rng rng(15);
  auto x = rand_tensor({1, 2, 4, 4}, rng);
  // Spread values so the argmax is stable under the probe epsilon.
  for (std::size_t i = 0; i < x.numel(); ++i)
    x.data()[i] += 0.3f * static_cast<float>(i % 7);
  expect_gradients_match({x}, [](const std::vector<Tensor>& in) {
    auto y = ops::maxpool2d(in[0], 2, 2);
    y = ops::upsample_nearest2x(y);
    return ops::mean_all(ops::mul(y, y));
  });
}

TEST(Autograd, BatchNormTraining) {
  Rng rng(16);
  auto x = rand_tensor({2, 2, 3, 3}, rng);
  auto gamma = rand_tensor({2}, rng);
  auto beta = rand_tensor({2}, rng);
  auto target = rand_tensor({2, 2, 3, 3}, rng);
  expect_gradients_match(
      {x, gamma, beta},
      [target](const std::vector<Tensor>& in) {
        std::vector<float> rm(2, 0.0f), rv(2, 1.0f);
        auto y = ops::batch_norm2d(in[0], in[1], in[2], rm, rv,
                                   /*training=*/true);
        return ops::mse_loss(y, target);
      },
      /*eps=*/1e-2f, /*rtol=*/8e-2f, /*atol=*/8e-3f);
}

TEST(Autograd, BatchNormEval) {
  Rng rng(17);
  auto x = rand_tensor({2, 2, 3, 3}, rng);
  auto gamma = rand_tensor({2}, rng);
  auto beta = rand_tensor({2}, rng);
  std::vector<float> rm = {0.2f, -0.1f};
  std::vector<float> rv = {1.5f, 0.7f};
  expect_gradients_match({x, gamma, beta},
                         [&rm, &rv](const std::vector<Tensor>& in) {
                           auto rm_copy = rm;
                           auto rv_copy = rv;
                           auto y = ops::batch_norm2d(in[0], in[1], in[2],
                                                      rm_copy, rv_copy,
                                                      /*training=*/false);
                           return ops::mean_all(ops::mul(y, y));
                         });
}

TEST(Autograd, LayerNorm) {
  Rng rng(18);
  auto x = rand_tensor({2, 3, 4}, rng);
  auto gamma = rand_tensor({4}, rng);
  auto beta = rand_tensor({4}, rng);
  auto target = rand_tensor({2, 3, 4}, rng);
  expect_gradients_match(
      {x, gamma, beta},
      [target](const std::vector<Tensor>& in) {
        return ops::mse_loss(
            ops::layer_norm_lastdim(in[0], in[1], in[2]), target);
      },
      /*eps=*/1e-2f, /*rtol=*/8e-2f, /*atol=*/8e-3f);
}

// Parameterized sweep: conv2d gradcheck across kernel/stride/pad combos.
struct ConvCase {
  int cin, cout, size, kernel, stride, pad;
};

class ConvSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvSweep, GradientsMatch) {
  const auto p = GetParam();
  Rng rng(100 + p.kernel * 10 + p.stride);
  auto x = rand_tensor({1, p.cin, p.size, p.size}, rng);
  auto w = rand_tensor({p.cout, p.cin, p.kernel, p.kernel}, rng);
  auto b = rand_tensor({p.cout}, rng);
  expect_gradients_match({x, w, b}, [p](const std::vector<Tensor>& in) {
    auto y = ops::conv2d(in[0], in[1], in[2], p.stride, p.pad);
    return ops::mean_all(ops::mul(y, y));
  });
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvSweep,
    ::testing::Values(ConvCase{1, 1, 4, 1, 1, 0},   // pointwise
                      ConvCase{2, 3, 5, 3, 1, 1},   // same-size
                      ConvCase{1, 2, 6, 3, 2, 1},   // strided
                      ConvCase{2, 1, 7, 5, 1, 2},   // large kernel
                      ConvCase{3, 2, 4, 2, 2, 0},   // even kernel, stride 2
                      ConvCase{1, 1, 6, 7, 1, 3})); // kernel > eff. input

// Parameterized sweep: attention-sized bmm/softmax chains.
class AttentionShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(AttentionShapeSweep, ScaledDotProductGradients) {
  const auto [tq, tk, d] = GetParam();
  Rng rng(200 + tq + tk + d);
  auto q = rand_tensor({1, tq, d}, rng, 0.5f);
  auto k = rand_tensor({1, tk, d}, rng, 0.5f);
  auto v = rand_tensor({1, tk, d}, rng, 0.5f);
  expect_gradients_match(
      {q, k, v},
      [](const std::vector<Tensor>& in) {
        auto scores = ops::scale(
            ops::bmm(in[0], ops::transpose_last2(in[1])), 0.5f);
        auto y = ops::bmm(ops::softmax_lastdim(scores), in[2]);
        return ops::mean_all(ops::mul(y, y));
      },
      /*eps=*/1e-2f, /*rtol=*/8e-2f, /*atol=*/8e-3f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, AttentionShapeSweep,
                         ::testing::Values(std::make_tuple(2, 2, 4),
                                           std::make_tuple(3, 5, 4),
                                           std::make_tuple(1, 7, 6),
                                           std::make_tuple(4, 1, 2)));

TEST(Autograd, GradAccumulatesAcrossReuse) {
  // The same tensor used twice must receive the sum of both paths.
  auto a = Tensor::full({2}, 3.0f, /*requires_grad=*/true);
  auto y = ops::sum_all(ops::add(a, a));
  y.backward();
  ASSERT_EQ(a.grad().size(), 2u);
  EXPECT_FLOAT_EQ(a.grad()[0], 2.0f);
  EXPECT_FLOAT_EQ(a.grad()[1], 2.0f);
}

TEST(Autograd, NoGradGuardBuildsNoTape) {
  auto a = Tensor::full({2}, 1.0f, /*requires_grad=*/true);
  lmmir::tensor::NoGradGuard guard;
  auto y = ops::sum_all(ops::scale(a, 2.0f));
  EXPECT_FALSE(y.requires_grad());
  EXPECT_TRUE(y.impl()->parents.empty());
}

TEST(Autograd, BackwardRequiresScalar) {
  auto a = Tensor::full({2, 2}, 1.0f, /*requires_grad=*/true);
  auto y = ops::scale(a, 2.0f);
  EXPECT_THROW(y.backward(), std::logic_error);
}

}  // namespace
