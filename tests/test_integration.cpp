// Integration: the full pipeline end to end — generate -> SPICE text ->
// parse -> features + point cloud -> golden solve -> train -> predict ->
// score; plus the core::Pipeline facade and cross-module consistency.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/pipeline.hpp"
#include "models/lmmir_model.hpp"
#include "pdn/circuit.hpp"
#include "pdn/raster.hpp"
#include "pdn/solver.hpp"
#include "spice/parser.hpp"
#include "spice/writer.hpp"

namespace {

using namespace lmmir;

core::PipelineOptions tiny_pipeline_options() {
  core::PipelineOptions o;
  o.sample.input_side = 16;
  o.sample.pc_grid = 4;
  o.suite_scale = 0.04;
  o.fake_cases = 3;
  o.real_cases = 1;
  o.train.pretrain_epochs = 1;
  o.train.finetune_epochs = 3;
  o.train.batch_size = 2;
  return o;
}

TEST(Integration, NetlistFileRoundTripThroughPipeline) {
  // Generated netlist -> disk -> Pipeline::sample_from_netlist_file
  // produces the identical sample a direct build would.
  gen::GeneratorConfig cfg;
  cfg.name = "roundtrip";
  cfg.width_um = 20;
  cfg.height_um = 20;
  cfg.seed = 77;
  cfg.use_default_stack();
  const auto nl = gen::generate_pdn(cfg);
  const std::string path = "integration_tmp.sp";
  spice::write_netlist_file(path, nl);

  core::Pipeline pipe(tiny_pipeline_options());
  const auto from_file = pipe.sample_from_netlist_file(path);
  const auto direct = data::make_sample(nl, path, pipe.options().sample);
  ASSERT_EQ(from_file.circuit.numel(), direct.circuit.numel());
  for (std::size_t i = 0; i < direct.circuit.numel(); ++i)
    EXPECT_FLOAT_EQ(from_file.circuit.data()[i], direct.circuit.data()[i]);
  for (std::size_t i = 0; i < direct.tokens.numel(); ++i)
    EXPECT_FLOAT_EQ(from_file.tokens.data()[i], direct.tokens.data()[i]);
  EXPECT_NEAR(from_file.truth_full.max(), direct.truth_full.max(), 1e-6f);
  std::filesystem::remove(path);
}

TEST(Integration, GoldenSolverConsistentAcrossSerialization) {
  gen::GeneratorConfig cfg;
  cfg.name = "solver_consistency";
  cfg.width_um = 24;
  cfg.height_um = 24;
  cfg.seed = 13;
  cfg.use_default_stack();
  const auto nl = gen::generate_pdn(cfg);
  const auto reparsed = spice::parse_netlist_string(spice::write_netlist_string(nl));

  const auto s1 = pdn::solve_ir_drop(pdn::Circuit(nl));
  const auto s2 = pdn::solve_ir_drop(pdn::Circuit(reparsed));
  EXPECT_NEAR(s1.worst_drop, s2.worst_drop, 1e-9);
  const auto m1 = pdn::rasterize_ir_drop(nl, s1);
  const auto m2 = pdn::rasterize_ir_drop(reparsed, s2);
  EXPECT_LT(grid::mean_abs_diff(m1, m2), 1e-7f);
}

TEST(Integration, TrainPredictScoreEndToEnd) {
  core::Pipeline pipe(tiny_pipeline_options());
  const auto ds = pipe.build_training_dataset();
  ASSERT_EQ(ds.case_count(), 4u);

  models::LmmirConfig mc;
  mc.base_channels = 4;
  mc.levels = 2;
  mc.token_dim = 16;
  mc.lnt_blocks = 1;
  models::LMMIR model(mc);

  const auto tests = pipe.build_hidden_testset();
  ASSERT_EQ(tests.size(), 10u);
  const auto rows = pipe.train_and_evaluate(model, ds, tests);
  ASSERT_EQ(rows.size(), 11u);  // 10 cases + Avg
  EXPECT_EQ(rows.back().name, "Avg");
  for (const auto& r : rows) {
    EXPECT_GE(r.f1, 0.0);
    EXPECT_LE(r.f1, 1.0);
    EXPECT_GE(r.mae_1e4_volts, 0.0);
    EXPECT_LT(r.mae_1e4_volts, 1.1e4);  // below vdd in 1e-4 V units
  }
}

TEST(Integration, ExtraAugmentationExtendsEpochOnly) {
  core::Pipeline pipe(tiny_pipeline_options());
  const auto ds = pipe.build_training_dataset();
  models::LmmirConfig mc;
  mc.base_channels = 4;
  mc.levels = 2;
  mc.token_dim = 16;
  mc.lnt_blocks = 1;
  models::LMMIR model(mc);
  const auto tests = pipe.build_hidden_testset();
  // Factor 1.5 must not throw and must leave the dataset itself intact.
  const auto rows = pipe.train_and_evaluate(model, ds, tests, 1.5f);
  EXPECT_EQ(rows.size(), 11u);
  EXPECT_EQ(ds.epoch_size(), 3u * 2u + 1u * 4u);
}

TEST(Integration, PredictionIsDeterministicInEval) {
  core::Pipeline pipe(tiny_pipeline_options());
  const auto ds = pipe.build_training_dataset();
  models::LmmirConfig mc;
  mc.base_channels = 4;
  mc.levels = 2;
  mc.token_dim = 16;
  mc.lnt_blocks = 1;
  models::LMMIR model(mc);
  train::fit(model, ds, pipe.train_config());

  const auto p1 = train::predict_map(model, ds.samples[0]);
  const auto p2 = train::predict_map(model, ds.samples[0]);
  EXPECT_LT(grid::mean_abs_diff(p1, p2), 1e-9f);
}

}  // namespace
