// serve: dynamic batching correctness (batched == sequential bitwise),
// latency stats, shape handling, shutdown semantics.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/pipeline.hpp"
#include "data/dataset.hpp"
#include "features/maps.hpp"
#include "models/registry.hpp"
#include "pointcloud/pool.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/server.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace {

using namespace lmmir;
using tensor::Tensor;

constexpr int kSide = 16;  // divisible by 2^levels of the default LMM-IR
constexpr int kTokens = 9;

serve::PredictRequest make_request(util::Rng& rng, const std::string& id) {
  serve::PredictRequest r;
  r.id = id;
  r.circuit = Tensor::randn({feat::kChannelCount, kSide, kSide}, rng, 0.5f);
  r.tokens = Tensor::randn({kTokens, pc::kTokenFeatureDim}, rng, 0.5f);
  return r;
}

/// Reference path: single-request forward, exactly what the offline
/// Pipeline/evaluate code does per sample.
std::vector<float> sequential_prediction(models::IrModel& model,
                                         const serve::PredictRequest& req) {
  tensor::NoGradGuard no_grad;
  model.set_training(false);
  const auto& cs = req.circuit.shape();
  Tensor circuit =
      Tensor::from_data({1, cs[0], cs[1], cs[2]}, req.circuit.data());
  circuit = data::slice_channels(circuit, model.in_channels());
  Tensor tokens;
  if (req.tokens.defined()) {
    const auto& ts = req.tokens.shape();
    tokens = Tensor::from_data({1, ts[0], ts[1]}, req.tokens.data());
  }
  return model.forward(circuit, tokens).data();
}

TEST(Serve, BatchedMatchesSequentialBitwise) {
  runtime::set_global_threads(2);
  auto model = std::shared_ptr<models::IrModel>(models::make_model("LMM-IR"));

  util::Rng rng(321);
  std::vector<serve::PredictRequest> reqs;
  for (int i = 0; i < 6; ++i)
    reqs.push_back(make_request(rng, "case" + std::to_string(i)));

  std::vector<std::vector<float>> expected;
  for (const auto& r : reqs)
    expected.push_back(sequential_prediction(*model, r));

  serve::ServeOptions opts;
  opts.max_batch = 4;
  // Wide window so coalescing is robust to scheduler stalls between the
  // submits below; full batches dispatch as soon as they fill, so the
  // test doesn't actually wait this long.
  opts.max_wait_us = 500000;
  serve::InferenceServer server(model, opts);
  std::vector<std::future<serve::PredictResult>> futs;
  for (const auto& r : reqs) futs.push_back(server.submit(r));

  bool saw_multi_request_batch = false;
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const serve::PredictResult res = futs[i].get();
    EXPECT_EQ(res.id, reqs[i].id);
    ASSERT_EQ(res.map.ndim(), 3);
    EXPECT_EQ(res.map.dim(1), kSide);
    ASSERT_EQ(res.map.numel(), expected[i].size());
    for (std::size_t j = 0; j < expected[i].size(); ++j)
      ASSERT_EQ(res.map.data()[j], expected[i][j])
          << "request " << i << " diverged at " << j;
    EXPECT_GE(res.batch_size, 1u);
    EXPECT_LE(res.batch_size, opts.max_batch);
    saw_multi_request_batch |= res.batch_size > 1;
  }
  EXPECT_TRUE(saw_multi_request_batch);
  runtime::set_global_threads(1);
}

TEST(Serve, StatsPopulated) {
  auto model = std::shared_ptr<models::IrModel>(models::make_model("IREDGe"));
  serve::InferenceServer server(model, {});
  util::Rng rng(9);
  for (int i = 0; i < 5; ++i)
    server.predict(make_request(rng, "r" + std::to_string(i)));

  const serve::ServerStats s = server.stats();
  EXPECT_EQ(s.completed, 5u);
  EXPECT_GE(s.batches, 1u);
  EXPECT_GT(s.p50_us, 0.0);
  EXPECT_GE(s.p95_us, s.p50_us);
  EXPECT_GE(s.p99_us, s.p95_us);
  EXPECT_GE(s.max_us, s.p99_us);
  EXPECT_GT(s.mean_us, 0.0);
  EXPECT_GT(s.throughput_rps, 0.0);
  EXPECT_GE(s.mean_batch, 1.0);
  EXPECT_GE(s.max_batch_seen, 1u);
}

TEST(Serve, MixedShapesAreServedInSeparateBatches) {
  auto model = std::shared_ptr<models::IrModel>(models::make_model("IREDGe"));
  serve::ServeOptions opts;
  opts.max_wait_us = 5000;
  serve::InferenceServer server(model, opts);
  util::Rng rng(4);

  serve::PredictRequest small = make_request(rng, "small");
  serve::PredictRequest big;
  big.id = "big";
  big.circuit =
      Tensor::randn({feat::kChannelCount, 2 * kSide, 2 * kSide}, rng, 0.5f);
  big.tokens = Tensor::randn({kTokens, pc::kTokenFeatureDim}, rng, 0.5f);

  auto f1 = server.submit(small);
  auto f2 = server.submit(big);
  const auto r1 = f1.get();
  const auto r2 = f2.get();
  EXPECT_EQ(r1.map.dim(1), kSide);
  EXPECT_EQ(r2.map.dim(1), 2 * kSide);
}

TEST(Serve, RejectsMalformedRequests) {
  auto model = std::shared_ptr<models::IrModel>(models::make_model("IREDGe"));
  serve::InferenceServer server(model, {});
  serve::PredictRequest bad;
  EXPECT_THROW(server.submit(std::move(bad)), std::invalid_argument);

  serve::PredictRequest thin;  // fewer channels than the model consumes
  util::Rng rng(1);
  thin.circuit = Tensor::randn({1, kSide, kSide}, rng);
  EXPECT_THROW(server.submit(std::move(thin)), std::invalid_argument);
}

TEST(Serve, ShutdownDrainsThenRejects) {
  auto model = std::shared_ptr<models::IrModel>(models::make_model("IREDGe"));
  serve::ServeOptions opts;
  opts.max_wait_us = 10000;
  auto server = std::make_unique<serve::InferenceServer>(model, opts);
  util::Rng rng(2);
  std::vector<std::future<serve::PredictResult>> futs;
  for (int i = 0; i < 4; ++i)
    futs.push_back(server->submit(make_request(rng, "d" + std::to_string(i))));
  server->shutdown();
  for (auto& f : futs) EXPECT_NO_THROW(f.get());  // queued work still served
  EXPECT_THROW(server->submit(make_request(rng, "late")), std::runtime_error);
}

TEST(Serve, BackpressureRejectsWhenQueueFull) {
  auto model = std::shared_ptr<models::IrModel>(models::make_model("IREDGe"));
  serve::ServeOptions opts;
  opts.max_batch = 8;          // dispatcher holds the window open...
  opts.max_wait_us = 500000;   // ...long enough for the queue to fill
  opts.max_queue = 2;
  serve::InferenceServer server(model, opts);
  util::Rng rng(3);
  auto f1 = server.submit(make_request(rng, "q1"));
  auto f2 = server.submit(make_request(rng, "q2"));
  EXPECT_THROW(server.submit(make_request(rng, "q3")), std::runtime_error);
  EXPECT_NO_THROW(f1.get());
  EXPECT_NO_THROW(f2.get());
}

TEST(Serve, MultipleDispatchersServeConcurrentClients) {
  runtime::set_global_threads(1);
  auto model = std::shared_ptr<models::IrModel>(models::make_model("IREDGe"));
  serve::ServeOptions opts;
  opts.worker_threads = 2;
  opts.max_batch = 2;
  serve::InferenceServer server(model, opts);

  util::Rng rng(8);
  std::vector<serve::PredictRequest> reqs;
  for (int i = 0; i < 8; ++i)
    reqs.push_back(make_request(rng, "c" + std::to_string(i)));
  std::vector<std::vector<float>> expected;
  for (const auto& r : reqs)
    expected.push_back(sequential_prediction(*model, r));

  std::vector<std::future<serve::PredictResult>> futs;
  for (const auto& r : reqs) futs.push_back(server.submit(r));
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const auto res = futs[i].get();
    ASSERT_EQ(res.map.numel(), expected[i].size());
    for (std::size_t j = 0; j < expected[i].size(); ++j)
      ASSERT_EQ(res.map.data()[j], expected[i][j]);
  }
  EXPECT_EQ(server.stats().completed, 8u);
}

TEST(Serve, PipelineFacadeAndRestore) {
  core::PipelineOptions po;
  po.sample.input_side = kSide;
  po.sample.pc_grid = 2;
  core::Pipeline pipe(po);
  auto server = pipe.make_server(
      std::shared_ptr<models::IrModel>(models::make_model("LMM-IR")));
  ASSERT_NE(server, nullptr);

  util::Rng rng(5);
  const auto res = server->predict(make_request(rng, "facade"));
  EXPECT_EQ(res.id, "facade");

  // restore_percent_map inverts the target scaling (identity adjust).
  data::Sample s;
  s.adjust.orig_rows = kSide;
  s.adjust.orig_cols = kSide;
  s.adjust.side = kSide;
  const grid::Grid2D map = serve::restore_percent_map(res, s);
  EXPECT_EQ(map.rows(), static_cast<std::size_t>(kSide));
  EXPECT_EQ(map.cols(), static_cast<std::size_t>(kSide));
}

TEST(Serve, ArenaOnMatchesArenaOffBitwise) {
  runtime::set_global_threads(1);
  auto model = std::shared_ptr<models::IrModel>(models::make_model("LMM-IR"));
  util::Rng rng(777);
  std::vector<serve::PredictRequest> reqs;
  for (int i = 0; i < 4; ++i)
    reqs.push_back(make_request(rng, "arena" + std::to_string(i)));

  auto serve_all = [&](bool arena) {
    serve::ServeOptions opts;
    opts.use_tensor_arena = arena;
    serve::InferenceServer server(model, opts);
    std::vector<std::vector<float>> out;
    for (const auto& r : reqs) out.push_back(server.predict(r).map.data());
    if (!arena) {
      const auto st = server.arena_stats();
      EXPECT_EQ(st.node_allocs + st.node_reuses, 0u);  // really off
    }
    return out;
  };
  const auto off = serve_all(false);
  const auto on = serve_all(true);
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    ASSERT_EQ(off[i].size(), on[i].size());
    for (std::size_t j = 0; j < off[i].size(); ++j)
      ASSERT_EQ(off[i][j], on[i][j]) << "req " << i << " elem " << j;
  }
}

TEST(ServeAdmission, ThroughputHelperGuardsDegenerateSpans) {
  EXPECT_EQ(serve::throughput_rps(0, 5.0), 0.0);       // nothing completed
  EXPECT_EQ(serve::throughput_rps(10, 0.0), 0.0);      // zero span
  EXPECT_EQ(serve::throughput_rps(10, -1.0), 0.0);     // negative span
  EXPECT_DOUBLE_EQ(serve::throughput_rps(10, 2.0), 5.0);
}

TEST(ServeAdmission, QueueFullRejectionIsTypedWithRetryHint) {
  auto model = std::shared_ptr<models::IrModel>(models::make_model("IREDGe"));
  serve::ServeOptions opts;
  opts.max_batch = 8;
  opts.max_wait_us = 500000;  // hold the window open while the queue fills
  opts.max_queue = 1;
  serve::InferenceServer server(model, opts);
  util::Rng rng(11);
  auto f1 = server.submit(make_request(rng, "t1"));
  try {
    server.submit(make_request(rng, "t2"));
    FAIL() << "expected RejectedError";
  } catch (const serve::RejectedError& e) {
    EXPECT_EQ(e.reason(), serve::RejectReason::QueueFull);
    EXPECT_GT(e.retry_after_us(), 0u);  // hint: one batching window
    EXPECT_NE(std::string(e.what()).find("queue full"), std::string::npos);
  }
  EXPECT_NO_THROW(f1.get());
  EXPECT_EQ(server.stats().rejected_queue_full, 1u);
}

TEST(ServeAdmission, ShutdownRejectionIsTyped) {
  auto model = std::shared_ptr<models::IrModel>(models::make_model("IREDGe"));
  serve::InferenceServer server(model, {});
  server.shutdown();
  util::Rng rng(12);
  try {
    server.submit(make_request(rng, "late"));
    FAIL() << "expected RejectedError";
  } catch (const serve::RejectedError& e) {
    EXPECT_EQ(e.reason(), serve::RejectReason::Shutdown);
    EXPECT_EQ(e.retry_after_us(), 0u);  // permanent for this server
  }
}

// Regression for the admission-ordering bug: submit() used to stamp the
// lifetime/throughput bookkeeping (first_submit_) BEFORE the admission
// checks, so a rejected submission skewed the throughput span.  Rejected
// submissions must leave stats untouched: a server that only ever
// rejected reports zero completions and zero throughput, not NaN/inf or
// a span anchored at the rejected arrival.
TEST(ServeAdmission, RejectedSubmitLeavesBookkeepingUntouched) {
  auto model = std::shared_ptr<models::IrModel>(models::make_model("IREDGe"));
  serve::InferenceServer server(model, {});
  server.shutdown();
  util::Rng rng(13);
  EXPECT_THROW(server.submit(make_request(rng, "r")), serve::RejectedError);
  const serve::ServerStats s = server.stats();
  EXPECT_EQ(s.completed, 0u);
  EXPECT_EQ(s.rejected_shutdown, 1u);
  EXPECT_EQ(s.throughput_rps, 0.0);
}

TEST(ServeAdmission, DeadlineExpiredRequestsDropAtBatchFormation) {
  auto model = std::shared_ptr<models::IrModel>(models::make_model("IREDGe"));
  serve::ServeOptions opts;
  opts.max_batch = 8;
  opts.max_wait_us = 20000;  // window long enough for the deadline to blow
  serve::InferenceServer server(model, opts);
  util::Rng rng(14);

  serve::PredictRequest doomed = make_request(rng, "doomed");
  doomed.deadline_us = 1;  // expires while waiting out the batching window
  serve::PredictRequest healthy = make_request(rng, "healthy");

  auto f_doomed = server.submit(std::move(doomed));
  auto f_healthy = server.submit(std::move(healthy));

  try {
    f_doomed.get();
    FAIL() << "expected RejectedError{DeadlineExceeded}";
  } catch (const serve::RejectedError& e) {
    EXPECT_EQ(e.reason(), serve::RejectReason::DeadlineExceeded);
  }
  // The co-queued request without a deadline is still served normally.
  EXPECT_NO_THROW(f_healthy.get());
  const serve::ServerStats s = server.stats();
  EXPECT_EQ(s.timed_out, 1u);
  EXPECT_EQ(s.completed, 1u);
}

TEST(ServeAdmission, GenerousDeadlineIsHarmless) {
  auto model = std::shared_ptr<models::IrModel>(models::make_model("IREDGe"));
  serve::InferenceServer server(model, {});
  util::Rng rng(15);
  serve::PredictRequest req = make_request(rng, "relaxed");
  req.deadline_us = 60u * 1000u * 1000u;
  EXPECT_NO_THROW(server.submit(std::move(req)).get());
  EXPECT_EQ(server.stats().timed_out, 0u);
}

TEST(Serve, ArenaSteadyStateIsAllocationFree) {
  runtime::set_global_threads(1);  // deterministic chunking / scratch use
  auto model = std::shared_ptr<models::IrModel>(models::make_model("LMM-IR"));
  util::Rng rng(778);
  std::vector<serve::PredictRequest> reqs;
  for (int i = 0; i < 3; ++i)
    reqs.push_back(make_request(rng, "steady" + std::to_string(i)));

  serve::ServeOptions opts;
  opts.use_tensor_arena = true;
  opts.max_batch = 1;        // every batch identical in shape
  opts.worker_threads = 1;   // one dispatcher, one arena
  serve::InferenceServer server(model, opts);

  // Warm-up: one request populates the pools (all requests share shapes).
  for (const auto& r : reqs) server.predict(r);
  const auto warm = server.arena_stats();
  EXPECT_GT(warm.heap_allocations(), 0u);
  EXPECT_EQ(warm.live_nodes, 0u);  // everything returned between batches

  for (int round = 0; round < 3; ++round)
    for (const auto& r : reqs) server.predict(r);
  const auto steady = server.arena_stats();
  EXPECT_EQ(steady.heap_allocations(), warm.heap_allocations())
      << "steady-state batches allocated tensor memory";
  EXPECT_GT(steady.allocations_saved(), warm.allocations_saved());
  EXPECT_EQ(steady.live_nodes, 0u);
  EXPECT_EQ(steady.resets, warm.resets + 9u);  // one reset per batch
}

TEST(ServePlan, PlanReplayMatchesSequentialBitwiseAndCaches) {
  runtime::set_global_threads(1);
  auto model = std::shared_ptr<models::IrModel>(models::make_model("LMM-IR"));
  util::Rng rng(555);
  std::vector<serve::PredictRequest> reqs;
  for (int i = 0; i < 5; ++i)
    reqs.push_back(make_request(rng, "plan" + std::to_string(i)));

  std::vector<std::vector<float>> expected;
  for (const auto& r : reqs)
    expected.push_back(sequential_prediction(*model, r));

  serve::ServeOptions opts;
  opts.use_inference_plan = true;
  opts.max_batch = 1;       // every batch shares one shape key
  opts.worker_threads = 1;
  serve::InferenceServer server(model, opts);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const serve::PredictResult res = server.predict(reqs[i]);
    ASSERT_EQ(res.map.numel(), expected[i].size());
    for (std::size_t j = 0; j < expected[i].size(); ++j)
      ASSERT_EQ(res.map.data()[j], expected[i][j])
          << "request " << i << " diverged at " << j;
  }
  // First batch recorded; every later same-shape batch replayed the plan.
  const tensor::plan::RuntimeStats ps = server.plan_stats();
  EXPECT_EQ(ps.plans_recorded, 1u);
  EXPECT_EQ(ps.plans_unsupported, 0u);
  EXPECT_EQ(ps.eager_runs, 1u);
  EXPECT_EQ(ps.replays, reqs.size() - 1);
}

TEST(ServePlan, PlanAndArenaComposeAllocationFree) {
  // The two memory disciplines stack: plan replay through the dispatcher
  // arena stays allocation-free in steady state, bitwise equal to eager.
  runtime::set_global_threads(1);
  auto model = std::shared_ptr<models::IrModel>(models::make_model("LMM-IR"));
  util::Rng rng(556);
  const serve::PredictRequest req = make_request(rng, "plan-arena");
  const std::vector<float> expected = sequential_prediction(*model, req);

  serve::ServeOptions opts;
  opts.use_tensor_arena = true;
  opts.use_inference_plan = true;
  opts.max_batch = 1;
  opts.worker_threads = 1;
  serve::InferenceServer server(model, opts);
  server.predict(req);  // recording pass (eager through the arena)
  server.predict(req);  // first replay warms the replay-path shapes
  const auto warm = server.arena_stats();
  for (int i = 0; i < 4; ++i) {
    const serve::PredictResult res = server.predict(req);
    ASSERT_EQ(res.map.numel(), expected.size());
    for (std::size_t j = 0; j < expected.size(); ++j)
      ASSERT_EQ(res.map.data()[j], expected[j]) << "diverged at " << j;
  }
  const auto steady = server.arena_stats();
  EXPECT_EQ(steady.heap_allocations(), warm.heap_allocations())
      << "steady-state plan replays allocated tensor memory";
  EXPECT_EQ(steady.live_nodes, 0u);
  EXPECT_EQ(server.plan_stats().replays, 5u);
}

TEST(ServePlan, DistinctBatchShapesGetDistinctPlans) {
  runtime::set_global_threads(1);
  auto model = std::shared_ptr<models::IrModel>(models::make_model("IREDGe"));
  serve::ServeOptions opts;
  opts.use_inference_plan = true;
  opts.max_wait_us = 0;  // no coalescing: deterministic batch shapes
  serve::InferenceServer server(model, opts);
  util::Rng rng(41);
  serve::PredictRequest small;
  small.id = "small";
  small.circuit = Tensor::randn({feat::kChannelCount, kSide, kSide}, rng,
                                0.5f);
  serve::PredictRequest large;
  large.id = "large";
  large.circuit = Tensor::randn({feat::kChannelCount, 2 * kSide, 2 * kSide},
                                rng, 0.5f);
  server.predict(small);
  server.predict(large);
  server.predict(small);
  server.predict(large);
  const tensor::plan::RuntimeStats ps = server.plan_stats();
  EXPECT_EQ(ps.plans_recorded, 2u);
  EXPECT_EQ(ps.replays, 2u);
}

TEST(ServePlan, PipelineFacadeOrWiresThePlanKnob) {
  // The pipeline option is an OR with the per-server option (plans are
  // opt-in): either switch alone turns them on.
  core::PipelineOptions po;
  po.inference_plan = true;
  core::Pipeline pipe(po);
  auto model = std::shared_ptr<models::IrModel>(models::make_model("IREDGe"));
  auto on_by_pipeline = pipe.make_server(model);
  EXPECT_TRUE(on_by_pipeline->options().use_inference_plan);

  core::PipelineOptions po_off;
  po_off.inference_plan = false;
  core::Pipeline pipe_off(po_off);
  serve::ServeOptions explicit_on;
  explicit_on.use_inference_plan = true;
  auto on_by_server = pipe_off.make_server(model, explicit_on);
  EXPECT_TRUE(on_by_server->options().use_inference_plan);

  serve::ServeOptions defaults;
  defaults.use_inference_plan = false;
  auto off = pipe_off.make_server(model, defaults);
  EXPECT_FALSE(off->options().use_inference_plan);
}

}  // namespace
