// SolverContext: the repeated-solve reuse cache.  Pattern refresh must
// agree with from-scratch assembly, warm starts must never cost more
// iterations than cold starts, topology changes must fall back to a full
// rebuild, and the level-scheduled triangular applies must stay
// bitwise-identical across thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gen/began.hpp"
#include "pdn/circuit.hpp"
#include "pdn/solver.hpp"
#include "pdn/solver_context.hpp"
#include "runtime/thread_pool.hpp"
#include "sparse/preconditioner.hpp"
#include "sparse/trisolve.hpp"
#include "util/rng.hpp"

namespace {

using namespace lmmir;

gen::GeneratorConfig mesh_config(std::uint64_t seed, double current = 0.12) {
  gen::GeneratorConfig cfg;
  cfg.name = "ctx";
  cfg.width_um = 30;
  cfg.height_um = 30;
  cfg.seed = seed;
  cfg.total_current = current;
  cfg.use_default_stack();
  return cfg;
}

/// Scale every resistor by `factor` starting at element `from`, stepping
/// `stride` — a value-only perturbation that keeps the topology intact.
void perturb_resistors(spice::Netlist& nl, double factor,
                       std::size_t from = 0, std::size_t stride = 3) {
  const auto& elements = nl.elements();
  for (std::size_t i = from; i < elements.size(); i += stride)
    if (elements[i].type == spice::ElementType::Resistor)
      nl.set_element_value(i, elements[i].value * factor);
}

TEST(SolverContext, FirstSolveMatchesFromScratch) {
  const auto nl = gen::generate_pdn(mesh_config(21));
  const pdn::Circuit circuit(nl);
  const auto scratch = pdn::solve_ir_drop(circuit);

  pdn::SolverContext ctx;
  const auto sol = ctx.solve(circuit);
  ASSERT_TRUE(sol.converged);
  EXPECT_FALSE(sol.reused_pattern);
  EXPECT_FALSE(sol.warm_started);
  EXPECT_EQ(ctx.stats().rebuilds, 1u);
  ASSERT_EQ(sol.node_voltage.size(), scratch.node_voltage.size());
  // Same assembly, same zero start: the solves are identical.
  for (std::size_t i = 0; i < sol.node_voltage.size(); ++i)
    EXPECT_EQ(sol.node_voltage[i], scratch.node_voltage[i]);
}

TEST(SolverContext, RefreshAgreesWithFromScratchTo1e10) {
  auto nl = gen::generate_pdn(mesh_config(22));
  pdn::SolveOptions opts;
  opts.cg.tolerance = 1e-12;  // headroom so iterates agree to 1e-10
  pdn::SolverContext ctx(opts);
  ctx.solve(pdn::Circuit(nl));

  perturb_resistors(nl, 0.7);
  const pdn::Circuit changed(nl);
  const auto refreshed = ctx.solve(changed);
  const auto scratch = pdn::solve_ir_drop(changed, opts);

  ASSERT_TRUE(refreshed.converged);
  EXPECT_TRUE(refreshed.reused_pattern);
  EXPECT_EQ(ctx.stats().rebuilds, 1u);
  EXPECT_EQ(ctx.stats().refreshes, 1u);
  ASSERT_EQ(refreshed.node_voltage.size(), scratch.node_voltage.size());
  for (std::size_t i = 0; i < refreshed.node_voltage.size(); ++i)
    ASSERT_NEAR(refreshed.node_voltage[i], scratch.node_voltage[i], 1e-10)
        << "node " << i;
}

TEST(SolverContext, CurrentOnlyChangeRefreshesRhs) {
  auto nl = gen::generate_pdn(mesh_config(23));
  pdn::SolveOptions opts;
  opts.cg.tolerance = 1e-12;
  pdn::SolverContext ctx(opts);
  ctx.solve(pdn::Circuit(nl));

  const auto& elements = nl.elements();
  for (std::size_t i = 0; i < elements.size(); ++i)
    if (elements[i].type == spice::ElementType::CurrentSource)
      nl.set_element_value(i, elements[i].value * 1.35);
  const pdn::Circuit changed(nl);
  const auto refreshed = ctx.solve(changed);
  const auto scratch = pdn::solve_ir_drop(changed, opts);

  EXPECT_TRUE(refreshed.reused_pattern);
  ASSERT_TRUE(refreshed.converged);
  for (std::size_t i = 0; i < refreshed.node_voltage.size(); ++i)
    ASSERT_NEAR(refreshed.node_voltage[i], scratch.node_voltage[i], 1e-10);
}

TEST(SolverContext, WarmStartNeverCostsMoreIterations) {
  for (const auto kind :
       {sparse::PreconditionerKind::Jacobi, sparse::PreconditionerKind::Ssor,
        sparse::PreconditionerKind::Ic0}) {
    auto nl = gen::generate_pdn(mesh_config(24));
    pdn::SolveOptions opts;
    opts.cg.preconditioner = kind;
    pdn::SolverContext ctx(opts);
    ctx.solve(pdn::Circuit(nl));

    perturb_resistors(nl, 0.85, 1, 4);  // mild ECO-style perturbation
    const pdn::Circuit changed(nl);
    const auto cold = pdn::solve_ir_drop(changed, opts);
    const auto warm = ctx.solve(changed);
    ASSERT_TRUE(cold.converged) << sparse::to_string(kind);
    ASSERT_TRUE(warm.converged) << sparse::to_string(kind);
    EXPECT_TRUE(warm.warm_started) << sparse::to_string(kind);
    EXPECT_LT(warm.initial_residual, 1.0) << sparse::to_string(kind);
    EXPECT_LE(warm.cg_iterations, cold.cg_iterations)
        << sparse::to_string(kind);
  }
}

TEST(SolverContext, IdenticalResolveConvergesInZeroIterations) {
  const auto nl = gen::generate_pdn(mesh_config(25));
  const pdn::Circuit circuit(nl);
  pdn::SolverContext ctx;
  ctx.solve(circuit);
  const auto again = ctx.solve(circuit);  // same values: x0 already solves it
  ASSERT_TRUE(again.converged);
  EXPECT_TRUE(again.warm_started);
  EXPECT_EQ(again.cg_iterations, 0u);
}

/// Scale every current source by `factor`: an rhs-only perturbation (a
/// load sweep) that leaves the conductance matrix untouched.
void perturb_currents(spice::Netlist& nl, double factor) {
  const auto& elements = nl.elements();
  for (std::size_t i = 0; i < elements.size(); ++i)
    if (elements[i].type == spice::ElementType::CurrentSource)
      nl.set_element_value(i, elements[i].value * factor);
}

TEST(SolverContext, Ic0SetupAmortizedAcrossLoadSweep) {
  auto nl = gen::generate_pdn(mesh_config(26));
  pdn::SolveOptions opts;
  opts.cg.preconditioner = sparse::PreconditionerKind::Ic0;
  pdn::SolverContext ctx(opts);
  ctx.solve(pdn::Circuit(nl));
  for (int round = 0; round < 3; ++round) {
    perturb_currents(nl, 1.1);
    const auto sol = ctx.solve(pdn::Circuit(nl));
    ASSERT_TRUE(sol.converged);
  }
  EXPECT_EQ(ctx.stats().solves, 4u);
  EXPECT_EQ(ctx.stats().refreshes, 3u);
  EXPECT_EQ(ctx.stats().matrix_refreshes, 0u);  // rhs-only updates
  EXPECT_EQ(ctx.stats().precond_builds, 1u);    // factored once, reused 3x

  // Opting out rebuilds the factor every solve.
  pdn::SolveOptions fresh = opts;
  fresh.reuse_preconditioner = false;
  pdn::SolverContext ctx2(fresh);
  ctx2.solve(pdn::Circuit(nl));
  perturb_currents(nl, 1.1);
  ctx2.solve(pdn::Circuit(nl));
  EXPECT_EQ(ctx2.stats().precond_builds, 2u);
}

TEST(SolverContext, ConductanceChangeRebuildsPreconditioner) {
  // A stale factor is never carried across a matrix change (measured to
  // cost more PCG iterations than its setup saves).
  auto nl = gen::generate_pdn(mesh_config(26));
  pdn::SolveOptions opts;
  opts.cg.preconditioner = sparse::PreconditionerKind::Ic0;
  pdn::SolverContext ctx(opts);
  ctx.solve(pdn::Circuit(nl));
  perturb_resistors(nl, 0.9);
  ctx.solve(pdn::Circuit(nl));
  EXPECT_EQ(ctx.stats().matrix_refreshes, 1u);
  EXPECT_EQ(ctx.stats().precond_builds, 2u);
}

TEST(SolverContext, TopologyChangeTriggersRebuild) {
  auto nl = gen::generate_pdn(mesh_config(27));
  pdn::SolverContext ctx;
  ctx.solve(pdn::Circuit(nl));

  // Bridge two existing nodes with a new strap: the pattern changes.
  nl.add_resistor("ctxbridge", 1, 2, 0.5);
  const pdn::Circuit changed(nl);
  const auto sol = ctx.solve(changed);
  const auto scratch = pdn::solve_ir_drop(changed);
  ASSERT_TRUE(sol.converged);
  EXPECT_FALSE(sol.reused_pattern);
  EXPECT_FALSE(sol.warm_started);
  EXPECT_EQ(ctx.stats().rebuilds, 2u);
  EXPECT_EQ(ctx.stats().refreshes, 0u);
  for (std::size_t i = 0; i < sol.node_voltage.size(); ++i)
    EXPECT_EQ(sol.node_voltage[i], scratch.node_voltage[i]);
}

TEST(SolverContext, InvalidateDropsCaches) {
  auto nl = gen::generate_pdn(mesh_config(28));
  pdn::SolverContext ctx;
  ctx.solve(pdn::Circuit(nl));
  ctx.invalidate();
  const auto sol = ctx.solve(pdn::Circuit(nl));
  EXPECT_FALSE(sol.reused_pattern);
  EXPECT_FALSE(sol.warm_started);
  EXPECT_EQ(ctx.stats().rebuilds, 2u);
}

TEST(SolverContext, RoutedThroughSolveIrDropOptions) {
  auto nl = gen::generate_pdn(mesh_config(29));
  pdn::SolverContext ctx;
  pdn::SolveOptions opts;
  opts.context = &ctx;
  pdn::solve_ir_drop(pdn::Circuit(nl), opts);
  perturb_resistors(nl, 0.8);
  const auto sol = pdn::solve_ir_drop(pdn::Circuit(nl), opts);
  EXPECT_TRUE(sol.reused_pattern);
  EXPECT_TRUE(sol.warm_started);
  EXPECT_EQ(ctx.stats().solves, 2u);
}

/// Restores the global pool even when an ASSERT bails out early.
struct ThreadGuard {
  ~ThreadGuard() { runtime::set_global_threads(1); }
};

// The level-scheduled SSOR / IC(0) applies must be bitwise-identical to
// the 1-thread sweep at every pool size (ISSUE: 1/2/4 threads).
TEST(LevelScheduledApply, BitwiseIdenticalAcross124Threads) {
  const auto nl = gen::generate_pdn(mesh_config(30));
  const auto sys = pdn::assemble_ir_system(pdn::Circuit(nl));
  util::Rng rng(99);
  std::vector<double> r(sys.matrix.dim());
  for (auto& v : r) v = rng.uniform_double(-1.0, 1.0);

  ThreadGuard guard;
  for (const auto kind :
       {sparse::PreconditionerKind::Ssor, sparse::PreconditionerKind::Ic0}) {
    const auto p = sparse::make_preconditioner(kind, sys.matrix);
    runtime::set_global_threads(1);
    std::vector<double> z1;
    p->apply(r, z1);
    for (const std::size_t threads : {2u, 4u}) {
      runtime::set_global_threads(threads);
      std::vector<double> zt;
      p->apply(r, zt);
      ASSERT_EQ(z1.size(), zt.size());
      for (std::size_t i = 0; i < z1.size(); ++i)
        ASSERT_EQ(z1[i], zt[i])
            << sparse::to_string(kind) << " @" << threads << " threads, row "
            << i;  // exact, not NEAR
    }
    runtime::set_global_threads(1);
  }
}

// Full context solves (refresh + warm start + level-scheduled applies)
// stay bitwise-identical across thread counts as well.
TEST(LevelScheduledApply, ContextSolveBitwiseIdenticalAcrossThreads) {
  ThreadGuard guard;
  std::vector<std::vector<double>> voltages;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    runtime::set_global_threads(threads);
    auto nl = gen::generate_pdn(mesh_config(31));
    pdn::SolveOptions opts;
    opts.cg.preconditioner = sparse::PreconditionerKind::Ic0;
    pdn::SolverContext ctx(opts);
    ctx.solve(pdn::Circuit(nl));
    perturb_resistors(nl, 0.75);
    voltages.push_back(ctx.solve(pdn::Circuit(nl)).node_voltage);
  }
  runtime::set_global_threads(1);
  for (std::size_t t = 1; t < voltages.size(); ++t) {
    ASSERT_EQ(voltages[0].size(), voltages[t].size());
    for (std::size_t i = 0; i < voltages[0].size(); ++i)
      ASSERT_EQ(voltages[0][i], voltages[t][i]) << "cfg " << t << " row " << i;
  }
}

// ---- solve_ir_drop_batch: per-worker contexts for corpus generation ----

std::vector<spice::Netlist> batch_netlists(int count) {
  std::vector<spice::Netlist> nls;
  for (int i = 0; i < count; ++i) {
    // Repeat each topology seed twice back-to-back so contiguous stripes
    // exercise the refresh + warm-start chain, not just cold rebuilds.
    auto cfg = mesh_config(40 + static_cast<std::uint64_t>(i / 2),
                           0.10 + 0.01 * (i % 2));
    nls.push_back(gen::generate_pdn(cfg));
  }
  return nls;
}

std::vector<pdn::Solution> batch_solve(const std::vector<spice::Netlist>& nls,
                                       std::size_t stripes,
                                       pdn::SolverContextStats* stats) {
  std::vector<pdn::Circuit> circuits;
  circuits.reserve(nls.size());
  for (const auto& nl : nls) circuits.emplace_back(nl);
  std::vector<const pdn::Circuit*> ptrs;
  for (const auto& c : circuits) ptrs.push_back(&c);
  pdn::SolveOptions opts;
  opts.cg.preconditioner = sparse::PreconditionerKind::Ic0;
  return pdn::solve_ir_drop_batch(ptrs, opts, stripes, stats);
}

// The corpus-generation fast path: per-worker contexts fanned over the
// pool must reproduce the serial (1-thread) run bitwise, because the
// stripe partition — and therefore every context's reuse chain — depends
// only on the case count.
TEST(SolverBatch, PerWorkerContextsMatchSerialGoldenBitwise) {
  const auto nls = batch_netlists(6);
  ThreadGuard guard;

  runtime::set_global_threads(1);
  pdn::SolverContextStats serial_stats;
  const auto serial = batch_solve(nls, 3, &serial_stats);

  runtime::set_global_threads(4);
  pdn::SolverContextStats parallel_stats;
  const auto parallel = batch_solve(nls, 3, &parallel_stats);
  runtime::set_global_threads(1);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].converged) << "case " << i;
    ASSERT_TRUE(parallel[i].converged) << "case " << i;
    ASSERT_EQ(serial[i].node_voltage.size(), parallel[i].node_voltage.size());
    for (std::size_t k = 0; k < serial[i].node_voltage.size(); ++k)
      ASSERT_EQ(serial[i].node_voltage[k], parallel[i].node_voltage[k])
          << "case " << i << " node " << k;
  }
  // Same chains, same telemetry.
  EXPECT_EQ(serial_stats.solves, parallel_stats.solves);
  EXPECT_EQ(serial_stats.rebuilds, parallel_stats.rebuilds);
  EXPECT_EQ(serial_stats.refreshes, parallel_stats.refreshes);
  EXPECT_EQ(serial_stats.warm_starts, parallel_stats.warm_starts);
  EXPECT_EQ(serial_stats.total_cg_iterations,
            parallel_stats.total_cg_iterations);
}

// Striped contexts agree with independent cold solves to solver
// tolerance (warm starts change the iterate path, not the answer).
TEST(SolverBatch, StripedResultsAgreeWithColdSolves) {
  const auto nls = batch_netlists(4);
  pdn::SolverContextStats stats;
  const auto striped = batch_solve(nls, 2, &stats);
  ASSERT_EQ(striped.size(), nls.size());
  EXPECT_EQ(stats.solves, nls.size());
  // The seed-repeat pairing above means at least one refresh happened.
  EXPECT_GT(stats.refreshes, 0u);

  pdn::SolveOptions opts;
  opts.cg.preconditioner = sparse::PreconditionerKind::Ic0;
  for (std::size_t i = 0; i < nls.size(); ++i) {
    const auto cold = pdn::solve_ir_drop(pdn::Circuit(nls[i]), opts);
    ASSERT_EQ(cold.node_voltage.size(), striped[i].node_voltage.size());
    for (std::size_t k = 0; k < cold.node_voltage.size(); ++k)
      EXPECT_NEAR(cold.node_voltage[k], striped[i].node_voltage[k], 1e-6)
          << "case " << i << " node " << k;
  }
}

TEST(SolverBatch, EmptyAndSingleCaseEdgeCases) {
  EXPECT_TRUE(pdn::solve_ir_drop_batch({}, pdn::SolveOptions{}).empty());

  const auto nl = gen::generate_pdn(mesh_config(55));
  const pdn::Circuit circuit(nl);
  // More stripes than cases clamps to one case per stripe.
  const auto batch =
      pdn::solve_ir_drop_batch({&circuit}, pdn::SolveOptions{}, 8);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_TRUE(batch[0].converged);
  const auto direct = pdn::solve_ir_drop(circuit);
  for (std::size_t k = 0; k < direct.node_voltage.size(); ++k)
    ASSERT_EQ(direct.node_voltage[k], batch[0].node_voltage[k]);
}

}  // namespace
