// spice: node-name grammar, value suffixes, parser, writer round trip.
#include <gtest/gtest.h>

#include "spice/parser.hpp"
#include "spice/writer.hpp"

#include "gen/began.hpp"
#include "gen/suite.hpp"
#include "util/rng.hpp"

namespace {

using namespace lmmir::spice;

TEST(NodeName, FormatAndParse) {
  NodeName n{1, 4, 108000, 26000};
  EXPECT_EQ(n.to_string(), "n1_m4_108000_26000");
  NodeName back;
  ASSERT_TRUE(parse_node_name(n.to_string(), back));
  EXPECT_EQ(back, n);
}

TEST(NodeName, RejectsMalformed) {
  NodeName out;
  EXPECT_FALSE(parse_node_name("", out));
  EXPECT_FALSE(parse_node_name("n1_m1_3", out));
  EXPECT_FALSE(parse_node_name("x1_m1_3_4", out));
  EXPECT_FALSE(parse_node_name("n1_x1_3_4", out));
  EXPECT_FALSE(parse_node_name("n1_m1_a_4", out));
  EXPECT_FALSE(parse_node_name("n1_m1_3_4_5", out));
}

TEST(NodeName, Ground) {
  EXPECT_TRUE(is_ground("0"));
  EXPECT_FALSE(is_ground("00"));
  EXPECT_FALSE(is_ground("n0_m0_0_0"));
}

class SpiceValue
    : public ::testing::TestWithParam<std::pair<const char*, double>> {};

TEST_P(SpiceValue, ParsesSuffix) {
  const auto [text, expected] = GetParam();
  double v = 0;
  ASSERT_TRUE(parse_spice_value(text, v)) << text;
  EXPECT_DOUBLE_EQ(v, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Suffixes, SpiceValue,
    ::testing::Values(std::make_pair("1.5", 1.5), std::make_pair("2k", 2e3),
                      std::make_pair("3meg", 3e6), std::make_pair("4u", 4e-6),
                      std::make_pair("5m", 5e-3), std::make_pair("6n", 6e-9),
                      std::make_pair("7p", 7e-12), std::make_pair("1e-3", 1e-3),
                      std::make_pair("2.5E2", 250.0),
                      std::make_pair("8G", 8e9)));

TEST(SpiceValueNegative, RejectsGarbage) {
  double v;
  EXPECT_FALSE(parse_spice_value("", v));
  EXPECT_FALSE(parse_spice_value("abc", v));
  EXPECT_FALSE(parse_spice_value("1.5q", v));
  EXPECT_FALSE(parse_spice_value("k", v));
}

TEST(Parser, ParsesBasicNetlist) {
  const std::string text = R"(* tiny PDN
R1 n1_m1_0_0 n1_m1_1000_0 0.5
R2 n1_m1_1000_0 n1_m2_1000_0 2.0
I1 n1_m1_0_0 0 1m
V1 n1_m2_1000_0 0 1.1
.end
)";
  ParseStats stats;
  const Netlist nl = parse_netlist_string(text, &stats);
  EXPECT_EQ(stats.elements, 4u);
  EXPECT_EQ(stats.comments, 1u);
  EXPECT_EQ(nl.node_count(), 3u);
  EXPECT_EQ(nl.count(ElementType::Resistor), 2u);
  EXPECT_EQ(nl.count(ElementType::CurrentSource), 1u);
  EXPECT_EQ(nl.count(ElementType::VoltageSource), 1u);
  EXPECT_EQ(nl.max_layer(), 2);
  const auto shape = nl.pixel_shape();
  EXPECT_EQ(shape.cols, 2u);  // x up to 1000 DBU = pixel 1
  EXPECT_EQ(shape.rows, 1u);
}

TEST(Parser, CaseInsensitiveAndDirectives) {
  const std::string text = ".title x\nr1 a b 1k\ni2 a 0 2m\nv3 b 0 1.0\n.op\n.end\nGARBAGE AFTER END\n";
  const Netlist nl = parse_netlist_string(text);
  EXPECT_EQ(nl.element_count(), 3u);  // .end stops parsing
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse_netlist_string("R1 a b 1.0\nR2 a b\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, RejectsBadElements) {
  EXPECT_THROW(parse_netlist_string("C1 a b 1.0\n"), std::runtime_error);
  EXPECT_THROW(parse_netlist_string("R1 a b -2\n"), std::runtime_error);  // R<=0
  EXPECT_THROW(parse_netlist_string("R1 a b xyz\n"), std::runtime_error);
}

TEST(Parser, FreeFormNodesSupported) {
  const Netlist nl = parse_netlist_string("R1 vdd_pin n1_m1_0_0 1.0\nV1 vdd_pin 0 1.1\n");
  ASSERT_TRUE(nl.find_node("vdd_pin").has_value());
  EXPECT_FALSE(nl.node(*nl.find_node("vdd_pin")).parsed.has_value());
  EXPECT_TRUE(nl.node(*nl.find_node("n1_m1_0_0")).parsed.has_value());
}

TEST(Writer, RoundTripPreservesEverything) {
  const std::string text =
      "R7 n1_m1_0_0 n1_m1_2000_0 0.125\n"
      "I3 n1_m1_2000_0 0 0.0015\n"
      "V9 n1_m3_2000_0 0 1.05\n";
  const Netlist nl = parse_netlist_string(text);
  const std::string written = write_netlist_string(nl, "round trip");
  const Netlist back = parse_netlist_string(written);
  ASSERT_EQ(back.element_count(), nl.element_count());
  for (std::size_t i = 0; i < nl.elements().size(); ++i) {
    EXPECT_EQ(back.elements()[i].type, nl.elements()[i].type);
    EXPECT_EQ(back.elements()[i].name, nl.elements()[i].name);
    EXPECT_DOUBLE_EQ(back.elements()[i].value, nl.elements()[i].value);
  }
  EXPECT_EQ(back.node_count(), nl.node_count());
}

TEST(Writer, GeneratedSuiteRoundTripsStructurally) {
  // The corpus-generation path the golden solver consumes: every generated
  // netlist must survive write -> re-parse with its structure intact
  // (node/element counts, element types/names/values, endpoint names).
  lmmir::gen::SuiteOptions sopts;
  sopts.scale = 0.045;  // small dies: keeps the batch fast
  const auto configs = lmmir::gen::fake_training_suite(3, 0xC0FFEE, sopts);
  for (const auto& cfg : configs) {
    SCOPED_TRACE(cfg.name);
    const Netlist nl = lmmir::gen::generate_pdn(cfg);
    const std::string written = write_netlist_string(nl, cfg.name);
    const Netlist back = parse_netlist_string(written);
    ASSERT_EQ(back.node_count(), nl.node_count());
    ASSERT_EQ(back.element_count(), nl.element_count());
    for (auto t : {ElementType::Resistor, ElementType::CurrentSource,
                   ElementType::VoltageSource})
      EXPECT_EQ(back.count(t), nl.count(t));
    auto node_name = [](const Netlist& n, NodeId id) {
      return id == kGroundNode ? std::string("0") : n.node(id).raw_name;
    };
    for (std::size_t i = 0; i < nl.elements().size(); ++i) {
      const auto& a = nl.elements()[i];
      const auto& b = back.elements()[i];
      ASSERT_EQ(b.type, a.type) << "element " << i;
      EXPECT_EQ(b.name, a.name) << "element " << i;
      EXPECT_DOUBLE_EQ(b.value, a.value) << "element " << i;
      EXPECT_EQ(node_name(back, b.node1), node_name(nl, a.node1));
      EXPECT_EQ(node_name(back, b.node2), node_name(nl, a.node2));
    }
    // Second round trip is a fixed point: identical text.
    EXPECT_EQ(write_netlist_string(back, cfg.name), written);
  }
}

TEST(Parser, FuzzNeverCrashesOnlyThrows) {
  // Random token soup must either parse or throw std::runtime_error —
  // never crash or loop.
  lmmir::util::Rng rng(0xF022);
  const char* vocab[] = {"R1", "I2", "V3", "n1_m1_0_0", "n1_m2_5_5", "0",
                         "1.5", "abc", "-2", "1k", ".end", "*", "", "R",
                         "n1_m1_x_y", "1e999"};
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const int lines = rng.randint(1, 6);
    for (int l = 0; l < lines; ++l) {
      const int toks = rng.randint(0, 5);
      for (int t = 0; t < toks; ++t) {
        text += vocab[rng.randint(0, 15)];
        text += ' ';
      }
      text += '\n';
    }
    try {
      const Netlist nl = parse_netlist_string(text);
      (void)nl.node_count();
    } catch (const std::runtime_error&) {
      // acceptable outcome for malformed input
    }
  }
  SUCCEED();
}

TEST(Netlist, InternDeduplicates) {
  Netlist nl;
  const NodeId a = nl.intern_node("n1_m1_0_0");
  const NodeId b = nl.intern_node("n1_m1_0_0");
  EXPECT_EQ(a, b);
  EXPECT_EQ(nl.intern_node("0"), kGroundNode);
  EXPECT_EQ(nl.node_count(), 1u);
}

TEST(Netlist, BoundsOverParsedNodes) {
  Netlist nl;
  nl.intern_node("n1_m1_1000_2000");
  nl.intern_node("n1_m2_5000_500");
  nl.intern_node("free_node");
  const auto b = nl.bounds();
  ASSERT_TRUE(b.valid);
  EXPECT_EQ(b.min_x, 1000);
  EXPECT_EQ(b.max_x, 5000);
  EXPECT_EQ(b.min_y, 500);
  EXPECT_EQ(b.max_y, 2000);
}

}  // namespace
