// Overlapping additive-Schwarz domain decomposition: thread-independent
// partition, SPD validity, golden agreement, partition reuse on refresh,
// and the bitwise 1-vs-N determinism contract.
#include <gtest/gtest.h>

#include <cmath>

#include "gen/began.hpp"
#include "pdn/circuit.hpp"
#include "pdn/solver.hpp"
#include "runtime/thread_pool.hpp"
#include "sparse/cg.hpp"
#include "sparse/schwarz.hpp"
#include "util/rng.hpp"

namespace {

using namespace lmmir;
using namespace lmmir::sparse;

const std::vector<pdn::AssembledSystem>& suite_systems() {
  static const std::vector<pdn::AssembledSystem> systems = [] {
    std::vector<pdn::AssembledSystem> out;
    for (const double side : {30.0, 48.0}) {
      gen::GeneratorConfig cfg;
      cfg.name = "dd_suite";
      cfg.width_um = cfg.height_um = side;
      cfg.seed = 0xDD00u + static_cast<std::uint64_t>(side);
      cfg.use_default_stack();
      cfg.total_current = 0.08 * (side * side) / (64.0 * 64.0);
      const spice::Netlist nl = gen::generate_pdn(cfg);
      out.push_back(pdn::assemble_ir_system(pdn::Circuit(nl)));
    }
    return out;
  }();
  return systems;
}

SchwarzOptions test_options() {
  SchwarzOptions o;  // fixed explicitly so LMMIR_DD_* env cannot skew tests
  o.blocks = 4;
  o.overlap = 1;
  return o;
}

TEST(DomainDecompPartition, CoversEveryUnknownWithSaneTiles) {
  const auto& sys = suite_systems().front();
  const SchwarzPreconditioner dd(sys.matrix, test_options());
  const auto& st = dd.stats();
  EXPECT_EQ(st.subdomains, 4u);
  EXPECT_EQ(st.overlap_rounds, 1u);
  // Overlap duplicates boundary nodes, so the union is at least a cover.
  EXPECT_GE(st.total_nodes, sys.matrix.dim());
  EXPECT_LE(st.max_subdomain, sys.matrix.dim());
  EXPECT_GT(st.max_subdomain, 0u);
}

TEST(DomainDecompPartition, BlocksClampToMatrixDim) {
  CooBuilder coo(3);
  for (std::size_t i = 0; i < 3; ++i) coo.add(i, i, 2.0);
  const auto m = CsrMatrix::from_coo(coo);
  SchwarzOptions o;
  o.blocks = 64;  // far more tiles than unknowns
  o.overlap = 1;
  const SchwarzPreconditioner dd(m, o);
  EXPECT_LE(dd.stats().subdomains, 3u);
  std::vector<double> z;
  dd.apply({2.0, 2.0, 2.0}, z);
  for (const double v : z) EXPECT_TRUE(std::isfinite(v));
}

TEST(DomainDecompApply, AdditiveOperatorIsSymmetric) {
  // Symmetric additive Schwarz (not RAS) was chosen precisely so PCG can
  // use it: ⟨u, M⁻¹v⟩ = ⟨v, M⁻¹u⟩.
  const auto& sys = suite_systems().front();
  const SchwarzPreconditioner dd(sys.matrix, test_options());
  const std::size_t n = sys.matrix.dim();
  util::Rng rng(31);
  std::vector<double> u(n), v(n), mu, mv;
  for (std::size_t i = 0; i < n; ++i) {
    u[i] = rng.uniform_double(-1.0, 1.0);
    v[i] = rng.uniform_double(-1.0, 1.0);
  }
  dd.apply(u, mu);
  dd.apply(v, mv);
  double uv = 0.0, vu = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    uv += u[i] * mv[i];
    vu += v[i] * mu[i];
  }
  EXPECT_NEAR(uv, vu, 1e-9 * std::max(1.0, std::abs(uv)));
}

TEST(DomainDecompGolden, MatchesIc0Solutions) {
  for (const auto& sys : suite_systems()) {
    CgOptions ref_opts;
    ref_opts.preconditioner = PreconditionerKind::Ic0;
    ref_opts.tolerance = 1e-12;
    const auto ref = conjugate_gradient(sys.matrix, sys.rhs, ref_opts);
    ASSERT_TRUE(ref.converged);

    CgOptions dd_opts = ref_opts;
    dd_opts.preconditioner = PreconditionerKind::Schwarz;
    const auto res = conjugate_gradient(sys.matrix, sys.rhs, dd_opts);
    ASSERT_TRUE(res.converged);
    ASSERT_EQ(res.x.size(), ref.x.size());
    for (std::size_t i = 0; i < res.x.size(); ++i)
      EXPECT_NEAR(res.x[i], ref.x[i], 1e-8) << "node " << i;
  }
}

TEST(DomainDecompGolden, OverlapDoesNotHurtConvergence) {
  const auto& sys = suite_systems().back();
  auto iterations = [&](std::size_t overlap) {
    SchwarzOptions o = test_options();
    o.overlap = overlap;
    const SchwarzPreconditioner dd(sys.matrix, o);
    CgOptions opts;
    const auto res = conjugate_gradient(sys.matrix, sys.rhs, opts, &dd);
    EXPECT_TRUE(res.converged) << "overlap " << overlap;
    return res.iterations;
  };
  // Halo exchange is what couples the tiles; one round should never make
  // the block-Jacobi (overlap 0) iteration count meaningfully worse.
  EXPECT_LE(iterations(1), iterations(0) + 2);
}

TEST(DomainDecompReuse, RefreshKeepsPartitionAndMatchesRebuild) {
  const auto& sys = suite_systems().front();
  SchwarzPreconditioner dd(sys.matrix, test_options());
  const auto tiles_before = dd.stats().subdomains;

  CsrMatrix scaled = sys.matrix;
  for (auto& v : scaled.values_mut()) v *= 2.25;
  ASSERT_TRUE(dd.refresh(scaled));
  EXPECT_EQ(dd.stats().refreshes, 1u);
  EXPECT_EQ(dd.stats().subdomains, tiles_before);

  // The partition is value-independent (contiguous index tiles + pattern
  // halos), so refresh and a fresh build must agree bitwise.
  const SchwarzPreconditioner fresh(scaled, test_options());
  util::Rng rng(37);
  std::vector<double> r(sys.matrix.dim()), za, zb;
  for (auto& x : r) x = rng.uniform_double(-1.0, 1.0);
  dd.apply(r, za);
  fresh.apply(r, zb);
  ASSERT_EQ(za.size(), zb.size());
  for (std::size_t i = 0; i < za.size(); ++i)
    ASSERT_EQ(za[i], zb[i]) << "node " << i;  // exact, not NEAR
}

/// Restores the global pool to 1 thread even when an ASSERT bails out.
struct ThreadGuard {
  ~ThreadGuard() { runtime::set_global_threads(1); }
};

TEST(DomainDecompDeterminism, SolveBitwiseIdentical1Vs4Threads) {
  // The load-bearing property: subdomain solves fan out over the pool,
  // yet private buffers + fixed-order accumulation keep the PCG iterate
  // stream bitwise-identical at any thread count.
  const auto& sys = suite_systems().back();
  ThreadGuard guard;
  CgOptions opts;
  opts.preconditioner = PreconditionerKind::Schwarz;

  runtime::set_global_threads(1);
  const auto serial = conjugate_gradient(sys.matrix, sys.rhs, opts);
  runtime::set_global_threads(4);
  const auto parallel = conjugate_gradient(sys.matrix, sys.rhs, opts);
  runtime::set_global_threads(1);

  ASSERT_TRUE(serial.converged);
  ASSERT_EQ(serial.iterations, parallel.iterations);
  ASSERT_EQ(serial.x.size(), parallel.x.size());
  for (std::size_t i = 0; i < serial.x.size(); ++i)
    ASSERT_EQ(serial.x[i], parallel.x[i]) << "node " << i;
  EXPECT_EQ(serial.residual, parallel.residual);
}

}  // namespace
