// obs: metrics registry aggregation across pool workers, histogram bucket
// semantics, text/JSON exporters, span nesting + trace-file round-trip,
// and the non-interference contract (metrics/tracing change no results at
// any thread count).
//
// Note: ctest runs each case in its own process, but the CI sanitize job
// runs them all in one — so cases use uniquely-named instruments, set the
// enable flags they need, and never assume a virgin registry or ring.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "data/sample.hpp"
#include "gen/suite.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace lmmir;

// ---------------------------------------------------------------- metrics

TEST(ObsMetrics, CounterAggregatesAcrossPoolWorkers) {
  obs::set_metrics_enabled(true);
  obs::Counter& c = obs::counter("test_pool_adds_total");
  runtime::ThreadPool pool(8);
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 256; ++i)
    futs.push_back(pool.submit([&c] { c.add(); }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(c.value(), 256u);
}

TEST(ObsMetrics, DisabledWritesAreNoOps) {
  obs::set_metrics_enabled(false);
  obs::Counter& c = obs::counter("test_disabled_total");
  obs::Gauge& g = obs::gauge("test_disabled_gauge");
  obs::Histogram& h = obs::histogram("test_disabled_hist", {1.0, 10.0});
  c.add(5);
  g.add(2.5);
  g.set(7.0);
  h.observe(3.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.snapshot().count, 0u);

  obs::set_metrics_enabled(true);
  c.add(5);
  EXPECT_EQ(c.value(), 5u);
}

TEST(ObsMetrics, GaugeAddAccumulatesAndSetCollapses) {
  obs::set_metrics_enabled(true);
  obs::Gauge& g = obs::gauge("test_gauge_levels");
  runtime::ThreadPool pool(4);
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 16; ++i)
    futs.push_back(pool.submit([&g] { g.add(1.0); }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(g.value(), 16.0);  // 1.0 sums exactly in binary
  g.set(42.0);                 // overwrites every shard's contribution
  EXPECT_EQ(g.value(), 42.0);
  g.add(-2.0);
  EXPECT_EQ(g.value(), 40.0);
}

TEST(ObsMetrics, HistogramBucketBoundariesAreInclusiveUpperEdges) {
  obs::set_metrics_enabled(true);
  obs::Histogram& h = obs::histogram("test_hist_edges", {1.0, 2.0, 5.0});
  for (double v : {0.5, 1.0, 1.5, 2.0, 5.0, 7.0}) h.observe(v);
  const obs::Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.bounds.size(), 3u);
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);  // 0.5, 1.0 (le=1 includes 1)
  EXPECT_EQ(s.counts[1], 2u);  // 1.5, 2.0
  EXPECT_EQ(s.counts[2], 1u);  // 5.0
  EXPECT_EQ(s.counts[3], 1u);  // 7.0 -> +Inf
  EXPECT_EQ(s.count, 6u);
  EXPECT_DOUBLE_EQ(s.sum, 17.0);
}

TEST(ObsMetrics, RenderTextIsPrometheusShaped) {
  obs::set_metrics_enabled(true);
  obs::counter("test_text_events_total").add(3);
  obs::Histogram& h = obs::histogram("test_text_latency", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(3.0);
  const std::string text = obs::MetricsRegistry::instance().render_text();
  EXPECT_NE(text.find("# TYPE test_text_events_total counter\n"
                      "test_text_events_total 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_text_latency histogram"),
            std::string::npos);
  // Cumulative buckets: le=1 -> 1, le=2 -> 2, +Inf -> 3.
  EXPECT_NE(text.find("test_text_latency_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_text_latency_bucket{le=\"2\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("test_text_latency_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("test_text_latency_count 3"), std::string::npos);
}

TEST(ObsMetrics, RenderJsonCarriesAllInstrumentKinds) {
  obs::set_metrics_enabled(true);
  obs::counter("test_json_total").add(2);
  obs::gauge("test_json_gauge").set(1.5);
  obs::histogram("test_json_hist", {10.0}).observe(4.0);
  const std::string json = obs::MetricsRegistry::instance().render_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"test_json_total\":2"), std::string::npos);
  EXPECT_NE(json.find("\"test_json_gauge\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"test_json_hist\":{\"buckets\":[[10,1],[\"+Inf\",0]]"),
            std::string::npos);
}

TEST(ObsMetrics, ResetZeroesButKeepsReferencesValid) {
  obs::set_metrics_enabled(true);
  obs::Counter& c = obs::counter("test_reset_total");
  obs::Histogram& h = obs::histogram("test_reset_hist", {1.0});
  c.add(9);
  h.observe(0.5);
  obs::MetricsRegistry::instance().reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().count, 0u);
  c.add(1);  // the reference survives reset
  EXPECT_EQ(c.value(), 1u);
}

// ---------------------------------------------------------------- tracing

TEST(ObsTrace, SpanNestingMaintainsThreadCurrent) {
  obs::set_trace_enabled(true);
  obs::clear_trace();
  EXPECT_EQ(obs::current_span_id(), 0u);
  {
    obs::Span outer("outer");
    EXPECT_NE(outer.id(), 0u);
    EXPECT_EQ(obs::current_span_id(), outer.id());
    {
      obs::Span inner("inner");
      EXPECT_EQ(obs::current_span_id(), inner.id());
    }
    EXPECT_EQ(obs::current_span_id(), outer.id());
  }
  EXPECT_EQ(obs::current_span_id(), 0u);
  EXPECT_EQ(obs::buffered_events(), 2u);
  obs::set_trace_enabled(false);
}

TEST(ObsTrace, DisabledSpansRecordNothing) {
  obs::set_trace_enabled(false);
  const std::size_t before = obs::buffered_events();
  {
    obs::Span s("ghost");
    EXPECT_EQ(s.id(), 0u);
    EXPECT_EQ(obs::current_span_id(), 0u);
  }
  EXPECT_EQ(obs::emit_span("ghost2", 1, 2), 0u);
  EXPECT_EQ(obs::buffered_events(), before);
}

TEST(ObsTrace, ClearTraceRewindsBuffers) {
  obs::set_trace_enabled(true);
  obs::clear_trace();
  { obs::Span s("a"); }
  { obs::Span s("b"); }
  EXPECT_EQ(obs::buffered_events(), 2u);
  obs::clear_trace();
  EXPECT_EQ(obs::buffered_events(), 0u);
  obs::set_trace_enabled(false);
}

/// Extract `"key":<number>` following the event whose name matches.
double event_field(const std::string& text, const std::string& name,
                   const std::string& key) {
  const std::size_t at = text.find("{\"name\":\"" + name + "\"");
  EXPECT_NE(at, std::string::npos) << "no event named " << name;
  if (at == std::string::npos) return -1.0;
  const std::size_t k = text.find("\"" + key + "\":", at);
  EXPECT_NE(k, std::string::npos);
  if (k == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + k + key.size() + 3, nullptr);
}

TEST(ObsTrace, TraceFileRoundTripsNestedSpans) {
  obs::set_trace_enabled(true);
  obs::clear_trace();
  std::uint64_t outer_id = 0, inner_id = 0;
  {
    obs::Span outer("outer");
    outer_id = outer.id();
    {
      obs::Span inner("inner");
      inner_id = inner.id();
    }
  }
  const std::uint64_t t0 = obs::now_ns();
  const std::uint64_t req =
      obs::emit_span("request", t0, t0 + 1000, outer_id, obs::kRequestTrack);
  EXPECT_NE(req, 0u);
  obs::set_trace_enabled(false);

  const std::string path = testing::TempDir() + "lmmir_test_trace.json";
  ASSERT_TRUE(obs::write_trace(path));
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  // Chrome-trace shape: object with traceEvents, complete ("X") events,
  // thread_name metadata, and the named request pseudo-track.
  EXPECT_EQ(text.front(), '{');
  EXPECT_NE(text.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(text.find("{\"name\":\"requests\"}"), std::string::npos);

  // Parentage round-trips: inner -> outer, request -> outer.
  const std::string inner_args = "\"args\":{\"id\":" +
                                 std::to_string(inner_id) + ",\"parent\":" +
                                 std::to_string(outer_id) + "}";
  EXPECT_NE(text.find(inner_args), std::string::npos) << text;
  const std::string req_args = "\"args\":{\"id\":" + std::to_string(req) +
                               ",\"parent\":" + std::to_string(outer_id) + "}";
  EXPECT_NE(text.find(req_args), std::string::npos) << text;

  // Timestamp containment: inner within [outer.ts, outer.ts + outer.dur].
  const double outer_ts = event_field(text, "outer", "ts");
  const double outer_dur = event_field(text, "outer", "dur");
  const double inner_ts = event_field(text, "inner", "ts");
  const double inner_dur = event_field(text, "inner", "dur");
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_ts + inner_dur, outer_ts + outer_dur + 1e-3);

  obs::clear_trace();
  std::remove(path.c_str());
}

// ----------------------------------------------------- non-interference

std::uint64_t fnv_floats(std::uint64_t h, const std::vector<float>& v) {
  for (float f : v) {
    std::uint32_t bits;
    std::memcpy(&bits, &f, sizeof bits);
    for (int b = 0; b < 4; ++b) {
      h ^= (bits >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

/// Featurize + golden-solve one generated case: covers the feature,
/// sparse, pdn, and runtime instrumentation paths.
std::uint64_t sample_checksum() {
  gen::SuiteOptions suite_opts;
  suite_opts.scale = 0.05;
  const auto configs = gen::fake_training_suite(1, 4242, suite_opts);
  data::SampleOptions sopts;
  sopts.input_side = 16;
  sopts.pc_grid = 4;
  const data::Sample s = data::make_sample(configs[0], sopts);
  std::uint64_t h = 1469598103934665603ull;
  h = fnv_floats(h, s.circuit.data());
  h = fnv_floats(h, s.target.data());
  return h;
}

TEST(ObsDeterminism, MetricsAndTracePerturbNothingAtAnyThreadCount) {
  obs::set_metrics_enabled(false);
  obs::set_trace_enabled(false);
  runtime::set_global_threads(1);
  const std::uint64_t base = sample_checksum();

  runtime::set_global_threads(8);
  EXPECT_EQ(sample_checksum(), base) << "thread count changed results";

  obs::set_metrics_enabled(true);
  obs::set_trace_enabled(true);
  obs::clear_trace();
  runtime::set_global_threads(1);
  EXPECT_EQ(sample_checksum(), base) << "instrumentation changed results";
  runtime::set_global_threads(8);
  EXPECT_EQ(sample_checksum(), base)
      << "instrumentation changed results at 8 threads";
  EXPECT_GT(obs::buffered_events(), 0u);  // the run did record spans

  obs::set_trace_enabled(false);
  obs::clear_trace();
  runtime::set_global_threads(1);
}

}  // namespace
