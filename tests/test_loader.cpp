// data/loader: batch providers — streaming-vs-in-memory bitwise parity,
// thread-count invariance, prefetch, zero-allocation slot pooling.
#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "data/dataset.hpp"
#include "data/loader.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace lmmir;

data::Dataset tiny_dataset() {
  data::DatasetOptions opts;
  opts.sample.input_side = 16;
  opts.sample.pc_grid = 4;
  opts.fake_cases = 3;
  opts.real_cases = 1;
  opts.fake_oversample = 2;
  opts.real_oversample = 2;
  opts.suite_scale = 0.04;
  opts.seed = 17;
  return data::build_training_dataset(opts);
}

struct TempCorpus {
  explicit TempCorpus(const data::Dataset& ds, const std::string& name)
      : path((std::filesystem::temp_directory_path() / name).string()) {
    std::filesystem::remove_all(path);
    data::write_corpus(ds, path, /*samples_per_shard=*/2);
  }
  ~TempCorpus() { std::filesystem::remove_all(path); }
  std::string path;
};

/// Restore the global pool size on scope exit (tests must not leak a
/// reconfigured pool into the rest of the suite).
struct ThreadGuard {
  ThreadGuard() : saved(runtime::global_threads()) {}
  ~ThreadGuard() { runtime::set_global_threads(saved); }
  std::size_t saved;
};

data::LoaderOptions tiny_loader_opts() {
  data::LoaderOptions opts;
  opts.batch_size = 2;
  opts.augment = true;
  opts.noise_std_max = 1e-2f;
  return opts;
}

/// Drain one epoch, concatenating every batch's data for comparison.
struct EpochDump {
  std::vector<float> circuit, tokens, target;
  std::size_t batches = 0;
};

EpochDump drain_epoch(data::BatchProvider& provider, std::uint64_t seed) {
  util::Rng rng(seed);
  provider.start_epoch(rng);
  EpochDump dump;
  data::Batch batch;
  while (provider.next(batch)) {
    dump.circuit.insert(dump.circuit.end(), batch.circuit.data().begin(),
                        batch.circuit.data().end());
    dump.tokens.insert(dump.tokens.end(), batch.tokens.data().begin(),
                       batch.tokens.data().end());
    dump.target.insert(dump.target.end(), batch.target.data().begin(),
                       batch.target.data().end());
    ++dump.batches;
  }
  return dump;
}

TEST(Loader, StreamingMatchesInMemoryBitwise) {
  const auto ds = tiny_dataset();
  TempCorpus corpus_dir(ds, "lmmir_loader_parity");
  data::ShardCorpus corpus(corpus_dir.path);

  data::DatasetBatchProvider in_memory(ds, tiny_loader_opts());
  data::StreamingLoader streaming(corpus, tiny_loader_opts());
  EXPECT_EQ(in_memory.epoch_size(), streaming.epoch_size());

  for (std::uint64_t seed : {3u, 4u}) {
    const EpochDump a = drain_epoch(in_memory, seed);
    const EpochDump b = drain_epoch(streaming, seed);
    EXPECT_EQ(a.batches, b.batches);
    EXPECT_EQ(a.circuit, b.circuit);  // bitwise, noise included
    EXPECT_EQ(a.tokens, b.tokens);
    EXPECT_EQ(a.target, b.target);
  }
}

TEST(Loader, BitwiseIdenticalAcrossThreadCounts) {
  const auto ds = tiny_dataset();
  TempCorpus corpus_dir(ds, "lmmir_loader_threads");
  data::ShardCorpus corpus(corpus_dir.path);
  ThreadGuard guard;

  runtime::set_global_threads(1);
  data::StreamingLoader serial(corpus, tiny_loader_opts());
  const EpochDump a = drain_epoch(serial, 11);

  runtime::set_global_threads(3);  // async prefetch actually engages
  data::StreamingLoader threaded(corpus, tiny_loader_opts());
  const EpochDump b = drain_epoch(threaded, 11);

  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.circuit, b.circuit);
  EXPECT_EQ(a.tokens, b.tokens);
  EXPECT_EQ(a.target, b.target);
}

TEST(Loader, PrefetchToggleIsBitwiseNoop) {
  const auto ds = tiny_dataset();
  TempCorpus corpus_dir(ds, "lmmir_loader_prefetch");
  data::ShardCorpus corpus(corpus_dir.path);
  ThreadGuard guard;
  runtime::set_global_threads(3);

  auto opts = tiny_loader_opts();
  data::StreamingLoader prefetching(corpus, opts);
  opts.prefetch = false;
  data::StreamingLoader inline_only(corpus, opts);

  const EpochDump a = drain_epoch(prefetching, 29);
  const EpochDump b = drain_epoch(inline_only, 29);
  EXPECT_EQ(a.circuit, b.circuit);
  EXPECT_EQ(a.target, b.target);
}

TEST(Loader, SteadyStateMakesZeroBatchAllocations) {
  const auto ds = tiny_dataset();
  TempCorpus corpus_dir(ds, "lmmir_loader_allocs");
  data::ShardCorpus corpus(corpus_dir.path);
  data::StreamingLoader loader(corpus, tiny_loader_opts());

  util::Rng rng(7);
  data::Batch batch;  // persists across epochs, like the trainer's
  loader.start_epoch(rng);
  while (loader.next(batch)) {
  }
  const std::uint64_t after_warmup = data::batch_tensor_allocations();
  for (int epoch = 0; epoch < 3; ++epoch) {
    loader.start_epoch(rng);
    while (loader.next(batch)) {
    }
  }
  EXPECT_EQ(data::batch_tensor_allocations(), after_warmup);
}

TEST(Loader, ResidentBytesBoundedByPrefetchWindow) {
  const auto ds = tiny_dataset();
  TempCorpus corpus_dir(ds, "lmmir_loader_resident");
  data::ShardCorpus corpus(corpus_dir.path);
  auto opts = tiny_loader_opts();
  data::StreamingLoader loader(corpus, opts);

  util::Rng rng(9);
  data::Batch batch;
  loader.start_epoch(rng);
  while (loader.next(batch)) {
  }
  const data::Sample& s = ds.samples.front();
  const std::size_t batch_bytes =
      static_cast<std::size_t>(opts.batch_size) *
      (s.circuit.numel() + s.tokens.numel() + s.target.numel()) *
      sizeof(float);
  EXPECT_LE(loader.resident_batch_bytes(),
            loader.prefetch_window() * batch_bytes);
  // The corpus itself is file-backed mapping, not loader-resident memory.
  EXPECT_GT(corpus.mapped_bytes(), loader.resident_batch_bytes());
}

TEST(Loader, InMemoryProviderReusesSlotsToo) {
  const auto ds = tiny_dataset();
  data::DatasetBatchProvider provider(ds, tiny_loader_opts());
  util::Rng rng(13);
  data::Batch batch;
  provider.start_epoch(rng);
  ASSERT_TRUE(provider.next(batch));
  const auto* circuit_impl = batch.circuit.impl().get();
  const std::uint64_t after_first = data::batch_tensor_allocations();
  while (provider.next(batch)) {
  }
  provider.start_epoch(rng);
  while (provider.next(batch)) {
  }
  EXPECT_EQ(data::batch_tensor_allocations(), after_first);
  EXPECT_EQ(batch.circuit.impl().get(), circuit_impl);  // same pooled buffer
}

TEST(Loader, NextWithoutStartEpochIsEmpty) {
  const auto ds = tiny_dataset();
  data::DatasetBatchProvider provider(ds, tiny_loader_opts());
  data::Batch batch;
  EXPECT_FALSE(provider.next(batch));
}

}  // namespace
