// preconditioners: factory keys, apply correctness on small matrices, and
// the PCG contract on real suite circuits — every preconditioner reaches
// the same solution, SSOR/IC0 never iterate more than plain CG, and
// results are bitwise-identical for any runtime thread count.
#include <gtest/gtest.h>

#include <cmath>

#include "gen/began.hpp"
#include "pdn/circuit.hpp"
#include "pdn/solver.hpp"
#include "runtime/thread_pool.hpp"
#include "sparse/cg.hpp"
#include "sparse/preconditioner.hpp"
#include "util/rng.hpp"

namespace {

using namespace lmmir;
using namespace lmmir::sparse;

constexpr PreconditionerKind kAllKinds[] = {
    PreconditionerKind::None, PreconditionerKind::Jacobi,
    PreconditionerKind::Ssor, PreconditionerKind::Ic0,
    PreconditionerKind::Amg,  PreconditionerKind::Schwarz};

/// Reduced MNA systems of a few generated suite circuits (shared across
/// tests; generation is deterministic).
const std::vector<pdn::AssembledSystem>& suite_systems() {
  static const std::vector<pdn::AssembledSystem> systems = [] {
    std::vector<pdn::AssembledSystem> out;
    for (const double side : {26.0, 40.0}) {
      gen::GeneratorConfig cfg;
      cfg.name = "precond_suite";
      cfg.width_um = cfg.height_um = side;
      cfg.seed = 0xABCDu + static_cast<std::uint64_t>(side);
      cfg.use_default_stack();
      cfg.total_current = 0.08 * (side * side) / (64.0 * 64.0);
      const spice::Netlist nl = gen::generate_pdn(cfg);
      out.push_back(pdn::assemble_ir_system(pdn::Circuit(nl)));
    }
    return out;
  }();
  return systems;
}

TEST(PrecondFactory, ParsesCanonicalKeys) {
  EXPECT_EQ(preconditioner_kind_from_string("none"), PreconditionerKind::None);
  EXPECT_EQ(preconditioner_kind_from_string("Jacobi"),
            PreconditionerKind::Jacobi);
  EXPECT_EQ(preconditioner_kind_from_string("SSOR"), PreconditionerKind::Ssor);
  EXPECT_EQ(preconditioner_kind_from_string("ic0"), PreconditionerKind::Ic0);
  EXPECT_EQ(preconditioner_kind_from_string("amg"), PreconditionerKind::Amg);
  EXPECT_EQ(preconditioner_kind_from_string("multigrid"),
            PreconditionerKind::Amg);
  EXPECT_EQ(preconditioner_kind_from_string("dd"), PreconditionerKind::Schwarz);
  EXPECT_EQ(preconditioner_kind_from_string("Schwarz"),
            PreconditionerKind::Schwarz);
  EXPECT_FALSE(preconditioner_kind_from_string("cholmod").has_value());
  for (const auto kind : kAllKinds)
    EXPECT_EQ(preconditioner_kind_from_string(to_string(kind)), kind);
}

TEST(PrecondFactory, UnknownKeyThrows) {
  CooBuilder coo(1);
  coo.add(0, 0, 1.0);
  const auto m = CsrMatrix::from_coo(coo);
  EXPECT_THROW(make_preconditioner("cholmod", m), std::invalid_argument);
  EXPECT_NO_THROW(make_preconditioner("IC0", m));
}

TEST(PrecondApply, JacobiScalesByInverseDiagonal) {
  CooBuilder coo(2);
  coo.add(0, 0, 4.0);
  coo.add(1, 1, 0.5);
  const auto m = CsrMatrix::from_coo(coo);
  const auto p = make_preconditioner(PreconditionerKind::Jacobi, m);
  std::vector<double> z;
  p->apply({2.0, 2.0}, z);
  EXPECT_DOUBLE_EQ(z[0], 0.5);
  EXPECT_DOUBLE_EQ(z[1], 4.0);
}

TEST(PrecondApply, Ic0ExactOnTridiagonal) {
  // IC(0) on a tridiagonal SPD matrix has no dropped fill: L Lᵀ = A, so
  // M⁻¹(A v) must reproduce v to rounding.
  const std::size_t n = 12;
  CooBuilder coo(n);
  for (std::size_t i = 0; i < n; ++i) {
    coo.add(i, i, 3.0);
    if (i + 1 < n) {
      coo.add(i, i + 1, -1.0);
      coo.add(i + 1, i, -1.0);
    }
  }
  const auto m = CsrMatrix::from_coo(coo);
  const auto p = make_preconditioner(PreconditionerKind::Ic0, m);
  util::Rng rng(42);
  std::vector<double> v(n), av, z;
  for (auto& x : v) x = rng.uniform_double(-1.0, 1.0);
  m.multiply(v, av);
  p->apply(av, z);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(z[i], v[i], 1e-12);
}

TEST(PrecondApply, SsorInverseIsSymmetric) {
  // PCG needs M SPD; check ⟨u, M⁻¹v⟩ = ⟨v, M⁻¹u⟩ on a suite matrix.
  const auto& sys = suite_systems().front();
  const auto p = make_preconditioner(PreconditionerKind::Ssor, sys.matrix);
  const std::size_t n = sys.matrix.dim();
  util::Rng rng(7);
  std::vector<double> u(n), v(n), mu, mv;
  for (std::size_t i = 0; i < n; ++i) {
    u[i] = rng.uniform_double(-1.0, 1.0);
    v[i] = rng.uniform_double(-1.0, 1.0);
  }
  p->apply(u, mu);
  p->apply(v, mv);
  double uv = 0.0, vu = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    uv += u[i] * mv[i];
    vu += v[i] * mu[i];
  }
  EXPECT_NEAR(uv, vu, 1e-9 * std::max(1.0, std::abs(uv)));
}

// Property (a): every preconditioner reproduces the Jacobi-PCG solution on
// suite circuits within 1e-8.
TEST(PrecondProperty, SolutionsAgreeAcrossPreconditioners) {
  for (const auto& sys : suite_systems()) {
    CgOptions jopts;
    jopts.preconditioner = PreconditionerKind::Jacobi;
    jopts.tolerance = 1e-12;  // headroom so iterates agree to 1e-8
    const auto ref = conjugate_gradient(sys.matrix, sys.rhs, jopts);
    ASSERT_TRUE(ref.converged);
    for (const auto kind : kAllKinds) {
      CgOptions opts = jopts;
      opts.preconditioner = kind;
      const auto res = conjugate_gradient(sys.matrix, sys.rhs, opts);
      ASSERT_TRUE(res.converged) << to_string(kind);
      ASSERT_EQ(res.x.size(), ref.x.size());
      for (std::size_t i = 0; i < res.x.size(); ++i)
        ASSERT_NEAR(res.x[i], ref.x[i], 1e-8)
            << to_string(kind) << " node " << i;
    }
  }
}

// Property (b): SSOR and IC(0) never increase the iteration count over
// unpreconditioned CG on suite matrices.
TEST(PrecondProperty, SsorAndIc0NeverIterateMoreThanPlainCg) {
  for (const auto& sys : suite_systems()) {
    auto iterations = [&](PreconditionerKind kind) {
      CgOptions opts;
      opts.preconditioner = kind;
      const auto res = conjugate_gradient(sys.matrix, sys.rhs, opts);
      EXPECT_TRUE(res.converged) << to_string(kind);
      return res.iterations;
    };
    const std::size_t base = iterations(PreconditionerKind::None);
    EXPECT_LE(iterations(PreconditionerKind::Ssor), base);
    EXPECT_LE(iterations(PreconditionerKind::Ic0), base);
  }
}

/// Restores the global pool to 1 thread even when an ASSERT bails out of
/// the test early (a leaked 4-thread pool would skew later tests).
struct ThreadGuard {
  ~ThreadGuard() { runtime::set_global_threads(1); }
};

// Property (c): the PCG iterate stream is bitwise-identical at 1 vs N
// runtime threads (fixed-block reductions; triangular sweeps serial).
TEST(PrecondProperty, BitwiseIdenticalAcrossThreadCounts) {
  const auto& sys = suite_systems().back();
  ThreadGuard guard;
  for (const auto kind : kAllKinds) {
    CgOptions opts;
    opts.preconditioner = kind;
    runtime::set_global_threads(1);
    const auto serial = conjugate_gradient(sys.matrix, sys.rhs, opts);
    runtime::set_global_threads(4);
    const auto parallel = conjugate_gradient(sys.matrix, sys.rhs, opts);
    runtime::set_global_threads(1);
    ASSERT_EQ(serial.iterations, parallel.iterations) << to_string(kind);
    ASSERT_EQ(serial.x.size(), parallel.x.size());
    for (std::size_t i = 0; i < serial.x.size(); ++i)
      ASSERT_EQ(serial.x[i], parallel.x[i])
          << to_string(kind) << " node " << i;  // exact, not NEAR
    EXPECT_EQ(serial.residual, parallel.residual) << to_string(kind);
  }
}

// An injected (prebuilt) preconditioner is reused rather than rebuilt:
// setup time is attributed to the caller and results match.
TEST(Precond, InjectedInstanceMatchesFactoryPath) {
  const auto& sys = suite_systems().front();
  CgOptions opts;
  opts.preconditioner = PreconditionerKind::Ic0;
  const auto built_in = conjugate_gradient(sys.matrix, sys.rhs, opts);
  const auto shared = make_preconditioner(PreconditionerKind::Ic0, sys.matrix);
  const auto injected =
      conjugate_gradient(sys.matrix, sys.rhs, opts, shared.get());
  EXPECT_EQ(injected.precond_setup_seconds, 0.0);
  ASSERT_EQ(built_in.x.size(), injected.x.size());
  for (std::size_t i = 0; i < built_in.x.size(); ++i)
    EXPECT_EQ(built_in.x[i], injected.x[i]);
}

}  // namespace
