// eval: F1 hotspot metric semantics, MAE, degenerate cases.
#include <gtest/gtest.h>

#include "eval/metrics.hpp"

namespace {

using lmmir::eval::compute_metrics;
using lmmir::grid::Grid2D;

Grid2D make(std::initializer_list<float> values, std::size_t cols) {
  Grid2D g(values.size() / cols, cols);
  std::size_t i = 0;
  for (float v : values) g.data()[i++] = v;
  return g;
}

TEST(Metrics, PerfectPrediction) {
  const Grid2D t = make({0.1f, 0.2f, 0.9f, 1.0f}, 2);
  const auto m = compute_metrics(t, t);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
  EXPECT_DOUBLE_EQ(m.mae, 0.0);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  // Threshold 0.9: only the 1.0 cell is positive.
  EXPECT_EQ(m.tp, 1u);
  EXPECT_EQ(m.tn, 3u);
}

TEST(Metrics, CountsConfusionQuadrants) {
  const Grid2D truth = make({1.0f, 0.95f, 0.5f, 0.1f}, 2);  // pos: 1.0, 0.95
  const Grid2D pred = make({1.0f, 0.5f, 0.95f, 0.1f}, 2);   // pred pos: 1.0, 0.95@(1,0)
  const auto m = compute_metrics(pred, truth);
  EXPECT_EQ(m.tp, 1u);
  EXPECT_EQ(m.fn, 1u);
  EXPECT_EQ(m.fp, 1u);
  EXPECT_EQ(m.tn, 1u);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  EXPECT_DOUBLE_EQ(m.f1, 0.5);
}

TEST(Metrics, MaeIsMeanAbsolute) {
  const Grid2D truth = make({1.0f, 2.0f}, 2);
  const Grid2D pred = make({1.5f, 1.0f}, 2);
  const auto m = compute_metrics(pred, truth);
  EXPECT_NEAR(m.mae, 0.75, 1e-9);
}

TEST(Metrics, UnderPredictionKillsRecall) {
  const Grid2D truth = make({1.0f, 0.95f, 0.2f, 0.1f}, 2);
  const Grid2D pred = make({0.5f, 0.5f, 0.2f, 0.1f}, 2);  // misses hotspots
  const auto m = compute_metrics(pred, truth);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(Metrics, ThresholdFractionConfigurable) {
  const Grid2D truth = make({1.0f, 0.6f, 0.2f, 0.0f}, 2);
  const auto strict = compute_metrics(truth, truth, 0.9);
  const auto loose = compute_metrics(truth, truth, 0.5);
  EXPECT_EQ(strict.tp, 1u);
  EXPECT_EQ(loose.tp, 2u);
}

TEST(Metrics, ShapeMismatchThrows) {
  const Grid2D a(2, 2), b(2, 3);
  EXPECT_THROW(compute_metrics(a, b), std::invalid_argument);
}

TEST(Metrics, PearsonCorrelation) {
  const Grid2D a = make({1.0f, 2.0f, 3.0f, 4.0f}, 2);
  // Perfect positive correlation with itself.
  EXPECT_NEAR(lmmir::eval::pearson_cc(a, a), 1.0, 1e-12);
  // Perfect negative correlation with its negation.
  Grid2D neg = a;
  neg.scale(-1.0f);
  EXPECT_NEAR(lmmir::eval::pearson_cc(a, neg), -1.0, 1e-12);
  // Constant field: defined as 0.
  const Grid2D constant(2, 2, 3.0f);
  EXPECT_DOUBLE_EQ(lmmir::eval::pearson_cc(a, constant), 0.0);
  // Shape mismatch throws.
  EXPECT_THROW(lmmir::eval::pearson_cc(a, Grid2D(3, 3)), std::invalid_argument);
  // compute_metrics fills cc.
  const auto m = compute_metrics(a, a);
  EXPECT_NEAR(m.cc, 1.0, 1e-12);
}

TEST(Metrics, AllZeroTruthDegenerate) {
  const Grid2D truth(2, 2, 0.0f);
  const Grid2D pred(2, 2, 0.0f);
  const auto m = compute_metrics(pred, truth);
  // No positives anywhere: F1 defined as 0 (threshold 0, nothing above it).
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
  EXPECT_EQ(m.tp, 0u);
  EXPECT_DOUBLE_EQ(m.mae, 0.0);
}

}  // namespace
