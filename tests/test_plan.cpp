// Ahead-of-time inference plans: the differential eager-vs-plan harness.
//
// The contract under test (docs/PLAN.md): replaying a recorded plan is
// BITWISE identical to the eager forward that recorded it — for every
// batch size, thread count and arena mode — and steady-state replay
// performs zero tensor heap allocations.  Plus the structural
// guarantees: liveness-sound buffer offsets, conv→bn→act fusion,
// im2col reuse, immutable sealed plans, per-shape plan caching with
// permanent eager fallback for unsupported recordings.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "models/registry.hpp"
#include "pointcloud/pool.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/arena.hpp"
#include "tensor/ops.hpp"
#include "tensor/plan.hpp"
#include "util/rng.hpp"

namespace {

using namespace lmmir;
using tensor::Tensor;
namespace plan = lmmir::tensor::plan;

/// FNV-1a over the float bit patterns — the checksum the golden tests pin.
std::uint64_t fnv1a(const std::vector<float>& v) {
  std::uint64_t h = 1469598103934665603ull;
  for (float f : v) {
    std::uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    for (int i = 0; i < 4; ++i) {
      h ^= (bits >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

/// Deterministic, platform-independent test data (no RNG, no libm): a
/// small integer pattern scaled into a well-conditioned float range.
std::vector<float> patterned(std::size_t n, float step, unsigned phase) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = step * static_cast<float>(
                      static_cast<int>((i * 37u + phase) % 23u) - 11);
  return v;
}

constexpr int kTinyC = 3;     // input channels
constexpr int kTinySide = 6;  // spatial side
constexpr int kTinyF = 4;     // conv filters
constexpr int kTinyOut = 2;   // head width

/// conv → bn(eval) → relu → reshape → linear: every arithmetic step is
/// exactly rounded (conv/linear dot products, IEEE sqrt in bn), so the
/// outputs — and their checksums — are identical across platforms.
struct TinyPlanNet {
  Tensor wc = Tensor::from_data({kTinyF, kTinyC, 3, 3},
                                patterned(kTinyF * kTinyC * 9, 0.05f, 1));
  Tensor bc = Tensor::from_data({kTinyF}, patterned(kTinyF, 0.02f, 2));
  Tensor gamma = Tensor::from_data({kTinyF}, {1.0f, 0.9f, 1.1f, 1.05f});
  Tensor beta = Tensor::from_data({kTinyF}, {0.01f, -0.02f, 0.0f, 0.03f});
  std::vector<float> rm = {0.05f, -0.1f, 0.0f, 0.2f};
  std::vector<float> rv = {1.0f, 0.8f, 1.2f, 0.9f};
  Tensor wl = Tensor::from_data(
      {kTinyOut, kTinyF * kTinySide * kTinySide},
      patterned(kTinyOut * kTinyF * kTinySide * kTinySide, 0.01f, 3));
  Tensor bl = Tensor::from_data({kTinyOut}, patterned(kTinyOut, 0.1f, 4));

  Tensor operator()(const Tensor& x, const Tensor&) {
    Tensor y = tensor::conv2d(x, wc, bc, 1, 1);
    y = tensor::batch_norm2d(y, gamma, beta, rm, rv, /*training=*/false);
    y = tensor::relu(y);
    y = tensor::reshape(y, {x.dim(0), kTinyF * kTinySide * kTinySide});
    return tensor::linear(y, wl, bl);
  }

  plan::PlanRuntime::EagerFn fn() {
    return [this](const Tensor& c, const Tensor& t) { return (*this)(c, t); };
  }
};

Tensor tiny_input(int batch) {
  return Tensor::from_data(
      {batch, kTinyC, kTinySide, kTinySide},
      patterned(static_cast<std::size_t>(batch) * kTinyC * kTinySide *
                    kTinySide,
                0.1f, 7));
}

TEST(PlanRecord, RecordsOnceThenReplaysBitwise) {
  TinyPlanNet net;
  plan::PlanRuntime rt(true);
  const Tensor x = tiny_input(2);

  tensor::NoGradGuard no_grad;
  const Tensor recorded = rt.run(x, Tensor(), net.fn());  // eager + record
  const Tensor replayed = rt.run(x, Tensor(), net.fn());  // plan replay
  ASSERT_EQ(recorded.numel(), replayed.numel());
  for (std::size_t i = 0; i < recorded.numel(); ++i)
    ASSERT_EQ(recorded.data()[i], replayed.data()[i]) << "diverged at " << i;

  const plan::RuntimeStats s = rt.stats();
  EXPECT_EQ(s.plans_recorded, 1u);
  EXPECT_EQ(s.plans_unsupported, 0u);
  EXPECT_EQ(s.eager_runs, 1u);  // the recording pass
  EXPECT_EQ(s.replays, 1u);

  auto p = rt.plan_for(x, Tensor());
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->supported());
  EXPECT_EQ(p->circuit_shape(), x.shape());
  EXPECT_FALSE(p->has_tokens());
}

// The core differential sweep: batch sizes x thread counts x arena modes,
// plan on and off, all bitwise equal to the serial no-arena eager
// reference (and therefore to each other).
TEST(PlanDifferential, TinyNetSweepBitwiseAcrossConfigs) {
  TinyPlanNet net;
  for (int batch : {1, 2, 3}) {
    const Tensor x = tiny_input(batch);
    // Reference: eager, one thread, no arena, no plan.
    runtime::set_global_threads(1);
    std::vector<float> ref;
    {
      tensor::NoGradGuard no_grad;
      ref = net(x, Tensor()).data();
    }
    const std::uint64_t ref_sum = fnv1a(ref);

    for (std::size_t threads : {1u, 4u, 8u}) {
      runtime::set_global_threads(threads);
      for (bool use_arena : {false, true}) {
        tensor::TensorArena arena;
        plan::PlanRuntime rt(true);
        for (int pass = 0; pass < 3; ++pass) {  // record, then two replays
          std::vector<float> got;
          {
            tensor::NoGradGuard no_grad;
            tensor::ArenaScope scope(use_arena ? &arena : nullptr);
            got = rt.run(x, Tensor(), net.fn()).data();
          }
          if (use_arena) arena.reset();
          ASSERT_EQ(got.size(), ref.size());
          for (std::size_t i = 0; i < ref.size(); ++i)
            ASSERT_EQ(got[i], ref[i])
                << "batch=" << batch << " threads=" << threads
                << " arena=" << use_arena << " pass=" << pass
                << " diverged at " << i;
          ASSERT_EQ(fnv1a(got), ref_sum);
        }
        EXPECT_EQ(rt.stats().replays, 2u);
      }
    }
  }
  runtime::set_global_threads(1);
}

// Golden checksums, hardcoded: TinyPlanNet is libm-free apart from IEEE
// sqrt, so these values pin the numerics of conv, batch-norm folding,
// relu fusion and linear across refactors AND across the scalar/AVX2
// kernel split (the dispatched kernel must reproduce them bit-for-bit).
TEST(PlanDifferential, GoldenChecksums) {
  const std::uint64_t kGolden[] = {0x8d449315082e16e2ull,
                                   0xfec80fc6e5996232ull,
                                   0xc3810cbfca26c8baull};
  TinyPlanNet net;
  plan::PlanRuntime rt(true);
  tensor::NoGradGuard no_grad;
  for (int batch : {1, 2, 3}) {
    const Tensor x = tiny_input(batch);
    const std::uint64_t eager_sum = fnv1a(net(x, Tensor()).data());
    rt.run(x, Tensor(), net.fn());  // record
    const std::uint64_t replay_sum =
        fnv1a(rt.run(x, Tensor(), net.fn()).data());
    EXPECT_EQ(eager_sum, kGolden[batch - 1])
        << "eager checksum changed for batch " << batch << ": 0x" << std::hex
        << eager_sum;
    EXPECT_EQ(replay_sum, kGolden[batch - 1])
        << "replay checksum changed for batch " << batch << ": 0x" << std::hex
        << replay_sum;
  }
}

// Every registry model must record a supported plan and replay it
// bitwise, across thread counts and arena modes (the models cover both
// channel counts: contest-3 and the full feature stack).
TEST(PlanDifferential, RegistryModelsRecordSupportedPlansAndReplayBitwise) {
  constexpr int kSide = 16;
  constexpr int kTokens = 9;
  for (const auto& spec : models::model_registry()) {
    auto model = spec.make(11);
    model->set_training(false);
    const bool full_sweep = spec.name == "LMM-IR";

    util::Rng rng(117);
    const Tensor circuit = Tensor::randn(
        {1, model->in_channels(), kSide, kSide}, rng, 0.5f);
    const Tensor tokens =
        Tensor::randn({1, kTokens, pc::kTokenFeatureDim}, rng, 0.5f);

    runtime::set_global_threads(1);
    std::vector<float> ref;
    {
      tensor::NoGradGuard no_grad;
      ref = model->forward(circuit, tokens).data();
    }

    plan::PlanRuntime rt(true);
    auto fn = [&](const Tensor& c, const Tensor& t) {
      return model->forward(c, t);
    };
    const auto threads = full_sweep ? std::vector<std::size_t>{1, 4, 8}
                                    : std::vector<std::size_t>{1, 4};
    for (std::size_t t : threads) {
      runtime::set_global_threads(t);
      for (bool use_arena : {true, false}) {
        if (!full_sweep && !use_arena) continue;
        tensor::TensorArena arena;
        std::vector<float> got;
        {
          tensor::NoGradGuard no_grad;
          tensor::ArenaScope scope(use_arena ? &arena : nullptr);
          got = rt.run(circuit, tokens, fn).data();
        }
        if (use_arena) arena.reset();
        ASSERT_EQ(got.size(), ref.size()) << spec.name;
        for (std::size_t i = 0; i < ref.size(); ++i)
          ASSERT_EQ(got[i], ref[i])
              << spec.name << " threads=" << t << " arena=" << use_arena
              << " diverged at " << i;
      }
    }
    auto p = rt.plan_for(circuit, tokens);
    ASSERT_NE(p, nullptr) << spec.name;
    EXPECT_TRUE(p->supported())
        << spec.name << ": " << p->unsupported_reason();
    // Every run after the recording pass must be a replay.
    const std::size_t runs = full_sweep ? threads.size() * 2 : threads.size();
    EXPECT_EQ(rt.stats().replays, runs - 1) << spec.name;
    EXPECT_EQ(rt.stats().eager_runs, 1u) << spec.name;
    EXPECT_EQ(rt.stats().plans_recorded, 1u) << spec.name;
  }
  runtime::set_global_threads(1);
}

// ---- memory-plan properties ---------------------------------------------

std::shared_ptr<const plan::InferencePlan> record_tiny_plan(int batch) {
  TinyPlanNet net;
  plan::PlanRuntime rt(true);
  tensor::NoGradGuard no_grad;
  const Tensor x = tiny_input(batch);
  rt.run(x, Tensor(), net.fn());
  auto p = rt.plan_for(x, Tensor());
  EXPECT_NE(p, nullptr);
  return p;
}

TEST(PlanMemory, OffsetsRespectLivenessAndAlignment) {
  auto p = record_tiny_plan(2);
  ASSERT_TRUE(p->supported());
  const auto& bufs = p->buffers();
  ASSERT_FALSE(bufs.empty());
  std::size_t high_water = 0;
  for (const auto& b : bufs) {
    EXPECT_EQ(b.offset % 16, 0u) << "buffer for value " << b.value;
    EXPECT_GT(b.floats, 0u);
    EXPECT_LE(b.def, b.last);
    high_water = std::max(high_water, b.offset + b.floats);
    // No value fused away may own storage.
    EXPECT_FALSE(p->values()[static_cast<std::size_t>(b.value)].eliminated);
  }
  EXPECT_LE(high_water, p->arena_floats());
  EXPECT_GE(p->arena_floats(), p->peak_live_floats());

  // The load-bearing invariant: buffers live at the same time never share
  // arena bytes.
  for (std::size_t i = 0; i < bufs.size(); ++i)
    for (std::size_t j = i + 1; j < bufs.size(); ++j) {
      const auto& a = bufs[i];
      const auto& b = bufs[j];
      const bool time_overlap = a.def <= b.last && b.def <= a.last;
      const bool space_overlap =
          a.offset < b.offset + b.floats && b.offset < a.offset + a.floats;
      EXPECT_FALSE(time_overlap && space_overlap)
          << "values " << a.value << " and " << b.value
          << " overlap in both time and space";
    }
}

TEST(PlanMemory, SequentialChainReusesArenaSlots) {
  // Four equally-sized temps with strictly sequential lifetimes: the
  // planner must pack them into less storage than their sum (slots are
  // recycled as lifetimes end).  No conv, so fusion leaves all steps.
  plan::PlanRuntime rt(true);
  auto fn = [](const Tensor& c, const Tensor&) {
    return tensor::sigmoid(tensor::relu(tensor::sigmoid(tensor::relu(c))));
  };
  tensor::NoGradGuard no_grad;
  const Tensor x = Tensor::from_data({2, 8, 8}, patterned(128, 0.1f, 5));
  rt.run(x, Tensor(), fn);
  auto p = rt.plan_for(x, Tensor());
  ASSERT_NE(p, nullptr);
  ASSERT_TRUE(p->supported());
  std::size_t sum = 0;
  for (const auto& b : p->buffers()) sum += b.floats;
  EXPECT_GT(sum, p->arena_floats());  // reuse actually happened
  // Bitwise identity still holds through the packed arena.
  const std::vector<float> ref = fn(x, Tensor()).data();
  const std::vector<float> got = rt.run(x, Tensor(), fn).data();
  EXPECT_EQ(ref, got);
}

// ---- fusion / im2col annotations ----------------------------------------

TEST(PlanFusion, ConvBnReluFoldIntoTheConvStep) {
  auto p = record_tiny_plan(1);
  ASSERT_TRUE(p->supported());
  // bn + relu fold into the conv's output loop; reshape and linear stay.
  EXPECT_EQ(p->fused_ops(), 2u);
  EXPECT_EQ(p->steps().size(), 5u);
  EXPECT_EQ(p->live_steps(), 3u);
  const auto& conv = p->steps().front();
  ASSERT_EQ(conv.kind, plan::OpKind::kConv2d);
  ASSERT_EQ(conv.fused.size(), 2u);
  EXPECT_EQ(conv.fused[0].kind, plan::OpKind::kBatchNorm2dEval);
  EXPECT_EQ(conv.fused[1].kind, plan::OpKind::kRelu);
  // The two intermediates (conv raw output is retargeted; bn output is
  // eliminated) must not own arena storage.
  std::size_t eliminated = 0;
  for (const auto& v : p->values()) eliminated += v.eliminated ? 1 : 0;
  EXPECT_EQ(eliminated, 2u);
}

TEST(PlanFusion, Im2colReuseForSameGeometrySiblingConvs) {
  // Two convs over the same input with identical geometry: the second
  // reuses the first's column matrix (batch 1 gates the annotation).
  Tensor w1 = Tensor::from_data({2, 3, 3, 3}, patterned(54, 0.05f, 1));
  Tensor w2 = Tensor::from_data({2, 3, 3, 3}, patterned(54, 0.04f, 9));
  Tensor b = Tensor::from_data({2}, {0.1f, -0.1f});
  auto fn = [&](const Tensor& c, const Tensor&) {
    return tensor::add(tensor::conv2d(c, w1, b, 1, 1),
                       tensor::conv2d(c, w2, b, 1, 1));
  };
  plan::PlanRuntime rt(true);
  tensor::NoGradGuard no_grad;
  const Tensor x = Tensor::from_data({1, 3, 6, 6}, patterned(108, 0.1f, 3));
  rt.run(x, Tensor(), fn);
  auto p = rt.plan_for(x, Tensor());
  ASSERT_NE(p, nullptr);
  ASSERT_TRUE(p->supported());
  ASSERT_EQ(p->steps().size(), 3u);
  EXPECT_FALSE(p->steps()[0].reuse_im2col);
  EXPECT_TRUE(p->steps()[1].reuse_im2col);
  // And the reuse is behavior-preserving.
  const std::vector<float> ref = fn(x, Tensor()).data();
  EXPECT_EQ(rt.run(x, Tensor(), fn).data(), ref);
}

// ---- recording-scope contract -------------------------------------------

TEST(PlanRecorder, SealedPlansAreImmutable) {
  plan::PlanRecorder rec;
  const Tensor x = Tensor::from_data({4}, {1.0f, -2.0f, 3.0f, -4.0f});
  rec.bind_inputs(x, Tensor());
  plan::RecordScope scope(rec);
  const Tensor y = tensor::relu(x);
  auto p = rec.seal(y);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->supported());
  EXPECT_TRUE(rec.sealed());
  EXPECT_THROW(rec.seal(y), std::logic_error);
  // Recording another op into a sealed plan must throw, not corrupt it.
  EXPECT_THROW(tensor::relu(x), std::logic_error);
}

TEST(PlanRecorder, ScopesDoNotNest) {
  plan::PlanRecorder outer, inner;
  plan::RecordScope scope(outer);
  EXPECT_THROW(plan::RecordScope nested(inner), std::logic_error);
}

TEST(PlanExecutor, ReplayAfterShapeChangeIsRejected) {
  auto p = record_tiny_plan(2);
  ASSERT_TRUE(p->supported());
  plan::PlanExecutor exec(p);
  // Matching shape runs...
  EXPECT_NO_THROW(exec.run(tiny_input(2), Tensor()));
  // ...any other shape is a hard error, never a silent mis-replay.
  EXPECT_THROW(exec.run(tiny_input(1), Tensor()), std::logic_error);
  EXPECT_THROW(
      exec.run(Tensor::from_data({2, kTinyC, kTinySide * kTinySide},
                                 patterned(2 * kTinyC * 36, 0.1f, 7)),
               Tensor()),
      std::logic_error);
}

// ---- runtime cache behavior ---------------------------------------------

TEST(PlanRuntime, EachShapeGetsItsOwnPlan) {
  TinyPlanNet net;
  plan::PlanRuntime rt(true);
  tensor::NoGradGuard no_grad;
  const Tensor x1 = tiny_input(1);
  const Tensor x2 = tiny_input(2);
  rt.run(x1, Tensor(), net.fn());
  rt.run(x2, Tensor(), net.fn());
  rt.run(x1, Tensor(), net.fn());
  rt.run(x2, Tensor(), net.fn());
  const plan::RuntimeStats s = rt.stats();
  EXPECT_EQ(s.plans_recorded, 2u);
  EXPECT_EQ(s.replays, 2u);
  auto p1 = rt.plan_for(x1, Tensor());
  auto p2 = rt.plan_for(x2, Tensor());
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  EXPECT_NE(p1, p2);
  EXPECT_EQ(p1->circuit_shape()[0], 1);
  EXPECT_EQ(p2->circuit_shape()[0], 2);
}

TEST(PlanRuntime, UnsupportedRecordingFallsBackPermanently) {
  // Training-mode batch norm mutates running stats per pass — a plan
  // cannot replay it, so the shape key must permanently run eager.
  Tensor gamma = Tensor::from_data({kTinyC}, {1.0f, 1.0f, 1.0f});
  Tensor beta = Tensor::from_data({kTinyC}, {0.0f, 0.0f, 0.0f});
  std::vector<float> rm(kTinyC, 0.0f), rv(kTinyC, 1.0f);
  auto fn = [&](const Tensor& c, const Tensor&) {
    return tensor::batch_norm2d(c, gamma, beta, rm, rv, /*training=*/true);
  };
  plan::PlanRuntime rt(true);
  tensor::NoGradGuard no_grad;
  const Tensor x = tiny_input(2);
  const std::vector<float> first = rt.run(x, Tensor(), fn).data();
  rt.run(x, Tensor(), fn);
  rt.run(x, Tensor(), fn);
  const plan::RuntimeStats s = rt.stats();
  EXPECT_EQ(s.plans_unsupported, 1u);
  EXPECT_EQ(s.plans_recorded, 0u);
  EXPECT_EQ(s.replays, 0u);
  EXPECT_EQ(s.eager_runs, 3u);
  auto p = rt.plan_for(x, Tensor());
  ASSERT_NE(p, nullptr);
  EXPECT_FALSE(p->supported());
  EXPECT_NE(p->unsupported_reason().find("training"), std::string::npos);
  ASSERT_FALSE(first.empty());
}

TEST(PlanRuntime, RecordingExceptionIsRetryable) {
  TinyPlanNet net;
  plan::PlanRuntime rt(true);
  tensor::NoGradGuard no_grad;
  const Tensor x = tiny_input(1);
  int calls = 0;
  auto flaky = [&](const Tensor& c, const Tensor& t) -> Tensor {
    if (++calls == 1) throw std::runtime_error("transient failure");
    return net(c, t);
  };
  EXPECT_THROW(rt.run(x, Tensor(), flaky), std::runtime_error);
  // The failed recording must not poison the shape key.
  const std::vector<float> recorded = rt.run(x, Tensor(), flaky).data();
  const std::vector<float> replayed = rt.run(x, Tensor(), flaky).data();
  EXPECT_EQ(recorded, replayed);
  const plan::RuntimeStats s = rt.stats();
  EXPECT_EQ(s.plans_recorded, 1u);
  EXPECT_EQ(s.replays, 1u);
}

TEST(PlanRuntime, DisabledRuntimeAlwaysRunsEager) {
  TinyPlanNet net;
  plan::PlanRuntime rt(false);
  EXPECT_FALSE(rt.enabled());
  tensor::NoGradGuard no_grad;
  const Tensor x = tiny_input(1);
  rt.run(x, Tensor(), net.fn());
  rt.run(x, Tensor(), net.fn());
  const plan::RuntimeStats s = rt.stats();
  EXPECT_EQ(s.eager_runs, 2u);
  EXPECT_EQ(s.plans_recorded, 0u);
  EXPECT_EQ(s.replays, 0u);
  EXPECT_EQ(rt.plan_for(x, Tensor()), nullptr);
  // Flipping it on starts recording on the next call.
  rt.set_enabled(true);
  rt.run(x, Tensor(), net.fn());
  rt.run(x, Tensor(), net.fn());
  EXPECT_EQ(rt.stats().plans_recorded, 1u);
  EXPECT_EQ(rt.stats().replays, 1u);
}

// ---- steady-state allocation discipline ---------------------------------

TEST(PlanSteadyState, ReplayIsAllocationFreeThroughTheArena) {
  TinyPlanNet net;
  plan::PlanRuntime rt(true);
  tensor::TensorArena arena;
  const Tensor x = tiny_input(2);
  auto once = [&] {
    tensor::NoGradGuard no_grad;
    tensor::ArenaScope scope(&arena);
    const Tensor out = rt.run(x, Tensor(), net.fn());
    ASSERT_EQ(out.dim(0), 2);
  };
  once();          // recording pass (eager, arena warms up)
  arena.reset();
  once();          // first replay: arena sees the replay-path shapes
  arena.reset();
  const std::size_t warm = arena.stats().heap_allocations();
  for (int i = 0; i < 5; ++i) {
    once();
    arena.reset();
    ASSERT_EQ(arena.stats().heap_allocations(), warm)
        << "replay " << i << " allocated";
  }
  EXPECT_EQ(rt.stats().replays, 6u);
}

}  // namespace
