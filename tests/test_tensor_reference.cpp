// Reference-implementation cross-checks: the optimized im2col conv2d and
// the scatter conv_transpose2d must agree with naive direct-loop
// references on randomized shapes (TEST_P sweeps).
#include <gtest/gtest.h>

#include <vector>

#include "tensor/ops.hpp"

namespace {

using lmmir::tensor::Shape;
using lmmir::tensor::Tensor;
using lmmir::util::Rng;
namespace ops = lmmir::tensor;

/// Naive direct convolution: y[n,co,oy,ox] = sum x[n,ci,iy,ix] w[co,ci,ky,kx].
std::vector<float> conv2d_reference(const Tensor& x, const Tensor& w,
                                    const Tensor& b, int stride, int pad,
                                    int& oh, int& ow) {
  const int n = x.dim(0), cin = x.dim(1), h = x.dim(2), wd = x.dim(3);
  const int cout = w.dim(0), kh = w.dim(2), kw = w.dim(3);
  oh = (h + 2 * pad - kh) / stride + 1;
  ow = (wd + 2 * pad - kw) / stride + 1;
  std::vector<float> y(static_cast<std::size_t>(n * cout * oh * ow), 0.0f);
  for (int ni = 0; ni < n; ++ni)
    for (int co = 0; co < cout; ++co)
      for (int oy = 0; oy < oh; ++oy)
        for (int ox = 0; ox < ow; ++ox) {
          float acc = b.defined() ? b.data()[static_cast<std::size_t>(co)] : 0.0f;
          for (int ci = 0; ci < cin; ++ci)
            for (int ky = 0; ky < kh; ++ky)
              for (int kx = 0; kx < kw; ++kx) {
                const int iy = oy * stride - pad + ky;
                const int ix = ox * stride - pad + kx;
                if (iy < 0 || ix < 0 || iy >= h || ix >= wd) continue;
                acc += x.data()[static_cast<std::size_t>(
                           ((ni * cin + ci) * h + iy) * wd + ix)] *
                       w.data()[static_cast<std::size_t>(
                           ((co * cin + ci) * kh + ky) * kw + kx)];
              }
          y[static_cast<std::size_t>(((ni * cout + co) * oh + oy) * ow + ox)] =
              acc;
        }
  return y;
}

struct ConvShape {
  int n, cin, cout, size, kernel, stride, pad;
};

class ConvReference : public ::testing::TestWithParam<ConvShape> {};

TEST_P(ConvReference, MatchesNaiveLoop) {
  const auto p = GetParam();
  Rng rng(static_cast<std::uint64_t>(p.size * 131 + p.kernel));
  auto x = Tensor::randn({p.n, p.cin, p.size, p.size}, rng);
  auto w = Tensor::randn({p.cout, p.cin, p.kernel, p.kernel}, rng);
  auto b = Tensor::randn({p.cout}, rng);
  auto y = ops::conv2d(x, w, b, p.stride, p.pad);
  int oh = 0, ow = 0;
  const auto ref = conv2d_reference(x, w, b, p.stride, p.pad, oh, ow);
  ASSERT_EQ(y.shape(), (Shape{p.n, p.cout, oh, ow}));
  ASSERT_EQ(y.numel(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_NEAR(y.data()[i], ref[i], 1e-4f) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvReference,
    ::testing::Values(ConvShape{1, 1, 1, 6, 3, 1, 1},
                      ConvShape{2, 3, 4, 8, 3, 1, 1},
                      ConvShape{1, 2, 2, 9, 5, 2, 2},
                      ConvShape{2, 4, 1, 7, 1, 1, 0},
                      ConvShape{1, 1, 3, 10, 7, 3, 3},
                      ConvShape{3, 2, 2, 6, 2, 2, 0}));

TEST(ConvTransposeReference, InverseOfConvOnIndicator) {
  // conv_transpose2d with a one-hot kernel scatters inputs to the
  // expected offsets: place a single 1 in the input and check the
  // footprint lands where the formula says.
  auto x = Tensor::zeros({1, 1, 3, 3});
  x.data()[4] = 1.0f;  // centre (1,1)
  auto w = Tensor::zeros({1, 1, 2, 2});
  w.data()[3] = 2.0f;  // kernel (1,1)
  auto y = ops::conv_transpose2d(x, w, Tensor(), 2, 0);
  // out[oy,ox] = x[1,1]*w[1,1] at oy=1*2+1=3, ox=3; output 7x7... actually
  // oh = (3-1)*2+2 = 6.
  ASSERT_EQ(y.shape(), (Shape{1, 1, 6, 6}));
  for (int r = 0; r < 6; ++r)
    for (int c = 0; c < 6; ++c)
      EXPECT_FLOAT_EQ(y.data()[static_cast<std::size_t>(r * 6 + c)],
                      (r == 3 && c == 3) ? 2.0f : 0.0f);
}

TEST(ConvTransposeReference, StridedUpsampleMassPreserved) {
  // With an all-ones kernel and no padding, total output mass equals
  // total input mass times the kernel sum.
  Rng rng(9);
  auto x = Tensor::randn({1, 2, 4, 4}, rng);
  auto w = Tensor::full({2, 1, 2, 2}, 1.0f);
  auto y = ops::conv_transpose2d(x, w, Tensor(), 2, 0);
  float in_sum = 0, out_sum = 0;
  for (float v : x.data()) in_sum += v;
  for (float v : y.data()) out_sum += v;
  EXPECT_NEAR(out_sum, 4.0f * in_sum, 1e-3f);
}

TEST(BatchNormReference, EvalUsesRunningStats) {
  // After many training batches over the same data, eval-mode output
  // approaches train-mode output (running stats converge to batch stats).
  Rng rng(11);
  auto x = Tensor::randn({4, 3, 5, 5}, rng, 2.0f);
  auto gamma = Tensor::full({3}, 1.0f);
  auto beta = Tensor::zeros({3});
  std::vector<float> rm(3, 0.0f), rv(3, 1.0f);
  Tensor train_y;
  for (int i = 0; i < 200; ++i)
    train_y = ops::batch_norm2d(x, gamma, beta, rm, rv, true);
  const Tensor eval_y = ops::batch_norm2d(x, gamma, beta, rm, rv, false);
  double diff = 0;
  for (std::size_t i = 0; i < eval_y.numel(); ++i)
    diff += std::abs(static_cast<double>(eval_y.data()[i]) - train_y.data()[i]);
  EXPECT_LT(diff / static_cast<double>(eval_y.numel()), 0.05);
}

TEST(MatmulReference, RandomAgainstNaive) {
  Rng rng(13);
  const int m = 7, k = 5, n = 6;
  auto a = Tensor::randn({m, k}, rng);
  auto b = Tensor::randn({k, n}, rng);
  auto c = ops::matmul(a, b);
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) {
      float acc = 0;
      for (int kk = 0; kk < k; ++kk)
        acc += a.data()[static_cast<std::size_t>(i * k + kk)] *
               b.data()[static_cast<std::size_t>(kk * n + j)];
      EXPECT_NEAR(c.data()[static_cast<std::size_t>(i * n + j)], acc, 1e-4f);
    }
}

}  // namespace
