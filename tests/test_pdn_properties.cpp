// Physics property tests on the golden solver and the ECO loop:
// superposition, monotonicity in load and resistance, mesh-refinement
// stability, and the strengthening loop's contract.
#include <gtest/gtest.h>

#include "gen/began.hpp"
#include "pdn/circuit.hpp"
#include "pdn/optimize.hpp"
#include "pdn/solver.hpp"
#include "spice/parser.hpp"
#include "spice/writer.hpp"

namespace {

using namespace lmmir;
using pdn::Circuit;
using pdn::solve_ir_drop;

gen::GeneratorConfig mesh_config(std::uint64_t seed, double current = 0.1) {
  gen::GeneratorConfig cfg;
  cfg.name = "prop";
  cfg.width_um = 28;
  cfg.height_um = 28;
  cfg.seed = seed;
  cfg.total_current = current;
  cfg.use_default_stack();
  return cfg;
}

TEST(SolverProperty, LinearInTotalCurrent) {
  // The PDN is linear: doubling every load doubles every drop.
  const auto nl1 = gen::generate_pdn(mesh_config(3, 0.1));
  const auto nl2 = gen::generate_pdn(mesh_config(3, 0.2));
  const auto s1 = solve_ir_drop(Circuit(nl1));
  const auto s2 = solve_ir_drop(Circuit(nl2));
  ASSERT_EQ(s1.ir_drop.size(), s2.ir_drop.size());
  EXPECT_NEAR(s2.worst_drop, 2.0 * s1.worst_drop, 1e-6);
  for (std::size_t i = 0; i < s1.ir_drop.size(); i += 37)
    EXPECT_NEAR(s2.ir_drop[i], 2.0 * s1.ir_drop[i], 1e-6);
}

TEST(SolverProperty, SuperpositionOfLoads) {
  // drop(A ∪ B) = drop(A) + drop(B) for current sources on a fixed grid.
  const char* base =
      "V1 n1_m2_0_0 0 1.0\n"
      "R1 n1_m2_0_0 n1_m1_1000_0 1.0\n"
      "R2 n1_m1_1000_0 n1_m1_2000_0 1.0\n"
      "R3 n1_m1_2000_0 n1_m1_3000_0 1.0\n";
  const auto with = [&](const char* loads) {
    return solve_ir_drop(
        Circuit(spice::parse_netlist_string(std::string(base) + loads)));
  };
  const auto sa = with("I1 n1_m1_1000_0 0 0.05\n");
  const auto sb = with("I2 n1_m1_3000_0 0 0.08\n");
  const auto sab = with("I1 n1_m1_1000_0 0 0.05\nI2 n1_m1_3000_0 0 0.08\n");
  for (std::size_t i = 0; i < sab.ir_drop.size(); ++i)
    EXPECT_NEAR(sab.ir_drop[i], sa.ir_drop[i] + sb.ir_drop[i], 1e-9);
}

TEST(SolverProperty, UpsizingNeverHurts) {
  // Halving every wire resistance cannot increase the worst drop.
  const auto nl = gen::generate_pdn(mesh_config(5));
  spice::Netlist improved = nl;
  for (std::size_t i = 0; i < improved.elements().size(); ++i)
    if (improved.elements()[i].type == spice::ElementType::Resistor)
      improved.set_element_value(i, improved.elements()[i].value * 0.5);
  const auto before = solve_ir_drop(Circuit(nl));
  const auto after = solve_ir_drop(Circuit(improved));
  EXPECT_LT(after.worst_drop, before.worst_drop);
}

TEST(SolverProperty, DropsNonNegativeAndBounded) {
  const auto nl = gen::generate_pdn(mesh_config(7));
  const auto sol = solve_ir_drop(Circuit(nl));
  for (double d : sol.ir_drop) {
    EXPECT_GE(d, -1e-9);
    EXPECT_LE(d, sol.vdd + 1e-9);
  }
}

class SeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(SeedSweep, GeneratedPdnsAlwaysSolvable) {
  const auto nl = gen::generate_pdn(
      mesh_config(static_cast<std::uint64_t>(GetParam())));
  const auto sol = solve_ir_drop(Circuit(nl));
  EXPECT_TRUE(sol.converged);
  EXPECT_GT(sol.worst_drop, 0.0);
  EXPECT_LT(sol.worst_drop, 0.5 * sol.vdd);  // sane synthetic operating point
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range(1, 9));

TEST(Strengthen, ReducesWorstDrop) {
  auto cfg = mesh_config(11);
  cfg.total_current = 0.3;  // stressed
  const auto nl = gen::generate_pdn(cfg);
  pdn::StrengthenOptions opts;
  opts.target_fraction = 0.01;  // aggressive target forces iterations
  opts.max_iterations = 3;
  const auto res = pdn::strengthen_pdn(nl, opts);
  EXPECT_GT(res.iterations, 0);
  EXPECT_GT(res.resistors_upsized, 0u);
  EXPECT_LT(res.final_worst_drop, res.initial_worst_drop);
}

TEST(Strengthen, NoIterationsWhenAlreadyMet) {
  auto cfg = mesh_config(12);
  cfg.total_current = 0.01;  // light load
  const auto nl = gen::generate_pdn(cfg);
  pdn::StrengthenOptions opts;
  opts.target_fraction = 0.5;  // trivially met
  const auto res = pdn::strengthen_pdn(nl, opts);
  EXPECT_TRUE(res.met_target);
  EXPECT_EQ(res.iterations, 0);
  EXPECT_EQ(res.resistors_upsized, 0u);
}

TEST(Strengthen, ValidatesOptions) {
  const auto nl = gen::generate_pdn(mesh_config(13));
  pdn::StrengthenOptions bad;
  bad.resistance_scale = 1.5;
  EXPECT_THROW(pdn::strengthen_pdn(nl, bad), std::invalid_argument);
  bad = {};
  bad.hotspot_fraction = 0.0;
  EXPECT_THROW(pdn::strengthen_pdn(nl, bad), std::invalid_argument);
}

TEST(Strengthen, OutputNetlistStillParses) {
  const auto nl = gen::generate_pdn(mesh_config(14));
  pdn::StrengthenOptions opts;
  opts.target_fraction = 0.01;
  opts.max_iterations = 2;
  const auto res = pdn::strengthen_pdn(nl, opts);
  const auto text = spice::write_netlist_string(res.netlist);
  const auto back = spice::parse_netlist_string(text);
  EXPECT_EQ(back.element_count(), nl.element_count());
}

TEST(NetlistMutation, SetElementValueGuards) {
  auto nl = spice::parse_netlist_string(
      "V1 n1_m1_0_0 0 1.0\nR1 n1_m1_0_0 n1_m1_1000_0 1.0\n");
  EXPECT_THROW(nl.set_element_value(5, 1.0), std::out_of_range);
  EXPECT_THROW(nl.set_element_value(1, -1.0), std::invalid_argument);
  nl.set_element_value(1, 0.25);
  EXPECT_DOUBLE_EQ(nl.elements()[1].value, 0.25);
}

}  // namespace
