// data/shard: binary shard format — roundtrip fidelity, checksums,
// corruption rejection, corpus rolling, epoch-order parity with Dataset.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/dataset.hpp"
#include "data/shard.hpp"
#include "gen/began.hpp"

namespace {

using namespace lmmir;

data::SampleOptions tiny_opts() {
  data::SampleOptions o;
  o.input_side = 16;
  o.pc_grid = 4;
  return o;
}

gen::GeneratorConfig tiny_case(std::uint64_t seed) {
  gen::GeneratorConfig cfg;
  cfg.name = "shard_case_" + std::to_string(seed);
  cfg.width_um = 20;
  cfg.height_um = 20;
  cfg.seed = seed;
  cfg.use_default_stack();
  return cfg;
}

struct TempDir {
  explicit TempDir(const std::string& name)
      : path((std::filesystem::temp_directory_path() / name).string()) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string path;
};

/// `compare_timing` is off when a/b come from two independent generation
/// runs: golden_solve_seconds is wall-clock, not derived data.
void expect_same_sample(const data::Sample& a, const data::Sample& b,
                        bool compare_timing = true) {
  EXPECT_EQ(a.name, b.name);
  ASSERT_EQ(a.circuit.shape(), b.circuit.shape());
  ASSERT_EQ(a.tokens.shape(), b.tokens.shape());
  ASSERT_EQ(a.target.shape(), b.target.shape());
  EXPECT_EQ(a.circuit.data(), b.circuit.data());  // bitwise float equality
  EXPECT_EQ(a.tokens.data(), b.tokens.data());
  EXPECT_EQ(a.target.data(), b.target.data());
  ASSERT_EQ(a.truth_full.rows(), b.truth_full.rows());
  ASSERT_EQ(a.truth_full.cols(), b.truth_full.cols());
  EXPECT_EQ(a.truth_full.data(), b.truth_full.data());
  EXPECT_EQ(a.vdd, b.vdd);
  if (compare_timing)
    EXPECT_EQ(a.golden_solve_seconds, b.golden_solve_seconds);
  EXPECT_EQ(a.node_count, b.node_count);
  EXPECT_EQ(a.adjust.orig_rows, b.adjust.orig_rows);
  EXPECT_EQ(a.adjust.orig_cols, b.adjust.orig_cols);
  EXPECT_EQ(a.adjust.side, b.adjust.side);
  EXPECT_EQ(a.adjust.scaled, b.adjust.scaled);
}

TEST(Shard, FnvMatchesReferenceVectors) {
  // FNV-1a 64 test vectors: empty input is the offset basis; "a" is the
  // canonical published value.
  EXPECT_EQ(data::fnv1a_bytes("", 0), 14695981039346656037ull);
  EXPECT_EQ(data::fnv1a_bytes("a", 1), 0xaf63dc4c8601ec8cull);
}

TEST(Shard, WriterReaderRoundtripBitwise) {
  TempDir dir("lmmir_shard_roundtrip");
  std::filesystem::create_directories(dir.path);
  const std::string path = dir.path + "/one.lmshard";
  const auto s1 = data::make_sample(tiny_case(1), tiny_opts());
  const auto s2 = data::make_sample(tiny_case(2), tiny_opts());
  {
    data::ShardWriter writer(path);
    writer.append(s1, 2);
    writer.append(s2, 3);
    EXPECT_EQ(writer.sample_count(), 2u);
    writer.finalize();
  }

  data::ShardReader reader(path);
  ASSERT_EQ(reader.sample_count(), 2u);
  EXPECT_EQ(reader.meta(0).oversample, 2u);
  EXPECT_EQ(reader.meta(1).oversample, 3u);
  expect_same_sample(reader.read_sample(0), s1);
  expect_same_sample(reader.read_sample(1), s2);
  std::string error;
  EXPECT_TRUE(reader.verify(&error)) << error;
  EXPECT_EQ(reader.mapped_bytes(), std::filesystem::file_size(path));
}

TEST(Shard, FloatViewsAreAlignedAndZeroCopy) {
  TempDir dir("lmmir_shard_views");
  std::filesystem::create_directories(dir.path);
  const std::string path = dir.path + "/views.lmshard";
  const auto s = data::make_sample(tiny_case(3), tiny_opts());
  {
    data::ShardWriter writer(path);
    writer.append(s);
  }  // destructor finalizes

  data::ShardReader reader(path);
  const float* c = reader.circuit_data(0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % data::kShardAlign, 0u);
  // tokens/target/truth are tail views of the same contiguous run.
  EXPECT_EQ(reader.tokens_data(0), c + s.circuit.numel());
  EXPECT_EQ(reader.target_data(0), c + s.circuit.numel() + s.tokens.numel());
  for (std::size_t i = 0; i < s.circuit.numel(); ++i)
    ASSERT_EQ(c[i], s.circuit.data()[i]);
}

TEST(Shard, RejectsCorruptedHeaderAndDetectsPayloadFlips) {
  TempDir dir("lmmir_shard_corrupt");
  std::filesystem::create_directories(dir.path);
  const std::string path = dir.path + "/c.lmshard";
  const auto s = data::make_sample(tiny_case(4), tiny_opts());
  {
    data::ShardWriter writer(path);
    writer.append(s);
  }

  // Flip a payload float: open succeeds (index intact), verify catches it.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(200);  // inside the first sample's float run
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(200);
    byte = static_cast<char>(byte ^ 0x40);
    f.write(&byte, 1);
  }
  data::ShardReader flipped(path);
  std::string error;
  EXPECT_FALSE(flipped.verify(&error));
  EXPECT_NE(error.find("checksum"), std::string::npos);

  // Break the magic: the reader refuses the file outright.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.write("XXXX", 4);
  }
  EXPECT_THROW(data::ShardReader bad(path), std::runtime_error);
}

TEST(Shard, RejectsTruncatedFile) {
  TempDir dir("lmmir_shard_trunc");
  std::filesystem::create_directories(dir.path);
  const std::string path = dir.path + "/t.lmshard";
  const auto s = data::make_sample(tiny_case(5), tiny_opts());
  {
    data::ShardWriter writer(path);
    writer.append(s);
  }
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) - 16);
  EXPECT_THROW(data::ShardReader bad(path), std::runtime_error);
}

TEST(Shard, CorpusWriterRollsAndReaderSpansShards) {
  TempDir dir("lmmir_shard_corpus");
  const auto s = data::make_sample(tiny_case(6), tiny_opts());
  data::CorpusManifest manifest;
  {
    data::ShardCorpusWriter writer(dir.path, /*samples_per_shard=*/2);
    for (int i = 0; i < 5; ++i) writer.append(s, 1);
    manifest = writer.finalize();
  }
  EXPECT_EQ(manifest.samples, 5u);
  EXPECT_EQ(manifest.epoch_samples, 5u);
  EXPECT_EQ(manifest.shard_files.size(), 3u);  // 2 + 2 + 1
  EXPECT_GT(manifest.bytes, 0u);

  data::ShardCorpus corpus(dir.path);
  EXPECT_EQ(corpus.shard_count(), 3u);
  ASSERT_EQ(corpus.sample_count(), 5u);
  EXPECT_EQ(corpus.epoch_size(), 5u);
  std::size_t local = 0;
  EXPECT_EQ(corpus.shard_of(4, local).sample_count(), 1u);  // last shard
  EXPECT_EQ(local, 0u);
  expect_same_sample(corpus.read_sample(4), s);
  std::string error;
  EXPECT_TRUE(corpus.verify(&error)) << error;

  // A written corpus is immutable: a second writer refuses the directory.
  EXPECT_THROW(data::ShardCorpusWriter again(dir.path), std::runtime_error);
}

TEST(Shard, CorpusEpochOrderMatchesDatasetEpoch) {
  data::DatasetOptions opts;
  opts.sample = tiny_opts();
  opts.fake_cases = 2;
  opts.real_cases = 1;
  opts.fake_oversample = 2;
  opts.real_oversample = 3;
  opts.suite_scale = 0.04;
  opts.seed = 19;
  const auto ds = data::build_training_dataset(opts);

  TempDir dir("lmmir_shard_epoch");
  data::write_corpus(ds, dir.path, /*samples_per_shard=*/2);
  data::ShardCorpus corpus(dir.path);
  EXPECT_EQ(corpus.epoch_order(), ds.epoch);
  for (std::size_t i = 0; i < ds.samples.size(); ++i)
    expect_same_sample(corpus.read_sample(i), ds.samples[i]);
}

TEST(Shard, SpillMatchesInMemoryBitwise) {
  data::DatasetOptions opts;
  opts.sample = tiny_opts();
  opts.fake_cases = 2;
  opts.real_cases = 1;
  opts.fake_oversample = 2;
  opts.real_oversample = 2;
  opts.suite_scale = 0.04;
  opts.seed = 23;
  const auto ds = data::build_training_dataset(opts);

  TempDir dir("lmmir_shard_spill");
  const auto manifest = data::spill_training_dataset(opts, dir.path, 2);
  EXPECT_EQ(manifest.samples, ds.samples.size());
  EXPECT_EQ(manifest.epoch_samples, ds.epoch.size());

  data::ShardCorpus corpus(dir.path);
  ASSERT_EQ(corpus.sample_count(), ds.samples.size());
  EXPECT_EQ(corpus.epoch_order(), ds.epoch);
  for (std::size_t i = 0; i < ds.samples.size(); ++i)
    expect_same_sample(corpus.read_sample(i), ds.samples[i],
                       /*compare_timing=*/false);
}

}  // namespace
