// util: strings, CSV round trips, tables, RNG determinism, images.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "util/csv.hpp"
#include "util/image_io.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

namespace {

using namespace lmmir::util;

TEST(StringUtils, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtils, SplitWhitespace) {
  const auto t = split_ws("  R1  n1   n2\t0.5 ");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0], "R1");
  EXPECT_EQ(t[3], "0.5");
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(StringUtils, SplitDelimiterKeepsEmpty) {
  const auto t = split("a,,b,", ',');
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[1], "");
  EXPECT_EQ(t[3], "");
}

TEST(StringUtils, ParseNumbers) {
  double d = 0;
  EXPECT_TRUE(parse_double("1.5e-3", d));
  EXPECT_DOUBLE_EQ(d, 1.5e-3);
  EXPECT_FALSE(parse_double("1.5x", d));
  EXPECT_FALSE(parse_double("", d));
  long l = 0;
  EXPECT_TRUE(parse_long("-42", l));
  EXPECT_EQ(l, -42);
  EXPECT_FALSE(parse_long("4.2", l));
}

TEST(StringUtils, FormatFixed) {
  EXPECT_EQ(format_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(format_fixed(-0.5, 3), "-0.500");
}

TEST(Csv, RoundTrip) {
  CsvMatrix m;
  m.rows = 2;
  m.cols = 3;
  m.values = {1, 2, 3, 4.5f, -6, 0.25f};
  const auto text = write_csv_string(m, 4);
  const auto back = read_csv_string(text);
  ASSERT_EQ(back.rows, 2u);
  ASSERT_EQ(back.cols, 3u);
  for (std::size_t i = 0; i < m.values.size(); ++i)
    EXPECT_NEAR(back.values[i], m.values[i], 1e-4f);
}

TEST(Csv, RejectsRaggedRows) {
  EXPECT_THROW(read_csv_string("1,2\n3\n"), std::runtime_error);
}

TEST(Csv, RejectsBadCell) {
  EXPECT_THROW(read_csv_string("1,abc\n"), std::runtime_error);
}

TEST(Csv, FileRoundTrip) {
  const std::string path = "test_csv_tmp.csv";
  CsvMatrix m;
  m.rows = 1;
  m.cols = 2;
  m.values = {3.5f, -1.0f};
  write_csv_file(path, m);
  const auto back = read_csv_file(path);
  EXPECT_EQ(back.cols, 2u);
  EXPECT_FLOAT_EQ(back.values[0], 3.5f);
  std::filesystem::remove(path);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformRange) {
  Rng r(5);
  for (int i = 0; i < 200; ++i) {
    const float v = r.uniform(2.0f, 3.0f);
    EXPECT_GE(v, 2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Table, RendersAlignedColumns) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1.25"});
  t.add_separator();
  t.add_row({"b", "300"});
  const auto s = t.render();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("300"), std::string::npos);
  EXPECT_EQ(t.row_count(), 3u);
}

TEST(Image, HeatColorEndpoints) {
  std::uint8_t r, g, b;
  heat_color(0.0f, r, g, b);
  EXPECT_GT(b, r);  // cold end is blue
  heat_color(1.0f, r, g, b);
  EXPECT_GT(r, b);  // hot end is red
}

TEST(Image, ColorizeAndWrite) {
  std::vector<float> field = {0.0f, 0.5f, 1.0f, 0.25f};
  const auto img = colorize(field, 2, 2, 0.0f, 1.0f);
  EXPECT_EQ(img.pixels.size(), 12u);
  write_ppm("test_img_tmp.ppm", img);
  std::ifstream f("test_img_tmp.ppm", std::ios::binary);
  std::string magic(2, '\0');
  f.read(magic.data(), 2);
  EXPECT_EQ(magic, "P6");
  std::filesystem::remove("test_img_tmp.ppm");
}

TEST(Image, ColorizeRejectsSizeMismatch) {
  std::vector<float> field(3, 0.0f);
  EXPECT_THROW(colorize(field, 2, 2, 0, 1), std::invalid_argument);
}

TEST(Stopwatch, MeasuresElapsed) {
  Stopwatch w;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(w.seconds(), 0.0);
  EXPECT_GE(w.milliseconds(), w.seconds());
}

}  // namespace
