// pointcloud: lossless element encoding (Fig. 3), grid pooling invariants.
#include <gtest/gtest.h>

#include "gen/began.hpp"
#include "pointcloud/cloud.hpp"
#include "pointcloud/pool.hpp"
#include "spice/parser.hpp"

namespace {

using namespace lmmir;

spice::Netlist demo_netlist() {
  return spice::parse_netlist_string(
      "V1 n1_m2_4000_4000 0 1.1\n"
      "R1 n1_m2_4000_4000 n1_m1_4000_4000 2.0\n"  // via (m2 -> m1)
      "R2 n1_m1_0_0 n1_m1_4000_4000 0.5\n"
      "I1 n1_m1_0_0 0 0.05\n");
}

TEST(Cloud, OnePointPerElement) {
  const auto cloud = pc::cloud_from_netlist(demo_netlist());
  EXPECT_EQ(cloud.points.size(), 4u);
  EXPECT_EQ(cloud.max_layer, 2);
  EXPECT_FLOAT_EQ(cloud.max_resistance, 2.0f);
  EXPECT_FLOAT_EQ(cloud.max_current, 0.05f);
  EXPECT_FLOAT_EQ(cloud.max_voltage, 1.1f);
}

TEST(Cloud, ViaDetection) {
  const auto cloud = pc::cloud_from_netlist(demo_netlist());
  std::size_t vias = 0;
  for (const auto& p : cloud.points) vias += p.is_via() ? 1 : 0;
  EXPECT_EQ(vias, 1u);  // R1 crosses layers
}

TEST(Cloud, GroundEndpointReusesLocatedEndpoint) {
  const auto cloud = pc::cloud_from_netlist(demo_netlist());
  // I1 connects to ground: both endpoints must carry the PDN node coords.
  const auto& isrc = cloud.points[3];
  EXPECT_EQ(isrc.type, 1);
  EXPECT_FLOAT_EQ(isrc.x1, isrc.x2);
  EXPECT_FLOAT_EQ(isrc.y1, isrc.y2);
}

TEST(Cloud, EncodeProducesNormalizedFeatures) {
  const auto cloud = pc::cloud_from_netlist(demo_netlist());
  float f[pc::kPointFeatureDim];
  for (const auto& p : cloud.points) {
    pc::encode_point(cloud, p, f);
    for (int i = 0; i < pc::kPointFeatureDim; ++i) {
      EXPECT_GE(f[i], 0.0f) << i;
      EXPECT_LE(f[i], 1.0f + 1e-5f) << i;
    }
    // one-hot type sums to 1
    EXPECT_NEAR(f[5] + f[6] + f[7], 1.0f, 1e-6f);
  }
}

TEST(Pool, FixedTokenCountRegardlessOfSize) {
  gen::GeneratorConfig small;
  small.width_um = small.height_um = 24;
  small.seed = 2;
  small.use_default_stack();
  gen::GeneratorConfig big;
  big.width_um = big.height_um = 96;
  big.seed = 2;
  big.use_default_stack();

  const auto cs = pc::cloud_from_netlist(gen::generate_pdn(small));
  const auto cb = pc::cloud_from_netlist(gen::generate_pdn(big));
  EXPECT_GT(cb.points.size(), cs.points.size());

  const auto ts = pc::grid_pool(cs, 8);
  const auto tb = pc::grid_pool(cb, 8);
  EXPECT_EQ(ts.token_count(), 64u);
  EXPECT_EQ(tb.token_count(), 64u);
  EXPECT_EQ(ts.features.size(), tb.features.size());
}

TEST(Pool, EmptyCloudGivesZeroTokens) {
  pc::Cloud empty;
  const auto t = pc::grid_pool(empty, 4);
  EXPECT_EQ(t.token_count(), 16u);
  for (float v : t.features) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Pool, RejectsBadGrid) {
  pc::Cloud c;
  EXPECT_THROW(pc::grid_pool(c, 0), std::invalid_argument);
}

TEST(Pool, PopulationChannelReflectsDensity) {
  const auto nl = demo_netlist();
  const auto cloud = pc::cloud_from_netlist(nl);
  const auto t = pc::grid_pool(cloud, 2);
  // Count channel is the last feature; at least one cell must be nonzero
  // and no cell exceeds 1 (log-normalized).
  float max_count = 0.0f;
  for (std::size_t cell = 0; cell < t.token_count(); ++cell) {
    const float c = t.features[cell * pc::kTokenFeatureDim +
                               pc::kPointFeatureDim];
    EXPECT_LE(c, 1.0f + 1e-6f);
    max_count = std::max(max_count, c);
  }
  EXPECT_FLOAT_EQ(max_count, 1.0f);  // densest cell normalizes to 1
}

TEST(Pool, MeanFeaturesStayInRange) {
  gen::GeneratorConfig cfg;
  cfg.width_um = cfg.height_um = 32;
  cfg.seed = 8;
  cfg.use_default_stack();
  const auto cloud = pc::cloud_from_netlist(gen::generate_pdn(cfg));
  const auto t = pc::grid_pool(cloud, 8);
  for (float v : t.features) {
    EXPECT_GE(v, -1e-6f);
    EXPECT_LE(v, 1.0f + 1e-5f);
  }
}

TEST(Downsample, CapsPointCount) {
  gen::GeneratorConfig cfg;
  cfg.width_um = cfg.height_um = 48;
  cfg.seed = 3;
  cfg.use_default_stack();
  const auto cloud = pc::cloud_from_netlist(gen::generate_pdn(cfg));
  ASSERT_GT(cloud.points.size(), 100u);
  util::Rng rng(1);
  const auto down = pc::random_downsample(cloud, 100, rng);
  EXPECT_EQ(down.points.size(), 100u);
  // Normalization metadata preserved.
  EXPECT_FLOAT_EQ(down.width_um, cloud.width_um);
  // No-op when already small enough.
  const auto same = pc::random_downsample(down, 500, rng);
  EXPECT_EQ(same.points.size(), 100u);
}

}  // namespace
