// pdn: MNA golden solver against hand-computed circuits, raster + fill.
#include <gtest/gtest.h>

#include <cmath>

#include "gen/began.hpp"
#include "pdn/circuit.hpp"
#include "pdn/optimize.hpp"
#include "pdn/raster.hpp"
#include "pdn/solver.hpp"
#include "pdn/stats.hpp"
#include "spice/parser.hpp"

namespace {

using namespace lmmir;
using pdn::Circuit;
using pdn::solve_ir_drop;
using spice::parse_netlist_string;

TEST(Solver, SingleResistorDivider) {
  // V(1.0) -- R(2 ohm) -- node A -- I(0.1 A to ground).
  // V(A) = 1.0 - 0.1 * 2 = 0.8; drop = 0.2.
  const auto nl = parse_netlist_string(
      "V1 n1_m1_0_0 0 1.0\n"
      "R1 n1_m1_0_0 n1_m1_1000_0 2.0\n"
      "I1 n1_m1_1000_0 0 0.1\n");
  const Circuit c(nl);
  EXPECT_DOUBLE_EQ(c.vdd(), 1.0);
  const auto sol = solve_ir_drop(c);
  ASSERT_TRUE(sol.converged);
  const auto a = *nl.find_node("n1_m1_1000_0");
  EXPECT_NEAR(sol.node_voltage[static_cast<std::size_t>(a)], 0.8, 1e-9);
  EXPECT_NEAR(sol.worst_drop, 0.2, 1e-9);
}

TEST(Solver, LadderMatchesAnalytic) {
  // V -- R1 -- a -- R2 -- b, loads at a and b.
  // I through R1 = 0.2+0.1; V(a) = 1.1 - 0.3*1 = 0.8;
  // V(b) = V(a) - 0.1*2 = 0.6.
  const auto nl = parse_netlist_string(
      "V1 n1_m1_0_0 0 1.1\n"
      "R1 n1_m1_0_0 n1_m1_1000_0 1.0\n"
      "R2 n1_m1_1000_0 n1_m1_2000_0 2.0\n"
      "I1 n1_m1_1000_0 0 0.2\n"
      "I2 n1_m1_2000_0 0 0.1\n");
  const auto sol = solve_ir_drop(Circuit(nl));
  const auto a = *nl.find_node("n1_m1_1000_0");
  const auto b = *nl.find_node("n1_m1_2000_0");
  EXPECT_NEAR(sol.node_voltage[static_cast<std::size_t>(a)], 0.8, 1e-9);
  EXPECT_NEAR(sol.node_voltage[static_cast<std::size_t>(b)], 0.6, 1e-9);
}

TEST(Solver, ParallelPathsSuperpose) {
  // Two 2-ohm paths from the supply to the same node: effective 1 ohm.
  const auto nl = parse_netlist_string(
      "V1 n1_m2_0_0 0 1.0\n"
      "R1 n1_m2_0_0 n1_m1_1000_0 2.0\n"
      "R2 n1_m2_0_0 n1_m1_1000_0 2.0\n"
      "I1 n1_m1_1000_0 0 0.1\n");
  const auto sol = solve_ir_drop(Circuit(nl));
  EXPECT_NEAR(sol.worst_drop, 0.1, 1e-9);
}

TEST(Solver, CurrentSourceOrientationBothWays) {
  // "I node 0" and "I 0 node" with negated value draw identically.
  const char* forward =
      "V1 n1_m1_0_0 0 1.0\nR1 n1_m1_0_0 n1_m1_1000_0 1.0\n"
      "I1 n1_m1_1000_0 0 0.25\n";
  const char* reversed =
      "V1 n1_m1_0_0 0 1.0\nR1 n1_m1_0_0 n1_m1_1000_0 1.0\n"
      "I1 0 n1_m1_1000_0 -0.25\n";
  const auto s1 = solve_ir_drop(Circuit(parse_netlist_string(forward)));
  const auto s2 = solve_ir_drop(Circuit(parse_netlist_string(reversed)));
  EXPECT_NEAR(s1.worst_drop, s2.worst_drop, 1e-12);
  EXPECT_NEAR(s1.worst_drop, 0.25, 1e-9);
}

TEST(Solver, MultipleSupplies) {
  // Node between two 1-ohm arms to two 1.0 V supplies, load 0.2 A:
  // effective source resistance 0.5 ohm -> drop 0.1 V.
  const auto nl = parse_netlist_string(
      "V1 n1_m2_0_0 0 1.0\n"
      "V2 n1_m2_4000_0 0 1.0\n"
      "R1 n1_m2_0_0 n1_m1_2000_0 1.0\n"
      "R2 n1_m2_4000_0 n1_m1_2000_0 1.0\n"
      "I1 n1_m1_2000_0 0 0.2\n");
  const auto sol = solve_ir_drop(Circuit(nl));
  EXPECT_NEAR(sol.worst_drop, 0.1, 1e-9);
}

TEST(Solver, PinnedNodeHasZeroDrop) {
  const auto nl = parse_netlist_string(
      "V1 n1_m1_0_0 0 1.2\n"
      "R1 n1_m1_0_0 n1_m1_1000_0 1.0\n"
      "I1 n1_m1_1000_0 0 0.1\n");
  const auto sol = solve_ir_drop(Circuit(nl));
  const auto pin = *nl.find_node("n1_m1_0_0");
  EXPECT_DOUBLE_EQ(sol.ir_drop[static_cast<std::size_t>(pin)], 0.0);
}

TEST(Solver, ThrowsWithoutSupply) {
  const auto nl = parse_netlist_string(
      "R1 n1_m1_0_0 n1_m1_1000_0 1.0\nI1 n1_m1_1000_0 0 0.1\n");
  EXPECT_THROW(solve_ir_drop(Circuit(nl)), std::runtime_error);
}

TEST(Circuit, DetectsUnpoweredIslands) {
  const auto nl = parse_netlist_string(
      "V1 n1_m1_0_0 0 1.0\n"
      "R1 n1_m1_0_0 n1_m1_1000_0 1.0\n"
      "I1 n1_m1_1000_0 0 0.1\n"
      "R2 n1_m1_5000_0 n1_m1_6000_0 1.0\n"  // island
      "I2 n1_m1_6000_0 0 0.1\n");
  const Circuit c(nl);
  EXPECT_EQ(c.unpowered_node_count(), 2u);
  // Islands are reported at vdd (zero drop) rather than poisoning the solve.
  const auto sol = solve_ir_drop(c);
  const auto island = *nl.find_node("n1_m1_6000_0");
  EXPECT_DOUBLE_EQ(sol.ir_drop[static_cast<std::size_t>(island)], 0.0);
}

TEST(Circuit, RejectsFloatingVoltageSource) {
  const auto nl = parse_netlist_string(
      "V1 n1_m1_0_0 n1_m1_1000_0 1.0\n"
      "R1 n1_m1_0_0 n1_m1_1000_0 1.0\n");
  EXPECT_THROW(Circuit c(nl), std::runtime_error);
}

TEST(Raster, PlacesValuesAtNodePixels) {
  const auto nl = parse_netlist_string(
      "V1 n1_m1_0_0 0 1.0\n"
      "R1 n1_m1_0_0 n1_m1_3000_0 1.0\n"
      "I1 n1_m1_3000_0 0 0.1\n");
  const auto sol = solve_ir_drop(Circuit(nl));
  pdn::RasterOptions opts;
  opts.fill_holes = false;
  const auto map = pdn::rasterize_ir_drop(nl, sol, opts);
  EXPECT_EQ(map.cols(), 4u);
  EXPECT_EQ(map.rows(), 1u);
  EXPECT_NEAR(map.at(0, 3), 0.1f, 1e-6f);
  EXPECT_FLOAT_EQ(map.at(0, 0), 0.0f);  // pinned node: zero drop
}

TEST(Raster, FillHolesCoversEverything) {
  grid::Grid2D g(4, 4, 0.0f);
  std::vector<char> assigned(16, 0);
  g.at(0, 0) = 1.0f;
  assigned[0] = 1;
  g.at(3, 3) = 3.0f;
  assigned[15] = 1;
  pdn::fill_holes_by_diffusion(g, assigned);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_GT(g.at(r, c), 0.0f) << r << "," << c;
      EXPECT_LE(g.at(r, c), 3.0f);
    }
}

TEST(Raster, LayerFilterRestrictsNodes) {
  const auto nl = parse_netlist_string(
      "V1 n1_m4_0_0 0 1.0\n"
      "R1 n1_m4_0_0 n1_m1_2000_0 1.0\n"
      "I1 n1_m1_2000_0 0 0.1\n");
  const auto sol = solve_ir_drop(Circuit(nl));
  pdn::RasterOptions opts;
  opts.max_layer = 1;  // m4 supply pixel excluded
  opts.fill_holes = false;
  const auto map = pdn::rasterize_ir_drop(nl, sol, opts);
  EXPECT_FLOAT_EQ(map.at(0, 0), 0.0f);
  EXPECT_GT(map.at(0, 2), 0.0f);
}

TEST(Stats, CountsElements) {
  const auto nl = parse_netlist_string(
      "V1 n1_m2_0_0 0 1.0\n"
      "R1 n1_m2_0_0 n1_m1_1000_0 1.0\n"
      "R2 n1_m1_1000_0 n1_m1_2000_0 1.0\n"
      "I1 n1_m1_2000_0 0 0.1\n");
  const auto st = pdn::compute_stats(nl, "t");
  EXPECT_EQ(st.nodes, 3u);
  EXPECT_EQ(st.resistors, 2u);
  EXPECT_EQ(st.current_sources, 1u);
  EXPECT_EQ(st.voltage_sources, 1u);
  EXPECT_EQ(st.layers, 2);
  EXPECT_EQ(st.shape_string(), "3x1");
}

// ------------------------------------- ECO-loop round/solve accounting
//
// Regression for the off-by-one reporting in strengthen_pdn's exit paths:
// the solve count used to be inferred as `iterations + 1`, which
// mis-reported runs that ended early; golden_solves is now counted
// directly and `iterations` is pinned to the rounds that actually
// upsized something.

lmmir::gen::GeneratorConfig stressed_mesh(std::uint64_t seed) {
  lmmir::gen::GeneratorConfig cfg;
  cfg.name = "acct";
  cfg.width_um = 28;
  cfg.height_um = 28;
  cfg.seed = seed;
  cfg.total_current = 0.3;  // stressed: the ECO loop always has work
  cfg.use_default_stack();
  return cfg;
}

TEST(StrengthenAccounting, CapExitReportsExactRoundAndSolveCounts) {
  const auto nl = lmmir::gen::generate_pdn(stressed_mesh(41));
  pdn::StrengthenOptions opts;
  opts.target_fraction = 1e-6;  // unreachable: the budget is the exit path
  opts.max_iterations = 2;
  const auto res = pdn::strengthen_pdn(nl, opts);
  EXPECT_FALSE(res.met_target);
  // Budget-capped run: exactly max_iterations ECO rounds, each preceded by
  // an analysis solve, plus the final re-analysis.
  EXPECT_EQ(res.iterations, 2);
  EXPECT_EQ(res.golden_solves, 3);
}

TEST(StrengthenAccounting, ImmediateTargetCountsTheOneAnalysis) {
  const auto nl = lmmir::gen::generate_pdn(stressed_mesh(42));
  pdn::StrengthenOptions opts;
  opts.target_fraction = 0.9;  // trivially met by the first analysis
  const auto res = pdn::strengthen_pdn(nl, opts);
  EXPECT_TRUE(res.met_target);
  EXPECT_EQ(res.iterations, 0);
  EXPECT_EQ(res.golden_solves, 1);  // the old inference claimed 1 too —
                                    // but via iterations+1; now explicit
}

TEST(StrengthenAccounting, GoldenSolvesIsIterationsPlusOneOnFullRuns) {
  const auto nl = lmmir::gen::generate_pdn(stressed_mesh(43));
  pdn::StrengthenOptions opts;
  opts.target_fraction = 0.02;
  opts.max_iterations = 4;
  const auto res = pdn::strengthen_pdn(nl, opts);
  // Every executed round re-analyzed afterwards (met-target and capped
  // runs alike): solves = rounds + 1 whenever no round was a no-op.
  EXPECT_EQ(res.golden_solves, res.iterations + 1);
}

TEST(StrengthenAccounting, ContextReuseMatchesColdLoop) {
  const auto nl = lmmir::gen::generate_pdn(stressed_mesh(44));
  pdn::StrengthenOptions opts;
  opts.target_fraction = 1e-6;
  opts.max_iterations = 3;
  opts.solve.cg.preconditioner = lmmir::sparse::PreconditionerKind::Ic0;
  opts.use_solver_context = false;
  const auto cold = pdn::strengthen_pdn(nl, opts);
  opts.use_solver_context = true;
  const auto warm = pdn::strengthen_pdn(nl, opts);

  EXPECT_EQ(cold.iterations, warm.iterations);
  EXPECT_EQ(cold.golden_solves, warm.golden_solves);
  EXPECT_EQ(cold.resistors_upsized, warm.resistors_upsized);
  EXPECT_NEAR(warm.final_worst_drop, cold.final_worst_drop,
              1e-8 * std::max(1.0, cold.final_worst_drop));
  // Every ECO round changes conductances, so the factor is rebuilt per
  // round on both paths — but the context warm-starts every round after
  // the first and that must cut the total PCG work.
  EXPECT_EQ(cold.precond_builds, static_cast<std::size_t>(cold.golden_solves));
  EXPECT_EQ(warm.precond_builds, static_cast<std::size_t>(warm.golden_solves));
  EXPECT_EQ(warm.warm_starts,
            static_cast<std::size_t>(warm.golden_solves) - 1);
  EXPECT_LT(warm.total_cg_iterations, cold.total_cg_iterations);
}

}  // namespace
