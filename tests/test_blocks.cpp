// models/blocks + LNT + fusion: numeric correctness of the token/map
// adapters and behavioural checks on the multimodal components.
#include <gtest/gtest.h>

#include "models/blocks.hpp"
#include "models/lmmir_model.hpp"
#include "pointcloud/pool.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace lmmir;
using models::add_broadcast_tokens;
using models::map_from_tokens;
using models::mean_tokens;
using models::tokens_from_map;
using tensor::Shape;
using tensor::Tensor;

TEST(TokenAdapters, MapTokensRoundTrip) {
  util::Rng rng(1);
  auto x = Tensor::randn({2, 5, 3, 4}, rng);
  auto tokens = tokens_from_map(x);
  EXPECT_EQ(tokens.shape(), (Shape{2, 12, 5}));
  auto back = map_from_tokens(tokens, 3, 4);
  ASSERT_EQ(back.shape(), x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i)
    EXPECT_FLOAT_EQ(back.data()[i], x.data()[i]);
}

TEST(TokenAdapters, TokensIndexing) {
  // Pixel (h,w) of channel c must land at token h*W+w, feature c.
  auto x = Tensor::zeros({1, 2, 2, 2});
  // channel 1, position (1,0) -> linear idx: ((0*2+1)*2+1)*2+0 = 6
  x.data()[6] = 42.0f;
  auto tokens = tokens_from_map(x);  // [1, 4, 2]
  EXPECT_FLOAT_EQ(tokens.data()[2 * 2 + 1], 42.0f);  // token 2, feature 1
}

TEST(TokenAdapters, MeanTokensExactValue) {
  auto t = Tensor::from_data({1, 3, 2}, {1, 10, 2, 20, 3, 30});
  auto m = mean_tokens(t);
  EXPECT_EQ(m.shape(), (Shape{1, 2}));
  EXPECT_NEAR(m.data()[0], 2.0f, 1e-6f);
  EXPECT_NEAR(m.data()[1], 20.0f, 1e-6f);
}

TEST(TokenAdapters, BroadcastAddExactValue) {
  auto t = Tensor::zeros({1, 3, 2});
  auto v = Tensor::from_data({1, 2}, {5.0f, -1.0f});
  auto y = add_broadcast_tokens(t, v);
  for (int tok = 0; tok < 3; ++tok) {
    EXPECT_FLOAT_EQ(y.data()[static_cast<std::size_t>(tok * 2)], 5.0f);
    EXPECT_FLOAT_EQ(y.data()[static_cast<std::size_t>(tok * 2 + 1)], -1.0f);
  }
}

TEST(TokenAdapters, GradientsFlowThroughMeanTokens) {
  auto t = Tensor::full({1, 4, 2}, 1.0f, /*requires_grad=*/true);
  auto loss = tensor::sum_all(mean_tokens(t));
  loss.backward();
  ASSERT_EQ(t.grad().size(), 8u);
  for (float g : t.grad()) EXPECT_NEAR(g, 0.25f, 1e-6f);
}

TEST(Lnt, OutputShapeAndTokenCountPreserved) {
  util::Rng rng(2);
  models::LNT lnt(16, 2, 2, 2, rng);
  auto raw = Tensor::randn({2, 64, pc::kTokenFeatureDim}, rng, 0.3f);
  auto out = lnt.forward(raw);
  EXPECT_EQ(out.shape(), (Shape{2, 64, 16}));
}

TEST(Lnt, RejectsWrongFeatureDim) {
  util::Rng rng(3);
  models::LNT lnt(16, 1, 2, 2, rng);
  auto bad = Tensor::randn({1, 8, 7}, rng);
  EXPECT_THROW(lnt.forward(bad), std::invalid_argument);
}

TEST(Lnt, SensitiveToNetlistContent) {
  // Different token grids must produce different embeddings — the LNT
  // cannot be a constant function of its input.
  util::Rng rng(4);
  models::LNT lnt(16, 2, 2, 2, rng);
  auto a = Tensor::randn({1, 16, pc::kTokenFeatureDim}, rng, 0.3f);
  auto b = Tensor::randn({1, 16, pc::kTokenFeatureDim}, rng, 0.3f);
  auto ya = lnt.forward(a);
  auto yb = lnt.forward(b);
  double diff = 0;
  for (std::size_t i = 0; i < ya.numel(); ++i)
    diff += std::abs(static_cast<double>(ya.data()[i]) - yb.data()[i]);
  EXPECT_GT(diff / static_cast<double>(ya.numel()), 1e-3);
}

TEST(Fusion, OutputShapeAndNetlistInfluence) {
  util::Rng rng(5);
  models::FusionModule fusion(16, 2, rng);
  auto circ = Tensor::randn({1, 9, 16}, rng, 0.5f);
  auto net_a = Tensor::randn({1, 32, 16}, rng, 0.5f);
  auto net_b = Tensor::randn({1, 32, 16}, rng, 0.5f);
  auto ya = fusion.forward(circ, net_a);
  auto yb = fusion.forward(circ, net_b);
  EXPECT_EQ(ya.shape(), circ.shape());
  // Cross-attention must propagate netlist information.
  double diff = 0;
  for (std::size_t i = 0; i < ya.numel(); ++i)
    diff += std::abs(static_cast<double>(ya.data()[i]) - yb.data()[i]);
  EXPECT_GT(diff, 1e-4);
}

TEST(Encoder, SkipResolutionsHalve) {
  util::Rng rng(6);
  models::CircuitEncoder enc(6, 8, 3, rng);
  auto x = Tensor::randn({1, 6, 32, 32}, rng, 0.3f);
  auto out = enc.forward(x);
  ASSERT_EQ(out.skips.size(), 3u);
  EXPECT_EQ(out.skips[0].dim(2), 32);
  EXPECT_EQ(out.skips[1].dim(2), 16);
  EXPECT_EQ(out.skips[2].dim(2), 8);
  EXPECT_EQ(out.bottleneck.dim(2), 4);
  EXPECT_EQ(out.bottleneck.dim(1), enc.bottleneck_channels());
}

TEST(Decoder, StageDoublesResolutionAndFusesSkip) {
  util::Rng rng(7);
  models::DecoderStage stage(16, 8, /*attention_gate=*/true, rng);
  auto x = Tensor::randn({1, 16, 4, 4}, rng, 0.3f);
  auto skip = Tensor::randn({1, 8, 8, 8}, rng, 0.3f);
  auto y = stage.forward(x, skip);
  EXPECT_EQ(y.shape(), (Shape{1, 8, 8, 8}));
}

TEST(ConvBnRelu, OutputNonNegative) {
  util::Rng rng(8);
  models::ConvBnRelu block(3, 4, 3, rng);
  auto x = Tensor::randn({2, 3, 6, 6}, rng);
  auto y = block.forward(x);
  for (float v : y.data()) EXPECT_GE(v, 0.0f);
}

}  // namespace
