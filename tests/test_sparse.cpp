// sparse: CSR construction, SpMV, CG solver vs dense Cholesky.
#include <gtest/gtest.h>

#include <cmath>

#include "sparse/cg.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "sparse/trisolve.hpp"
#include "util/rng.hpp"

namespace {

using namespace lmmir::sparse;

TEST(Coo, RejectsOutOfRange) {
  CooBuilder coo(3);
  EXPECT_THROW(coo.add(3, 0, 1.0), std::out_of_range);
  EXPECT_THROW(coo.add(0, 7, 1.0), std::out_of_range);
}

TEST(Csr, SumsDuplicates) {
  CooBuilder coo(2);
  coo.add(0, 0, 1.0);
  coo.add(0, 0, 2.5);
  coo.add(1, 0, -1.0);
  coo.add(1, 1, 4.0);
  const auto m = CsrMatrix::from_coo(coo);
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(m.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
}

TEST(Csr, MultiplyMatchesManual) {
  CooBuilder coo(3);
  coo.add(0, 0, 2.0);
  coo.add(0, 2, 1.0);
  coo.add(1, 1, 3.0);
  coo.add(2, 0, -1.0);
  const auto m = CsrMatrix::from_coo(coo);
  std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y;
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
  EXPECT_DOUBLE_EQ(y[2], -1.0);
}

TEST(Csr, DiagonalAndSymmetry) {
  CooBuilder coo(2);
  coo.add(0, 0, 4.0);
  coo.add(0, 1, -1.0);
  coo.add(1, 0, -1.0);
  coo.add(1, 1, 3.0);
  const auto m = CsrMatrix::from_coo(coo);
  const auto d = m.diagonal();
  EXPECT_DOUBLE_EQ(d[0], 4.0);
  EXPECT_DOUBLE_EQ(d[1], 3.0);
  EXPECT_DOUBLE_EQ(m.symmetry_error(), 0.0);
}

TEST(Csr, EmptyRowsHandled) {
  CooBuilder coo(4);
  coo.add(0, 0, 1.0);
  coo.add(3, 3, 1.0);
  const auto m = CsrMatrix::from_coo(coo);
  std::vector<double> x(4, 1.0), y;
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 0.0);
}

TEST(Cholesky, SolvesSmallSystem) {
  DenseMatrix a(2);
  a.at(0, 0) = 4.0;
  a.at(0, 1) = a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  const auto x = cholesky_solve(a, {1.0, 2.0});
  EXPECT_NEAR(4.0 * x[0] + x[1], 1.0, 1e-12);
  EXPECT_NEAR(x[0] + 3.0 * x[1], 2.0, 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  DenseMatrix a(2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = a.at(1, 0) = 5.0;
  a.at(1, 1) = 1.0;
  EXPECT_THROW(cholesky_solve(a, {1.0, 1.0}), std::runtime_error);
}

TEST(Cg, TrivialAndEdgeCases) {
  // 1x1 system
  CooBuilder coo(1);
  coo.add(0, 0, 5.0);
  const auto m = CsrMatrix::from_coo(coo);
  const auto res = conjugate_gradient(m, {10.0});
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.x[0], 2.0, 1e-9);

  // zero rhs -> zero solution, immediately converged
  const auto res0 = conjugate_gradient(m, {0.0});
  EXPECT_TRUE(res0.converged);
  EXPECT_DOUBLE_EQ(res0.x[0], 0.0);
}

TEST(Cg, RejectsSizeMismatch) {
  CooBuilder coo(2);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 1.0);
  const auto m = CsrMatrix::from_coo(coo);
  EXPECT_THROW(conjugate_gradient(m, {1.0}), std::invalid_argument);
}

/// Property sweep: CG matches dense Cholesky on random SPD
/// (diagonally-dominant Laplacian-like) systems of several sizes.
class CgVsCholesky : public ::testing::TestWithParam<int> {};

TEST_P(CgVsCholesky, Agree) {
  const int n = GetParam();
  lmmir::util::Rng rng(static_cast<std::uint64_t>(n) * 977 + 5);

  CooBuilder coo(static_cast<std::size_t>(n));
  DenseMatrix dense(static_cast<std::size_t>(n));
  // Random resistive-mesh-style SPD matrix: off-diagonals negative,
  // diagonal = |row sum| + leak.
  std::vector<double> diag(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (!rng.chance(0.3)) continue;
      const double g = rng.uniform_double(0.1, 2.0);
      coo.add(static_cast<std::size_t>(i), static_cast<std::size_t>(j), -g);
      coo.add(static_cast<std::size_t>(j), static_cast<std::size_t>(i), -g);
      dense.at(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) = -g;
      dense.at(static_cast<std::size_t>(j), static_cast<std::size_t>(i)) = -g;
      diag[static_cast<std::size_t>(i)] += g;
      diag[static_cast<std::size_t>(j)] += g;
    }
  }
  for (int i = 0; i < n; ++i) {
    const double d = diag[static_cast<std::size_t>(i)] +
                     rng.uniform_double(0.5, 1.5);  // ground leak -> SPD
    coo.add(static_cast<std::size_t>(i), static_cast<std::size_t>(i), d);
    dense.at(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) = d;
  }
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform_double(-1.0, 1.0);

  const auto m = CsrMatrix::from_coo(coo);
  EXPECT_LT(m.symmetry_error(), 1e-12);
  const auto cg = conjugate_gradient(m, b);
  ASSERT_TRUE(cg.converged) << "residual " << cg.residual;
  const auto exact = cholesky_solve(dense, b);
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(cg.x[static_cast<std::size_t>(i)],
                exact[static_cast<std::size_t>(i)], 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CgVsCholesky,
                         ::testing::Values(2, 5, 16, 40, 100));

// --- CG breakdown handling on degenerate (semi-definite) systems ---------

/// Graph-Laplacian of a single edge: exactly singular, PSD.
CsrMatrix singular_edge_laplacian(double leak = 0.0) {
  CooBuilder coo(2);
  coo.add(0, 0, 1.0 + leak);
  coo.add(0, 1, -1.0);
  coo.add(1, 0, -1.0);
  coo.add(1, 1, 1.0 + leak);
  return CsrMatrix::from_coo(coo);
}

TEST(CgBreakdown, SingularInconsistentRhsStaysFinite) {
  // b = [1, 1] is orthogonal to the range of [[1,-1],[-1,1]]: the very
  // first search direction has pᵀAp == 0.  The solver must flag breakdown
  // with a finite residual and iterate — never NaN-poison the solve.
  const auto m = singular_edge_laplacian();
  const auto res = conjugate_gradient(m, {1.0, 1.0});
  EXPECT_FALSE(res.converged);
  EXPECT_TRUE(res.breakdown);
  EXPECT_TRUE(std::isfinite(res.residual));
  for (double v : res.x) EXPECT_TRUE(std::isfinite(v));
}

TEST(CgBreakdown, SingularConsistentRhsConverges) {
  // b = [1, -1] lies in the range: CG reaches the minimum-norm solution in
  // one step without tripping the breakdown guards.
  const auto m = singular_edge_laplacian();
  const auto res = conjugate_gradient(m, {1.0, -1.0});
  EXPECT_TRUE(res.converged);
  EXPECT_FALSE(res.breakdown);
  EXPECT_NEAR(res.x[0], 0.5, 1e-9);
  EXPECT_NEAR(res.x[1], -0.5, 1e-9);
}

TEST(CgBreakdown, NearSingularNeverProducesNan) {
  // A tiny ground leak makes pᵀAp positive but ~1e-12: the old solver blew
  // up through a huge alpha into inf/NaN (beta = inf/inf).  The guarded
  // solver either converges or stops finite.
  const auto m = singular_edge_laplacian(1e-12);
  const auto res = conjugate_gradient(m, {1.0, 1.0});
  EXPECT_TRUE(std::isfinite(res.residual));
  for (double v : res.x) EXPECT_TRUE(std::isfinite(v));
  if (!res.converged) {
    EXPECT_TRUE(res.breakdown);
  }
}

TEST(Cg, RecordsResidualHistory) {
  CooBuilder coo(3);
  coo.add(0, 0, 4.0);
  coo.add(0, 1, -1.0);
  coo.add(1, 0, -1.0);
  coo.add(1, 1, 4.0);
  coo.add(1, 2, -1.0);
  coo.add(2, 1, -1.0);
  coo.add(2, 2, 4.0);
  const auto m = CsrMatrix::from_coo(coo);
  const auto res = conjugate_gradient(m, {1.0, 2.0, 3.0});
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.residual_history.size(), res.iterations);
  EXPECT_DOUBLE_EQ(res.residual_history.back(), res.residual);
  EXPECT_LT(res.residual_history.back(), CgOptions{}.tolerance);
}

TEST(Cg, WarmStartFromExactSolutionTakesZeroIterations) {
  CooBuilder coo(2);
  coo.add(0, 0, 2.0);
  coo.add(1, 1, 5.0);
  const auto m = CsrMatrix::from_coo(coo);
  const std::vector<double> b = {4.0, 10.0};
  const std::vector<double> exact = {2.0, 2.0};
  const auto res = conjugate_gradient(m, b, {}, nullptr, &exact);
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(res.warm_started);
  EXPECT_EQ(res.iterations, 0u);
  EXPECT_DOUBLE_EQ(res.x[0], 2.0);
  EXPECT_DOUBLE_EQ(res.x[1], 2.0);
}

TEST(Cg, WarmStartRejectsWrongSizeGuess) {
  CooBuilder coo(2);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 1.0);
  const auto m = CsrMatrix::from_coo(coo);
  const std::vector<double> bad = {1.0};
  EXPECT_THROW(conjugate_gradient(m, {1.0, 1.0}, {}, nullptr, &bad),
               std::invalid_argument);
}

TEST(Cg, ColdStartUnchangedByWarmStartPlumbing) {
  // x0 == nullptr must take exactly the historical code path: a zero
  // initial iterate and initial_residual pinned to 1.
  CooBuilder coo(2);
  coo.add(0, 0, 3.0);
  coo.add(0, 1, 1.0);
  coo.add(1, 0, 1.0);
  coo.add(1, 1, 3.0);
  const auto m = CsrMatrix::from_coo(coo);
  const auto res = conjugate_gradient(m, {1.0, -2.0});
  ASSERT_TRUE(res.converged);
  EXPECT_FALSE(res.warm_started);
  EXPECT_DOUBLE_EQ(res.initial_residual, 1.0);
}

// -------------------------------------------------- level schedules

TEST(LevelSchedule, DiagonalMatrixIsOneLevel) {
  CooBuilder coo(5);
  for (std::size_t i = 0; i < 5; ++i) coo.add(i, i, 2.0);
  const auto m = CsrMatrix::from_coo(coo);
  const auto s = LevelSchedule::lower(m.row_ptr(), m.col_idx(), m.dim());
  EXPECT_EQ(s.level_count(), 1u);
  EXPECT_EQ(s.row_count(), 5u);
  EXPECT_DOUBLE_EQ(s.average_width(), 5.0);
}

TEST(LevelSchedule, TridiagonalChainIsFullySequential) {
  const std::size_t n = 6;
  CooBuilder coo(n);
  for (std::size_t i = 0; i < n; ++i) {
    coo.add(i, i, 2.0);
    if (i + 1 < n) {
      coo.add(i, i + 1, -1.0);
      coo.add(i + 1, i, -1.0);
    }
  }
  const auto m = CsrMatrix::from_coo(coo);
  const auto lo = LevelSchedule::lower(m.row_ptr(), m.col_idx(), m.dim());
  const auto up = LevelSchedule::upper(m.row_ptr(), m.col_idx(), m.dim());
  EXPECT_EQ(lo.level_count(), n);  // a chain has no wavefront parallelism
  EXPECT_EQ(up.level_count(), n);
  // Lower levels emit rows in ascending order, upper in descending.
  EXPECT_EQ(lo.rows().front(), 0u);
  EXPECT_EQ(up.rows().front(), n - 1);
}

TEST(LevelSchedule, EveryDependencyLivesInAnEarlierLevel) {
  // Random-ish SPD-patterned matrix: band + a few long-range entries.
  const std::size_t n = 40;
  CooBuilder coo(n);
  for (std::size_t i = 0; i < n; ++i) {
    coo.add(i, i, 4.0);
    if (i >= 3) {
      coo.add(i, i - 3, -1.0);
      coo.add(i - 3, i, -1.0);
    }
    if (i >= 11) {
      coo.add(i, i - 11, -0.5);
      coo.add(i - 11, i, -0.5);
    }
  }
  const auto m = CsrMatrix::from_coo(coo);
  for (const bool lower : {true, false}) {
    const auto s = lower
                       ? LevelSchedule::lower(m.row_ptr(), m.col_idx(), m.dim())
                       : LevelSchedule::upper(m.row_ptr(), m.col_idx(), m.dim());
    ASSERT_EQ(s.row_count(), n);
    std::vector<std::size_t> level_of(n, 0);
    for (std::size_t l = 0; l + 1 < s.level_ptr().size(); ++l)
      for (std::size_t k = s.level_ptr()[l]; k < s.level_ptr()[l + 1]; ++k)
        level_of[s.rows()[k]] = l;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t k = m.row_ptr()[i]; k < m.row_ptr()[i + 1]; ++k) {
        const std::size_t j = m.col_idx()[k];
        if (lower ? (j < i) : (j > i)) {
          EXPECT_LT(level_of[j], level_of[i])
              << (lower ? "lower" : "upper") << " dep " << j << " -> " << i;
        }
      }
  }
}

TEST(Csr, FindEntryLocatesSlots) {
  CooBuilder coo(3);
  coo.add(0, 0, 1.0);
  coo.add(1, 2, -2.0);
  coo.add(2, 2, 5.0);
  auto m = CsrMatrix::from_coo(coo);
  const std::size_t k = m.find_entry(1, 2);
  ASSERT_NE(k, CsrMatrix::npos);
  EXPECT_DOUBLE_EQ(m.values()[k], -2.0);
  EXPECT_EQ(m.find_entry(0, 2), CsrMatrix::npos);
  EXPECT_THROW(m.find_entry(3, 0), std::out_of_range);
  // values_mut writes through to the SpMV.
  m.values_mut()[k] = 7.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 7.0);
}

}  // namespace
